/// \file tracking_2d.cpp
/// 2-D target tracking with dropouts: compares all four smoother families on
/// the same trajectory and prints a small ASCII plot of the smoothed path.
///
/// Scenario: a vehicle follows a noisy constant-velocity path in the plane;
/// a sensor reports positions at 2 Hz but drops 40% of its measurements.
/// The conventional (RTS) and associative smoothers receive the prior
/// directly; the QR smoothers (Paige-Saunders, Odd-Even) receive it as a
/// pseudo-observation so all four solve the identical estimation problem.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/associative.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "kalman/rts.hpp"
#include "la/blas.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace pitk;

double rmse_position(const kalman::Simulation& sim, const std::vector<la::Vector>& means) {
  double sse = 0.0;
  for (std::size_t i = 0; i < means.size(); ++i) {
    sse += std::pow(means[i][0] - sim.truth[i][0], 2) +
           std::pow(means[i][2] - sim.truth[i][2], 2);
  }
  return std::sqrt(sse / static_cast<double>(means.size()));
}

void ascii_plot(const kalman::Simulation& sim, const std::vector<la::Vector>& est) {
  // Render truth (.) and estimate (*) into an 60x20 grid over the xy range.
  constexpr int W = 72;
  constexpr int H = 20;
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const auto& u : sim.truth) {
    xmin = std::min(xmin, u[0]);
    xmax = std::max(xmax, u[0]);
    ymin = std::min(ymin, u[2]);
    ymax = std::max(ymax, u[2]);
  }
  std::vector<std::string> grid(H, std::string(W, ' '));
  auto put = [&](double x, double y, char c) {
    const int col = static_cast<int>((x - xmin) / (xmax - xmin + 1e-12) * (W - 1));
    const int row = H - 1 - static_cast<int>((y - ymin) / (ymax - ymin + 1e-12) * (H - 1));
    if (row >= 0 && row < H && col >= 0 && col < W) grid[row][col] = c;
  };
  for (const auto& u : sim.truth) put(u[0], u[2], '.');
  for (const auto& u : est) put(u[0], u[2], '*');
  std::printf("\ntrajectory ('.' = truth, '*' = smoothed):\n");
  for (const auto& line : grid) std::printf("|%s|\n", line.c_str());
}

}  // namespace

int main() {
  la::Rng rng(2024);

  // Simulate: 300 steps at dt = 0.5, drop 40% of the observations.
  kalman::SimSpec spec = kalman::constant_velocity_spec(
      /*axes=*/2, /*k=*/300, /*dt=*/0.5, /*process_std=*/0.08, /*obs_std=*/1.5,
      la::Vector({0.0, 0.8, 0.0, 0.5}));
  auto base_g = spec.G;
  la::Rng drop_rng(55);
  spec.G = [&base_g, &drop_rng](la::index i) {
    return drop_rng.uniform() < 0.4 ? la::Matrix() : base_g(i);
  };
  kalman::Simulation sim = kalman::simulate(rng, spec);

  kalman::GaussianPrior prior;
  prior.mean = la::Vector({0.0, 0.8, 0.0, 0.5});
  prior.cov = la::Matrix::identity(4);
  kalman::Problem qr_problem = kalman::with_prior_observation(sim.problem, prior);

  par::ThreadPool pool;
  std::printf("smoothing %lld states on %u cores\n",
              static_cast<long long>(sim.problem.num_states()), pool.concurrency());

  kalman::SmootherResult oe = kalman::oddeven_smooth(qr_problem, pool, {});
  kalman::SmootherResult ps = kalman::paige_saunders_smooth(qr_problem, {});
  kalman::SmootherResult rts = kalman::rts_smooth(sim.problem, prior);
  kalman::SmootherResult assoc = kalman::associative_smooth(sim.problem, prior, pool, {});

  std::printf("\nposition RMSE vs ground truth:\n");
  std::printf("  odd-even (parallel QR):   %.4f\n", rmse_position(sim, oe.means));
  std::printf("  paige-saunders (seq QR):  %.4f\n", rmse_position(sim, ps.means));
  std::printf("  rts (conventional):       %.4f\n", rmse_position(sim, rts.means));
  std::printf("  associative (parallel):   %.4f\n", rmse_position(sim, assoc.means));

  // All four solve the same least-squares problem: agreement check.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < oe.means.size(); ++i)
    max_diff = std::max(max_diff, la::max_abs_diff(oe.means[i].span(), rts.means[i].span()));
  std::printf("\nmax |odd-even - rts| over all states: %.3e %s\n", max_diff,
              max_diff < 1e-6 ? "(agree)" : "(DISAGREE!)");

  ascii_plot(sim, oe.means);
  return max_diff < 1e-6 ? 0 : 1;
}
