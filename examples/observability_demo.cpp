/// \file observability_demo.cpp
/// The pitk::obs stack end to end: a mixed workload (batched linear tracks,
/// one streaming session, a pool of nonlinear tenants) runs through one
/// engine with tracing on, then the process dumps everything an operator
/// would look at —
///
///  - the Prometheus text exposition of the global metrics registry (what a
///    scrape endpoint would serve), printed to stdout;
///  - the same snapshot as JSON, written programmatically;
///  - a Chrome trace-event file (chrome://tracing / Perfetto) with the
///    queue/solve/splice spans of every job, written programmatically.
///
/// The environment knobs work on any binary in this repo without code:
/// PITK_TRACE=<file.json> records from process start and writes the trace at
/// exit; PITK_METRICS=<path> dumps the metrics snapshot at exit (a `.prom`
/// suffix selects the Prometheus rendering).  CI runs this demo with both
/// set and validates the dumped files.

#include <cstdio>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

using namespace pitk;
using la::index;
using la::Vector;

namespace {

kalman::Problem make_track(la::Rng& rng, index k) {
  const Vector x0({rng.uniform(-50.0, 50.0), rng.uniform(-1.0, 1.0),
                   rng.uniform(-50.0, 50.0), rng.uniform(-1.0, 1.0)});
  kalman::SimSpec spec = kalman::constant_velocity_spec(
      /*axes=*/2, k, /*dt=*/0.5, /*process_std=*/0.08, /*obs_std=*/1.2, x0);
  return kalman::simulate(rng, spec).problem;
}

}  // namespace

int main() {
  // Programmatic enable: the PITK_TRACE env knob does the same at process
  // start (and registers the at-exit write).
  obs::trace::set_enabled(true);

  la::Rng rng(0x0B5DE40);
  engine::SmootherEngine eng;
  std::printf("observability demo: %u-way engine, tracing %s\n\n", eng.concurrency(),
              obs::trace::enabled() ? "on" : "off");

  // ---- batched linear tenants: 48 short tracks + 2 large ones ----
  std::vector<std::future<engine::JobResult>> futures;
  for (int t = 0; t < 48; ++t) futures.push_back(eng.submit(make_track(rng, 120), {}));
  for (int t = 0; t < 2; ++t) futures.push_back(eng.submit(make_track(rng, 2200), {}));
  eng.wait_idle();
  for (auto& f : futures) (void)f.get();

  // ---- streaming tenant: evolve/observe with periodic re-smooths ----
  kalman::Problem live = make_track(rng, 300);
  engine::Session session = eng.open_session(4);
  // Weak prior as the session's first observation (QR formulation).
  session.observe(la::Matrix::identity(4), Vector({0.0, 0.0, 0.0, 0.0}),
                  kalman::CovFactor::scaled_identity(4, 100.0));
  kalman::SmootherResult warm;
  for (index i = 0; i <= live.last_index(); ++i) {
    const kalman::TimeStep& step = live.step(i);
    if (step.evolution)
      session.evolve(step.evolution->F, step.evolution->c, step.evolution->noise);
    if (step.observation)
      session.observe(step.observation->G, step.observation->o, step.observation->noise);
    if (i % 60 == 59) session.smooth_into(warm, /*with_covariances=*/false);
  }
  session.smooth_into(warm, /*with_covariances=*/false);  // final means: cache miss
  session.smooth_into(warm, /*with_covariances=*/true);   // covariance upgrade only
  session.smooth_into(warm, /*with_covariances=*/true);   // unchanged: cache hit
  const engine::SessionStats ss = session.stats();
  std::printf("session: %llu resmooth hits, %llu misses, %llu covariance upgrades, "
              "%llu steps spliced incrementally\n",
              static_cast<unsigned long long>(ss.resmooth_hits),
              static_cast<unsigned long long>(ss.resmooth_misses),
              static_cast<unsigned long long>(ss.covariance_upgrades),
              static_cast<unsigned long long>(ss.steps_spliced));

  // ---- nonlinear tenants: pendulum tracks, then one streaming session ----
  const index k = 160;
  std::vector<engine::NonlinearJob> jobs;
  for (int t = 0; t < 8; ++t) {
    la::Rng jr = rng.split();
    jobs.push_back({kalman::make_pendulum_benchmark(jr, k, 0.4 + 0.2 * jr.uniform()),
                    std::vector<Vector>(static_cast<std::size_t>(k + 1), Vector({0.1, 0.0}))});
  }
  engine::NonlinearJobOptions nopts;
  nopts.gn.levenberg_marquardt = true;
  auto nfutures = eng.submit_nonlinear_batch(std::move(jobs), nopts);
  eng.wait_idle();
  for (auto& f : nfutures) (void)f.get();

  la::Rng srng = rng.split();
  kalman::NonlinearModel track = kalman::make_pendulum_benchmark(srng, k, 0.5);
  kalman::NonlinearModel seed = track;
  seed.k = 0;
  seed.dims.resize(1);
  seed.obs.resize(1);
  engine::NonlinearSession nls = eng.open_nonlinear_session(seed, Vector({0.1, 0.0}), nopts);
  kalman::SmootherResult nsmoothed;
  for (index i = 1; i <= k; ++i) {
    nls.advance(track.obs[static_cast<std::size_t>(i)]);
    if (i % 40 == 0) nls.smooth_into(nsmoothed);
  }
  nls.smooth_into(nsmoothed);  // unchanged: served from the cache
  const engine::NonlinearSessionStats ns = nls.stats();
  std::printf("nonlinear session: %llu cache hits, %llu misses (%llu warm / %llu cold "
              "solves), %llu outer iterations total\n\n",
              static_cast<unsigned long long>(ns.cache_hits),
              static_cast<unsigned long long>(ns.cache_misses),
              static_cast<unsigned long long>(ns.warm_solves),
              static_cast<unsigned long long>(ns.cold_solves),
              static_cast<unsigned long long>(ns.total_outer_iterations));

  // Refresh the engine-level gauges, then export all three renderings.
  (void)eng.stats();
  std::printf("---- Prometheus exposition (what a scrape would return) ----\n%s\n",
              obs::MetricsRegistry::global().to_prometheus().c_str());

  const char* metrics_path = "observability_demo.metrics.json";
  const char* trace_path = "observability_demo.trace.json";
  const bool metrics_ok = obs::MetricsRegistry::global().write(metrics_path);
  obs::trace::set_enabled(false);  // quiesce before the export
  const bool trace_ok = obs::trace::write(trace_path);
  std::printf("wrote %s (%s) and %s (%s; %llu events, %llu dropped)\n", metrics_path,
              metrics_ok ? "ok" : "FAILED", trace_path, trace_ok ? "ok" : "FAILED",
              static_cast<unsigned long long>(obs::trace::event_count()),
              static_cast<unsigned long long>(obs::trace::dropped_count()));

  const bool ok = metrics_ok && trace_ok && obs::trace::event_count() > 0 &&
                  ss.resmooth_hits > 0 && ss.resmooth_misses > 0 &&
                  ss.covariance_upgrades > 0 && ns.cache_hits > 0;
  std::printf("%s\n", ok ? "[OK ] observability demo sane" : "[???] observability demo FAILED");
  return ok ? 0 : 1;
}
