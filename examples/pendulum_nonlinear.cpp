/// \file pendulum_nonlinear.cpp
/// Nonlinear smoothing via Gauss-Newton / Levenberg-Marquardt iteration
/// (Section 2.2 of the paper), using the Odd-Even NC solver as the inner
/// linear engine — the workload the paper's "NC" variants are optimized for.
///
/// Model: a pendulum with state (angle, angular velocity),
///   theta_{i+1} = theta_i + dt * omega_i
///   omega_{i+1} = omega_i - dt * (g/l) sin(theta_i)
/// observed through o_i = sin(theta_i) + noise (a classic benchmark from
/// Särkkä's book).  We compare plain GN and LM from a deliberately poor
/// initial trajectory.

#include <cmath>
#include <cstdio>

#include "core/gauss_newton.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  using namespace pitk;
  using kalman::CovFactor;

  const la::index k = 400;
  const double dt = 0.01;
  const double gl = 9.81;
  la::Rng rng(99);

  kalman::NonlinearModel model;
  model.k = k;
  model.dims.assign(static_cast<std::size_t>(k + 1), 2);
  model.f = [dt, gl](la::index, const la::Vector& u) {
    la::Vector v(2);
    v[0] = u[0] + dt * u[1];
    v[1] = u[1] - dt * gl * std::sin(u[0]);
    return v;
  };
  model.f_jac = [dt, gl](la::index, const la::Vector& u) {
    return la::Matrix({{1.0, dt}, {-dt * gl * std::cos(u[0]), 1.0}});
  };
  model.process_noise = [](la::index) { return CovFactor::scaled_identity(2, 1e-5); };
  model.g = [](la::index, const la::Vector& u) { return la::Vector({std::sin(u[0])}); };
  model.g_jac = [](la::index, const la::Vector& u) {
    la::Matrix j(1, 2);
    j(0, 0) = std::cos(u[0]);
    return j;
  };
  model.obs_noise = [](la::index) { return CovFactor::scaled_identity(1, 0.01); };

  // Ground truth + noisy observations.
  std::vector<la::Vector> truth;
  la::Vector u({1.2, 0.0});  // large initial swing: visibly nonlinear regime
  truth.push_back(u);
  model.obs.resize(static_cast<std::size_t>(k + 1));
  for (la::index i = 0; i <= k; ++i) {
    if (i > 0) {
      u = model.f(i, u);
      u[0] += 0.003 * rng.gaussian();
      u[1] += 0.003 * rng.gaussian();
      truth.push_back(u);
    }
    model.obs[static_cast<std::size_t>(i)] = la::Vector({std::sin(u[0]) + 0.1 * rng.gaussian()});
  }

  // Poor initial guess: motionless pendulum at a small angle.
  std::vector<la::Vector> init(static_cast<std::size_t>(k + 1), la::Vector({0.3, 0.0}));

  par::ThreadPool pool;
  auto report = [&](const char* name, const kalman::GaussNewtonResult& res) {
    double mae = 0.0;
    for (la::index i = 0; i <= k; ++i)
      mae += std::abs(res.states[static_cast<std::size_t>(i)][0] -
                      truth[static_cast<std::size_t>(i)][0]);
    mae /= static_cast<double>(k + 1);
    std::printf("%-18s iters=%2lld converged=%d final_cost=%10.4f angle MAE=%.4f\n", name,
                static_cast<long long>(res.iterations), res.converged, res.final_cost, mae);
    return mae;
  };

  kalman::GaussNewtonOptions gn_opts;
  gn_opts.final_covariance = true;
  kalman::GaussNewtonResult gn = kalman::gauss_newton_smooth(model, init, pool, gn_opts);
  const double gn_mae = report("gauss-newton", gn);

  kalman::GaussNewtonOptions lm_opts;
  lm_opts.levenberg_marquardt = true;
  kalman::GaussNewtonResult lm = kalman::gauss_newton_smooth(model, init, pool, lm_opts);
  const double lm_mae = report("levenberg-marquardt", lm);

  std::printf("\ncost history (GN): ");
  for (double c : gn.cost_history) std::printf("%.2f ", c);
  std::printf("\n");

  std::printf("final-state angle: truth=%.4f est=%.4f +- %.4f\n",
              truth.back()[0], gn.states.back()[0],
              std::sqrt(gn.covariances.back()(0, 0)));

  return (gn.converged && lm.converged && gn_mae < 0.1 && lm_mae < 0.1) ? 0 : 1;
}
