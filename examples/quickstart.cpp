/// \file quickstart.cpp
/// Minimal end-to-end use of the library: build a small linear smoothing
/// problem with the incremental API, run the parallel Odd-Even smoother, and
/// print the smoothed states with 1-sigma uncertainties.
///
///   $ ./quickstart
///
/// The model is a 1-D constant-velocity target (state = [position, velocity])
/// observed through noisy position measurements.

#include <cstdio>
#include <cmath>

#include "core/oddeven.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  using namespace pitk;
  using kalman::CovFactor;

  la::Rng rng(7);

  // 1. Simulate a trajectory: 20 steps of dt = 0.5 s, starting at position 0
  //    with velocity 1 m/s, observing positions with sigma = 0.4 m.
  kalman::SimSpec spec = kalman::constant_velocity_spec(
      /*axes=*/1, /*k=*/20, /*dt=*/0.5, /*process_std=*/0.05, /*obs_std=*/0.4,
      la::Vector({0.0, 1.0}));
  kalman::Simulation sim = kalman::simulate(rng, spec);

  // 2. Anchor the initial state with a prior, expressed as an observation
  //    (QR smoothers do not *require* this — see navigation_unknown_init).
  kalman::GaussianPrior prior;
  prior.mean = la::Vector({0.0, 1.0});
  prior.cov = la::Matrix({{1.0, 0.0}, {0.0, 1.0}});
  kalman::Problem problem = kalman::with_prior_observation(sim.problem, prior);

  // 3. Smooth, in parallel, with covariances.
  par::ThreadPool pool;  // all hardware cores
  kalman::SmootherResult result = kalman::oddeven_smooth(problem, pool, {});

  // 4. Report.
  std::printf("step   true_pos   est_pos   est_vel   sigma_pos\n");
  for (std::size_t i = 0; i < result.means.size(); ++i) {
    std::printf("%4zu   %8.3f   %7.3f   %7.3f   %9.3f\n", i, sim.truth[i][0],
                result.means[i][0], result.means[i][1],
                std::sqrt(result.covariances[i](0, 0)));
  }

  // 5. The smoother must beat the raw measurements.
  double obs_sse = 0.0;
  double est_sse = 0.0;
  int count = 0;
  for (la::index i = 0; i <= spec.k; ++i) {
    if (!sim.problem.step(i).observation) continue;
    const double truth = sim.truth[static_cast<std::size_t>(i)][0];
    obs_sse += std::pow(sim.problem.step(i).observation->o[0] - truth, 2);
    est_sse += std::pow(result.means[static_cast<std::size_t>(i)][0] - truth, 2);
    ++count;
  }
  std::printf("\nposition RMSE: observations %.4f, smoothed %.4f (%d steps)\n",
              std::sqrt(obs_sse / count), std::sqrt(est_sse / count), count);
  return est_sse < obs_sse ? 0 : 1;
}
