/// \file nonlinear_tenants.cpp
/// Nonlinear tenants through the multi-tenant engine.
///
/// Two serving patterns for iterated (Gauss-Newton/LM) smoothing:
///
///  1. Batch: many independent pendulum tracks submitted with
///     submit_nonlinear_batch — each tenant's outer loop runs as one engine
///     job, its inner linearized solves served by the executing worker's
///     warm SolverCache, so tenants interleave on one shared pool.
///  2. Streaming: a NonlinearSession that receives measurements one at a
///     time and re-smooths on demand, warm-started from the previous
///     smooth's cached means — steady-state re-smooths converge in a couple
///     of outer iterations instead of a cold solve's many.

#include <cstdio>
#include <vector>

#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "kalman/simulate.hpp"

using namespace pitk;
using la::index;
using la::Vector;

namespace {

/// The shared noisy-pendulum benchmark with a per-tenant start angle.
kalman::NonlinearModel pendulum(la::Rng& rng, index k) {
  return kalman::make_pendulum_benchmark(rng, k, 0.4 + 0.2 * rng.uniform());
}

std::vector<Vector> flat_init(index k) {
  return std::vector<Vector>(static_cast<std::size_t>(k + 1), Vector({0.1, 0.0}));
}

}  // namespace

int main() {
  la::Rng rng(0x7E4A47);
  engine::SmootherEngine eng;
  std::printf("nonlinear tenants on a %u-way engine\n\n", eng.concurrency());

  // ---- batch: 32 pendulum tenants, Gauss-Newton outer loops as jobs ----
  const index k = 192;
  std::vector<engine::NonlinearJob> jobs;
  for (int t = 0; t < 32; ++t) {
    la::Rng jr = rng.split();
    jobs.push_back({pendulum(jr, k), flat_init(k)});
  }
  engine::NonlinearJobOptions opts;
  opts.gn.levenberg_marquardt = true;  // robust default for rough inits
  auto futures = eng.submit_nonlinear_batch(std::move(jobs), opts);
  eng.wait_idle();

  la::index total_iters = 0;
  int converged = 0;
  for (auto& f : futures) {
    engine::JobResult jr = f.get();
    total_iters += jr.metrics.outer_iterations;
    converged += jr.metrics.nonlinear_converged ? 1 : 0;
  }
  const engine::EngineStats st = eng.stats();
  std::printf("batch: %d/32 tenants converged, %.1f outer iterations/job\n", converged,
              static_cast<double>(total_iters) / 32.0);
  std::printf("engine totals: %llu jobs (%llu nonlinear), %llu outer iterations\n\n",
              static_cast<unsigned long long>(st.jobs_completed),
              static_cast<unsigned long long>(st.nonlinear_jobs),
              static_cast<unsigned long long>(st.total_outer_iterations));

  // ---- streaming: one tenant, warm-started re-smooth every 64 steps ----
  la::Rng srng = rng.split();
  kalman::NonlinearModel track = pendulum(srng, k);
  kalman::NonlinearModel seed = track;
  seed.k = 0;
  seed.dims.resize(1);
  seed.obs.resize(1);
  engine::NonlinearSession session =
      eng.open_nonlinear_session(seed, Vector({0.1, 0.0}), opts);

  std::printf("streaming tenant (re-smooth every 64 steps):\n");
  kalman::SmootherResult smoothed;
  for (index i = 1; i <= k; ++i) {
    session.advance(track.obs[static_cast<std::size_t>(i)]);
    if (i % 64 == 0) {
      session.smooth_into(smoothed);
      const engine::NonlinearSolveInfo info = session.last_info();
      std::printf("  step %4lld: %lld outer iterations (%s), cost %.4f, angle %+.3f\n",
                  static_cast<long long>(i), static_cast<long long>(info.iterations),
                  info.converged ? "converged" : "not converged", info.final_cost,
                  smoothed.means.back()[0]);
    }
  }
  engine::JobResult final_jr = session.smooth_async(/*with_covariances=*/true).get();
  std::printf("final async smooth: %lld iterations, %zu covariances\n",
              static_cast<long long>(final_jr.metrics.outer_iterations),
              final_jr.result.covariances.size());
  return 0;
}
