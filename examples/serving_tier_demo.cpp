/// \file serving_tier_demo.cpp
/// The sharded serving tier end to end through the one public umbrella
/// header: a fleet of tenants in all three classes runs a mixed workload —
/// batch smooths, a durable streaming session, a nonlinear track — against
/// a ServingTier, then the process prints the per-class tier accounting an
/// operator would look at (submitted/direct/batched/shed, flush causes,
/// placement) and proves a restart recovers every durable tenant on the
/// shard that owns it.
///
/// Knobs (all optional): PITK_SHARDS, PITK_SERVE_THREADS,
/// PITK_SERVE_FLUSH_JOBS, PITK_SERVE_FLUSH_MS, PITK_SERVE_WAIT_MS.

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "pitk.hpp"

using namespace pitk;
using la::index;
using la::Vector;

namespace {

serve::TenantClass class_of(int i) {
  if (i % 4 == 0) return serve::TenantClass::Interactive;
  if (i % 4 == 3) return serve::TenantClass::BestEffort;
  return serve::TenantClass::Standard;
}

}  // namespace

int main() {
  la::Rng rng(2025);
  serve::ServingTier tier;
  std::printf("serving tier: %u shards x %u threads\n", tier.num_shards(),
              tier.options().threads_per_shard);

  // --- batch traffic: 24 tenants spread across the classes -----------------
  std::vector<std::future<engine::JobResult>> futs;
  for (int i = 0; i < 24; ++i) {
    const std::string id = "tenant-" + std::to_string(i);
    serve::TenantHandle t = tier.tenant(id, class_of(i));
    serve::Request req;
    req.problem = kalman::make_paper_benchmark(rng, 4, 64);
    req.prior = kalman::diffuse_prior(4);
    req.compute_covariance = false;
    futs.push_back(tier.submit(t, std::move(req)));
  }

  // --- one durable streaming tenant ----------------------------------------
  const std::string dir = "serve_demo_ckpt";
  std::filesystem::remove_all(dir);
  io::DurabilityOptions dopts;
  dopts.dir = dir;
  io::SessionStore store(dopts);
  serve::TenantHandle ten = tier.tenant("stream-7", serve::TenantClass::Interactive);
  {
    engine::Session s =
        tier.open_session(ten, 2, engine::SessionOptions{}.durable(store, ""));
    la::Matrix f = la::Matrix::identity(2);
    la::Vector c({0.1, -0.1});
    for (int i = 0; i < 32; ++i) {
      s.evolve(f, c, kalman::CovFactor::identity(2));
      s.observe(la::Matrix::identity(2), Vector({0.1 * i, -0.1 * i}),
                kalman::CovFactor::identity(2));
    }
    const kalman::SmootherResult sr = s.smooth(false);
    std::printf("durable stream on shard %u: %zu smoothed states\n", ten.shard(),
                sr.means.size());
  }

  // --- one nonlinear tenant (submit-through, admission still applies) ------
  {
    serve::TenantHandle nt = tier.tenant("pendulum-0", serve::TenantClass::Standard);
    engine::NonlinearSession ns = tier.open_session(nt, kalman::make_pendulum_benchmark(rng, 48, 0.5),
                                                    Vector({0.5, 0.0}));
    const kalman::SmootherResult sr = ns.smooth();
    std::printf("nonlinear tenant on shard %u: %zu states\n", nt.shard(), sr.means.size());
  }

  int ok = 0;
  for (auto& f : futs) ok += f.get().result.means.empty() ? 0 : 1;
  tier.wait_idle();

  const serve::TierStats st = tier.stats();
  std::printf("%d/%zu batch smooths completed\n", ok, futs.size());
  for (unsigned c = 0; c < serve::num_tenant_classes; ++c)
    std::printf("  %-11s submitted %3llu  direct %3llu  batched %3llu  shed %3llu\n",
                serve::tenant_class_name(static_cast<serve::TenantClass>(c)),
                static_cast<unsigned long long>(st.classes[c].submitted),
                static_cast<unsigned long long>(st.classes[c].direct),
                static_cast<unsigned long long>(st.classes[c].batched),
                static_cast<unsigned long long>(st.classes[c].shed));
  std::printf("  flushes: %llu by size, %llu by deadline\n",
              static_cast<unsigned long long>(st.size_flushes),
              static_cast<unsigned long long>(st.deadline_flushes));

  // --- restart: a fresh tier recovers the durable tenant on its shard ------
  serve::ServingTier tier2;
  std::size_t recovered = 0;
  for (auto& [shard, rec] : tier2.recover(store)) {
    for (auto& [id, session] : rec.linear) {
      const kalman::SmootherResult sr = session.smooth(false);
      std::printf("recovered '%s' on shard %u: %zu states\n", id.c_str(), shard,
                  sr.means.size());
      ++recovered;
    }
  }
  std::filesystem::remove_all(dir);
  if (ok != static_cast<int>(futs.size()) || recovered == 0) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
