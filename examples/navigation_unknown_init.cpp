/// \file navigation_unknown_init.cpp
/// Features only the QR-based smoothers support (paper Section 6):
///
///   1. Unknown initial state: an inertial-navigation-style scenario where
///      nothing is known about u_0 — no prior at all.  Conventional and
///      associative smoothers cannot pose this problem.
///   2. Rectangular H_i / state dimension change mid-trajectory: the target
///      acquires a sensor bias state halfway through (dimension grows 2->3).
///
/// Both are solved with the parallel Odd-Even smoother and cross-checked
/// against the sequential Paige-Saunders smoother.

#include <cmath>
#include <cstdio>

#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace pitk;
using kalman::CovFactor;

/// Part 1: dead-reckoning chain with no prior.  Velocity observed rarely;
/// the initial state is recovered purely from later observations flowing
/// backward through the dynamics.
int unknown_initial_state(par::ThreadPool& pool) {
  std::printf("== part 1: unknown initial state (no prior anywhere) ==\n");
  la::Rng rng(4);
  const la::index k = 60;
  const double dt = 0.1;
  la::Matrix f({{1.0, dt}, {0.0, 1.0}});

  // Truth.
  std::vector<la::Vector> truth;
  la::Vector u({3.0, -0.5});  // the smoother never sees this directly
  truth.push_back(u);
  kalman::Problem p;
  p.start(2);
  for (la::index i = 1; i <= k; ++i) {
    la::Vector next(2);
    la::gemv(1.0, f.view(), la::Trans::No, u.span(), 0.0, next.span());
    next[0] += 0.01 * rng.gaussian();
    next[1] += 0.01 * rng.gaussian();
    u = next;
    truth.push_back(u);
    p.evolve(f, la::Vector(), CovFactor::scaled_identity(2, 1e-4));
    if (i % 10 == 0) {
      // Sparse position fixes only; 6 fixes over the whole trajectory.
      p.observe(la::Matrix({{1.0, 0.0}}), la::Vector({u[0] + 0.05 * rng.gaussian()}),
                CovFactor::scaled_identity(1, 0.0025));
    }
  }

  kalman::SmootherResult oe = kalman::oddeven_smooth(p, pool, {});
  kalman::SmootherResult ps = kalman::paige_saunders_smooth(p, {});

  double max_diff = 0.0;
  for (std::size_t i = 0; i < oe.means.size(); ++i)
    max_diff = std::max(max_diff, la::max_abs_diff(oe.means[i].span(), ps.means[i].span()));

  std::printf("  recovered u_0 = (%.3f, %.3f), truth = (%.3f, %.3f)\n", oe.means[0][0],
              oe.means[0][1], truth[0][0], truth[0][1]);
  std::printf("  sigma(u_0) = (%.3f, %.3f)  [uncertainty from SelInv]\n",
              std::sqrt(oe.covariances[0](0, 0)), std::sqrt(oe.covariances[0](1, 1)));
  std::printf("  max |odd-even - paige-saunders| = %.3e\n", max_diff);

  const bool ok = std::abs(oe.means[0][0] - truth[0][0]) < 0.5 &&
                  std::abs(oe.means[0][1] - truth[0][1]) < 0.5 && max_diff < 1e-7;
  std::printf("  %s\n\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

/// Part 2: the state dimension grows from 2 (position, velocity) to
/// 3 (position, velocity, sensor bias) at step 30 using a rectangular H.
int dimension_change(par::ThreadPool& pool) {
  std::printf("== part 2: rectangular H, state dimension 2 -> 3 ==\n");
  la::Rng rng(8);
  const la::index k = 60;
  const la::index switch_step = 30;
  const double dt = 0.1;
  const double bias_true = 0.7;

  kalman::Problem p;
  p.start(2);
  p.observe(la::Matrix::identity(2), la::Vector({0.0, 1.0}), CovFactor::scaled_identity(2, 0.01));

  la::Vector u({0.0, 1.0});
  for (la::index i = 1; i <= k; ++i) {
    u[0] += dt * u[1];
    u[0] += 0.005 * rng.gaussian();

    if (i < switch_step) {
      p.evolve(la::Matrix({{1.0, dt}, {0.0, 1.0}}), la::Vector(),
               CovFactor::scaled_identity(2, 1e-4));
      p.observe(la::Matrix({{1.0, 0.0}}), la::Vector({u[0] + 0.02 * rng.gaussian()}),
                CovFactor::scaled_identity(1, 4e-4));
    } else if (i == switch_step) {
      // Dimension change: H is 2x3 (it only constrains the two physical
      // components of the new state; the bias is free until observed).
      la::Matrix h(2, 3);
      h(0, 0) = 1.0;
      h(1, 1) = 1.0;
      la::Matrix f({{1.0, dt}, {0.0, 1.0}});
      p.evolve_rect(3, h, f, la::Vector(), CovFactor::scaled_identity(2, 1e-4));
      // From now on the sensor reads position + bias.
      p.observe(la::Matrix({{1.0, 0.0, 1.0}}),
                la::Vector({u[0] + bias_true + 0.02 * rng.gaussian()}),
                CovFactor::scaled_identity(1, 4e-4));
    } else {
      la::Matrix f(3, 3);
      f(0, 0) = 1.0;
      f(0, 1) = dt;
      f(1, 1) = 1.0;
      f(2, 2) = 1.0;  // bias is constant
      p.evolve(f, la::Vector(), CovFactor::diagonal(la::Vector({1e-4, 1e-4, 1e-8})));
      p.observe(la::Matrix({{1.0, 0.0, 1.0}}),
                la::Vector({u[0] + bias_true + 0.02 * rng.gaussian()}),
                CovFactor::scaled_identity(1, 4e-4));
    }
  }

  kalman::SmootherResult oe = kalman::oddeven_smooth(p, pool, {});
  kalman::SmootherResult ps = kalman::paige_saunders_smooth(p, {});
  double max_diff = 0.0;
  for (std::size_t i = 0; i < oe.means.size(); ++i)
    max_diff = std::max(max_diff, la::max_abs_diff(oe.means[i].span(), ps.means[i].span()));

  const la::Vector& last = oe.means.back();
  std::printf("  estimated sensor bias = %.4f (truth %.4f), sigma = %.4f\n", last[2], bias_true,
              std::sqrt(oe.covariances.back()(2, 2)));
  std::printf("  max |odd-even - paige-saunders| = %.3e\n", max_diff);
  const bool ok = std::abs(last[2] - bias_true) < 0.1 && max_diff < 1e-7;
  std::printf("  %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  par::ThreadPool pool;
  int rc = unknown_initial_state(pool);
  rc += dimension_change(pool);
  return rc;
}
