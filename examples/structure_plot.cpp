/// \file structure_plot.cpp
/// Reproduces Figure 1 of the paper: the nonzero block structure of the R
/// factor produced by the odd-even algorithm for k = 50 states (51 block
/// columns), rendered as ASCII art.  Rows are printed in elimination order
/// (levels top to bottom) against the odd-even *permuted* column order, which
/// makes the upper-triangular shape visible, exactly as in the paper's
/// figure.
///
///   usage: structure_plot [k]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/oddeven.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace pitk;
  const la::index k = argc > 1 ? std::atoll(argv[1]) : 50;

  la::Rng rng(1);
  kalman::Problem p = kalman::make_paper_benchmark(rng, /*n=*/2, k);
  par::ThreadPool pool(1);
  kalman::OddEvenFactor f = kalman::oddeven_factor(p, pool);

  // Permuted column order: concatenate the diagonal columns of each level in
  // emission order (evens of level 0, evens of level 1 = odds of level 0,
  // ...).  This is exactly the recursive odd-even permutation P.
  std::vector<la::index> perm_pos(static_cast<std::size_t>(f.num_states()));
  {
    la::index pos = 0;
    for (const auto& lev : f.levels)
      for (const auto& row : lev.rows) perm_pos[static_cast<std::size_t>(row.col)] = pos++;
  }

  const la::index nstates = f.num_states();
  std::vector<std::string> grid(static_cast<std::size_t>(nstates),
                                std::string(static_cast<std::size_t>(nstates), '.'));
  la::index row_pos = 0;
  for (const auto& lev : f.levels) {
    for (const auto& row : lev.rows) {
      auto& line = grid[static_cast<std::size_t>(row_pos)];
      line[static_cast<std::size_t>(perm_pos[static_cast<std::size_t>(row.col)])] = '#';
      if (row.left >= 0) line[static_cast<std::size_t>(perm_pos[static_cast<std::size_t>(row.left)])] = '#';
      if (row.right >= 0) line[static_cast<std::size_t>(perm_pos[static_cast<std::size_t>(row.right)])] = '#';
      ++row_pos;
    }
  }

  std::printf("R-factor nonzero block structure, odd-even algorithm, k = %lld "
              "(%lld block columns, permuted order; '#' = nonzero n-by-n block)\n\n",
              static_cast<long long>(k), static_cast<long long>(nstates));
  int below_diag = 0;
  for (la::index r = 0; r < nstates; ++r) {
    std::printf("%s\n", grid[static_cast<std::size_t>(r)].c_str());
    for (la::index c = 0; c < r; ++c)
      below_diag += grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] == '#';
  }
  std::printf("\nblocks below the diagonal: %d (must be 0: R is upper triangular)\n", below_diag);
  std::printf("levels: %zu (expected ~ceil(log2(k)) + 1)\n", f.levels.size());
  return below_diag == 0 ? 0 : 1;
}
