/// \file engine_demo.cpp
/// The batched multi-tenant engine serving hundreds of concurrent 2-D tracks.
///
/// Scenario: a radar site maintains 200 short vehicle tracks plus a handful
/// of long surveillance tracks, all smoothing concurrently on one shared
/// pool.  Short jobs ride the whole-job path (auto-selected sequential
/// backend, perfect job-level parallelism); the long jobs cross the
/// large-job cut and fan out inside the paper's odd-even smoother when
/// enough threads are available.  One extra track is served through the
/// streaming Session interface (evolve/observe as measurements arrive,
/// filtered estimate on demand, final smoothing pass on the pool).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"

namespace {

using namespace pitk;
using la::index;

struct Track {
  kalman::Simulation sim;
  kalman::GaussianPrior prior;
};

Track make_track(la::Rng& rng, index k, double drop_probability) {
  const la::Vector x0({rng.uniform(-50.0, 50.0), rng.uniform(-1.0, 1.0),
                       rng.uniform(-50.0, 50.0), rng.uniform(-1.0, 1.0)});
  kalman::SimSpec spec = kalman::constant_velocity_spec(
      /*axes=*/2, k, /*dt=*/0.5, /*process_std=*/0.08, /*obs_std=*/1.2, x0);
  auto base_g = spec.G;
  la::Rng drop_rng = rng.split();
  spec.G = [base_g, drop_rng, drop_probability](index i) mutable {
    return drop_rng.uniform() < drop_probability ? la::Matrix() : base_g(i);
  };
  Track t{kalman::simulate(rng, spec), {}};
  t.prior.mean = x0;
  t.prior.cov = la::Matrix::identity(4);
  return t;
}

double rmse_position(const kalman::Simulation& sim, const std::vector<la::Vector>& means) {
  double sse = 0.0;
  for (std::size_t i = 0; i < means.size(); ++i) {
    sse += std::pow(means[i][0] - sim.truth[i][0], 2) +
           std::pow(means[i][2] - sim.truth[i][2], 2);
  }
  return std::sqrt(sse / static_cast<double>(means.size()));
}

}  // namespace

int main() {
  la::Rng rng(0xDECAF);
  constexpr int short_tracks = 200;
  constexpr int long_tracks = 6;

  std::vector<Track> tracks;
  tracks.reserve(short_tracks + long_tracks);
  for (int i = 0; i < short_tracks; ++i) tracks.push_back(make_track(rng, 150, 0.3));
  for (int i = 0; i < long_tracks; ++i) tracks.push_back(make_track(rng, 2500, 0.3));

  engine::SmootherEngine eng;
  std::printf("engine: %u-way pool, %d short + %d long tracks\n", eng.concurrency(),
              short_tracks, long_tracks);

  // ---- batch tenants: every track as one job ----
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<engine::JobResult>> futures;
  futures.reserve(tracks.size());
  for (Track& t : tracks) {
    engine::JobOptions jo;
    jo.prior = t.prior;
    futures.push_back(eng.submit(t.sim.problem, jo));
  }
  eng.wait_idle();  // contribute the main thread instead of sleeping in get()
  double rmse_sum = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const engine::JobResult jr = futures[i].get();
    const double rmse = rmse_position(tracks[i].sim, jr.result.means);
    rmse_sum += rmse;
    worst = std::max(worst, rmse);
  }
  const double batch_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const engine::EngineStats st = eng.stats();
  std::printf("\nsmoothed %zu tracks in %.3f s (%.1f tracks/s)\n", futures.size(), batch_sec,
              static_cast<double>(futures.size()) / batch_sec);
  std::printf("  mean position RMSE: %.3f   worst: %.3f\n",
              rmse_sum / static_cast<double>(futures.size()), worst);
  std::printf("  scheduling: %llu whole-job, %llu intra-parallel\n",
              static_cast<unsigned long long>(st.jobs_small),
              static_cast<unsigned long long>(st.jobs_large));
  for (const engine::BackendInfo& info : engine::all_backends()) {
    const auto c = st.per_backend[engine::backend_index(info.id)];
    if (c != 0)
      std::printf("  backend %-16s served %llu jobs\n", info.name,
                  static_cast<unsigned long long>(c));
  }

  // ---- streaming tenant: one more track, measurement by measurement ----
  Track live = make_track(rng, 400, 0.3);
  engine::Session session = eng.open_session(4);
  const kalman::Problem& p = live.sim.problem;
  // The prior arrives as the session's first observation (QR formulation).
  session.observe(la::Matrix::identity(4), live.prior.mean,
                  kalman::CovFactor::dense(live.prior.cov));
  int estimates = 0;
  int resmooths = 0;
  kalman::SmootherResult warm;  // reused across incremental re-smooths
  for (index i = 0; i < p.num_states(); ++i) {
    const kalman::TimeStep& step = p.step(i);
    if (step.evolution) session.evolve(step.evolution->F, step.evolution->c, step.evolution->noise);
    if (step.observation)
      session.observe(step.observation->G, step.observation->o, step.observation->noise);
    if (i % 100 == 99 && session.estimate().has_value()) ++estimates;
    // Periodic full re-smooth of everything seen so far: the session's
    // ResmoothCache splices only the steps appended since the last pass,
    // so this is cheap enough to do mid-stream.
    if (i % 50 == 49) {
      session.smooth_into(warm, /*with_covariances=*/false);
      ++resmooths;
    }
  }
  const engine::JobResult smoothed = session.smooth_async(/*with_covariances=*/true).get();
  const double live_rmse = rmse_position(live.sim, smoothed.result.means);
  std::printf("\nstreaming session: %lld states, %d mid-stream estimates, "
              "%d incremental re-smooths, smoothed RMSE %.3f\n",
              static_cast<long long>(p.num_states()), estimates, resmooths, live_rmse);

  // Sanity for CI: estimates tracked truth and nothing degenerated.
  const bool ok = worst < 5.0 && live_rmse < 5.0 && estimates > 0 && resmooths > 0;
  std::printf("%s\n", ok ? "[OK ] engine demo sane" : "[???] engine demo FAILED sanity");
  return ok ? 0 : 1;
}
