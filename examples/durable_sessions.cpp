/// \file durable_sessions.cpp
/// Crash-consistent streaming sessions: the kill -9 demo CI actually kills.
///
/// Two modes over one checkpoint directory:
///
///   durable_sessions stream  <dir> [max_steps]
///       Opens a fleet of durable linear tracks plus one durable nonlinear
///       pendulum tenant and streams measurements into them (journal flushed
///       on every append).  Designed to be killed mid-stream — CI runs it
///       under `timeout -s KILL`, so the process dies between (or inside)
///       appends with no chance to clean up.
///
///   durable_sessions recover <dir>
///       recover_all() over whatever the crash left behind, then the strict
///       gate: every track's ops are a pure function of (id, step), so the
///       recovered session's smooth must agree to 1e-10 with a plain session
///       fed the same deterministic prefix.  A crash can land between the
///       evolve and the observe of a step, so both candidate prefixes are
///       checked — exactly one must match.  The recovered sessions then keep
///       streaming durably (they are live tenants again, not read-only
///       restores), so stream/kill/recover cycles compose.
///
/// Exit status: 0 when every session recovered and matched, 1 otherwise.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "io/session_store.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"

namespace {

using namespace pitk;
using la::index;

constexpr int kTracks = 6;
constexpr index kDim = 3;

std::string track_id(int t) { return "track-" + std::to_string(t); }

/// Deterministic per-(track, step) inputs: a fixed stable rotation for F, a
/// small control and observation derived from trig of the step index.  No
/// global state — the recover mode rebuilds identical ops from the id alone.
la::Matrix track_f() {
  const double c = std::cos(0.1);
  const double s = std::sin(0.1);
  la::Matrix f(kDim, kDim);
  f(0, 0) = c;  f(0, 1) = -s; f(0, 2) = 0.0;
  f(1, 0) = s;  f(1, 1) = c;  f(1, 2) = 0.0;
  f(2, 0) = 0.0; f(2, 1) = 0.0; f(2, 2) = 0.95;
  return f;
}

la::Vector track_c(int t, index step) {
  la::Vector c(kDim);
  for (index q = 0; q < kDim; ++q)
    c[q] = 0.05 * std::sin(0.3 * static_cast<double>(step) + t + static_cast<double>(q));
  return c;
}

la::Vector track_o(int t, index step) {
  la::Vector o(kDim);
  for (index q = 0; q < kDim; ++q)
    o[q] = std::cos(0.2 * static_cast<double>(step) + 0.7 * t) + 0.1 * static_cast<double>(q);
  return o;
}

/// One streamed step of track t: evolve to `step`, then observe it.
void append_step(engine::Session& s, int t, index step) {
  s.evolve(track_f(), track_c(t, step), kalman::CovFactor::identity(kDim));
  s.observe(la::Matrix::identity(kDim), track_o(t, step), kalman::CovFactor::identity(kDim));
}

/// Deterministic pendulum observation stream (the model callbacks come from
/// kalman::make_pendulum_benchmark and are pure functions of constants).
la::Vector pendulum_obs(index step) {
  return la::Vector({0.5 * std::cos(0.14 * static_cast<double>(step)) +
                     0.02 * std::sin(3.0 * static_cast<double>(step))});
}

kalman::NonlinearModel pendulum_callbacks() {
  // The rng only shapes the simulated observations, which we discard — the
  // callbacks themselves are deterministic (dt, g/l constants).
  la::Rng rng(1);
  kalman::NonlinearModel m = kalman::make_pendulum_benchmark(rng, 1, 0.5, true);
  m.k = 0;
  m.dims.assign(1, 2);
  m.obs.assign(1, pendulum_obs(0));
  return m;
}

int run_stream(const std::string& dir, long max_steps) {
  io::DurabilityOptions o = io::SessionStore::env_options();
  o.dir = dir;
  io::SessionStore store(o);
  engine::SmootherEngine eng;

  std::vector<engine::Session> tracks;
  for (int t = 0; t < kTracks; ++t)
    tracks.push_back(eng.open_durable_session(store, track_id(t), kDim));
  engine::NonlinearSession pend = eng.open_durable_nonlinear_session(
      store, "pendulum", pendulum_callbacks(), la::Vector({0.5, 0.0}));

  std::printf("streaming %d linear tracks + 1 pendulum into %s (kill me)\n", kTracks,
              dir.c_str());
  std::fflush(stdout);
  kalman::SmootherResult warm;
  for (index step = 1; step <= static_cast<index>(max_steps); ++step) {
    for (int t = 0; t < kTracks; ++t) append_step(tracks[static_cast<std::size_t>(t)], t, step);
    pend.advance(pendulum_obs(step));
    if (step % 64 == 0) {
      // Mid-stream smooths keep the warm-means compaction path hot.
      tracks[0].smooth_into(warm, false);
      (void)pend.smooth();
      std::printf("  step %lld journaled\n", static_cast<long long>(step));
      std::fflush(stdout);
    }
  }
  std::printf("stream finished without being killed (max_steps=%ld)\n", max_steps);
  return 0;
}

/// Worst mean deviation between two smooths (means only).
double deviation(const kalman::SmootherResult& a, const kalman::SmootherResult& b) {
  if (a.means.size() != b.means.size()) return 1e300;
  double d = 0.0;
  for (std::size_t i = 0; i < a.means.size(); ++i)
    d = std::max(d, la::max_abs_diff(a.means[i].span(), b.means[i].span()));
  return d;
}

int run_recover(const std::string& dir) {
  io::DurabilityOptions o = io::SessionStore::env_options();
  o.dir = dir;
  io::SessionStore store(o);
  engine::SmootherEngine eng;

  engine::RecoveryOptions ro;
  ro.nonlinear_model = [](const std::string&) { return pendulum_callbacks(); };
  engine::RecoveredSessions rec = eng.recover_all(store, ro);
  std::printf("recovered %zu linear + %zu nonlinear sessions, %zu failed, "
              "%llu torn tails, %llu replayed records\n",
              rec.linear.size(), rec.nonlinear.size(), rec.failed.size(),
              static_cast<unsigned long long>(rec.torn_tails),
              static_cast<unsigned long long>(rec.replayed_records));
  for (const auto& [id, why] : rec.failed)
    std::printf("  [???] %s: %s\n", id.c_str(), why.c_str());

  bool ok = rec.failed.empty() && rec.linear.size() == kTracks && rec.nonlinear.size() == 1;

  for (auto& [id, session] : rec.linear) {
    const int t = std::atoi(id.c_str() + std::strlen("track-"));
    const index steps = session.current_step();
    const kalman::SmootherResult got = session.smooth(false);

    // The crash may have landed between the evolve and the observe of the
    // last step: rebuild both candidate prefixes and require exactly one
    // bit-level match.
    engine::Session full = eng.open_session(kDim);
    for (index i = 1; i <= steps; ++i) append_step(full, t, i);
    const double full_dev = deviation(got, full.smooth(false));
    double best = full_dev;
    bool torn_step = false;
    if (steps > 0 && best > 1e-10) {
      engine::Session half = eng.open_session(kDim);
      for (index i = 1; i < steps; ++i) append_step(half, t, i);
      half.evolve(track_f(), track_c(t, steps), kalman::CovFactor::identity(kDim));
      const double half_dev = deviation(got, half.smooth(false));
      torn_step = half_dev < 1e-10;
      best = std::min(best, half_dev);
    }
    const bool match = best < 1e-10;
    ok = ok && match;
    // Resume exactly where the stream left off: a step whose observe chunk
    // was torn off gets its (deterministic) observation re-appended, so the
    // journal is a whole-step history again before more steps pile on.
    if (torn_step)
      session.observe(la::Matrix::identity(kDim), track_o(t, steps),
                      kalman::CovFactor::identity(kDim));
    std::printf("  [%s] %-10s %6lld steps, recovered smooth |diff| %.2e%s\n",
                match ? "OK " : "???", id.c_str(), static_cast<long long>(steps), best,
                torn_step ? "  (re-observed the torn step)" : "");
  }

  for (auto& [id, session] : rec.nonlinear) {
    kalman::SmootherResult sm;
    session.smooth_into(sm, false);
    bool finite = session.last_info().converged;
    for (const la::Vector& m : sm.means)
      for (index q = 0; q < m.size(); ++q) finite = finite && std::isfinite(m[q]);
    ok = ok && finite;
    std::printf("  [%s] %-10s %6lld steps, recovered Gauss-Newton smooth %s\n",
                finite ? "OK " : "???", id.c_str(),
                static_cast<long long>(session.current_step()),
                finite ? "converged" : "DIVERGED");
  }

  // Recovered sessions are durable tenants again: stream a few more steps
  // through the reattached journals so kill/recover cycles compose.
  for (auto& [id, session] : rec.linear) {
    const int t = std::atoi(id.c_str() + std::strlen("track-"));
    const index base = session.current_step();
    for (index i = base + 1; i <= base + 8; ++i) append_step(session, t, i);
  }
  for (auto& [id, session] : rec.nonlinear)
    for (index i = 0; i < 8; ++i) session.advance(pendulum_obs(session.current_step() + 1));

  std::printf("%s\n", ok ? "[OK ] crash recovery gate passed"
                         : "[???] crash recovery gate FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s stream <dir> [max_steps]\n"
                 "       %s recover <dir>\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode == "stream")
    return run_stream(dir, argc > 3 ? std::atol(argv[3]) : 1000000L);
  if (mode == "recover") return run_recover(dir);
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
