/// \file smooth_cli.cpp
/// Command-line smoother: the library as a downstream user would script it.
///
///   smooth_cli generate <n> <k> <seed> <file>   write a Section-5.2 problem
///   smooth_cli run <file> [options]             smooth a problem file
///
/// Options for `run`:
///   --algorithm oddeven|ps|cyclic   (default oddeven)
///   --threads N                     (default: hardware)
///   --grain B                       (default 10, the paper's block size)
///   --no-cov                        skip the covariance phase (NC variant)
///   --output FILE                   CSV destination (default stdout)
///
/// Only the prior-less QR/normal-equations algorithms are exposed: a problem
/// file is self-contained, while RTS/associative would need a prior supplied
/// out of band.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/normal_equations.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "kalman/io.hpp"
#include "kalman/simulate.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace pitk;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  smooth_cli generate <n> <k> <seed> <file>\n"
               "  smooth_cli run <file> [--algorithm oddeven|ps|cyclic] [--threads N]\n"
               "                [--grain B] [--no-cov] [--output FILE]\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc != 6) return usage();
  const la::index n = std::atoll(argv[2]);
  const la::index k = std::atoll(argv[3]);
  la::Rng rng(static_cast<std::uint64_t>(std::atoll(argv[4])));
  kalman::Problem p = kalman::make_paper_benchmark(rng, n, k);
  kalman::save_problem(argv[5], p);
  std::fprintf(stderr, "wrote %lld states (n=%lld) to %s\n",
               static_cast<long long>(p.num_states()), static_cast<long long>(n), argv[5]);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string algorithm = "oddeven";
  std::string output;
  unsigned threads = par::ThreadPool::hardware_cores();
  la::index grain = par::default_grain;
  bool with_cov = true;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--algorithm") algorithm = next();
    else if (arg == "--threads") threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--grain") grain = std::atoll(next());
    else if (arg == "--no-cov") with_cov = false;
    else if (arg == "--output") output = next();
    else return usage();
  }

  kalman::Problem p = kalman::load_problem(argv[2]);
  par::ThreadPool pool(threads);

  const auto t0 = std::chrono::steady_clock::now();
  kalman::SmootherResult result;
  if (algorithm == "oddeven") {
    result = kalman::oddeven_smooth(p, pool, {.compute_covariance = with_cov, .grain = grain});
  } else if (algorithm == "ps") {
    result = kalman::paige_saunders_smooth(p, {.compute_covariance = with_cov});
  } else if (algorithm == "cyclic") {
    result.means = kalman::normal_cyclic_smooth(p, pool, {.grain = grain});
  } else {
    return usage();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::fprintf(stderr, "%s: %lld states smoothed in %.3fs on %u threads\n", algorithm.c_str(),
               static_cast<long long>(p.num_states()), seconds, pool.concurrency());

  if (output.empty()) {
    kalman::write_result_csv(std::cout, result);
  } else {
    std::ofstream os(output);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", output.c_str());
      return 1;
    }
    kalman::write_result_csv(os, result);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
