#pragma once

/// \file pitk/serve.hpp
/// Public umbrella of the sharded serving tier — the front door a service
/// embeds.  Everything a caller needs to place tenants, submit requests,
/// open (durable) sessions, and read tier stats:
///
///   pitk::serve::ServingTier, ServeOptions, ClassOptions, TenantClass,
///   TenantHandle, Request, TierStats
///   pitk::engine::SubmitOptions, SessionOptions, JobResult  (via engine)
///
/// The engine itself stays reachable (shard_engine()) for tooling, but
/// request traffic should flow through the tier API only.

#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "io/session_store.hpp"
#include "serve/options.hpp"
#include "serve/serving_tier.hpp"
#include "serve/tenant.hpp"
