#include "fault/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace pitk::fault {

namespace {

/// One armed (site, kind).  Sites are short literals; the fixed-size name
/// buffer avoids any allocation on the fire path.  `active` is the
/// publication flag: the arming thread fills every field, then stores
/// `active` with release, so a firing thread's acquire load sees a complete
/// arm.  Counters are relaxed — they are read after quiescing in tests.
struct Arm {
  static constexpr std::size_t kMaxSite = 47;

  std::atomic<bool> active{false};
  char site[kMaxSite + 1] = {0};
  std::size_t site_len = 0;
  Kind kind = Kind::Fail;
  double rate = 0.0;
  std::uint64_t seed = 0;
  double millis = 0.0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

/// Fixed arm table: tests arm a handful of sites, never hundreds.  Slots are
/// scanned linearly on fire — with `any_armed()` gating the scan, only runs
/// that deliberately arm faults ever pay for it.
struct ArmTable {
  static constexpr std::size_t kSlots = 16;
  std::mutex mu;  ///< serializes arm/disarm; never taken on the fire path
  Arm slots[kSlots];
};

ArmTable& table() {
  // Leaked like the metrics registry: sites may fire while the process exits.
  static ArmTable* t = new ArmTable();
  return *t;
}

[[nodiscard]] bool site_matches(const Arm& a, std::string_view site) noexcept {
  return a.site_len == site.size() && std::memcmp(a.site, site.data(), site.size()) == 0;
}

/// splitmix64: a full-avalanche mix of the (seed, hit index) pair, so the
/// firing pattern of an arm is a fixed pseudo-random sequence in hit order.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] Arm* find_locked(std::string_view site, Kind kind) {
  for (Arm& a : table().slots)
    if (a.active.load(std::memory_order_acquire) && a.kind == kind && site_matches(a, site))
      return &a;
  return nullptr;
}

/// PITK_FAULTS: sites armed from process start, exactly like PITK_TRACE.
/// The static initializer only parses an env string into the leaked table,
/// so initialization order against other translation units is harmless.
struct EnvInstaller {
  EnvInstaller() { (void)arm_from_env(); }
};
EnvInstaller install_from_env;

}  // namespace

namespace detail {

double fire(std::string_view site, Kind kind) noexcept {
  for (Arm& a : table().slots) {
    if (!a.active.load(std::memory_order_acquire)) continue;
    if (a.kind != kind || !site_matches(a, site)) continue;
    const std::uint64_t hit = a.hits.fetch_add(1, std::memory_order_relaxed);
    if (a.rate < 1.0) {
      // Map the mixed (seed, hit) to [0, 1) using the top 53 bits.
      const double u =
          static_cast<double>(splitmix64(a.seed ^ (hit * 0x9e3779b97f4a7c15ULL)) >> 11) *
          0x1.0p-53;
      if (u >= a.rate) return -1.0;
    }
    a.fired.fetch_add(1, std::memory_order_relaxed);
    return a.millis;
  }
  return -1.0;
}

void sleep_ms(double millis) noexcept {
  if (millis > 0.0) std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
}

void throw_injected(std::string_view site) {
  throw std::runtime_error("fault injected at " + std::string(site));
}

}  // namespace detail

void arm(std::string_view site, Kind kind, double rate, std::uint64_t seed, double millis) {
  if (site.empty() || site.size() > Arm::kMaxSite)
    throw std::invalid_argument("fault::arm: site must be 1..47 characters");
  if (!(rate >= 0.0 && rate <= 1.0))
    throw std::invalid_argument("fault::arm: rate must be in [0, 1]");
  ArmTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  Arm* slot = find_locked(site, kind);
  const bool rearm = slot != nullptr;
  if (slot == nullptr)
    for (Arm& a : t.slots)
      if (!a.active.load(std::memory_order_acquire)) {
        slot = &a;
        break;
      }
  if (slot == nullptr) throw std::runtime_error("fault::arm: arm table full");
  // Quiesce the slot so concurrent fire() never reads a half-written arm,
  // then publish the new parameters with the release store of `active`.
  slot->active.store(false, std::memory_order_release);
  std::memcpy(slot->site, site.data(), site.size());
  slot->site[site.size()] = '\0';
  slot->site_len = site.size();
  slot->kind = kind;
  slot->rate = rate;
  slot->seed = seed;
  slot->millis = millis;
  slot->hits.store(0, std::memory_order_relaxed);
  slot->fired.store(0, std::memory_order_relaxed);
  slot->active.store(true, std::memory_order_release);
  if (!rearm) detail::armed_count.fetch_add(1, std::memory_order_relaxed);
}

bool arm_from_spec(std::string_view spec) {
  // site:kind:rate[:seed[:millis]]
  std::string s(spec);
  char site[Arm::kMaxSite + 1] = {0};
  char kind_name[16] = {0};
  double rate = 1.0;
  unsigned long long seed = 0;
  double millis = 1.0;
  const int n = std::sscanf(s.c_str(), "%47[^:]:%15[^:]:%lf:%llu:%lf", site, kind_name, &rate,
                            &seed, &millis);
  Kind kind = Kind::Fail;
  bool known_kind = true;
  if (std::strcmp(kind_name, "nan") == 0)
    kind = Kind::Nan;
  else if (std::strcmp(kind_name, "delay") == 0)
    kind = Kind::Delay;
  else if (std::strcmp(kind_name, "fail") == 0)
    kind = Kind::Fail;
  else
    known_kind = false;
  if (n < 3 || !known_kind) {
    std::fprintf(stderr,
                 "pitk::fault: malformed PITK_FAULTS spec '%s' "
                 "(want site:kind:rate[:seed[:millis]])\n",
                 s.c_str());
    return false;
  }
  if (!(rate >= 0.0 && rate <= 1.0)) {
    std::fprintf(stderr, "pitk::fault: spec '%s' rate out of [0, 1]\n", s.c_str());
    return false;
  }
  arm(site, kind, rate, static_cast<std::uint64_t>(seed), millis);
  return true;
}

std::size_t arm_from_env() {
  const char* env = std::getenv("PITK_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  std::size_t armed = 0;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view spec = rest.substr(0, comma);
    if (!spec.empty() && arm_from_spec(spec)) ++armed;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return armed;
}

void disarm(std::string_view site) {
  ArmTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  for (Arm& a : t.slots)
    if (a.active.load(std::memory_order_acquire) && site_matches(a, site)) {
      a.active.store(false, std::memory_order_release);
      detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
}

void disarm_all() {
  ArmTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  for (Arm& a : t.slots)
    if (a.active.load(std::memory_order_acquire)) {
      a.active.store(false, std::memory_order_release);
      detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
}

std::uint64_t hit_count(std::string_view site, Kind kind) {
  ArmTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  const Arm* a = find_locked(site, kind);
  return a != nullptr ? a->hits.load(std::memory_order_relaxed) : 0;
}

std::uint64_t fired_count(std::string_view site, Kind kind) {
  ArmTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  const Arm* a = find_locked(site, kind);
  return a != nullptr ? a->fired.load(std::memory_order_relaxed) : 0;
}

void inject_nan(std::string_view site, double* data, std::size_t n) noexcept {
  if (!any_armed() || data == nullptr || n == 0) return;
  if (detail::fire(site, Kind::Nan) >= 0.0)
    data[0] = std::numeric_limits<double>::quiet_NaN();
}

}  // namespace pitk::fault
