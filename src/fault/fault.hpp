#pragma once

/// \file fault.hpp
/// Deterministic fault injection behind named sites.
///
/// Robustness code is only as good as the tests that exercise it, and the
/// failures worth testing — a NaN escaping a factorization, a pool task
/// stalling long enough to blow a deadline, an allocation failing mid-solve —
/// are exactly the ones that never happen on a healthy CI runner.  This
/// module plants named injection sites at those spots and lets tests (or an
/// operator, via `PITK_FAULTS`) arm them with a deterministic firing rule,
/// so every recovery path in the engine is driven by a repeatable test
/// instead of luck.
///
/// The discipline mirrors `PITK_TRACE_SPAN`: with nothing armed (the
/// default, and the only production configuration) every site costs one
/// relaxed atomic load of a known address and a predictable branch — no
/// string compare, no clock read, no allocation.  Armed sites fire by
/// hashing a per-site hit counter with the arm's seed (splitmix64), so a
/// given (rate, seed) fires on exactly the same hits in every run and under
/// every thread interleaving that preserves per-site hit order.
///
/// Arming:
///  - programmatic: `fault::arm("engine.dequeue", fault::Kind::Delay, 1.0,
///    seed, 20.0)` / `fault::disarm_all()` (tests);
///  - environment: `PITK_FAULTS=site:kind:rate[:seed[:millis]],...` parsed at
///    process start (kinds: "nan", "delay", "fail").
///
/// Site catalog (grep for the literals): "engine.dequeue" (delay before a
/// job's deadline check), "pool.task" (delay ahead of every pool task),
/// "gn.outer_step" (delay per Gauss-Newton outer iteration), "la.alloc"
/// (fail: std::bad_alloc from the aligned allocator), "solver.factor" (nan:
/// poison the Paige-Saunders factor), "solve.<backend-name>" (nan:
/// poison that backend's solved means — the registry's
/// backend_solve_span_name strings), and the durability sites in io/:
/// "io.write" (fail: persist only a prefix of the buffered journal bytes
/// then throw — a torn write), "io.fsync" (fail: the journal fsync), and
/// "io.corrupt" (fail: flip one payload byte after its CRC is computed,
/// planting detectable mid-file corruption).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pitk::fault {

/// What an armed site does when it fires.
enum class Kind {
  Nan,    ///< overwrite a double the site exposes with quiet NaN
  Delay,  ///< sleep the calling thread for the arm's millis
  Fail,   ///< throw (site-specific exception type)
};

namespace detail {
/// Number of armed sites; inline so the disarmed fast path at every site
/// compiles to one relaxed load of one known address.
inline std::atomic<int> armed_count{0};

/// Slow path: find an active arm matching (site, kind); when found, count
/// the hit and roll the deterministic dice.  Returns the arm's millis
/// parameter (>= 0) when the site fires, a negative value otherwise.
[[nodiscard]] double fire(std::string_view site, Kind kind) noexcept;

/// Sleep helper for Delay arms (kept out of the header to avoid <thread>).
void sleep_ms(double millis) noexcept;

[[noreturn]] void throw_injected(std::string_view site);
}  // namespace detail

/// True when at least one site is armed.  The only check disarmed sites pay.
[[nodiscard]] inline bool any_armed() noexcept {
  return detail::armed_count.load(std::memory_order_relaxed) != 0;
}

/// Arm `site` to fire `kind` with probability `rate` per hit (1.0 = every
/// hit), deterministically derived from `seed`.  `millis` parameterizes
/// Delay arms (sleep length).  Re-arming an already-armed (site, kind)
/// replaces its parameters and resets its counters.  Throws
/// std::invalid_argument on an empty/oversized site or out-of-range rate,
/// std::runtime_error when the fixed arm table is full.
void arm(std::string_view site, Kind kind, double rate = 1.0, std::uint64_t seed = 0,
         double millis = 1.0);

/// Parse and arm one "site:kind:rate[:seed[:millis]]" spec; false (with a
/// stderr note) on a malformed spec.
bool arm_from_spec(std::string_view spec);

/// Arm every comma-separated spec in the PITK_FAULTS environment variable
/// (also done automatically at process start); returns the number armed.
std::size_t arm_from_env();

/// Disarm every arm on `site` / every arm.  Counters are kept until re-arm.
void disarm(std::string_view site);
void disarm_all();

/// Hits seen / fires delivered by the (site, kind) arm since (re-)arming;
/// 0 when the site was never armed.  fired_count is how tests prove a solve
/// was or wasn't reached ("a past-deadline job is rejected without solving").
[[nodiscard]] std::uint64_t hit_count(std::string_view site, Kind kind);
[[nodiscard]] std::uint64_t fired_count(std::string_view site, Kind kind);

// ---- injection helpers (one per Kind; each is a single relaxed load when
// ---- nothing is armed anywhere in the process) ----

/// Delay site: sleep for the arm's millis when it fires.
inline void inject_delay(std::string_view site) noexcept {
  if (!any_armed()) return;
  const double ms = detail::fire(site, Kind::Delay);
  if (ms >= 0.0) detail::sleep_ms(ms);
}

/// Fail site, throwing flavor: throws std::runtime_error("fault injected at
/// <site>") when it fires.
inline void inject_fail(std::string_view site) {
  if (!any_armed()) return;
  if (detail::fire(site, Kind::Fail) >= 0.0) detail::throw_injected(site);
}

/// Fail site, boolean flavor for callers that throw their own type (the
/// aligned allocator throws std::bad_alloc).
[[nodiscard]] inline bool should_fail(std::string_view site) noexcept {
  if (!any_armed()) return false;
  return detail::fire(site, Kind::Fail) >= 0.0;
}

/// Nan site: overwrite data[0] (of `n` doubles) with quiet NaN when it
/// fires.  The single poisoned element models a kernel writing garbage; any
/// downstream consumer or finiteness scan must notice it.
void inject_nan(std::string_view site, double* data, std::size_t n) noexcept;

}  // namespace pitk::fault
