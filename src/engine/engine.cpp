#include "engine/engine.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "engine/solver_cache.hpp"
#include "fault/fault.hpp"
#include "io/journal.hpp"  // complete SessionJournal for State's unique_ptr
#include "la/workspace.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::engine {

namespace {
/// Allocations already charged to jobs that completed on this thread.  An
/// outer job whose parallel_for join nests another job body subtracts this
/// delta from its own window, so each allocation is attributed to exactly
/// one job (see the nesting note at the cache acquisition below).
thread_local std::uint64_t tls_allocs_charged = 0;

/// Registry handles for the engine's process-wide metrics, resolved once
/// (cold: names are built and looked up under the registry mutex) and then
/// recorded through with relaxed atomics only — the warm path allocates
/// nothing.  Latency histograms are per concrete backend, indexed like
/// EngineStats::per_backend.
struct EngineMetrics {
  obs::Histogram* queue_s[num_backends];
  obs::Histogram* solve_s[num_backends];
  obs::Histogram& outer_iterations = obs::histogram("pitk.engine.outer_iterations");
  obs::Counter& jobs_small = obs::counter("pitk.engine.jobs_small");
  obs::Counter& jobs_large = obs::counter("pitk.engine.jobs_large");
  obs::Counter& jobs_failed = obs::counter("pitk.engine.jobs_failed");
  obs::Counter& jobs_rejected = obs::counter("pitk.engine.jobs_rejected");
  obs::Counter& jobs_deadline_exceeded = obs::counter("pitk.engine.jobs_deadline_exceeded");
  obs::Counter& jobs_cancelled = obs::counter("pitk.engine.jobs_cancelled");
  obs::Counter& jobs_retried = obs::counter("pitk.engine.jobs_retried");
  obs::Counter& allocations = obs::counter("pitk.engine.allocations");
  /// Lifetime busy fraction of the last engine whose stats() was taken —
  /// with several engines alive the freshest snapshot wins, which is the
  /// usual single-serving-engine deployment read correctly and a tolerable
  /// approximation otherwise.
  obs::Gauge& pool_utilization = obs::gauge("pitk.engine.pool_utilization");

  EngineMetrics() {
    for (const BackendInfo& info : all_backends()) {
      const int i = backend_index(info.id);
      queue_s[i] = &obs::histogram(std::string("pitk.engine.queue_seconds.") + info.name);
      solve_s[i] = &obs::histogram(std::string("pitk.engine.solve_seconds.") + info.name);
    }
  }
};

EngineMetrics& engine_metrics() {
  // Leaked like the registry: jobs racing process exit still record safely.
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

using Clock = std::chrono::steady_clock;

/// Effective deadline of a job: the earlier of the absolute deadline and the
/// submit-relative timeout, both optional.
std::optional<Clock::time_point> resolve_deadline(
    const std::optional<Clock::time_point>& abs,
    const std::optional<std::chrono::duration<double>>& rel) {
  std::optional<Clock::time_point> d = abs;
  if (rel) {
    const Clock::time_point t =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(*rel);
    if (!d || t < *d) d = t;
  }
  return d;
}

/// One linear solve with the one-shot degradation retry.  A non-finite
/// result (or a solver exception outside the SolveError/invalid_argument
/// taxonomy) is retried once on the ladder backend; pinned jobs are honored
/// and fail instead.  On a rescued job `metrics.backend` is rewritten to the
/// serving backend and retried/fallback_backend mark the rescue.
void solve_job_with_retry(Backend chosen, bool pinned, const Problem& p,
                          const std::optional<GaussianPrior>& prior, par::ThreadPool& pool,
                          const SolveOptions& sopts, SolverCache& cache, SmootherResult& out,
                          JobMetrics& metrics) {
  std::string first_error;
  try {
    solve_with_into(chosen, p, prior, pool, sopts, cache, out);
    if (result_is_finite(out)) return;
    first_error = std::string("non-finite result from backend '") +
                  backend_info(chosen).name + "'";
  } catch (const SolveError&) {
    throw;  // deadline/cancel/unsupported: not a numerical failure, no retry
  } catch (const std::invalid_argument&) {
    throw;  // caller error (malformed problem reaching the solver)
  } catch (const std::exception& e) {
    first_error = e.what();
  }
  obs::trace::instant("engine.numerical_failure");
  const Backend fb = pinned ? Backend::Auto : numerical_fallback(chosen, p, prior.has_value());
  if (fb == Backend::Auto)
    throw SolveError(SolveErrorCode::NumericalFailure,
                     "solve failed (" + first_error +
                         (pinned ? "); backend pinned, fallback disabled"
                                 : "); no fallback rung left"));
  metrics.retried = true;
  metrics.fallback_backend = fb;
  metrics.backend = fb;
  solve_with_into(fb, p, prior, pool, sopts, cache, out);
  if (!result_is_finite(out))
    throw SolveError(SolveErrorCode::NumericalFailure,
                     std::string("fallback backend '") + backend_info(fb).name +
                         "' also produced a non-finite result (first failure: " +
                         first_error + ")");
}
}  // namespace

SmootherEngine::SmootherEngine(EngineOptions opts)
    : opts_(opts),
      pool_(opts.threads == 0 ? par::ThreadPool::default_concurrency() : opts.threads) {
  (void)engine_metrics();  // resolve registry handles while construction is cold
  if (opts_.small_job_flops < 0.0) opts_.small_job_flops = calibrated_small_job_flops();
  // One warm cache per pool worker (the pool owner and helping external
  // threads get thread-local caches from worker_cache()).
  const unsigned workers = pool_.concurrency() - 1;
  caches_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) caches_.push_back(std::make_unique<SolverCache>());
}

SmootherEngine::~SmootherEngine() { wait_idle(); }

SolverCache& SmootherEngine::worker_cache() {
  const int id = pool_.current_worker_id();
  if (id >= 0 && static_cast<std::size_t>(id) < caches_.size())
    return *caches_[static_cast<std::size_t>(id)];
  // Threads outside the pool execute jobs too (the owner helping through
  // wait_idle, serial engines running submit inline).  Each such thread
  // keeps its own cache, shared across engines exactly like tls_workspace.
  thread_local SolverCache external;
  return external;
}

bool SmootherEngine::admit_one() {
  const std::uint64_t max = opts_.max_queued_jobs;
  const auto try_enter = [&]() -> bool {
    // CAS bounded increment: queued_ can never exceed max, under any
    // interleaving — the invariant the overload tests assert.
    std::uint64_t q = queued_.load(std::memory_order_relaxed);
    while (q < max) {
      if (queued_.compare_exchange_weak(q, q + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        return true;
    }
    return false;
  };
  if (try_enter()) return true;
  if (opts_.queue_policy == QueuePolicy::Reject) return false;
  // Block: backpressure by helping — the submitting thread runs queued jobs
  // itself (like wait_idle) until a slot frees or the wait budget runs out.
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts_.max_queue_wait_seconds));
  do {
    if (!pool_.run_one()) std::this_thread::yield();
    if (try_enter()) return true;
  } while (Clock::now() < give_up);
  return try_enter();
}

std::future<JobResult> SmootherEngine::launch(
    std::function<void(par::ThreadPool&, SolverCache&, SmootherResult&, JobMetrics&)> body,
    Backend chosen, bool large, la::index num_states, SmootherResult* into,
    LaunchControl ctl) {
  struct Pending {
    std::promise<JobResult> promise;
    Clock::time_point enqueued;
  };
  auto pending = std::make_shared<Pending>();
  pending->enqueued = Clock::now();
  std::future<JobResult> fut = pending->promise.get_future();

  // Bounded admission first: a rejected job is a submit-time outcome, its
  // future fails before anything is enqueued.
  if (opts_.max_queued_jobs > 0) {
    if (!admit_one()) {
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.jobs_submitted;
        ++stats_.jobs_rejected;
      }
      engine_metrics().jobs_rejected.add(1);
      obs::trace::instant("engine.reject");
      pending->promise.set_exception(std::make_exception_ptr(SolveError(
          SolveErrorCode::QueueFull, "submit: engine queue full (max_queued_jobs)")));
      return fut;
    }
  } else {
    queued_.fetch_add(1, std::memory_order_acq_rel);
  }

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.jobs_submitted;
    if (large)
      ++stats_.jobs_large;
    else
      ++stats_.jobs_small;
    const std::uint64_t q = queued_.load(std::memory_order_relaxed);
    if (q > stats_.queue_high_water) stats_.queue_high_water = q;
  }
  (large ? engine_metrics().jobs_large : engine_metrics().jobs_small).add(1);
  obs::trace::instant("engine.submit");
  outstanding_.fetch_add(1, std::memory_order_acq_rel);

  pool_.submit([this, pending, body = std::move(body), chosen, large, num_states, into,
                ctl = std::move(ctl)]() mutable {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    PITK_TRACE_SPAN(backend_job_span_name(chosen));
    // Deterministic robustness tests arm this delay to hold a job between
    // dequeue and its deadline check.
    fault::inject_delay("engine.dequeue");
    const Clock::time_point start = Clock::now();
    JobResult jr;
    jr.metrics.backend = chosen;
    jr.metrics.intra_parallel = large;
    jr.metrics.num_states = num_states;
    jr.metrics.queue_seconds =
        std::chrono::duration<double>(start - pending->enqueued).count();
    // Dequeue-time control: a job already cancelled or past its deadline
    // completes with the matching SolveError without touching a solver.
    const bool cancelled_now = ctl.cancel != nullptr && ctl.cancel->cancelled();
    if (cancelled_now || (ctl.deadline && start > *ctl.deadline)) {
      EngineMetrics& em = engine_metrics();
      (cancelled_now ? em.jobs_cancelled : em.jobs_deadline_exceeded).add(1);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.total_queue_seconds += jr.metrics.queue_seconds;
        if (cancelled_now)
          ++stats_.jobs_cancelled;
        else
          ++stats_.jobs_deadline_exceeded;
      }
      pending->promise.set_exception(std::make_exception_ptr(
          cancelled_now
              ? SolveError(SolveErrorCode::Cancelled, "job cancelled before execution")
              : SolveError(SolveErrorCode::DeadlineExceeded,
                           "job deadline exceeded before execution")));
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        outstanding_.notify_all();
      return;
    }
    std::exception_ptr error;
    std::optional<SolveErrorCode> error_code;
    const std::uint64_t allocs_before = la::aligned_alloc_count_this_thread();
    const std::uint64_t charged_before = tls_allocs_charged;
    // The executing thread's warm SolverCache serves the job — unless this
    // job is nested inside another one on the same thread (a large job's
    // parallel_for join helps the pool and can pick up a second job body),
    // in which case the outer job's scratch is live and the nested job gets
    // a cold one-shot cache instead.
    SolverCache& shared_cache = worker_cache();
    std::optional<SolverCache> nested_cache;
    SolverCache* cache = &shared_cache;
    if (shared_cache.in_use)
      cache = &nested_cache.emplace();
    else
      shared_cache.in_use = true;
    try {
      // The job's deadline/token are installed in a thread-local for the
      // solvers' stage checkpoints; the scope resets it for nested jobs, so
      // an outer deadline never leaks into an unrelated job body.
      detail::JobControl jc;
      if (ctl.deadline) {
        jc.deadline = *ctl.deadline;
        jc.has_deadline = true;
      }
      jc.cancel = ctl.cancel.get();
      const bool has_ctl = jc.has_deadline || jc.cancel != nullptr;
      detail::JobControlScope control_scope(has_ctl ? &jc : nullptr);
      // Small jobs solve on the inline serial pool: the whole job is one
      // pool task and spawns nothing.  Large jobs hand the shared pool to
      // the solver so nested parallel_for fans out across idle lanes (the
      // executing worker participates and helps, so no lane is lost).
      // Caller-provided `into` storage is filled in place.
      SmootherResult local;
      SmootherResult& dst = into != nullptr ? *into : local;
      body(large ? pool_ : serial_pool_, *cache, dst, jr.metrics);
      if (into == nullptr) jr.result = std::move(local);
    } catch (const SolveError& se) {
      error = std::current_exception();
      error_code = se.code();
    } catch (...) {
      error = std::current_exception();
    }
    if (!nested_cache) shared_cache.in_use = false;
    jr.metrics.allocations = (la::aligned_alloc_count_this_thread() - allocs_before) -
                             (tls_allocs_charged - charged_before);
    tls_allocs_charged += jr.metrics.allocations;
    jr.metrics.solve_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    jr.metrics.workspace_high_water_bytes =
        la::tls_workspace().high_water() * sizeof(double);
    EngineMetrics& em = engine_metrics();
    // Keyed off metrics.backend, not `chosen`: a rescued job records under
    // the backend that actually served it.
    const int bi = backend_index(jr.metrics.backend);
    if (bi >= 0 && bi < num_backends) {
      em.queue_s[bi]->record(jr.metrics.queue_seconds);
      em.solve_s[bi]->record(jr.metrics.solve_seconds);
    }
    em.allocations.add(jr.metrics.allocations);
    const bool deadline_error = error_code == SolveErrorCode::DeadlineExceeded;
    const bool cancel_error = error_code == SolveErrorCode::Cancelled;
    if (error) {
      if (deadline_error)
        em.jobs_deadline_exceeded.add(1);
      else if (cancel_error)
        em.jobs_cancelled.add(1);
      else
        em.jobs_failed.add(1);
    } else {
      if (jr.metrics.retried) em.jobs_retried.add(1);
      if (jr.metrics.outer_iterations > 0)
        em.outer_iterations.record(static_cast<double>(jr.metrics.outer_iterations));
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.total_queue_seconds += jr.metrics.queue_seconds;
      stats_.total_solve_seconds += jr.metrics.solve_seconds;
      stats_.total_allocations += jr.metrics.allocations;
      if (error) {
        if (deadline_error)
          ++stats_.jobs_deadline_exceeded;
        else if (cancel_error)
          ++stats_.jobs_cancelled;
        else
          ++stats_.jobs_failed;
      } else {
        ++stats_.jobs_completed;
        ++stats_.per_backend[backend_index(jr.metrics.backend)];
        if (jr.metrics.retried) ++stats_.jobs_retried;
        if (jr.metrics.outer_iterations > 0) {
          ++stats_.nonlinear_jobs;
          stats_.total_outer_iterations +=
              static_cast<std::uint64_t>(jr.metrics.outer_iterations);
        }
      }
    }
    // Fulfill the future only after accounting, so a caller that observes
    // the job's outcome already sees it reflected in stats().
    if (error)
      pending->promise.set_exception(error);
    else
      pending->promise.set_value(std::move(jr));
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      outstanding_.notify_all();
  });
  return fut;
}

std::future<JobResult> SmootherEngine::submit(Problem p, JobOptions opts) {
  // Fast-fail malformed submissions on the submitting thread: a shape error
  // is a caller bug, and surfacing it here (instead of as a worker-side
  // exception after queueing) gives the caller its own stack trace and keeps
  // junk out of the queue.
  if (std::optional<std::string> err = p.validate())
    throw std::invalid_argument("submit: " + *err);
  if (opts.prior && p.num_states() > 0) {
    const la::index n0 = p.state_dim(0);
    if (opts.prior->mean.size() != n0 || opts.prior->cov.rows() != n0 ||
        opts.prior->cov.cols() != n0)
      throw std::invalid_argument(
          "submit: prior shape does not match the dimension of state 0");
  }
  const la::index num_states = p.num_states();
  const double flops = estimated_flops(p, opts.compute_covariance);
  // Jobs below the cut execute whole-job on one lane, so Auto must resolve
  // for that reality (a serial lane) — otherwise mid-size jobs would get the
  // parallel odd-even solver's ~2x work with none of its parallelism.
  const bool small = pool_.is_serial() || flops < opts_.small_job_flops;
  const bool pinned = opts.backend != Backend::Auto;
  Backend chosen = opts.backend;
  if (chosen == Backend::Auto)
    chosen = select_backend(p, opts.prior.has_value(), opts.compute_covariance,
                            small ? 1u : pool_.concurrency());
  const bool large = !small && backend_info(chosen).intra_parallel;
  const SolveOptions sopts{.compute_covariance = opts.compute_covariance, .grain = opts_.grain};
  auto problem = std::make_shared<const Problem>(std::move(p));
  auto prior = std::make_shared<const std::optional<GaussianPrior>>(std::move(opts.prior));
  LaunchControl ctl{resolve_deadline(opts.deadline, opts.timeout), std::move(opts.cancel)};
  return launch(
      [problem, prior, chosen, pinned, sopts](par::ThreadPool& pool, SolverCache& cache,
                                              SmootherResult& out, JobMetrics& metrics) {
        solve_job_with_retry(chosen, pinned, *problem, *prior, pool, sopts, cache, out,
                             metrics);
      },
      chosen, large, num_states, opts.into, std::move(ctl));
}

std::future<JobResult> SmootherEngine::submit_nonlinear(NonlinearJob job,
                                                        NonlinearJobOptions opts) {
  // Same fast-fail discipline as submit(): shape mismatches are caller bugs
  // and throw here; a malformed *model body* (e.g. a null callback) still
  // fails the job's future, since only the solver can detect it.
  if (job.model.dims.empty() ||
      job.model.k + 1 != static_cast<la::index>(job.model.dims.size()) ||
      static_cast<la::index>(job.model.obs.size()) != job.model.k + 1)
    throw std::invalid_argument(
        "submit_nonlinear: model must carry k+1 dims and obs entries");
  if (job.init.size() != job.model.dims.size())
    throw std::invalid_argument(
        "submit_nonlinear: init must carry one state per step (k+1 entries)");
  const la::index num_states = static_cast<la::index>(job.model.dims.size());
  const double flops = estimated_nonlinear_job_flops(job.model, opts.gn);
  const bool small = pool_.is_serial() || flops < opts_.small_job_flops;
  const bool pinned = opts.backend != Backend::Auto;
  Backend chosen = opts.backend;
  if (chosen == Backend::Auto)
    chosen = select_nonlinear_backend(job.model, small ? 1u : pool_.concurrency());
  const bool large = !small && backend_info(chosen).intra_parallel;
  auto model = std::make_shared<const kalman::NonlinearModel>(std::move(job.model));
  auto init = std::make_shared<const std::vector<la::Vector>>(std::move(job.init));
  const kalman::GaussNewtonOptions gn = opts.gn;
  const double dpv = opts.delta_prior_variance;
  LaunchControl ctl{resolve_deadline(opts.deadline, opts.timeout), std::move(opts.cancel)};
  return launch(
      [model, init, chosen, pinned, gn, dpv](par::ThreadPool& pool, SolverCache& cache,
                                             SmootherResult& out, JobMetrics& metrics) {
        // One-shot degradation retry, mirroring solve_job_with_retry: the
        // whole outer loop reruns on sequential Paige-Saunders (gauss_newton
        // _init resets the warm state, so the rerun starts clean).
        NonlinearSolveInfo info;
        std::string first_error;
        bool ok = false;
        try {
          solve_nonlinear_into(chosen, *model, *init, gn, dpv, pool, cache,
                               cache.gauss_newton, out, info);
          ok = result_is_finite(out);
          if (!ok)
            first_error = std::string("non-finite result from backend '") +
                          backend_info(chosen).name + "'";
        } catch (const SolveError&) {
          throw;
        } catch (const std::invalid_argument&) {
          throw;
        } catch (const std::exception& e) {
          first_error = e.what();
        }
        if (!ok) {
          obs::trace::instant("engine.numerical_failure");
          if (pinned || chosen == Backend::PaigeSaunders)
            throw SolveError(SolveErrorCode::NumericalFailure,
                             "nonlinear solve failed (" + first_error +
                                 (pinned ? "); backend pinned, fallback disabled"
                                         : "); no fallback rung left"));
          metrics.retried = true;
          metrics.fallback_backend = Backend::PaigeSaunders;
          metrics.backend = Backend::PaigeSaunders;
          solve_nonlinear_into(Backend::PaigeSaunders, *model, *init, gn, dpv, pool, cache,
                               cache.gauss_newton, out, info);
          if (!result_is_finite(out))
            throw SolveError(SolveErrorCode::NumericalFailure,
                             "fallback backend 'paige-saunders' also produced a "
                             "non-finite result (first failure: " +
                                 first_error + ")");
        }
        metrics.outer_iterations = info.iterations;
        metrics.nonlinear_converged = info.converged;
        metrics.nonlinear_final_cost = info.final_cost;
      },
      chosen, large, num_states, opts.into, std::move(ctl));
}

std::vector<std::future<JobResult>> SmootherEngine::submit_nonlinear_batch(
    std::vector<NonlinearJob> jobs, const NonlinearJobOptions& opts) {
  if (opts.into != nullptr)
    throw std::invalid_argument(
        "submit_nonlinear_batch: NonlinearJobOptions::into cannot be shared across a "
        "batch; use submit_nonlinear() with one storage per job");
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (NonlinearJob& j : jobs) futures.push_back(submit_nonlinear(std::move(j), opts));
  return futures;
}

std::vector<std::future<JobResult>> SmootherEngine::submit_batch(std::vector<Problem> problems,
                                                                 const JobOptions& opts) {
  // The one option set is replicated across jobs, so a single `into` target
  // would be written concurrently by every job in the batch — reject it
  // rather than race; into-storage callers submit() each job with its own
  // storage (see bench/engine_throughput.cpp).
  if (opts.into != nullptr)
    throw std::invalid_argument(
        "submit_batch: JobOptions::into cannot be shared across a batch; "
        "use submit() with one storage per job");
  std::vector<std::future<JobResult>> futures;
  futures.reserve(problems.size());
  for (Problem& p : problems) futures.push_back(submit(std::move(p), opts));
  return futures;
}

Session SmootherEngine::open_session(la::index n0, const SessionOptions& opts) {
  if (!(opts.resmooth_tol > 0.0))
    throw std::invalid_argument("open_session: resmooth_tol must be positive");
  auto st = std::make_shared<Session::State>(this, n0);
  // The env override (read in the State constructor) can only force exactness
  // on, never weaken an exact_resmooth() request.
  st->exact_resmooth = st->exact_resmooth || opts.exact;
  st->resmooth_tol = opts.resmooth_tol;
  if (opts.store != nullptr) {
    st->journal = io::SessionJournal::create(*opts.store, opts.id, io::SessionKind::Linear);
    st->journal->stage_open_linear(n0);
    st->journal->commit();
  }
  return Session(std::move(st));
}

NonlinearSession SmootherEngine::open_session(kalman::NonlinearModel model, la::Vector u0,
                                              const SessionOptions& opts) {
  if (model.dims.empty() || model.k + 1 != static_cast<la::index>(model.dims.size()) ||
      static_cast<la::index>(model.obs.size()) != model.k + 1)
    throw std::invalid_argument(
        "open_session: model must carry k+1 dims and obs entries");
  if (u0.size() != model.dims.front())
    throw std::invalid_argument("open_session: u0 must have dimension dims[0]");
  if (opts.nonlinear.into != nullptr)
    throw std::invalid_argument(
        "open_session: set `into` per smooth_async call, not in the "
        "session options");
  auto st = std::make_shared<NonlinearSession::State>(this, std::move(model), std::move(u0),
                                                      opts.nonlinear);
  if (opts.store != nullptr) {
    st->journal = io::SessionJournal::create(*opts.store, opts.id, io::SessionKind::Nonlinear);
    io::NonlinearSnapshot& snap = st->journal->nonlinear_scratch();
    snap.k = st->model.k;
    snap.dims = st->model.dims;
    snap.obs = st->model.obs;
    snap.u0 = st->u0;
    snap.means.clear();
    st->journal->stage_open_nonlinear(snap);
    st->journal->commit();
  }
  return NonlinearSession(std::move(st));
}

// Deprecated forwarders — defined here so every caller funnels through the
// unified open_session overloads above.  The pragma keeps the library's own
// build clean; external callers see the [[deprecated]] note.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

NonlinearSession SmootherEngine::open_nonlinear_session(kalman::NonlinearModel model,
                                                        la::Vector u0,
                                                        NonlinearJobOptions opts) {
  SessionOptions so;
  so.nonlinear = std::move(opts);
  return open_session(std::move(model), std::move(u0), so);
}

Session SmootherEngine::open_durable_session(io::SessionStore& store, std::string_view id,
                                             la::index n0) {
  return open_session(n0, SessionOptions{}.durable(store, std::string(id)));
}

NonlinearSession SmootherEngine::open_durable_nonlinear_session(
    io::SessionStore& store, std::string_view id, kalman::NonlinearModel model,
    la::Vector u0, NonlinearJobOptions opts) {
  SessionOptions so = SessionOptions{}.durable(store, std::string(id));
  so.nonlinear = std::move(opts);
  return open_session(std::move(model), std::move(u0), so);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

void SmootherEngine::wait_idle() {
  // A pool worker must never sleep here: parking a lane would shrink the
  // pool for whatever job is still running, so workers keep helping/yielding
  // instead of blocking on the counter.
  const bool on_worker = pool_.current_thread_in_pool();
  std::uint64_t n = outstanding_.load(std::memory_order_acquire);
  while (n != 0) {
    if (!pool_.run_one()) {
      if (on_worker)
        std::this_thread::yield();
      else
        outstanding_.wait(n, std::memory_order_acquire);
    }
    n = outstanding_.load(std::memory_order_acquire);
  }
}

EngineStats SmootherEngine::stats() const {
  engine_metrics().pool_utilization.set(pool_.utilization());
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace pitk::engine
