#pragma once

/// \file control.hpp
/// Structured job failure, deadlines and cooperative cancellation.
///
/// PRs 1-6 had exactly one failure story: whatever the solver threw
/// propagates into the job's future.  A serving engine needs more structure
/// than that — a caller shedding load wants to distinguish "the queue was
/// full" from "the math went bad", and a deadline or cancellation must be
/// able to stop a job that is already running, not just one still queued.
///
/// This header supplies the three pieces:
///  - `SolveError`, a std::runtime_error carrying a `SolveErrorCode` so
///    futures fail with a machine-readable taxonomy;
///  - `CancelToken`, a shared flag a caller flips to abandon a job;
///  - `detail::solve_checkpoint()`, the cooperative check solvers call
///    between stages (factor / solve / covariance, Gauss-Newton outer
///    iterations).  The engine installs the executing job's deadline and
///    token in a thread-local before running the body; with neither set the
///    checkpoint is one thread-local load and a branch — no clock read, so
///    the warm zero-allocation path is unaffected.

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace pitk::engine {

/// Machine-readable classification of a failed job.
enum class SolveErrorCode {
  DeadlineExceeded,    ///< past JobOptions::deadline (at dequeue or mid-solve)
  Cancelled,           ///< the job's CancelToken was flipped
  QueueFull,           ///< bounded admission rejected the job at submit
  NumericalFailure,    ///< non-finite output (and any fallback also failed)
  BackendUnsupported,  ///< pinned backend cannot express the problem
};

[[nodiscard]] constexpr const char* solve_error_code_name(SolveErrorCode c) noexcept {
  switch (c) {
    case SolveErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case SolveErrorCode::Cancelled: return "cancelled";
    case SolveErrorCode::QueueFull: return "queue-full";
    case SolveErrorCode::NumericalFailure: return "numerical-failure";
    case SolveErrorCode::BackendUnsupported: return "backend-unsupported";
  }
  return "?";
}

/// The exception engine futures fail with on any engine-detected condition.
/// Solver-internal exceptions that are not part of the taxonomy (e.g. a
/// malformed model) still propagate as their original types.
class SolveError : public std::runtime_error {
 public:
  SolveError(SolveErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] SolveErrorCode code() const noexcept { return code_; }

 private:
  SolveErrorCode code_;
};

/// Cooperative cancellation flag, shared between the submitting caller and
/// the job (JobOptions::cancel holds it by shared_ptr).  Flipping it makes
/// the job fail with SolveErrorCode::Cancelled at its next checkpoint — or
/// without running at all when it is still queued.  Reusable across jobs
/// only after reset(); one token may cancel a whole batch.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

namespace detail {

/// The executing job's control block, installed by the engine for the
/// duration of the job body on the executing thread only (intra-parallel
/// fan-out tasks on other workers are not checkpointed — the executing
/// thread participates in every parallel_for join, so it still observes
/// cancellation between stages).
struct JobControl {
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  const CancelToken* cancel = nullptr;
};

/// Null when the current thread is not running a controlled job.  A nested
/// job body (a large job's join helping the pool) gets its own scope, so an
/// outer job's deadline never leaks into an unrelated nested job.
inline thread_local const JobControl* tls_job_control = nullptr;

class JobControlScope {
 public:
  explicit JobControlScope(const JobControl* jc) noexcept : prev_(tls_job_control) {
    tls_job_control = jc;
  }
  ~JobControlScope() { tls_job_control = prev_; }

  JobControlScope(const JobControlScope&) = delete;
  JobControlScope& operator=(const JobControlScope&) = delete;

 private:
  const JobControl* prev_;
};

[[noreturn]] inline void throw_deadline_exceeded() {
  throw SolveError(SolveErrorCode::DeadlineExceeded, "job deadline exceeded mid-solve");
}

[[noreturn]] inline void throw_cancelled() {
  throw SolveError(SolveErrorCode::Cancelled, "job cancelled");
}

/// Cooperative checkpoint: solvers call this between stages.  Throws
/// SolveError when the executing job is cancelled or past its deadline;
/// costs one thread-local load when the job has no control attached.
inline void solve_checkpoint() {
  const JobControl* jc = tls_job_control;
  if (jc == nullptr) return;
  if (jc->cancel != nullptr && jc->cancel->cancelled()) throw_cancelled();
  if (jc->has_deadline && std::chrono::steady_clock::now() > jc->deadline)
    throw_deadline_exceeded();
}

}  // namespace detail
}  // namespace pitk::engine
