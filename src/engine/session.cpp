#include "engine/session.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <utility>

#include "core/oddeven.hpp"
#include "core/selinv.hpp"
#include "engine/solver_cache.hpp"
#include "io/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::engine {

namespace {
/// Process-wide mirrors of the per-session counters, aggregated across every
/// session (cold registration, relaxed-atomic recording; leaked like the
/// registry so sessions racing process exit still record safely).
struct SessionMetrics {
  obs::Counter& hits = obs::counter("pitk.session.resmooth_hits");
  obs::Counter& misses = obs::counter("pitk.session.resmooth_misses");
  obs::Counter& cov_upgrades = obs::counter("pitk.session.cov_upgrades");
  obs::Counter& truncated = obs::counter("pitk.session.truncated_resmooths");
  obs::Histogram& truncation_window = obs::histogram("pitk.session.truncation_window");
};

SessionMetrics& session_metrics() {
  static SessionMetrics* m = new SessionMetrics();
  return *m;
}

/// Truncated passes allowed between forced full backward passes.  Each
/// truncated pass can neglect a correction of up to resmooth_tol per state,
/// so the accumulated deviation is bounded by this interval times the
/// tolerance: 512 * 1e-13 ~ 5e-11 at the default, inside the library-wide
/// 1e-10 agreement bar.
constexpr std::uint32_t kResmoothRefreshInterval = 512;

/// smooth_async routes tracks at least this long through the
/// snapshot-isolated odd-even path when the session cache is cold (a warm
/// cache's truncated pass beats any parallel full pass).
constexpr la::index kLargeSessionSteps = 4096;

/// PITK_RESMOOTH_EXACT=1 forces the exact full-splice re-smooth everywhere
/// in the process (read once; sessions capture it at open).
bool env_exact_resmooth() {
  static const bool v = [] {
    const char* e = std::getenv("PITK_RESMOOTH_EXACT");
    return e != nullptr && e[0] == '1';
  }();
  return v;
}

/// Globally unique serving stamps for the delta copy-out: a storage carries
/// the stamp of the cache serve that last wrote it, so a cache can prove the
/// storage's unchanged prefix is its own (pointer identity alone would
/// confuse two caches alternately serving one storage, or a recycled stack
/// address).
std::uint64_t next_serve_stamp() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

namespace {
/// Journal write-ahead discipline for one mutation, run under the session
/// lock after the filter accepted it: commit the staged record (first
/// failure throws — durability loss is loud — and poisons the journal, so
/// the torn tail stays a clean truncation point), then compact when the
/// tail since the last snapshot crossed the threshold.
void commit_and_maybe_compact(io::SessionJournal& j,
                              const kalman::IncrementalFilter& filter) {
  j.commit();
  if (j.wants_compaction()) j.compact_linear(filter);
}
}  // namespace

Session::State::State(SmootherEngine* e, la::index n0)
    : engine(e), filter(n0), exact_resmooth(env_exact_resmooth()) {}
Session::State::~State() = default;

void Session::evolve(Matrix f, Vector c, CovFactor k) {
  std::lock_guard<std::mutex> lk(state_->mu);
  // Stage before the filter consumes the arguments; a rejected evolve must
  // never reach the journal.
  if (state_->journal) state_->journal->stage_evolve(f, c, k);
  state_->filter.evolve(std::move(f), std::move(c), std::move(k));
  ++state_->mutations;
  if (state_->journal) commit_and_maybe_compact(*state_->journal, state_->filter);
}

void Session::evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k) {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->journal) state_->journal->stage_evolve_rect(n_new, h, f, c, k);
  state_->filter.evolve_rect(n_new, std::move(h), std::move(f), std::move(c), std::move(k));
  ++state_->mutations;
  if (state_->journal) commit_and_maybe_compact(*state_->journal, state_->filter);
}

void Session::observe(Matrix g, Vector o, CovFactor l) {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->journal) state_->journal->stage_observe(g, o, l);
  state_->filter.observe(std::move(g), std::move(o), std::move(l));
  ++state_->mutations;
  if (state_->journal) commit_and_maybe_compact(*state_->journal, state_->filter);
}

la::index Session::current_step() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.current_step();
}

la::index Session::current_dim() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.current_dim();
}

std::optional<Vector> Session::estimate() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.estimate();
}

std::optional<Matrix> Session::covariance() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.covariance();
}

void Session::resmooth(const State& st, ResmoothCache& cache, bool with_covariances,
                       SmootherResult& out) {
  std::lock_guard<std::mutex> cl(cache.mu);
  bool hit = false;
  bool covs_upgrade = false;  // factor and means current, only SelInv missing
  bool delta_means = false;   // the truncated delta pass is admissible
  bool delta_covs = false;
  la::index splice_from = 0;  // previous live-block index == the delta seed point
  {
    // The session lock is held only for the delta: epoch check, splice of
    // the newly finalized blocks (and their decay bounds), and compression
    // of the pending rows — O(appended steps), so a re-smooth never stalls
    // the measurement stream behind a full-track pass.
    PITK_TRACE_SPAN("session.splice");
    std::lock_guard<std::mutex> lk(st.mu);
    const kalman::IncrementalFilter& filt = st.filter;
    if (cache.epoch != filt.reset_epoch()) {
      cache.prefix_len = 0;  // reset() discarded the prefix: rebuild from scratch
      cache.epoch = filt.reset_epoch();
      cache.result_valid = false;
      cache.means_seed_valid = false;
      cache.covs_seed_valid = false;
      // A reset may reshape the track under a stamped storage; force the
      // next copy-out to rewrite everything.
      cache.last_stamp = 0;
    }
    const bool current = cache.result_valid && cache.result_mutation == st.mutations;
    hit = current && (cache.result_covs || !with_covariances);
    covs_upgrade = current && !hit;
    if (!hit && !covs_upgrade) {
      const std::size_t prefix_before = cache.prefix_len;
      filt.resmooth_from(static_cast<la::index>(prefix_before), cache.factor, cache.qr);
      cache.prefix_len = static_cast<std::size_t>(filt.finished_steps());
      // Keep the decay bounds in lockstep with the spliced prefix blocks.
      const std::span<const double> amps = filt.decay_amplification();
      cache.decay_amp.resize(amps.size());
      std::copy(amps.begin() + static_cast<std::ptrdiff_t>(prefix_before), amps.end(),
                cache.decay_amp.begin() + static_cast<std::ptrdiff_t>(prefix_before));
      cache.result_mutation = st.mutations;
      cache.result_valid = false;  // until the solve below completes
      splice_from = static_cast<la::index>(prefix_before);
      // The truncated delta pass needs: truncation allowed, a seed solving
      // the previous splice of this factor (the old live-block index is
      // `splice_from`, so the seed must hold exactly splice_from + 1
      // states), at least one finalized block to seed across, and headroom
      // before the forced full refresh.
      delta_means = !st.exact_resmooth && cache.means_seed_valid && splice_from >= 1 &&
                    cache.result.means.size() == static_cast<std::size_t>(splice_from) + 1 &&
                    cache.truncated_streak < kResmoothRefreshInterval;
      delta_covs = delta_means && with_covariances && cache.covs_seed_valid &&
                   cache.result.covariances.size() == static_cast<std::size_t>(splice_from) + 1;
      cache.means_seed_valid = false;  // restored once the solve succeeds
      cache.covs_seed_valid = false;
      st.steps_spliced.fetch_add(cache.prefix_len - prefix_before,
                                 std::memory_order_relaxed);
    }
  }
  SessionMetrics& sm = session_metrics();
  if (hit) {
    st.hits.fetch_add(1, std::memory_order_relaxed);
    sm.hits.add(1);
  } else if (covs_upgrade) {
    st.cov_upgrades.fetch_add(1, std::memory_order_relaxed);
    sm.cov_upgrades.add(1);
  } else {
    st.misses.fetch_add(1, std::memory_order_relaxed);
    sm.misses.add(1);
  }
  if (!hit) {
    std::size_t pass_low = 0;  // lowest state this pass rewrote
    bool truncated = false;
    // A covariance upgrade of an unmutated session keeps the spliced factor
    // and the cached means; only the SelInv sweep is missing.
    if (!covs_upgrade) {
      PITK_TRACE_SPAN("session.solve");
      if (delta_means) {
        const kalman::TruncatedPass tp = kalman::paige_saunders_solve_delta_into(
            cache.factor, splice_from, cache.decay_amp, st.resmooth_tol, cache.result.means);
        pass_low = static_cast<std::size_t>(tp.updated_from);
        truncated = tp.truncated;
      } else {
        kalman::paige_saunders_solve_into(cache.factor, cache.result.means);
      }
      cache.means_low = std::min(cache.means_low, pass_low);
      cache.means_seed_valid = true;
    }
    if (with_covariances) {
      PITK_TRACE_SPAN("session.selinv");
      std::size_t cov_low = 0;
      if (delta_covs) {
        const kalman::TruncatedPass tp = kalman::selinv_bidiagonal_delta_into(
            cache.factor, splice_from, cache.decay_amp, st.resmooth_tol,
            cache.result.covariances);
        cov_low = static_cast<std::size_t>(tp.updated_from);
        truncated = truncated || tp.truncated;
        pass_low = std::min(pass_low, cov_low);
      } else {
        kalman::selinv_bidiagonal_into(cache.factor, cache.result.covariances);
      }
      cache.covs_low = std::min(cache.covs_low, cov_low);
      cache.covs_seed_valid = true;
    }
    // On a covariance-free pass the (now stale) cached covariance blocks are
    // kept for capacity reuse: result_covs gates serving them, and the next
    // covariance pass overwrites them in place — a tenant alternating NC and
    // covariance re-smooths stays allocation-free.
    cache.result_covs = with_covariances;
    cache.result_valid = true;
    if (truncated) {
      // Neglected corrections accumulate at most resmooth_tol per truncated
      // pass; the streak forces a periodic full pass to re-zero them.
      cache.truncated_streak += 1;
      const std::size_t total = cache.result.means.size();
      st.truncated.fetch_add(1, std::memory_order_relaxed);
      st.truncation_skipped.fetch_add(pass_low, std::memory_order_relaxed);
      sm.truncated.add(1);
      sm.truncation_window.record(static_cast<double>(total - pass_low));
    } else if (!covs_upgrade && !delta_means) {
      cache.truncated_streak = 0;  // a full backward pass re-zeroed the error
    }
  }
  // ---- copy-out: rewrite only what changed since this storage was last
  // served from this cache (see SmootherResult::serve_stamp).  Any doubt —
  // unknown storage, stale stamp, resized vectors — falls back to the full
  // copy, so the fast path is purely an optimization.
  const std::size_t n_means = cache.result.means.size();
  const bool storage_matches = out.serve_stamp != 0 && out.serve_stamp == cache.last_stamp &&
                               out.means.size() == cache.last_means &&
                               cache.last_means <= n_means;
  const std::size_t mfrom = storage_matches ? std::min(cache.means_low, n_means) : 0;
  out.means.resize(n_means);
  for (std::size_t i = mfrom; i < n_means; ++i)
    out.means[i].assign_from(cache.result.means[i].span());
  if (with_covariances) {
    const std::size_t n_covs = cache.result.covariances.size();
    const std::size_t cfrom = (storage_matches && cache.last_covs > 0 &&
                               cache.last_covs <= n_covs &&
                               out.covariances.size() == cache.last_covs)
                                  ? std::min(cache.covs_low, n_covs)
                                  : 0;
    out.covariances.resize(n_covs);
    for (std::size_t i = cfrom; i < n_covs; ++i)
      out.covariances[i].assign_from(cache.result.covariances[i].view());
  } else {
    out.covariances.clear();
  }
  out.serve_stamp = next_serve_stamp();
  cache.last_stamp = out.serve_stamp;
  cache.last_means = n_means;
  cache.last_covs = with_covariances ? cache.result.covariances.size() : 0;
  // Nothing has changed relative to this serve yet; the sentinels sit at the
  // current sizes so later min() updates narrow them correctly.
  cache.means_low = n_means;
  cache.covs_low = cache.result.covariances.size();
}

void Session::resmooth_large(const State& st, ResmoothCache& cache, bool with_covariances,
                             SmootherResult& out, par::ThreadPool& pool, SolverCache& sc) {
  std::uint64_t epoch = 0;
  std::uint64_t m0 = 0;
  std::size_t prefix = 0;
  {
    PITK_TRACE_SPAN("session.splice");
    std::lock_guard<std::mutex> lk(st.mu);
    const kalman::IncrementalFilter& filt = st.filter;
    epoch = filt.reset_epoch();
    m0 = st.mutations;
    // Worker-affine incremental splice: if this worker's factor already
    // holds a prefix of this session (same epoch), only the newly finalized
    // blocks are copied.
    la::index from = 0;
    if (sc.session_key == &st && sc.session_epoch == epoch)
      from = std::min<la::index>(static_cast<la::index>(sc.session_prefix),
                                 filt.finished_steps());
    filt.resmooth_from(from, sc.factor, sc.qr);
    prefix = static_cast<std::size_t>(filt.finished_steps());
    sc.session_key = &st;
    sc.session_epoch = epoch;
    sc.session_prefix = prefix;
    st.steps_spliced.fetch_add(prefix - static_cast<std::size_t>(from),
                               std::memory_order_relaxed);
  }
  st.misses.fetch_add(1, std::memory_order_relaxed);
  session_metrics().misses.add(1);
  {
    // Solve WITHOUT holding cache.mu: the nested parallel joins help the
    // pool via run_one() and may execute other jobs — including this very
    // session's — on this thread, so holding the cache lock across the
    // fan-out could self-deadlock.  Everything the solve touches is the
    // executing worker's own (sc, out, the workspace arena).
    PITK_TRACE_SPAN("session.oddeven");
    sc.oddeven_factor = kalman::oddeven_factor_from_bidiagonal(sc.factor, pool);
    kalman::oddeven_solve_into(sc.oddeven_factor, pool, par::default_grain, out.means);
    if (with_covariances)
      kalman::oddeven_covariances_into(sc.oddeven_factor, pool, par::default_grain,
                                       sc.oddeven_cov, out.covariances);
    else
      out.covariances.clear();
    out.serve_stamp = 0;  // direct solve, not a stamped cache serve
  }
  // Publish into the session cache — unless something newer landed while we
  // solved — so follow-up smooths hit or run the truncated delta pass
  // instead of paying another full pass.
  std::lock_guard<std::mutex> cl(cache.mu);
  if ((cache.result_valid && cache.result_mutation >= m0) || cache.epoch > epoch) return;
  std::swap(cache.factor, sc.factor);
  sc.session_key = nullptr;  // sc.factor no longer holds this session's splice
  {
    // Lock order cache.mu -> st.mu matches resmooth(); the decay bounds come
    // from the filter because the worker-side splice never copied them.
    std::lock_guard<std::mutex> lk(st.mu);
    if (st.filter.reset_epoch() == epoch) {
      const std::span<const double> amps = st.filter.decay_amplification();
      cache.decay_amp.assign(amps.begin(), amps.end());
    } else {
      // Reset mid-solve: leave the cache keyed to the old epoch — the next
      // resmooth() sees the mismatch and rebuilds from scratch.
      cache.decay_amp.clear();
    }
  }
  cache.epoch = epoch;
  cache.prefix_len = prefix;
  cache.result_mutation = m0;
  cache.result.means.resize(out.means.size());
  for (std::size_t i = 0; i < out.means.size(); ++i)
    cache.result.means[i].assign_from(out.means[i].span());
  if (with_covariances) {
    cache.result.covariances.resize(out.covariances.size());
    for (std::size_t i = 0; i < out.covariances.size(); ++i)
      cache.result.covariances[i].assign_from(out.covariances[i].view());
  }
  cache.result_covs = with_covariances;
  cache.result_valid = true;
  cache.means_seed_valid = true;
  cache.covs_seed_valid = with_covariances;
  cache.truncated_streak = 0;
  cache.means_low = 0;
  cache.covs_low = 0;
}

SmootherResult Session::smooth(bool with_covariances) const {
  SmootherResult out;
  resmooth(*state_, state_->sync_cache, with_covariances, out);
  return out;
}

void Session::smooth_into(SmootherResult& out, bool with_covariances) const {
  resmooth(*state_, state_->sync_cache, with_covariances, out);
}

std::future<JobResult> Session::smooth_async(bool with_covariances, SmootherResult* into) const {
  // The spliced factor rows are exactly the Paige-Saunders bidiagonal R, so
  // the job is accounted under that backend.  The body captures the shared
  // State (not the Session handle), so the job stays valid if the handle is
  // moved or destroyed before execution.
  auto st = state_;
  const la::index num_states = current_step() + 1;
  // Very long cold tracks go through the snapshot-isolated odd-even path on
  // the shared pool: a full sequential backward pass over >=4096 states is
  // exactly the regime the parallel backends exist for.  A *warm* cache's
  // truncated delta pass beats any full pass regardless of parallelism, so
  // warmth keeps the track on the small path; exact sessions always take it
  // (their bit-for-bit promise is "the PR 4 spliced path, unchanged").
  bool large = false;
  if (!st->exact_resmooth && num_states >= kLargeSessionSteps &&
      !st->engine->pool_.is_serial()) {
    std::lock_guard<std::mutex> cl(st->async_cache.mu);
    large = !st->async_cache.means_seed_valid;
  }
  return st->engine->launch(
      [st, with_covariances, large](par::ThreadPool& pool, SolverCache& sc,
                                    SmootherResult& out, JobMetrics&) {
        if (large)
          resmooth_large(*st, st->async_cache, with_covariances, out, pool, sc);
        else
          resmooth(*st, st->async_cache, with_covariances, out);
      },
      large ? Backend::OddEven : Backend::PaigeSaunders, large, num_states, into);
}

void Session::reset(la::index n0) {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->journal) state_->journal->stage_reset(n0);
  state_->filter.reset(n0);  // bumps reset_epoch: both caches resplice from 0
  ++state_->mutations;
  // No forced compaction here: the reset chunk itself invalidates everything
  // before it on replay, so the journal tail is already effectively one
  // record deep.  Keeping it replayable also exercises the crash-between-
  // reset-and-first-append path.
  if (state_->journal) state_->journal->commit();
}

SessionStats Session::stats() const {
  const State& st = *state_;
  SessionStats s;
  s.resmooth_hits = st.hits.load(std::memory_order_relaxed);
  s.resmooth_misses = st.misses.load(std::memory_order_relaxed);
  s.covariance_upgrades = st.cov_upgrades.load(std::memory_order_relaxed);
  s.steps_spliced = st.steps_spliced.load(std::memory_order_relaxed);
  s.truncated_resmooths = st.truncated.load(std::memory_order_relaxed);
  s.steps_truncation_skipped = st.truncation_skipped.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pitk::engine
