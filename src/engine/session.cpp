#include "engine/session.hpp"

#include <utility>

#include "core/selinv.hpp"
#include "io/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::engine {

namespace {
/// Process-wide mirrors of the per-session counters, aggregated across every
/// session (cold registration, relaxed-atomic recording; leaked like the
/// registry so sessions racing process exit still record safely).
struct SessionMetrics {
  obs::Counter& hits = obs::counter("pitk.session.resmooth_hits");
  obs::Counter& misses = obs::counter("pitk.session.resmooth_misses");
  obs::Counter& cov_upgrades = obs::counter("pitk.session.cov_upgrades");
};

SessionMetrics& session_metrics() {
  static SessionMetrics* m = new SessionMetrics();
  return *m;
}
}  // namespace

namespace {
/// Journal write-ahead discipline for one mutation, run under the session
/// lock after the filter accepted it: commit the staged record (first
/// failure throws — durability loss is loud — and poisons the journal, so
/// the torn tail stays a clean truncation point), then compact when the
/// tail since the last snapshot crossed the threshold.
void commit_and_maybe_compact(io::SessionJournal& j,
                              const kalman::IncrementalFilter& filter) {
  j.commit();
  if (j.wants_compaction()) j.compact_linear(filter);
}
}  // namespace

Session::State::State(SmootherEngine* e, la::index n0) : engine(e), filter(n0) {}
Session::State::~State() = default;

void Session::evolve(Matrix f, Vector c, CovFactor k) {
  std::lock_guard<std::mutex> lk(state_->mu);
  // Stage before the filter consumes the arguments; a rejected evolve must
  // never reach the journal.
  if (state_->journal) state_->journal->stage_evolve(f, c, k);
  state_->filter.evolve(std::move(f), std::move(c), std::move(k));
  ++state_->mutations;
  if (state_->journal) commit_and_maybe_compact(*state_->journal, state_->filter);
}

void Session::evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k) {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->journal) state_->journal->stage_evolve_rect(n_new, h, f, c, k);
  state_->filter.evolve_rect(n_new, std::move(h), std::move(f), std::move(c), std::move(k));
  ++state_->mutations;
  if (state_->journal) commit_and_maybe_compact(*state_->journal, state_->filter);
}

void Session::observe(Matrix g, Vector o, CovFactor l) {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->journal) state_->journal->stage_observe(g, o, l);
  state_->filter.observe(std::move(g), std::move(o), std::move(l));
  ++state_->mutations;
  if (state_->journal) commit_and_maybe_compact(*state_->journal, state_->filter);
}

la::index Session::current_step() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.current_step();
}

la::index Session::current_dim() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.current_dim();
}

std::optional<Vector> Session::estimate() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.estimate();
}

std::optional<Matrix> Session::covariance() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.covariance();
}

void Session::resmooth(const State& st, ResmoothCache& cache, bool with_covariances,
                       SmootherResult& out) {
  std::lock_guard<std::mutex> cl(cache.mu);
  bool hit = false;
  bool covs_upgrade = false;  // factor and means current, only SelInv missing
  {
    // The session lock is held only for the delta: epoch check, splice of
    // the newly finalized blocks, and compression of the pending rows —
    // O(appended steps), so a re-smooth never stalls the measurement
    // stream behind a full-track pass.
    PITK_TRACE_SPAN("session.splice");
    std::lock_guard<std::mutex> lk(st.mu);
    const kalman::IncrementalFilter& filt = st.filter;
    if (cache.epoch != filt.reset_epoch()) {
      cache.prefix_len = 0;  // reset() discarded the prefix: rebuild from scratch
      cache.epoch = filt.reset_epoch();
      cache.result_valid = false;
    }
    const bool current = cache.result_valid && cache.result_mutation == st.mutations;
    hit = current && (cache.result_covs || !with_covariances);
    covs_upgrade = current && !hit;
    if (!hit && !covs_upgrade) {
      const std::size_t prefix_before = cache.prefix_len;
      filt.resmooth_from(static_cast<la::index>(cache.prefix_len), cache.factor, cache.qr);
      cache.prefix_len = static_cast<std::size_t>(filt.finished_steps());
      cache.result_mutation = st.mutations;
      cache.result_valid = false;  // until the solve below completes
      st.steps_spliced.fetch_add(cache.prefix_len - prefix_before,
                                 std::memory_order_relaxed);
    }
  }
  SessionMetrics& sm = session_metrics();
  if (hit) {
    st.hits.fetch_add(1, std::memory_order_relaxed);
    sm.hits.add(1);
  } else if (covs_upgrade) {
    st.cov_upgrades.fetch_add(1, std::memory_order_relaxed);
    sm.cov_upgrades.add(1);
  } else {
    st.misses.fetch_add(1, std::memory_order_relaxed);
    sm.misses.add(1);
  }
  if (!hit) {
    // A covariance upgrade of an unmutated session keeps the spliced factor
    // and the cached means; only the SelInv sweep is missing.
    if (!covs_upgrade) {
      PITK_TRACE_SPAN("session.solve");
      kalman::paige_saunders_solve_into(cache.factor, cache.result.means);
    }
    if (with_covariances) {
      PITK_TRACE_SPAN("session.selinv");
      kalman::selinv_bidiagonal_into(cache.factor, cache.result.covariances);
    }
    // On a covariance-free pass the (now stale) cached covariance blocks are
    // kept for capacity reuse: result_covs gates serving them, and the next
    // covariance pass overwrites them in place — a tenant alternating NC and
    // covariance re-smooths stays allocation-free.
    cache.result_covs = with_covariances;
    cache.result_valid = true;
  }
  out.means.resize(cache.result.means.size());
  for (std::size_t i = 0; i < cache.result.means.size(); ++i)
    out.means[i].assign_from(cache.result.means[i].span());
  if (with_covariances) {
    out.covariances.resize(cache.result.covariances.size());
    for (std::size_t i = 0; i < cache.result.covariances.size(); ++i)
      out.covariances[i].assign_from(cache.result.covariances[i].view());
  } else {
    out.covariances.clear();
  }
}

SmootherResult Session::smooth(bool with_covariances) const {
  SmootherResult out;
  resmooth(*state_, state_->sync_cache, with_covariances, out);
  return out;
}

void Session::smooth_into(SmootherResult& out, bool with_covariances) const {
  resmooth(*state_, state_->sync_cache, with_covariances, out);
}

std::future<JobResult> Session::smooth_async(bool with_covariances, SmootherResult* into) const {
  // The spliced factor rows are exactly the Paige-Saunders bidiagonal R, so
  // the job is accounted under that backend.  The body captures the shared
  // State (not the Session handle), so the job stays valid if the handle is
  // moved or destroyed before execution.
  auto st = state_;
  const la::index num_states = current_step() + 1;
  return st->engine->launch(
      [st, with_covariances](par::ThreadPool&, SolverCache&, SmootherResult& out,
                             JobMetrics&) {
        resmooth(*st, st->async_cache, with_covariances, out);
      },
      Backend::PaigeSaunders, /*large=*/false, num_states, into);
}

void Session::reset(la::index n0) {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->journal) state_->journal->stage_reset(n0);
  state_->filter.reset(n0);  // bumps reset_epoch: both caches resplice from 0
  ++state_->mutations;
  // No forced compaction here: the reset chunk itself invalidates everything
  // before it on replay, so the journal tail is already effectively one
  // record deep.  Keeping it replayable also exercises the crash-between-
  // reset-and-first-append path.
  if (state_->journal) state_->journal->commit();
}

SessionStats Session::stats() const {
  const State& st = *state_;
  SessionStats s;
  s.resmooth_hits = st.hits.load(std::memory_order_relaxed);
  s.resmooth_misses = st.misses.load(std::memory_order_relaxed);
  s.covariance_upgrades = st.cov_upgrades.load(std::memory_order_relaxed);
  s.steps_spliced = st.steps_spliced.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pitk::engine
