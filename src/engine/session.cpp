#include "engine/session.hpp"

#include <utility>

namespace pitk::engine {

void Session::evolve(Matrix f, Vector c, CovFactor k) {
  std::lock_guard<std::mutex> lk(state_->mu);
  state_->filter.evolve(std::move(f), std::move(c), std::move(k));
}

void Session::evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k) {
  std::lock_guard<std::mutex> lk(state_->mu);
  state_->filter.evolve_rect(n_new, std::move(h), std::move(f), std::move(c), std::move(k));
}

void Session::observe(Matrix g, Vector o, CovFactor l) {
  std::lock_guard<std::mutex> lk(state_->mu);
  state_->filter.observe(std::move(g), std::move(o), std::move(l));
}

la::index Session::current_step() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.current_step();
}

la::index Session::current_dim() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.current_dim();
}

std::optional<Vector> Session::estimate() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.estimate();
}

std::optional<Matrix> Session::covariance() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter.covariance();
}

kalman::IncrementalFilter Session::snapshot() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->filter;
}

SmootherResult Session::smooth(bool with_covariances) const {
  return snapshot().smooth(with_covariances);
}

std::future<JobResult> Session::smooth_async(bool with_covariances) const {
  // The snapshot's factor rows are exactly the Paige-Saunders bidiagonal R,
  // so the job is accounted under that backend.
  auto snap = std::make_shared<const kalman::IncrementalFilter>(snapshot());
  const la::index num_states = snap->current_step() + 1;
  return state_->engine->launch(
      [snap, with_covariances](par::ThreadPool&, SolverCache&, SmootherResult& out) {
        out = snap->smooth(with_covariances);
      },
      Backend::PaigeSaunders, /*large=*/false, num_states, /*into=*/nullptr);
}

void Session::reset(la::index n0) {
  std::lock_guard<std::mutex> lk(state_->mu);
  state_->filter.reset(n0);
}

}  // namespace pitk::engine
