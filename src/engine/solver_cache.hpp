#pragma once

/// \file solver_cache.hpp
/// Warm per-worker solver state for the batched engine.
///
/// PR 2 made each backend's per-step loop allocation-free *when warm*, but a
/// worker that solves every job with freshly constructed factor/scratch
/// objects never gets warm: the `BidiagonalFactor` blocks, the associative
/// scan elements and the odd-even S-block slots are rebuilt from the heap on
/// every job.  A SolverCache owns exactly that cross-job state.  The engine
/// keeps one per pool worker (keyed off the worker's stable pool index, the
/// same per-worker identity `par::ThreadPool::current_thread_in_pool` is
/// built on), so repeated jobs scheduled onto a worker reuse storage sized
/// to the high-water job and — together with the worker's `la::Workspace`
/// arena — touch zero heap once warm.  Observable through
/// `JobMetrics::allocations` and `JobMetrics::workspace_high_water_bytes`.
///
/// A cache is not thread-safe; it must only ever be used by the one worker
/// it belongs to, one job at a time.

#include <cstddef>
#include <cstdint>

#include "core/associative.hpp"
#include "core/gauss_newton.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "engine/backend.hpp"
#include "la/qr.hpp"

namespace pitk::engine {

struct SolverCache {
  /// Paige-Saunders bidiagonal factor; `paige_saunders_factor_into` resizes
  /// its blocks capacity-reusing, so it grows to the worker's largest job
  /// and then stays.
  kalman::BidiagonalFactor factor;
  /// Associative scan element storage (five matrices/vectors per step).
  kalman::AssociativeScratch assoc;
  /// Odd-even SelInv S-block slots (Algorithm 2 replay storage).
  kalman::OddEvenCovScratch oddeven_cov;
  /// Warm Gauss-Newton outer-loop state for nonlinear jobs: the linearized
  /// correction problem, inner solution and candidate trajectory all reuse
  /// capacity across the jobs a worker serves, so a warm worker runs a
  /// same-shaped outer iteration with zero heap allocations (given a model
  /// with *_into callbacks).
  kalman::GaussNewtonState gauss_newton;
  /// Householder tau scratch for jobs that run QR compression against the
  /// cached factor (session splices on the snapshot-isolated large path).
  la::QrScratch qr;
  /// Odd-even factor storage for large session re-smooths built from the
  /// spliced bidiagonal prefix (level vectors reuse capacity across jobs).
  kalman::OddEvenFactor oddeven_factor;
  /// Session affinity of `factor` for the snapshot-isolated large re-smooth
  /// path: when this worker re-serves the same session in the same reset
  /// epoch, the splice copies only newly finalized blocks; any other
  /// (session, epoch) — or a batch job, which overwrites `factor` and clears
  /// the key — re-splices from scratch.
  const void* session_key = nullptr;
  std::uint64_t session_epoch = 0;
  std::size_t session_prefix = 0;
  /// Jobs this cache has served (first job on a worker is the cold one).
  std::uint64_t jobs_served = 0;
  /// Re-entrancy latch, touched only by the owning thread: a large job's
  /// nested parallel_for join helps the pool via run_one() and can execute
  /// *another job body* on this same thread while the outer job's scratch
  /// is live.  The engine leaves such nested jobs on a cold one-shot cache
  /// instead of re-entering this one.
  bool in_use = false;
};

/// Solve `p` with backend `b` like `solve_with`, but route every solver that
/// has warm-capable storage through `cache` and write the result into `out`
/// capacity-reusing.  With a warm cache, warm `out` storage of matching
/// shape and a warm per-thread workspace, a repeat solve performs zero heap
/// allocations end to end for the QR-family backends (Paige-Saunders
/// entirely; odd-even's covariance replay and back substitution — its
/// factorization still builds per-level state).  The dense-reference and
/// RTS backends have no warm path and simply move their result into `out`.
void solve_with_into(Backend b, const Problem& p, const std::optional<GaussianPrior>& prior,
                     par::ThreadPool& pool, const SolveOptions& opts, SolverCache& cache,
                     SmootherResult& out);

/// Convergence summary of one nonlinear (Gauss-Newton/LM) solve.
struct NonlinearSolveInfo {
  la::index iterations = 0;  ///< outer iterations run (incl. LM rejections)
  bool converged = false;
  double final_cost = 0.0;   ///< weighted nonlinear cost at the returned states
};

/// Run the Gauss-Newton/LM outer loop on `model` from `init`, serving every
/// inner linearized solve through backend `b` (Auto resolves via
/// select_nonlinear_backend) with `cache`'s warm storage via solve_with_into.
/// Outer-loop state lives in `st` — pass cache.gauss_newton for batch jobs
/// (warm per worker) or a caller-owned state for warm-started streaming.
/// Backends that require a prior (rts/associative) get a synthetic zero-mean
/// prior with variance `delta_prior_variance` on the step-0 *correction*; it
/// damps early steps without moving the Gauss-Newton fixed point, so all
/// backends converge to the same trajectory.  Final smoothed means land in
/// `out.means` (capacity-reusing); when `gn.final_covariance` is set, one
/// covariance-enabled pass over the final linearization fills
/// `out.covariances`.
/// `gn.linear.grain` governs both the relinearization sweep and the inner
/// solves, exactly as in direct gauss_newton_smooth.
void solve_nonlinear_into(Backend b, const kalman::NonlinearModel& model,
                          const std::vector<la::Vector>& init,
                          const kalman::GaussNewtonOptions& gn, double delta_prior_variance,
                          par::ThreadPool& pool, SolverCache& cache,
                          kalman::GaussNewtonState& st, SmootherResult& out,
                          NonlinearSolveInfo& info);

}  // namespace pitk::engine
