#include "engine/solver_cache.hpp"

#include <stdexcept>
#include <string>

#include "core/selinv.hpp"
#include "engine/control.hpp"
#include "fault/fault.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/rts.hpp"
#include "obs/trace.hpp"

namespace pitk::engine {

namespace {

/// Poison this backend's solved means when its "solve.<name>" Nan site is
/// armed (the registry's solve-span literals double as fault-site names, so
/// a test can fail exactly one backend and watch the ladder rescue the job
/// through a different, unarmed one).
void maybe_poison_means(Backend b, SmootherResult& out) noexcept {
  if (!fault::any_armed() || out.means.empty()) return;
  la::Vector& v = out.means.front();
  fault::inject_nan(backend_solve_span_name(b), v.data(),
                    static_cast<std::size_t>(v.size()));
}

}  // namespace

void solve_with_into(Backend b, const Problem& p, const std::optional<GaussianPrior>& prior,
                     par::ThreadPool& pool, const SolveOptions& opts, SolverCache& cache,
                     SmootherResult& out) {
  if (b == Backend::Auto)
    b = select_backend(p, prior.has_value(), opts.compute_covariance, pool.concurrency());
  if (!backend_supports(b, p, prior.has_value()))
    throw SolveError(SolveErrorCode::BackendUnsupported,
                     std::string("solve_with: backend '") + backend_info(b).name +
                         "' cannot solve this problem (missing prior or explicit H)");
  detail::solve_checkpoint();

  // QR-family backends absorb the prior as a step-0 observation so that all
  // backends solve the identical regularized least-squares problem; without
  // a prior the problem is used in place (no copy on the hot path).
  std::optional<Problem> folded_storage;
  if (prior && b != Backend::Rts && b != Backend::Associative)
    folded_storage = kalman::with_prior_observation(p, *prior);
  const Problem& folded = folded_storage ? *folded_storage : p;

  PITK_TRACE_SPAN(backend_solve_span_name(b));
  ++cache.jobs_served;
  switch (b) {
    case Backend::DenseReference:
      out = kalman::dense_smooth(folded, opts.compute_covariance);
      maybe_poison_means(b, out);
      return;
    case Backend::Rts: {
      out = kalman::rts_smooth(p, *prior);
      if (!opts.compute_covariance) out.covariances.clear();
      maybe_poison_means(b, out);
      return;
    }
    case Backend::PaigeSaunders: {
      // Fully warm: factor blocks, solution vectors and SelInv covariance
      // blocks all reuse their capacity; transients are workspace borrows.
      // Checkpoints between the stages give deadlines/cancellation a say
      // mid-job without any per-step cost.
      cache.session_key = nullptr;  // `factor` no longer holds a session splice
      kalman::paige_saunders_factor_into(folded, cache.factor);
      if (fault::any_armed() && !cache.factor.diag.empty())
        fault::inject_nan("solver.factor", cache.factor.diag.front().data(),
                          static_cast<std::size_t>(cache.factor.diag.front().rows()));
      detail::solve_checkpoint();
      kalman::paige_saunders_solve_into(cache.factor, out.means);
      detail::solve_checkpoint();
      if (opts.compute_covariance)
        kalman::selinv_bidiagonal_into(cache.factor, out.covariances);
      else
        out.covariances.clear();
      maybe_poison_means(b, out);
      return;
    }
    case Backend::Associative: {
      kalman::AssociativeOptions aopts;
      aopts.grain = opts.grain;
      aopts.scratch = &cache.assoc;
      kalman::associative_smooth_into(p, *prior, pool, aopts, out);
      if (!opts.compute_covariance) out.covariances.clear();
      maybe_poison_means(b, out);
      return;
    }
    case Backend::OddEven: {
      kalman::OddEvenFactor f = kalman::oddeven_factor(folded, pool, opts.grain);
      detail::solve_checkpoint();
      kalman::oddeven_solve_into(f, pool, opts.grain, out.means);
      detail::solve_checkpoint();
      if (opts.compute_covariance)
        kalman::oddeven_covariances_into(f, pool, opts.grain, cache.oddeven_cov,
                                         out.covariances);
      else
        out.covariances.clear();
      maybe_poison_means(b, out);
      return;
    }
    case Backend::Auto:
      break;
  }
  throw std::invalid_argument("solve_with: unknown backend");
}

void solve_nonlinear_into(Backend b, const kalman::NonlinearModel& model,
                          const std::vector<la::Vector>& init,
                          const kalman::GaussNewtonOptions& gn, double delta_prior_variance,
                          par::ThreadPool& pool, SolverCache& cache,
                          kalman::GaussNewtonState& st, SmootherResult& out,
                          NonlinearSolveInfo& info) {
  const la::index grain = gn.linear.grain;
  if (b == Backend::Auto) b = select_nonlinear_backend(model, pool.concurrency());

  // The correction problem carries no natural prior; backends that demand
  // one get a zero-mean prior on delta_0.  Being zero-mean it only damps the
  // step (never displaces the stationary point J^T W r = 0), so the outer
  // loop still converges to the prior-free trajectory.
  std::optional<GaussianPrior> prior;
  if (backend_info(b).needs_prior) {
    if (!(delta_prior_variance > 0.0))
      throw std::invalid_argument(
          "solve_nonlinear_into: delta_prior_variance must be positive for "
          "prior-requiring backends");
    const la::index n0 = model.dims.empty() ? 0 : model.dims.front();
    GaussianPrior pr;
    pr.mean = la::Vector(n0);
    pr.cov = la::Matrix(n0, n0);
    for (la::index q = 0; q < n0; ++q) pr.cov(q, q) = delta_prior_variance;
    prior = std::move(pr);
  }

  kalman::gauss_newton_init(model, init, gn, st);
  SolveOptions inner;
  inner.compute_covariance = false;  // the paper's NC fast path
  inner.grain = grain;
  const kalman::GaussNewtonLinearSolver solver = [&](const Problem& lp, SmootherResult& delta) {
    solve_with_into(b, lp, prior, pool, inner, cache, delta);
  };

  while (st.iterations < gn.max_iterations) {
    PITK_TRACE_SPAN("gn.outer_step");
    // Outer iterations are the nonlinear job's natural checkpoint cadence: a
    // cancelled or past-deadline tenant stops before the next relinearize +
    // inner solve instead of running its whole iteration budget.
    detail::solve_checkpoint();
    fault::inject_delay("gn.outer_step");
    const kalman::GaussNewtonStep s = kalman::gauss_newton_step_into(model, st, gn, pool, solver);
    if (s == kalman::GaussNewtonStep::Converged || s == kalman::GaussNewtonStep::Stalled) break;
  }

  out.means.resize(st.states.size());
  for (std::size_t i = 0; i < st.states.size(); ++i)
    out.means[i].assign_from(st.states[i].span());
  if (gn.final_covariance) {
    PITK_TRACE_SPAN("gn.final_covariance");
    kalman::gauss_newton_relinearize(model, st.states, 0.0, pool, grain, st);
    SolveOptions with_cov;
    with_cov.compute_covariance = true;
    with_cov.grain = grain;
    solve_with_into(b, st.linearized, prior, pool, with_cov, cache, st.final_pass);
    out.covariances.resize(st.final_pass.covariances.size());
    for (std::size_t i = 0; i < st.final_pass.covariances.size(); ++i)
      out.covariances[i].assign_from(st.final_pass.covariances[i].view());
  } else {
    out.covariances.clear();
  }

  info.iterations = st.iterations;
  info.converged = st.converged;
  info.final_cost = st.cost;
}

}  // namespace pitk::engine
