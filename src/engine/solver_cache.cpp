#include "engine/solver_cache.hpp"

#include <stdexcept>
#include <string>

#include "core/selinv.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/rts.hpp"

namespace pitk::engine {

void solve_with_into(Backend b, const Problem& p, const std::optional<GaussianPrior>& prior,
                     par::ThreadPool& pool, const SolveOptions& opts, SolverCache& cache,
                     SmootherResult& out) {
  if (b == Backend::Auto)
    b = select_backend(p, prior.has_value(), opts.compute_covariance, pool.concurrency());
  if (!backend_supports(b, p, prior.has_value()))
    throw std::invalid_argument(std::string("solve_with: backend '") + backend_info(b).name +
                                "' cannot solve this problem (missing prior or explicit H)");

  // QR-family backends absorb the prior as a step-0 observation so that all
  // backends solve the identical regularized least-squares problem; without
  // a prior the problem is used in place (no copy on the hot path).
  std::optional<Problem> folded_storage;
  if (prior && b != Backend::Rts && b != Backend::Associative)
    folded_storage = kalman::with_prior_observation(p, *prior);
  const Problem& folded = folded_storage ? *folded_storage : p;

  ++cache.jobs_served;
  switch (b) {
    case Backend::DenseReference:
      out = kalman::dense_smooth(folded, opts.compute_covariance);
      return;
    case Backend::Rts: {
      out = kalman::rts_smooth(p, *prior);
      if (!opts.compute_covariance) out.covariances.clear();
      return;
    }
    case Backend::PaigeSaunders: {
      // Fully warm: factor blocks, solution vectors and SelInv covariance
      // blocks all reuse their capacity; transients are workspace borrows.
      kalman::paige_saunders_factor_into(folded, cache.factor);
      kalman::paige_saunders_solve_into(cache.factor, out.means);
      if (opts.compute_covariance)
        kalman::selinv_bidiagonal_into(cache.factor, out.covariances);
      else
        out.covariances.clear();
      return;
    }
    case Backend::Associative: {
      kalman::AssociativeOptions aopts;
      aopts.grain = opts.grain;
      aopts.scratch = &cache.assoc;
      out = kalman::associative_smooth(p, *prior, pool, aopts);
      if (!opts.compute_covariance) out.covariances.clear();
      return;
    }
    case Backend::OddEven: {
      kalman::OddEvenFactor f = kalman::oddeven_factor(folded, pool, opts.grain);
      kalman::oddeven_solve_into(f, pool, opts.grain, out.means);
      if (opts.compute_covariance)
        kalman::oddeven_covariances_into(f, pool, opts.grain, cache.oddeven_cov,
                                         out.covariances);
      else
        out.covariances.clear();
      return;
    }
    case Backend::Auto:
      break;
  }
  throw std::invalid_argument("solve_with: unknown backend");
}

}  // namespace pitk::engine
