#pragma once

/// \file durable.hpp
/// Result type of SmootherEngine::recover_all(): every session rebuilt from
/// a SessionStore, ready to stream and smooth exactly where the crashed
/// process left off.
///
/// Recovery is per-journal and isolation is per-session: a corrupt journal,
/// an unreadable file, or a nonlinear journal with no model hook lands in
/// `failed` with the reason, and every other tenant still comes back.  The
/// counters summarize what the pass did; they are also mirrored into the
/// metrics registry (pitk.io.recovered_sessions, pitk.io.torn_tails,
/// pitk.io.replayed_records) and the per-session wall time into the
/// pitk.io.recovery_seconds histogram.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"

namespace pitk::engine {

struct RecoveredSessions {
  /// Linear sessions by id; journals reattached, next smooth() agrees with
  /// an uninterrupted run.
  std::vector<std::pair<std::string, Session>> linear;
  /// Nonlinear sessions by id, warm-started from the snapshot's means when
  /// the journal had compacted any.
  std::vector<std::pair<std::string, NonlinearSession>> nonlinear;
  /// (id, reason) for every journal that could not be recovered.
  std::vector<std::pair<std::string, std::string>> failed;

  std::uint64_t torn_tails = 0;        ///< journals whose tail was truncated
  std::uint64_t replayed_records = 0;  ///< tail records replayed over all sessions
};

}  // namespace pitk::engine
