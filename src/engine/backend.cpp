#include "engine/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "engine/solver_cache.hpp"
#include "la/blas.hpp"

namespace pitk::engine {

using la::index;

namespace {

/// Fallback kernel rate when calibration is disabled: deliberately modest so
/// the derived small-job cut lands near the old hard-coded 2e6 flops.
constexpr double kFallbackFlopsPerSecond = 5e9;

/// Estimated scheduling cost of dispatching one parallel_for chunk (submit,
/// steal, join share).  Not measured — pool-dependent and noisy — but only
/// its ratio to the measured per-step cost matters, and that ratio is
/// clamped below.
constexpr double kSchedSecondsPerChunk = 2e-6;

double measure_gemm_rate() {
  if (const char* v = std::getenv("PITK_CALIBRATE"); v != nullptr && v[0] == '0')
    return kFallbackFlopsPerSecond;
  // Time the packed kernel at n = 48 (the paper's large state dimension and
  // the mid-range the solvers live in).  Deterministic data; a handful of
  // repetitions so the one-shot cost stays below a millisecond.
  const index n = 48;
  la::Matrix a(n, n);
  la::Matrix b(n, n);
  la::Matrix c(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) {
      a(i, j) = 1.0 + 0.01 * static_cast<double>(i - j);
      b(i, j) = 1.0 - 0.02 * static_cast<double>(i + j);
    }
  const auto run = [&] {
    la::detail::gemm_packed(1.0, a.view(), la::Trans::No, b.view(), la::Trans::No, 0.0,
                            c.view());
  };
  run();  // warm the arena and the instruction cache
  constexpr int reps = 4;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) run();
  const double dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double flops = 2.0 * static_cast<double>(n) * n * n * reps;
  const double rate = dt > 0.0 ? flops / dt : kFallbackFlopsPerSecond;
  return std::clamp(rate, 1e8, 1e12);
}

}  // namespace

double calibrated_gemm_flops_per_second() {
  static const double rate = measure_gemm_rate();
  return rate;
}

double calibrated_small_job_flops() {
  constexpr double kSmallJobTargetSeconds = 200e-6;
  return std::clamp(calibrated_gemm_flops_per_second() * kSmallJobTargetSeconds, 5e5, 5e7);
}

const std::vector<BackendInfo>& all_backends() {
  static const std::vector<BackendInfo> registry = {
      {Backend::DenseReference, "dense-reference",
       /*needs_prior=*/false, /*needs_identity_h=*/false,
       /*intra_parallel=*/false, /*can_skip_covariance=*/true},
      {Backend::Rts, "rts",
       /*needs_prior=*/true, /*needs_identity_h=*/true,
       /*intra_parallel=*/false, /*can_skip_covariance=*/false},
      {Backend::PaigeSaunders, "paige-saunders",
       /*needs_prior=*/false, /*needs_identity_h=*/false,
       /*intra_parallel=*/false, /*can_skip_covariance=*/true},
      {Backend::Associative, "associative",
       /*needs_prior=*/true, /*needs_identity_h=*/true,
       /*intra_parallel=*/true, /*can_skip_covariance=*/false},
      {Backend::OddEven, "odd-even",
       /*needs_prior=*/false, /*needs_identity_h=*/false,
       /*intra_parallel=*/true, /*can_skip_covariance=*/true},
  };
  return registry;
}

const BackendInfo& backend_info(Backend b) {
  const int i = backend_index(b);
  if (i < 0 || i >= num_backends)
    throw std::invalid_argument("backend_info: not a concrete backend");
  return all_backends()[static_cast<std::size_t>(i)];
}

const char* backend_job_span_name(Backend b) {
  // Trace-span names must be string literals (TraceSpan stores the pointer);
  // one table per instrumentation site, in registry order.
  static constexpr const char* names[num_backends] = {
      "job.dense-reference", "job.rts", "job.paige-saunders", "job.associative",
      "job.odd-even"};
  const int i = backend_index(b);
  return (i < 0 || i >= num_backends) ? "job.?" : names[i];
}

const char* backend_solve_span_name(Backend b) {
  static constexpr const char* names[num_backends] = {
      "solve.dense-reference", "solve.rts", "solve.paige-saunders", "solve.associative",
      "solve.odd-even"};
  const int i = backend_index(b);
  return (i < 0 || i >= num_backends) ? "solve.?" : names[i];
}

std::optional<Backend> backend_by_name(std::string_view name) {
  for (const BackendInfo& info : all_backends())
    if (name == info.name) return info.id;
  return std::nullopt;
}

bool has_identity_h(const Problem& p) {
  for (const kalman::TimeStep& s : p.steps())
    if (s.evolution && !s.evolution->identity_h()) return false;
  return true;
}

bool backend_supports(Backend b, const Problem& p, bool has_prior) {
  const BackendInfo& info = backend_info(b);
  if (info.needs_prior && !has_prior) return false;
  if (info.needs_identity_h && !has_identity_h(p)) return false;
  return true;
}

double estimated_flops(const Problem& p, bool with_covariance) {
  // Per step the structured QR smoothers factor a panel of O(obs + evo + n)
  // rows by O(n) columns (~2 r n^2 flops) and back-substitute; SelInv adds a
  // handful of n x n triangular solves/multiplies per state.  Constants do
  // not matter here — only the relative size of jobs does.
  double flops = 0.0;
  for (const kalman::TimeStep& s : p.steps()) {
    const double n = static_cast<double>(s.n);
    const double rows = static_cast<double>(s.obs_rows() + s.evo_rows()) + n;
    flops += 2.0 * rows * n * n;
    if (with_covariance) flops += 8.0 * n * n * n;
  }
  return flops;
}

namespace {

/// Step count above which the odd-even smoother keeps `threads` lanes busy.
/// Parallel-in-time pays off once each lane gets several grains of block
/// columns at the top reduction level (Figure 3's crossover is a few
/// thousand steps at paper scale).  How many grains a lane needs is
/// calibrated from measured kernel throughput: the cheaper one step is, the
/// more steps one scheduling chunk must amortize.  The clamp keeps the
/// cutoff within sane bounds when the measurement misfires.
index parallel_step_cutoff(double per_step_seconds, unsigned threads) {
  const double chunks_per_lane = std::clamp(
      kSchedSecondsPerChunk / (static_cast<double>(par::default_grain) * per_step_seconds),
      4.0, 16.0);
  return static_cast<index>(std::ceil(static_cast<double>(threads) * chunks_per_lane *
                                      static_cast<double>(par::default_grain)));
}

}  // namespace

double estimated_nonlinear_iteration_flops(const kalman::NonlinearModel& m) {
  // The correction problem of one outer iteration: identity-H evolutions of
  // n rows, the model's observation rows, no covariance pass (the inner
  // solves are NC).  Same flop model as estimated_flops.  Runs before the
  // job body's model validation (the engine estimates on the submitting
  // thread), so a malformed obs vector must degrade the estimate, not read
  // out of bounds — validation still fails the job's future.
  double flops = 0.0;
  for (index i = 0; i < static_cast<index>(m.dims.size()); ++i) {
    const double n = static_cast<double>(m.dims[static_cast<std::size_t>(i)]);
    const double obs = i < static_cast<index>(m.obs.size())
                           ? static_cast<double>(m.obs[static_cast<std::size_t>(i)].size())
                           : 0.0;
    const double rows = obs + (i > 0 ? n : 0.0) + n;
    flops += 2.0 * rows * n * n;
  }
  return flops;
}

double estimated_nonlinear_job_flops(const kalman::NonlinearModel& m,
                                     const kalman::GaussNewtonOptions& gn) {
  // Whole-job cost for the small-vs-large cut: one iteration's linearized
  // solve times a conservative expected outer-iteration count.  Mis-guessing
  // only shifts the scheduling path, never correctness.
  constexpr double kExpectedIterations = 6.0;
  return estimated_nonlinear_iteration_flops(m) *
         std::min(static_cast<double>(gn.max_iterations), kExpectedIterations);
}

Backend select_backend(const Problem& p, bool has_prior, bool with_covariance,
                       unsigned threads) {
  const index k = p.num_states();
  const double per_step_seconds =
      estimated_flops(p, with_covariance) / static_cast<double>(std::max<index>(k, 1)) /
      calibrated_gemm_flops_per_second();
  if (threads > 1 && k >= parallel_step_cutoff(per_step_seconds, threads))
    return Backend::OddEven;
  if (has_prior && has_identity_h(p) && with_covariance) return Backend::Rts;
  return Backend::PaigeSaunders;
}

Backend select_nonlinear_backend(const kalman::NonlinearModel& m, unsigned threads) {
  const index k = static_cast<index>(m.dims.size());
  const double per_step_seconds = estimated_nonlinear_iteration_flops(m) /
                                  static_cast<double>(std::max<index>(k, 1)) /
                                  calibrated_gemm_flops_per_second();
  if (threads > 1 && k >= parallel_step_cutoff(per_step_seconds, threads))
    return Backend::OddEven;
  // The correction problem carries no prior, so the sequential choice is the
  // QR family (RTS cannot express it).
  return Backend::PaigeSaunders;
}

bool result_is_finite(const SmootherResult& r) noexcept {
  for (const la::Vector& v : r.means)
    for (index i = 0; i < v.size(); ++i)
      if (!std::isfinite(v[i])) return false;
  for (const la::Matrix& m : r.covariances) {
    const double* d = m.data();
    const std::size_t count = static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
    for (std::size_t i = 0; i < count; ++i)
      if (!std::isfinite(d[i])) return false;
  }
  return true;
}

Backend numerical_fallback(Backend failed, const Problem& p, bool has_prior) {
  // Dense QR holds the full (total_rows x total_dim) system; past a few
  // thousand unknowns its memory footprint stops being a rescue and starts
  // being an OOM, so the last rung only exists for small problems.
  constexpr index kDenseFallbackMaxDim = 2048;
  if (failed != Backend::PaigeSaunders &&
      backend_supports(Backend::PaigeSaunders, p, has_prior))
    return Backend::PaigeSaunders;
  if (failed != Backend::DenseReference && p.total_state_dim() <= kDenseFallbackMaxDim)
    return Backend::DenseReference;
  return Backend::Auto;
}

SmootherResult solve_with(Backend b, const Problem& p,
                          const std::optional<GaussianPrior>& prior,
                          par::ThreadPool& pool, const SolveOptions& opts) {
  // One-shot path: solve through a cold throwaway cache.  Callers with
  // repeated same-shaped solves (the engine's workers) hold a warm
  // SolverCache and use solve_with_into directly.
  SolverCache cache;
  SmootherResult out;
  solve_with_into(b, p, prior, pool, opts, cache, out);
  return out;
}

}  // namespace pitk::engine
