#pragma once

/// \file backend.hpp
/// Pluggable smoother backends behind one solve interface.
///
/// The engine multiplexes many independent smoothing jobs over one shared
/// pool; each job may be served by any of the five solvers the repository
/// implements.  This module registers them behind a single `solve_with`
/// entry point, normalizes their prior-handling differences (conventional
/// smoothers take a GaussianPrior argument, QR smoothers fold it in as a
/// step-0 pseudo-observation — Section 2.1 of the paper), and provides the
/// auto-selection heuristic over (steps k, state dims, available threads)
/// used when a job does not pin a backend.

#include <optional>
#include <string_view>
#include <vector>

#include "core/gauss_newton.hpp"
#include "kalman/model.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::engine {

using kalman::GaussianPrior;
using kalman::Problem;
using kalman::SmootherResult;

/// The registered solver families.  `Auto` defers to select_backend().
enum class Backend {
  Auto,
  DenseReference,  ///< dense QR oracle; O((kn)^2) memory, tiny problems only
  Rts,             ///< conventional Kalman filter + RTS backward pass
  PaigeSaunders,   ///< sequential block-bidiagonal QR + SelInv
  Associative,     ///< Särkkä & García-Fernández parallel scans
  OddEven,         ///< the paper's parallel odd-even QR + parallel SelInv
};

/// Number of concrete (non-Auto) backends.
inline constexpr int num_backends = 5;

/// Dense index 0..num_backends-1 of a concrete backend (registry order).
[[nodiscard]] constexpr int backend_index(Backend b) noexcept {
  return static_cast<int>(b) - 1;
}

/// Static capabilities of one backend.
struct BackendInfo {
  Backend id = Backend::Auto;
  const char* name = "?";
  bool needs_prior = false;         ///< must be given a GaussianPrior
  bool needs_identity_h = false;    ///< cannot express explicit/rectangular H
  bool intra_parallel = false;      ///< exploits the pool inside one job
  bool can_skip_covariance = false; ///< supports the paper's NC variants
};

/// The five concrete backends in registry order (Auto excluded).
[[nodiscard]] const std::vector<BackendInfo>& all_backends();

/// Registry lookup; throws std::invalid_argument for Backend::Auto.
[[nodiscard]] const BackendInfo& backend_info(Backend b);

/// Static trace-span names ("job.<backend>" / "solve.<backend>") for the
/// engine's and the inner solver's instrumentation sites; string literals
/// with process lifetime, as obs::trace::TraceSpan requires.
[[nodiscard]] const char* backend_job_span_name(Backend b);
[[nodiscard]] const char* backend_solve_span_name(Backend b);

/// Lookup by registry name ("dense-reference", "rts", "paige-saunders",
/// "associative", "odd-even"); nullopt when unknown.
[[nodiscard]] std::optional<Backend> backend_by_name(std::string_view name);

/// True when every evolution of `p` has the implicit identity H (the class
/// of problems conventional smoothers can express).
[[nodiscard]] bool has_identity_h(const Problem& p);

/// True when backend `b` can solve `p` given whether a prior accompanies it.
[[nodiscard]] bool backend_supports(Backend b, const Problem& p, bool has_prior);

/// Per-solve knobs shared by every backend.
struct SolveOptions {
  /// Return cov(\hat u_i) alongside the means.  Backends that cannot skip
  /// the computation (rts, associative — the paper notes this restriction)
  /// still pay its cost when false, but drop the covariances from the
  /// result so every backend returns the same shape.
  bool compute_covariance = true;
  la::index grain = par::default_grain;
};

/// Rough floating-point work of one smoothing pass over `p` (flop-ish
/// units); the engine's small-vs-large scheduling cut compares against it.
[[nodiscard]] double estimated_flops(const Problem& p, bool with_covariance);

/// Rough work of ONE outer Gauss-Newton iteration of a nonlinear model: the
/// shape of its linearized correction problem (identity H, no covariances),
/// from dims and observation sizes alone.  Multiply by the expected outer
/// iteration count for whole-job estimates.
[[nodiscard]] double estimated_nonlinear_iteration_flops(const kalman::NonlinearModel& m);

/// Whole-job estimate of a nonlinear job (iteration flops times a
/// conservative expected outer-iteration count capped by gn.max_iterations);
/// the engine's small-vs-large cut for submit_nonlinear compares against it.
[[nodiscard]] double estimated_nonlinear_job_flops(const kalman::NonlinearModel& m,
                                                   const kalman::GaussNewtonOptions& gn);

/// One-shot measured throughput of the packed GEMM kernel on this machine
/// (flops/second), the basis for the scheduling calibration below.  Measured
/// lazily on first use (~a few hundred microseconds); PITK_CALIBRATE=0 skips
/// the measurement and returns a fixed conservative default, which keeps
/// pathological environments (qemu, heavily shared CI) deterministic.
[[nodiscard]] double calibrated_gemm_flops_per_second();

/// Engine small-job cut derived from the measured kernel rate: a job whose
/// whole solve costs less than ~200 us of kernel time is cheaper to run as
/// one task than to fan out.  Clamped to [5e5, 5e7] flops so a mis-measured
/// rate can never disable either scheduling path entirely.
[[nodiscard]] double calibrated_small_job_flops();

/// The auto-selection heuristic:
///  - with `threads`-way concurrency and enough block columns to keep every
///    lane busy across reduction levels, the paper's odd-even smoother;
///  - otherwise sequential: RTS when the problem is in the conventional
///    class (identity H + prior) and covariances are wanted anyway,
///    Paige-Saunders in every other case (it is the only sequential solver
///    that can skip covariances or express general H).
/// The dense reference is never auto-selected; it exists as the oracle.
[[nodiscard]] Backend select_backend(const Problem& p, bool has_prior,
                                     bool with_covariance, unsigned threads);

/// Auto-selection for the inner solves of a nonlinear (Gauss-Newton/LM) job:
/// the correction problems it linearizes into have identity H, no prior and
/// skip covariances, so the choice is the paper's odd-even smoother when the
/// step count keeps `threads` lanes busy, Paige-Saunders otherwise.
[[nodiscard]] Backend select_nonlinear_backend(const kalman::NonlinearModel& m,
                                               unsigned threads);

/// True when every mean and covariance entry of `r` is finite.  The engine
/// runs this cheap O(output) scan over every solver result; a NaN or Inf
/// anywhere marks the solve a NumericalFailure (and triggers the fallback
/// retry for Auto jobs).  Factor-time breakdowns surface here too: the
/// kernels never throw on a degenerate pivot, they propagate non-finites
/// into the output.
[[nodiscard]] bool result_is_finite(const SmootherResult& r) noexcept;

/// One rung down the degradation ladder after backend `failed` produced a
/// non-finite result: the parallel/conventional solvers (odd-even,
/// associative, rts) fall back to sequential Paige-Saunders (different
/// factorization order, no cross-step reduction); Paige-Saunders itself
/// falls back to the dense QR oracle when the problem is small enough for
/// its O((total_dim)^2) memory.  Returns Backend::Auto when no rung remains
/// (dense failed, or the problem is too large for dense).  Pinned jobs never
/// consult the ladder — that policy lives in the engine.
[[nodiscard]] Backend numerical_fallback(Backend failed, const Problem& p, bool has_prior);

/// Solve `p` with backend `b` on `pool`.  `Auto` resolves via
/// select_backend; a prior is folded in or passed through as the backend
/// requires.  Throws engine::SolveError (code BackendUnsupported) when the
/// backend cannot handle the problem (missing prior, non-identity H).
[[nodiscard]] SmootherResult solve_with(Backend b, const Problem& p,
                                        const std::optional<GaussianPrior>& prior,
                                        par::ThreadPool& pool, const SolveOptions& opts = {});

}  // namespace pitk::engine
