#pragma once

/// \file engine.hpp
/// SmootherEngine: batched multi-tenant execution of smoothing jobs.
///
/// A production deployment does not run one smoother at a time — it serves
/// many independent tracking/navigation problems concurrently.  The engine
/// owns one shared work-stealing pool and multiplexes two kinds of tenants
/// over it:
///
///  - batch jobs: whole `kalman::Problem`s submitted for smoothing, each
///    returning a `std::future<JobResult>`;
///  - streaming sessions (`engine::Session`): long-lived evolve/observe
///    tenants wrapping `kalman::IncrementalFilter`, with on-demand smoothing.
///
/// Scheduling is two-level.  Small jobs execute as a single pool task from
/// start to finish (throughput: B jobs ride B tasks with zero intra-job
/// synchronization, the engine analogue of the paper's observation that
/// per-column tasks are perfectly parallel).  Large jobs run their solver
/// with intra-job `parallel_for` on the *same* pool (latency: one big job
/// fans out across idle lanes).  Both paths place exactly one logical lane
/// of work per worker, so mixing them never oversubscribes.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/gauss_newton.hpp"
#include "engine/backend.hpp"
#include "engine/control.hpp"
#include "kalman/model.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::io {
class SessionStore;
}

namespace pitk::engine {

class Session;
class NonlinearSession;
struct SolverCache;
struct RecoveredSessions;  // engine/durable.hpp

/// What submit does when the bounded queue is full.
enum class QueuePolicy {
  /// Fail the job's future immediately with SolveErrorCode::QueueFull — the
  /// overloaded engine sheds load at the door instead of melting its p99.
  Reject,
  /// Apply backpressure: the submitting thread helps drain the queue (it
  /// runs queued jobs itself) for up to max_queue_wait_seconds before
  /// falling back to Reject.  Bounds the queue without dropping work as
  /// long as the submitters collectively keep up.
  Block,
};

struct EngineOptions {
  /// Pool concurrency; 0 means par::ThreadPool::default_concurrency()
  /// (which honors the PITK_THREADS environment variable).
  unsigned threads = 0;
  /// parallel_for grain for intra-parallel backends (the paper's block size).
  la::index grain = par::default_grain;
  /// Jobs whose estimated_flops() falls below this cut run as one whole-job
  /// pool task; larger jobs additionally parallelize inside themselves.
  /// Negative (the default) means "derive from the measured kernel rate at
  /// construction" (calibrated_small_job_flops()); 0 forces every job onto
  /// the intra-parallel path, huge values force whole-job execution.
  double small_job_flops = -1.0;
  /// Bounded admission: jobs submitted-but-not-yet-started may never exceed
  /// this count (0 = unbounded, the pre-robustness behavior).  Overflow is
  /// handled per queue_policy and counted in EngineStats::jobs_rejected.
  std::size_t max_queued_jobs = 0;
  QueuePolicy queue_policy = QueuePolicy::Reject;
  /// Block policy only: the longest one submit may spend helping the queue
  /// drain before giving up with QueueFull.
  double max_queue_wait_seconds = 0.05;
};

/// Execution options shared by every way of handing work to the engine —
/// linear jobs, nonlinear jobs, and the serving tier's tenant requests.
/// This is the one place the deadline/timeout/cancel/into/backend plumbing
/// is declared; JobOptions and NonlinearJobOptions extend it with their
/// job-kind-specific knobs.
struct SubmitOptions {
  Backend backend = Backend::Auto;
  /// When set, the solver writes means/covariances directly into this
  /// caller-owned storage (capacity-reusing: warm storage from a previous
  /// same-shaped job is refilled with zero heap allocations) and
  /// JobResult::result is left empty.  The storage must stay untouched
  /// until the job's future is ready, with one distinct storage per job in
  /// flight.  This is the serving pattern for tenants that re-smooth the
  /// same track shape repeatedly.
  SmootherResult* into = nullptr;
  /// Absolute deadline: a job still queued past it completes with
  /// SolveErrorCode::DeadlineExceeded without solving; one already running
  /// fails at its next stage checkpoint.  When `timeout` is also set the
  /// earlier of the two wins.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Relative flavor of the same deadline, resolved against the submit time.
  std::optional<std::chrono::duration<double>> timeout;
  /// Cooperative cancellation: flip the token to abandon the job (checked at
  /// dequeue and at stage checkpoints; the future fails with
  /// SolveErrorCode::Cancelled).  One token may be shared by many jobs.
  std::shared_ptr<CancelToken> cancel;
};

/// Per-job execution options of a linear smoothing job.
///
/// The deadline/timeout/cancel/into/backend members now live in the
/// SubmitOptions base (deprecation note: code that spelled out the full
/// shared set on JobOptions keeps compiling unchanged — the fields moved,
/// they did not change name or meaning — but new code that only needs the
/// shared subset should take a SubmitOptions).
struct JobOptions : SubmitOptions {
  bool compute_covariance = true;
  /// Prior on u_0; required by the conventional backends (rts/associative),
  /// folded in as a pseudo-observation by the QR backends.
  std::optional<GaussianPrior> prior;
};

/// One nonlinear tenant: the model plus the initial trajectory guess
/// (size k+1; e.g. an extended-KF pass or the observations mapped to state
/// space).
struct NonlinearJob {
  kalman::NonlinearModel model;
  std::vector<la::Vector> init;
};

/// Per-job options of a nonlinear (Gauss-Newton/LM) job.  The shared
/// backend/into/deadline/timeout/cancel plumbing lives in the SubmitOptions
/// base; nonlinear jobs additionally checkpoint deadline/cancel between
/// Gauss-Newton outer iterations.  `backend` here serves the inner
/// linearized solves; Auto resolves via select_nonlinear_backend (odd-even
/// for long tracks on a parallel pool, Paige-Saunders otherwise).
struct NonlinearJobOptions : SubmitOptions {
  /// Outer-loop knobs: iteration budget, tolerance, Levenberg-Marquardt
  /// damping, final_covariance (one covariance-enabled pass over the final
  /// linearization, filling JobResult::result.covariances).  `gn.linear.grain`
  /// governs the relinearization sweep AND the inner solves, exactly as in
  /// direct gauss_newton_smooth.
  kalman::GaussNewtonOptions gn;
  /// Backends that require a prior (rts, associative) get a synthetic
  /// zero-mean prior with this variance on the step-0 *correction*: pure
  /// step damping that leaves the Gauss-Newton fixed point in place.  Large
  /// enough to be ~1e6x weaker than typical measurement weights, small
  /// enough that covariance-form filtering keeps full precision (a diffuse
  /// 1e8-style variance costs ~8 digits in (I - KG)P and shows up as a
  /// ~1e-9 noise floor in the converged states).
  double delta_prior_variance = 1e4;
};

/// Default tolerance of the truncated delta re-smooth (see
/// SessionOptions::resmooth_tolerance): the per-pass neglected correction is
/// bounded per state by this value, and the session forces a full backward
/// pass every few hundred truncated ones, so the worst-case accumulated
/// deviation stays well below the library-wide 1e-10 agreement bar.
inline constexpr double kDefaultResmoothTolerance = 1e-13;

/// Options for opening a streaming session — ONE struct for all four
/// previous entry points.  Nonlinear-ness is the open_session *overload*
/// (pass a NonlinearModel + initial guess); durability is the orthogonal
/// `durable(store, id)` option here.  Defaults reproduce the plain
/// in-memory linear/nonlinear sessions exactly.
struct SessionOptions {
  /// Non-null: journal every mutation to `store` under `id` (write-ahead,
  /// with periodic snapshot compaction) so the session survives a crash and
  /// recover_all() can rebuild it.  The store must outlive the open call
  /// only — the journal copies the durability options and paths it needs.
  io::SessionStore* store = nullptr;
  std::string id;
  /// Nonlinear sessions only: backend + Gauss-Newton knobs for every smooth
  /// (NonlinearJobOptions::into must stay null — it is per smooth_async
  /// call).  Ignored by linear sessions.
  NonlinearJobOptions nonlinear;
  /// Linear sessions: serve every re-smooth through the full spliced
  /// backward pass (bit-for-bit the pre-truncation behavior) instead of the
  /// truncated delta pass.  Also forced process-wide by PITK_RESMOOTH_EXACT=1.
  bool exact = false;
  /// Linear sessions: per-state bound (2-norm for means, Frobenius for
  /// covariances) on the correction a truncated delta re-smooth may neglect.
  /// Must be positive; larger values truncate earlier (faster appends,
  /// looser agreement with the exact pass).
  double resmooth_tol = kDefaultResmoothTolerance;

  /// Builder conveniences so call sites read as a sentence:
  ///   eng.open_session(n0, SessionOptions{}.durable(store, "tenant-7"));
  SessionOptions& durable(io::SessionStore& s, std::string session_id) {
    store = &s;
    id = std::move(session_id);
    return *this;
  }
  SessionOptions& gauss_newton(const kalman::GaussNewtonOptions& gn) {
    nonlinear.gn = gn;
    return *this;
  }
  SessionOptions& backend(Backend b) {
    nonlinear.backend = b;
    return *this;
  }
  SessionOptions& exact_resmooth() {
    exact = true;
    return *this;
  }
  SessionOptions& resmooth_tolerance(double tol) {
    resmooth_tol = tol;
    return *this;
  }
};

/// How recover_all() rebuilds sessions from a SessionStore.  Nonlinear
/// journals record the model *history* only — the callbacks are code, not
/// data — so recovery re-binds them through `nonlinear_model`: given the
/// session id, return a NonlinearModel with the same callbacks the session
/// was opened with (k/dims/obs are overwritten from the journal).  Linear
/// sessions need nothing here.
struct RecoveryOptions {
  std::function<kalman::NonlinearModel(const std::string&)> nonlinear_model;
  /// Options for recovered nonlinear sessions (backend, GN knobs).
  NonlinearJobOptions nonlinear_opts;
};

/// Measurements taken around one job.
struct JobMetrics {
  Backend backend = Backend::Auto;  ///< backend actually used
  double queue_seconds = 0.0;       ///< submit -> execution start
  double solve_seconds = 0.0;       ///< execution start -> finish
  bool intra_parallel = false;      ///< took the large-job path
  la::index num_states = 0;
  /// Peak bytes of the executing worker's la::Workspace arena after the job:
  /// observable evidence that batched jobs reuse one warm arena per worker
  /// (the value plateaus instead of scaling with jobs served).
  std::size_t workspace_high_water_bytes = 0;
  /// Matrix/vector/workspace buffer allocations performed by the executing
  /// worker during this job (la::aligned_alloc_count_this_thread delta).
  /// Drops to zero on a warm worker solving into warm storage.  Allocations
  /// made by intra-parallel fan-out on *other* workers are charged to them,
  /// not to this job, and a job body nested inside this job's parallel_for
  /// join is charged separately (each allocation counts toward exactly one
  /// job).
  std::uint64_t allocations = 0;
  /// Nonlinear (Gauss-Newton/LM) jobs: outer iterations run (including LM
  /// rejections), whether the outer loop converged, and the final weighted
  /// nonlinear cost.  Linear jobs leave these at 0/false/0.
  la::index outer_iterations = 0;
  bool nonlinear_converged = false;
  double nonlinear_final_cost = 0.0;
  /// Numerical-failure recovery: true when the first solve produced a
  /// non-finite result (or threw) and the job was rescued by one retry on
  /// the degradation ladder.  `backend` then reports the backend that
  /// actually served the result and `fallback_backend` repeats it; the
  /// originally selected backend is the one recorded by the job span.
  bool retried = false;
  Backend fallback_backend = Backend::Auto;  ///< Auto unless retried
};

struct JobResult {
  SmootherResult result;
  JobMetrics metrics;
};

/// Aggregate counters since engine construction (one snapshot per stats()).
struct EngineStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  /// Completed exceptionally for any reason other than the deadline/cancel/
  /// admission taxonomy below (solver exceptions, unsupported backends,
  /// unrescued numerical failures).
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_small = 0;    ///< whole-job path
  std::uint64_t jobs_large = 0;    ///< intra-parallel path
  /// Robustness taxonomy: QueueFull rejections at submit, jobs that hit
  /// their deadline (at dequeue or mid-solve), jobs cancelled via their
  /// token, and jobs rescued by the numerical-fallback retry (the rescued
  /// job also counts in jobs_completed; an unrescued one in jobs_failed).
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_deadline_exceeded = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_retried = 0;
  /// Largest number of jobs simultaneously submitted-but-not-started; with
  /// max_queued_jobs bounded this never exceeds the bound.
  std::uint64_t queue_high_water = 0;
  double total_queue_seconds = 0.0;
  double total_solve_seconds = 0.0;
  /// Sum of JobMetrics::allocations over completed jobs; divided by
  /// jobs_completed this is the engine-wide allocations-per-job figure (it
  /// plateaus at ~0 once every worker's SolverCache is warm).
  std::uint64_t total_allocations = 0;
  /// Completed jobs per concrete backend, in registry order
  /// (index with backend_index()).
  std::uint64_t per_backend[num_backends] = {0, 0, 0, 0, 0};
  /// Completed jobs that ran a Gauss-Newton/LM outer loop, and the outer
  /// iterations they spent in total (inner linearized solves ride the same
  /// pool as everything else and are not separate jobs).
  std::uint64_t nonlinear_jobs = 0;
  std::uint64_t total_outer_iterations = 0;
};

class SmootherEngine {
 public:
  explicit SmootherEngine(EngineOptions opts = {});

  SmootherEngine(const SmootherEngine&) = delete;
  SmootherEngine& operator=(const SmootherEngine&) = delete;

  /// Drains all outstanding jobs before tearing the pool down.  Sessions
  /// obtained from open_session() must not outlive the engine.
  ~SmootherEngine();

  /// Enqueue one smoothing job; the future completes with the result and
  /// per-job metrics, or with the solver's exception (e.g. when a pinned
  /// backend cannot express the problem).
  ///
  /// Futures become ready without any help from the consumer, but a thread
  /// that merely blocks in future::get() contributes nothing: call
  /// wait_idle() before draining a batch so the calling thread works as one
  /// of the pool's lanes (the pool counts it in concurrency()).  Never
  /// block on a job future from inside a pool task — request there, get()
  /// outside.
  [[nodiscard]] std::future<JobResult> submit(Problem p, JobOptions opts = {});

  /// Enqueue a batch of independent jobs sharing one option set.
  [[nodiscard]] std::vector<std::future<JobResult>> submit_batch(
      std::vector<Problem> problems, const JobOptions& opts = {});

  /// Enqueue one nonlinear (Gauss-Newton/LM) job: the whole outer loop runs
  /// as a single engine job whose inner linearized solves go through the
  /// backend registry and the executing worker's warm SolverCache, so the
  /// outer iterations of many nonlinear tenants interleave on the shared
  /// pool instead of each tenant monopolizing it.  The future's result
  /// carries the final smoothed states (plus covariances when
  /// gn.final_covariance); metrics report outer_iterations /
  /// nonlinear_converged / nonlinear_final_cost.
  [[nodiscard]] std::future<JobResult> submit_nonlinear(NonlinearJob job,
                                                        NonlinearJobOptions opts = {});

  /// Enqueue a batch of independent nonlinear jobs sharing one option set
  /// (opts.into must be null — one storage per job in flight; use
  /// submit_nonlinear per job for into-serving).
  [[nodiscard]] std::vector<std::future<JobResult>> submit_nonlinear_batch(
      std::vector<NonlinearJob> jobs, const NonlinearJobOptions& opts = {});

  /// Open a streaming evolve/observe session starting at a state of
  /// dimension n0.  With opts.store set, every evolve/observe/reset appends
  /// to a write-ahead journal `<id>.pitkj` in the store before returning,
  /// with periodic snapshot compaction, so a crashed process can rebuild
  /// the session with recover_all().  Overwrites any previous journal for
  /// the id.  Throws on I/O failure (creating the journal, or — after open —
  /// the first failed append; the session then keeps serving undurably).
  [[nodiscard]] Session open_session(la::index n0, const SessionOptions& opts = {});

  /// Open a streaming *nonlinear* tenant: observations arrive step by step
  /// through advance(), and each smooth runs a Gauss-Newton/LM pass over
  /// everything seen so far, warm-started from the session's cached smoothed
  /// means.  `model` seeds the callbacks and the (possibly pre-filled)
  /// history; `u0` is the initial guess for state 0 used before the first
  /// smooth; opts.nonlinear carries the backend + Gauss-Newton knobs.  With
  /// opts.store set, advance() journals the observation stream and
  /// compaction snapshots the history plus the last smoothed means as a
  /// warm start (same durability contract as the linear overload).
  [[nodiscard]] NonlinearSession open_session(kalman::NonlinearModel model, la::Vector u0,
                                              const SessionOptions& opts = {});

  /// ---- deprecated pre-SessionOptions entry points -----------------------
  /// Kept as thin forwarders so existing code compiles unchanged; nonlinear
  /// and durable are orthogonal SessionOptions now, not separate names.

  [[deprecated("use open_session(model, u0, SessionOptions) — nonlinear is an overload")]]
  [[nodiscard]] NonlinearSession open_nonlinear_session(kalman::NonlinearModel model,
                                                        la::Vector u0,
                                                        NonlinearJobOptions opts = {});

  [[deprecated("use open_session(n0, SessionOptions{}.durable(store, id))")]]
  [[nodiscard]] Session open_durable_session(io::SessionStore& store, std::string_view id,
                                             la::index n0);

  [[deprecated("use open_session(model, u0, SessionOptions{}.durable(store, id))")]]
  [[nodiscard]] NonlinearSession open_durable_nonlinear_session(
      io::SessionStore& store, std::string_view id, kalman::NonlinearModel model,
      la::Vector u0, NonlinearJobOptions opts = {});

  /// Reopen every journal in `store` and rebuild its session: scan the chunk
  /// file (truncating a torn tail), restore the snapshot if one was
  /// compacted, replay the journal tail through the normal append path, and
  /// reattach the journal for further durable appends.  Per-session failures
  /// (corrupt journal, missing nonlinear_model hook) are collected in
  /// RecoveredSessions::failed — one bad tenant never blocks the rest.  The
  /// next smooth() of a recovered session agrees with an uninterrupted run.
  [[nodiscard]] RecoveredSessions recover_all(io::SessionStore& store,
                                              const RecoveryOptions& opts = {});

  /// Block until every submitted job has finished, helping the pool while
  /// waiting (safe to call from anywhere, including pool workers).
  void wait_idle();

  [[nodiscard]] EngineStats stats() const;
  /// Jobs submitted but not yet started, right now (lock-free snapshot).
  /// The serving tier's admission control multiplies this by the measured
  /// per-job solve time to bound estimated queue wait per tenant class.
  [[nodiscard]] std::uint64_t queued_jobs() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] unsigned concurrency() const noexcept { return pool_.concurrency(); }
  [[nodiscard]] par::ThreadPool& pool() noexcept { return pool_; }

 private:
  friend class Session;
  friend class NonlinearSession;

  using Clock = std::chrono::steady_clock;

  /// Deadline/cancellation a job carries into launch(), already resolved
  /// (deadline = min of the absolute and relative forms at submit time).
  struct LaunchControl {
    std::optional<Clock::time_point> deadline;
    std::shared_ptr<CancelToken> cancel;
  };

  /// Common path for batch jobs and session smooths: admit against the
  /// bounded queue, then run `body` (with the shared pool on the large path,
  /// an inline serial pool on the small one) against the executing worker's
  /// SolverCache, writing into `into` when set (else into a fresh result
  /// moved to the future); time it, account it, fulfill the future.  A job
  /// past its deadline or cancelled at dequeue completes with the matching
  /// SolveError without running the body.  The body may fill the nonlinear
  /// fields of the metrics it is handed; everything else is measured by the
  /// engine.
  [[nodiscard]] std::future<JobResult> launch(
      std::function<void(par::ThreadPool&, SolverCache&, SmootherResult&, JobMetrics&)> body,
      Backend chosen, bool large, la::index num_states, SmootherResult* into,
      LaunchControl ctl = {});

  /// Reserve one bounded-queue slot (CAS, so the queue depth can never
  /// exceed max_queued_jobs); Block policy helps the pool drain before
  /// giving up.  True when admitted.
  [[nodiscard]] bool admit_one();

  /// The executing thread's solver cache: the engine-owned per-worker cache
  /// for pool workers, a thread-local one for external threads that execute
  /// jobs while helping in wait_idle().
  [[nodiscard]] SolverCache& worker_cache();

  EngineOptions opts_;
  std::vector<std::unique_ptr<SolverCache>> caches_;  ///< one per pool worker
  std::atomic<std::uint64_t> outstanding_{0};
  /// Jobs submitted but not yet started; bounded by max_queued_jobs when set.
  std::atomic<std::uint64_t> queued_{0};
  mutable std::mutex stats_mu_;
  EngineStats stats_;
  // The pools are declared last on purpose: destruction joins the workers
  // first, so a job's final notify/stat update can never touch an already-
  // destroyed member.
  par::ThreadPool pool_;
  par::ThreadPool serial_pool_{1};  ///< inline executor for whole-job tasks
};

}  // namespace pitk::engine
