#pragma once

/// \file engine.hpp
/// SmootherEngine: batched multi-tenant execution of smoothing jobs.
///
/// A production deployment does not run one smoother at a time — it serves
/// many independent tracking/navigation problems concurrently.  The engine
/// owns one shared work-stealing pool and multiplexes two kinds of tenants
/// over it:
///
///  - batch jobs: whole `kalman::Problem`s submitted for smoothing, each
///    returning a `std::future<JobResult>`;
///  - streaming sessions (`engine::Session`): long-lived evolve/observe
///    tenants wrapping `kalman::IncrementalFilter`, with on-demand smoothing.
///
/// Scheduling is two-level.  Small jobs execute as a single pool task from
/// start to finish (throughput: B jobs ride B tasks with zero intra-job
/// synchronization, the engine analogue of the paper's observation that
/// per-column tasks are perfectly parallel).  Large jobs run their solver
/// with intra-job `parallel_for` on the *same* pool (latency: one big job
/// fans out across idle lanes).  Both paths place exactly one logical lane
/// of work per worker, so mixing them never oversubscribes.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/backend.hpp"
#include "kalman/model.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::engine {

class Session;
struct SolverCache;

struct EngineOptions {
  /// Pool concurrency; 0 means par::ThreadPool::default_concurrency()
  /// (which honors the PITK_THREADS environment variable).
  unsigned threads = 0;
  /// parallel_for grain for intra-parallel backends (the paper's block size).
  la::index grain = par::default_grain;
  /// Jobs whose estimated_flops() falls below this cut run as one whole-job
  /// pool task; larger jobs additionally parallelize inside themselves.
  /// Negative (the default) means "derive from the measured kernel rate at
  /// construction" (calibrated_small_job_flops()); 0 forces every job onto
  /// the intra-parallel path, huge values force whole-job execution.
  double small_job_flops = -1.0;
};

/// Per-job execution options.
struct JobOptions {
  Backend backend = Backend::Auto;
  bool compute_covariance = true;
  /// Prior on u_0; required by the conventional backends (rts/associative),
  /// folded in as a pseudo-observation by the QR backends.
  std::optional<GaussianPrior> prior;
  /// When set, the solver writes means/covariances directly into this
  /// caller-owned storage (capacity-reusing: warm storage from a previous
  /// same-shaped job is refilled with zero heap allocations) and
  /// JobResult::result is left empty.  The storage must stay untouched
  /// until the job's future is ready, with one distinct storage per job in
  /// flight.  This is the serving pattern for tenants that re-smooth the
  /// same track shape repeatedly.
  SmootherResult* into = nullptr;
};

/// Measurements taken around one job.
struct JobMetrics {
  Backend backend = Backend::Auto;  ///< backend actually used
  double queue_seconds = 0.0;       ///< submit -> execution start
  double solve_seconds = 0.0;       ///< execution start -> finish
  bool intra_parallel = false;      ///< took the large-job path
  la::index num_states = 0;
  /// Peak bytes of the executing worker's la::Workspace arena after the job:
  /// observable evidence that batched jobs reuse one warm arena per worker
  /// (the value plateaus instead of scaling with jobs served).
  std::size_t workspace_high_water_bytes = 0;
  /// Matrix/vector/workspace buffer allocations performed by the executing
  /// worker during this job (la::aligned_alloc_count_this_thread delta).
  /// Drops to zero on a warm worker solving into warm storage.  Allocations
  /// made by intra-parallel fan-out on *other* workers are charged to them,
  /// not to this job, and a job body nested inside this job's parallel_for
  /// join is charged separately (each allocation counts toward exactly one
  /// job).
  std::uint64_t allocations = 0;
};

struct JobResult {
  SmootherResult result;
  JobMetrics metrics;
};

/// Aggregate counters since engine construction (one snapshot per stats()).
struct EngineStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;   ///< completed exceptionally
  std::uint64_t jobs_small = 0;    ///< whole-job path
  std::uint64_t jobs_large = 0;    ///< intra-parallel path
  double total_queue_seconds = 0.0;
  double total_solve_seconds = 0.0;
  /// Sum of JobMetrics::allocations over completed jobs; divided by
  /// jobs_completed this is the engine-wide allocations-per-job figure (it
  /// plateaus at ~0 once every worker's SolverCache is warm).
  std::uint64_t total_allocations = 0;
  /// Completed jobs per concrete backend, in registry order
  /// (index with backend_index()).
  std::uint64_t per_backend[num_backends] = {0, 0, 0, 0, 0};
};

class SmootherEngine {
 public:
  explicit SmootherEngine(EngineOptions opts = {});

  SmootherEngine(const SmootherEngine&) = delete;
  SmootherEngine& operator=(const SmootherEngine&) = delete;

  /// Drains all outstanding jobs before tearing the pool down.  Sessions
  /// obtained from open_session() must not outlive the engine.
  ~SmootherEngine();

  /// Enqueue one smoothing job; the future completes with the result and
  /// per-job metrics, or with the solver's exception (e.g. when a pinned
  /// backend cannot express the problem).
  ///
  /// Futures become ready without any help from the consumer, but a thread
  /// that merely blocks in future::get() contributes nothing: call
  /// wait_idle() before draining a batch so the calling thread works as one
  /// of the pool's lanes (the pool counts it in concurrency()).  Never
  /// block on a job future from inside a pool task — request there, get()
  /// outside.
  [[nodiscard]] std::future<JobResult> submit(Problem p, JobOptions opts = {});

  /// Enqueue a batch of independent jobs sharing one option set.
  [[nodiscard]] std::vector<std::future<JobResult>> submit_batch(
      std::vector<Problem> problems, const JobOptions& opts = {});

  /// Open a streaming evolve/observe session starting at a state of
  /// dimension n0.
  [[nodiscard]] Session open_session(la::index n0);

  /// Block until every submitted job has finished, helping the pool while
  /// waiting (safe to call from anywhere, including pool workers).
  void wait_idle();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] unsigned concurrency() const noexcept { return pool_.concurrency(); }
  [[nodiscard]] par::ThreadPool& pool() noexcept { return pool_; }

 private:
  friend class Session;

  using Clock = std::chrono::steady_clock;

  /// Common path for batch jobs and session smooths: run `body` (with the
  /// shared pool on the large path, an inline serial pool on the small one)
  /// against the executing worker's SolverCache, writing into `into` when
  /// set (else into a fresh result moved to the future); time it, account
  /// it, fulfill the future.
  [[nodiscard]] std::future<JobResult> launch(
      std::function<void(par::ThreadPool&, SolverCache&, SmootherResult&)> body,
      Backend chosen, bool large, la::index num_states, SmootherResult* into);

  /// The executing thread's solver cache: the engine-owned per-worker cache
  /// for pool workers, a thread-local one for external threads that execute
  /// jobs while helping in wait_idle().
  [[nodiscard]] SolverCache& worker_cache();

  EngineOptions opts_;
  std::vector<std::unique_ptr<SolverCache>> caches_;  ///< one per pool worker
  std::atomic<std::uint64_t> outstanding_{0};
  mutable std::mutex stats_mu_;
  EngineStats stats_;
  // The pools are declared last on purpose: destruction joins the workers
  // first, so a job's final notify/stat update can never touch an already-
  // destroyed member.
  par::ThreadPool pool_;
  par::ThreadPool serial_pool_{1};  ///< inline executor for whole-job tasks
};

}  // namespace pitk::engine
