#pragma once

/// \file nonlinear_session.hpp
/// Long-lived streaming *nonlinear* tenant of the SmootherEngine.
///
/// The linear Session reuses its filter's finalized bidiagonal prefix;
/// relinearization gives a nonlinear tenant no such immutable prefix — every
/// Gauss-Newton pass rewrites all Jacobian blocks.  What *does* carry over
/// between smooths is the trajectory itself: appending a few measurements
/// barely moves the smoothed past, so each smooth() here warm-starts the
/// Gauss-Newton/LM loop by relinearizing around the previous smooth's cached
/// means (extended with f-predictions for the newly appended steps).  A warm
/// re-smooth therefore converges in one or two outer iterations instead of a
/// cold solve's many, and all outer-loop storage (linearized problem, inner
/// solutions, per-session solver cache) is capacity-reused across smooths.
///
/// Measurements stream in through advance(); smoothing is available inline
/// (smooth / smooth_into) or as an engine job (smooth_async) exactly like
/// the linear Session, with separate sync/async caches so a long async pass
/// never blocks an inline one.  All methods are thread-safe; a smooth copies
/// a consistent snapshot of the observation history under the session lock
/// (capacity-reused, O(k) small copies) and solves outside it, so the
/// measurement stream is never blocked behind a solve.
///
/// Created by SmootherEngine::open_nonlinear_session(); must not outlive the
/// engine.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>

#include "engine/engine.hpp"
#include "engine/solver_cache.hpp"

namespace pitk::io {
class SessionJournal;
}

namespace pitk::engine {

/// Aggregate smoothing counters since session creation, across both the sync
/// and async caches.  warm/cold classify the solves that actually ran: a
/// warm solve started its Gauss-Newton loop from the previous smooth's
/// means, a cold one from u0 + f-predictions.  Mirrored into the global
/// metrics registry as pitk.nonlinear_session.* across all sessions.
struct NonlinearSessionStats {
  std::uint64_t cache_hits = 0;    ///< served straight from the cached result
  std::uint64_t cache_misses = 0;  ///< ran a Gauss-Newton/LM solve
  std::uint64_t warm_solves = 0;   ///< warm-started from cached means
  std::uint64_t cold_solves = 0;   ///< started from u0 + f-predictions
  std::uint64_t total_outer_iterations = 0;  ///< over all solves that ran
  std::uint64_t last_outer_iterations = 0;   ///< most recent solve (0 on a hit)
};

class NonlinearSession {
 public:
  NonlinearSession(NonlinearSession&&) noexcept = default;
  NonlinearSession& operator=(NonlinearSession&&) noexcept = default;

  /// Append the next step with an observation of it (an empty Vector means
  /// the step is unobserved).  The state dimension is carried over from the
  /// previous step.
  void advance(la::Vector obs);

  /// Append the next step unobserved.
  void advance() { advance(la::Vector()); }

  /// Index of the current (latest) state, 0-based.
  [[nodiscard]] la::index current_step() const;

  /// Gauss-Newton/LM smooth of every step seen so far, inline on the calling
  /// thread (inner solves use the engine's shared pool).  Warm-started from
  /// the previous smooth through this session's sync cache; an unmutated
  /// repeat is served straight from the cached result.  `with_covariances`
  /// adds the final-linearization covariance pass.
  [[nodiscard]] SmootherResult smooth(bool with_covariances = false) const;

  /// Same, into caller-owned storage (capacity-reusing).
  void smooth_into(SmootherResult& out, bool with_covariances = false) const;

  /// Smooth as an engine job through the session's dedicated async cache;
  /// the job snapshots and solves whatever the session has seen when it
  /// executes.  Metrics carry outer_iterations / nonlinear_converged /
  /// nonlinear_final_cost; a smooth served from the cache (no mutation since
  /// the last one) reports 0 outer iterations.  `into` follows
  /// JobOptions::into semantics.
  ///
  /// Session smooths always run as whole-job (small-path) tasks with serial
  /// inner solves: the solve holds the session's cache mutex, and a
  /// large-path job's parallel_for join helps the pool and could nest
  /// another smooth of this same session on the same thread — relocking a
  /// held std::mutex.  (The linear Session's smooth_async is small-path for
  /// the same reason; batch submit_nonlinear jobs keep their state in the
  /// worker's SolverCache and do scale out.)
  [[nodiscard]] std::future<JobResult> smooth_async(bool with_covariances = false,
                                                    SmootherResult* into = nullptr) const;

  /// Convergence summary of the most recent smooth through the sync cache.
  [[nodiscard]] NonlinearSolveInfo last_info() const;

  /// Snapshot of this session's smoothing counters (lock-free reads).
  [[nodiscard]] NonlinearSessionStats stats() const;

 private:
  friend class SmootherEngine;
  friend struct DurableAccess;  ///< recovery rebuilds State (engine/durable.cpp)

  /// Per-direction (sync/async) warm state: the model snapshot solved
  /// against, the warm-start trajectory, the outer-loop state, a dedicated
  /// solver cache for the inner linearized solves, and the last result.
  struct Cache {
    std::mutex mu;                    ///< serializes smooths through this cache
    kalman::NonlinearModel snapshot;  ///< callbacks fixed; k/dims/obs refreshed
    std::vector<la::Vector> init;     ///< warm-start trajectory (capacity-reused)
    kalman::GaussNewtonState gn;
    SolverCache solver;
    SmootherResult result;            ///< last smoothed result
    NonlinearSolveInfo info;
    std::uint64_t result_mutation = 0;
    bool result_valid = false;        ///< result matches result_mutation
    bool result_covs = false;
    bool have_means = false;          ///< result.means usable as a warm start
  };

  struct State {
    // Out of line: the inline bodies would instantiate ~unique_ptr over the
    // forward-declared SessionJournal in every including TU.
    State(SmootherEngine* e, kalman::NonlinearModel m, la::Vector u0_, NonlinearJobOptions o);
    ~State();
    SmootherEngine* engine;
    mutable std::mutex mu;
    kalman::NonlinearModel model;  ///< k/dims/obs grow with advance()
    la::Vector u0;                 ///< initial guess for state 0 (cold start)
    NonlinearJobOptions opts;
    /// Durable sessions only (SmootherEngine::open_durable_nonlinear_session
    /// / recover_all): the write-ahead journal advance() appends to, under
    /// `mu`.  Null for plain sessions.
    std::unique_ptr<io::SessionJournal> journal;
    std::uint64_t mutations = 0;
    /// Warm-start means for compaction snapshots, copied after each solve.
    /// Guarded by the *leaf* mutex warm_mu: resmooth() writes it holding only
    /// cache.mu, compaction reads it holding `mu` — neither path may take
    /// the other's lock (cache.mu -> mu is the smooth ordering), so the copy
    /// gets its own innermost lock.
    mutable std::mutex warm_mu;
    mutable std::vector<la::Vector> warm_means;
    mutable Cache sync_cache;
    mutable Cache async_cache;
    // NonlinearSessionStats sources; relaxed atomics so resmooth() records
    // without extending any lock's critical section.
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};
    mutable std::atomic<std::uint64_t> warm_solves{0};
    mutable std::atomic<std::uint64_t> cold_solves{0};
    mutable std::atomic<std::uint64_t> total_outer{0};
    mutable std::atomic<std::uint64_t> last_outer{0};
  };

  explicit NonlinearSession(std::shared_ptr<State> state) : state_(std::move(state)) {}

  /// Snapshot under the session lock, warm-start, solve outside it, copy the
  /// result into `out` capacity-reusing.  Serves the cached result when the
  /// session has not mutated since the last smooth through `cache`.
  /// `info_out` gets the solve's convergence summary — with iterations
  /// forced to 0 on a cache hit, so engine accounting never double-counts a
  /// solve that did not run.
  static void resmooth(const State& st, Cache& cache, bool with_covariances,
                       par::ThreadPool& pool, SmootherResult& out,
                       NonlinearSolveInfo& info_out);

  std::shared_ptr<State> state_;
};

}  // namespace pitk::engine
