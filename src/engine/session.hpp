#pragma once

/// \file session.hpp
/// Long-lived streaming tenant of the SmootherEngine.
///
/// A Session is the engine's UltimateKalman-style interface (paper Section
/// 5.1): measurements stream in through evolve()/observe(), the filtered
/// estimate of the current state is available at any time, and a full
/// smoothing pass over everything seen so far can be requested on demand —
/// synchronously, or as a job on the engine's shared pool via
/// smooth_async().  All methods are safe to call from any thread; the
/// underlying IncrementalFilter is guarded by a per-session mutex.
///
/// Re-smoothing is *incremental*: the filter finalizes one bidiagonal R row
/// block per eliminated state, and those blocks never change once written
/// (only reset() discards them), so the session keeps a ResmoothCache — the
/// spliced factor plus the last smoothed means/covariances — and each
/// smooth() after append()s does delta work only: O(appended steps) of
/// prefix splicing plus the back-substitution/SelInv sweep, instead of
/// re-factoring (or copying) the whole track.  The cache invalidates itself
/// on reset() via the filter's reset epoch; the per-step model (F, H, c, G,
/// noise) arrives through evolve()/observe() and is immutable once
/// absorbed, so no other invalidation exists.  A repeated smooth with no
/// intervening append is served straight from the cached result.
///
/// Sessions are created by SmootherEngine::open_session() and must not
/// outlive their engine.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/filter.hpp"
#include "engine/engine.hpp"
#include "la/qr.hpp"

namespace pitk::io {
class SessionJournal;
}

namespace pitk::engine {

struct SolverCache;

using kalman::CovFactor;
using la::Matrix;
using la::Vector;

/// Aggregate re-smoothing counters since session creation (or last reset of
/// nothing — reset() keeps counting; the numbers are lifetime totals).  Both
/// caches (sync + async) feed the same counters: what matters to a serving
/// dashboard is how much delta work this tenant's smooths cost, not which
/// cache absorbed it.  Mirrored into the global metrics registry as
/// pitk.session.resmooth_{hits,misses,cov_upgrades} across all sessions.
struct SessionStats {
  std::uint64_t resmooth_hits = 0;        ///< served straight from the cached result
  std::uint64_t resmooth_misses = 0;      ///< needed a splice + solve pass
  std::uint64_t covariance_upgrades = 0;  ///< means current; only SelInv was missing
  std::uint64_t steps_spliced = 0;        ///< finalized blocks spliced over all misses
  /// Misses whose backward pass the decay bound stopped early (the truncated
  /// delta path; 0 for exact_resmooth() sessions).  Mirrored as
  /// pitk.session.truncated_resmooths; the per-pass window of states
  /// actually updated feeds the pitk.session.truncation_window histogram.
  std::uint64_t truncated_resmooths = 0;
  /// States those truncated passes proved they could skip (k+1 - window,
  /// summed): the work O(k) full passes would have spent below the bound.
  std::uint64_t steps_truncation_skipped = 0;
};

class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  /// Advance to the next state: u_{i+1} = F u_i + c + noise (H = I).
  void evolve(Matrix f, Vector c, CovFactor k);

  /// Advance with explicit (possibly rectangular) H and a new dimension.
  void evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k);

  /// Absorb an observation of the current state: o = G u_i + noise.
  void observe(Matrix g, Vector o, CovFactor l);

  /// Index of the current state (0-based).
  [[nodiscard]] la::index current_step() const;

  /// Dimension of the current state.
  [[nodiscard]] la::index current_dim() const;

  /// Filtered estimate E(u_i | o_0..o_i); nullopt while rank deficient.
  [[nodiscard]] std::optional<Vector> estimate() const;

  /// Covariance of the filtered estimate; nullopt under the same condition.
  [[nodiscard]] std::optional<Matrix> covariance() const;

  /// Smooth every state seen so far, inline on the calling thread.  Only
  /// the delta since the previous smooth is re-assembled (see the file
  /// comment); the session remains usable (and streamable) afterwards.
  [[nodiscard]] SmootherResult smooth(bool with_covariances = true) const;

  /// Incremental smooth into caller-owned storage (capacity-reusing): the
  /// zero-allocation serving path for tenants that re-smooth every few
  /// appended steps.  With a warm cache and warm `out`, the cost is
  /// O(appended steps) splicing + the back-substitution/SelInv sweep, with
  /// zero heap allocations.
  void smooth_into(SmootherResult& out, bool with_covariances = true) const;

  /// Smooth as an engine job; the future carries the result plus
  /// queue/solve metrics like any batch job.  The job smooths everything
  /// the session has seen *when it executes* (steps appended between
  /// request and execution are included), using the session's dedicated
  /// async ResmoothCache so repeated async smooths also do delta work only.
  /// When `into` is set, the result lands in that caller-owned storage
  /// (JobOptions::into semantics: keep it untouched until the future is
  /// ready, one storage per job in flight) and JobResult::result is empty.
  [[nodiscard]] std::future<JobResult> smooth_async(bool with_covariances = true,
                                                    SmootherResult* into = nullptr) const;

  /// Drop all accumulated state and restart at a fresh u_0 of dimension n0.
  /// Invalidates both re-smooth caches: the next smooth rebuilds from
  /// scratch, exactly like a fresh session.
  void reset(la::index n0);

  /// Snapshot of this session's re-smoothing counters (lock-free reads).
  [[nodiscard]] SessionStats stats() const;

 private:
  friend class SmootherEngine;
  friend struct DurableAccess;  ///< recovery rebuilds State (engine/durable.cpp)

  /// Cross-smooth state: the spliced bidiagonal factor (prefix + compressed
  /// live block) and the last smoothed result.  Two live per session — one
  /// for synchronous smooths, one for async jobs — so a long async solve
  /// never blocks an inline smooth.  The cache is per-session (not per
  /// worker): the prefix mirrors *this* session's filter, and splicing is
  /// keyed on how many of its blocks are already present, which would be
  /// meaningless storage shared across tenants.  The solve itself still
  /// runs on the executing worker's warm la::Workspace arena, so engine
  /// workers stay zero-alloc (pinned by tests/core/test_alloc_free.cpp).
  struct ResmoothCache {
    std::mutex mu;                   ///< serializes smooths through this cache
    kalman::BidiagonalFactor factor; ///< spliced factor (capacity-reused)
    la::QrScratch qr;                ///< pending-compression scratch
    kalman::SmootherResult result;   ///< last smoothed means/covariances
    std::size_t prefix_len = 0;      ///< finalized blocks currently spliced
    std::uint64_t epoch = 0;         ///< filter reset_epoch of the prefix
    std::uint64_t result_mutation = 0;  ///< State::mutations when result was computed
    bool result_valid = false;
    bool result_covs = false;        ///< result includes covariances
    /// Spliced decay-amplification bounds (filter decay_amplification(),
    /// kept in lockstep with `factor`'s prefix blocks).
    std::vector<double> decay_amp;
    /// result.means/.covariances solve the *previously* spliced factor —
    /// the precondition of the truncated delta pass.  Cleared before each
    /// solve and restored on success, so a throwing solve can't leave a
    /// half-updated result posing as a valid delta seed.
    bool means_seed_valid = false;
    bool covs_seed_valid = false;
    /// Truncated passes since the last full backward pass; a full pass is
    /// forced every kResmoothRefreshInterval so accumulated neglected
    /// corrections stay bounded (each truncated pass adds at most tol).
    std::uint32_t truncated_streak = 0;
    // ---- delta copy-out bookkeeping (see SmootherResult::serve_stamp) ----
    std::uint64_t last_stamp = 0;  ///< stamp written into the storage served last
    std::size_t last_means = 0;    ///< means entries that storage received
    std::size_t last_covs = 0;     ///< covariance entries (0 = none served)
    std::size_t means_low = 0;     ///< lowest result.means entry changed since
    std::size_t covs_low = 0;      ///< ... and result.covariances
  };

  struct State {
    // Out of line: the inline bodies would instantiate ~unique_ptr over the
    // forward-declared SessionJournal in every including TU.
    State(SmootherEngine* e, la::index n0);
    ~State();
    SmootherEngine* engine;
    mutable std::mutex mu;
    kalman::IncrementalFilter filter;
    /// Durable sessions only (SmootherEngine::open_durable_session /
    /// recover_all): the write-ahead journal every mutation appends to,
    /// under `mu`.  Null for plain sessions — the common case pays one
    /// pointer test per mutation.
    std::unique_ptr<io::SessionJournal> journal;
    std::uint64_t mutations = 0;  ///< evolve/observe/reset count (result-cache key)
    /// Truncated-resmooth knobs, fixed at open (SessionOptions / the
    /// PITK_RESMOOTH_EXACT env override read once per process).
    bool exact_resmooth = false;
    double resmooth_tol = kDefaultResmoothTolerance;
    mutable ResmoothCache sync_cache;
    mutable ResmoothCache async_cache;
    // SessionStats sources; relaxed atomics so resmooth() records without
    // extending any lock's critical section.
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};
    mutable std::atomic<std::uint64_t> cov_upgrades{0};
    mutable std::atomic<std::uint64_t> steps_spliced{0};
    mutable std::atomic<std::uint64_t> truncated{0};
    mutable std::atomic<std::uint64_t> truncation_skipped{0};
  };

  explicit Session(std::shared_ptr<State> state) : state_(std::move(state)) {}

  /// The incremental smooth: splice the factor delta under the session
  /// lock, solve/SelInv into the cache outside it, copy into `out`
  /// capacity-reusing.  Serves straight from the cached result when the
  /// session has not mutated since the last smooth through `cache`.
  static void resmooth(const State& st, ResmoothCache& cache, bool with_covariances,
                       SmootherResult& out);

  /// Cold large-track variant for smooth_async: snapshot-isolated so the
  /// intra-parallel solve never holds `cache.mu` (a helping join can execute
  /// other session jobs on this thread — holding the cache lock across it
  /// could self-deadlock).  Splices into the executing worker's SolverCache
  /// under the session lock only, factors/solves via the odd-even backend
  /// from the spliced bidiagonal prefix, then publishes into `cache` (unless
  /// something newer landed meanwhile) so follow-up smooths hit or truncate.
  static void resmooth_large(const State& st, ResmoothCache& cache, bool with_covariances,
                             SmootherResult& out, par::ThreadPool& pool, SolverCache& sc);

  std::shared_ptr<State> state_;
};

}  // namespace pitk::engine
