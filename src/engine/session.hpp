#pragma once

/// \file session.hpp
/// Long-lived streaming tenant of the SmootherEngine.
///
/// A Session is the engine's UltimateKalman-style interface (paper Section
/// 5.1): measurements stream in through evolve()/observe(), the filtered
/// estimate of the current state is available at any time, and a full
/// smoothing pass over everything seen so far can be requested on demand —
/// synchronously, or as a job on the engine's shared pool via
/// smooth_async().  All methods are safe to call from any thread; the
/// underlying IncrementalFilter is guarded by a per-session mutex, and
/// smoothing operates on a snapshot so long smooths never block the stream.
///
/// Sessions are created by SmootherEngine::open_session() and must not
/// outlive their engine.

#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "core/filter.hpp"
#include "engine/engine.hpp"

namespace pitk::engine {

using kalman::CovFactor;
using la::Matrix;
using la::Vector;

class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  /// Advance to the next state: u_{i+1} = F u_i + c + noise (H = I).
  void evolve(Matrix f, Vector c, CovFactor k);

  /// Advance with explicit (possibly rectangular) H and a new dimension.
  void evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k);

  /// Absorb an observation of the current state: o = G u_i + noise.
  void observe(Matrix g, Vector o, CovFactor l);

  /// Index of the current state (0-based).
  [[nodiscard]] la::index current_step() const;

  /// Dimension of the current state.
  [[nodiscard]] la::index current_dim() const;

  /// Filtered estimate E(u_i | o_0..o_i); nullopt while rank deficient.
  [[nodiscard]] std::optional<Vector> estimate() const;

  /// Covariance of the filtered estimate; nullopt under the same condition.
  [[nodiscard]] std::optional<Matrix> covariance() const;

  /// Smooth every state seen so far, inline on the calling thread.  The
  /// session remains usable (and streamable) afterwards.
  [[nodiscard]] SmootherResult smooth(bool with_covariances = true) const;

  /// Smooth a snapshot of the session as an engine job; the future carries
  /// the result plus queue/solve metrics like any batch job.
  [[nodiscard]] std::future<JobResult> smooth_async(bool with_covariances = true) const;

  /// Drop all accumulated state and restart at a fresh u_0 of dimension n0.
  void reset(la::index n0);

 private:
  friend class SmootherEngine;

  struct State {
    State(SmootherEngine* e, la::index n0) : engine(e), filter(n0) {}
    SmootherEngine* engine;
    mutable std::mutex mu;
    kalman::IncrementalFilter filter;
  };

  explicit Session(std::shared_ptr<State> state) : state_(std::move(state)) {}

  /// Copy of the filter taken under the session lock.
  [[nodiscard]] kalman::IncrementalFilter snapshot() const;

  std::shared_ptr<State> state_;
};

}  // namespace pitk::engine
