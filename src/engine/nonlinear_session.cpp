#include "engine/nonlinear_session.hpp"

#include <algorithm>
#include <utility>

#include "io/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::engine {

namespace {
/// Process-wide mirrors of the per-session counters, aggregated across every
/// nonlinear session (cold registration, relaxed-atomic recording; leaked
/// like the registry so sessions racing process exit still record safely).
struct NlsMetrics {
  obs::Counter& hits = obs::counter("pitk.nonlinear_session.cache_hits");
  obs::Counter& misses = obs::counter("pitk.nonlinear_session.cache_misses");
  obs::Histogram& outer_iterations =
      obs::histogram("pitk.nonlinear_session.outer_iterations");
};

NlsMetrics& nls_metrics() {
  static NlsMetrics* m = new NlsMetrics();
  return *m;
}
}  // namespace

NonlinearSession::State::State(SmootherEngine* e, kalman::NonlinearModel m, la::Vector u0_,
                               NonlinearJobOptions o)
    : engine(e), model(std::move(m)), u0(std::move(u0_)), opts(std::move(o)) {}
NonlinearSession::State::~State() = default;

void NonlinearSession::advance(la::Vector obs) {
  std::lock_guard<std::mutex> lk(state_->mu);
  io::SessionJournal* j = state_->journal.get();
  if (j) j->stage_advance(obs);  // before the move consumes it
  kalman::NonlinearModel& m = state_->model;
  m.k += 1;
  m.dims.push_back(m.dims.back());
  m.obs.push_back(std::move(obs));
  ++state_->mutations;
  if (j) {
    j->commit();
    if (j->wants_compaction()) {
      // Snapshot = grown history + the last solve's means as a warm start.
      // warm_mu is a leaf lock (see the State comment), so taking it while
      // holding `mu` cannot invert against resmooth's cache.mu -> mu order.
      io::NonlinearSnapshot& s = j->nonlinear_scratch();
      s.k = m.k;
      s.dims = m.dims;
      s.obs.resize(m.obs.size());
      for (std::size_t i = 0; i < m.obs.size(); ++i)
        s.obs[i].assign_from(m.obs[i].span());
      s.u0.assign_from(state_->u0.span());
      {
        std::lock_guard<std::mutex> wl(state_->warm_mu);
        s.means.resize(state_->warm_means.size());
        for (std::size_t i = 0; i < state_->warm_means.size(); ++i)
          s.means[i].assign_from(state_->warm_means[i].span());
      }
      j->compact_nonlinear(s);
    }
  }
}

la::index NonlinearSession::current_step() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->model.k;
}

void NonlinearSession::resmooth(const State& st, Cache& cache, bool with_covariances,
                                par::ThreadPool& pool, SmootherResult& out,
                                NonlinearSolveInfo& info_out) {
  std::lock_guard<std::mutex> cl(cache.mu);
  bool hit = false;
  std::uint64_t snap_mut = 0;
  {
    // The session lock is held only for the snapshot copy — O(k) small
    // assignments into capacity-reused storage — never for the solve, so a
    // smooth does not stall the measurement stream.
    PITK_TRACE_SPAN("nls.snapshot");
    std::lock_guard<std::mutex> lk(st.mu);
    const bool current = cache.result_valid && cache.result_mutation == st.mutations;
    hit = current && (cache.result_covs || !with_covariances);
    if (!hit) {
      kalman::NonlinearModel& snap = cache.snapshot;
      if (!snap.f) {
        // Callbacks are fixed at open_nonlinear_session() time: copy once.
        snap.f = st.model.f;
        snap.f_jac = st.model.f_jac;
        snap.process_noise = st.model.process_noise;
        snap.g = st.model.g;
        snap.g_jac = st.model.g_jac;
        snap.obs_noise = st.model.obs_noise;
        snap.f_into = st.model.f_into;
        snap.f_jac_into = st.model.f_jac_into;
        snap.g_into = st.model.g_into;
        snap.g_jac_into = st.model.g_jac_into;
      }
      snap.k = st.model.k;
      snap.dims = st.model.dims;
      snap.obs.resize(st.model.obs.size());
      for (std::size_t i = 0; i < st.model.obs.size(); ++i)
        snap.obs[i].assign_from(st.model.obs[i].span());
      snap_mut = st.mutations;
    }
  }
  NlsMetrics& nm = nls_metrics();
  if (!hit) {
    const bool warm = cache.have_means;
    {
      // Warm start: the previous smooth's means where they exist, extended by
      // f-predictions for the appended steps (u0 anchors a cold start).
      PITK_TRACE_SPAN("nls.warm_start");
      const std::size_t n_states = cache.snapshot.obs.size();
      cache.init.resize(n_states);
      const std::size_t have =
          cache.have_means ? std::min(cache.result.means.size(), n_states) : 0;
      for (std::size_t i = 0; i < have; ++i)
        cache.init[i].assign_from(cache.result.means[i].span());
      for (std::size_t i = have; i < n_states; ++i) {
        if (i == 0) {
          cache.init[0].assign_from(st.u0.span());
        } else if (cache.snapshot.f_into) {
          cache.snapshot.f_into(static_cast<la::index>(i), cache.init[i - 1], cache.init[i]);
        } else {
          cache.init[i] = cache.snapshot.f(static_cast<la::index>(i), cache.init[i - 1]);
        }
      }
    }

    kalman::GaussNewtonOptions gn = st.opts.gn;
    gn.final_covariance = with_covariances;
    {
      PITK_TRACE_SPAN("nls.solve");
      solve_nonlinear_into(st.opts.backend, cache.snapshot, cache.init, gn,
                           st.opts.delta_prior_variance, pool, cache.solver, cache.gn,
                           cache.result, cache.info);
    }
    cache.result_mutation = snap_mut;
    cache.result_valid = true;
    cache.result_covs = with_covariances;
    cache.have_means = true;
    if (st.journal) {
      // Publish the fresh means for compaction snapshots (leaf lock; see the
      // warm_mu comment in the header).  Plain sessions skip the copy.
      std::lock_guard<std::mutex> wl(st.warm_mu);
      st.warm_means.resize(cache.result.means.size());
      for (std::size_t i = 0; i < cache.result.means.size(); ++i)
        st.warm_means[i].assign_from(cache.result.means[i].span());
    }
    st.misses.fetch_add(1, std::memory_order_relaxed);
    (warm ? st.warm_solves : st.cold_solves).fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t iters = static_cast<std::uint64_t>(cache.info.iterations);
    st.total_outer.fetch_add(iters, std::memory_order_relaxed);
    st.last_outer.store(iters, std::memory_order_relaxed);
    nm.misses.add(1);
    nm.outer_iterations.record(static_cast<double>(iters));
  } else {
    st.hits.fetch_add(1, std::memory_order_relaxed);
    st.last_outer.store(0, std::memory_order_relaxed);
    nm.hits.add(1);
  }
  // A hit ran no solve: record that in the cache too, so last_info() and
  // job metrics agree that repeat smooths cost zero outer iterations.
  if (hit) cache.info.iterations = 0;
  info_out = cache.info;
  out.means.resize(cache.result.means.size());
  for (std::size_t i = 0; i < cache.result.means.size(); ++i)
    out.means[i].assign_from(cache.result.means[i].span());
  if (with_covariances) {
    out.covariances.resize(cache.result.covariances.size());
    for (std::size_t i = 0; i < cache.result.covariances.size(); ++i)
      out.covariances[i].assign_from(cache.result.covariances[i].view());
  } else {
    out.covariances.clear();
  }
}

SmootherResult NonlinearSession::smooth(bool with_covariances) const {
  SmootherResult out;
  NonlinearSolveInfo info;
  resmooth(*state_, state_->sync_cache, with_covariances, state_->engine->pool_, out, info);
  return out;
}

void NonlinearSession::smooth_into(SmootherResult& out, bool with_covariances) const {
  NonlinearSolveInfo info;
  resmooth(*state_, state_->sync_cache, with_covariances, state_->engine->pool_, out, info);
}

std::future<JobResult> NonlinearSession::smooth_async(bool with_covariances,
                                                      SmootherResult* into) const {
  auto st = state_;
  la::index num_states = 0;
  Backend chosen = st->opts.backend;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    num_states = static_cast<la::index>(st->model.dims.size());
    // Always the small path (see the header comment: the solve holds the
    // cache mutex, so it must never help the pool mid-job), hence Auto
    // resolves for a serial lane.
    if (chosen == Backend::Auto) chosen = select_nonlinear_backend(st->model, 1u);
  }
  return st->engine->launch(
      [st, with_covariances](par::ThreadPool& pool, SolverCache&, SmootherResult& out,
                             JobMetrics& metrics) {
        NonlinearSolveInfo info;
        resmooth(*st, st->async_cache, with_covariances, pool, out, info);
        metrics.outer_iterations = info.iterations;
        metrics.nonlinear_converged = info.converged;
        metrics.nonlinear_final_cost = info.final_cost;
      },
      chosen, /*large=*/false, num_states, into);
}

NonlinearSolveInfo NonlinearSession::last_info() const {
  std::lock_guard<std::mutex> cl(state_->sync_cache.mu);
  return state_->sync_cache.info;
}

NonlinearSessionStats NonlinearSession::stats() const {
  const State& st = *state_;
  NonlinearSessionStats s;
  s.cache_hits = st.hits.load(std::memory_order_relaxed);
  s.cache_misses = st.misses.load(std::memory_order_relaxed);
  s.warm_solves = st.warm_solves.load(std::memory_order_relaxed);
  s.cold_solves = st.cold_solves.load(std::memory_order_relaxed);
  s.total_outer_iterations = st.total_outer.load(std::memory_order_relaxed);
  s.last_outer_iterations = st.last_outer.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pitk::engine
