/// \file durable.cpp
/// SmootherEngine durability surface: recover_all (journal scan + replay;
/// durable opens live with the other open_session overloads in engine.cpp).
///
/// Recovery contract (per journal): scan the chunk file (torn tails
/// truncated, mid-file corruption thrown), rebuild the base state from the
/// first chunk — an open record for a never-compacted journal, a snapshot
/// for a compacted one — then replay the tail through the very same
/// in-memory append path a live session uses, and reattach the journal at
/// the scan's valid_end so the session is durable again the moment it is
/// returned.  The replayed filter state is bit-identical to the crashed
/// process's (CovFactors round-trip in stored form; snapshots restore the
/// factor blocks verbatim), so the next smooth() agrees with an
/// uninterrupted run to solver precision.

#include <chrono>
#include <stdexcept>
#include <utility>

#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "io/chunk.hpp"
#include "io/journal.hpp"
#include "io/session_store.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::engine {

namespace {

struct RecoveryMetrics {
  obs::Counter& recovered = obs::counter("pitk.io.recovered_sessions");
  obs::Counter& torn_tails = obs::counter("pitk.io.torn_tails");
  obs::Counter& replayed = obs::counter("pitk.io.replayed_records");
  obs::Histogram& seconds = obs::histogram("pitk.io.recovery_seconds");
};

RecoveryMetrics& recovery_metrics() {
  static RecoveryMetrics* m = new RecoveryMetrics();
  return *m;
}

using io::ChunkType;

ChunkType chunk_type(const io::ChunkView& c) { return static_cast<ChunkType>(c.type); }

/// Records since the last snapshot: everything in the file except a leading
/// snapshot chunk (the open record of a fresh journal *is* counted, exactly
/// as the live commit() path counts it).
la::index tail_record_count(const io::ScanResult& scan) {
  if (scan.chunks.empty()) return 0;
  const ChunkType first = chunk_type(scan.chunks.front());
  const bool leading_snapshot =
      first == ChunkType::kSnapshot || first == ChunkType::kNonlinearSnapshot;
  return static_cast<la::index>(scan.chunks.size()) - (leading_snapshot ? 1 : 0);
}

}  // namespace

/// Friend of both session classes: recovery needs to construct and fill
/// their private State outside any engine member function.
struct DurableAccess {
  static std::shared_ptr<Session::State> recover_linear(SmootherEngine* engine,
                                                        const io::ScanResult& scan);
  static std::shared_ptr<NonlinearSession::State> recover_nonlinear(
      SmootherEngine* engine, const std::string& id, const io::ScanResult& scan,
      const RecoveryOptions& opts);
};

std::shared_ptr<Session::State> DurableAccess::recover_linear(SmootherEngine* engine,
                                                              const io::ScanResult& scan) {
  if (scan.chunks.empty())
    throw std::runtime_error("recover_all: journal holds no replayable chunk");
  std::shared_ptr<Session::State> st;
  std::size_t next = 0;
  kalman::FilterSnapshot snap;
  io::EvolveRecord ev;
  io::ObserveRecord ob;
  switch (chunk_type(scan.chunks.front())) {
    case ChunkType::kOpenLinear:
      st = std::make_shared<Session::State>(engine,
                                            io::decode_open_linear(scan.chunks[0].payload));
      next = 1;
      break;
    case ChunkType::kSnapshot:
      io::decode_snapshot(scan.chunks[0].payload, snap);
      st = std::make_shared<Session::State>(engine, snap.n);
      st->filter.restore_state(snap);
      next = 1;
      break;
    default:
      throw io::CorruptJournal("recover_all: linear journal does not start with an "
                               "open or snapshot chunk");
  }
  for (; next < scan.chunks.size(); ++next) {
    const io::ChunkView& c = scan.chunks[next];
    switch (chunk_type(c)) {
      case ChunkType::kEvolve:
        io::decode_evolve(c.payload, ev);
        if (ev.h.empty())
          st->filter.evolve(std::move(ev.f), std::move(ev.c), std::move(ev.k));
        else
          st->filter.evolve_rect(ev.n_new, std::move(ev.h), std::move(ev.f),
                                 std::move(ev.c), std::move(ev.k));
        break;
      case ChunkType::kObserve:
        io::decode_observe(c.payload, ob);
        st->filter.observe(std::move(ob.g), std::move(ob.o), std::move(ob.l));
        break;
      case ChunkType::kReset:
        // Replay discards everything before it, exactly like the live call:
        // reset() bumps the filter's epoch, so any cache built against the
        // pre-reset prefix resplices from scratch.
        st->filter.reset(io::decode_reset(c.payload));
        break;
      default:
        throw io::CorruptJournal("recover_all: unexpected chunk type in linear tail");
    }
    ++st->mutations;
  }
  return st;
}

std::shared_ptr<NonlinearSession::State> DurableAccess::recover_nonlinear(
    SmootherEngine* engine, const std::string& id, const io::ScanResult& scan,
    const RecoveryOptions& opts) {
  if (!opts.nonlinear_model)
    throw std::runtime_error(
        "recover_all: nonlinear journal needs RecoveryOptions::nonlinear_model to "
        "re-bind the model callbacks");
  if (scan.chunks.empty())
    throw std::runtime_error("recover_all: journal holds no replayable chunk");
  const ChunkType first = chunk_type(scan.chunks.front());
  if (first != ChunkType::kOpenNonlinear && first != ChunkType::kNonlinearSnapshot)
    throw io::CorruptJournal("recover_all: nonlinear journal does not start with an "
                             "open or snapshot chunk");
  io::NonlinearSnapshot snap;
  io::decode_nonlinear_snapshot(scan.chunks[0].payload, snap);
  if (snap.dims.empty() || snap.k + 1 != static_cast<la::index>(snap.dims.size()) ||
      snap.obs.size() != snap.dims.size() || snap.u0.size() != snap.dims.front())
    throw io::CorruptJournal("recover_all: inconsistent nonlinear snapshot");

  kalman::NonlinearModel model = opts.nonlinear_model(id);
  model.k = snap.k;
  model.dims = std::move(snap.dims);
  model.obs = std::move(snap.obs);
  auto st = std::make_shared<NonlinearSession::State>(engine, std::move(model),
                                                      std::move(snap.u0),
                                                      opts.nonlinear_opts);
  for (std::size_t i = 1; i < scan.chunks.size(); ++i) {
    const io::ChunkView& c = scan.chunks[i];
    if (chunk_type(c) != ChunkType::kAdvance)
      throw io::CorruptJournal("recover_all: unexpected chunk type in nonlinear tail");
    la::Vector obs;
    io::decode_advance(c.payload, obs);
    st->model.k += 1;
    st->model.dims.push_back(st->model.dims.back());
    st->model.obs.push_back(std::move(obs));
    ++st->mutations;
  }
  if (!snap.means.empty()) {
    // The compacted means warm-start the first post-recovery smooth the same
    // way a live session's cache would: seed both caches' results (valid:
    // false — a solve still runs, it just starts near the answer) and the
    // warm_means the next compaction snapshots.
    st->warm_means = snap.means;
    for (NonlinearSession::Cache* cache : {&st->sync_cache, &st->async_cache}) {
      cache->result.means = snap.means;
      cache->have_means = true;
    }
  }
  return st;
}

RecoveredSessions SmootherEngine::recover_all(io::SessionStore& store,
                                              const RecoveryOptions& opts) {
  PITK_TRACE_SPAN("io.recover_all");
  RecoveryMetrics& m = recovery_metrics();
  RecoveredSessions out;
  for (const std::string& id : store.list()) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      io::ScanResult scan = io::scan_chunk_file(store.path_for(id));
      if (scan.torn_tail) {
        ++out.torn_tails;
        m.torn_tails.add(1);
      }
      const la::index tail = tail_record_count(scan);
      switch (static_cast<io::SessionKind>(scan.kind)) {
        case io::SessionKind::Linear: {
          auto st = DurableAccess::recover_linear(this, scan);
          out.replayed_records += st->mutations;
          st->journal = io::SessionJournal::resume(store, id, io::SessionKind::Linear,
                                                   scan.valid_end, tail);
          out.linear.emplace_back(id, Session(std::move(st)));
          break;
        }
        case io::SessionKind::Nonlinear: {
          auto st = DurableAccess::recover_nonlinear(this, id, scan, opts);
          out.replayed_records += st->mutations;
          st->journal = io::SessionJournal::resume(store, id, io::SessionKind::Nonlinear,
                                                   scan.valid_end, tail);
          out.nonlinear.emplace_back(id, NonlinearSession(std::move(st)));
          break;
        }
        default:
          throw io::CorruptJournal("recover_all: unknown journal kind in header");
      }
      m.recovered.add(1);
      m.seconds.record(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                           .count());
    } catch (const std::exception& e) {
      out.failed.emplace_back(id, e.what());
    }
  }
  m.replayed.add(out.replayed_records);
  return out;
}

}  // namespace pitk::engine
