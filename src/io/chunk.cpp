#include "io/chunk.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/fault.hpp"
#include "obs/registry.hpp"

namespace pitk::io {

namespace {

constexpr std::array<char, 8> kMagic = {'P', 'I', 'T', 'K', 'J', 'N', 'L', '1'};

/// CRC32C lookup table (Castagnoli polynomial, reflected: 0x82F63B78),
/// built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

struct ChunkMetrics {
  obs::Counter& journal_bytes = obs::counter("pitk.io.journal_bytes");
};

ChunkMetrics& chunk_metrics() {
  static ChunkMetrics* m = new ChunkMetrics();
  return *m;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) noexcept {
  const auto& t = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

ChunkFile::ChunkFile(ChunkFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      buf_(std::move(other.buf_)),
      flushed_(std::exchange(other.flushed_, 0)),
      failed_(std::exchange(other.failed_, false)) {}

ChunkFile& ChunkFile::operator=(ChunkFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    buf_ = std::move(other.buf_);
    flushed_ = std::exchange(other.flushed_, 0);
    failed_ = std::exchange(other.failed_, false);
  }
  return *this;
}

ChunkFile::~ChunkFile() {
  if (fd_ < 0) return;
  if (!failed_ && !buf_.empty()) {
    // Best-effort final flush; a destructor must not throw.
    try {
      flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  ::close(fd_);
}

ChunkFile ChunkFile::create(const std::string& path, std::uint32_t kind) {
  ChunkFile f;
  f.fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (f.fd_ < 0) throw_errno("ChunkFile::create: cannot open", path);
  f.path_ = path;
  f.buf_.reserve(4096);
  for (char c : kMagic) f.buf_.push_back(static_cast<std::byte>(c));
  put_u32(f.buf_, kFormatVersion);
  put_u32(f.buf_, kind);
  // The header reaches the disk before create() returns: a journal either
  // exists durably or not at all.
  f.sync();
  fsync_parent_dir(path);
  return f;
}

ChunkFile ChunkFile::append_at(const std::string& path, std::uint64_t valid_end) {
  ChunkFile f;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (f.fd_ < 0) throw_errno("ChunkFile::append_at: cannot open", path);
  f.path_ = path;
  if (::ftruncate(f.fd_, static_cast<off_t>(valid_end)) != 0)
    throw_errno("ChunkFile::append_at: cannot truncate", path);
  if (::lseek(f.fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0)
    throw_errno("ChunkFile::append_at: cannot seek", path);
  f.flushed_ = valid_end;
  f.buf_.reserve(4096);
  return f;
}

void ChunkFile::append(std::uint8_t type, std::span<const std::byte> payload) {
  if (fd_ < 0) throw std::runtime_error("ChunkFile::append: file is closed");
  if (failed_)
    throw std::runtime_error(
        "ChunkFile::append: a previous write failed; the file has a torn tail "
        "and must go through recovery before further appends");
  if (payload.size() > kMaxChunkPayload)
    throw std::invalid_argument("ChunkFile::append: payload exceeds kMaxChunkPayload");
  std::uint32_t crc = crc32c(&type, 1);
  crc = crc32c(payload.data(), payload.size(), crc);
  const std::size_t chunk_start = buf_.size();
  put_u32(buf_, static_cast<std::uint32_t>(payload.size()));
  put_u32(buf_, crc);
  buf_.push_back(static_cast<std::byte>(type));
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  if (fault::should_fail("io.corrupt") && !payload.empty()) {
    // Flip one payload byte after the CRC was taken: the reader must notice.
    std::byte& b = buf_[chunk_start + kChunkOverhead + payload.size() / 2];
    b ^= std::byte{0x40};
  }
}

void ChunkFile::flush() {
  if (fd_ < 0) throw std::runtime_error("ChunkFile::flush: file is closed");
  if (failed_) throw std::runtime_error("ChunkFile::flush: a previous write failed");
  if (buf_.empty()) return;
  std::size_t limit = buf_.size();
  const bool injected = fault::should_fail("io.write");
  if (injected) limit /= 2;  // emulate a crash: a prefix reaches the disk
  std::size_t off = 0;
  while (off < limit) {
    const ssize_t n = ::write(fd_, buf_.data() + off, limit - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      throw_errno("ChunkFile::flush: write failed for", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  flushed_ += off;
  chunk_metrics().journal_bytes.add(off);
  if (injected) {
    failed_ = true;
    throw std::runtime_error("fault injected at io.write (torn write in " + path_ + ")");
  }
  buf_.clear();
}

void ChunkFile::sync() {
  flush();
  fault::inject_fail("io.fsync");
  if (::fsync(fd_) != 0) {
    failed_ = true;
    throw_errno("ChunkFile::sync: fsync failed for", path_);
  }
}

void ChunkFile::close() {
  if (fd_ < 0) return;
  if (!failed_) sync();
  ::close(fd_);
  fd_ = -1;
}

ScanResult scan_chunk_file(const std::string& path) {
  ScanResult r;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("scan_chunk_file: cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("scan_chunk_file: cannot stat", path);
  }
  r.bytes.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < r.bytes.size()) {
    const ssize_t n = ::read(fd, r.bytes.data() + off, r.bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("scan_chunk_file: read failed for", path);
    }
    if (n == 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  r.bytes.resize(off);

  if (r.bytes.size() < kFileHeaderSize) {
    // A crash before the header flush completed: nothing recoverable, but
    // nothing corrupt either.
    r.torn_header = true;
    r.torn_tail = !r.bytes.empty();
    return r;
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (static_cast<char>(r.bytes[i]) != kMagic[i])
      throw CorruptJournal("scan_chunk_file: bad magic in " + path);
  const std::uint32_t version = get_u32(r.bytes.data() + 8);
  if (version != kFormatVersion)
    throw CorruptJournal("scan_chunk_file: unsupported format version " +
                         std::to_string(version) + " in " + path);
  r.kind = get_u32(r.bytes.data() + 12);

  std::size_t pos = kFileHeaderSize;
  // First pass candidate chunks; a CRC mismatch is only tolerated when the
  // mismatching chunk is the last one the length prefixes reach.
  while (pos < r.bytes.size()) {
    const std::size_t remaining = r.bytes.size() - pos;
    if (remaining < kChunkOverhead) break;  // torn mid-header
    const std::uint32_t len = get_u32(r.bytes.data() + pos);
    // An absurd length makes every later byte unaddressable; whether it came
    // from a torn write or corruption, truncating here is the only recovery.
    if (len > kMaxChunkPayload) break;
    if (remaining < kChunkOverhead + len) break;  // torn payload
    const std::uint32_t stored_crc = get_u32(r.bytes.data() + pos + 4);
    const std::byte* body = r.bytes.data() + pos + 8;  // type byte + payload
    const std::uint32_t actual = crc32c(body, 1 + len);
    if (stored_crc != actual) {
      // A complete-looking chunk with a bad CRC: a torn/corrupted *final*
      // write is truncated; garbage with more chunks behind it is not a tail.
      if (pos + kChunkOverhead + len < r.bytes.size())
        throw CorruptJournal("scan_chunk_file: CRC mismatch mid-file in " + path +
                             " at offset " + std::to_string(pos));
      break;
    }
    ChunkView cv;
    cv.type = std::to_integer<std::uint8_t>(body[0]);
    cv.payload = std::span<const std::byte>(body + 1, len);
    r.chunks.push_back(cv);
    pos += kChunkOverhead + len;
  }
  r.valid_end = pos;
  r.torn_tail = pos < r.bytes.size();
  return r;
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best-effort: some filesystems refuse directory opens
  ::fsync(fd);         // best-effort as well
  ::close(fd);
}

}  // namespace pitk::io
