#include "io/session_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace pitk::io {

namespace {

constexpr std::string_view kJournalSuffix = ".pitkj";
constexpr std::string_view kCompactSuffix = ".pitkj.compact";

bool valid_id(std::string_view id) {
  if (id.empty() || id.size() > 200 || id.front() == '.') return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : fallback;
}

}  // namespace

SessionStore::SessionStore(DurabilityOptions opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty())
    throw std::runtime_error("SessionStore: checkpoint directory must be set");
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  if (ec || !std::filesystem::is_directory(opts_.dir))
    throw std::runtime_error("SessionStore: cannot create directory " + opts_.dir +
                             (ec ? ": " + ec.message() : std::string()));
}

DurabilityOptions SessionStore::env_options() {
  DurabilityOptions o;
  o.dir = env_or("PITK_CHECKPOINT_DIR", "pitk-checkpoints");
  const std::string_view flush = env_or("PITK_IO_FLUSH", "every");
  o.flush = (flush == "buffered") ? FlushPolicy::Buffered : FlushPolicy::EveryAppend;
  o.fsync_every_append = std::string_view(env_or("PITK_IO_FSYNC", "0")) == "1";
  o.compact_every = static_cast<la::index>(std::atol(env_or("PITK_IO_COMPACT", "256")));
  return o;
}

std::string SessionStore::path_for(std::string_view id) const {
  if (!valid_id(id))
    throw std::invalid_argument("SessionStore: invalid session id '" + std::string(id) +
                                "' (use [A-Za-z0-9._-], no leading dot)");
  return opts_.dir + "/" + std::string(id) + std::string(kJournalSuffix);
}

std::string SessionStore::compact_path_for(std::string_view id) const {
  return opts_.dir + "/" + std::string(id) + std::string(kCompactSuffix);
}

std::vector<std::string> SessionStore::list() const {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(opts_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= kJournalSuffix.size()) continue;
    if (name.ends_with(kCompactSuffix)) continue;
    if (!name.ends_with(kJournalSuffix)) continue;
    std::string id = name.substr(0, name.size() - kJournalSuffix.size());
    if (valid_id(id)) ids.push_back(std::move(id));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

SessionStore SessionStore::shard_store(unsigned shard) const {
  DurabilityOptions o = opts_;
  o.dir = opts_.dir + "/shard-" + std::to_string(shard);
  return SessionStore(std::move(o));
}

void SessionStore::remove(std::string_view id) const {
  std::error_code ec;
  std::filesystem::remove(path_for(id), ec);
  std::filesystem::remove(compact_path_for(id), ec);
}

}  // namespace pitk::io
