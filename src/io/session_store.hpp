#pragma once

/// \file session_store.hpp
/// A directory of per-session journals plus the durability knobs they share.
///
/// One SessionStore owns one checkpoint directory; every durable session
/// opened against it keeps a write-ahead journal at `<dir>/<id>.pitkj`.
/// Compaction stages its rewrite at `<dir>/<id>.pitkj.compact` and commits
/// with an atomic rename, so at every instant exactly one crash-consistent
/// journal exists per session id (a stray .compact file is an abandoned
/// compaction and is ignored — and cleaned up — by recovery).
///
/// Environment knobs (read by env_options(), the defaults for stores built
/// from the environment; explicit DurabilityOptions always win):
///   PITK_CHECKPOINT_DIR  the journal directory
///   PITK_IO_FLUSH        "every" (default) | "buffered"
///   PITK_IO_FSYNC        "1" to fsync after every flushed append (default 0:
///                        fsync at create/compaction/close only)
///   PITK_IO_COMPACT      appends between snapshot compactions (default 256)

#include <string>
#include <string_view>
#include <vector>

#include "la/matrix.hpp"

namespace pitk::io {

/// When buffered journal bytes are handed to the OS.
enum class FlushPolicy : std::uint8_t {
  EveryAppend,  ///< flush on every committed append (the durable default)
  Buffered,     ///< flush only at compaction/close; trades the tail for speed
};

struct DurabilityOptions {
  std::string dir;  ///< checkpoint directory; must be non-empty
  FlushPolicy flush = FlushPolicy::EveryAppend;
  /// fsync after every flushed append.  Off by default: the journal then
  /// survives process death unconditionally and power loss up to the page
  /// cache, matching the usual WAL trade-off.
  bool fsync_every_append = false;
  /// Journal records accumulated past the last snapshot before the journal
  /// is compacted into a fresh snapshot (bounding recovery cost).  <= 0
  /// disables compaction.
  la::index compact_every = 256;
};

class SessionStore {
 public:
  /// Creates `opts.dir` (and parents) if missing; throws std::runtime_error
  /// when the directory cannot be created or `opts.dir` is empty.
  explicit SessionStore(DurabilityOptions opts);

  /// Options assembled from the PITK_* environment knobs (see file comment);
  /// `dir` falls back to "pitk-checkpoints" when PITK_CHECKPOINT_DIR is
  /// unset.
  [[nodiscard]] static DurabilityOptions env_options();

  [[nodiscard]] const DurabilityOptions& options() const noexcept { return opts_; }

  /// Journal path for one session id.  Ids are restricted to
  /// [A-Za-z0-9._-] (non-empty, no leading dot) so they map to safe file
  /// names; throws std::invalid_argument otherwise.
  [[nodiscard]] std::string path_for(std::string_view id) const;

  /// Path of the compaction staging file for `id`.
  [[nodiscard]] std::string compact_path_for(std::string_view id) const;

  /// Session ids with a journal present, sorted; abandoned .compact staging
  /// files are skipped (recover_all removes them).
  [[nodiscard]] std::vector<std::string> list() const;

  /// Remove `id`'s journal (and any abandoned staging file).
  void remove(std::string_view id) const;

  /// A store rooted at the `<dir>/shard-<NN>` subdirectory with the same
  /// durability options — the serving tier's per-shard journal placement.
  /// Journals are self-contained files, so moving one between shard
  /// subdirectories (or to another host) migrates the session; this is the
  /// seam the shard-migration follow-up builds on.  Creates the
  /// subdirectory if missing.
  [[nodiscard]] SessionStore shard_store(unsigned shard) const;

 private:
  DurabilityOptions opts_;
};

}  // namespace pitk::io
