#pragma once

/// \file journal.hpp
/// Per-session write-ahead journal with snapshot compaction.
///
/// Every durable session owns one SessionJournal.  Each mutation
/// (evolve / evolve_rect / observe / reset for linear sessions, advance for
/// nonlinear ones) appends one chunk recording the *inputs* of the call, so
/// recovery replays the tail through the very same append path the live
/// session took.  Periodically the journal compacts: the session's full
/// state (an IncrementalFilter snapshot, or the nonlinear model history plus
/// the last smoothed means as a warm start) is written as a single snapshot
/// chunk into a staging file which is fsynced and atomically renamed over
/// the journal — recovery cost is then bounded by the tail since the last
/// compaction, not by track length.
///
/// Write discipline (two-phase per mutation):
///  1. stage_*() encodes the record into a reused staging buffer — pure
///     memory work, done *before* the filter/model consumes the arguments,
///     so a validation failure in the in-memory path leaves the journal
///     untouched;
///  2. commit() appends the staged chunk and applies the flush policy — done
///     *after* the in-memory mutation succeeded, so the journal never holds
///     an operation the session rejected.
///
/// A failed commit (injected `io.write` fault, disk full) throws to the
/// caller — losing durability is loud — and poisons the journal: later
/// commits are silently skipped (counted in pitk.io.append_failures),
/// because appending past a torn tail would turn recoverable truncation
/// into mid-file corruption.  The in-memory session keeps serving.
///
/// Compaction failures are absorbed: the old journal file stays valid and
/// append-able, and compaction is retried at the next threshold crossing.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/filter.hpp"
#include "io/chunk.hpp"
#include "io/session_store.hpp"
#include "kalman/cov_factor.hpp"
#include "la/matrix.hpp"

namespace pitk::io {

/// Journal flavor, stored in the chunk-file header so recovery can dispatch
/// before decoding any chunk.
enum class SessionKind : std::uint32_t { Linear = 1, Nonlinear = 2 };

/// Chunk types (the u8 tag of every journal chunk).
enum class ChunkType : std::uint8_t {
  kOpenLinear = 1,         ///< i64 n0 — journal start of a fresh linear session
  kEvolve = 2,             ///< evolve/evolve_rect inputs
  kObserve = 3,            ///< observe inputs
  kReset = 4,              ///< i64 n0 — invalidates everything before it on replay
  kSnapshot = 5,           ///< full FilterSnapshot (compaction)
  kOpenNonlinear = 6,      ///< nonlinear history (means empty) — journal start
  kAdvance = 7,            ///< advance input (empty vector = unobserved step)
  kNonlinearSnapshot = 8,  ///< nonlinear history + warm-start means (compaction)
};

/// Serializable state of a nonlinear session: the grown history (the
/// callbacks are code, not data — recovery re-binds them via
/// RecoveryOptions::nonlinear_model) plus the last smoothed means so the
/// first post-recovery smooth warm-starts like a live one would.
struct NonlinearSnapshot {
  la::index k = 0;
  std::vector<la::index> dims;    ///< size k+1
  std::vector<la::Vector> obs;    ///< size k+1; empty vector = unobserved
  la::Vector u0;                  ///< cold-start anchor for state 0
  std::vector<la::Vector> means;  ///< warm start; empty = none yet
};

/// Decoded evolve record (h empty = identity, exactly the live-call form).
struct EvolveRecord {
  la::index n_new = 0;
  la::Matrix h;
  la::Matrix f;
  la::Vector c;
  kalman::CovFactor k;
};

/// Decoded observe record.
struct ObserveRecord {
  la::Matrix g;
  la::Vector o;
  kalman::CovFactor l;
};

class SessionJournal {
 public:
  /// Create (or overwrite) the journal for `id`; the caller stages and
  /// commits the opening record next.
  [[nodiscard]] static std::unique_ptr<SessionJournal> create(const SessionStore& store,
                                                              std::string_view id,
                                                              SessionKind kind);

  /// Reattach to a recovered journal for further appends: truncates the torn
  /// tail at `valid_end` and resumes counting `tail_records` records since
  /// the last snapshot.
  [[nodiscard]] static std::unique_ptr<SessionJournal> resume(const SessionStore& store,
                                                              std::string_view id,
                                                              SessionKind kind,
                                                              std::uint64_t valid_end,
                                                              la::index tail_records);

  // ---- phase 1: stage (memory only; replaces any previously staged record) ----

  void stage_open_linear(la::index n0);
  void stage_evolve(const la::Matrix& f, const la::Vector& c, const kalman::CovFactor& k);
  void stage_evolve_rect(la::index n_new, const la::Matrix& h, const la::Matrix& f,
                         const la::Vector& c, const kalman::CovFactor& k);
  void stage_observe(const la::Matrix& g, const la::Vector& o, const kalman::CovFactor& l);
  void stage_reset(la::index n0);
  void stage_open_nonlinear(const NonlinearSnapshot& s);  ///< means ignored
  void stage_advance(const la::Vector& obs);

  // ---- phase 2: commit ----

  /// Append the staged record and flush per policy.  Throws on the *first*
  /// write/fsync failure (and poisons the journal); a poisoned journal
  /// swallows later commits, counting them as append failures.  No-op when
  /// nothing is staged.
  void commit();

  // ---- compaction ----

  /// True when the tail since the last snapshot reached the configured
  /// threshold (and the journal is healthy).
  [[nodiscard]] bool wants_compaction() const noexcept;

  /// Rewrite the journal as one snapshot chunk (staging file + atomic
  /// rename).  Failures are absorbed; see the file comment.
  void compact_linear(const kalman::IncrementalFilter& filter);
  void compact_nonlinear(const NonlinearSnapshot& s);

  /// Reused nonlinear snapshot storage for compaction callers (capacity
  /// persists across compactions).
  [[nodiscard]] NonlinearSnapshot& nonlinear_scratch() noexcept { return nl_scratch_; }

  [[nodiscard]] bool failed() const noexcept { return file_.failed(); }
  [[nodiscard]] SessionKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& path() const noexcept { return file_.path(); }
  [[nodiscard]] la::index tail_records() const noexcept { return tail_records_; }

  /// flush + fsync + close (destruction flushes best-effort).
  void close() { file_.close(); }

 private:
  SessionJournal(ChunkFile file, SessionKind kind, DurabilityOptions opts,
                 std::string compact_path);

  void compact_with(ChunkType type);  ///< stage buffer -> staging file -> rename

  ChunkFile file_;
  SessionKind kind_;
  DurabilityOptions opts_;
  std::string compact_path_;
  std::vector<std::byte> stage_;     ///< staged record payload (reused)
  ChunkType stage_type_ = ChunkType::kOpenLinear;
  bool staged_ = false;
  la::index tail_records_ = 0;       ///< records since the last snapshot
  std::vector<std::byte> snap_buf_;  ///< compaction payload (reused)
  kalman::FilterSnapshot snap_scratch_;
  NonlinearSnapshot nl_scratch_;
};

// ---- record decoding (the recovery path) ----

[[nodiscard]] la::index decode_open_linear(std::span<const std::byte> payload);
void decode_evolve(std::span<const std::byte> payload, EvolveRecord& out);
void decode_observe(std::span<const std::byte> payload, ObserveRecord& out);
[[nodiscard]] la::index decode_reset(std::span<const std::byte> payload);
void decode_snapshot(std::span<const std::byte> payload, kalman::FilterSnapshot& out);
/// Decodes kOpenNonlinear and kNonlinearSnapshot (identical payloads).
void decode_nonlinear_snapshot(std::span<const std::byte> payload, NonlinearSnapshot& out);
void decode_advance(std::span<const std::byte> payload, la::Vector& out);

}  // namespace pitk::io
