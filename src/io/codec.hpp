#pragma once

/// \file codec.hpp
/// Binary encoding of the library's value types into journal chunk payloads.
///
/// Little-endian fixed-width integers and raw IEEE-754 doubles; matrices are
/// written column-major (the owning la::Matrix layout), covariance factors in
/// their *stored* form (diagonal sqrt-variances / dense lower Cholesky) so a
/// decode rebuilds the factor bit-for-bit — replaying a journal then produces
/// exactly the arithmetic of the uninterrupted run.  Integrity is the chunk
/// layer's CRC32C; the Decoder's bounds checks defend against truncated or
/// hand-crafted payloads by throwing CorruptJournal instead of reading past
/// the payload.

#include <cstring>
#include <span>
#include <vector>

#include "io/chunk.hpp"
#include "kalman/cov_factor.hpp"
#include "la/matrix.hpp"

namespace pitk::io {

/// Appends to a caller-owned byte buffer (capacity-reused across records).
class Encoder {
 public:
  explicit Encoder(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void doubles(std::span<const double> v) {
    const std::size_t off = out_.size();
    out_.resize(off + v.size_bytes());
    if (!v.empty()) std::memcpy(out_.data() + off, v.data(), v.size_bytes());
  }

  void vec(const la::Vector& v) {
    i64(v.size());
    doubles(v.span());
  }

  /// Owning matrices are contiguous column-major (ld == rows).
  void mat(const la::Matrix& m) {
    i64(m.rows());
    i64(m.cols());
    doubles(std::span<const double>(m.data(),
                                    static_cast<std::size_t>(m.rows() * m.cols())));
  }

  void cov(const kalman::CovFactor& f) {
    u8(static_cast<std::uint8_t>(f.kind()));
    i64(f.dim());
    switch (f.kind()) {
      case kalman::CovFactor::Kind::Identity:
        break;
      case kalman::CovFactor::Kind::Diagonal:
        doubles(f.diag_std().span());
        break;
      case kalman::CovFactor::Kind::Dense:
        doubles(std::span<const double>(
            f.chol_lower().data(), static_cast<std::size_t>(f.dim() * f.dim())));
        break;
    }
  }

 private:
  std::vector<std::byte>& out_;
};

/// Reads one chunk payload; every accessor throws CorruptJournal on overrun.
class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> in) : in_(in) {}

  [[nodiscard]] bool done() const noexcept { return pos_ == in_.size(); }

  std::uint8_t u8() {
    need(1);
    return std::to_integer<std::uint8_t>(in_[pos_++]);
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// A non-negative i64 that must also fit the record it shapes.
  la::index dim() {
    const std::int64_t v = i64();
    if (v < 0 || v > static_cast<std::int64_t>(kMaxChunkPayload))
      throw CorruptJournal("journal decode: dimension out of range");
    return static_cast<la::index>(v);
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  void doubles(double* out, std::size_t n) {
    need(n * sizeof(double));
    if (n != 0) std::memcpy(out, in_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
  }

  void vec(la::Vector& out) {
    const la::index n = dim();
    out.resize(n);
    doubles(out.data(), static_cast<std::size_t>(n));
  }

  void mat(la::Matrix& out) {
    const la::index rows = dim();
    const la::index cols = dim();
    out.resize(rows, cols);
    doubles(out.data(), static_cast<std::size_t>(rows * cols));
  }

  kalman::CovFactor cov() {
    const std::uint8_t kind = u8();
    const la::index d = dim();
    switch (static_cast<kalman::CovFactor::Kind>(kind)) {
      case kalman::CovFactor::Kind::Identity:
        return kalman::CovFactor::identity(d);
      case kalman::CovFactor::Kind::Diagonal: {
        la::Vector stds(d);
        doubles(stds.data(), static_cast<std::size_t>(d));
        return kalman::CovFactor::from_stored(kalman::CovFactor::Kind::Diagonal, d,
                                              std::move(stds), la::Matrix());
      }
      case kalman::CovFactor::Kind::Dense: {
        la::Matrix chol(d, d);
        doubles(chol.data(), static_cast<std::size_t>(d * d));
        return kalman::CovFactor::from_stored(kalman::CovFactor::Kind::Dense, d,
                                              la::Vector(), std::move(chol));
      }
    }
    throw CorruptJournal("journal decode: unknown covariance kind");
  }

 private:
  void need(std::size_t n) const {
    if (in_.size() - pos_ < n)
      throw CorruptJournal("journal decode: payload truncated");
  }

  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace pitk::io
