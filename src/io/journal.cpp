#include "io/journal.hpp"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "io/codec.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::io {

namespace {

/// Process-wide journal counters (cold registration, leaked like the
/// registry; see obs/registry.hpp for the idiom).
struct JournalMetrics {
  obs::Counter& appends = obs::counter("pitk.io.appends");
  obs::Counter& compactions = obs::counter("pitk.io.compactions");
  obs::Counter& compaction_failures = obs::counter("pitk.io.compaction_failures");
  obs::Counter& append_failures = obs::counter("pitk.io.append_failures");
};

JournalMetrics& journal_metrics() {
  static JournalMetrics* m = new JournalMetrics();
  return *m;
}

void encode_cov_record(Encoder& e, const kalman::CovFactor& k) { e.cov(k); }

void encode_filter_snapshot(Encoder& e, const kalman::FilterSnapshot& s) {
  e.i64(s.step);
  e.i64(s.n);
  e.u64(s.epoch);
  e.mat(s.pending);
  e.vec(s.pending_rhs);
  e.u64(s.finished.diag.size());
  for (std::size_t i = 0; i < s.finished.diag.size(); ++i) {
    e.mat(s.finished.diag[i]);
    e.mat(s.finished.sup[i]);
    e.vec(s.finished.rhs[i]);
  }
}

void encode_nonlinear_snapshot(Encoder& e, const NonlinearSnapshot& s, bool with_means) {
  e.i64(s.k);
  e.u64(s.dims.size());
  for (la::index d : s.dims) e.i64(d);
  e.u64(s.obs.size());
  for (const la::Vector& o : s.obs) e.vec(o);
  e.vec(s.u0);
  if (with_means) {
    e.u64(s.means.size());
    for (const la::Vector& m : s.means) e.vec(m);
  } else {
    e.u64(0);
  }
}

}  // namespace

SessionJournal::SessionJournal(ChunkFile file, SessionKind kind, DurabilityOptions opts,
                               std::string compact_path)
    : file_(std::move(file)),
      kind_(kind),
      opts_(std::move(opts)),
      compact_path_(std::move(compact_path)) {}

std::unique_ptr<SessionJournal> SessionJournal::create(const SessionStore& store,
                                                       std::string_view id,
                                                       SessionKind kind) {
  const std::string path = store.path_for(id);
  // A stray staging file from a crashed compaction of a previous incarnation
  // must not outlive the new journal.
  ::unlink(store.compact_path_for(id).c_str());
  ChunkFile f = ChunkFile::create(path, static_cast<std::uint32_t>(kind));
  return std::unique_ptr<SessionJournal>(new SessionJournal(
      std::move(f), kind, store.options(), store.compact_path_for(id)));
}

std::unique_ptr<SessionJournal> SessionJournal::resume(const SessionStore& store,
                                                       std::string_view id,
                                                       SessionKind kind,
                                                       std::uint64_t valid_end,
                                                       la::index tail_records) {
  const std::string path = store.path_for(id);
  ::unlink(store.compact_path_for(id).c_str());
  ChunkFile f = ChunkFile::append_at(path, valid_end);
  auto j = std::unique_ptr<SessionJournal>(new SessionJournal(
      std::move(f), kind, store.options(), store.compact_path_for(id)));
  j->tail_records_ = tail_records;
  return j;
}

void SessionJournal::stage_open_linear(la::index n0) {
  stage_.clear();
  Encoder e(stage_);
  e.i64(n0);
  stage_type_ = ChunkType::kOpenLinear;
  staged_ = true;
}

void SessionJournal::stage_evolve(const la::Matrix& f, const la::Vector& c,
                                  const kalman::CovFactor& k) {
  stage_evolve_rect(f.rows(), la::Matrix(), f, c, k);
}

void SessionJournal::stage_evolve_rect(la::index n_new, const la::Matrix& h,
                                       const la::Matrix& f, const la::Vector& c,
                                       const kalman::CovFactor& k) {
  stage_.clear();
  Encoder e(stage_);
  e.u8(h.empty() ? 0 : 1);
  e.i64(n_new);
  if (!h.empty()) e.mat(h);
  e.mat(f);
  e.vec(c);
  encode_cov_record(e, k);
  stage_type_ = ChunkType::kEvolve;
  staged_ = true;
}

void SessionJournal::stage_observe(const la::Matrix& g, const la::Vector& o,
                                   const kalman::CovFactor& l) {
  stage_.clear();
  Encoder e(stage_);
  e.mat(g);
  e.vec(o);
  encode_cov_record(e, l);
  stage_type_ = ChunkType::kObserve;
  staged_ = true;
}

void SessionJournal::stage_reset(la::index n0) {
  stage_.clear();
  Encoder e(stage_);
  e.i64(n0);
  stage_type_ = ChunkType::kReset;
  staged_ = true;
}

void SessionJournal::stage_open_nonlinear(const NonlinearSnapshot& s) {
  stage_.clear();
  Encoder e(stage_);
  encode_nonlinear_snapshot(e, s, /*with_means=*/false);
  stage_type_ = ChunkType::kOpenNonlinear;
  staged_ = true;
}

void SessionJournal::stage_advance(const la::Vector& obs) {
  stage_.clear();
  Encoder e(stage_);
  e.vec(obs);
  stage_type_ = ChunkType::kAdvance;
  staged_ = true;
}

void SessionJournal::commit() {
  if (!staged_) return;
  staged_ = false;
  if (file_.failed()) {
    // Poisoned journal: the in-memory session keeps serving, durability is
    // degraded and the gap is visible in this counter (and in the exception
    // the poisoning commit threw).
    journal_metrics().append_failures.add(1);
    return;
  }
  PITK_TRACE_SPAN("io.append");
  file_.append(static_cast<std::uint8_t>(stage_type_), stage_);
  ++tail_records_;
  journal_metrics().appends.add(1);
  if (opts_.flush == FlushPolicy::EveryAppend) {
    if (opts_.fsync_every_append)
      file_.sync();
    else
      file_.flush();
  }
}

bool SessionJournal::wants_compaction() const noexcept {
  return opts_.compact_every > 0 && tail_records_ >= opts_.compact_every &&
         !file_.failed();
}

void SessionJournal::compact_linear(const kalman::IncrementalFilter& filter) {
  filter.snapshot_state(snap_scratch_);
  snap_buf_.clear();
  Encoder e(snap_buf_);
  encode_filter_snapshot(e, snap_scratch_);
  compact_with(ChunkType::kSnapshot);
}

void SessionJournal::compact_nonlinear(const NonlinearSnapshot& s) {
  snap_buf_.clear();
  Encoder e(snap_buf_);
  encode_nonlinear_snapshot(e, s, /*with_means=*/true);
  compact_with(ChunkType::kNonlinearSnapshot);
}

void SessionJournal::compact_with(ChunkType type) {
  PITK_TRACE_SPAN("io.compact");
  JournalMetrics& m = journal_metrics();
  try {
    ChunkFile nf = ChunkFile::create(compact_path_, static_cast<std::uint32_t>(kind_));
    nf.append(static_cast<std::uint8_t>(type), snap_buf_);
    nf.sync();
    const std::string journal_path = file_.path();
    if (std::rename(compact_path_.c_str(), journal_path.c_str()) != 0)
      throw std::runtime_error("SessionJournal: rename of compacted journal failed");
    fsync_parent_dir(journal_path);
    // The rename is the commit point.  Reopen under the journal name for
    // further appends; the old journal's fd (and any bytes it still
    // buffered — all subsumed by the snapshot) is dropped by the move
    // assignment.
    const std::uint64_t end = nf.flushed_bytes();
    nf.close();
    file_ = ChunkFile::append_at(journal_path, end);
    tail_records_ = 0;
    m.compactions.add(1);
  } catch (...) {
    // The old journal is still intact and append-able; drop the staging
    // file and retry at the next threshold crossing.
    ::unlink(compact_path_.c_str());
    m.compaction_failures.add(1);
  }
}

// ---- decoding ----

la::index decode_open_linear(std::span<const std::byte> payload) {
  Decoder d(payload);
  return d.dim();
}

void decode_evolve(std::span<const std::byte> payload, EvolveRecord& out) {
  Decoder d(payload);
  const bool has_h = d.u8() != 0;
  out.n_new = d.dim();
  if (has_h)
    d.mat(out.h);
  else
    out.h.resize(0, 0);
  d.mat(out.f);
  d.vec(out.c);
  out.k = d.cov();
}

void decode_observe(std::span<const std::byte> payload, ObserveRecord& out) {
  Decoder d(payload);
  d.mat(out.g);
  d.vec(out.o);
  out.l = d.cov();
}

la::index decode_reset(std::span<const std::byte> payload) {
  Decoder d(payload);
  return d.dim();
}

void decode_snapshot(std::span<const std::byte> payload, kalman::FilterSnapshot& out) {
  Decoder d(payload);
  out.step = d.dim();
  out.n = d.dim();
  out.epoch = d.u64();
  d.mat(out.pending);
  d.vec(out.pending_rhs);
  const std::uint64_t blocks = d.u64();
  if (blocks > payload.size())  // each block costs >= 1 byte; cheap sanity cap
    throw CorruptJournal("journal decode: snapshot block count out of range");
  out.finished.diag.resize(static_cast<std::size_t>(blocks));
  out.finished.sup.resize(static_cast<std::size_t>(blocks));
  out.finished.rhs.resize(static_cast<std::size_t>(blocks));
  for (std::size_t i = 0; i < blocks; ++i) {
    d.mat(out.finished.diag[i]);
    d.mat(out.finished.sup[i]);
    d.vec(out.finished.rhs[i]);
  }
}

void decode_nonlinear_snapshot(std::span<const std::byte> payload, NonlinearSnapshot& out) {
  Decoder d(payload);
  out.k = d.dim();
  const std::uint64_t ndims = d.u64();
  if (ndims > payload.size())
    throw CorruptJournal("journal decode: nonlinear dims count out of range");
  out.dims.resize(static_cast<std::size_t>(ndims));
  for (auto& v : out.dims) v = d.dim();
  const std::uint64_t nobs = d.u64();
  if (nobs > payload.size())
    throw CorruptJournal("journal decode: nonlinear obs count out of range");
  out.obs.resize(static_cast<std::size_t>(nobs));
  for (auto& o : out.obs) d.vec(o);
  d.vec(out.u0);
  const std::uint64_t nmeans = d.u64();
  if (nmeans > payload.size())
    throw CorruptJournal("journal decode: nonlinear means count out of range");
  out.means.resize(static_cast<std::size_t>(nmeans));
  for (auto& m : out.means) d.vec(m);
}

void decode_advance(std::span<const std::byte> payload, la::Vector& out) {
  Decoder d(payload);
  d.vec(out);
}

}  // namespace pitk::io
