#pragma once

/// \file chunk.hpp
/// Crash-consistent binary chunk files: the on-disk substrate of the
/// durability layer.
///
/// A chunk file is a 16-byte header (magic, format version, payload kind)
/// followed by length-prefixed chunks, each carrying a CRC32C over its type
/// byte and payload:
///
///   header:  "PITKJNL1" | u32 version | u32 kind
///   chunk:   u32 payload_len | u32 crc32c(type ++ payload) | u8 type | payload
///
/// Integers are little-endian (every platform this repository targets); a
/// journal is a single-host artifact, not a wire format.  The two properties
/// the layer guarantees:
///
///  - *Torn tails are expected, not fatal.*  A crash (kill -9, power loss)
///    can leave a partially written final chunk.  scan_chunk_file() validates
///    chunks front to back and stops at the first incomplete or
///    CRC-mismatching tail, reporting every chunk before it plus the byte
///    offset the file should be truncated to before further appends.
///  - *Mid-file corruption is detected, never silently replayed.*  A chunk
///    that fails its CRC while complete chunks follow it cannot be a torn
///    tail; the scan throws CorruptJournal (the `io.corrupt` fault site
///    manufactures exactly this case in tests).
///
/// ChunkFile is the buffered append-side: writes accumulate in memory and
/// reach the OS on flush() (policy decided by the caller — see
/// io::FlushPolicy), with sync() adding an fsync.  The `io.write` fault site
/// fires inside flush() and emulates a crash by persisting only a prefix of
/// the buffered bytes before throwing; `io.fsync` fails the fsync.  After
/// any write failure the file object is poisoned — further appends throw —
/// because appending past a torn tail would turn a recoverable truncation
/// into unrecoverable mid-file corruption.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pitk::io {

/// CRC32C (Castagnoli), table-driven.  `seed` chains partial computations.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t n,
                                   std::uint32_t seed = 0) noexcept;

inline constexpr std::size_t kFileHeaderSize = 16;
inline constexpr std::size_t kChunkOverhead = 9;  ///< len + crc + type byte
inline constexpr std::uint32_t kFormatVersion = 1;
/// Largest payload a well-formed chunk may carry (1 GiB); a mid-file length
/// beyond this is corruption, not a big chunk.
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 30;

/// Hard (non-tail) corruption: bad magic, unsupported version, mid-file CRC
/// mismatch, or a decoder running off the end of a validated payload.
struct CorruptJournal : std::runtime_error {
  explicit CorruptJournal(const std::string& what) : std::runtime_error(what) {}
};

/// Buffered append-side handle.  Not thread-safe; the owning session's lock
/// serializes access.
class ChunkFile {
 public:
  ChunkFile() = default;
  ChunkFile(ChunkFile&& other) noexcept;
  ChunkFile& operator=(ChunkFile&& other) noexcept;
  ChunkFile(const ChunkFile&) = delete;
  ChunkFile& operator=(const ChunkFile&) = delete;
  ~ChunkFile();

  /// Create (or overwrite) `path` and write the file header; the header is
  /// flushed and fsynced immediately so a journal's existence is durable
  /// from the moment it is opened.
  [[nodiscard]] static ChunkFile create(const std::string& path, std::uint32_t kind);

  /// Reopen an existing chunk file for appending after recovery: the file is
  /// truncated to `valid_end` (discarding a torn tail reported by
  /// scan_chunk_file) and positioned there.
  [[nodiscard]] static ChunkFile append_at(const std::string& path, std::uint64_t valid_end);

  /// Buffer one chunk.  The `io.corrupt` fault site flips one payload byte
  /// *after* the CRC is computed, planting a detectable mismatch.
  void append(std::uint8_t type, std::span<const std::byte> payload);

  /// Push buffered bytes to the OS (`io.write` fault site: persists a prefix
  /// then throws, emulating a crash mid-write).
  void flush();

  /// flush() + fsync (`io.fsync` fault site fires before the fsync).
  void sync();

  /// flush + fsync + close; the destructor does a best-effort flush+close
  /// without throwing.
  void close();

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  /// True once a write failed; every later append/flush refuses to run.
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Bytes durably handed to the OS (header included), i.e. the offset a
  /// clean kill at this instant would leave the file at.
  [[nodiscard]] std::uint64_t flushed_bytes() const noexcept { return flushed_; }
  /// Bytes appended (header included), counting the not-yet-flushed buffer.
  [[nodiscard]] std::uint64_t appended_bytes() const noexcept {
    return flushed_ + buf_.size();
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::vector<std::byte> buf_;  ///< bytes appended but not yet written
  std::uint64_t flushed_ = 0;
  bool failed_ = false;
};

/// One validated chunk; `payload` points into ScanResult::bytes.
struct ChunkView {
  std::uint8_t type = 0;
  std::span<const std::byte> payload;
};

/// Everything a recovery pass needs to know about one chunk file.
struct ScanResult {
  std::uint32_t kind = 0;         ///< header kind field
  std::vector<std::byte> bytes;   ///< the whole file (chunk payloads point here)
  std::vector<ChunkView> chunks;  ///< validated chunks, in file order
  std::uint64_t valid_end = 0;    ///< truncate-to offset for further appends
  bool torn_tail = false;         ///< trailing bytes after valid_end were discarded
  /// File too short to hold the header (a crash before the header flush
  /// completed): no chunk can be recovered, but it is not corruption either.
  bool torn_header = false;
};

/// Read and validate `path` front to back (see the file comment for the
/// torn-tail vs corruption contract).  Throws CorruptJournal on bad magic,
/// unsupported version, or mid-file corruption; throws std::runtime_error
/// when the file cannot be read at all.
[[nodiscard]] ScanResult scan_chunk_file(const std::string& path);

/// fsync the directory containing `path` (making a create/rename durable);
/// best-effort on filesystems that refuse directory fsync.
void fsync_parent_dir(const std::string& path);

}  // namespace pitk::io
