#pragma once

/// \file pitk.hpp
/// Top-level public umbrella: one include for downstream users, so they
/// stop reaching into subsystem-internal headers.  Pulls in the engine
/// (jobs, sessions, recovery), the sharded serving tier, observability
/// (metrics registry + Chrome traces), fault injection, and the durable
/// session store.  Kernel-level headers (la/, core/, kalman/) stay
/// subsystem-internal except for the model/simulate vocabulary the public
/// API already exposes through these.

#include "engine/backend.hpp"
#include "engine/control.hpp"
#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "fault/fault.hpp"
#include "io/journal.hpp"
#include "io/session_store.hpp"
#include "kalman/model.hpp"
#include "kalman/simulate.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pitk/serve.hpp"
