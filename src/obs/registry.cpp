#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pitk::obs {

namespace {

/// Render a double the way both JSON and Prometheus accept: shortest-ish
/// round-trippable decimal.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; this repo's dotted
/// names ("pitk.engine.solve_seconds.odd-even") map '.'/'-' (and anything
/// else outside the class) to '_'.
std::string prom_sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
                    (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("_") : out;
}

/// PITK_METRICS=<path>: dump a snapshot of the global registry at process
/// exit (Prometheus text when the path ends ".prom", JSON otherwise), so any
/// binary — benches, examples, tests — is inspectable without code changes.
void dump_at_exit() {
  if (const char* path = std::getenv("PITK_METRICS"))
    (void)MetricsRegistry::global().write(path);
}

struct ExitDumpInstaller {
  ExitDumpInstaller() {
    if (std::getenv("PITK_METRICS") != nullptr) std::atexit(dump_at_exit);
  }
};
ExitDumpInstaller install_exit_dump;

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Constructed on first use and intentionally never destroyed: threads that
  // outlive main() (detached helpers racing shutdown) can keep recording
  // into stable metric references.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

bool MetricsRegistry::name_taken_elsewhere(std::string_view name, const void* except) const {
  const auto taken = [&](const auto& entries) {
    if (static_cast<const void*>(&entries) == except) return false;
    return std::any_of(entries.begin(), entries.end(),
                       [&](const auto& e) { return e.name == name; });
  };
  return taken(counters_) || taken(gauges_) || taken(histograms_);
}

template <class M>
M& MetricsRegistry::get_or_create(std::vector<Entry<M>>& entries, std::string_view name,
                                  const char* kind) {
  std::lock_guard<std::mutex> lk(mu_);
  for (Entry<M>& e : entries)
    if (e.name == name) return *e.metric;
  if (name_taken_elsewhere(name, &entries))
    throw std::invalid_argument("MetricsRegistry: \"" + std::string(name) +
                                "\" already registered as a different kind than " + kind);
  entries.push_back(Entry<M>{std::string(name), std::make_unique<M>()});
  return *entries.back().metric;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(counters_, name, "counter");
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(gauges_, name, "gauge");
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(histograms_, name, "histogram");
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.counters.reserve(counters_.size());
    for (const Entry<Counter>& e : counters_) s.counters.emplace_back(e.name, e.metric->value());
    s.gauges.reserve(gauges_.size());
    for (const Entry<Gauge>& e : gauges_) s.gauges.emplace_back(e.name, e.metric->value());
    s.histograms.reserve(histograms_.size());
    for (const Entry<Histogram>& e : histograms_)
      s.histograms.emplace_back(e.name, e.metric->snapshot());
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.gauges.begin(), s.gauges.end(), by_name);
  std::sort(s.histograms.begin(), s.histograms.end(), by_name);
  return s;
}

std::string MetricsRegistry::to_json(const MetricsSnapshot& s) {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + json_escape(s.counters[i].first) +
           "\": " + std::to_string(s.counters[i].second);
  }
  out += s.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + json_escape(s.gauges[i].first) + "\": " + fmt_double(s.gauges[i].second);
  }
  out += s.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const HistogramSnapshot& h = s.histograms[i].second;
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + json_escape(s.histograms[i].first) + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + fmt_double(h.sum());
    out += ", \"mean\": " + fmt_double(h.mean());
    out += ", \"p50\": " + fmt_double(h.quantile(0.50));
    out += ", \"p90\": " + fmt_double(h.quantile(0.90));
    out += ", \"p99\": " + fmt_double(h.quantile(0.99));
    out += "}";
  }
  out += s.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus(const MetricsSnapshot& s) {
  std::string out;
  for (const auto& [name, value] : s.counters) {
    const std::string n = prom_sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    const std::string n = prom_sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt_double(value) + "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string n = prom_sanitize(name);
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + fmt_double(h.quantile(0.50)) + "\n";
    out += n + "{quantile=\"0.9\"} " + fmt_double(h.quantile(0.90)) + "\n";
    out += n + "{quantile=\"0.99\"} " + fmt_double(h.quantile(0.99)) + "\n";
    out += n + "_sum " + fmt_double(h.sum()) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

bool MetricsRegistry::write(const std::string& path) const {
  const bool prom = path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string body = prom ? to_prometheus() : to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "pitk::obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "pitk::obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace pitk::obs
