#pragma once

/// \file registry.hpp
/// Process-wide registry of named counters, gauges and latency histograms.
///
/// The registration/lookup side is deliberately cold: get-or-create takes a
/// mutex and may allocate the metric's name and slot, so instrumented code
/// registers once (engine construction, static init) and keeps the returned
/// reference.  The recording side is the reference itself — a relaxed atomic
/// add with no lock, no lookup and no allocation — which is what lets the
/// warm serving path stay at zero counted allocations with metrics on
/// (pinned in tests/core/test_alloc_free.cpp).
///
/// Metric references are stable for the life of the process: the registry
/// never erases a metric, and the global() instance is intentionally leaked
/// at shutdown order (a static local), so worker threads racing process
/// exit can still record safely.
///
/// Export: snapshot() freezes every metric into plain values; to_json() and
/// to_prometheus() render a snapshot as a JSON document or Prometheus text
/// exposition format (histograms as summaries with p50/p90/p99 quantiles).
/// Setting PITK_METRICS=<path> dumps the JSON snapshot to that path at
/// process exit (a path ending in `.prom` dumps the Prometheus rendering
/// instead), so any binary in this repo can be inspected without code
/// changes.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace pitk::obs {

/// Monotonically increasing event count.  add() is a relaxed atomic
/// increment: wait-free, allocation-free, any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, busy workers, utilization).  set() and
/// add() are lock-free and allocation-free; add() uses a CAS loop because
/// atomic<double>::fetch_add is not universally lock-free.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// One frozen view of every registered metric, ordered by name within each
/// kind.  Histograms carry their full bucket snapshot so callers can derive
/// any quantile, not just the exported ones.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem records into.
  [[nodiscard]] static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get or create the named metric.  Cold path (mutex + possible
  /// allocation); the returned reference is stable forever — register once,
  /// record through the reference.  A name is bound to the first kind it was
  /// requested as; requesting it as a different kind throws
  /// std::invalid_argument (silently aliasing two kinds under one exported
  /// name would corrupt dashboards).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// JSON document: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, p50, p90, p99}}}.
  [[nodiscard]] static std::string to_json(const MetricsSnapshot& s);
  [[nodiscard]] std::string to_json() const { return to_json(snapshot()); }

  /// Prometheus text exposition format: counters as `counter`, gauges as
  /// `gauge`, histograms as `summary` (quantile labels 0.5/0.9/0.99 plus
  /// _sum/_count).  Metric names are sanitized to [a-zA-Z0-9_:] as the
  /// format requires ('.' and '-' become '_').
  [[nodiscard]] static std::string to_prometheus(const MetricsSnapshot& s);
  [[nodiscard]] std::string to_prometheus() const { return to_prometheus(snapshot()); }

  /// Write a rendering of the current snapshot to `path`: Prometheus text
  /// when the path ends in ".prom", JSON otherwise.  Returns false (after
  /// printing to stderr) on I/O failure.
  bool write(const std::string& path) const;

 private:
  template <class M>
  struct Entry {
    std::string name;
    std::unique_ptr<M> metric;
  };

  template <class M>
  [[nodiscard]] M& get_or_create(std::vector<Entry<M>>& entries, std::string_view name,
                                 const char* kind);
  [[nodiscard]] bool name_taken_elsewhere(std::string_view name, const void* except) const;

  mutable std::mutex mu_;  ///< guards the entry vectors; metrics themselves are atomic
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

/// Convenience accessors on the global registry.
[[nodiscard]] inline Counter& counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}
[[nodiscard]] inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}
[[nodiscard]] inline Histogram& histogram(std::string_view name) {
  return MetricsRegistry::global().histogram(name);
}

}  // namespace pitk::obs
