#pragma once

/// \file histogram.hpp
/// Lock-free log-bucketed value histogram for latency percentiles.
///
/// The engine's aggregate EngineStats can say what the *mean* queue wait or
/// solve time is, but admission control and tenant SLOs (ROADMAP item 1) are
/// stated in percentiles — "p99 queue wait under 2 ms" — and a mean hides
/// exactly the tail those bounds are about.  This histogram is the
/// fixed-footprint primitive that makes percentiles observable on the warm
/// serving path:
///
///  - record() is one relaxed atomic increment plus a couple of bit
///    operations: wait-free, allocation-free, safe from any number of
///    threads concurrently (the engine records from every pool worker);
///  - storage is a fixed preallocated array of buckets whose boundaries grow
///    geometrically (HdrHistogram-style: 2^kSubBits linear sub-buckets per
///    power of two), so values spanning nanoseconds to hours share one
///    3%-relative-error resolution without per-range configuration;
///  - quantile() walks a relaxed snapshot of the buckets; it is meant for
///    snapshot/export paths and is merely lock-free, not consistent to a
///    single instant (exactly like reading any set of independent counters);
///  - merge() folds another histogram in bucket by bucket, so per-shard or
///    per-bench histograms aggregate without resampling.
///
/// Values are nonnegative doubles in whatever unit the caller picks
/// (seconds throughout this repo; iteration counts work just as well).  The
/// internal tick is 1e-9 of the unit, so sub-nanosecond latencies and zero
/// land in the first bucket and anything above ~9.2e9 units saturates the
/// last — both far outside any latency this engine can produce.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

namespace pitk::obs {

/// Aggregated view of a Histogram at one point in time: plain integers, safe
/// to copy around, query repeatedly, or serialize.  Obtained from
/// Histogram::snapshot(); quantiles on a snapshot are consistent with its
/// count/sum (quantiles straight on a live Histogram are not, under
/// concurrent recording).
struct HistogramSnapshot;

class Histogram {
 public:
  /// Linear sub-buckets per power of two; 2^5 = 32 gives a guaranteed
  /// relative quantile error of at most 1/32 ~ 3.1%.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  /// Tick octaves: a 64-bit tick count has 64 bit positions; the first
  /// kSubBits octaves collapse into the exact-ticks range below kSubCount.
  static constexpr int kBuckets = static_cast<int>((64 - kSubBits) * kSubCount + kSubCount);
  /// Value of one tick in caller units (1 ns when the unit is seconds).
  static constexpr double kTick = 1e-9;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one nonnegative value.  Wait-free, allocation-free; NaN and
  /// negative values are dropped (a poisoned timestamp must not corrupt the
  /// distribution).
  void record(double value) noexcept {
    if (!(value >= 0.0)) return;  // also filters NaN
    const std::uint64_t t = ticks(value);
    buckets_[bucket_index(t)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ticks_.fetch_add(t, std::memory_order_relaxed);
  }

  /// Total recorded values.
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of recorded values in caller units (tick-quantized).
  [[nodiscard]] double sum() const noexcept {
    return static_cast<double>(sum_ticks_.load(std::memory_order_relaxed)) * kTick;
  }

  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Value at quantile q in [0, 1] (0.5 = median), from a relaxed bucket
  /// walk.  Returns the geometric midpoint of the containing bucket, so the
  /// result is within 1/kSubCount relative error of the true sample
  /// quantile; 0 when nothing has been recorded.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Fold `other` into this histogram (bucket-wise adds).  Safe under
  /// concurrent record() on either side; the merged totals land atomically
  /// per bucket, not as one transaction.
  void merge(const Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    sum_ticks_.fetch_add(other.sum_ticks_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }

  /// Reset every bucket to zero.  Only meaningful when no thread is
  /// concurrently recording (a racing record may straddle the wipe).
  void clear() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ticks_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

  /// Bucket index of a tick count: exact for ticks below kSubCount, then
  /// kSubCount linear sub-buckets per additional octave.
  [[nodiscard]] static constexpr int bucket_index(std::uint64_t t) noexcept {
    if (t < kSubCount) return static_cast<int>(t);
    const int octave = std::bit_width(t) - 1;  // >= kSubBits
    const int sub = static_cast<int>((t >> (octave - kSubBits)) & (kSubCount - 1));
    return static_cast<int>((octave - kSubBits + 1) * kSubCount) + sub;
  }

  /// Inclusive lower bound (in ticks) of bucket i — the inverse of
  /// bucket_index() up to bucket resolution.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(int i) noexcept {
    const std::uint64_t u = static_cast<std::uint64_t>(i);
    if (u < kSubCount) return u;
    const std::uint64_t octave = u / kSubCount - 1 + kSubBits;
    const std::uint64_t sub = u % kSubCount;
    return (std::uint64_t{1} << octave) + (sub << (octave - kSubBits));
  }

  [[nodiscard]] static constexpr std::uint64_t ticks(double value) noexcept {
    const double t = value / kTick;
    // Saturate instead of overflowing into UB on absurd inputs.
    return t >= 9.2e18 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(t);
  }

 private:
  friend struct HistogramSnapshot;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ticks_{0};
};

struct HistogramSnapshot {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ticks = 0;

  [[nodiscard]] double sum() const noexcept {
    return static_cast<double>(sum_ticks) * Histogram::kTick;
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum() / static_cast<double>(count);
  }

  /// Same contract as Histogram::quantile, over the frozen buckets.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th order statistic, nearest-rank with interpolating
    // intent: ceil(q * count) clamped to [1, count].
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) return representative(i);
    }
    return representative(Histogram::kBuckets - 1);
  }

  /// Midpoint (in caller units) of bucket i's value range.
  [[nodiscard]] static double representative(int i) noexcept {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t hi = i + 1 < Histogram::kBuckets
                                 ? Histogram::bucket_lower(i + 1)
                                 : lo + (lo >> Histogram::kSubBits);
    return 0.5 * static_cast<double>(lo + hi) * Histogram::kTick;
  }
};

inline HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  // Count is read first and capped by the bucket sum a concurrent recorder
  // may still be publishing; the snapshot stays internally consistent by
  // recomputing count from the buckets actually seen.
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[static_cast<std::size_t>(i)];
  }
  s.sum_ticks = sum_ticks_.load(std::memory_order_relaxed);
  return s;
}

inline double Histogram::quantile(double q) const noexcept { return snapshot().quantile(q); }

}  // namespace pitk::obs
