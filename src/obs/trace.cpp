#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace pitk::obs::trace {

namespace {

/// Every thread's ring, owned here so the exporter can walk them all and so
/// rings survive their thread (a worker that exits before the trace is
/// written must not take its events with it).  Guarded by a mutex taken only
/// on ring creation and export — never on the record path.
struct RingDirectory {
  std::mutex mu;
  std::vector<std::unique_ptr<detail::ThreadRing>> rings;
};

RingDirectory& directory() {
  // Leaked like the metrics registry: threads racing process exit may still
  // touch their rings.
  static RingDirectory* d = new RingDirectory();
  return *d;
}

/// PITK_TRACE=<file.json>: recording on from process start, trace written at
/// exit.  The static initializer only flips an atomic and registers the hook,
/// so initialization order against other translation units is harmless.
const char* exit_path() {
  static const char* path = std::getenv("PITK_TRACE");
  return path;
}

void write_at_exit() {
  if (const char* path = exit_path()) (void)write(path);
}

struct EnvInstaller {
  EnvInstaller() {
    if (exit_path() != nullptr) {
      detail::enabled_flag.store(true, std::memory_order_relaxed);
      std::atexit(write_at_exit);
    }
  }
};
EnvInstaller install_from_env;

}  // namespace

namespace detail {

std::uint64_t now_ns() noexcept {
  // One process-wide epoch so timestamps from different threads share an
  // origin; magic-static init is thread-safe.
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

ThreadRing& tls_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    RingDirectory& dir = directory();
    std::lock_guard<std::mutex> lk(dir.mu);
    dir.rings.push_back(
        std::make_unique<ThreadRing>(static_cast<std::uint32_t>(dir.rings.size() + 1)));
    ring = dir.rings.back().get();
  }
  return *ring;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::enabled_flag.store(on, std::memory_order_relaxed);
}

void clear() noexcept {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lk(dir.mu);
  for (auto& r : dir.rings) {
    r->head.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t event_count() noexcept {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lk(dir.mu);
  std::uint64_t n = 0;
  for (const auto& r : dir.rings) n += r->head.load(std::memory_order_acquire);
  return n;
}

std::uint64_t dropped_count() noexcept {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lk(dir.mu);
  std::uint64_t n = 0;
  for (const auto& r : dir.rings) n += r->dropped.load(std::memory_order_relaxed);
  return n;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(*s) < 0x20) continue;
    out.push_back(*s);
  }
}

void append_event(std::string& out, bool& first, const char* name, char phase,
                  std::uint64_t ts_ns, std::uint32_t tid) {
  char buf[96];
  out += first ? "\n    " : ",\n    ";
  first = false;
  out += "{\"name\": \"";
  append_escaped(out, name);
  std::snprintf(buf, sizeof buf, "\", \"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u",
                phase, static_cast<double>(ts_ns) / 1e3, tid);
  out += buf;
  if (phase == 'i') out += ", \"s\": \"t\"";
  out += "}";
}

}  // namespace

std::string to_json() {
  // Snapshot the ring set and each head under the directory lock; record
  // slots below a head are immutable (write-once, release-published), so
  // reading them after the acquire load is race-free even while other
  // threads keep recording into later slots.
  struct RingView {
    const detail::ThreadRing* ring;
    std::uint64_t head;
  };
  std::vector<RingView> views;
  std::uint64_t dropped = 0;
  {
    RingDirectory& dir = directory();
    std::lock_guard<std::mutex> lk(dir.mu);
    views.reserve(dir.rings.size());
    for (const auto& r : dir.rings) {
      views.push_back({r.get(), r->head.load(std::memory_order_acquire)});
      dropped += r->dropped.load(std::memory_order_relaxed);
    }
  }

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"pitk_dropped_events\": " + std::to_string(dropped) + ",\n";
  out += "  \"traceEvents\": [";
  bool first = true;
  for (const RingView& v : views) {
    // Spans were pushed at scope exit (end-time order); re-sort by start —
    // parents before the children they enclose (longer duration breaks start
    // ties) — then sweep with a stack so each thread's B/E stream is
    // well-nested and balanced by construction.
    std::vector<const detail::Record*> recs;
    recs.reserve(static_cast<std::size_t>(v.head));
    for (std::uint64_t i = 0; i < v.head; ++i) recs.push_back(&v.ring->records[i]);
    std::sort(recs.begin(), recs.end(), [](const detail::Record* a, const detail::Record* b) {
      if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
      return a->dur_ns > b->dur_ns;
    });

    std::vector<const detail::Record*> open;  // enclosing spans, outermost first
    for (const detail::Record* r : recs) {
      while (!open.empty() && open.back()->start_ns + open.back()->dur_ns <= r->start_ns) {
        append_event(out, first, open.back()->name, 'E',
                     open.back()->start_ns + open.back()->dur_ns, v.ring->tid);
        open.pop_back();
      }
      if (r->span) {
        append_event(out, first, r->name, 'B', r->start_ns, v.ring->tid);
        open.push_back(r);
      } else {
        append_event(out, first, r->name, 'i', r->start_ns, v.ring->tid);
      }
    }
    while (!open.empty()) {
      append_event(out, first, open.back()->name, 'E',
                   open.back()->start_ns + open.back()->dur_ns, v.ring->tid);
      open.pop_back();
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool write(const std::string& path) {
  const std::string body = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "pitk::obs::trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "pitk::obs::trace: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace pitk::obs::trace
