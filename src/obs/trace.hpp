#pragma once

/// \file trace.hpp
/// Scoped-span tracing into preallocated per-thread ring buffers, exported
/// as Chrome trace-event JSON (chrome://tracing / Perfetto "traceEvents").
///
/// Metrics answer "how slow is p99"; a trace answers "what happened inside
/// that one slow job" — queue wait, splice, inner solves, which worker ran
/// what, interleaved across every thread.  The design keeps the recording
/// side worthy of the warm path:
///
///  - disabled (the default), TRACE_SPAN costs one relaxed atomic load and a
///    predictable branch — nanoseconds, no clock read, no store;
///  - enabled, a span is two steady_clock reads and one fixed-size record
///    appended to the calling thread's preallocated ring: no lock, no
///    allocation, no cross-thread traffic (the ring is allocated once on a
///    thread's first event — a cold, uncounted setup cost);
///  - rings are bounded: when full, new events are dropped and counted
///    (never overwritten — a monotonic head with release publication is what
///    lets the exporter read concurrently without a data race);
///  - span names must be string literals (or otherwise outlive the trace):
///    the record stores the pointer, never copies.
///
/// Spans are recorded as one record at scope exit (start + duration) and
/// exported as balanced Chrome "B"/"E" event pairs; instant() records a
/// zero-duration mark exported as an "i" event.
///
/// Enable by environment — PITK_TRACE=<file.json> turns tracing on at
/// process start and writes the trace at exit — or programmatically via
/// set_enabled() / write().

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace pitk::obs::trace {

namespace detail {
/// The global on/off latch.  Inline so the disabled check compiles to one
/// relaxed load of a known address at every instrumentation site.
inline std::atomic<bool> enabled_flag{false};

struct Record {
  const char* name;        ///< literal; not owned
  std::uint64_t start_ns;  ///< since the process trace epoch
  std::uint64_t dur_ns;    ///< span duration; 0 for instant events too
  bool span;               ///< true: B/E pair on export; false: instant "i"
};

/// Fixed-capacity per-thread ring.  Only the owning thread writes; head is
/// published with release so the exporter's acquire read makes every record
/// below it visible without locks.  Full means drop-and-count: records are
/// write-once between clears, which is what keeps concurrent export race-free.
struct ThreadRing {
  static constexpr std::size_t kCapacity = 1u << 15;  ///< 32768 events/thread

  explicit ThreadRing(std::uint32_t tid_) : tid(tid_) {}

  std::uint32_t tid;
  std::atomic<std::uint64_t> head{0};     ///< records published so far
  std::atomic<std::uint64_t> dropped{0};  ///< events lost to a full ring
  Record records[kCapacity];

  void push(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
            bool span) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    records[h] = Record{name, start_ns, dur_ns, span};
    head.store(h + 1, std::memory_order_release);
  }
};

/// The calling thread's ring, created and registered on first use.
[[nodiscard]] ThreadRing& tls_ring();

[[nodiscard]] std::uint64_t now_ns() noexcept;
}  // namespace detail

/// Cheap global check every instrumentation site branches on.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::enabled_flag.load(std::memory_order_relaxed);
}

/// Turn recording on/off.  Existing records are kept; clear() discards them.
void set_enabled(bool on) noexcept;

/// Drop all recorded events (ring heads rewind).  Only safe while no thread
/// is concurrently recording — quiesce (e.g. SmootherEngine::wait_idle) or
/// set_enabled(false) first.
void clear() noexcept;

/// Record a zero-duration instant event on the calling thread.
inline void instant(const char* name) noexcept {
  if (!enabled()) return;
  detail::tls_ring().push(name, detail::now_ns(), 0, /*span=*/false);
}

/// Total events currently recorded across all thread rings, and the number
/// dropped to full rings (diagnostics / tests).
[[nodiscard]] std::uint64_t event_count() noexcept;
[[nodiscard]] std::uint64_t dropped_count() noexcept;

/// Serialize every thread's events as a Chrome trace-event JSON document:
/// {"traceEvents": [...], ...}.  Spans become balanced "B"/"E" pairs,
/// instants become "i"; timestamps are microseconds since the trace epoch.
/// Safe to call while recording continues (events published after the
/// snapshot are simply not included).
[[nodiscard]] std::string to_json();

/// Write to_json() to `path`; false (after printing to stderr) on failure.
bool write(const std::string& path);

/// RAII scoped span: records [construction, destruction) of the enclosing
/// scope under `name` on the calling thread.  The enabled check happens at
/// construction; a span that starts enabled records even if tracing is
/// switched off mid-scope (droppable noise, never a torn record).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? detail::now_ns() : 0) {}

  ~TraceSpan() {
    if (name_ != nullptr)
      detail::tls_ring().push(name_, start_ns_, detail::now_ns() - start_ns_, /*span=*/true);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
};

}  // namespace pitk::obs::trace

/// Convenience macro for the common case: one span covering the rest of the
/// enclosing scope.  `name` must be a string literal (see file comment).
#define PITK_TRACE_CONCAT2(a, b) a##b
#define PITK_TRACE_CONCAT(a, b) PITK_TRACE_CONCAT2(a, b)
#define PITK_TRACE_SPAN(name) \
  ::pitk::obs::trace::TraceSpan PITK_TRACE_CONCAT(pitk_trace_span_, __LINE__)(name)
