#pragma once

/// \file io.hpp
/// Plain-text serialization of smoothing problems and results.
///
/// The format is line-oriented and self-describing (see write_problem), so
/// datasets can be produced by other tools/languages, versioned, and diffed.
/// Covariances are stored in their CovFactor form (identity / diagonal /
/// dense) to round-trip exactly.

#include <iosfwd>
#include <string>

#include "kalman/model.hpp"

namespace pitk::kalman {

/// Serialize a problem.  Format sketch:
///
///   pitk-problem 1
///   states <count>
///   state <i> <n_i>
///   evolution <l> <H|identity>
///   F <l x n_prev doubles, row major>
///   [H <l x n_i doubles>]
///   c <l doubles> | c zero
///   K identity <l> | K diagonal <l> <v...> | K dense <l> <cov row major>
///   observation <m>
///   G ... / o ... / L ...
///   end
void write_problem(std::ostream& os, const Problem& p);

/// Parse a problem written by write_problem.
/// Throws std::runtime_error with a line-context message on malformed input.
[[nodiscard]] Problem read_problem(std::istream& is);

/// File-path conveniences.
void save_problem(const std::string& path, const Problem& p);
[[nodiscard]] Problem load_problem(const std::string& path);

/// Write a smoothing result as CSV: one row per state with the mean
/// components and (when present) the 1-sigma standard deviations.
void write_result_csv(std::ostream& os, const SmootherResult& result);

/// Decoded write_result_csv output.  The CSV stores per-component 1-sigma
/// standard deviations, not full covariance blocks, so this is the exact
/// inverse of what the CSV carries (not of a SmootherResult).
struct ResultCsv {
  std::vector<la::Vector> means;   ///< one per state, in order
  std::vector<la::Vector> sigmas;  ///< empty when the csv had no sigma column
  [[nodiscard]] bool has_sigmas() const noexcept { return !sigmas.empty(); }
};

/// Parse CSV produced by write_result_csv.  Throws std::runtime_error with a
/// line-context message on malformed input (bad header, non-consecutive
/// state/component indices, missing fields, trailing junk).
[[nodiscard]] ResultCsv read_result_csv(std::istream& is);

}  // namespace pitk::kalman
