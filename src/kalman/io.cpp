#include "kalman/io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pitk::kalman {

namespace {

using la::index;

void write_matrix_values(std::ostream& os, la::ConstMatrixView m) {
  for (index i = 0; i < m.rows(); ++i)
    for (index j = 0; j < m.cols(); ++j) os << ' ' << m(i, j);
}

void write_cov(std::ostream& os, const char* label, const CovFactor& f) {
  os << label << ' ';
  switch (f.kind()) {
    case CovFactor::Kind::Identity:
      os << "identity " << f.dim();
      break;
    case CovFactor::Kind::Diagonal: {
      os << "diagonal " << f.dim();
      const Matrix c = f.covariance();
      for (index i = 0; i < f.dim(); ++i) os << ' ' << c(i, i);
      break;
    }
    case CovFactor::Kind::Dense: {
      os << "dense " << f.dim();
      write_matrix_values(os, f.covariance().view());
      break;
    }
  }
  os << '\n';
}

/// Tokenizing reader with line tracking for useful error messages.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::string word() {
    std::string w;
    if (!(is_ >> w)) fail("unexpected end of input");
    return w;
  }

  index integer() {
    index v = 0;
    if (!(is_ >> v)) fail("expected an integer");
    return v;
  }

  double real() {
    double v = 0.0;
    if (!(is_ >> v)) fail("expected a number");
    return v;
  }

  void expect(const std::string& token) {
    const std::string w = word();
    if (w != token) fail("expected '" + token + "', found '" + w + "'");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("read_problem: " + what);
  }

  Matrix matrix(index rows, index cols) {
    Matrix m(rows, cols);
    for (index i = 0; i < rows; ++i)
      for (index j = 0; j < cols; ++j) m(i, j) = real();
    return m;
  }

  Vector vector(index n) {
    Vector v(n);
    for (index i = 0; i < n; ++i) v[i] = real();
    return v;
  }

  CovFactor cov(index expected_dim) {
    const std::string kind = word();
    const index dim = integer();
    if (dim != expected_dim) fail("covariance dimension mismatch");
    if (kind == "identity") return CovFactor::identity(dim);
    if (kind == "diagonal") return CovFactor::diagonal(vector(dim));
    if (kind == "dense") return CovFactor::dense(matrix(dim, dim));
    fail("unknown covariance kind '" + kind + "'");
  }

 private:
  std::istream& is_;
};

}  // namespace

void write_problem(std::ostream& os, const Problem& p) {
  os << std::setprecision(17);
  os << "pitk-problem 1\n";
  os << "states " << p.num_states() << '\n';
  for (index i = 0; i < p.num_states(); ++i) {
    const TimeStep& s = p.step(i);
    os << "state " << i << ' ' << s.n << '\n';
    if (s.evolution) {
      const Evolution& e = *s.evolution;
      os << "evolution " << e.rows() << ' ' << (e.identity_h() ? "identity" : "H") << '\n';
      os << "F";
      write_matrix_values(os, e.F.view());
      os << '\n';
      if (!e.identity_h()) {
        os << "H";
        write_matrix_values(os, e.H.view());
        os << '\n';
      }
      if (e.c.empty()) {
        os << "c zero\n";
      } else {
        os << "c";
        for (index q = 0; q < e.c.size(); ++q) os << ' ' << e.c[q];
        os << '\n';
      }
      write_cov(os, "K", e.noise);
    }
    if (s.observation) {
      const Observation& ob = *s.observation;
      os << "observation " << ob.rows() << '\n';
      os << "G";
      write_matrix_values(os, ob.G.view());
      os << '\n';
      os << "o";
      for (index q = 0; q < ob.o.size(); ++q) os << ' ' << ob.o[q];
      os << '\n';
      write_cov(os, "L", ob.noise);
    }
  }
  os << "end\n";
}

Problem read_problem(std::istream& is) {
  Reader r(is);
  r.expect("pitk-problem");
  if (r.integer() != 1) r.fail("unsupported format version");
  r.expect("states");
  const index count = r.integer();
  if (count <= 0) r.fail("state count must be positive");

  std::vector<TimeStep> steps(static_cast<std::size_t>(count));
  index cur = -1;  // state currently being filled
  for (;;) {
    const std::string tok = r.word();
    if (tok == "end") break;

    if (tok == "state") {
      const index i = r.integer();
      if (i != cur + 1) r.fail("state indices must be consecutive from 0");
      if (i >= count) r.fail("more states than declared");
      cur = i;
      steps[static_cast<std::size_t>(cur)].n = r.integer();
      if (steps[static_cast<std::size_t>(cur)].n <= 0)
        r.fail("state dimension must be positive");
      continue;
    }

    if (cur < 0) r.fail("'" + tok + "' before the first state");
    TimeStep& s = steps[static_cast<std::size_t>(cur)];

    if (tok == "evolution") {
      if (cur == 0) r.fail("state 0 cannot have an evolution");
      if (s.evolution) r.fail("duplicate evolution");
      const index prev_n = steps[static_cast<std::size_t>(cur - 1)].n;
      Evolution e;
      const index l = r.integer();
      const std::string hkind = r.word();
      r.expect("F");
      e.F = r.matrix(l, prev_n);
      if (hkind == "H") {
        r.expect("H");
        e.H = r.matrix(l, s.n);
      } else if (hkind != "identity") {
        r.fail("evolution H kind must be 'identity' or 'H'");
      }
      r.expect("c");
      {
        const std::string first = r.word();
        if (first != "zero") {
          Vector c(l);
          std::istringstream head(first);
          if (!(head >> c[0])) r.fail("expected 'zero' or numbers after c");
          for (index q = 1; q < l; ++q) c[q] = r.real();
          e.c = std::move(c);
        }
      }
      r.expect("K");
      e.noise = r.cov(l);
      s.evolution = std::move(e);
    } else if (tok == "observation") {
      if (s.observation) r.fail("duplicate observation");
      Observation ob;
      const index m = r.integer();
      r.expect("G");
      ob.G = r.matrix(m, s.n);
      r.expect("o");
      ob.o = r.vector(m);
      r.expect("L");
      ob.noise = r.cov(m);
      s.observation = std::move(ob);
    } else {
      r.fail("unexpected token '" + tok + "'");
    }
  }
  if (cur + 1 != count) r.fail("fewer states than declared");

  Problem p = Problem::from_steps(std::move(steps));
  if (auto err = p.validate()) throw std::runtime_error("read_problem: invalid problem: " + *err);
  return p;
}

void save_problem(const std::string& path, const Problem& p) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_problem: cannot open " + path);
  write_problem(os, p);
}

Problem load_problem(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_problem: cannot open " + path);
  return read_problem(is);
}

void write_result_csv(std::ostream& os, const SmootherResult& result) {
  os << std::setprecision(17);
  const bool with_cov = result.has_covariances();
  os << "state,component,mean" << (with_cov ? ",sigma" : "") << '\n';
  for (std::size_t i = 0; i < result.means.size(); ++i) {
    for (index q = 0; q < result.means[i].size(); ++q) {
      os << i << ',' << q << ',' << result.means[i][q];
      if (with_cov) os << ',' << std::sqrt(result.covariances[i](q, q));
      os << '\n';
    }
  }
}

ResultCsv read_result_csv(std::istream& is) {
  std::size_t lineno = 1;
  auto fail = [&lineno](const std::string& what) -> void {
    throw std::runtime_error("read_result_csv: line " + std::to_string(lineno) + ": " +
                             what);
  };
  std::string line;
  if (!std::getline(is, line)) fail("empty input");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  bool with_sigma = false;
  if (line == "state,component,mean,sigma")
    with_sigma = true;
  else if (line != "state,component,mean")
    fail("unrecognized header '" + line + "'");

  // Accumulate per-state rows in growable buffers (la::Vector::resize
  // zero-fills), converting once at the end.
  std::vector<std::vector<double>> means;
  std::vector<std::vector<double>> sigmas;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // tolerate a trailing blank line
    std::istringstream row(line);
    long long state = -1;
    long long comp = -1;
    double mean = 0.0;
    double sigma = 0.0;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    row >> state >> c1 >> comp >> c2 >> mean;
    if (!row || c1 != ',' || c2 != ',') fail("expected 'state,component,mean'");
    if (with_sigma) {
      row >> c3 >> sigma;
      if (!row || c3 != ',') fail("expected a sigma column");
    }
    row >> std::ws;
    if (!row.eof()) fail("trailing characters after the last column");
    if (state == static_cast<long long>(means.size())) {
      means.emplace_back();
      if (with_sigma) sigmas.emplace_back();
    } else if (state + 1 != static_cast<long long>(means.size())) {
      fail("state indices must be consecutive from 0");
    }
    if (comp != static_cast<long long>(means.back().size()))
      fail("component indices must be consecutive from 0");
    means.back().push_back(mean);
    if (with_sigma) sigmas.back().push_back(sigma);
  }

  ResultCsv out;
  out.means.resize(means.size());
  for (std::size_t i = 0; i < means.size(); ++i)
    out.means[i].assign_from(std::span<const double>(means[i]));
  out.sigmas.resize(sigmas.size());
  for (std::size_t i = 0; i < sigmas.size(); ++i)
    out.sigmas[i].assign_from(std::span<const double>(sigmas[i]));
  return out;
}

}  // namespace pitk::kalman
