#include "kalman/model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pitk::kalman {

Problem Problem::from_steps(std::vector<TimeStep> steps) {
  Problem p;
  p.steps_ = std::move(steps);
  return p;
}

void Problem::start(index n0) {
  if (!steps_.empty()) throw std::logic_error("Problem::start: already started");
  TimeStep s;
  s.n = n0;
  steps_.push_back(std::move(s));
}

void Problem::evolve(Matrix f, Vector c, CovFactor k) {
  if (steps_.empty()) throw std::logic_error("Problem::evolve: call start() first");
  const index n_new = f.rows();
  TimeStep s;
  s.n = n_new;
  Evolution e;
  e.F = std::move(f);
  e.c = std::move(c);
  e.noise = std::move(k);
  s.evolution = std::move(e);
  steps_.push_back(std::move(s));
}

void Problem::evolve_rect(index n_new, Matrix h, Matrix f, Vector c, CovFactor k) {
  if (steps_.empty()) throw std::logic_error("Problem::evolve_rect: call start() first");
  TimeStep s;
  s.n = n_new;
  Evolution e;
  e.H = std::move(h);
  e.F = std::move(f);
  e.c = std::move(c);
  e.noise = std::move(k);
  s.evolution = std::move(e);
  steps_.push_back(std::move(s));
}

void Problem::observe(Matrix g, Vector o, CovFactor l) {
  if (steps_.empty()) throw std::logic_error("Problem::observe: call start() first");
  Observation ob;
  ob.G = std::move(g);
  ob.o = std::move(o);
  ob.noise = std::move(l);
  steps_.back().observation = std::move(ob);
}

index Problem::total_state_dim() const noexcept {
  index total = 0;
  for (const auto& s : steps_) total += s.n;
  return total;
}

index Problem::total_row_dim() const noexcept {
  index total = 0;
  for (const auto& s : steps_) total += s.obs_rows() + s.evo_rows();
  return total;
}

std::optional<std::string> Problem::validate(bool require_overdetermined) const {
  auto fail = [](index i, const std::string& what) {
    std::ostringstream os;
    os << "step " << i << ": " << what;
    return os.str();
  };
  for (index i = 0; i < num_states(); ++i) {
    const TimeStep& s = step(i);
    if (s.n <= 0) return fail(i, "state dimension must be positive");
    if (i == 0 && s.evolution) return fail(i, "step 0 must not have an evolution");
    if (i > 0) {
      if (!s.evolution) return fail(i, "steps after the first need an evolution");
      const Evolution& e = *s.evolution;
      const index l = e.F.rows();
      if (e.F.cols() != step(i - 1).n)
        return fail(i, "F has " + std::to_string(e.F.cols()) + " cols, expected previous n");
      if (e.identity_h()) {
        if (l != s.n) return fail(i, "implicit identity H requires F rows == n_i");
      } else {
        if (e.H.rows() != l || e.H.cols() != s.n) return fail(i, "H shape mismatch");
      }
      if (!e.c.empty() && e.c.size() != l) return fail(i, "c length mismatch");
      if (e.noise.dim() != l) return fail(i, "evolution noise dimension mismatch");
    }
    if (s.observation) {
      const Observation& ob = *s.observation;
      if (ob.G.cols() != s.n) return fail(i, "G cols must equal n_i");
      if (ob.o.size() != ob.G.rows()) return fail(i, "o length must equal G rows");
      if (ob.noise.dim() != ob.G.rows()) return fail(i, "observation noise dimension mismatch");
      if (ob.G.rows() == 0) return fail(i, "empty observation should be absent, not zero-row");
    }
  }
  // Without a prior, the problem must be (dimensionally) over-determined.
  if (require_overdetermined && total_row_dim() < total_state_dim())
    return std::string("problem is under-determined: fewer equation rows than unknowns");
  return std::nullopt;
}

Problem with_prior_observation(const Problem& p, const GaussianPrior& prior) {
  if (p.num_states() == 0) throw std::invalid_argument("with_prior_observation: empty problem");
  Problem out = p;
  TimeStep& s0 = out.step(0);
  const index n0 = s0.n;
  if (prior.mean.size() != n0 || prior.cov.rows() != n0 || prior.cov.cols() != n0)
    throw std::invalid_argument("with_prior_observation: prior shape mismatch");
  Matrix g;
  Vector o;
  Matrix cov;
  if (s0.observation) {
    const Observation& ob = *s0.observation;
    // Stack [prior; existing observation] with block-diagonal covariance.
    const index m = ob.rows();
    g = la::vstack(Matrix::identity(n0), ob.G);
    o.resize(n0 + m);
    for (index i = 0; i < n0; ++i) o[i] = prior.mean[i];
    for (index i = 0; i < m; ++i) o[n0 + i] = ob.o[i];
    cov.resize(n0 + m, n0 + m);
    cov.block(0, 0, n0, n0).assign(prior.cov.view());
    cov.block(n0, n0, m, m).assign(ob.noise.covariance().view());
  } else {
    g = Matrix::identity(n0);
    o = prior.mean;
    cov = prior.cov;
  }
  Observation ob;
  ob.G = std::move(g);
  ob.o = std::move(o);
  ob.noise = CovFactor::dense(std::move(cov));
  s0.observation = std::move(ob);
  return out;
}

WeightedStepView weigh_step_into(const TimeStep& s, la::Workspace::Scope& scope) {
  WeightedStepView w;
  if (s.observation) {
    const Observation& ob = *s.observation;
    w.C = scope.mat(ob.rows(), s.n);
    w.C.assign(ob.G.view());
    ob.noise.weight_in_place(w.C);
    w.ow = scope.vec(ob.rows());
    std::copy(ob.o.span().begin(), ob.o.span().end(), w.ow.begin());
    ob.noise.weight_in_place(w.ow);
  } else {
    w.C = scope.mat(0, s.n);
    w.ow = scope.vec(0);
  }
  if (s.evolution) {
    const Evolution& e = *s.evolution;
    const index l = e.rows();
    w.B = scope.mat(l, e.F.cols());
    w.B.assign(e.F.view());
    e.noise.weight_in_place(w.B);
    w.D = scope.mat(l, s.n);
    if (e.identity_h()) {
      for (index i = 0; i < l; ++i) w.D(i, i) = 1.0;
    } else {
      w.D.assign(e.H.view());
    }
    e.noise.weight_in_place(w.D);
    w.cw = scope.vec(l);
    if (!e.c.empty()) {
      std::copy(e.c.span().begin(), e.c.span().end(), w.cw.begin());
      e.noise.weight_in_place(w.cw);
    }
  }
  return w;
}

WeightedStep weigh_step(const TimeStep& s) {
  WeightedStep w;
  if (s.observation) {
    const Observation& ob = *s.observation;
    w.C = ob.noise.weighted(ob.G.view());
    w.ow = ob.noise.weighted(ob.o.span());
  } else {
    w.C.resize(0, s.n);
    w.ow.resize(0);
  }
  if (s.evolution) {
    const Evolution& e = *s.evolution;
    const index l = e.rows();
    w.B = e.noise.weighted(e.F.view());
    if (e.identity_h()) {
      // D = V * I: the weighting applied to an identity block.
      Matrix d = Matrix::identity(s.n);
      e.noise.weight_in_place(d.view());
      w.D = std::move(d);
    } else {
      w.D = e.noise.weighted(e.H.view());
    }
    if (e.c.empty()) {
      w.cw.resize(l);
    } else {
      w.cw = e.noise.weighted(e.c.span());
    }
  }
  return w;
}

}  // namespace pitk::kalman
