#include "kalman/cov_factor.hpp"

#include <cmath>
#include <stdexcept>

#include "la/blas.hpp"
#include "la/cholesky.hpp"

namespace pitk::kalman {

CovFactor CovFactor::identity(index n) {
  CovFactor f;
  f.kind_ = Kind::Identity;
  f.dim_ = n;
  return f;
}

CovFactor CovFactor::scaled_identity(index n, double variance) {
  Vector v(n);
  for (index i = 0; i < n; ++i) v[i] = variance;
  return diagonal(std::move(v));
}

CovFactor CovFactor::diagonal(Vector variances) {
  CovFactor f;
  f.kind_ = Kind::Diagonal;
  f.dim_ = variances.size();
  f.diag_std_ = std::move(variances);
  for (index i = 0; i < f.dim_; ++i) {
    if (!(f.diag_std_[i] > 0.0))
      throw std::invalid_argument("CovFactor::diagonal: variances must be positive");
    f.diag_std_[i] = std::sqrt(f.diag_std_[i]);
  }
  return f;
}

void CovFactor::assign_diagonal(std::span<const double> variances) {
  kind_ = Kind::Diagonal;
  dim_ = static_cast<index>(variances.size());
  chol_ = Matrix();  // drop any dense factor; diagonal storage takes over
  diag_std_.resize(dim_);
  for (index i = 0; i < dim_; ++i) {
    const double v = variances[static_cast<std::size_t>(i)];
    if (!(v > 0.0))
      throw std::invalid_argument("CovFactor::assign_diagonal: variances must be positive");
    diag_std_[i] = std::sqrt(v);
  }
}

CovFactor CovFactor::dense(Matrix covariance) {
  if (covariance.rows() != covariance.cols())
    throw std::invalid_argument("CovFactor::dense: covariance must be square");
  if (!la::cholesky_lower(covariance.view()))
    throw std::invalid_argument("CovFactor::dense: covariance is not positive definite");
  return dense_chol(std::move(covariance));
}

CovFactor CovFactor::dense_chol(Matrix chol_lower) {
  CovFactor f;
  f.kind_ = Kind::Dense;
  f.dim_ = chol_lower.rows();
  f.chol_ = std::move(chol_lower);
  return f;
}

CovFactor CovFactor::from_stored(Kind kind, index dim, Vector diag_std, Matrix chol_lower) {
  if (dim < 0) throw std::invalid_argument("CovFactor::from_stored: negative dimension");
  CovFactor f;
  f.kind_ = kind;
  f.dim_ = dim;
  switch (kind) {
    case Kind::Identity:
      return f;
    case Kind::Diagonal:
      if (diag_std.size() != dim)
        throw std::invalid_argument("CovFactor::from_stored: diag_std size mismatch");
      for (index i = 0; i < dim; ++i)
        if (!(diag_std[i] > 0.0))
          throw std::invalid_argument(
              "CovFactor::from_stored: diagonal stds must be positive");
      f.diag_std_ = std::move(diag_std);
      return f;
    case Kind::Dense:
      if (chol_lower.rows() != dim || chol_lower.cols() != dim)
        throw std::invalid_argument("CovFactor::from_stored: Cholesky shape mismatch");
      for (index i = 0; i < dim; ++i)
        if (!(chol_lower(i, i) > 0.0))
          throw std::invalid_argument(
              "CovFactor::from_stored: Cholesky diagonal must be positive");
      f.chol_ = std::move(chol_lower);
      return f;
  }
  throw std::invalid_argument("CovFactor::from_stored: unknown kind");
}

void CovFactor::weight_in_place(la::MatrixView b) const {
  assert(b.rows() == dim_);
  switch (kind_) {
    case Kind::Identity:
      return;
    case Kind::Diagonal:
      for (index j = 0; j < b.cols(); ++j) {
        double* col = b.col_span(j).data();
        for (index i = 0; i < dim_; ++i) col[i] /= diag_std_[i];
      }
      return;
    case Kind::Dense:
      la::trsm_left(la::Uplo::Lower, la::Trans::No, la::Diag::NonUnit, chol_.view(), b);
      return;
  }
}

void CovFactor::weight_in_place(std::span<double> v) const {
  la::MatrixView m(v.data(), static_cast<index>(v.size()), 1, static_cast<index>(v.size()));
  weight_in_place(m);
}

Matrix CovFactor::weighted(la::ConstMatrixView b) const {
  Matrix out = la::to_matrix(b);
  weight_in_place(out.view());
  return out;
}

Vector CovFactor::weighted(std::span<const double> v) const {
  Vector out(static_cast<index>(v.size()));
  for (index i = 0; i < out.size(); ++i) out[i] = v[static_cast<std::size_t>(i)];
  weight_in_place(out.span());
  return out;
}

Vector CovFactor::sample(la::Rng& rng) const {
  Vector z = la::random_gaussian_vector(rng, dim_);
  switch (kind_) {
    case Kind::Identity:
      return z;
    case Kind::Diagonal:
      for (index i = 0; i < dim_; ++i) z[i] *= diag_std_[i];
      return z;
    case Kind::Dense: {
      la::trmm_left(la::Uplo::Lower, la::Trans::No, la::Diag::NonUnit, 1.0, chol_.view(),
                    z.as_matrix());
      return z;
    }
  }
  return z;
}

Matrix CovFactor::covariance() const {
  Matrix c(dim_, dim_);
  covariance_into(c.view());
  return c;
}

void CovFactor::covariance_into(la::MatrixView out) const {
  assert(out.rows() == dim_ && out.cols() == dim_);
  switch (kind_) {
    case Kind::Identity:
      out.set_zero();
      for (index i = 0; i < dim_; ++i) out(i, i) = 1.0;
      return;
    case Kind::Diagonal:
      out.set_zero();
      for (index i = 0; i < dim_; ++i) out(i, i) = diag_std_[i] * diag_std_[i];
      return;
    case Kind::Dense:
      la::gemm(1.0, chol_.view(), la::Trans::No, chol_.view(), la::Trans::Yes, 0.0, out);
      la::symmetrize(out);
      return;
  }
}

}  // namespace pitk::kalman
