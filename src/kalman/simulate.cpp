#include "kalman/simulate.hpp"

#include <cmath>
#include <stdexcept>

#include "la/blas.hpp"

namespace pitk::kalman {

Problem make_paper_benchmark(la::Rng& rng, index n, index k) {
  const Matrix f = la::random_orthonormal(rng, n);
  const Matrix g = la::random_orthonormal(rng, n);
  std::vector<TimeStep> steps(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    TimeStep& s = steps[static_cast<std::size_t>(i)];
    s.n = n;
    if (i > 0) {
      Evolution e;
      e.F = f;
      e.noise = CovFactor::identity(n);
      s.evolution = std::move(e);
    }
    Observation ob;
    ob.G = g;
    ob.o = la::random_gaussian_vector(rng, n);
    ob.noise = CovFactor::identity(n);
    s.observation = std::move(ob);
  }
  return Problem::from_steps(std::move(steps));
}

NonlinearModel make_pendulum_benchmark(la::Rng& rng, index k, double theta0,
                                       bool identity_noise, std::vector<Vector>* truth_out) {
  const double dt = 0.02;
  const double gl = 9.81;
  NonlinearModel m;
  m.k = k;
  m.dims.assign(static_cast<std::size_t>(k + 1), 2);
  m.f_into = [dt, gl](index, const Vector& u, Vector& out) {
    out.resize(2);
    out[0] = u[0] + dt * u[1];
    out[1] = u[1] - dt * gl * std::sin(u[0]);
  };
  m.f = [f_into = m.f_into](index i, const Vector& u) {
    Vector v;
    f_into(i, u, v);
    return v;
  };
  m.f_jac_into = [dt, gl](index, const Vector& u, Matrix& out) {
    out.resize(2, 2);
    out(0, 0) = 1.0;
    out(0, 1) = dt;
    out(1, 0) = -dt * gl * std::cos(u[0]);
    out(1, 1) = 1.0;
  };
  m.f_jac = [f_jac_into = m.f_jac_into](index i, const Vector& u) {
    Matrix out;
    f_jac_into(i, u, out);
    return out;
  };
  m.g_into = [](index, const Vector& u, Vector& out) {
    out.resize(1);
    out[0] = std::sin(u[0]);
  };
  m.g = [g_into = m.g_into](index i, const Vector& u) {
    Vector v;
    g_into(i, u, v);
    return v;
  };
  m.g_jac_into = [](index, const Vector& u, Matrix& out) {
    out.resize(1, 2);
    out(0, 0) = std::cos(u[0]);
    out(0, 1) = 0.0;
  };
  m.g_jac = [g_jac_into = m.g_jac_into](index i, const Vector& u) {
    Matrix out;
    g_jac_into(i, u, out);
    return out;
  };
  if (identity_noise) {
    m.process_noise = [](index) { return CovFactor::identity(2); };
    m.obs_noise = [](index) { return CovFactor::identity(1); };
  } else {
    m.process_noise = [](index) { return CovFactor::scaled_identity(2, 1e-4); };
    m.obs_noise = [](index) { return CovFactor::scaled_identity(1, 0.01); };
  }

  std::vector<Vector> truth;
  Vector u({theta0, 0.0});
  truth.push_back(u);
  m.obs.resize(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    if (i > 0) {
      Vector next;
      m.f_into(i, u, next);
      u = std::move(next);
      u[0] += 0.01 * rng.gaussian();
      u[1] += 0.01 * rng.gaussian();
      truth.push_back(u);
    }
    Vector o(1);
    o[0] = std::sin(u[0]) + 0.1 * rng.gaussian();
    m.obs[static_cast<std::size_t>(i)] = std::move(o);
  }
  if (truth_out) *truth_out = std::move(truth);
  return m;
}

GaussianPrior diffuse_prior(index n, double variance) {
  GaussianPrior p;
  p.mean = Vector::zero(n);
  p.cov = Matrix(n, n);
  for (index i = 0; i < n; ++i) p.cov(i, i) = variance;
  return p;
}

Simulation simulate(la::Rng& rng, const SimSpec& spec) {
  if (!spec.F || !spec.K || !spec.G || !spec.L)
    throw std::invalid_argument("simulate: F, K, G, L callbacks are required");
  Simulation sim;
  sim.truth.reserve(static_cast<std::size_t>(spec.k + 1));
  sim.truth.push_back(spec.x0);

  std::vector<TimeStep> steps(static_cast<std::size_t>(spec.k + 1));
  steps[0].n = spec.x0.size();

  for (index i = 1; i <= spec.k; ++i) {
    Matrix f = spec.F(i);
    CovFactor noise = spec.K(i);
    Vector c = spec.c ? spec.c(i) : Vector::zero(f.rows());
    // x_i = F x_{i-1} + c + eps.
    Vector x(f.rows());
    la::gemv(1.0, f.view(), la::Trans::No, sim.truth.back().span(), 0.0, x.span());
    la::axpy(1.0, c.span(), x.span());
    Vector eps = noise.sample(rng);
    la::axpy(1.0, eps.span(), x.span());
    sim.truth.push_back(x);

    TimeStep& s = steps[static_cast<std::size_t>(i)];
    s.n = f.rows();
    Evolution e;
    e.F = std::move(f);
    e.c = std::move(c);
    e.noise = std::move(noise);
    s.evolution = std::move(e);
  }

  for (index i = 0; i <= spec.k; ++i) {
    Matrix g = spec.G(i);
    if (g.empty()) continue;
    CovFactor noise = spec.L(i);
    Vector o(g.rows());
    la::gemv(1.0, g.view(), la::Trans::No, sim.truth[static_cast<std::size_t>(i)].span(), 0.0,
             o.span());
    Vector delta = noise.sample(rng);
    la::axpy(1.0, delta.span(), o.span());
    TimeStep& s = steps[static_cast<std::size_t>(i)];
    Observation ob;
    ob.G = std::move(g);
    ob.o = std::move(o);
    ob.noise = std::move(noise);
    s.observation = std::move(ob);
  }

  sim.problem = Problem::from_steps(std::move(steps));
  return sim;
}

SimSpec constant_velocity_spec(index axes, index k, double dt, double process_std,
                               double obs_std, Vector x0) {
  const index n = 2 * axes;
  if (x0.size() != n)
    throw std::invalid_argument("constant_velocity_spec: x0 must have dimension 2*axes");
  // State layout: [p_1, v_1, p_2, v_2, ...].
  Matrix f = Matrix::identity(n);
  for (index a = 0; a < axes; ++a) f(2 * a, 2 * a + 1) = dt;
  Matrix g(axes, n);
  for (index a = 0; a < axes; ++a) g(a, 2 * a) = 1.0;

  SimSpec spec;
  spec.x0 = std::move(x0);
  spec.k = k;
  spec.F = [f](index) { return f; };
  spec.K = [n, process_std](index) {
    return CovFactor::scaled_identity(n, process_std * process_std);
  };
  spec.G = [g](index) { return g; };
  spec.L = [axes, obs_std](index) {
    return CovFactor::scaled_identity(axes, obs_std * obs_std);
  };
  return spec;
}

}  // namespace pitk::kalman
