#include "kalman/rts.hpp"

#include <algorithm>
#include <stdexcept>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

namespace {

using la::ConstMatrixView;
using la::Trans;

struct FilterState {
  std::vector<Vector> filt_mean;
  std::vector<Matrix> filt_cov;
  std::vector<Vector> pred_mean;  // x_{i|i-1}; entry 0 is the prior mean
  std::vector<Matrix> pred_cov;
};

void require_identity_h(const Problem& p) {
  for (index i = 1; i <= p.last_index(); ++i)
    if (!p.step(i).evolution->identity_h())
      throw std::invalid_argument(
          "conventional Kalman filtering requires H_i = I; use a QR-based smoother");
}

}  // namespace

/// Joseph-form measurement update of (x, P) with observation (G, o, L).
void kf_measurement_update(const Observation& ob, Vector& x, Matrix& pcov) {
  const index n = x.size();
  const index m = ob.rows();
  // Per-step hot path of the RTS backend (and step 0 of the associative
  // scan): every temporary is an arena borrow, so warm calls allocate nothing.
  la::Workspace::Scope scope(la::tls_workspace());
  la::MatrixView lcov = scope.mat(m, m);
  ob.noise.covariance_into(lcov);

  // S = G P G^T + L.
  la::MatrixView gp = scope.mat(m, n);
  la::gemm(1.0, ob.G.view(), Trans::No, pcov.view(), Trans::No, 0.0, gp);
  la::MatrixView s = scope.mat(m, m);
  s.assign(lcov);
  la::gemm(1.0, gp, Trans::No, ob.G.view(), Trans::Yes, 1.0, s);
  la::symmetrize(s);

  // Gain K = P G^T S^{-1}  (via K^T = S^{-1} (G P)).
  la::MatrixView kt = scope.mat(m, n);
  kt.assign(gp);
  {
    la::MatrixView schol = scope.mat(m, m);
    schol.assign(s);
    if (!la::cholesky_lower(schol))
      throw std::runtime_error("kalman_filter: innovation covariance not SPD");
    la::chol_solve(schol, kt);
  }

  // Innovation r = o - G x.
  std::span<double> r = scope.vec(m);
  std::copy(ob.o.span().begin(), ob.o.span().end(), r.begin());
  la::gemv(-1.0, ob.G.view(), Trans::No, x.span(), 1.0, r);
  // x += K r = kt^T r.
  la::gemv(1.0, kt, Trans::Yes, r, 1.0, x.span());

  // Joseph form: P = (I - K G) P (I - K G)^T + K L K^T.
  la::MatrixView ikg = scope.mat(n, n);
  for (index i = 0; i < n; ++i) ikg(i, i) = 1.0;
  la::gemm(-1.0, kt, Trans::Yes, ob.G.view(), Trans::No, 1.0, ikg);
  la::MatrixView tmp = scope.mat(n, n);
  la::gemm(1.0, ikg, Trans::No, pcov.view(), Trans::No, 0.0, tmp);
  la::MatrixView pnew = scope.mat(n, n);
  la::gemm(1.0, tmp, Trans::No, ikg, Trans::Yes, 0.0, pnew);
  la::MatrixView kl = scope.mat(m, n);  // L K^T (m x n)
  la::gemm(1.0, lcov, Trans::No, kt, Trans::No, 0.0, kl);
  la::gemm(1.0, kt, Trans::Yes, kl, Trans::No, 1.0, pnew);
  la::symmetrize(pnew);
  pcov.assign_from(pnew);
}

namespace {

FilterState run_filter(const Problem& p, const GaussianPrior& prior) {
  if (auto err = p.validate()) throw std::invalid_argument("kalman_filter: " + *err);
  require_identity_h(p);
  if (prior.mean.size() != p.state_dim(0))
    throw std::invalid_argument("kalman_filter: prior dimension mismatch");

  const index k = p.last_index();
  FilterState fs;
  fs.filt_mean.reserve(static_cast<std::size_t>(k + 1));
  fs.filt_cov.reserve(static_cast<std::size_t>(k + 1));
  fs.pred_mean.reserve(static_cast<std::size_t>(k + 1));
  fs.pred_cov.reserve(static_cast<std::size_t>(k + 1));

  Vector x = prior.mean;
  Matrix pcov = prior.cov;
  fs.pred_mean.push_back(x);
  fs.pred_cov.push_back(pcov);
  if (p.step(0).observation) kf_measurement_update(*p.step(0).observation, x, pcov);
  fs.filt_mean.push_back(x);
  fs.filt_cov.push_back(pcov);

  for (index i = 1; i <= k; ++i) {
    const Evolution& e = *p.step(i).evolution;
    const index n = p.state_dim(i);
    // Predict: x = F x + c, P = F P F^T + K.
    Vector xp(n);
    la::gemv(1.0, e.F.view(), Trans::No, x.span(), 0.0, xp.span());
    if (!e.c.empty()) la::axpy(1.0, e.c.span(), xp.span());
    Matrix fp = la::multiply(e.F.view(), pcov.view());  // n x n_prev
    Matrix pp = e.noise.covariance();
    la::gemm(1.0, fp.view(), Trans::No, e.F.view(), Trans::Yes, 1.0, pp.view());
    la::symmetrize(pp.view());

    fs.pred_mean.push_back(xp);
    fs.pred_cov.push_back(pp);

    x = std::move(xp);
    pcov = std::move(pp);
    if (p.step(i).observation) kf_measurement_update(*p.step(i).observation, x, pcov);
    fs.filt_mean.push_back(x);
    fs.filt_cov.push_back(pcov);
  }
  return fs;
}

}  // namespace

FilterResult kalman_filter(const Problem& p, const GaussianPrior& prior) {
  FilterState fs = run_filter(p, prior);
  FilterResult out;
  out.means = std::move(fs.filt_mean);
  out.covariances = std::move(fs.filt_cov);
  return out;
}

SmootherResult rts_smooth(const Problem& p, const GaussianPrior& prior) {
  FilterState fs = run_filter(p, prior);
  const index k = p.last_index();

  SmootherResult res;
  res.means.assign(fs.filt_mean.begin(), fs.filt_mean.end());
  res.covariances.assign(fs.filt_cov.begin(), fs.filt_cov.end());

  for (index i = k - 1; i >= 0; --i) {
    const Evolution& e = *p.step(i + 1).evolution;
    const index n = p.state_dim(i);
    const index nn = p.state_dim(i + 1);

    // Smoother gain G = P_{i|i} F^T P_{i+1|i}^{-1}  via G^T = P_pred^{-1} F P.
    Matrix fp = la::multiply(e.F.view(), fs.filt_cov[static_cast<std::size_t>(i)].view());
    Matrix gt = fp;  // nn x n
    {
      Matrix pchol = fs.pred_cov[static_cast<std::size_t>(i + 1)];
      if (!la::cholesky_lower(pchol.view()))
        throw std::runtime_error("rts_smooth: predicted covariance not SPD");
      la::chol_solve(pchol.view(), gt.view());
    }

    // x_s = x_f + G (x_s[i+1] - x_pred[i+1]).
    Vector dx = res.means[static_cast<std::size_t>(i + 1)];
    la::axpy(-1.0, fs.pred_mean[static_cast<std::size_t>(i + 1)].span(), dx.span());
    la::gemv(1.0, gt.view(), Trans::Yes, dx.span(), 1.0,
             res.means[static_cast<std::size_t>(i)].span());

    // P_s = P_f + G (P_s[i+1] - P_pred[i+1]) G^T.
    Matrix dp = res.covariances[static_cast<std::size_t>(i + 1)];
    la::axpy(-1.0, fs.pred_cov[static_cast<std::size_t>(i + 1)].view(), dp.view());
    Matrix gdp(n, nn);
    la::gemm(1.0, gt.view(), Trans::Yes, dp.view(), Trans::No, 0.0, gdp.view());
    la::gemm(1.0, gdp.view(), Trans::No, gt.view(), Trans::No, 1.0,
             res.covariances[static_cast<std::size_t>(i)].view());
    la::symmetrize(res.covariances[static_cast<std::size_t>(i)].view());
  }
  return res;
}

}  // namespace pitk::kalman
