#pragma once

/// \file simulate.hpp
/// Workload generators: the paper's synthetic benchmark problems (Section
/// 5.2) and a general trajectory simulator for examples and tests.

#include <functional>

#include "kalman/model.hpp"
#include "la/random.hpp"

namespace pitk::kalman {

/// The benchmark problem of Section 5.2: fixed random orthonormal F and G
/// (shared by all steps), H = I, K = L = I, random observations o_i, common
/// dimension n = n_i = m_i, k+1 states.  Observations are synthetic random
/// vectors, exactly as in the paper (no trajectory is simulated).
[[nodiscard]] Problem make_paper_benchmark(la::Rng& rng, index n, index k);

/// Prior compatible with the paper benchmark for smoothers that require one
/// (RTS / associative): a diffuse zero-mean prior with variance `variance`.
[[nodiscard]] GaussianPrior diffuse_prior(index n, double variance = 1e6);

/// The repository's canonical *nonlinear* benchmark: a noisy pendulum with
/// state (angle, angular velocity), dynamics theta'' = -(g/l) sin(theta)
/// discretized at dt = 0.02, observed through sin(theta) at every step.
/// Simulates a truth trajectory from (theta0, 0) with small process noise
/// and emits noisy observations.  The model carries both the value-returning
/// and the allocation-free `*_into` callbacks; `identity_noise` swaps the
/// scaled covariance factors for identity ones (CovFactor::identity owns no
/// buffer, which keeps even a cold Gauss-Newton init allocation-free on a
/// warm state).  Used by tests, benches and examples alike so the dynamics
/// live in exactly one place.
[[nodiscard]] NonlinearModel make_pendulum_benchmark(la::Rng& rng, index k,
                                                     double theta0 = 0.5,
                                                     bool identity_noise = false,
                                                     std::vector<Vector>* truth_out = nullptr);

/// Specification of a time-invariant-shaped simulation; all callbacks are
/// indexed by step (1..k for evolution, 0..k for observation).
struct SimSpec {
  Vector x0;                                  ///< true initial state
  index k = 0;                                ///< number of evolutions
  std::function<Matrix(index)> F;             ///< evolution matrix, i >= 1
  std::function<Vector(index)> c;             ///< control; may be null (zero)
  std::function<CovFactor(index)> K;          ///< process noise, i >= 1
  /// Observation matrix for step i (0..k); return an empty Matrix for an
  /// unobserved step.
  std::function<Matrix(index)> G;
  std::function<CovFactor(index)> L;          ///< measurement noise (observed steps)
};

/// A simulated dataset: the observed Problem plus the hidden ground truth.
struct Simulation {
  Problem problem;
  std::vector<Vector> truth;  ///< true states u_0..u_k
};

/// Sample process/measurement noise and produce the observed problem.
[[nodiscard]] Simulation simulate(la::Rng& rng, const SimSpec& spec);

/// Convenience: a d-dimensional constant-velocity tracking model (position +
/// velocity per axis, so state dimension 2d), observing positions only.
/// Useful in examples and integration tests.
[[nodiscard]] SimSpec constant_velocity_spec(index axes, index k, double dt, double process_std,
                                             double obs_std, Vector x0);

}  // namespace pitk::kalman
