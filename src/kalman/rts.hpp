#pragma once

/// \file rts.hpp
/// Conventional sequential Kalman filter and Rauch-Tung-Striebel smoother.
///
/// This is the paper's sequential baseline ("Kalman" in Figure 2): a forward
/// covariance-form Kalman filter followed by the RTS backward pass.  Like
/// all conventional smoothers it requires H_i = I and a Gaussian prior on
/// the initial state, and it always produces covariances (Section 6 lists
/// these restrictions when comparing against the QR-based algorithms).
/// Measurement updates use the Joseph stabilized form.

#include "kalman/model.hpp"

namespace pitk::kalman {

/// Forward Kalman filter.  Throws std::invalid_argument when the problem has
/// a non-identity H (conventional filters cannot express it).
[[nodiscard]] FilterResult kalman_filter(const Problem& p, const GaussianPrior& prior);

/// Joseph-form measurement update of the Gaussian (x, pcov) with observation
/// `ob`; shared by the conventional and the associative-scan smoothers.
void kf_measurement_update(const Observation& ob, Vector& x, Matrix& pcov);

/// Full RTS smoother (filter + backward sweep).  Covariances are always
/// computed; the paper notes this family cannot skip them.
[[nodiscard]] SmootherResult rts_smooth(const Problem& p, const GaussianPrior& prior);

}  // namespace pitk::kalman
