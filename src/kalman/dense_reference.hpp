#pragma once

/// \file dense_reference.hpp
/// Dense-matrix reference solver: the test oracle.
///
/// Assembles the full weighted least-squares system U A, U b of Section 2.1
/// as explicit dense matrices and solves it with a dense Householder QR;
/// covariances come from (R^T R)^{-1} formed densely.  O((kn)^2) memory, so
/// only suitable for small problems — exactly what tests need to validate
/// every structured smoother against first principles.

#include "kalman/model.hpp"

namespace pitk::kalman {

/// The assembled dense system and the per-state column offsets.
struct DenseSystem {
  Matrix A;                    ///< U * A, (sum rows) x (sum n_i)
  Vector b;                    ///< U * b
  std::vector<index> col_off;  ///< column offset of each state's block
};

/// Build the dense weighted system for `p` (must validate()).
[[nodiscard]] DenseSystem build_dense_system(const Problem& p);

/// Solve by dense QR; with_cov additionally computes every cov(\hat u_i) as a
/// diagonal block of (R^T R)^{-1}.
[[nodiscard]] SmootherResult dense_smooth(const Problem& p, bool with_cov);

}  // namespace pitk::kalman
