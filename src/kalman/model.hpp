#pragma once

/// \file model.hpp
/// The linear Kalman smoothing problem of Section 2.1.
///
/// A Problem is a sequence of states u_0 .. u_k with
///   evolution:    H_i u_i = F_i u_{i-1} + c_i + eps_i,  cov(eps_i) = K_i
///   observation:  o_i = G_i u_i + delta_i,              cov(delta_i) = L_i
/// State dimensions n_i may vary, H_i may be rectangular (paper allows both;
/// conventional smoothers do not), observations are optional per step, and
/// no prior on u_0 is required.  A Gaussian prior, when available, is simply
/// an extra observation of the full state (G = I, o = mean, L = cov) — see
/// with_prior_observation().

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "kalman/cov_factor.hpp"
#include "la/matrix.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

/// Evolution part of a step: H u_i = F u_{i-1} + c + noise.
struct Evolution {
  Matrix F;         ///< l x n_{i-1}
  Matrix H;         ///< l x n_i; empty means identity (then l == n_i)
  Vector c;         ///< l; empty means zero
  CovFactor noise;  ///< cov(eps) of dimension l

  [[nodiscard]] index rows() const noexcept { return F.rows(); }
  [[nodiscard]] bool identity_h() const noexcept { return H.empty(); }
};

/// Observation part of a step: o = G u_i + noise.
struct Observation {
  Matrix G;         ///< m x n_i
  Vector o;         ///< m
  CovFactor noise;  ///< cov(delta) of dimension m

  [[nodiscard]] index rows() const noexcept { return G.rows(); }
};

/// One state of the dynamic system plus the equations that constrain it.
struct TimeStep {
  index n = 0;                            ///< dimension of u_i
  std::optional<Evolution> evolution;     ///< absent exactly for i == 0
  std::optional<Observation> observation; ///< absent when the step is unobserved

  [[nodiscard]] index obs_rows() const noexcept {
    return observation ? observation->rows() : 0;
  }
  [[nodiscard]] index evo_rows() const noexcept { return evolution ? evolution->rows() : 0; }
};

/// Gaussian prior on the initial (or any) state.
struct GaussianPrior {
  Vector mean;
  Matrix cov;
};

/// A full smoothing problem: the ordered steps 0..k.
class Problem {
 public:
  Problem() = default;

  /// Take ownership of pre-built steps (parallel problem construction path;
  /// the paper notes inputs are typically produced in parallel upstream).
  [[nodiscard]] static Problem from_steps(std::vector<TimeStep> steps);

  // ---- incremental builder (UltimateKalman-style evolve/observe) ----

  /// Begin with the initial state of dimension n0.
  void start(index n0);

  /// Append state i+1 with H = I (square) evolution: u_{i+1} = F u_i + c + e.
  void evolve(Matrix f, Vector c, CovFactor k);

  /// Append state with explicit (possibly rectangular) H and new dimension.
  void evolve_rect(index n_new, Matrix h, Matrix f, Vector c, CovFactor k);

  /// Attach an observation to the most recent state.
  void observe(Matrix g, Vector o, CovFactor l);

  // ---- access ----

  [[nodiscard]] index num_states() const noexcept { return static_cast<index>(steps_.size()); }
  [[nodiscard]] index last_index() const noexcept { return num_states() - 1; }
  [[nodiscard]] const TimeStep& step(index i) const { return steps_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] TimeStep& step(index i) { return steps_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const std::vector<TimeStep>& steps() const noexcept { return steps_; }
  [[nodiscard]] std::vector<TimeStep>& steps() noexcept { return steps_; }

  [[nodiscard]] index state_dim(index i) const { return step(i).n; }

  /// Sum of all state dimensions (columns of U A).
  [[nodiscard]] index total_state_dim() const noexcept;

  /// Sum of all equation rows (rows of U A).
  [[nodiscard]] index total_row_dim() const noexcept;

  /// Shape-consistency check; returns a description of the first problem
  /// found, or nullopt when the model is well formed.  QR smoothers (which
  /// have no prior to anchor the estimate) additionally require at least as
  /// many equation rows as unknowns; prior-based smoothers must not, since
  /// the prior supplies the missing information.
  [[nodiscard]] std::optional<std::string> validate(
      bool require_overdetermined = false) const;

 private:
  std::vector<TimeStep> steps_;
};

/// Copy `p` and prepend a prior on u_0 as an extra observation row block
/// (G = I, o = prior.mean, L = prior.cov), stacked above any existing
/// observation of step 0.  This makes QR smoothers solve exactly the same
/// regularized problem that RTS/associative smoothers solve with `prior`.
[[nodiscard]] Problem with_prior_observation(const Problem& p, const GaussianPrior& prior);

/// Weighted equation blocks of one step (Section 3 notation):
///   C = W G, o_w = W o, B = V F, D = V H, c_w = V c.
struct WeightedStep {
  Matrix C;   ///< m x n_i
  Vector ow;  ///< m
  Matrix B;   ///< l x n_{i-1} (unsigned; the matrix block is -B)
  Matrix D;   ///< l x n_i
  Vector cw;  ///< l
};

/// Compute the weighted blocks of step i (i == 0 has only C, ow).
[[nodiscard]] WeightedStep weigh_step(const TimeStep& s);

/// Views of the weighted blocks, borrowed from a Workspace scope: the
/// allocation-free flavor the per-step solver loops use.  The views die with
/// the scope they were borrowed from.
struct WeightedStepView {
  la::MatrixView C;        ///< m x n_i
  std::span<double> ow;    ///< m
  la::MatrixView B;        ///< l x n_{i-1}
  la::MatrixView D;        ///< l x n_i
  std::span<double> cw;    ///< l
};

[[nodiscard]] WeightedStepView weigh_step_into(const TimeStep& s, la::Workspace::Scope& scope);

/// A nonlinear state-space model with H_i = I:
///   u_i = f(i, u_{i-1}) + eps_i,   o_i = g(i, u_i) + delta_i.
///
/// The value-returning callbacks are the ergonomic interface; the optional
/// `*_into` variants write into caller storage (which they must resize;
/// capacity-reusing) and are what makes a warm Gauss-Newton outer iteration
/// allocation-free — when absent, relinearization falls back to the value
/// callbacks and pays their allocations.  The noise callbacks are evaluated
/// once per solve (they may depend on i but not on the trajectory).
struct NonlinearModel {
  la::index k = 0;              ///< steps 0..k
  std::vector<la::index> dims;  ///< n_i for every state (size k+1)

  std::function<Vector(la::index, const Vector&)> f;      ///< evolution, i >= 1
  std::function<Matrix(la::index, const Vector&)> f_jac;  ///< df_i/du at u_{i-1}
  std::function<CovFactor(la::index)> process_noise;      ///< K_i

  /// Observations; steps without one have no entry (empty Vector signals
  /// absence in `obs`).
  std::vector<Vector> obs;                                ///< o_i (size k+1)
  std::function<Vector(la::index, const Vector&)> g;      ///< measurement fn
  std::function<Matrix(la::index, const Vector&)> g_jac;  ///< dg_i/du at u_i
  std::function<CovFactor(la::index)> obs_noise;          ///< L_i

  /// Optional allocation-free variants (see the struct comment).
  std::function<void(la::index, const Vector&, Vector&)> f_into;
  std::function<void(la::index, const Vector&, Matrix&)> f_jac_into;
  std::function<void(la::index, const Vector&, Vector&)> g_into;
  std::function<void(la::index, const Vector&, Matrix&)> g_jac_into;
};

/// Result of a smoothing pass.
struct SmootherResult {
  std::vector<Vector> means;        ///< \hat u_i, i = 0..k
  std::vector<Matrix> covariances;  ///< cov(\hat u_i); empty when skipped (NC)

  /// Opaque serving stamp used by the engine's session delta copy-out: it
  /// identifies the cached result last served into this storage, so the next
  /// smooth into the same storage only copies the entries that changed.
  /// 0 = never served.  Treat a served result as read-only between smooths
  /// (or zero the stamp after modifying it to force a full copy).
  std::uint64_t serve_stamp = 0;

  [[nodiscard]] bool has_covariances() const noexcept { return !covariances.empty(); }
};

/// Result of a (forward) filtering pass.
struct FilterResult {
  std::vector<Vector> means;        ///< E(u_i | o_0..o_i)
  std::vector<Matrix> covariances;  ///< cov of the above
};

}  // namespace pitk::kalman
