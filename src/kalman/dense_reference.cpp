#include "kalman/dense_reference.hpp"

#include <stdexcept>

#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/triangular.hpp"

namespace pitk::kalman {

DenseSystem build_dense_system(const Problem& p) {
  DenseSystem sys;
  const index k = p.last_index();
  sys.col_off.resize(static_cast<std::size_t>(k + 1));
  index cols = 0;
  for (index i = 0; i <= k; ++i) {
    sys.col_off[static_cast<std::size_t>(i)] = cols;
    cols += p.state_dim(i);
  }
  const index rows = p.total_row_dim();
  sys.A.resize(rows, cols);
  sys.b.resize(rows);

  index r = 0;
  for (index i = 0; i <= k; ++i) {
    const WeightedStep w = weigh_step(p.step(i));
    if (i > 0) {
      const index l = w.D.rows();
      // Evolution block row: [-B_i  D_i] at columns of states i-1 and i.
      la::MatrixView bblk =
          sys.A.block(r, sys.col_off[static_cast<std::size_t>(i - 1)], l, w.B.cols());
      bblk.assign(w.B.view());
      la::scale(-1.0, bblk);
      sys.A.block(r, sys.col_off[static_cast<std::size_t>(i)], l, w.D.cols()).assign(w.D.view());
      for (index q = 0; q < l; ++q) sys.b[r + q] = w.cw[q];
      r += l;
    }
    if (w.C.rows() > 0) {
      sys.A.block(r, sys.col_off[static_cast<std::size_t>(i)], w.C.rows(), w.C.cols())
          .assign(w.C.view());
      for (index q = 0; q < w.C.rows(); ++q) sys.b[r + q] = w.ow[q];
      r += w.C.rows();
    }
  }
  assert(r == rows);
  return sys;
}

SmootherResult dense_smooth(const Problem& p, bool with_cov) {
  if (auto err = p.validate(true)) throw std::invalid_argument("dense_smooth: " + *err);
  DenseSystem sys = build_dense_system(p);
  const index cols = sys.A.cols();
  const index k = p.last_index();

  Matrix a = sys.A;  // keep sys.A for covariance path readability
  Vector b = sys.b;
  std::vector<double> tau(static_cast<std::size_t>(std::min(a.rows(), a.cols())));
  la::qr_factor(a.view(), tau);
  la::qr_apply_qt(a.view(), tau, b.as_matrix());

  Vector x(cols);
  for (index i = 0; i < cols; ++i) x[i] = b[i];
  la::trsv(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, a.block(0, 0, cols, cols), x.span());

  SmootherResult res;
  res.means.reserve(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    const index off = sys.col_off[static_cast<std::size_t>(i)];
    const index n = p.state_dim(i);
    Vector u(n);
    for (index q = 0; q < n; ++q) u[q] = x[off + q];
    res.means.push_back(std::move(u));
  }

  if (with_cov) {
    // S = (R^T R)^{-1} = R^{-1} R^{-T}.
    Matrix rinv = la::to_matrix(a.block(0, 0, cols, cols));
    for (index j = 0; j < cols; ++j)
      for (index i = j + 1; i < cols; ++i) rinv(i, j) = 0.0;  // clear reflector storage
    la::tri_inverse_upper(rinv.view());
    Matrix s(cols, cols);
    la::gemm(1.0, rinv.view(), la::Trans::No, rinv.view(), la::Trans::Yes, 0.0, s.view());
    la::symmetrize(s.view());
    res.covariances.reserve(static_cast<std::size_t>(k + 1));
    for (index i = 0; i <= k; ++i) {
      const index off = sys.col_off[static_cast<std::size_t>(i)];
      const index n = p.state_dim(i);
      res.covariances.push_back(la::to_matrix(s.block(off, off, n, n)));
    }
  }
  return res;
}

}  // namespace pitk::kalman
