#pragma once

/// \file cov_factor.hpp
/// Covariance matrices and the weighting factors derived from them.
///
/// Section 2.1 of the paper weights each equation block by the inverse
/// factor of its noise covariance: V_i^T V_i = K_i^{-1}, W_i^T W_i = L_i^{-1}.
/// A CovFactor stores a covariance in factored form (identity / diagonal /
/// dense lower Cholesky) and applies the weighting V = C^{-1} (C the lower
/// Cholesky factor of the covariance) without ever forming an inverse.
/// Diagonal covariances — the common case the paper's stability argument
/// singles out — use O(n) storage and O(n) weighting per column.

#include <span>

#include "la/matrix.hpp"
#include "la/random.hpp"

namespace pitk::kalman {

using la::index;
using la::Matrix;
using la::Vector;

class CovFactor {
 public:
  enum class Kind : std::uint8_t { Identity, Diagonal, Dense };

  /// Default: identity covariance of dimension zero (useful as placeholder).
  CovFactor() = default;

  /// Identity covariance I_n.
  [[nodiscard]] static CovFactor identity(index n);

  /// sigma2 * I_n.
  [[nodiscard]] static CovFactor scaled_identity(index n, double variance);

  /// diag(variances); every variance must be positive.
  [[nodiscard]] static CovFactor diagonal(Vector variances);

  /// Rebuild this factor as diag(variances) in place, reusing the existing
  /// standard-deviation storage (zero heap allocations once the capacity is
  /// there).  The warm path for iteration-varying diagonal noise, e.g. the
  /// Levenberg-Marquardt damping rows whose variance is 1/lambda.
  void assign_diagonal(std::span<const double> variances);

  /// Dense SPD covariance; throws std::invalid_argument if the Cholesky
  /// factorization fails.
  [[nodiscard]] static CovFactor dense(Matrix covariance);

  /// Dense covariance given directly by its lower Cholesky factor.
  [[nodiscard]] static CovFactor dense_chol(Matrix chol_lower);

  [[nodiscard]] index dim() const noexcept { return dim_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// B <- V B where V^T V = Cov^{-1}: the row-weighting applied to every
  /// block of U A and U b.
  void weight_in_place(la::MatrixView b) const;
  void weight_in_place(std::span<double> v) const;

  /// Fresh weighted copy V * B.
  [[nodiscard]] Matrix weighted(la::ConstMatrixView b) const;
  [[nodiscard]] Vector weighted(std::span<const double> v) const;

  /// Draw a noise sample with this covariance (C * z, z ~ N(0, I)).
  [[nodiscard]] Vector sample(la::Rng& rng) const;

  /// Reconstruct the dense covariance matrix (tests, RTS baseline).
  [[nodiscard]] Matrix covariance() const;

  /// Reconstruct into caller-provided dim x dim storage (hot loops borrow it
  /// from a Workspace instead of allocating).
  void covariance_into(la::MatrixView out) const;

  // ---- serialization access (pitk::io journals) ----

  /// The stored diagonal factor (sqrt of the variances); meaningful only for
  /// Kind::Diagonal (empty otherwise).
  [[nodiscard]] const Vector& diag_std() const noexcept { return diag_std_; }

  /// The stored lower Cholesky factor; meaningful only for Kind::Dense.
  [[nodiscard]] const Matrix& chol_lower() const noexcept { return chol_; }

  /// Rebuild a factor from its stored representation — the exact inverse of
  /// the two accessors above.  Unlike dense()/diagonal() this performs no
  /// factorization or sqrt, so a serialize/deserialize round trip reproduces
  /// the factor bit-for-bit (journal replay then repeats the original
  /// arithmetic exactly).  Shapes and positivity are validated; throws
  /// std::invalid_argument on a factor that could not have been stored.
  [[nodiscard]] static CovFactor from_stored(Kind kind, index dim, Vector diag_std,
                                             Matrix chol_lower);

 private:
  Kind kind_ = Kind::Identity;
  index dim_ = 0;
  Vector diag_std_;  // Diagonal: sqrt of the variances
  Matrix chol_;      // Dense: lower Cholesky factor of the covariance
};

}  // namespace pitk::kalman
