#pragma once

/// \file parallel_for.hpp
/// Chunked parallel loop with an explicit grain (block-size) parameter.
///
/// Replaces tbb::parallel_for.  The grain parameter has exactly the role of
/// the paper's "block size": the number of consecutive iterations executed
/// sequentially by one worker to amortize scheduling overhead (Figure 6 left
/// sweeps it).  Chunks are handed out by an atomic dispenser, which gives the
/// same dynamic load balancing a work-stealing range splitter provides, with
/// zero per-chunk allocation.

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "la/types.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::par {

using la::index;

/// Default grain used throughout the library; the paper uses a TBB block
/// size of 10 unless noted otherwise (Section 5.1).
inline constexpr index default_grain = 10;

/// Run body(chunk_begin, chunk_end) over [begin, end) in parallel.
/// The calling thread participates; exceptions from any chunk are captured
/// and the first one is rethrown on the caller after the loop completes.
template <class Body>
void parallel_for_chunked(ThreadPool& pool, index begin, index end, index grain, Body&& body) {
  if (end <= begin) return;
  grain = std::max<index>(1, grain);
  if (pool.is_serial() || end - begin <= grain) {
    body(begin, end);
    return;
  }

  std::atomic<index> next{begin};
  std::exception_ptr error;
  std::once_flag error_once;

  auto drive = [&]() noexcept {
    for (;;) {
      const index b = next.fetch_add(grain, std::memory_order_relaxed);
      if (b >= end) return;
      const index e = std::min(b + grain, end);
      try {
        body(b, e);
      } catch (...) {
        std::call_once(error_once, [&] { error = std::current_exception(); });
        // Keep draining so other drivers do not deadlock on remaining work;
        // the dispenser is cheap to exhaust.
      }
    }
  };

  const index nchunks = (end - begin + grain - 1) / grain;
  const unsigned helpers = static_cast<unsigned>(
      std::min<index>(static_cast<index>(pool.concurrency()) - 1, nchunks - 1));

  std::atomic<unsigned> done{0};
  for (unsigned i = 0; i < helpers; ++i) {
    pool.submit([&drive, &done] {
      drive();
      done.fetch_add(1, std::memory_order_acq_rel);
      done.notify_one();
    });
  }
  drive();
  // Help with other pool work (e.g. nested loops) while waiting for helpers.
  unsigned finished = done.load(std::memory_order_acquire);
  while (finished < helpers) {
    if (!pool.run_one()) done.wait(finished, std::memory_order_acquire);
    finished = done.load(std::memory_order_acquire);
  }
  if (error) std::rethrow_exception(error);
}

/// Element-wise convenience: body(i) for i in [begin, end).
template <class Body>
void parallel_for(ThreadPool& pool, index begin, index end, index grain, Body&& body) {
  parallel_for_chunked(pool, begin, end, grain, [&body](index b, index e) {
    for (index i = b; i < e; ++i) body(i);
  });
}

/// Parallel reduction: combine(body(i)) over [begin, end) with an associative
/// and commutative-safe tree order (per-driver partial results combined in
/// chunk order).  `Init` must be the identity of `combine`.
template <class T, class Body, class Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, index begin, index end, index grain, T init,
                                Body&& body, Combine&& combine) {
  std::mutex mu;
  T total = init;
  parallel_for_chunked(pool, begin, end, grain, [&](index b, index e) {
    T local = init;
    for (index i = b; i < e; ++i) local = combine(local, body(i));
    std::lock_guard<std::mutex> lk(mu);
    total = combine(total, local);
  });
  return total;
}

}  // namespace pitk::par
