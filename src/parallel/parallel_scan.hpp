#pragma once

/// \file parallel_scan.hpp
/// Parallel prefix (scan) over an arbitrary associative operation.
///
/// Replaces tbb::parallel_scan for the Särkkä & García-Fernández smoother,
/// whose forward filtering pass and backward smoothing pass are generalized
/// prefix sums of *non-commutative* associative operators on small matrix
/// tuples.  The implementation is the classic tiled two-pass scheme:
///
///   1. split into chunks of `grain` elements; in parallel, fold each chunk
///      to its total (left-associated, order preserved);
///   2. scan the chunk totals (recursively in parallel when there are many
///      chunks) to obtain the carry-in prefix of every chunk;
///   3. in parallel, re-scan each chunk seeded with its carry-in, writing
///      results in place.
///
/// Each element is combined twice (phases 1 and 3), so the scan performs
/// ~2x the arithmetic of a sequential prefix pass — this is precisely the
/// work overhead of parallel-in-time smoothers the paper measures (1.8-2.6x).

#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace pitk::par {

/// In-place inclusive prefix scan:
///   data[i] <- data[0] op data[1] op ... op data[i]   (left associated).
/// `op(const T&, const T&) -> T` must be associative; commutativity is NOT
/// required.  Serial pools (or small inputs) fall back to one sequential
/// sweep with no extra arithmetic.
template <class T, class Op>
void parallel_inclusive_scan(ThreadPool& pool, std::span<T> data, index grain, Op&& op) {
  const index n = static_cast<index>(data.size());
  if (n <= 1) return;
  grain = std::max<index>(1, grain);
  if (pool.is_serial() || n <= 2 * grain) {
    for (index i = 1; i < n; ++i) data[i] = op(data[i - 1], data[i]);
    return;
  }

  const index nchunks = (n + grain - 1) / grain;
  std::vector<T> totals(static_cast<std::size_t>(nchunks));

  // Phase 1: fold each chunk to its total, preserving element order.
  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    T acc = data[b];
    for (index i = b + 1; i < e; ++i) acc = op(acc, data[i]);
    totals[static_cast<std::size_t>(c)] = std::move(acc);
  });

  // Phase 2: inclusive scan of the totals (recursive when worthwhile).
  parallel_inclusive_scan(pool, std::span<T>(totals), std::max<index>(grain, 16),
                          std::forward<Op>(op));

  // Phase 3: final scan of each chunk seeded by the previous chunk's prefix.
  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    if (c == 0) {
      for (index i = b + 1; i < e; ++i) data[i] = op(data[i - 1], data[i]);
    } else {
      const T& carry = totals[static_cast<std::size_t>(c - 1)];
      data[b] = op(carry, data[b]);
      for (index i = b + 1; i < e; ++i) data[i] = op(data[i - 1], data[i]);
    }
  });
}

/// Buffer-reusing flavor of parallel_inclusive_scan for element types whose
/// combine can overwrite an existing element in place (capacity-reusing
/// assignment).  Two fold directions are required because the tiled scheme
/// accumulates into either operand depending on the phase:
///
///   fold_left(T& l, const T& r):  l <- l op r
///   fold_right(const T& l, T& r): r <- l op r
///
/// On a serial pool (or small inputs) the scan performs zero element
/// constructions; the parallel path copies one chunk seed per `grain`
/// elements (amortized 1/grain of the copy-returning variant).
template <class T, class FoldLeft, class FoldRight>
void parallel_inclusive_scan_inplace(ThreadPool& pool, std::span<T> data, index grain,
                                     FoldLeft&& fold_left, FoldRight&& fold_right) {
  const index n = static_cast<index>(data.size());
  if (n <= 1) return;
  grain = std::max<index>(1, grain);
  if (pool.is_serial() || n <= 2 * grain) {
    for (index i = 1; i < n; ++i) fold_right(data[i - 1], data[i]);
    return;
  }

  const index nchunks = (n + grain - 1) / grain;
  std::vector<T> totals(static_cast<std::size_t>(nchunks));

  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    T& acc = totals[static_cast<std::size_t>(c)];
    acc = data[b];  // one seed copy per chunk
    for (index i = b + 1; i < e; ++i) fold_left(acc, data[i]);
  });

  parallel_inclusive_scan_inplace(pool, std::span<T>(totals), std::max<index>(grain, 16),
                                  fold_left, fold_right);

  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    if (c > 0) fold_right(totals[static_cast<std::size_t>(c - 1)], data[b]);
    for (index i = b + 1; i < e; ++i) fold_right(data[i - 1], data[i]);
  });
}

/// In-place inclusive suffix scan:
///   data[i] <- data[i] op data[i+1] op ... op data[n-1]  (left associated).
/// Used for the backward smoothing pass.
template <class T, class Op>
void parallel_reverse_inclusive_scan(ThreadPool& pool, std::span<T> data, index grain, Op&& op) {
  const index n = static_cast<index>(data.size());
  if (n <= 1) return;
  grain = std::max<index>(1, grain);
  if (pool.is_serial() || n <= 2 * grain) {
    for (index i = n - 2; i >= 0; --i) data[i] = op(data[i], data[i + 1]);
    return;
  }

  const index nchunks = (n + grain - 1) / grain;
  std::vector<T> totals(static_cast<std::size_t>(nchunks));

  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    T acc = data[e - 1];
    for (index i = e - 2; i >= b; --i) acc = op(data[i], acc);
    totals[static_cast<std::size_t>(c)] = std::move(acc);
  });

  // Reverse scan of the totals: totals[c] <- totals[c] op ... op totals[last].
  parallel_reverse_inclusive_scan(pool, std::span<T>(totals), std::max<index>(grain, 16),
                                  std::forward<Op>(op));

  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    if (c == nchunks - 1) {
      for (index i = e - 2; i >= b; --i) data[i] = op(data[i], data[i + 1]);
    } else {
      const T& carry = totals[static_cast<std::size_t>(c + 1)];
      data[e - 1] = op(data[e - 1], carry);
      for (index i = e - 2; i >= b; --i) data[i] = op(data[i], data[i + 1]);
    }
  });
}

/// Buffer-reusing flavor of the reverse scan; same fold contracts as
/// parallel_inclusive_scan_inplace.
template <class T, class FoldLeft, class FoldRight>
void parallel_reverse_inclusive_scan_inplace(ThreadPool& pool, std::span<T> data, index grain,
                                             FoldLeft&& fold_left, FoldRight&& fold_right) {
  const index n = static_cast<index>(data.size());
  if (n <= 1) return;
  grain = std::max<index>(1, grain);
  if (pool.is_serial() || n <= 2 * grain) {
    for (index i = n - 2; i >= 0; --i) fold_left(data[i], data[i + 1]);
    return;
  }

  const index nchunks = (n + grain - 1) / grain;
  std::vector<T> totals(static_cast<std::size_t>(nchunks));

  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    T& acc = totals[static_cast<std::size_t>(c)];
    acc = data[e - 1];  // one seed copy per chunk
    for (index i = e - 2; i >= b; --i) fold_right(data[i], acc);
  });

  parallel_reverse_inclusive_scan_inplace(pool, std::span<T>(totals), std::max<index>(grain, 16),
                                          fold_left, fold_right);

  parallel_for(pool, 0, nchunks, 1, [&](index c) {
    const index b = c * grain;
    const index e = std::min(b + grain, n);
    if (c != nchunks - 1) fold_left(data[e - 1], totals[static_cast<std::size_t>(c + 1)]);
    for (index i = e - 2; i >= b; --i) fold_left(data[i], data[i + 1]);
  });
}

}  // namespace pitk::par
