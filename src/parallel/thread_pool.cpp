#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "fault/fault.hpp"
#include "obs/registry.hpp"

namespace pitk::par {

namespace {
/// Which worker queue (if any) the current thread drains; -1 for external
/// threads such as the pool owner.
thread_local int tls_worker_id = -1;
/// Pool the current worker belongs to (submit() routes to own deque only when
/// the submitting thread is a worker of the *same* pool).
thread_local const void* tls_worker_pool = nullptr;
/// Nesting depth of execute_counted on the current thread.  A join that
/// helps via run_one() runs nested tasks inside an outer task's timed
/// window; only depth 0 reads the clock, so busy time is never double-billed
/// (and nested tasks cost two relaxed adds, not two clock reads).
thread_local int tls_task_depth = 0;

/// Process-wide mirrors, aggregated across every pool.  Registered once
/// (cold, may allocate); recording is relaxed atomics only.
struct PoolMetrics {
  obs::Counter& tasks = obs::counter("pitk.pool.tasks_executed");
  obs::Counter& busy_ns = obs::counter("pitk.pool.busy_ns");
  obs::Gauge& workers_busy = obs::gauge("pitk.pool.workers_busy");
};

PoolMetrics& pool_metrics() {
  // Leaked like the registry itself: workers racing process exit may still
  // finish a task and record through these references.
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  (void)pool_metrics();  // register metrics while construction is still cold
  nthreads_ = std::max(1u, threads);
  const unsigned workers = nthreads_ - 1;
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) queues_.push_back(std::make_unique<Worker>());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::hardware_cores() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned ThreadPool::default_concurrency() noexcept {
  if (const char* env = std::getenv("PITK_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(env, &end, 10);
    // Strict positive integers only; garbage, trailing junk, overflow, and
    // non-positive values fall back, and absurd counts clamp so that a typo
    // cannot ask the constructor for a billion threads.
    constexpr long long max_threads = 1024;
    if (end != env && *end == '\0' && errno == 0 && v > 0)
      return static_cast<unsigned>(std::min(v, max_threads));
  }
  return hardware_cores();
}

bool ThreadPool::current_thread_in_pool() const noexcept {
  return tls_worker_pool == this && tls_worker_id >= 0;
}

int ThreadPool::current_worker_id() const noexcept {
  return tls_worker_pool == this ? tls_worker_id : -1;
}

void ThreadPool::execute_counted(std::function<void()>& task, unsigned id) {
  if (id < queues_.size())
    queues_[id]->executed.fetch_add(1, std::memory_order_relaxed);
  else
    external_executed_.fetch_add(1, std::memory_order_relaxed);
  PoolMetrics& m = pool_metrics();
  m.tasks.add(1);
  // Deterministic fault site: tests arm a delay here to simulate a stalled
  // worker (deadline-miss and backpressure scenarios).  Disarmed this is one
  // relaxed load.
  fault::inject_delay("pool.task");
  if (tls_task_depth > 0) {
    // Nested helping: the enclosing task's window already covers this time.
    task();
    return;
  }
  ++tls_task_depth;
  m.workers_busy.add(1.0);
  const auto t0 = std::chrono::steady_clock::now();
  task();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           t0)
          .count());
  busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  m.busy_ns.add(ns);
  m.workers_busy.add(-1.0);
  --tls_task_depth;
}

std::uint64_t ThreadPool::worker_tasks_executed(unsigned id) const noexcept {
  if (id < queues_.size()) return queues_[id]->executed.load(std::memory_order_relaxed);
  return external_executed_.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_executed() const noexcept {
  std::uint64_t n = external_executed_.load(std::memory_order_relaxed);
  for (const auto& q : queues_) n += q->executed.load(std::memory_order_relaxed);
  return n;
}

double ThreadPool::busy_seconds() const noexcept {
  return static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double ThreadPool::utilization() const noexcept {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  if (wall <= 0.0) return 0.0;
  return std::min(1.0, busy_seconds() / (wall * static_cast<double>(nthreads_)));
}

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {
    // Serial pool: run inline; there is nobody else to run it.
    execute_counted(task, /*id=*/0);
    return;
  }
  unsigned target;
  if (tls_worker_pool == this && tls_worker_id >= 0) {
    target = static_cast<unsigned>(tls_worker_id);
  } else {
    target = rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_one();
  }
}

bool ThreadPool::pop_from(unsigned victim, bool back, std::function<void()>& out) {
  Worker& w = *queues_[victim];
  std::lock_guard<std::mutex> lk(w.mu);
  if (w.tasks.empty()) return false;
  if (back) {
    out = std::move(w.tasks.back());
    w.tasks.pop_back();
  } else {
    out = std::move(w.tasks.front());
    w.tasks.pop_front();
  }
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool ThreadPool::find_task(unsigned self, std::function<void()>& out) {
  const unsigned n = static_cast<unsigned>(queues_.size());
  if (n == 0) return false;
  // Own deque first (LIFO for cache locality), then steal FIFO from victims
  // in a rotated order so thieves spread out (randomized-enough stealing).
  if (self < n && pop_from(self, /*back=*/true, out)) return true;
  const unsigned start = self < n ? self + 1 : rr_.fetch_add(1, std::memory_order_relaxed);
  for (unsigned d = 0; d < n; ++d) {
    const unsigned victim = (start + d) % n;
    if (victim == self) continue;
    if (pop_from(victim, /*back=*/false, out)) return true;
  }
  return false;
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  const unsigned self =
      (tls_worker_pool == this && tls_worker_id >= 0) ? static_cast<unsigned>(tls_worker_id)
                                                      : static_cast<unsigned>(queues_.size());
  if (!find_task(self, task)) return false;
  execute_counted(task, self);
  return true;
}

void ThreadPool::worker_loop(unsigned id) {
  tls_worker_id = static_cast<int>(id);
  tls_worker_pool = this;
  std::function<void()> task;
  for (;;) {
    if (find_task(id, task)) {
      execute_counted(task, id);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

}  // namespace pitk::par
