#pragma once

/// \file task_group.hpp
/// Structured fork-join task group (tbb::task_group replacement).
///
/// Supports irregular nested parallelism: the odd-even recursion and the
/// examples spawn subtasks and join them; a joining thread *helps* execute
/// pending pool tasks instead of blocking, so nested groups cannot deadlock
/// the pool.

#include <atomic>
#include <exception>
#include <mutex>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace pitk::par {

class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { wait(); }

  /// Schedule `fn` to run on the pool (or inline for serial pools).
  template <class F>
  void run(F&& fn) {
    if (pool_.is_serial()) {
      invoke_noexcept(std::forward<F>(fn));
      return;
    }
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    pool_.submit([this, f = std::forward<F>(fn)]() mutable {
      invoke_noexcept(std::move(f));
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        outstanding_.notify_all();
    });
  }

  /// Block until every task submitted through run() has finished, helping
  /// with pool work meanwhile.  Rethrows the first captured exception.
  void wait() {
    unsigned n = outstanding_.load(std::memory_order_acquire);
    while (n != 0) {
      if (!pool_.run_one()) outstanding_.wait(n, std::memory_order_acquire);
      n = outstanding_.load(std::memory_order_acquire);
    }
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
  }

 private:
  template <class F>
  void invoke_noexcept(F&& fn) noexcept {
    try {
      std::forward<F>(fn)();
    } catch (...) {
      std::call_once(error_once_, [this] { error_ = std::current_exception(); });
    }
  }

  ThreadPool& pool_;
  std::atomic<unsigned> outstanding_{0};
  std::exception_ptr error_;
  std::once_flag error_once_;
};

}  // namespace pitk::par
