#pragma once

/// \file thread_pool.hpp
/// Work-stealing thread pool: the substitute for TBB's task scheduler.
///
/// The paper implements its smoothers on Intel TBB (randomized work-stealing
/// scheduler, parallel_for / parallel_scan, nested parallelism).  This pool
/// provides the same contract: N-way concurrency where the *calling* thread
/// participates as one of the N, per-worker deques with LIFO pop / FIFO
/// steal, and helping (a thread that blocks on a join executes other pending
/// tasks instead of sleeping), which is what makes nested parallelism safe.
///
/// A pool constructed with `threads == 1` runs everything inline on the
/// caller; the higher-level loops detect this and skip all scheduling
/// machinery, which matches the paper's separately-compiled sequential
/// variants ("replace tbb::parallel_for with simple C loops").

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pitk::par {

class ThreadPool {
 public:
  /// Create a pool with total concurrency `threads` (caller + threads-1
  /// workers).  threads == 0 is promoted to 1.
  explicit ThreadPool(unsigned threads = default_concurrency());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total concurrency including the calling thread.
  [[nodiscard]] unsigned concurrency() const noexcept { return nthreads_; }

  /// True when everything runs inline on the caller (no workers).
  [[nodiscard]] bool is_serial() const noexcept { return nthreads_ <= 1; }

  /// Submit a detached task.  When called from a pool worker the task goes to
  /// that worker's own deque (LIFO locality, like TBB spawn); otherwise it is
  /// placed round-robin.
  void submit(std::function<void()> task);

  /// Execute one pending task on the calling thread if any is available.
  /// Used by joins to help instead of blocking.  Returns false if no task
  /// was found.
  bool run_one();

  /// True when the calling thread is one of this pool's workers.  Callers
  /// that hold a slot on the pool (the engine's job bodies, nested loops)
  /// use this to decide that waiting must help via run_one() rather than
  /// block, so the pool never loses a lane to a sleeping worker.
  [[nodiscard]] bool current_thread_in_pool() const noexcept;

  /// Stable index [0, concurrency()-1) of the calling worker, or -1 for
  /// threads outside the pool (including its owner).  The engine keys its
  /// per-worker solver caches off this.
  [[nodiscard]] int current_worker_id() const noexcept;

  /// Number of physical/logical cores reported by the OS (never 0).
  static unsigned hardware_cores() noexcept;

  /// Default concurrency for pools that do not pin a thread count: the
  /// PITK_THREADS environment variable when set to a positive integer
  /// (deterministic pool sizes for benches and CI), else hardware_cores().
  static unsigned default_concurrency() noexcept;

  // ---- observability (see src/obs/) ----------------------------------
  // Every executed task is counted per worker and mirrored into the global
  // metrics registry (pitk.pool.tasks_executed, pitk.pool.busy_ns,
  // pitk.pool.workers_busy); busy time is measured only for outermost tasks
  // so a join that helps via run_one() is not double-billed.

  /// Tasks executed by worker `id` in [0, concurrency()-1); the last slot
  /// (id == concurrency()-1) aggregates external threads — the pool owner
  /// helping through run_one() and inline execution on a serial pool.
  [[nodiscard]] std::uint64_t worker_tasks_executed(unsigned id) const noexcept;

  /// Total tasks executed on behalf of this pool (all workers + external).
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept;

  /// Seconds this pool's lanes spent inside outermost tasks since
  /// construction (nested helping is charged to the outer task's window).
  [[nodiscard]] double busy_seconds() const noexcept;

  /// Lifetime busy fraction: busy_seconds over wall-time-since-construction
  /// times concurrency().  An engine pool saturated by batched jobs
  /// approaches 1; a pool parked between requests decays toward 0.
  [[nodiscard]] double utilization() const noexcept;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
    std::atomic<std::uint64_t> executed{0};
  };

  void worker_loop(unsigned id);
  bool pop_from(unsigned victim, bool back, std::function<void()>& out);
  bool find_task(unsigned self, std::function<void()>& out);
  /// Run `task`, counting it (and, when outermost on this thread, its wall
  /// time) against worker slot `id` (== queues_.size() for external threads).
  void execute_counted(std::function<void()>& task, unsigned id);

  std::vector<std::unique_ptr<Worker>> queues_;  // one per worker thread
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<unsigned> rr_{0};
  unsigned nthreads_ = 1;
  std::atomic<std::uint64_t> external_executed_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

}  // namespace pitk::par
