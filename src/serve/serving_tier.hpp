#pragma once

/// \file serving_tier.hpp
/// ServingTier: N SmootherEngine shards behind a tenant-centric front door.
///
///   tenant id ──hash/pin/hook──▶ shard s
///                                   │
///          Interactive ────────────▶│  direct submit (no buffer)
///          Standard/BestEffort ────▶│  per-(shard,class) buffer
///                                   │    flush on size or deadline
///                                   ▼
///                         SmootherEngine shard s
///                         (own pool, bounded queue)
///
/// Placement: a stable byte-hash of the tenant id modulo the shard count,
/// overridable per tenant with pin() and globally with a rebalance hook —
/// the same id maps to the same shard across process restarts, which is
/// what keeps durable journal placement (SessionStore::shard_store) and
/// the shard-migration follow-up coherent.
///
/// Admission: before a request enters a shard, the tier estimates that
/// shard's queue wait as queued_jobs x measured seconds/job / concurrency
/// (from EngineStats, sampled at most every ~1ms) plus its own unflushed
/// buffers.  A class over its budget sheds (future fails with
/// SolveErrorCode::QueueFull) or blocks briefly, per ClassOptions.  Every
/// decision is mirrored to pitk.serve.* registry counters and trace events.
///
/// Batching: buffered classes resolve their deadline/timeout at tier-submit
/// time, so time spent in the buffer counts against the request's deadline;
/// flushed jobs ride the engine's normal small/large scheduling.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "serve/options.hpp"
#include "serve/tenant.hpp"

namespace pitk::io {
class SessionStore;
}

namespace pitk::serve {

/// Tier-level counters per tenant class (engine-level numbers live in each
/// shard's EngineStats; TierStats covers what only the tier can see).
struct TierClassStats {
  std::uint64_t submitted = 0;  ///< requests handed to the tier
  std::uint64_t direct = 0;     ///< bypassed the buffer (submit-through)
  std::uint64_t batched = 0;    ///< entered a flush buffer
  std::uint64_t shed = 0;       ///< failed admission (QueueFull at the door)
  std::uint64_t blocked = 0;    ///< admissions that waited before entering
};

struct TierStats {
  TierClassStats classes[num_tenant_classes];
  std::uint64_t size_flushes = 0;      ///< buffers flushed because full
  std::uint64_t deadline_flushes = 0;  ///< buffers flushed by age
  std::uint64_t sessions_opened = 0;
  std::uint64_t durable_sessions_opened = 0;
};

class ServingTier {
 public:
  explicit ServingTier(ServeOptions opts = ServeOptions::env_defaults());

  ServingTier(const ServingTier&) = delete;
  ServingTier& operator=(const ServingTier&) = delete;

  /// Flushes every buffer, drains every shard, and fulfills all
  /// outstanding batch futures before tearing the shards down.
  ~ServingTier();

  [[nodiscard]] unsigned num_shards() const noexcept;

  /// Resolve (place) a tenant: pin wins over the rebalance hook wins over
  /// the consistent hash.  Cheap enough to call per request, stable enough
  /// to cache.
  [[nodiscard]] TenantHandle tenant(std::string_view id,
                                    TenantClass cls = TenantClass::Standard);

  /// The shard `id` currently resolves to (without constructing a handle).
  [[nodiscard]] unsigned shard_of(std::string_view id) const;

  /// Pin `id` to a shard (wins over hash and hook) / drop the pin.
  void pin(std::string_view id, unsigned shard);
  void unpin(std::string_view id);

  /// Placement override consulted for unpinned tenants: return the target
  /// shard or nullopt to accept the consistent-hash shard.  The hook must
  /// be deterministic per id to keep placement stable.
  using RebalanceHook =
      std::function<std::optional<unsigned>(std::string_view id, unsigned hashed_shard)>;
  void set_rebalance_hook(RebalanceHook hook);

  /// Submit one request for `t`.  Interactive (and any class configured
  /// submit-through) goes straight to the shard engine; buffered classes
  /// accumulate and flush on size or deadline.  Jobs too large for
  /// whole-job batching bypass the buffer regardless of class.  The future
  /// fails with SolveError(QueueFull) when the class's admission budget
  /// sheds the request.
  [[nodiscard]] std::future<engine::JobResult> submit(const TenantHandle& t, Request req,
                                                      engine::SubmitOptions opts = {});

  /// Nonlinear requests submit through (outer Gauss-Newton loops do not
  /// coalesce); admission control still applies.
  [[nodiscard]] std::future<engine::JobResult> submit_nonlinear(
      const TenantHandle& t, engine::NonlinearJob job, engine::NonlinearJobOptions opts = {});

  /// Open a streaming session on `t`'s shard.  With opts.store set the
  /// journal is placed shard-aware via SessionStore::shard_store(t.shard())
  /// — and opts.id defaults to the tenant id — so recover() can rebuild
  /// every shard's sessions on the right shard.
  [[nodiscard]] engine::Session open_session(const TenantHandle& t, la::index n0,
                                             engine::SessionOptions opts = {});
  [[nodiscard]] engine::NonlinearSession open_session(const TenantHandle& t,
                                                      kalman::NonlinearModel model,
                                                      la::Vector u0,
                                                      engine::SessionOptions opts = {});

  /// Recover every shard subdirectory of `base` (the store handed to
  /// open_session, not a shard_store) on its own shard engine.  Returns
  /// (shard, recovered) pairs in shard order.
  [[nodiscard]] std::vector<std::pair<unsigned, engine::RecoveredSessions>> recover(
      const io::SessionStore& base, const engine::RecoveryOptions& opts = {});

  /// Submit every buffered request now, regardless of size/deadline.
  void flush();

  /// flush() + drain every shard + forward every outstanding batch future.
  void wait_idle();

  [[nodiscard]] engine::SmootherEngine& shard_engine(unsigned shard);
  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }
  [[nodiscard]] TierStats stats() const;

 private:
  struct Shard;
  struct PendingJob;

  [[nodiscard]] Shard& shard(unsigned s);
  [[nodiscard]] unsigned place(std::string_view id) const;
  /// Estimated seconds a job admitted now would wait in `sh`'s queue.
  [[nodiscard]] double estimated_queue_wait(Shard& sh) const;
  /// Admission decision for one request; updates counters.  True = enter.
  [[nodiscard]] bool admit(Shard& sh, TenantClass cls);
  /// Move `batch` out of the buffer into the shard engine, wiring each
  /// engine future to its tier promise (drained by the pump thread).
  void flush_batch(Shard& sh, TenantClass cls, std::vector<PendingJob> batch);
  /// Forward completed engine futures into tier promises; returns the
  /// number still outstanding.
  std::size_t pump_forwarded(Shard& sh);
  void pump_loop();

  ServeOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex place_mu_;
  std::vector<std::pair<std::string, unsigned>> pins_;  ///< few pins: linear scan
  RebalanceHook hook_;

  std::atomic<std::uint64_t> class_submitted_[num_tenant_classes] = {};
  std::atomic<std::uint64_t> class_direct_[num_tenant_classes] = {};
  std::atomic<std::uint64_t> class_batched_[num_tenant_classes] = {};
  std::atomic<std::uint64_t> class_shed_[num_tenant_classes] = {};
  std::atomic<std::uint64_t> class_blocked_[num_tenant_classes] = {};
  std::atomic<std::uint64_t> size_flushes_{0};
  std::atomic<std::uint64_t> deadline_flushes_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> durable_sessions_opened_{0};

  // Pump thread last: its loop touches every member above.
  std::atomic<bool> stop_{false};
  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  std::thread pump_;
};

}  // namespace pitk::serve
