#pragma once

/// \file tenant.hpp
/// The tenant-centric request vocabulary of the serving tier.
///
/// Callers do not talk to engines or shards: they resolve a TenantHandle
/// once (placement happens there — consistent hash, pin, or rebalance
/// hook) and then submit Requests against it.  The handle is a small
/// value: copy it freely, keep it across requests, and re-resolve it after
/// a restart — placement is stable, so the same tenant id lands on the
/// same shard.

#include <optional>
#include <string>

#include "kalman/model.hpp"
#include "serve/options.hpp"

namespace pitk::serve {

class ServingTier;

/// A placed tenant: id, class, and the shard its requests route to.
class TenantHandle {
 public:
  TenantHandle() = default;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] TenantClass tenant_class() const noexcept { return class_; }
  [[nodiscard]] unsigned shard() const noexcept { return shard_; }

 private:
  friend class ServingTier;
  TenantHandle(std::string id, TenantClass c, unsigned shard)
      : id_(std::move(id)), class_(c), shard_(shard) {}

  std::string id_;
  TenantClass class_ = TenantClass::Standard;
  unsigned shard_ = 0;
};

/// One smoothing request: the problem plus the linear-job knobs that are
/// not part of the shared engine::SubmitOptions.
struct Request {
  kalman::Problem problem;
  /// Prior on u_0; required by the conventional backends (rts/associative).
  std::optional<kalman::GaussianPrior> prior;
  bool compute_covariance = true;
};

}  // namespace pitk::serve
