#include "serve/serving_tier.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <string>

#include "engine/backend.hpp"
#include "engine/control.hpp"
#include "io/session_store.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pitk::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// FNV-1a over the tenant id bytes: stable across processes and builds, so
/// placement survives restarts (the property the placement test pins).
std::uint64_t stable_hash(std::string_view id) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long n = std::atol(v);
  return n > 0 ? static_cast<unsigned>(n) : fallback;
}

/// Registry handles, resolved once (same leaked-singleton pattern as the
/// engine's metrics): the warm submit path only bumps relaxed atomics.
struct ServeMetrics {
  obs::Counter* submitted[num_tenant_classes];
  obs::Counter* shed[num_tenant_classes];
  obs::Counter* batched[num_tenant_classes];
  obs::Counter* blocked[num_tenant_classes];
  obs::Counter& size_flushes = obs::counter("pitk.serve.size_flushes");
  obs::Counter& deadline_flushes = obs::counter("pitk.serve.deadline_flushes");
  obs::Counter& sessions = obs::counter("pitk.serve.sessions_opened");
  obs::Gauge& shards = obs::gauge("pitk.serve.shards");
  obs::Histogram& est_wait_s = obs::histogram("pitk.serve.admission_est_wait_s");

  ServeMetrics() {
    for (int c = 0; c < num_tenant_classes; ++c) {
      const std::string cls = tenant_class_name(static_cast<TenantClass>(c));
      submitted[c] = &obs::counter("pitk.serve.submitted." + cls);
      shed[c] = &obs::counter("pitk.serve.shed." + cls);
      batched[c] = &obs::counter("pitk.serve.batched." + cls);
      blocked[c] = &obs::counter("pitk.serve.blocked." + cls);
    }
  }
};

ServeMetrics& metrics() {
  static ServeMetrics* m = new ServeMetrics();
  return *m;
}

std::future<engine::JobResult> shed_future(TenantClass cls) {
  std::promise<engine::JobResult> p;
  p.set_exception(std::make_exception_ptr(engine::SolveError(
      engine::SolveErrorCode::QueueFull,
      std::string("serve: admission shed (class ") + tenant_class_name(cls) + ")")));
  return p.get_future();
}

/// Resolve the absolute deadline at tier-submit time so buffered waiting
/// counts against it (same min-of-absolute-and-relative rule as the engine).
std::optional<Clock::time_point> resolve_deadline(const engine::SubmitOptions& o,
                                                  Clock::time_point now) {
  std::optional<Clock::time_point> dl = o.deadline;
  if (o.timeout) {
    const auto rel = now + std::chrono::duration_cast<Clock::duration>(*o.timeout);
    dl = dl ? std::min(*dl, rel) : rel;
  }
  return dl;
}

}  // namespace

ServeOptions ServeOptions::env_defaults() {
  ServeOptions o;
  o.shards = env_unsigned("PITK_SHARDS", 0);
  o.threads_per_shard = env_unsigned("PITK_SERVE_THREADS", 0);
  const double flush_jobs = env_double("PITK_SERVE_FLUSH_JOBS", 0.0);
  if (flush_jobs >= 1.0) {
    o.classes[tenant_class_index(TenantClass::Standard)].flush_max_jobs =
        static_cast<std::size_t>(flush_jobs);
    o.classes[tenant_class_index(TenantClass::BestEffort)].flush_max_jobs =
        static_cast<std::size_t>(flush_jobs * 4);
  }
  const double flush_ms = env_double("PITK_SERVE_FLUSH_MS", -1.0);
  if (flush_ms >= 0.0) {
    o.classes[tenant_class_index(TenantClass::Standard)].flush_deadline_seconds =
        flush_ms * 1e-3;
    o.classes[tenant_class_index(TenantClass::BestEffort)].flush_deadline_seconds =
        flush_ms * 5e-3;
  }
  const double wait_ms = env_double("PITK_SERVE_WAIT_MS", -1.0);
  if (wait_ms >= 0.0) {
    o.classes[tenant_class_index(TenantClass::Interactive)].max_queue_wait_seconds =
        wait_ms * 2e-3;
    o.classes[tenant_class_index(TenantClass::Standard)].max_queue_wait_seconds =
        wait_ms * 1e-3;
    o.classes[tenant_class_index(TenantClass::BestEffort)].max_queue_wait_seconds =
        wait_ms * 0.4e-3;
  }
  return o;
}

/// One buffered request: everything flush_batch needs to build the engine
/// job, plus the tier-owned promise its caller is waiting on.
struct ServingTier::PendingJob {
  kalman::Problem problem;
  std::optional<kalman::GaussianPrior> prior;
  bool compute_covariance = true;
  engine::SubmitOptions ctl;  ///< deadline already resolved; timeout cleared
  std::shared_ptr<std::promise<engine::JobResult>> promise;
};

struct ServingTier::Shard {
  std::unique_ptr<engine::SmootherEngine> engine;

  /// Flush buffers, guarded by buf_mu.
  std::mutex buf_mu;
  std::vector<PendingJob> pending[num_tenant_classes];
  Clock::time_point oldest[num_tenant_classes] = {};
  /// Buffered-but-unflushed request count, visible to admission without
  /// taking buf_mu.
  std::atomic<std::uint64_t> buffered{0};

  /// Admission estimate: measured seconds/job, refreshed from EngineStats
  /// at most every ~1ms (stats() takes a mutex; the estimate does not).
  std::atomic<double> avg_solve_seconds{0.0};
  std::atomic<std::int64_t> last_sample_ns{0};

  /// Engine futures of flushed batch jobs, waiting to be forwarded into
  /// their tier promises by the pump thread.
  std::mutex fwd_mu;
  std::deque<std::pair<std::future<engine::JobResult>,
                       std::shared_ptr<std::promise<engine::JobResult>>>>
      forwarded;
};

ServingTier::ServingTier(ServeOptions opts) : opts_(opts) {
  if (opts_.shards == 0)
    opts_.shards = std::max(1u, par::ThreadPool::default_concurrency() / 4);
  if (opts_.threads_per_shard == 0)
    opts_.threads_per_shard =
        std::max(1u, par::ThreadPool::default_concurrency() / opts_.shards);
  engine::EngineOptions eo = opts_.engine;
  eo.threads = opts_.threads_per_shard;
  if (eo.max_queued_jobs == 0) {
    // Per-shard bounded queue: the tier's admission budgets normally keep
    // the queue far below this; the engine bound is the hard backstop.
    eo.max_queued_jobs = 4096;
    eo.queue_policy = engine::QueuePolicy::Block;
  }
  shards_.reserve(opts_.shards);
  for (unsigned s = 0; s < opts_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->engine = std::make_unique<engine::SmootherEngine>(eo);
    shards_.push_back(std::move(sh));
  }
  metrics().shards.set(static_cast<double>(opts_.shards));
  pump_ = std::thread([this] { pump_loop(); });
}

ServingTier::~ServingTier() {
  {
    std::lock_guard<std::mutex> lk(pump_mu_);
    stop_.store(true, std::memory_order_release);
  }
  pump_cv_.notify_all();
  if (pump_.joinable()) pump_.join();
  wait_idle();
}

unsigned ServingTier::num_shards() const noexcept { return opts_.shards; }

ServingTier::Shard& ServingTier::shard(unsigned s) {
  if (s >= shards_.size()) throw std::out_of_range("ServingTier: shard out of range");
  return *shards_[s];
}

unsigned ServingTier::place(std::string_view id) const {
  {
    std::lock_guard<std::mutex> lk(place_mu_);
    for (const auto& [pid, s] : pins_)
      if (pid == id) return s % opts_.shards;
    if (hook_) {
      const unsigned hashed = static_cast<unsigned>(stable_hash(id) % opts_.shards);
      if (auto s = hook_(id, hashed)) return *s % opts_.shards;
      return hashed;
    }
  }
  return static_cast<unsigned>(stable_hash(id) % opts_.shards);
}

TenantHandle ServingTier::tenant(std::string_view id, TenantClass cls) {
  return TenantHandle(std::string(id), cls, place(id));
}

unsigned ServingTier::shard_of(std::string_view id) const { return place(id); }

void ServingTier::pin(std::string_view id, unsigned shard) {
  std::lock_guard<std::mutex> lk(place_mu_);
  for (auto& [pid, s] : pins_)
    if (pid == id) {
      s = shard;
      return;
    }
  pins_.emplace_back(std::string(id), shard);
}

void ServingTier::unpin(std::string_view id) {
  std::lock_guard<std::mutex> lk(place_mu_);
  pins_.erase(std::remove_if(pins_.begin(), pins_.end(),
                             [&](const auto& p) { return p.first == id; }),
              pins_.end());
}

void ServingTier::set_rebalance_hook(RebalanceHook hook) {
  std::lock_guard<std::mutex> lk(place_mu_);
  hook_ = std::move(hook);
}

double ServingTier::estimated_queue_wait(Shard& sh) const {
  const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now().time_since_epoch())
                          .count();
  std::int64_t last = sh.last_sample_ns.load(std::memory_order_relaxed);
  if (now_ns - last > 1'000'000 &&
      sh.last_sample_ns.compare_exchange_strong(last, now_ns, std::memory_order_relaxed)) {
    const engine::EngineStats st = sh.engine->stats();
    if (st.jobs_completed > 0)
      sh.avg_solve_seconds.store(st.total_solve_seconds /
                                     static_cast<double>(st.jobs_completed),
                                 std::memory_order_relaxed);
  }
  const double avg = sh.avg_solve_seconds.load(std::memory_order_relaxed);
  const double queued = static_cast<double>(sh.engine->queued_jobs()) +
                        static_cast<double>(sh.buffered.load(std::memory_order_relaxed));
  return queued * avg / static_cast<double>(sh.engine->concurrency());
}

bool ServingTier::admit(Shard& sh, TenantClass cls) {
  const int c = tenant_class_index(cls);
  const ClassOptions& co = opts_.classes[c];
  double wait = estimated_queue_wait(sh);
  metrics().est_wait_s.record(wait);
  if (wait <= co.max_queue_wait_seconds) return true;
  if (co.block) {
    class_blocked_[c].fetch_add(1, std::memory_order_relaxed);
    metrics().blocked[c]->add(1);
    const auto give_up = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                            std::chrono::duration<double>(co.max_block_seconds));
    while (Clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      wait = estimated_queue_wait(sh);
      if (wait <= co.max_queue_wait_seconds) return true;
    }
  }
  class_shed_[c].fetch_add(1, std::memory_order_relaxed);
  metrics().shed[c]->add(1);
  obs::trace::instant("serve.shed");
  return false;
}

std::future<engine::JobResult> ServingTier::submit(const TenantHandle& t, Request req,
                                                   engine::SubmitOptions opts) {
  const int c = tenant_class_index(t.tenant_class());
  const ClassOptions& co = opts_.classes[c];
  Shard& sh = shard(t.shard());
  class_submitted_[c].fetch_add(1, std::memory_order_relaxed);
  metrics().submitted[c]->add(1);

  if (!admit(sh, t.tenant_class())) return shed_future(t.tenant_class());

  const auto now = Clock::now();
  const bool batchable =
      (co.flush_max_jobs > 1 || co.flush_deadline_seconds > 0.0) &&
      engine::estimated_flops(req.problem, req.compute_covariance) <
          engine::calibrated_small_job_flops();

  if (!batchable) {
    class_direct_[c].fetch_add(1, std::memory_order_relaxed);
    engine::JobOptions jo;
    static_cast<engine::SubmitOptions&>(jo) = std::move(opts);
    jo.compute_covariance = req.compute_covariance;
    jo.prior = std::move(req.prior);
    return sh.engine->submit(std::move(req.problem), std::move(jo));
  }

  class_batched_[c].fetch_add(1, std::memory_order_relaxed);
  metrics().batched[c]->add(1);
  PendingJob pj;
  pj.problem = std::move(req.problem);
  pj.prior = std::move(req.prior);
  pj.compute_covariance = req.compute_covariance;
  pj.ctl = std::move(opts);
  pj.ctl.deadline = resolve_deadline(pj.ctl, now);
  pj.ctl.timeout.reset();
  pj.promise = std::make_shared<std::promise<engine::JobResult>>();
  std::future<engine::JobResult> fut = pj.promise->get_future();

  std::vector<PendingJob> full;
  {
    std::lock_guard<std::mutex> lk(sh.buf_mu);
    auto& buf = sh.pending[c];
    if (buf.empty()) sh.oldest[c] = now;
    buf.push_back(std::move(pj));
    sh.buffered.fetch_add(1, std::memory_order_relaxed);
    if (buf.size() >= co.flush_max_jobs) {
      full = std::move(buf);
      buf.clear();
    }
  }
  if (!full.empty()) {
    size_flushes_.fetch_add(1, std::memory_order_relaxed);
    metrics().size_flushes.add(1);
    flush_batch(sh, t.tenant_class(), std::move(full));
  }
  return fut;
}

std::future<engine::JobResult> ServingTier::submit_nonlinear(
    const TenantHandle& t, engine::NonlinearJob job, engine::NonlinearJobOptions opts) {
  const int c = tenant_class_index(t.tenant_class());
  Shard& sh = shard(t.shard());
  class_submitted_[c].fetch_add(1, std::memory_order_relaxed);
  metrics().submitted[c]->add(1);
  if (!admit(sh, t.tenant_class())) return shed_future(t.tenant_class());
  class_direct_[c].fetch_add(1, std::memory_order_relaxed);
  return sh.engine->submit_nonlinear(std::move(job), std::move(opts));
}

void ServingTier::flush_batch(Shard& sh, TenantClass cls, std::vector<PendingJob> batch) {
  PITK_TRACE_SPAN("serve.flush");
  (void)cls;
  sh.buffered.fetch_sub(batch.size(), std::memory_order_relaxed);
  // Submit outside fwd_mu (a Block-policy engine may run jobs inline here),
  // then hand the futures to the pump in one append.
  std::vector<std::pair<std::future<engine::JobResult>,
                        std::shared_ptr<std::promise<engine::JobResult>>>>
      launched;
  launched.reserve(batch.size());
  for (PendingJob& pj : batch) {
    engine::JobOptions jo;
    static_cast<engine::SubmitOptions&>(jo) = std::move(pj.ctl);
    jo.compute_covariance = pj.compute_covariance;
    jo.prior = std::move(pj.prior);
    try {
      launched.emplace_back(sh.engine->submit(std::move(pj.problem), std::move(jo)),
                            std::move(pj.promise));
    } catch (...) {
      pj.promise->set_exception(std::current_exception());
    }
  }
  std::lock_guard<std::mutex> lk(sh.fwd_mu);
  for (auto& l : launched) sh.forwarded.push_back(std::move(l));
}

std::size_t ServingTier::pump_forwarded(Shard& sh) {
  std::lock_guard<std::mutex> lk(sh.fwd_mu);
  for (std::size_t i = 0; i < sh.forwarded.size();) {
    auto& [fut, promise] = sh.forwarded[i];
    if (fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++i;
      continue;
    }
    try {
      promise->set_value(fut.get());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
    sh.forwarded[i] = std::move(sh.forwarded.back());
    sh.forwarded.pop_back();
  }
  return sh.forwarded.size();
}

void ServingTier::pump_loop() {
  std::unique_lock<std::mutex> lk(pump_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    lk.unlock();
    const auto now = Clock::now();
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      for (int c = 0; c < num_tenant_classes; ++c) {
        const double dl = opts_.classes[c].flush_deadline_seconds;
        std::vector<PendingJob> due;
        {
          std::lock_guard<std::mutex> blk(sh.buf_mu);
          auto& buf = sh.pending[c];
          if (!buf.empty() &&
              std::chrono::duration<double>(now - sh.oldest[c]).count() >= dl) {
            due = std::move(buf);
            buf.clear();
          }
        }
        if (!due.empty()) {
          deadline_flushes_.fetch_add(1, std::memory_order_relaxed);
          metrics().deadline_flushes.add(1);
          flush_batch(sh, static_cast<TenantClass>(c), std::move(due));
        }
      }
      (void)pump_forwarded(sh);
    }
    lk.lock();
    pump_cv_.wait_for(lk, std::chrono::duration<double>(opts_.flusher_tick_seconds),
                      [this] { return stop_.load(std::memory_order_acquire); });
  }
}

void ServingTier::flush() {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    for (int c = 0; c < num_tenant_classes; ++c) {
      std::vector<PendingJob> due;
      {
        std::lock_guard<std::mutex> lk(sh.buf_mu);
        due = std::move(sh.pending[c]);
        sh.pending[c].clear();
      }
      if (!due.empty()) flush_batch(sh, static_cast<TenantClass>(c), std::move(due));
    }
  }
}

void ServingTier::wait_idle() {
  flush();
  for (;;) {
    std::size_t left = 0;
    for (auto& shp : shards_) {
      shp->engine->wait_idle();
      left += pump_forwarded(*shp);
      left += shp->buffered.load(std::memory_order_relaxed);
    }
    if (left == 0) return;
    flush();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

engine::SmootherEngine& ServingTier::shard_engine(unsigned s) { return *shard(s).engine; }

TierStats ServingTier::stats() const {
  TierStats out;
  for (int c = 0; c < num_tenant_classes; ++c) {
    out.classes[c].submitted = class_submitted_[c].load(std::memory_order_relaxed);
    out.classes[c].direct = class_direct_[c].load(std::memory_order_relaxed);
    out.classes[c].batched = class_batched_[c].load(std::memory_order_relaxed);
    out.classes[c].shed = class_shed_[c].load(std::memory_order_relaxed);
    out.classes[c].blocked = class_blocked_[c].load(std::memory_order_relaxed);
  }
  out.size_flushes = size_flushes_.load(std::memory_order_relaxed);
  out.deadline_flushes = deadline_flushes_.load(std::memory_order_relaxed);
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.durable_sessions_opened = durable_sessions_opened_.load(std::memory_order_relaxed);
  return out;
}

engine::Session ServingTier::open_session(const TenantHandle& t, la::index n0,
                                          engine::SessionOptions opts) {
  Shard& sh = shard(t.shard());
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  metrics().sessions.add(1);
  if (opts.store != nullptr) {
    durable_sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    io::SessionStore placed = opts.store->shard_store(t.shard());
    opts.store = &placed;
    if (opts.id.empty()) opts.id = t.id();
    return sh.engine->open_session(n0, opts);
  }
  return sh.engine->open_session(n0, opts);
}

engine::NonlinearSession ServingTier::open_session(const TenantHandle& t,
                                                   kalman::NonlinearModel model,
                                                   la::Vector u0,
                                                   engine::SessionOptions opts) {
  Shard& sh = shard(t.shard());
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  metrics().sessions.add(1);
  if (opts.store != nullptr) {
    durable_sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    io::SessionStore placed = opts.store->shard_store(t.shard());
    opts.store = &placed;
    if (opts.id.empty()) opts.id = t.id();
    return sh.engine->open_session(std::move(model), std::move(u0), opts);
  }
  return sh.engine->open_session(std::move(model), std::move(u0), opts);
}

std::vector<std::pair<unsigned, engine::RecoveredSessions>> ServingTier::recover(
    const io::SessionStore& base, const engine::RecoveryOptions& opts) {
  std::vector<std::pair<unsigned, engine::RecoveredSessions>> out;
  out.reserve(shards_.size());
  for (unsigned s = 0; s < shards_.size(); ++s) {
    io::SessionStore sub = base.shard_store(s);
    out.emplace_back(s, shards_[s]->engine->recover_all(sub, opts));
  }
  return out;
}

}  // namespace pitk::serve
