#pragma once

/// \file options.hpp
/// Tenant classes and tuning knobs of the sharded serving tier.
///
/// A ServingTier owns N SmootherEngine shards (each with its own thread
/// pool and bounded queue) and fronts them with a tenant-centric API.
/// Tenants belong to one of three classes that trade latency against
/// efficiency:
///
///   Interactive  submit-through: every request goes straight to its shard
///                (no batching delay), and admission *blocks* briefly under
///                backlog before shedding — the lowest-latency, last-shed
///                class.
///   Standard     small batches with a short flush deadline: requests
///                accumulate per (shard, class) and flush on size or
///                deadline, amortizing per-job dispatch.
///   BestEffort   large batches, long deadline, first to shed: throughput
///                traffic that yields the queue to the classes above.
///
/// Environment knobs (read by ServeOptions::env_defaults(); explicit
/// options always win):
///   PITK_SHARDS                  number of engine shards
///   PITK_SERVE_THREADS           pool threads per shard
///   PITK_SERVE_FLUSH_JOBS        Standard flush size (BestEffort uses 4x)
///   PITK_SERVE_FLUSH_MS         Standard flush deadline (BestEffort 5x)
///   PITK_SERVE_WAIT_MS          Standard admission budget, i.e. the max
///                               estimated shard-queue wait admitted
///                               (Interactive 2x, BestEffort 0.4x)

#include <cstddef>
#include <cstdint>

#include "engine/engine.hpp"

namespace pitk::serve {

enum class TenantClass : std::uint8_t { Interactive = 0, Standard = 1, BestEffort = 2 };

inline constexpr int num_tenant_classes = 3;

[[nodiscard]] constexpr const char* tenant_class_name(TenantClass c) noexcept {
  switch (c) {
    case TenantClass::Interactive: return "interactive";
    case TenantClass::Standard: return "standard";
    case TenantClass::BestEffort: return "besteffort";
  }
  return "unknown";
}

[[nodiscard]] constexpr int tenant_class_index(TenantClass c) noexcept {
  return static_cast<int>(c);
}

/// Per-class batching + admission policy.
struct ClassOptions {
  /// Requests buffered per (shard, class) before the buffer flushes as one
  /// engine batch.  <= 1 means submit-through (no buffering at all).
  std::size_t flush_max_jobs = 1;
  /// Oldest-request age that forces a flush even when the batch is not
  /// full.  A request therefore waits at most this long in the tier buffer
  /// on top of its shard-queue wait.  <= 0 with flush_max_jobs <= 1 means
  /// the class never buffers.
  double flush_deadline_seconds = 0.0;
  /// Admission budget: a request is admitted while the shard's *estimated*
  /// queue wait (queued jobs x measured seconds/job / shard concurrency)
  /// stays below this.  Above it the class sheds (fails the future with
  /// SolveErrorCode::QueueFull) or blocks, per `block`.
  double max_queue_wait_seconds = 0.025;
  /// Block instead of shedding: the submitting thread waits up to
  /// max_block_seconds for the backlog estimate to fall back under budget,
  /// then sheds anyway.  Interactive traffic blocks; batch traffic sheds.
  bool block = false;
  double max_block_seconds = 0.05;
};

/// Tier-wide configuration.
struct ServeOptions {
  /// Engine shards; 0 resolves to max(1, default_concurrency()/4) so a
  /// shard keeps a few lanes for intra-parallel large jobs.
  unsigned shards = 0;
  /// Pool threads per shard; 0 splits par::ThreadPool::default_concurrency()
  /// evenly across shards (at least 1 each).
  unsigned threads_per_shard = 0;
  /// Template for every shard's engine (threads is overridden by
  /// threads_per_shard; a bounded queue is applied when max_queued_jobs is
  /// left at 0 — see ServingTier's constructor).
  engine::EngineOptions engine;
  /// Per-class policy, indexed by tenant_class_index().
  ClassOptions classes[num_tenant_classes] = {
      /*Interactive*/ {1, 0.0, 0.05, true, 0.05},
      /*Standard*/ {8, 0.002, 0.025, false, 0.0},
      /*BestEffort*/ {32, 0.01, 0.01, false, 0.0},
  };
  /// Background flusher granularity: the pump thread wakes at least this
  /// often to check flush deadlines and forward completed batch futures.
  double flusher_tick_seconds = 0.0005;

  /// Defaults with the PITK_SHARDS / PITK_SERVE_* environment knobs
  /// applied (see the file comment).
  [[nodiscard]] static ServeOptions env_defaults();
};

}  // namespace pitk::serve
