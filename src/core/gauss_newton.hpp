#pragma once

/// \file gauss_newton.hpp
/// Iterated (Gauss-Newton / Levenberg-Marquardt) nonlinear Kalman smoothing.
///
/// Section 2.2 of the paper: smoothing a nonlinear dynamic system reduces to
/// a sequence of *linear* smoothing problems whose matrices are the Jacobians
/// of F_i and G_i at the current trajectory estimate, and whose right-hand
/// sides are the nonlinear residuals.  The covariances of these inner linear
/// problems are never needed, which is exactly why the paper's smoothers have
/// the "NC" (no-covariance) fast path.  Optional Levenberg-Marquardt damping
/// follows Särkkä & Svensson (ICASSP 2020): damping rows are extra
/// observations sqrt(lambda) * I * delta_i = 0 on the correction.
///
/// The solver is split into an *iteration-step* API so callers can own the
/// outer loop: `gauss_newton_init` + repeated `gauss_newton_step_into` calls
/// against a `GaussNewtonState` that owns every per-iteration buffer
/// (linearized problem, inner solution, candidate trajectory, cached noise
/// factors).  The inner linear solve is a callback, which is how the
/// multi-tenant engine routes it through its backend registry and per-worker
/// SolverCache; `gauss_newton_smooth` below is the one-shot convenience
/// wrapper driving the paper's Odd-Even NC solver.  With a warm state, a
/// model that provides the `*_into` callbacks, and a warm inner solver, an
/// outer iteration performs zero heap allocations.

#include <functional>

#include "core/oddeven.hpp"
#include "kalman/model.hpp"

namespace pitk::kalman {

struct GaussNewtonOptions {
  la::index max_iterations = 25;
  /// Stop when the correction norm falls below tol * (1 + trajectory norm).
  double tolerance = 1e-10;
  /// Levenberg-Marquardt damping (adaptive lambda, accept/reject steps).
  bool levenberg_marquardt = false;
  double lm_lambda0 = 1e-3;
  double lm_up = 10.0;
  double lm_down = 0.1;
  /// Compute covariances from the final linearization (one extra pass with
  /// the covariance phase enabled).
  bool final_covariance = false;
  OddEvenOptions linear;  ///< options of the inner Odd-Even solver
};

struct GaussNewtonResult {
  std::vector<Vector> states;
  std::vector<Matrix> covariances;  ///< only when final_covariance
  la::index iterations = 0;
  bool converged = false;
  double final_cost = 0.0;
  std::vector<double> cost_history;  ///< cost after each accepted iterate
};

/// Outcome of one outer iteration.
enum class GaussNewtonStep {
  Accepted,   ///< iterate accepted (plain GN always; LM on descent)
  Rejected,   ///< LM rejected the step and raised lambda; call again
  Converged,  ///< correction negligible: the loop is done
  Stalled,    ///< LM lambda overflowed without descent: give up
};

/// Cross-iteration state plus the warm workspace of the iterated smoother.
/// Owns everything an outer iteration touches — the linearized correction
/// problem (rebuilt in place), the inner solution, the candidate trajectory
/// and per-step noise/Jacobian scratch — so repeated iterations, and repeated
/// same-shaped runs through one state, reuse all capacity.  The engine keeps
/// one per worker inside its SolverCache.  Not thread-safe; one run at a
/// time per state.
struct GaussNewtonState {
  std::vector<Vector> states;        ///< current accepted trajectory
  double cost = 0.0;                 ///< nonlinear cost at `states`
  double lambda = 0.0;               ///< current LM damping (0 = plain GN)
  la::index iterations = 0;          ///< outer iterations run (incl. rejected)
  bool converged = false;
  std::vector<double> cost_history;  ///< cost after each accepted iterate

  // ---- warm workspace (capacity-reused across iterations and runs) ----
  Problem linearized;                ///< the correction problem
  SmootherResult delta;              ///< inner solve result (means = corrections)
  SmootherResult final_pass;         ///< final-covariance pass storage
  std::vector<Vector> candidate;     ///< proposed iterate
  std::vector<CovFactor> proc_noise; ///< process_noise(i), refreshed by init
  std::vector<CovFactor> obs_noise;  ///< obs_noise(i) for observed steps
  std::vector<Matrix> jac_scratch;   ///< LM damped-stacking scratch
  std::vector<Vector> val_scratch;
  Vector cost_scratch;
  bool noise_stale = true;           ///< linearized's noise blocks need refresh
  int lin_damped = -1;               ///< damping shape of the last linearize (-1 = none yet)
};

/// Solves the linearized correction problem into `delta` capacity-reusing
/// (means only are consumed; covariances are ignored).
using GaussNewtonLinearSolver = std::function<void(const Problem&, SmootherResult& delta)>;

/// Weighted nonlinear least-squares cost (4) of the paper at `traj`.
[[nodiscard]] double nonlinear_cost(const NonlinearModel& model,
                                    const std::vector<Vector>& traj);

/// Reset `st` for a fresh run of `model` from `init` (size k+1), reusing all
/// of the state's warm capacity.  Evaluates the noise callbacks and the
/// initial cost.  Throws std::invalid_argument on a malformed model/init.
void gauss_newton_init(const NonlinearModel& model, const std::vector<Vector>& init,
                       const GaussNewtonOptions& opts, GaussNewtonState& st);

/// One outer iteration: relinearize around st.states (with the current LM
/// lambda), solve the correction problem through `solve`, and accept/reject
/// the proposed iterate.  `pool` parallelizes the relinearization sweep.
/// Call until it returns Converged/Stalled or st.iterations reaches the
/// caller's budget.
[[nodiscard]] GaussNewtonStep gauss_newton_step_into(const NonlinearModel& model,
                                                     GaussNewtonState& st,
                                                     const GaussNewtonOptions& opts,
                                                     par::ThreadPool& pool,
                                                     const GaussNewtonLinearSolver& solve);

/// Rebuild st.linearized as the correction problem at `traj` with damping
/// `lambda` (0 = none).  Exposed for the final-covariance pass: callers solve
/// the relinearized problem once more with covariances enabled.
void gauss_newton_relinearize(const NonlinearModel& model, const std::vector<Vector>& traj,
                              double lambda, par::ThreadPool& pool, la::index grain,
                              GaussNewtonState& st);

/// Iterated smoother starting from `init` (size k+1, e.g. an extended-KF pass
/// or the observations mapped to state space).  One-shot wrapper over the
/// step API with the paper's Odd-Even NC solver as the inner engine.
[[nodiscard]] GaussNewtonResult gauss_newton_smooth(const NonlinearModel& model,
                                                    const std::vector<Vector>& init,
                                                    par::ThreadPool& pool,
                                                    const GaussNewtonOptions& opts = {});

}  // namespace pitk::kalman
