#pragma once

/// \file gauss_newton.hpp
/// Iterated (Gauss-Newton / Levenberg-Marquardt) nonlinear Kalman smoothing.
///
/// Section 2.2 of the paper: smoothing a nonlinear dynamic system reduces to
/// a sequence of *linear* smoothing problems whose matrices are the Jacobians
/// of F_i and G_i at the current trajectory estimate, and whose right-hand
/// sides are the nonlinear residuals.  The covariances of these inner linear
/// problems are never needed, which is exactly why the paper's smoothers have
/// the "NC" (no-covariance) fast path — this module drives the Odd-Even NC
/// solver as its inner engine.  Optional Levenberg-Marquardt damping follows
/// Särkkä & Svensson (ICASSP 2020): damping rows are extra observations
/// sqrt(lambda) * I * delta_i = 0 on the correction.

#include <functional>

#include "core/oddeven.hpp"
#include "kalman/model.hpp"

namespace pitk::kalman {

/// A nonlinear state-space model with H_i = I:
///   u_i = f(i, u_{i-1}) + eps_i,   o_i = g(i, u_i) + delta_i.
struct NonlinearModel {
  la::index k = 0;              ///< steps 0..k
  std::vector<la::index> dims;  ///< n_i for every state (size k+1)

  std::function<Vector(la::index, const Vector&)> f;      ///< evolution, i >= 1
  std::function<Matrix(la::index, const Vector&)> f_jac;  ///< df_i/du at u_{i-1}
  std::function<CovFactor(la::index)> process_noise;      ///< K_i

  /// Observations; steps without one have no entry (empty Vector signals
  /// absence in `obs`).
  std::vector<Vector> obs;                                ///< o_i (size k+1)
  std::function<Vector(la::index, const Vector&)> g;      ///< measurement fn
  std::function<Matrix(la::index, const Vector&)> g_jac;  ///< dg_i/du at u_i
  std::function<CovFactor(la::index)> obs_noise;          ///< L_i
};

struct GaussNewtonOptions {
  la::index max_iterations = 25;
  /// Stop when the correction norm falls below tol * (1 + trajectory norm).
  double tolerance = 1e-10;
  /// Levenberg-Marquardt damping (adaptive lambda, accept/reject steps).
  bool levenberg_marquardt = false;
  double lm_lambda0 = 1e-3;
  double lm_up = 10.0;
  double lm_down = 0.1;
  /// Compute covariances from the final linearization (one extra pass with
  /// the covariance phase enabled).
  bool final_covariance = false;
  OddEvenOptions linear;  ///< options of the inner Odd-Even solver
};

struct GaussNewtonResult {
  std::vector<Vector> states;
  std::vector<Matrix> covariances;  ///< only when final_covariance
  la::index iterations = 0;
  bool converged = false;
  double final_cost = 0.0;
  std::vector<double> cost_history;  ///< cost after each accepted iterate
};

/// Weighted nonlinear least-squares cost (4) of the paper at `traj`.
[[nodiscard]] double nonlinear_cost(const NonlinearModel& model,
                                    const std::vector<Vector>& traj);

/// Iterated smoother starting from `init` (size k+1, e.g. an extended-KF pass
/// or the observations mapped to state space).
[[nodiscard]] GaussNewtonResult gauss_newton_smooth(const NonlinearModel& model,
                                                    std::vector<Vector> init,
                                                    par::ThreadPool& pool,
                                                    const GaussNewtonOptions& opts = {});

}  // namespace pitk::kalman
