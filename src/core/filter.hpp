#pragma once

/// \file filter.hpp
/// Incremental QR information filter (UltimateKalman-style API).
///
/// The paper builds on UltimateKalman's evolve/observe interface (Section
/// 5.1); this module provides that streaming interface for *filtering*:
/// each step is orthogonally absorbed as it arrives, and the filtered
/// estimate of the current state (with covariance) can be read at any time.
/// Like all QR-based algorithms here it needs no prior, supports rectangular
/// H_i, changing state dimensions, and steps without observations.  The
/// factor rows it finalizes are exactly the Paige-Saunders bidiagonal R, so
/// a full smoothing pass can be completed at any point.

#include <cstdint>
#include <optional>
#include <span>

#include "core/paige_saunders.hpp"
#include "kalman/model.hpp"
#include "la/qr.hpp"

namespace pitk::kalman {

/// The complete serializable state of an IncrementalFilter: everything a
/// restored filter needs to continue the stream (and re-smooth) exactly as
/// the original would have.  The spare pools and scratch buffers are
/// deliberately excluded — they are capacity caches, not state.  Produced by
/// snapshot_state() / consumed by restore_state(); the pitk::io journal
/// writes one of these per compaction.
struct FilterSnapshot {
  la::index step = 0;
  la::index n = 0;
  std::uint64_t epoch = 0;     ///< reset count; restored so cached prefixes
                               ///< keyed on it invalidate correctly
  Matrix pending;              ///< live rows constraining the current state
  Vector pending_rhs;
  BidiagonalFactor finished;   ///< finalized R rows of eliminated states
};

class IncrementalFilter {
 public:
  /// Begin at state u_0 of dimension n0 (no prior; add one via observe()).
  explicit IncrementalFilter(la::index n0);

  /// Discard all accumulated state and begin again at a fresh u_0 of
  /// dimension n0.  Long-lived streaming sessions use this to start a new
  /// track without reallocating the session object: the finalized factor
  /// blocks are retired into spare pools and recycled by the next track's
  /// evolve/observe loop, which therefore performs zero heap allocations
  /// once the pools are warm (same-shaped tracks).
  void reset(la::index n0);

  /// Advance to the next state: H u_{i+1} = F u_i + c + noise, H = I.
  void evolve(Matrix f, Vector c, CovFactor k);

  /// Advance with explicit (possibly rectangular) H and a new dimension.
  void evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k);

  /// Absorb an observation of the current state: o = G u_i + noise.
  void observe(Matrix g, Vector o, CovFactor l);

  /// Index of the current state (0-based).
  [[nodiscard]] la::index current_step() const noexcept { return step_; }

  /// Dimension of the current state.
  [[nodiscard]] la::index current_dim() const noexcept { return n_; }

  /// Filtered estimate E(u_i | o_0..o_i); nullopt while the accumulated
  /// information is rank deficient (e.g. before enough observations).
  [[nodiscard]] std::optional<Vector> estimate() const;

  /// Covariance of the filtered estimate; nullopt under the same condition.
  [[nodiscard]] std::optional<Matrix> covariance() const;

  /// Finish: hand the accumulated factor rows to the smoother's back
  /// substitution, producing smoothed estimates of *all* states seen so far
  /// (optionally with SelInv covariances).  The filter remains usable.
  [[nodiscard]] SmootherResult smooth(bool with_covariances) const;

  // ---- incremental re-smoothing (finalized-prefix reuse) ----

  /// The finalized bidiagonal prefix: R row blocks of states
  /// 0..current_step()-1, exactly the first current_step() blocks of the
  /// factor smooth() solves.  Between resets the prefix only ever *appends*
  /// — evolve() finalizes one more block, observe() touches only the pending
  /// rows of the live state — so callers may cache any prefix of these
  /// blocks and later splice just the new ones with resmooth_from().
  [[nodiscard]] const BidiagonalFactor& finished_prefix() const noexcept { return finished_; }

  /// Number of finalized prefix blocks (== current_step()).
  [[nodiscard]] la::index finished_steps() const noexcept {
    return static_cast<la::index>(finished_.diag.size());
  }

  /// Monotone count of reset() calls.  reset() is the only operation that
  /// invalidates previously finalized blocks, so a cached prefix is valid
  /// exactly while the epoch it was spliced under still matches.
  [[nodiscard]] std::uint64_t reset_epoch() const noexcept { return epoch_; }

  /// Per-block decay-amplification bounds, one entry per finalized block
  /// (appended as evolve() finalizes, recomputed by restore_state(), cleared
  /// by reset()).  Entry i is
  ///   amp_i = max over j <= i of  prod_{m=j..i} ||R_mm^{-1} R_{m,m+1}||_F,
  /// the factor by which a correction to state i+1's smoothed estimate can
  /// amplify into *any* earlier state's estimate through back substitution
  /// (Frobenius bounds the spectral norm, so the bound is rigorous).  This
  /// is what lets a re-smooth stop propagating a delta early: once
  /// amp_i * ||delta_{i+1}|| falls below a tolerance, every neglected
  /// correction is provably below it too.  Infinity when a finalized
  /// diagonal block is rank deficient (no truncation across it).
  [[nodiscard]] std::span<const double> decay_amplification() const noexcept {
    return decay_amp_;
  }

  /// Bring a cached factor up to date by re-running the factor assembly only
  /// for steps at/after `step`, the first index where `f` may differ from
  /// this filter: blocks [step, current_step()) are copied from the
  /// finalized prefix (capacity-reusing) and the pending rows of the live
  /// state are compressed into the last diagonal block, so `f` ends up
  /// identical to the factor a cold smooth() would build.  The first `step`
  /// blocks of `f` must already hold the prefix, from a previous call on
  /// this filter in the same reset epoch; pass step = 0 to rebuild from
  /// scratch.  All transients are borrowed from the calling thread's
  /// la::Workspace, so a warm `f` is updated with zero heap allocations.
  /// Throws std::runtime_error while the current state is rank deficient
  /// (same condition as smooth()).
  void resmooth_from(la::index step, BidiagonalFactor& f, la::QrScratch& qr) const;

  // ---- state serialization (pitk::io durability) ----

  /// Deep-copy the filter's complete state into `out`, reusing `out`'s
  /// capacity (a journal compacting every N appends snapshots without
  /// allocating once the snapshot storage is warm).
  void snapshot_state(FilterSnapshot& out) const;

  /// Replace this filter's state with `s` (deep copy; `s` is typically a
  /// decoded journal snapshot).  Existing finalized blocks are retired into
  /// the spare pools first, exactly like reset().  Validates the snapshot's
  /// internal consistency and throws std::invalid_argument on a state no
  /// filter could have reached.
  void restore_state(const FilterSnapshot& s);

 private:
  /// Compress a copy of the pending rows to a square triangle; returns
  /// nullopt if rank deficient (diagonal entry ~ 0).
  [[nodiscard]] std::optional<std::pair<Matrix, Vector>> compressed() const;

  /// Pop a recycled block (empty when the pools are cold); the caller
  /// resizes it, reusing its capacity.
  [[nodiscard]] Matrix take_spare_matrix();
  [[nodiscard]] Vector take_spare_vector();

  /// Append the decay_amplification() entry of the newest finalized block.
  void append_decay_amp(const Matrix& diag, const Matrix& sup);

  la::index step_ = 0;
  la::index n_ = 0;
  std::uint64_t epoch_ = 0;  ///< reset() count (prefix-cache invalidation)
  Matrix pending_;      ///< rows still constraining the current state
  Vector pending_rhs_;
  Matrix scratch_pending_;  ///< double buffer swapped with pending_ each step
  Vector scratch_rhs_;
  BidiagonalFactor finished_;  ///< finalized R rows of eliminated states
  std::vector<double> decay_amp_;  ///< see decay_amplification()
  la::QrScratch qr_;           ///< reused Householder tau storage
  std::vector<Matrix> spare_matrices_;  ///< retired factor blocks (see reset)
  std::vector<Vector> spare_vectors_;
};

}  // namespace pitk::kalman
