#pragma once

/// \file oddeven.hpp
/// The Odd-Even parallel-in-time Kalman smoother — the paper's primary
/// contribution (Sections 3 and 4).
///
/// The smoother computes a QR factorization of a recursive odd-even
/// block-column permutation of the weighted least-squares matrix U A.  Each
/// reduction level finalizes the R rows of its even block columns with three
/// batches of small independent QR factorizations (perfectly parallel across
/// columns), and hands the odd columns — recompressed to O(n) rows — to the
/// next level.  Work is Theta(k n^3) like the sequential Paige-Saunders
/// algorithm (with a ~2x constant), span is Theta(log k * n log n).
///
/// Covariances come from the parallel odd-even SelInv (Algorithm 2): levels
/// are replayed bottom-up and all even rows of a level are processed
/// concurrently, each needing only S-blocks of adjacent odd columns already
/// produced by deeper levels.

#include "core/paige_saunders.hpp"
#include "kalman/model.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::kalman {

struct OddEvenOptions {
  /// Compute cov(\hat u_i) with parallel SelInv (Algorithm 2).  false is the
  /// paper's "NC" variant (for Levenberg-Marquardt nonlinear smoothing).
  bool compute_covariance = true;
  /// parallel_for grain: the TBB block-size parameter of Section 5.1
  /// (default 10, as in the paper).
  la::index grain = par::default_grain;
};

/// One finalized block row of the permuted R factor.  `col` is the original
/// state index of the diagonal block; `left`/`right` are the original state
/// indices of the off-diagonal coupling blocks (-1 when absent).  Both
/// neighbors are odd columns of this row's level, i.e. they come later in
/// the permuted ordering, so the row is genuinely upper triangular.
struct OddEvenRow {
  la::index col = -1;
  la::index left = -1;
  la::index right = -1;
  Matrix R;     ///< n_col x n_col, upper triangular (zero-padded square)
  Matrix Eblk;  ///< n_col x n_left: R_{col,left}
  Matrix Yblk;  ///< n_col x n_right: R_{col,right}
  Vector rhs;   ///< transformed right-hand side rows of this block row
};

/// The rows finalized by one reduction level (its even columns).
struct OddEvenLevel {
  std::vector<OddEvenRow> rows;
};

/// Complete odd-even factorization of U A P: all levels, top first.
struct OddEvenFactor {
  std::vector<OddEvenLevel> levels;
  std::vector<la::index> dims;  ///< n_i per state

  [[nodiscard]] la::index num_states() const noexcept {
    return static_cast<la::index>(dims.size());
  }
};

/// Reusable per-state S-block storage for the odd-even SelInv replay
/// (Algorithm 2).  The diagonal and cross blocks of every state live here
/// across the level loop; keeping one scratch warm across covariance passes
/// lets a repeat pass over a same-shaped factor run with zero heap
/// allocations (blocks reuse their capacity, transients are per-thread
/// la::Workspace borrows).  One scratch per concurrent solve — never share
/// across jobs in flight.
struct OddEvenCovScratch {
  struct Slot {
    const OddEvenRow* row = nullptr;  ///< the R row whose diagonal is this state
    Matrix diag;                      ///< S_{col,col}
    Matrix s_left;                    ///< S_{col,left}
    Matrix s_right;                   ///< S_{col,right}
  };
  std::vector<Slot> slots;
};

/// Factor the problem (parallel across block columns within each level).
[[nodiscard]] OddEvenFactor oddeven_factor(const Problem& p, par::ThreadPool& pool,
                                           la::index grain = par::default_grain);

/// Factor an already-compressed block-bidiagonal system — e.g. a streaming
/// session's spliced prefix (IncrementalFilter::finished_prefix() plus the
/// compressed live block).  Row block i of `b` covers columns (i, i+1) and
/// enters the top level as the evolution rows of column i+1 (E = R_ii,
/// D = R_{i,i+1}); the last diagonal block becomes the final column's local
/// rows.  Because the bidiagonal rows are an orthogonal transform of the
/// original weighted problem rows, this solves the same least-squares
/// system: means and SelInv covariances agree with back substitution on `b`
/// to backend tolerance, and a long session's re-smooth gets the
/// intra-parallel solver without re-paying the sequential elimination of the
/// raw O(k (n+m)) rows.
[[nodiscard]] OddEvenFactor oddeven_factor_from_bidiagonal(const BidiagonalFactor& b,
                                                           par::ThreadPool& pool,
                                                           la::index grain = par::default_grain);

/// Back substitution: levels in reverse, all rows of a level in parallel.
[[nodiscard]] std::vector<Vector> oddeven_solve(const OddEvenFactor& f, par::ThreadPool& pool,
                                                la::index grain = par::default_grain);

/// Back substitution into caller-owned storage (capacity-reusing: a warm
/// `sol` of matching shape is refilled without heap traffic).
void oddeven_solve_into(const OddEvenFactor& f, par::ThreadPool& pool, la::index grain,
                        std::vector<Vector>& sol);

/// Parallel odd-even SelInv (Algorithm 2): cov(\hat u_i) for every state.
[[nodiscard]] std::vector<Matrix> oddeven_covariances(const OddEvenFactor& f,
                                                      par::ThreadPool& pool,
                                                      la::index grain = par::default_grain);

/// SelInv replay into caller-owned storage through a reusable scratch; with
/// both warm, a repeat pass performs zero heap allocations.
void oddeven_covariances_into(const OddEvenFactor& f, par::ThreadPool& pool, la::index grain,
                              OddEvenCovScratch& scratch, std::vector<Matrix>& out);

/// The full smoother: factor + solve (+ covariances unless disabled).
[[nodiscard]] SmootherResult oddeven_smooth(const Problem& p, par::ThreadPool& pool,
                                            const OddEvenOptions& opts = {});

}  // namespace pitk::kalman
