#pragma once

/// \file paige_saunders.hpp
/// Sequential Paige-Saunders QR smoother (the paper's sequential QR baseline).
///
/// Streams through the steps once, orthogonally eliminating each state column
/// as soon as its successor's evolution rows arrive, producing a block
/// *bidiagonal* R factor (diagonal blocks R_ii and super-diagonal blocks
/// R_{i,i+1}) and the transformed right-hand side.  Back substitution then
/// yields the smoothed states; covariances come from sequential SelInv
/// (Algorithm 1 of the paper) applied to the bidiagonal R.
///
/// Like the paper's implementation (based on UltimateKalman), this smoother
/// needs no prior on the initial state, and supports rectangular H_i,
/// varying state dimensions and missing observations.

#include <span>

#include "kalman/model.hpp"

namespace pitk::kalman {

/// Block-bidiagonal R factor and transformed RHS of QR = U A.
struct BidiagonalFactor {
  std::vector<Matrix> diag;  ///< R_ii, square n_i x n_i (zero-padded if rank deficient)
  std::vector<Matrix> sup;   ///< R_{i,i+1}; entry k is empty
  std::vector<Vector> rhs;   ///< (Q^T U b)_i, length n_i
};

struct PaigeSaundersOptions {
  /// Compute cov(\hat u_i) with sequential SelInv.  false = the "NC" variant
  /// of the paper (used inside Gauss-Newton/LM nonlinear smoothers).
  bool compute_covariance = true;
};

/// Factor the problem; exposed separately for tests and for SelInv.
[[nodiscard]] BidiagonalFactor paige_saunders_factor(const Problem& p);

/// Factor into caller-owned storage, reusing its block capacity.  All scratch
/// (weighted blocks, stacked panels) is borrowed from the calling thread's
/// la::Workspace, so refactoring a same-shaped problem into a warm factor
/// performs zero heap allocations in the per-step sweep.
void paige_saunders_factor_into(const Problem& p, BidiagonalFactor& f);

/// Back substitution on a bidiagonal factor.
[[nodiscard]] std::vector<Vector> paige_saunders_solve(const BidiagonalFactor& f);

/// Back substitution into caller-owned storage (capacity-reusing; the
/// per-state loop is allocation-free once `u` is warm).
void paige_saunders_solve_into(const BidiagonalFactor& f, std::vector<Vector>& u);

/// Partial-range back substitution: recompute u[from..k] with arithmetic
/// identical to paige_saunders_solve_into over that range, leaving the
/// entries below `from` untouched.  `u` is resized to k+1 entries.
void paige_saunders_solve_tail_into(const BidiagonalFactor& f, la::index from,
                                    std::vector<Vector>& u);

/// Outcome of a truncated delta pass (see paige_saunders_solve_delta_into).
struct TruncatedPass {
  la::index updated_from = 0;  ///< lowest state index rewritten by the pass
  bool truncated = false;      ///< the decay bound stopped the pass early
};

/// Truncated delta back substitution for streaming re-smooths.  `u` must hold
/// the previous solution of a factor whose blocks below `from` are unchanged
/// (the streaming invariant: the finalized prefix only appends).  The tail
/// u[from..k] is recomputed exactly, then only the correction
///   delta_i = -R_ii^{-1} R_{i,i+1} delta_{i+1}
/// is propagated downward, stopping at the first i where
///   decay_amp[i] * ||delta_{i+1}||_2 <= tol.
/// decay_amp (IncrementalFilter::decay_amplification) bounds the
/// amplification of a correction across every window of remaining blocks, so
/// each state the pass skips is missing a correction of 2-norm at most tol.
/// States below the stop point keep their previous values.  All transients
/// are borrowed from the calling thread's la::Workspace (zero allocations
/// once `u` is warm).
TruncatedPass paige_saunders_solve_delta_into(const BidiagonalFactor& f, la::index from,
                                              std::span<const double> decay_amp, double tol,
                                              std::vector<Vector>& u);

/// Full smoother: factor + solve (+ covariances unless disabled).
[[nodiscard]] SmootherResult paige_saunders_smooth(const Problem& p,
                                                   const PaigeSaundersOptions& opts = {});

}  // namespace pitk::kalman
