#pragma once

/// \file associative.hpp
/// The Särkkä & García-Fernández parallel-in-time smoother ("Associative" in
/// the paper's figures).
///
/// Temporal Parallelization of Bayesian Smoothers (IEEE TAC 66(1), 2021)
/// restructures the forward Kalman filter and the backward RTS pass as
/// generalized prefix sums: filtering combines five-tuple elements
/// (A_i, b_i, C_i, eta_i, J_i) under an associative product, smoothing
/// combines triples (E_i, g_i, L_i) in a reverse scan.  Both scans run on
/// the pitk::par::parallel_scan substrate.
///
/// Restrictions (paper Section 6): requires H_i = I and a Gaussian prior on
/// the initial state; covariances are always computed (they are carried by
/// the scan elements themselves and cannot be skipped).

#include <memory>

#include "kalman/model.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::kalman {

/// Reusable element storage for the associative scans.  The scan element
/// buffers (five matrices/vectors per step) dominate the smoother's heap
/// traffic; a scratch kept across calls lets repeated solves of same-shaped
/// problems run the per-step scan loops with zero steady-state allocations
/// (small transients remain in combine temporaries via the per-thread
/// la::Workspace, which a warm arena serves allocation-free too).  One
/// scratch per thread/worker — never share one across concurrent solves.
class AssociativeScratch {
 public:
  AssociativeScratch();
  ~AssociativeScratch();
  AssociativeScratch(const AssociativeScratch&) = delete;
  AssociativeScratch& operator=(const AssociativeScratch&) = delete;

  struct Impl;
  [[nodiscard]] Impl& impl() const noexcept { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

struct AssociativeOptions {
  /// Scan/loop grain; plays the role of the paper's TBB block size.
  la::index grain = par::default_grain;
  /// Optional cross-call element storage (see AssociativeScratch).  When
  /// set, results are copied out instead of moved so the scratch keeps its
  /// warm capacity.
  AssociativeScratch* scratch = nullptr;
};

/// Parallel filtering pass: E(u_i | o_0..o_i) and covariances for every i.
[[nodiscard]] FilterResult associative_filter(const Problem& p, const GaussianPrior& prior,
                                              par::ThreadPool& pool,
                                              const AssociativeOptions& opts = {});

/// Full parallel smoother: filtering scan + smoothing reverse scan.
[[nodiscard]] SmootherResult associative_smooth(const Problem& p, const GaussianPrior& prior,
                                                par::ThreadPool& pool,
                                                const AssociativeOptions& opts = {});

/// Full smoother writing means/covariances into caller-owned storage,
/// capacity-reusing.  With a warm `opts.scratch`, a warm per-thread
/// Workspace and warm `out` storage of matching shape, a repeat solve —
/// scans *and* result extraction — performs zero heap allocations; this is
/// the engine's warm serving path for the associative backend.
void associative_smooth_into(const Problem& p, const GaussianPrior& prior,
                             par::ThreadPool& pool, const AssociativeOptions& opts,
                             SmootherResult& out);

/// Run only the scans, leaving the combined elements in `scratch` (no result
/// extraction).  This is the allocation-measurable core: with a warm scratch,
/// a warm per-thread Workspace and a serial pool, a repeat call performs
/// zero heap allocations in the per-step loops.  `with_smooth` additionally
/// runs the backward smoothing scan.
void associative_scan(const Problem& p, const GaussianPrior& prior, par::ThreadPool& pool,
                      const AssociativeOptions& opts, AssociativeScratch& scratch,
                      bool with_smooth);

}  // namespace pitk::kalman
