#pragma once

/// \file associative.hpp
/// The Särkkä & García-Fernández parallel-in-time smoother ("Associative" in
/// the paper's figures).
///
/// Temporal Parallelization of Bayesian Smoothers (IEEE TAC 66(1), 2021)
/// restructures the forward Kalman filter and the backward RTS pass as
/// generalized prefix sums: filtering combines five-tuple elements
/// (A_i, b_i, C_i, eta_i, J_i) under an associative product, smoothing
/// combines triples (E_i, g_i, L_i) in a reverse scan.  Both scans run on
/// the pitk::par::parallel_scan substrate.
///
/// Restrictions (paper Section 6): requires H_i = I and a Gaussian prior on
/// the initial state; covariances are always computed (they are carried by
/// the scan elements themselves and cannot be skipped).

#include "kalman/model.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::kalman {

struct AssociativeOptions {
  /// Scan/loop grain; plays the role of the paper's TBB block size.
  la::index grain = par::default_grain;
};

/// Parallel filtering pass: E(u_i | o_0..o_i) and covariances for every i.
[[nodiscard]] FilterResult associative_filter(const Problem& p, const GaussianPrior& prior,
                                              par::ThreadPool& pool,
                                              const AssociativeOptions& opts = {});

/// Full parallel smoother: filtering scan + smoothing reverse scan.
[[nodiscard]] SmootherResult associative_smooth(const Problem& p, const GaussianPrior& prior,
                                                par::ThreadPool& pool,
                                                const AssociativeOptions& opts = {});

}  // namespace pitk::kalman
