#include "core/normal_equations.hpp"

#include <stdexcept>

#include "la/blas.hpp"
#include "la/lu.hpp"

namespace pitk::kalman {

namespace {

using la::index;
using la::Trans;

/// LU factor of one odd pivot block, kept for the back-substitution pass.
struct PivotFactor {
  Matrix lu;
  std::vector<index> piv;

  void factor(const Matrix& t) {
    lu = t;
    piv.assign(static_cast<std::size_t>(t.rows()), 0);
    if (!la::lu_factor(lu.view(), piv))
      throw std::runtime_error("normal_cyclic_smooth: singular pivot block (the normal "
                               "equations squared the conditioning past breakdown)");
  }

  void solve(la::MatrixView b) const { la::lu_solve(lu.view(), piv, b); }
  void solve(std::span<double> x) const { la::lu_solve(lu.view(), piv, x); }
};

/// One reduction level of cyclic reduction: everything the back substitution
/// needs to recover the odd unknowns of this level.
struct CrLevel {
  std::vector<index> cols;          ///< original state index per position
  std::vector<Matrix> u;            ///< U blocks of this level (coupling pos, pos+1)
  std::vector<Vector> g;            ///< RHS of this level
  std::vector<PivotFactor> odd_lu;  ///< factor of T_j for each odd position j (index j/2)
};

}  // namespace

BlockTridiagonal assemble_normal_equations(const Problem& p, par::ThreadPool& pool,
                                           la::index grain) {
  if (auto err = p.validate(true))
    throw std::invalid_argument("assemble_normal_equations: " + *err);
  const index k = p.last_index();

  // Weigh all steps once, in parallel.
  std::vector<WeightedStep> w(static_cast<std::size_t>(k + 1));
  par::parallel_for(pool, 0, k + 1, grain,
                    [&](index i) { w[static_cast<std::size_t>(i)] = weigh_step(p.step(i)); });

  BlockTridiagonal sys;
  sys.T.resize(static_cast<std::size_t>(k + 1));
  sys.U.resize(static_cast<std::size_t>(k + 1));
  sys.g.resize(static_cast<std::size_t>(k + 1));

  par::parallel_for(pool, 0, k + 1, grain, [&](index i) {
    const index n = p.state_dim(i);
    const WeightedStep& wi = w[static_cast<std::size_t>(i)];
    Matrix t(n, n);
    Vector gi(n);
    if (wi.C.rows() > 0) {
      la::gemm(1.0, wi.C.view(), Trans::Yes, wi.C.view(), Trans::No, 1.0, t.view());
      la::gemv(1.0, wi.C.view(), Trans::Yes, wi.ow.span(), 1.0, gi.span());
    }
    if (i > 0) {
      la::gemm(1.0, wi.D.view(), Trans::Yes, wi.D.view(), Trans::No, 1.0, t.view());
      la::gemv(1.0, wi.D.view(), Trans::Yes, wi.cw.span(), 1.0, gi.span());
    }
    if (i < k) {
      const WeightedStep& wn = w[static_cast<std::size_t>(i + 1)];
      la::gemm(1.0, wn.B.view(), Trans::Yes, wn.B.view(), Trans::No, 1.0, t.view());
      la::gemv(-1.0, wn.B.view(), Trans::Yes, wn.cw.span(), 1.0, gi.span());
      // U_i = -B_{i+1}^T D_{i+1}.
      Matrix u(n, p.state_dim(i + 1));
      la::gemm(-1.0, wn.B.view(), Trans::Yes, wn.D.view(), Trans::No, 0.0, u.view());
      sys.U[static_cast<std::size_t>(i)] = std::move(u);
    }
    la::symmetrize(t.view());
    sys.T[static_cast<std::size_t>(i)] = std::move(t);
    sys.g[static_cast<std::size_t>(i)] = std::move(gi);
  });
  return sys;
}

std::vector<Vector> normal_cyclic_smooth(const Problem& p, par::ThreadPool& pool,
                                         const NormalCyclicOptions& opts) {
  BlockTridiagonal sys = assemble_normal_equations(p, pool, opts.grain);
  const index nstates = sys.size();

  // ---- Reduction sweep: eliminate the odd positions of each level. ----
  std::vector<CrLevel> levels;
  std::vector<index> cols(static_cast<std::size_t>(nstates));
  for (index i = 0; i < nstates; ++i) cols[static_cast<std::size_t>(i)] = i;

  std::vector<Matrix> t = std::move(sys.T);
  std::vector<Matrix> u = std::move(sys.U);
  std::vector<Vector> g = std::move(sys.g);

  while (static_cast<index>(t.size()) > 1) {
    const index size = static_cast<index>(t.size());
    const index last = size - 1;
    const index n_odd = size / 2;
    const index n_even = (size + 1) / 2;

    CrLevel lev;
    lev.cols = std::move(cols);
    lev.u = std::move(u);  // back substitution needs this level's couplings
    lev.g = std::move(g);
    lev.odd_lu.resize(static_cast<std::size_t>(n_odd));
    par::parallel_for(pool, 0, n_odd, opts.grain, [&](index jo) {
      lev.odd_lu[static_cast<std::size_t>(jo)].factor(t[static_cast<std::size_t>(2 * jo + 1)]);
    });

    std::vector<Matrix> t2(static_cast<std::size_t>(n_even));
    std::vector<Matrix> u2(static_cast<std::size_t>(n_even));
    std::vector<Vector> g2(static_cast<std::size_t>(n_even));
    std::vector<index> cols2(static_cast<std::size_t>(n_even));

    par::parallel_for(pool, 0, n_even, opts.grain, [&](index e) {
      const index i = 2 * e;
      cols2[static_cast<std::size_t>(e)] = lev.cols[static_cast<std::size_t>(i)];
      Matrix tn = t[static_cast<std::size_t>(i)];
      Vector gn = lev.g[static_cast<std::size_t>(i)];
      if (i >= 1) {
        // Left odd neighbor i-1: subtract U_{i-1}^T T_{i-1}^{-1} [U_{i-1} | g_{i-1}].
        const PivotFactor& f = lev.odd_lu[static_cast<std::size_t>((i - 1) / 2)];
        const Matrix& ul = lev.u[static_cast<std::size_t>(i - 1)];
        Matrix x = ul;  // T_{i-1}^{-1} U_{i-1}
        f.solve(x.view());
        la::gemm(-1.0, ul.view(), Trans::Yes, x.view(), Trans::No, 1.0, tn.view());
        Vector y = lev.g[static_cast<std::size_t>(i - 1)];
        f.solve(y.span());
        la::gemv(-1.0, ul.view(), Trans::Yes, y.span(), 1.0, gn.span());
      }
      if (i < last) {
        // Right odd neighbor i+1: the coupling is U_i (this row) and the
        // equation of i+1 couples onward through U_{i+1}.
        const PivotFactor& f = lev.odd_lu[static_cast<std::size_t>(i / 2)];
        const Matrix& ur = lev.u[static_cast<std::size_t>(i)];
        // X = T_{i+1}^{-1} U_i^T.
        Matrix x = ur.transposed();
        f.solve(x.view());
        la::gemm(-1.0, ur.view(), Trans::No, x.view(), Trans::No, 1.0, tn.view());
        Vector y = lev.g[static_cast<std::size_t>(i + 1)];
        f.solve(y.span());
        la::gemv(-1.0, ur.view(), Trans::No, y.span(), 1.0, gn.span());
        if (i + 2 <= last) {
          // New coupling to the next even: U' = -U_i T_{i+1}^{-1} U_{i+1}.
          Matrix z = lev.u[static_cast<std::size_t>(i + 1)];
          f.solve(z.view());
          Matrix un(tn.rows(), z.cols());
          la::gemm(-1.0, ur.view(), Trans::No, z.view(), Trans::No, 0.0, un.view());
          u2[static_cast<std::size_t>(e)] = std::move(un);
        }
      }
      la::symmetrize(tn.view());
      t2[static_cast<std::size_t>(e)] = std::move(tn);
      g2[static_cast<std::size_t>(e)] = std::move(gn);
    });

    levels.push_back(std::move(lev));
    t = std::move(t2);
    u = std::move(u2);
    g = std::move(g2);
    cols = std::move(cols2);
  }

  // ---- Base case and back substitution. ----
  std::vector<Vector> sol(static_cast<std::size_t>(nstates));
  {
    PivotFactor f;
    f.factor(t[0]);
    Vector x = g[0];
    f.solve(x.span());
    sol[static_cast<std::size_t>(cols[0])] = std::move(x);
  }
  for (index lv = static_cast<index>(levels.size()) - 1; lv >= 0; --lv) {
    const CrLevel& lev = levels[static_cast<std::size_t>(lv)];
    const index size = static_cast<index>(lev.cols.size());
    const index last = size - 1;
    const index n_odd = size / 2;
    par::parallel_for(pool, 0, n_odd, opts.grain, [&](index jo) {
      const index j = 2 * jo + 1;
      Vector x = lev.g[static_cast<std::size_t>(j)];
      // x_j = T_j^{-1} (g_j - U_{j-1}^T x_{j-1} - U_j x_{j+1}).
      const Vector& xl = sol[static_cast<std::size_t>(lev.cols[static_cast<std::size_t>(j - 1)])];
      la::gemv(-1.0, lev.u[static_cast<std::size_t>(j - 1)].view(), Trans::Yes, xl.span(), 1.0,
               x.span());
      if (j < last) {
        const Vector& xr =
            sol[static_cast<std::size_t>(lev.cols[static_cast<std::size_t>(j + 1)])];
        la::gemv(-1.0, lev.u[static_cast<std::size_t>(j)].view(), Trans::No, xr.span(), 1.0,
                 x.span());
      }
      lev.odd_lu[static_cast<std::size_t>(jo)].solve(x.span());
      sol[static_cast<std::size_t>(lev.cols[static_cast<std::size_t>(j)])] = std::move(x);
    });
  }
  return sol;
}

std::vector<Vector> normal_thomas_smooth(const Problem& p) {
  par::ThreadPool serial(1);
  BlockTridiagonal sys = assemble_normal_equations(p, serial, 1);
  const index nstates = sys.size();
  const index last = nstates - 1;

  // Forward sweep: S_i = T_i - U_{i-1}^T S_{i-1}^{-1} U_{i-1}, carried as LU
  // factors; y_i = g_i - U_{i-1}^T S_{i-1}^{-1} y_{i-1}.
  std::vector<PivotFactor> s(static_cast<std::size_t>(nstates));
  std::vector<Vector> y = std::move(sys.g);
  s[0].factor(sys.T[0]);
  for (index i = 1; i <= last; ++i) {
    const Matrix& ul = sys.U[static_cast<std::size_t>(i - 1)];
    Matrix x = ul;
    s[static_cast<std::size_t>(i - 1)].solve(x.view());
    Matrix ti = sys.T[static_cast<std::size_t>(i)];
    la::gemm(-1.0, ul.view(), Trans::Yes, x.view(), Trans::No, 1.0, ti.view());
    la::symmetrize(ti.view());
    s[static_cast<std::size_t>(i)].factor(ti);
    Vector z = y[static_cast<std::size_t>(i - 1)];
    s[static_cast<std::size_t>(i - 1)].solve(z.span());
    la::gemv(-1.0, ul.view(), Trans::Yes, z.span(), 1.0, y[static_cast<std::size_t>(i)].span());
  }

  // Backward sweep.
  std::vector<Vector> sol(static_cast<std::size_t>(nstates));
  {
    Vector x = y[static_cast<std::size_t>(last)];
    s[static_cast<std::size_t>(last)].solve(x.span());
    sol[static_cast<std::size_t>(last)] = std::move(x);
  }
  for (index i = last - 1; i >= 0; --i) {
    Vector x = y[static_cast<std::size_t>(i)];
    la::gemv(-1.0, sys.U[static_cast<std::size_t>(i)].view(), Trans::No,
             sol[static_cast<std::size_t>(i + 1)].span(), 1.0, x.span());
    s[static_cast<std::size_t>(i)].solve(x.span());
    sol[static_cast<std::size_t>(i)] = std::move(x);
  }
  return sol;
}

}  // namespace pitk::kalman
