#include "core/associative.hpp"

#include <stdexcept>

#include "kalman/rts.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "parallel/parallel_scan.hpp"

namespace pitk::kalman {

namespace {

using la::ConstMatrixView;
using la::index;
using la::Trans;

/// Solve the (generally non-symmetric) square system S X = B; B is
/// overwritten with X.  Used for (I + C_i J_j)^{-1}.  Partial-pivoting LU is
/// the right tool: S is well conditioned whenever the combined elements
/// represent proper Gaussians, and LU costs a third of a QR solve.
void solve_square(Matrix s, la::MatrixView b) {
  if (!la::solve_inplace(std::move(s), b))
    throw std::runtime_error("associative_smooth: singular combination system (I + C J)");
}

/// Filtering scan element: p(x_i | x_{i-1}, y_i) = N(x_i; A x_{i-1} + b, C)
/// together with the likelihood information pair (eta, J) in x_{i-1}.
struct FilterElement {
  Matrix A;    ///< n_i x n_{i-1}
  Vector b;    ///< n_i
  Matrix C;    ///< n_i x n_i
  Vector eta;  ///< n_{i-1}
  Matrix J;    ///< n_{i-1} x n_{i-1}
};

/// Associative filtering combination (Lemma 8 of the TAC paper): the result
/// represents the composition of element `l` (earlier) with `r` (later).
FilterElement combine_filter(const FilterElement& l, const FilterElement& r) {
  const index nm = l.C.rows();      // shared middle dimension
  const index nin = l.A.cols();     // input dimension
  const index nout = r.A.rows();    // output dimension

  // S = I + C_l J_r; X = S^{-1} [A_l | C_l | v], v = b_l + C_l eta_r.
  Matrix s = Matrix::identity(nm);
  la::gemm(1.0, l.C.view(), Trans::No, r.J.view(), Trans::No, 1.0, s.view());
  Matrix stack(nm, nin + nm + 1);
  stack.block(0, 0, nm, nin).assign(l.A.view());
  stack.block(0, nin, nm, nm).assign(l.C.view());
  {
    Vector v = l.b;
    la::gemv(1.0, l.C.view(), Trans::No, r.eta.span(), 1.0, v.span());
    for (index q = 0; q < nm; ++q) stack(q, nin + nm) = v[q];
  }
  solve_square(std::move(s), stack.view());
  ConstMatrixView x = stack.block(0, 0, nm, nin);        // S^{-1} A_l
  ConstMatrixView y = stack.block(0, nin, nm, nm);       // S^{-1} C_l
  ConstMatrixView v = stack.block(0, nin + nm, nm, 1);   // S^{-1} (b_l + C_l eta_r)

  FilterElement out;
  out.A.resize(nout, nin);
  la::gemm(1.0, r.A.view(), Trans::No, x, Trans::No, 0.0, out.A.view());

  out.b = r.b;
  la::gemv(1.0, r.A.view(), Trans::No, v.col_span(0), 1.0, out.b.span());

  Matrix ay(nout, nm);
  la::gemm(1.0, r.A.view(), Trans::No, y, Trans::No, 0.0, ay.view());
  out.C = r.C;
  la::gemm(1.0, ay.view(), Trans::No, r.A.view(), Trans::Yes, 1.0, out.C.view());
  la::symmetrize(out.C.view());

  // eta = A_l^T (I + J_r C_l)^{-1} (eta_r - J_r b_l) + eta_l
  //     = X^T (eta_r - J_r b_l) + eta_l      (X = (I + C_l J_r)^{-1} A_l).
  Vector w = r.eta;
  la::gemv(-1.0, r.J.view(), Trans::No, l.b.span(), 1.0, w.span());
  out.eta = l.eta;
  la::gemv(1.0, x, Trans::Yes, w.span(), 1.0, out.eta.span());

  // J = X^T J_r A_l + J_l.
  Matrix ja(nm, nin);
  la::gemm(1.0, r.J.view(), Trans::No, l.A.view(), Trans::No, 0.0, ja.view());
  out.J = l.J;
  la::gemm(1.0, x, Trans::Yes, ja.view(), Trans::No, 1.0, out.J.view());
  la::symmetrize(out.J.view());
  return out;
}

/// Build the filtering element of step i >= 1 (general element of the TAC
/// paper, extended with the control/forcing term c_i).
FilterElement make_filter_element(const TimeStep& s) {
  const Evolution& e = *s.evolution;
  const index n = s.n;
  const index np = e.F.cols();
  const Matrix q = e.noise.covariance();
  Vector c = e.c.empty() ? Vector::zero(n) : e.c;

  FilterElement el;
  if (!s.observation) {
    el.A = e.F;
    el.b = std::move(c);
    el.C = q;
    el.eta = Vector::zero(np);
    el.J = Matrix(np, np);
    return el;
  }

  const Observation& ob = *s.observation;
  const index m = ob.rows();
  const Matrix lcov = ob.noise.covariance();

  // S_obs = G Q G^T + L (innovation covariance of the one-step prediction).
  Matrix gq = la::multiply(ob.G.view(), q.view());  // m x n
  Matrix sobs = lcov;
  la::gemm(1.0, gq.view(), Trans::No, ob.G.view(), Trans::Yes, 1.0, sobs.view());
  la::symmetrize(sobs.view());
  Matrix schol = sobs;
  if (!la::cholesky_lower(schol.view()))
    throw std::runtime_error("associative_smooth: innovation covariance not SPD");

  // K = Q G^T S^{-1}  (kt = S^{-1} G Q = K^T).
  Matrix kt = gq;
  la::chol_solve(schol.view(), kt.view());

  // IKG = I - K G.
  Matrix ikg = Matrix::identity(n);
  la::gemm(-1.0, kt.view(), Trans::Yes, ob.G.view(), Trans::No, 1.0, ikg.view());

  el.A.resize(n, np);
  la::gemm(1.0, ikg.view(), Trans::No, e.F.view(), Trans::No, 0.0, el.A.view());

  // b = (I - K G) c + K o.
  el.b.resize(n);
  la::gemv(1.0, ikg.view(), Trans::No, c.span(), 0.0, el.b.span());
  la::gemv(1.0, kt.view(), Trans::Yes, ob.o.span(), 1.0, el.b.span());

  el.C.resize(n, n);
  la::gemm(1.0, ikg.view(), Trans::No, q.view(), Trans::No, 0.0, el.C.view());
  la::symmetrize(el.C.view());

  // Residual-of-control innovation: r = o - G c.
  Vector r = ob.o;
  la::gemv(-1.0, ob.G.view(), Trans::No, c.span(), 1.0, r.span());

  // eta = F^T G^T S^{-1} r.
  Vector sr = r;
  la::chol_solve(schol.view(), sr.span());
  Vector gtsr(n);
  la::gemv(1.0, ob.G.view(), Trans::Yes, sr.span(), 0.0, gtsr.span());
  el.eta.resize(np);
  la::gemv(1.0, e.F.view(), Trans::Yes, gtsr.span(), 0.0, el.eta.span());

  // J = (G F)^T S^{-1} (G F).
  Matrix gf(m, np);
  la::gemm(1.0, ob.G.view(), Trans::No, e.F.view(), Trans::No, 0.0, gf.view());
  Matrix sgf = gf;
  la::chol_solve(schol.view(), sgf.view());
  el.J.resize(np, np);
  la::gemm(1.0, gf.view(), Trans::Yes, sgf.view(), Trans::No, 0.0, el.J.view());
  la::symmetrize(el.J.view());
  return el;
}

/// Smoothing scan element (E_i, g_i, L_i).
struct SmoothElement {
  Matrix E;
  Vector g;
  Matrix L;
};

/// Associative smoothing combination for `l` (earlier) with `r` (later).
SmoothElement combine_smooth(const SmoothElement& l, const SmoothElement& r) {
  SmoothElement out;
  out.E = la::multiply(l.E.view(), r.E.view());
  out.g = l.g;
  la::gemv(1.0, l.E.view(), Trans::No, r.g.span(), 1.0, out.g.span());
  Matrix el(l.E.rows(), r.L.cols());
  la::gemm(1.0, l.E.view(), Trans::No, r.L.view(), Trans::No, 0.0, el.view());
  out.L = l.L;
  la::gemm(1.0, el.view(), Trans::No, l.E.view(), Trans::Yes, 1.0, out.L.view());
  la::symmetrize(out.L.view());
  return out;
}

void require_identity_h(const Problem& p) {
  for (index i = 1; i <= p.last_index(); ++i)
    if (!p.step(i).evolution->identity_h())
      throw std::invalid_argument(
          "associative smoothing requires H_i = I; use the odd-even smoother");
}

std::vector<FilterElement> run_filter_scan(const Problem& p, const GaussianPrior& prior,
                                           par::ThreadPool& pool,
                                           const AssociativeOptions& opts) {
  if (auto err = p.validate()) throw std::invalid_argument("associative_smooth: " + *err);
  require_identity_h(p);
  const index k = p.last_index();
  std::vector<FilterElement> elems(static_cast<std::size_t>(k + 1));

  // Element 0 carries the filtered distribution of u_0 directly.
  {
    Vector x = prior.mean;
    Matrix pcov = prior.cov;
    if (p.step(0).observation) kf_measurement_update(*p.step(0).observation, x, pcov);
    FilterElement& e0 = elems[0];
    const index n0 = p.state_dim(0);
    e0.A = Matrix(n0, n0);
    e0.b = std::move(x);
    e0.C = std::move(pcov);
    e0.eta = Vector::zero(n0);
    e0.J = Matrix(n0, n0);
  }

  par::parallel_for(pool, 1, k + 1, opts.grain, [&](index i) {
    elems[static_cast<std::size_t>(i)] = make_filter_element(p.step(i));
  });

  par::parallel_inclusive_scan(pool, std::span<FilterElement>(elems), opts.grain,
                               combine_filter);
  return elems;
}

}  // namespace

FilterResult associative_filter(const Problem& p, const GaussianPrior& prior,
                                par::ThreadPool& pool, const AssociativeOptions& opts) {
  std::vector<FilterElement> elems = run_filter_scan(p, prior, pool, opts);
  FilterResult out;
  out.means.resize(elems.size());
  out.covariances.resize(elems.size());
  par::parallel_for(pool, 0, static_cast<index>(elems.size()), opts.grain, [&](index i) {
    out.means[static_cast<std::size_t>(i)] = std::move(elems[static_cast<std::size_t>(i)].b);
    out.covariances[static_cast<std::size_t>(i)] =
        std::move(elems[static_cast<std::size_t>(i)].C);
  });
  return out;
}

SmootherResult associative_smooth(const Problem& p, const GaussianPrior& prior,
                                  par::ThreadPool& pool, const AssociativeOptions& opts) {
  std::vector<FilterElement> filt = run_filter_scan(p, prior, pool, opts);
  const index k = p.last_index();

  std::vector<SmoothElement> elems(static_cast<std::size_t>(k + 1));
  par::parallel_for(pool, 0, k + 1, opts.grain, [&](index i) {
    const Vector& m = filt[static_cast<std::size_t>(i)].b;   // m_{i|i}
    const Matrix& pc = filt[static_cast<std::size_t>(i)].C;  // P_{i|i}
    SmoothElement& el = elems[static_cast<std::size_t>(i)];
    if (i == k) {
      el.E = Matrix(pc.rows(), pc.rows());
      el.g = m;
      el.L = pc;
      return;
    }
    const Evolution& e = *p.step(i + 1).evolution;

    const index nn = p.state_dim(i + 1);
    // Predicted covariance P_pred = F P F^T + Q and gain E = P F^T P_pred^{-1}.
    Matrix fp = la::multiply(e.F.view(), pc.view());  // nn x n
    Matrix ppred = e.noise.covariance();
    la::gemm(1.0, fp.view(), Trans::No, e.F.view(), Trans::Yes, 1.0, ppred.view());
    la::symmetrize(ppred.view());
    Matrix et = fp;  // will become E^T = P_pred^{-1} F P
    {
      Matrix pchol = ppred;
      if (!la::cholesky_lower(pchol.view()))
        throw std::runtime_error("associative_smooth: predicted covariance not SPD");
      la::chol_solve(pchol.view(), et.view());
    }
    el.E = et.transposed();  // n x nn

    // g = m - E (F m + c).
    Vector fm(nn);
    la::gemv(1.0, e.F.view(), Trans::No, m.span(), 0.0, fm.span());
    if (!e.c.empty()) la::axpy(1.0, e.c.span(), fm.span());
    el.g = m;
    la::gemv(-1.0, el.E.view(), Trans::No, fm.span(), 1.0, el.g.span());

    // L = P - E F P.
    el.L = pc;
    la::gemm(-1.0, el.E.view(), Trans::No, fp.view(), Trans::No, 1.0, el.L.view());
    la::symmetrize(el.L.view());
  });

  par::parallel_reverse_inclusive_scan(pool, std::span<SmoothElement>(elems), opts.grain,
                                       combine_smooth);

  SmootherResult res;
  res.means.resize(elems.size());
  res.covariances.resize(elems.size());
  par::parallel_for(pool, 0, k + 1, opts.grain, [&](index i) {
    res.means[static_cast<std::size_t>(i)] = std::move(elems[static_cast<std::size_t>(i)].g);
    res.covariances[static_cast<std::size_t>(i)] =
        std::move(elems[static_cast<std::size_t>(i)].L);
  });
  return res;
}

}  // namespace pitk::kalman
