#include "core/associative.hpp"

#include <algorithm>
#include <stdexcept>

#include "kalman/rts.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/workspace.hpp"
#include "parallel/parallel_scan.hpp"

namespace pitk::kalman {

namespace {

using la::ConstMatrixView;
using la::index;
using la::MatrixView;
using la::Trans;

/// Filtering scan element: p(x_i | x_{i-1}, y_i) = N(x_i; A x_{i-1} + b, C)
/// together with the likelihood information pair (eta, J) in x_{i-1}.
struct FilterElement {
  Matrix A;    ///< n_i x n_{i-1}
  Vector b;    ///< n_i
  Matrix C;    ///< n_i x n_i
  Vector eta;  ///< n_{i-1}
  Matrix J;    ///< n_{i-1} x n_{i-1}
};

/// Smoothing scan element (E_i, g_i, L_i).
struct SmoothElement {
  Matrix E;
  Vector g;
  Matrix L;
};

/// Associative filtering combination (Lemma 8 of the TAC paper): `out`
/// becomes the composition of element `l` (earlier) with `r` (later).
/// `out` may alias either input — every product is computed into arena
/// borrows first and only then assigned (capacity-reusing) into `out`, so
/// steady-state combines allocate nothing.
void combine_filter(const FilterElement& l, const FilterElement& r, FilterElement& out) {
  const index nm = l.C.rows();    // shared middle dimension
  const index nin = l.A.cols();   // input dimension
  const index nout = r.A.rows();  // output dimension

  la::Workspace::Scope scope(la::tls_workspace());

  // S = I + C_l J_r; X = S^{-1} [A_l | C_l | v], v = b_l + C_l eta_r.
  MatrixView s = scope.mat(nm, nm);
  for (index q = 0; q < nm; ++q) s(q, q) = 1.0;
  la::gemm(1.0, l.C.view(), Trans::No, r.J.view(), Trans::No, 1.0, s);
  MatrixView stack = scope.mat(nm, nin + nm + 1);
  stack.block(0, 0, nm, nin).assign(l.A.view());
  stack.block(0, nin, nm, nm).assign(l.C.view());
  {
    std::span<double> v = stack.col_span(nin + nm);
    std::copy(l.b.span().begin(), l.b.span().end(), v.begin());
    la::gemv(1.0, l.C.view(), Trans::No, r.eta.span(), 1.0, v);
  }
  {
    static thread_local la::LuScratch lu;
    if (!lu.factor_solve(s, stack))
      throw std::runtime_error("associative_smooth: singular combination system (I + C J)");
  }
  ConstMatrixView x = stack.block(0, 0, nm, nin);       // S^{-1} A_l
  ConstMatrixView y = stack.block(0, nin, nm, nm);      // S^{-1} C_l
  ConstMatrixView v = stack.block(0, nin + nm, nm, 1);  // S^{-1} (b_l + C_l eta_r)

  MatrixView a_new = scope.mat(nout, nin);
  la::gemm(1.0, r.A.view(), Trans::No, x, Trans::No, 0.0, a_new);

  std::span<double> b_new = scope.vec(nout);
  std::copy(r.b.span().begin(), r.b.span().end(), b_new.begin());
  la::gemv(1.0, r.A.view(), Trans::No, v.col_span(0), 1.0, b_new);

  MatrixView ay = scope.mat(nout, nm);
  la::gemm(1.0, r.A.view(), Trans::No, y, Trans::No, 0.0, ay);
  MatrixView c_new = scope.mat(nout, nout);
  c_new.assign(r.C.view());
  la::gemm(1.0, ay, Trans::No, r.A.view(), Trans::Yes, 1.0, c_new);
  la::symmetrize(c_new);

  // eta = A_l^T (I + J_r C_l)^{-1} (eta_r - J_r b_l) + eta_l
  //     = X^T (eta_r - J_r b_l) + eta_l      (X = (I + C_l J_r)^{-1} A_l).
  std::span<double> w = scope.vec(nm);
  std::copy(r.eta.span().begin(), r.eta.span().end(), w.begin());
  la::gemv(-1.0, r.J.view(), Trans::No, l.b.span(), 1.0, w);
  std::span<double> eta_new = scope.vec(nin);
  std::copy(l.eta.span().begin(), l.eta.span().end(), eta_new.begin());
  la::gemv(1.0, x, Trans::Yes, w, 1.0, eta_new);

  // J = X^T J_r A_l + J_l.
  MatrixView ja = scope.mat(nm, nin);
  la::gemm(1.0, r.J.view(), Trans::No, l.A.view(), Trans::No, 0.0, ja);
  MatrixView j_new = scope.mat(nin, nin);
  j_new.assign(l.J.view());
  la::gemm(1.0, x, Trans::Yes, ja, Trans::No, 1.0, j_new);
  la::symmetrize(j_new);

  out.A.assign_from(a_new);
  out.b.assign_from(b_new);
  out.C.assign_from(c_new);
  out.eta.assign_from(eta_new);
  out.J.assign_from(j_new);
}

/// Build the filtering element of step i >= 1 (general element of the TAC
/// paper, extended with the control/forcing term c_i) into recycled storage.
void make_filter_element_into(const TimeStep& s, FilterElement& el) {
  const Evolution& e = *s.evolution;
  const index n = s.n;
  const index np = e.F.cols();

  la::Workspace::Scope scope(la::tls_workspace());
  MatrixView q = scope.mat(n, n);
  e.noise.covariance_into(q);
  std::span<double> c = scope.vec(n);
  if (!e.c.empty()) std::copy(e.c.span().begin(), e.c.span().end(), c.begin());

  if (!s.observation) {
    el.A.assign_from(e.F.view());
    el.b.assign_from(c);
    el.C.assign_from(q);
    el.eta.resize(np);
    el.J.resize(np, np);
    return;
  }

  const Observation& ob = *s.observation;
  const index m = ob.rows();

  // S_obs = G Q G^T + L (innovation covariance of the one-step prediction).
  MatrixView gq = scope.mat(m, n);
  la::gemm(1.0, ob.G.view(), Trans::No, q, Trans::No, 0.0, gq);
  MatrixView sobs = scope.mat(m, m);
  ob.noise.covariance_into(sobs);
  la::gemm(1.0, gq, Trans::No, ob.G.view(), Trans::Yes, 1.0, sobs);
  la::symmetrize(sobs);
  MatrixView schol = scope.mat(m, m);
  schol.assign(sobs);
  if (!la::cholesky_lower(schol))
    throw std::runtime_error("associative_smooth: innovation covariance not SPD");

  // K = Q G^T S^{-1}  (kt = S^{-1} G Q = K^T).
  MatrixView kt = scope.mat(m, n);
  kt.assign(gq);
  la::chol_solve(schol, kt);

  // IKG = I - K G.
  MatrixView ikg = scope.mat(n, n);
  for (index i = 0; i < n; ++i) ikg(i, i) = 1.0;
  la::gemm(-1.0, kt, Trans::Yes, ob.G.view(), Trans::No, 1.0, ikg);

  el.A.resize(n, np);
  la::gemm(1.0, ikg, Trans::No, e.F.view(), Trans::No, 0.0, el.A.view());

  // b = (I - K G) c + K o.
  el.b.resize(n);
  la::gemv(1.0, ikg, Trans::No, c, 0.0, el.b.span());
  la::gemv(1.0, kt, Trans::Yes, ob.o.span(), 1.0, el.b.span());

  el.C.resize(n, n);
  la::gemm(1.0, ikg, Trans::No, q, Trans::No, 0.0, el.C.view());
  la::symmetrize(el.C.view());

  // Residual-of-control innovation: r = o - G c.
  std::span<double> r = scope.vec(m);
  std::copy(ob.o.span().begin(), ob.o.span().end(), r.begin());
  la::gemv(-1.0, ob.G.view(), Trans::No, c, 1.0, r);

  // eta = F^T G^T S^{-1} r.
  std::span<double> sr = scope.vec(m);
  std::copy(r.begin(), r.end(), sr.begin());
  la::chol_solve(schol, sr);
  std::span<double> gtsr = scope.vec(n);
  la::gemv(1.0, ob.G.view(), Trans::Yes, sr, 0.0, gtsr);
  el.eta.resize(np);
  la::gemv(1.0, e.F.view(), Trans::Yes, gtsr, 0.0, el.eta.span());

  // J = (G F)^T S^{-1} (G F).
  MatrixView gf = scope.mat(m, np);
  la::gemm(1.0, ob.G.view(), Trans::No, e.F.view(), Trans::No, 0.0, gf);
  MatrixView sgf = scope.mat(m, np);
  sgf.assign(gf);
  la::chol_solve(schol, sgf);
  el.J.resize(np, np);
  la::gemm(1.0, gf, Trans::Yes, sgf, Trans::No, 0.0, el.J.view());
  la::symmetrize(el.J.view());
}

/// Associative smoothing combination for `l` (earlier) with `r` (later);
/// same aliasing contract as combine_filter.
void combine_smooth(const SmoothElement& l, const SmoothElement& r, SmoothElement& out) {
  la::Workspace::Scope scope(la::tls_workspace());
  const index rows = l.E.rows();

  MatrixView e_new = scope.mat(rows, r.E.cols());
  la::gemm(1.0, l.E.view(), Trans::No, r.E.view(), Trans::No, 0.0, e_new);

  std::span<double> g_new = scope.vec(l.g.size());
  std::copy(l.g.span().begin(), l.g.span().end(), g_new.begin());
  la::gemv(1.0, l.E.view(), Trans::No, r.g.span(), 1.0, g_new);

  MatrixView el = scope.mat(rows, r.L.cols());
  la::gemm(1.0, l.E.view(), Trans::No, r.L.view(), Trans::No, 0.0, el);
  MatrixView l_new = scope.mat(l.L.rows(), l.L.cols());
  l_new.assign(l.L.view());
  la::gemm(1.0, el, Trans::No, l.E.view(), Trans::Yes, 1.0, l_new);
  la::symmetrize(l_new);

  out.E.assign_from(e_new);
  out.g.assign_from(g_new);
  out.L.assign_from(l_new);
}

void require_identity_h(const Problem& p) {
  for (index i = 1; i <= p.last_index(); ++i)
    if (!p.step(i).evolution->identity_h())
      throw std::invalid_argument(
          "associative smoothing requires H_i = I; use the odd-even smoother");
}

}  // namespace

struct AssociativeScratch::Impl {
  std::vector<FilterElement> filt;
  std::vector<SmoothElement> smooth;
  Vector x0;     ///< reusable prior-mean working copy for element 0
  Matrix pcov0;  ///< reusable prior-covariance working copy
};

AssociativeScratch::AssociativeScratch() : impl_(std::make_unique<Impl>()) {}
AssociativeScratch::~AssociativeScratch() = default;

namespace {

void run_filter_scan(const Problem& p, const GaussianPrior& prior, par::ThreadPool& pool,
                     const AssociativeOptions& opts, AssociativeScratch::Impl& im) {
  if (auto err = p.validate()) throw std::invalid_argument("associative_smooth: " + *err);
  require_identity_h(p);
  const index k = p.last_index();
  std::vector<FilterElement>& elems = im.filt;
  elems.resize(static_cast<std::size_t>(k + 1));

  // Element 0 carries the filtered distribution of u_0 directly.
  {
    im.x0.assign_from(prior.mean.span());
    im.pcov0.assign_from(prior.cov.view());
    if (p.step(0).observation) kf_measurement_update(*p.step(0).observation, im.x0, im.pcov0);
    FilterElement& e0 = elems[0];
    const index n0 = p.state_dim(0);
    e0.A.resize(n0, n0);
    e0.b.assign_from(im.x0.span());
    e0.C.assign_from(im.pcov0.view());
    e0.eta.resize(n0);
    e0.J.resize(n0, n0);
  }

  par::parallel_for(pool, 1, k + 1, opts.grain, [&](index i) {
    make_filter_element_into(p.step(i), elems[static_cast<std::size_t>(i)]);
  });

  par::parallel_inclusive_scan_inplace(
      pool, std::span<FilterElement>(elems), opts.grain,
      [](FilterElement& l, const FilterElement& r) { combine_filter(l, r, l); },
      [](const FilterElement& l, FilterElement& r) { combine_filter(l, r, r); });
}

void run_smooth_scan(const Problem& p, par::ThreadPool& pool, const AssociativeOptions& opts,
                     const std::vector<FilterElement>& filt, std::vector<SmoothElement>& elems) {
  const index k = p.last_index();
  elems.resize(static_cast<std::size_t>(k + 1));
  par::parallel_for(pool, 0, k + 1, opts.grain, [&](index i) {
    const Vector& m = filt[static_cast<std::size_t>(i)].b;   // m_{i|i}
    const Matrix& pc = filt[static_cast<std::size_t>(i)].C;  // P_{i|i}
    SmoothElement& el = elems[static_cast<std::size_t>(i)];
    if (i == k) {
      el.E.resize(pc.rows(), pc.rows());
      el.g.assign_from(m.span());
      el.L.assign_from(pc.view());
      return;
    }
    const Evolution& e = *p.step(i + 1).evolution;
    const index n = pc.rows();
    const index nn = p.state_dim(i + 1);

    la::Workspace::Scope scope(la::tls_workspace());
    // Predicted covariance P_pred = F P F^T + Q and gain E = P F^T P_pred^{-1}.
    MatrixView fp = scope.mat(nn, n);
    la::gemm(1.0, e.F.view(), Trans::No, pc.view(), Trans::No, 0.0, fp);
    MatrixView ppred = scope.mat(nn, nn);
    e.noise.covariance_into(ppred);
    la::gemm(1.0, fp, Trans::No, e.F.view(), Trans::Yes, 1.0, ppred);
    la::symmetrize(ppred);
    MatrixView et = scope.mat(nn, n);  // E^T = P_pred^{-1} F P
    et.assign(fp);
    {
      MatrixView pchol = scope.mat(nn, nn);
      pchol.assign(ppred);
      if (!la::cholesky_lower(pchol))
        throw std::runtime_error("associative_smooth: predicted covariance not SPD");
      la::chol_solve(pchol, et);
    }
    el.E.resize(n, nn);
    for (index j = 0; j < nn; ++j)
      for (index i2 = 0; i2 < n; ++i2) el.E(i2, j) = et(j, i2);

    // g = m - E (F m + c).
    std::span<double> fm = scope.vec(nn);
    la::gemv(1.0, e.F.view(), Trans::No, m.span(), 0.0, fm);
    if (!e.c.empty()) la::axpy(1.0, e.c.span(), fm);
    el.g.assign_from(m.span());
    la::gemv(-1.0, el.E.view(), Trans::No, fm, 1.0, el.g.span());

    // L = P - E F P.
    el.L.assign_from(pc.view());
    la::gemm(-1.0, el.E.view(), Trans::No, fp, Trans::No, 1.0, el.L.view());
    la::symmetrize(el.L.view());
  });

  par::parallel_reverse_inclusive_scan_inplace(
      pool, std::span<SmoothElement>(elems), opts.grain,
      [](SmoothElement& l, const SmoothElement& r) { combine_smooth(l, r, l); },
      [](const SmoothElement& l, SmoothElement& r) { combine_smooth(l, r, r); });
}

}  // namespace

void associative_scan(const Problem& p, const GaussianPrior& prior, par::ThreadPool& pool,
                      const AssociativeOptions& opts, AssociativeScratch& scratch,
                      bool with_smooth) {
  run_filter_scan(p, prior, pool, opts, scratch.impl());
  if (with_smooth) run_smooth_scan(p, pool, opts, scratch.impl().filt, scratch.impl().smooth);
}

FilterResult associative_filter(const Problem& p, const GaussianPrior& prior,
                                par::ThreadPool& pool, const AssociativeOptions& opts) {
  AssociativeScratch local;
  AssociativeScratch& scratch = opts.scratch != nullptr ? *opts.scratch : local;
  run_filter_scan(p, prior, pool, opts, scratch.impl());
  std::vector<FilterElement>& elems = scratch.impl().filt;
  const bool reuse = opts.scratch != nullptr;

  FilterResult out;
  out.means.resize(elems.size());
  out.covariances.resize(elems.size());
  par::parallel_for(pool, 0, static_cast<index>(elems.size()), opts.grain, [&](index i) {
    FilterElement& el = elems[static_cast<std::size_t>(i)];
    if (reuse) {
      // Copy so the scratch keeps its warm buffers for the next call.
      out.means[static_cast<std::size_t>(i)].assign_from(el.b.span());
      out.covariances[static_cast<std::size_t>(i)].assign_from(el.C.view());
    } else {
      out.means[static_cast<std::size_t>(i)] = std::move(el.b);
      out.covariances[static_cast<std::size_t>(i)] = std::move(el.C);
    }
  });
  return out;
}

void associative_smooth_into(const Problem& p, const GaussianPrior& prior,
                             par::ThreadPool& pool, const AssociativeOptions& opts,
                             SmootherResult& out) {
  AssociativeScratch local;
  AssociativeScratch& scratch = opts.scratch != nullptr ? *opts.scratch : local;
  associative_scan(p, prior, pool, opts, scratch, /*with_smooth=*/true);
  std::vector<SmoothElement>& elems = scratch.impl().smooth;
  const bool reuse = opts.scratch != nullptr;

  out.means.resize(elems.size());
  out.covariances.resize(elems.size());
  par::parallel_for(pool, 0, static_cast<index>(elems.size()), opts.grain, [&](index i) {
    SmoothElement& el = elems[static_cast<std::size_t>(i)];
    if (reuse) {
      // Copy capacity-reusing so the scratch keeps its warm buffers AND the
      // caller storage keeps its own.
      out.means[static_cast<std::size_t>(i)].assign_from(el.g.span());
      out.covariances[static_cast<std::size_t>(i)].assign_from(el.L.view());
    } else {
      out.means[static_cast<std::size_t>(i)] = std::move(el.g);
      out.covariances[static_cast<std::size_t>(i)] = std::move(el.L);
    }
  });
}

SmootherResult associative_smooth(const Problem& p, const GaussianPrior& prior,
                                  par::ThreadPool& pool, const AssociativeOptions& opts) {
  SmootherResult res;
  associative_smooth_into(p, prior, pool, opts, res);
  return res;
}

}  // namespace pitk::kalman
