#include "core/paige_saunders.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/selinv.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

namespace {

using la::MatrixView;
using la::Trans;

}  // namespace

BidiagonalFactor paige_saunders_factor(const Problem& p) {
  BidiagonalFactor f;
  paige_saunders_factor_into(p, f);
  return f;
}

void paige_saunders_factor_into(const Problem& p, BidiagonalFactor& f) {
  if (auto err = p.validate(true)) throw std::invalid_argument("paige_saunders: " + *err);
  const index k = p.last_index();

  // Preallocate every result block before the sweep; Matrix::resize reuses a
  // warm factor's capacity, so re-factoring a same-shaped problem allocates
  // nothing inside the per-step loop below.
  f.diag.resize(static_cast<std::size_t>(k + 1));
  f.sup.resize(static_cast<std::size_t>(k + 1));
  f.rhs.resize(static_cast<std::size_t>(k + 1));
  index maxn = 0;
  index maxm = 0;
  index maxl = 0;
  for (index i = 0; i <= k; ++i) {
    const index ni = p.state_dim(i);
    f.diag[static_cast<std::size_t>(i)].resize(ni, ni);
    if (i < k)
      f.sup[static_cast<std::size_t>(i)].resize(ni, p.state_dim(i + 1));
    else
      f.sup[static_cast<std::size_t>(i)].resize(0, 0);
    f.rhs[static_cast<std::size_t>(i)].resize(ni);
    maxn = std::max(maxn, ni);
    maxm = std::max(maxm, p.step(i).obs_rows());
    maxl = std::max(maxl, p.step(i).evo_rows());
  }

  // `pending` carries every row that still constrains the current state:
  // initially the weighted observation of step 0, later the triangular
  // leftovers of each elimination stacked with fresh observation rows.  It
  // lives in a fixed arena borrow (rows <= maxn + maxm) viewed at the current
  // shape; the stacked QR panel gets its own fixed borrow.
  const index max_pend = maxn + maxm;
  const index max_panel = max_pend + maxl;
  la::Workspace::Scope outer(la::tls_workspace());
  double* pend_buf = outer.raw(static_cast<std::size_t>(max_pend * maxn));
  double* prhs_buf = outer.raw(static_cast<std::size_t>(max_pend));
  double* panel_buf = outer.raw(static_cast<std::size_t>(max_panel * 2 * maxn));
  double* panel_rhs_buf = outer.raw(static_cast<std::size_t>(max_panel));

  la::QrScratch scratch;
  index pr = 0;  // current pending row count

  {
    la::Workspace::Scope scope(la::tls_workspace());
    WeightedStepView w0 = weigh_step_into(p.step(0), scope);
    pr = w0.C.rows();
    MatrixView pv(pend_buf, pr, p.state_dim(0), max_pend);
    pv.assign(w0.C);
    std::copy(w0.ow.begin(), w0.ow.end(), prhs_buf);
  }

  for (index i = 1; i <= k; ++i) {
    la::Workspace::Scope scope(la::tls_workspace());
    const index n_prev = p.state_dim(i - 1);
    const index n_cur = p.state_dim(i);
    WeightedStepView w = weigh_step_into(p.step(i), scope);
    const index l = w.D.rows();
    const index rp = pr;

    // Stacked panel over states (i-1, i):
    //   [ pending   0  ]   rhs: [ pending_rhs ]
    //   [  -B_i    D_i ]        [     c_w     ]
    MatrixView s(panel_buf, rp + l, n_prev + n_cur, max_panel);
    s.set_zero();
    std::span<double> srhs(panel_rhs_buf, static_cast<std::size_t>(rp + l));
    if (rp > 0) {
      s.block(0, 0, rp, n_prev).assign(MatrixView(pend_buf, rp, n_prev, max_pend));
      for (index q = 0; q < rp; ++q) srhs[static_cast<std::size_t>(q)] = prhs_buf[q];
    }
    {
      MatrixView bblk = s.block(rp, 0, l, n_prev);
      bblk.assign(w.B);
      la::scale(-1.0, bblk);
      s.block(rp, n_prev, l, n_cur).assign(w.D);
      for (index q = 0; q < l; ++q) srhs[static_cast<std::size_t>(rp + q)] = w.cw[static_cast<std::size_t>(q)];
    }

    scratch.factor_apply(s, MatrixView(srhs.data(), rp + l, 1, rp + l));

    // Top n_prev rows are the final R rows of state i-1 (upper triangle only;
    // below-diagonal storage holds Householder vectors).  The preallocated
    // blocks were zeroed by resize, so only the triangle is written.
    {
      Matrix& dg = f.diag[static_cast<std::size_t>(i - 1)];
      Matrix& sp = f.sup[static_cast<std::size_t>(i - 1)];
      Vector& rh = f.rhs[static_cast<std::size_t>(i - 1)];
      const index avail = std::min(s.rows(), n_prev);
      for (index j = 0; j < n_prev; ++j)
        for (index q = 0; q < std::min(avail, j + 1); ++q) dg(q, j) = s(q, j);
      for (index j = 0; j < n_cur; ++j)
        for (index q = 0; q < avail; ++q) sp(q, j) = s(q, n_prev + j);
      for (index q = 0; q < avail; ++q) rh[q] = srhs[static_cast<std::size_t>(q)];
    }

    // Remaining rows (triangular leftover in the u_i columns) + fresh
    // observation rows become the new pending block.  Rows below the panel's
    // R factor (beyond its column count) are identically zero and must be
    // dropped, otherwise the pending block grows by ~n rows per step and the
    // sweep degrades from O(k n^3) to O(k^2 n^3).
    const index rem = std::max<index>(0, std::min(s.rows() - n_prev, n_cur));
    const index m = w.C.rows();
    pr = rem + m;
    MatrixView np(pend_buf, pr, n_cur, max_pend);
    for (index j = 0; j < n_cur; ++j)
      for (index q = 0; q < rem; ++q)
        // Upper-trapezoidal part only; below-diagonal entries of the panel
        // hold Householder vectors, not matrix values.
        np(q, j) = (q <= j) ? s(n_prev + q, n_prev + j) : 0.0;
    for (index q = 0; q < rem; ++q) prhs_buf[q] = srhs[static_cast<std::size_t>(n_prev + q)];
    if (m > 0) {
      np.block(rem, 0, m, n_cur).assign(w.C);
      for (index q = 0; q < m; ++q) prhs_buf[rem + q] = w.ow[static_cast<std::size_t>(q)];
    }
  }

  // Final state: compress the pending rows into R_kk.
  const index nk = p.state_dim(k);
  MatrixView pv(pend_buf, pr, nk, max_pend);
  scratch.factor_apply(pv, MatrixView(prhs_buf, pr, 1, max_pend));
  la::qr_extract_r_square(pv, f.diag[static_cast<std::size_t>(k)].view());
  const index avail = std::min(pr, nk);
  for (index q = 0; q < avail; ++q) f.rhs[static_cast<std::size_t>(k)][q] = prhs_buf[q];
  for (index q = avail; q < nk; ++q) f.rhs[static_cast<std::size_t>(k)][q] = 0.0;
}

std::vector<Vector> paige_saunders_solve(const BidiagonalFactor& f) {
  std::vector<Vector> u;
  paige_saunders_solve_into(f, u);
  return u;
}

namespace {

// Kalman state dimensions live in n <= 8; there the per-state update runs
// on direct loops instead of gemv/trsv, whose call dispatch dominates the
// ~50 flops of a 4x4 step (same trade as the SelInv small-dim path).
constexpr index kSmallState = 8;

void back_substitute_state(const BidiagonalFactor& f, index i, index k, std::vector<Vector>& u) {
  const Matrix& rd = f.diag[static_cast<std::size_t>(i)];
  const index n = rd.rows();
  Vector& x = u[static_cast<std::size_t>(i)];
  x.assign_from(f.rhs[static_cast<std::size_t>(i)].span());
  if (i < k) {
    const Matrix& rs = f.sup[static_cast<std::size_t>(i)];
    const Vector& un = u[static_cast<std::size_t>(i + 1)];
    if (n <= kSmallState && rs.cols() <= kSmallState) {
      for (index c = 0; c < rs.cols(); ++c) {
        const double uc = un[c];
        for (index r = 0; r < n; ++r) x[r] -= rs(r, c) * uc;
      }
    } else {
      la::gemv(-1.0, rs.view(), Trans::No, un.span(), 1.0, x.span());
    }
  }
  if (n <= kSmallState) {
    for (index r = n - 1; r >= 0; --r) {
      double acc = x[r];
      for (index c = r + 1; c < n; ++c) acc -= rd(r, c) * x[c];
      x[r] = acc / rd(r, r);
    }
  } else {
    la::trsv(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, rd.view(), x.span());
  }
}

}  // namespace

void paige_saunders_solve_into(const BidiagonalFactor& f, std::vector<Vector>& u) {
  paige_saunders_solve_tail_into(f, 0, u);
}

void paige_saunders_solve_tail_into(const BidiagonalFactor& f, la::index from,
                                    std::vector<Vector>& u) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  if (from < 0 || from > k)
    throw std::invalid_argument("paige_saunders_solve_tail_into: from out of range");
  u.resize(static_cast<std::size_t>(k + 1));
  for (index i = k; i >= from; --i) back_substitute_state(f, i, k, u);
}

TruncatedPass paige_saunders_solve_delta_into(const BidiagonalFactor& f, la::index from,
                                              std::span<const double> decay_amp, double tol,
                                              std::vector<Vector>& u) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  if (from < 1 || from > k)
    throw std::invalid_argument("paige_saunders_solve_delta_into: from must be in [1, k]");
  if (static_cast<index>(u.size()) <= from || static_cast<index>(decay_amp.size()) < from)
    throw std::invalid_argument(
        "paige_saunders_solve_delta_into: previous solution / decay bounds too short");

  la::Workspace::Scope scope(la::tls_workspace());
  index maxn = 0;
  for (index i = 0; i <= from; ++i) maxn = std::max(maxn, f.diag[static_cast<std::size_t>(i)].rows());
  std::span<double> cur = scope.vec(maxn);   // delta at the state just updated
  std::span<double> next = scope.vec(maxn);  // staging for the next delta

  // Seed: exact recompute of the tail, delta = new u[from] - old u[from].
  const index nf = f.diag[static_cast<std::size_t>(from)].rows();
  if (u[static_cast<std::size_t>(from)].size() != nf)
    throw std::invalid_argument("paige_saunders_solve_delta_into: stale solution shape");
  for (index q = 0; q < nf; ++q) cur[static_cast<std::size_t>(q)] = u[static_cast<std::size_t>(from)][q];
  paige_saunders_solve_tail_into(f, from, u);
  double dn = 0.0;
  for (index q = 0; q < nf; ++q) {
    const double v = u[static_cast<std::size_t>(from)][q] - cur[static_cast<std::size_t>(q)];
    cur[static_cast<std::size_t>(q)] = v;
    dn += v * v;
  }
  dn = std::sqrt(dn);

  index i = from - 1;
  for (; i >= 0; --i) {
    if (dn == 0.0) break;
    // decay_amp[i] may be +inf (rank-deficient block: never truncate across
    // it); dn > 0 here, so the product is well defined, and a NaN bound
    // (never produced, but belt-and-braces) compares false -> keep going.
    if (decay_amp[static_cast<std::size_t>(i)] * dn <= tol) break;
    const Matrix& rd = f.diag[static_cast<std::size_t>(i)];
    const Matrix& rs = f.sup[static_cast<std::size_t>(i)];
    const index n = rd.rows();
    const index m = rs.cols();
    // delta_i = -R_ii^{-1} (R_{i,i+1} delta_{i+1})
    if (n <= kSmallState && m <= kSmallState) {
      for (index r = 0; r < n; ++r) {
        double acc = 0.0;
        for (index c = 0; c < m; ++c) acc -= rs(r, c) * cur[static_cast<std::size_t>(c)];
        next[static_cast<std::size_t>(r)] = acc;
      }
      for (index r = n - 1; r >= 0; --r) {
        double acc = next[static_cast<std::size_t>(r)];
        for (index c = r + 1; c < n; ++c) acc -= rd(r, c) * next[static_cast<std::size_t>(c)];
        next[static_cast<std::size_t>(r)] = acc / rd(r, r);
      }
    } else {
      la::gemv(-1.0, rs.view(), Trans::No, cur.first(static_cast<std::size_t>(m)), 0.0,
               next.first(static_cast<std::size_t>(n)));
      la::trsv(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, rd.view(),
               next.first(static_cast<std::size_t>(n)));
    }
    Vector& x = u[static_cast<std::size_t>(i)];
    if (x.size() != n)
      throw std::invalid_argument("paige_saunders_solve_delta_into: stale solution shape");
    double s2 = 0.0;
    for (index r = 0; r < n; ++r) {
      const double d = next[static_cast<std::size_t>(r)];
      x[r] += d;
      cur[static_cast<std::size_t>(r)] = d;
      s2 += d * d;
    }
    dn = std::sqrt(s2);
  }
  return TruncatedPass{.updated_from = i + 1, .truncated = i >= 0};
}

SmootherResult paige_saunders_smooth(const Problem& p, const PaigeSaundersOptions& opts) {
  BidiagonalFactor f = paige_saunders_factor(p);
  SmootherResult res;
  res.means = paige_saunders_solve(f);
  if (opts.compute_covariance) res.covariances = selinv_bidiagonal(f);
  return res;
}

}  // namespace pitk::kalman
