#include "core/paige_saunders.hpp"

#include <stdexcept>

#include "core/selinv.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"

namespace pitk::kalman {

namespace {

using la::ConstMatrixView;
using la::MatrixView;
using la::Trans;

/// Copy the top `take` transformed rows of (block, rhs) into a square-padded
/// (rows x cols) triangle-extraction target.  Rows beyond `avail` stay zero
/// (the 0*u = 0 padding convention of DESIGN.md).
void extract_padded(ConstMatrixView src, std::span<const double> src_rhs, index avail,
                    MatrixView dst_left, MatrixView dst_right, std::span<double> dst_rhs) {
  const index take = std::min(avail, dst_left.rows());
  for (index j = 0; j < dst_left.cols(); ++j)
    for (index i = 0; i < take; ++i) dst_left(i, j) = src(i, j);
  for (index j = 0; j < dst_right.cols(); ++j)
    for (index i = 0; i < take; ++i) dst_right(i, j) = src(i, dst_left.cols() + j);
  for (index i = 0; i < take; ++i) dst_rhs[static_cast<std::size_t>(i)] = src_rhs[static_cast<std::size_t>(i)];
}

}  // namespace

BidiagonalFactor paige_saunders_factor(const Problem& p) {
  if (auto err = p.validate(true)) throw std::invalid_argument("paige_saunders: " + *err);
  const index k = p.last_index();

  BidiagonalFactor f;
  f.diag.resize(static_cast<std::size_t>(k + 1));
  f.sup.resize(static_cast<std::size_t>(k + 1));
  f.rhs.resize(static_cast<std::size_t>(k + 1));

  la::QrScratch scratch;

  // `pending` carries every row that still constrains the current state:
  // initially the weighted observation of step 0, later the triangular
  // leftovers of each elimination stacked with fresh observation rows.
  WeightedStep w0 = weigh_step(p.step(0));
  Matrix pending = std::move(w0.C);
  Vector pending_rhs = std::move(w0.ow);

  for (index i = 1; i <= k; ++i) {
    const index n_prev = p.state_dim(i - 1);
    const index n_cur = p.state_dim(i);
    WeightedStep w = weigh_step(p.step(i));
    const index l = w.D.rows();
    const index rp = pending.rows();

    // Stacked panel over states (i-1, i):
    //   [ pending   0  ]   rhs: [ pending_rhs ]
    //   [  -B_i    D_i ]        [     c_w     ]
    Matrix s(rp + l, n_prev + n_cur);
    Vector srhs(rp + l);
    if (rp > 0) {
      s.block(0, 0, rp, n_prev).assign(pending.view());
      for (index q = 0; q < rp; ++q) srhs[q] = pending_rhs[q];
    }
    {
      MatrixView bblk = s.block(rp, 0, l, n_prev);
      bblk.assign(w.B.view());
      la::scale(-1.0, bblk);
      s.block(rp, n_prev, l, n_cur).assign(w.D.view());
      for (index q = 0; q < l; ++q) srhs[rp + q] = w.cw[q];
    }

    scratch.factor_apply(s.view(), srhs.as_matrix());

    // Top n_prev rows are the final R rows of state i-1.
    f.diag[static_cast<std::size_t>(i - 1)].resize(n_prev, n_prev);
    f.sup[static_cast<std::size_t>(i - 1)].resize(n_prev, n_cur);
    f.rhs[static_cast<std::size_t>(i - 1)].resize(n_prev);
    // Zero below-diagonal reflector storage before extraction: only the
    // upper triangle of the factored panel is R.
    {
      Matrix rtop(n_prev, n_prev + n_cur);
      const index avail = std::min(s.rows(), n_prev);
      for (index j = 0; j < n_prev + n_cur; ++j)
        for (index q = 0; q < std::min(avail, j + 1); ++q) rtop(q, j) = s(q, j);
      extract_padded(rtop.view(), srhs.span(), avail, f.diag[static_cast<std::size_t>(i - 1)].view(),
                     f.sup[static_cast<std::size_t>(i - 1)].view(),
                     f.rhs[static_cast<std::size_t>(i - 1)].span());
    }

    // Remaining rows (triangular leftover in the u_i columns) + fresh
    // observation rows become the new pending block.  Rows below the panel's
    // R factor (beyond its column count) are identically zero and must be
    // dropped, otherwise the pending block grows by ~n rows per step and the
    // sweep degrades from O(k n^3) to O(k^2 n^3).
    const index rem = std::max<index>(0, std::min(s.rows() - n_prev, n_cur));
    const index m = w.C.rows();
    Matrix next_pending(rem + m, n_cur);
    Vector next_rhs(rem + m);
    for (index j = 0; j < n_cur; ++j)
      for (index q = 0; q < rem; ++q) {
        // Upper-trapezoidal part only; below-diagonal entries of the panel
        // hold Householder vectors, not matrix values.
        const index row = n_prev + q;
        next_pending(q, j) = (row <= n_prev + j) ? s(row, n_prev + j) : 0.0;
      }
    for (index q = 0; q < rem; ++q) next_rhs[q] = srhs[n_prev + q];
    if (m > 0) {
      next_pending.block(rem, 0, m, n_cur).assign(w.C.view());
      for (index q = 0; q < m; ++q) next_rhs[rem + q] = w.ow[q];
    }
    pending = std::move(next_pending);
    pending_rhs = std::move(next_rhs);
  }

  // Final state: compress the pending rows into R_kk.
  const index nk = p.state_dim(k);
  scratch.factor_apply(pending.view(), pending_rhs.as_matrix());
  f.diag[static_cast<std::size_t>(k)].resize(nk, nk);
  f.sup[static_cast<std::size_t>(k)] = Matrix();
  f.rhs[static_cast<std::size_t>(k)].resize(nk);
  la::qr_extract_r_square(pending.view(), f.diag[static_cast<std::size_t>(k)].view());
  const index avail = std::min(pending.rows(), nk);
  for (index q = 0; q < avail; ++q) f.rhs[static_cast<std::size_t>(k)][q] = pending_rhs[q];
  return f;
}

std::vector<Vector> paige_saunders_solve(const BidiagonalFactor& f) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  std::vector<Vector> u(static_cast<std::size_t>(k + 1));
  for (index i = k; i >= 0; --i) {
    Vector x = f.rhs[static_cast<std::size_t>(i)];
    if (i < k) {
      la::gemv(-1.0, f.sup[static_cast<std::size_t>(i)].view(), Trans::No,
               u[static_cast<std::size_t>(i + 1)].span(), 1.0, x.span());
    }
    la::trsv(la::Uplo::Upper, Trans::No, la::Diag::NonUnit,
             f.diag[static_cast<std::size_t>(i)].view(), x.span());
    u[static_cast<std::size_t>(i)] = std::move(x);
  }
  return u;
}

SmootherResult paige_saunders_smooth(const Problem& p, const PaigeSaundersOptions& opts) {
  BidiagonalFactor f = paige_saunders_factor(p);
  SmootherResult res;
  res.means = paige_saunders_solve(f);
  if (opts.compute_covariance) res.covariances = selinv_bidiagonal(f);
  return res;
}

}  // namespace pitk::kalman
