#pragma once

/// \file selinv.hpp
/// Sequential block SelInv (Algorithm 1 of the paper).
///
/// Computes the diagonal blocks of S = (R^T R)^{-1} for the block-bidiagonal
/// R produced by the Paige-Saunders sweep; these are exactly cov(\hat u_i)
/// (Section 4).  The paper's mapping onto the Lin et al. LDL^T SelInv is
///   D_ii = R_ii^T R_ii,   L_ii = I,   L_ij = R_ji^T R_jj^{-T},
/// which turns the selected-inversion recurrences into operations on R's
/// blocks only:
///   S_{j,I} = -R_jj^{-1} R_{j,I} S_{I,I}
///   S_jj    =  R_jj^{-1} R_jj^{-T} - S_{j,I} (R_jj^{-1} R_{j,I})^T
/// with I = {j+1} in the bidiagonal case.

#include "core/paige_saunders.hpp"
#include "kalman/model.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

/// cov(\hat u_i) for every state from a bidiagonal factor (Algorithm 1).
[[nodiscard]] std::vector<Matrix> selinv_bidiagonal(const BidiagonalFactor& f);

/// SelInv into caller-owned storage, reusing each block's capacity.  All
/// per-state transients (W, the off-diagonal S block, the triangular
/// inverse) are borrowed from the calling thread's la::Workspace, so a
/// repeat pass over a same-shaped factor with warm `s` performs zero heap
/// allocations.
void selinv_bidiagonal_into(const BidiagonalFactor& f, std::vector<Matrix>& s);

/// Partial-range SelInv: recompute s[from..k] with arithmetic identical to
/// selinv_bidiagonal_into over that range (the recurrence restarts at the
/// last block), leaving entries below `from` untouched.  `s` is resized to
/// k+1 entries.
void selinv_bidiagonal_tail_into(const BidiagonalFactor& f, la::index from,
                                 std::vector<Matrix>& s);

/// Truncated delta SelInv for streaming re-smooths.  `s` must hold the
/// previous covariances of a factor whose blocks below `from` are unchanged.
/// The tail s[from..k] is recomputed exactly, then only the correction
///   Delta_j = W_j Delta_{j+1} W_j^T,   W_j = R_jj^{-1} R_{j,j+1}
/// is applied downward, stopping at the first j where
///   decay_amp[j]^2 * ||Delta_{j+1}||_F <= tol
/// (squared: the covariance recurrence applies W on both sides), so each
/// skipped state's covariance is missing a correction of Frobenius norm at
/// most tol.  Same decay_amp as paige_saunders_solve_delta_into.
TruncatedPass selinv_bidiagonal_delta_into(const BidiagonalFactor& f, la::index from,
                                           std::span<const double> decay_amp, double tol,
                                           std::vector<Matrix>& s);

/// Helper shared by both SelInv variants: R^{-1} R^{-T} for an upper
/// triangular R (the "diagonal source" term of the recurrence).
[[nodiscard]] Matrix tri_inv_gram(la::ConstMatrixView r);

/// R^{-1} R^{-T} written into `out` (same order as r); the triangular
/// inverse is staged in a borrow from `scope` and the product runs through
/// the blocked trmm_left path (half the flops of the dense gemm form).
void tri_inv_gram_into(la::ConstMatrixView r, la::MatrixView out, la::Workspace::Scope& scope);

}  // namespace pitk::kalman
