#pragma once

/// \file normal_equations.hpp
/// The paper's "third parallel algorithm" (Section 6): since
/// (U A)^T (U A) is block tridiagonal, the smoothed states can also be
/// computed by block odd-even (cyclic) reduction of the *normal equations*
/// [Buzbee-Golub-Nielson 1970, Heller 1976].  The paper notes this approach
/// "is unstable and does not appear to have any advantage over our new
/// algorithm" — this module implements it so the claim can be measured
/// (tests/bench compare its accuracy against the QR-based smoothers as the
/// covariance conditioning degrades: forming A^T A squares the condition
/// number).
///
/// Two solvers share the assembled tridiagonal system:
///  * normal_cyclic_smooth - parallel block cyclic reduction (log k levels);
///  * normal_thomas_smooth - sequential block LDL-style forward/backward
///    sweep (the classical Thomas recursion), the natural sequential
///    baseline for the cyclic variant.

#include "kalman/model.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace pitk::kalman {

/// The block tridiagonal normal-equations system
///   U_{i-1}^T x_{i-1} + T_i x_i + U_i x_{i+1} = g_i.
struct BlockTridiagonal {
  std::vector<Matrix> T;  ///< diagonal blocks, n_i x n_i (SPD in exact arithmetic)
  std::vector<Matrix> U;  ///< super-diagonal blocks, n_i x n_{i+1}; entry k empty
  std::vector<Vector> g;  ///< right-hand side

  [[nodiscard]] la::index size() const noexcept { return static_cast<la::index>(T.size()); }
};

/// Assemble (U A)^T (U A) and (U A)^T U b from the weighted step blocks;
/// one parallel pass over the steps.
[[nodiscard]] BlockTridiagonal assemble_normal_equations(const Problem& p,
                                                         par::ThreadPool& pool,
                                                         la::index grain = par::default_grain);

struct NormalCyclicOptions {
  la::index grain = par::default_grain;
};

/// Parallel block cyclic reduction solve; means only (the covariance path
/// has no advantage over SelInv, per the paper, and is omitted).
/// Throws std::runtime_error if a pivot block is exactly singular.
[[nodiscard]] std::vector<Vector> normal_cyclic_smooth(const Problem& p, par::ThreadPool& pool,
                                                       const NormalCyclicOptions& opts = {});

/// Sequential block-Thomas solve of the same system.
[[nodiscard]] std::vector<Vector> normal_thomas_smooth(const Problem& p);

}  // namespace pitk::kalman
