#include "core/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "core/selinv.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"

namespace pitk::kalman {

namespace {

using la::index;

/// Relative threshold below which a triangular diagonal entry is treated as
/// a rank deficiency (the state is not yet determined by the data).
constexpr double kRankTol = 1e-12;

bool full_rank(const Matrix& r) {
  double mx = 0.0;
  for (index i = 0; i < r.rows(); ++i) mx = std::max(mx, std::abs(r(i, i)));
  if (mx == 0.0) return false;
  for (index i = 0; i < r.rows(); ++i)
    if (std::abs(r(i, i)) <= kRankTol * mx) return false;
  return true;
}

}  // namespace

IncrementalFilter::IncrementalFilter(la::index n0) : n_(n0), pending_(0, n0) {
  if (n0 <= 0) throw std::invalid_argument("IncrementalFilter: n0 must be positive");
}

void IncrementalFilter::reset(la::index n0) {
  if (n0 <= 0) throw std::invalid_argument("IncrementalFilter::reset: n0 must be positive");
  step_ = 0;
  n_ = n0;
  pending_ = Matrix(0, n0);
  pending_rhs_ = Vector();
  finished_ = BidiagonalFactor{};
}

void IncrementalFilter::evolve(Matrix f, Vector c, CovFactor k) {
  const index n_new = f.rows();
  Matrix h;  // empty = identity
  evolve_rect(n_new, std::move(h), std::move(f), std::move(c), std::move(k));
}

void IncrementalFilter::evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k) {
  if (f.cols() != n_)
    throw std::invalid_argument("IncrementalFilter::evolve: F must have current-dim columns");
  const index l = f.rows();
  if (!h.empty() && (h.rows() != l || h.cols() != n_new))
    throw std::invalid_argument("IncrementalFilter::evolve: H shape mismatch");
  if (h.empty() && l != n_new)
    throw std::invalid_argument("IncrementalFilter::evolve: identity H requires F rows == n_new");
  if (k.dim() != l) throw std::invalid_argument("IncrementalFilter::evolve: noise dim mismatch");

  // Weighted blocks: B = V F, D = V H, c_w = V c.
  Matrix b = k.weighted(f.view());
  Matrix d;
  if (h.empty()) {
    d = Matrix::identity(n_new);
    k.weight_in_place(d.view());
  } else {
    d = k.weighted(h.view());
  }
  Vector cw = c.empty() ? Vector::zero(l) : k.weighted(c.span());

  // Panel over (u_i, u_{i+1}): [pending 0; -B D].
  const index rp = pending_.rows();
  Matrix s(rp + l, n_ + n_new);
  Vector srhs(rp + l);
  if (rp > 0) {
    s.block(0, 0, rp, n_).assign(pending_.view());
    for (index q = 0; q < rp; ++q) srhs[q] = pending_rhs_[q];
  }
  {
    la::MatrixView bblk = s.block(rp, 0, l, n_);
    bblk.assign(b.view());
    la::scale(-1.0, bblk);
    s.block(rp, n_, l, n_new).assign(d.view());
    for (index q = 0; q < l; ++q) srhs[rp + q] = cw[q];
  }
  la::QrScratch scratch;
  scratch.factor_apply(s.view(), srhs.as_matrix());

  // Finalize the R row block of the state being left behind.
  Matrix diag(n_, n_);
  Matrix sup(n_, n_new);
  Vector rrhs(n_);
  const index avail = std::min(s.rows(), n_);
  for (index j = 0; j < n_ + n_new; ++j)
    for (index q = 0; q < std::min(avail, j + 1); ++q) {
      if (j < n_)
        diag(q, j) = s(q, j);
      else
        sup(q, j - n_) = s(q, j);
    }
  for (index q = 0; q < avail; ++q) rrhs[q] = srhs[q];
  finished_.diag.push_back(std::move(diag));
  finished_.sup.push_back(std::move(sup));
  finished_.rhs.push_back(std::move(rrhs));

  // The trapezoidal leftover constrains the new state.
  const index rem = std::max<index>(0, std::min(s.rows() - n_, n_new));
  Matrix next_pending(rem, n_new);
  Vector next_rhs(rem);
  for (index j = 0; j < n_new; ++j)
    for (index q = 0; q < rem; ++q)
      next_pending(q, j) = (q <= j) ? s(n_ + q, n_ + j) : 0.0;
  for (index q = 0; q < rem; ++q) next_rhs[q] = srhs[n_ + q];
  pending_ = std::move(next_pending);
  pending_rhs_ = std::move(next_rhs);
  n_ = n_new;
  ++step_;
}

void IncrementalFilter::observe(Matrix g, Vector o, CovFactor l) {
  if (g.cols() != n_)
    throw std::invalid_argument("IncrementalFilter::observe: G must have current-dim columns");
  if (o.size() != g.rows() || l.dim() != g.rows())
    throw std::invalid_argument("IncrementalFilter::observe: observation shape mismatch");
  Matrix c = l.weighted(g.view());
  Vector ow = l.weighted(o.span());

  const index rp = pending_.rows();
  Matrix stacked(rp + c.rows(), n_);
  Vector rhs(rp + c.rows());
  if (rp > 0) {
    stacked.block(0, 0, rp, n_).assign(pending_.view());
    for (index q = 0; q < rp; ++q) rhs[q] = pending_rhs_[q];
  }
  stacked.block(rp, 0, c.rows(), n_).assign(c.view());
  for (index q = 0; q < c.rows(); ++q) rhs[rp + q] = ow[q];

  if (stacked.rows() > n_) {
    // Keep the invariant of at most n pending rows (streaming compression).
    la::QrScratch scratch;
    scratch.factor_apply(stacked.view(), rhs.as_matrix());
    Matrix compressed(n_, n_);
    la::qr_extract_r_square(stacked.view(), compressed.view());
    Vector crhs(n_);
    for (index q = 0; q < std::min(stacked.rows(), n_); ++q) crhs[q] = rhs[q];
    pending_ = std::move(compressed);
    pending_rhs_ = std::move(crhs);
  } else {
    pending_ = std::move(stacked);
    pending_rhs_ = std::move(rhs);
  }
}

std::optional<std::pair<Matrix, Vector>> IncrementalFilter::compressed() const {
  Matrix m = pending_;
  Vector rhs = pending_rhs_;
  la::QrScratch scratch;
  scratch.factor_apply(m.view(), rhs.as_matrix());
  Matrix r(n_, n_);
  la::qr_extract_r_square(m.view(), r.view());
  if (!full_rank(r)) return std::nullopt;
  Vector rr(n_);
  for (index q = 0; q < std::min(m.rows(), n_); ++q) rr[q] = rhs[q];
  return std::make_pair(std::move(r), std::move(rr));
}

std::optional<Vector> IncrementalFilter::estimate() const {
  auto c = compressed();
  if (!c) return std::nullopt;
  Vector x = std::move(c->second);
  la::trsv(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, c->first.view(), x.span());
  return x;
}

std::optional<Matrix> IncrementalFilter::covariance() const {
  auto c = compressed();
  if (!c) return std::nullopt;
  return tri_inv_gram(c->first.view());
}

SmootherResult IncrementalFilter::smooth(bool with_covariances) const {
  auto c = compressed();
  if (!c)
    throw std::runtime_error(
        "IncrementalFilter::smooth: the current state is not yet fully determined");
  BidiagonalFactor f = finished_;
  f.diag.push_back(std::move(c->first));
  f.sup.emplace_back();
  f.rhs.push_back(std::move(c->second));
  SmootherResult res;
  res.means = paige_saunders_solve(f);
  if (with_covariances) res.covariances = selinv_bidiagonal(f);
  return res;
}

}  // namespace pitk::kalman
