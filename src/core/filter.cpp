#include "core/filter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/selinv.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

namespace {

using la::index;

/// Relative threshold below which a triangular diagonal entry is treated as
/// a rank deficiency (the state is not yet determined by the data).
constexpr double kRankTol = 1e-12;

bool full_rank(const Matrix& r) {
  double mx = 0.0;
  for (index i = 0; i < r.rows(); ++i) mx = std::max(mx, std::abs(r(i, i)));
  if (mx == 0.0) return false;
  for (index i = 0; i < r.rows(); ++i)
    if (std::abs(r(i, i)) <= kRankTol * mx) return false;
  return true;
}

}  // namespace

IncrementalFilter::IncrementalFilter(la::index n0) : n_(n0), pending_(0, n0) {
  if (n0 <= 0) throw std::invalid_argument("IncrementalFilter: n0 must be positive");
}

void IncrementalFilter::reset(la::index n0) {
  if (n0 <= 0) throw std::invalid_argument("IncrementalFilter::reset: n0 must be positive");
  step_ = 0;
  n_ = n0;
  ++epoch_;
  pending_.resize(0, n0);
  pending_rhs_.resize(0);
  // Retire the finalized blocks into the spare pools; the next track's
  // evolve/observe loop resizes them in place instead of allocating.
  for (Matrix& m : finished_.diag) spare_matrices_.push_back(std::move(m));
  for (Matrix& m : finished_.sup) spare_matrices_.push_back(std::move(m));
  for (Vector& v : finished_.rhs) spare_vectors_.push_back(std::move(v));
  finished_.diag.clear();
  finished_.sup.clear();
  finished_.rhs.clear();
  decay_amp_.clear();
}

Matrix IncrementalFilter::take_spare_matrix() {
  if (spare_matrices_.empty()) return {};
  Matrix m = std::move(spare_matrices_.back());
  spare_matrices_.pop_back();
  return m;
}

Vector IncrementalFilter::take_spare_vector() {
  if (spare_vectors_.empty()) return {};
  Vector v = std::move(spare_vectors_.back());
  spare_vectors_.pop_back();
  return v;
}

void IncrementalFilter::append_decay_amp(const Matrix& diag, const Matrix& sup) {
  // g = ||diag^{-1} sup||_F bounds (Frobenius >= spectral) how strongly a
  // correction to the next state's estimate feeds back into this one through
  // back substitution; the running entry keeps the max over every window
  // ending here: amp_i = g_i * max(1, amp_{i-1}) = max_j prod_{m=j..i} g_m.
  double g = std::numeric_limits<double>::infinity();
  if (full_rank(diag) && sup.rows() > 0 && sup.cols() > 0) {
    la::Workspace::Scope scope(la::tls_workspace());
    la::MatrixView w = scope.mat(sup.rows(), sup.cols());
    w.assign(sup.view());
    la::trsm_left(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, diag.view(), w);
    double ss = 0.0;
    for (index j = 0; j < w.cols(); ++j)
      for (index q = 0; q < w.rows(); ++q) ss += w(q, j) * w(q, j);
    g = std::sqrt(ss);
  } else if (sup.rows() == 0 || sup.cols() == 0) {
    g = 0.0;  // no coupling rows at all: nothing propagates past this block
  }
  const double prev = decay_amp_.empty() ? 1.0 : std::max(1.0, decay_amp_.back());
  decay_amp_.push_back(g * prev);
}

void IncrementalFilter::evolve(Matrix f, Vector c, CovFactor k) {
  const index n_new = f.rows();
  Matrix h;  // empty = identity
  evolve_rect(n_new, std::move(h), std::move(f), std::move(c), std::move(k));
}

void IncrementalFilter::evolve_rect(la::index n_new, Matrix h, Matrix f, Vector c, CovFactor k) {
  if (f.cols() != n_)
    throw std::invalid_argument("IncrementalFilter::evolve: F must have current-dim columns");
  const index l = f.rows();
  if (!h.empty() && (h.rows() != l || h.cols() != n_new))
    throw std::invalid_argument("IncrementalFilter::evolve: H shape mismatch");
  if (h.empty() && l != n_new)
    throw std::invalid_argument("IncrementalFilter::evolve: identity H requires F rows == n_new");
  if (k.dim() != l) throw std::invalid_argument("IncrementalFilter::evolve: noise dim mismatch");

  // Weighted blocks (arena-borrowed): B = V F, D = V H, c_w = V c.
  la::Workspace::Scope scope(la::tls_workspace());
  la::MatrixView b = scope.mat(l, n_);
  b.assign(f.view());
  k.weight_in_place(b);
  la::MatrixView d = scope.mat(l, n_new);
  if (h.empty()) {
    for (index q = 0; q < l; ++q) d(q, q) = 1.0;
  } else {
    d.assign(h.view());
  }
  k.weight_in_place(d);
  std::span<double> cw = scope.vec(l);
  if (!c.empty()) {
    std::copy(c.span().begin(), c.span().end(), cw.begin());
    k.weight_in_place(cw);
  }

  // Panel over (u_i, u_{i+1}): [pending 0; -B D].
  const index rp = pending_.rows();
  la::MatrixView s = scope.mat(rp + l, n_ + n_new);
  std::span<double> srhs = scope.vec(rp + l);
  if (rp > 0) {
    s.block(0, 0, rp, n_).assign(pending_.view());
    for (index q = 0; q < rp; ++q) srhs[static_cast<std::size_t>(q)] = pending_rhs_[q];
  }
  {
    la::MatrixView bblk = s.block(rp, 0, l, n_);
    bblk.assign(b);
    la::scale(-1.0, bblk);
    s.block(rp, n_, l, n_new).assign(d);
    for (index q = 0; q < l; ++q) srhs[static_cast<std::size_t>(rp + q)] = cw[static_cast<std::size_t>(q)];
  }
  qr_.factor_apply(s, la::MatrixView(srhs.data(), rp + l, 1, rp + l));

  // Finalize the R row block of the state being left behind, into recycled
  // storage (resize reuses the retired blocks' capacity).
  Matrix diag = take_spare_matrix();
  diag.resize(n_, n_);
  Matrix sup = take_spare_matrix();
  sup.resize(n_, n_new);
  Vector rrhs = take_spare_vector();
  rrhs.resize(n_);
  const index avail = std::min(s.rows(), n_);
  for (index j = 0; j < n_ + n_new; ++j)
    for (index q = 0; q < std::min(avail, j + 1); ++q) {
      if (j < n_)
        diag(q, j) = s(q, j);
      else
        sup(q, j - n_) = s(q, j);
    }
  for (index q = 0; q < avail; ++q) rrhs[q] = srhs[static_cast<std::size_t>(q)];
  append_decay_amp(diag, sup);
  finished_.diag.push_back(std::move(diag));
  finished_.sup.push_back(std::move(sup));
  finished_.rhs.push_back(std::move(rrhs));

  // The trapezoidal leftover constrains the new state (double-buffered so
  // the swap below never allocates).
  const index rem = std::max<index>(0, std::min(s.rows() - n_, n_new));
  scratch_pending_.resize(rem, n_new);
  scratch_rhs_.resize(rem);
  for (index j = 0; j < n_new; ++j)
    for (index q = 0; q < std::min(rem, j + 1); ++q)
      scratch_pending_(q, j) = s(n_ + q, n_ + j);
  for (index q = 0; q < rem; ++q) scratch_rhs_[q] = srhs[static_cast<std::size_t>(n_ + q)];
  std::swap(pending_, scratch_pending_);
  std::swap(pending_rhs_, scratch_rhs_);
  n_ = n_new;
  ++step_;
}

void IncrementalFilter::observe(Matrix g, Vector o, CovFactor l) {
  if (g.cols() != n_)
    throw std::invalid_argument("IncrementalFilter::observe: G must have current-dim columns");
  if (o.size() != g.rows() || l.dim() != g.rows())
    throw std::invalid_argument("IncrementalFilter::observe: observation shape mismatch");
  // Weighted observation rows, staged in the arena.
  la::Workspace::Scope scope(la::tls_workspace());
  const index m = g.rows();
  la::MatrixView c = scope.mat(m, n_);
  c.assign(g.view());
  l.weight_in_place(c);
  std::span<double> ow = scope.vec(m);
  std::copy(o.span().begin(), o.span().end(), ow.begin());
  l.weight_in_place(ow);

  const index rp = pending_.rows();
  la::MatrixView stacked = scope.mat(rp + m, n_);
  std::span<double> rhs = scope.vec(rp + m);
  if (rp > 0) {
    stacked.block(0, 0, rp, n_).assign(pending_.view());
    for (index q = 0; q < rp; ++q) rhs[static_cast<std::size_t>(q)] = pending_rhs_[q];
  }
  stacked.block(rp, 0, m, n_).assign(c);
  for (index q = 0; q < m; ++q) rhs[static_cast<std::size_t>(rp + q)] = ow[static_cast<std::size_t>(q)];

  if (stacked.rows() > n_) {
    // Keep the invariant of at most n pending rows (streaming compression).
    qr_.factor_apply(stacked, la::MatrixView(rhs.data(), rp + m, 1, rp + m));
    pending_.resize(n_, n_);
    la::qr_extract_r_square(stacked, pending_.view());
    pending_rhs_.resize(n_);
    for (index q = 0; q < std::min(stacked.rows(), n_); ++q)
      pending_rhs_[q] = rhs[static_cast<std::size_t>(q)];
  } else {
    pending_.assign_from(stacked);
    pending_rhs_.assign_from(rhs);
  }
}

std::optional<std::pair<Matrix, Vector>> IncrementalFilter::compressed() const {
  Matrix m = pending_;
  Vector rhs = pending_rhs_;
  la::QrScratch scratch;
  scratch.factor_apply(m.view(), rhs.as_matrix());
  Matrix r(n_, n_);
  la::qr_extract_r_square(m.view(), r.view());
  if (!full_rank(r)) return std::nullopt;
  Vector rr(n_);
  for (index q = 0; q < std::min(m.rows(), n_); ++q) rr[q] = rhs[q];
  return std::make_pair(std::move(r), std::move(rr));
}

std::optional<Vector> IncrementalFilter::estimate() const {
  auto c = compressed();
  if (!c) return std::nullopt;
  Vector x = std::move(c->second);
  la::trsv(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, c->first.view(), x.span());
  return x;
}

std::optional<Matrix> IncrementalFilter::covariance() const {
  auto c = compressed();
  if (!c) return std::nullopt;
  return tri_inv_gram(c->first.view());
}

void IncrementalFilter::resmooth_from(la::index step, BidiagonalFactor& f,
                                      la::QrScratch& qr) const {
  const index fin = finished_steps();
  if (step < 0 || step > fin)
    throw std::invalid_argument("IncrementalFilter::resmooth_from: step out of range");
  if (static_cast<index>(f.diag.size()) < step || static_cast<index>(f.sup.size()) < step ||
      static_cast<index>(f.rhs.size()) < step)
    throw std::invalid_argument(
        "IncrementalFilter::resmooth_from: factor holds fewer than `step` prefix blocks");

  // Splice the finalized rows at/after the first changed index; blocks
  // before `step` are already in place from the previous call.
  f.diag.resize(static_cast<std::size_t>(fin) + 1);
  f.sup.resize(static_cast<std::size_t>(fin) + 1);
  f.rhs.resize(static_cast<std::size_t>(fin) + 1);
  for (index i = step; i < fin; ++i) {
    const auto s = static_cast<std::size_t>(i);
    f.diag[s].assign_from(finished_.diag[s].view());
    f.sup[s].assign_from(finished_.sup[s].view());
    f.rhs[s].assign_from(finished_.rhs[s].span());
  }

  // Compress the live state's pending rows into the final diagonal block —
  // the only block that must be rebuilt on every re-smooth (observe()
  // mutates the pending rows, never the prefix).  Staged in the arena so a
  // warm factor is refreshed without heap traffic.
  Matrix& last = f.diag[static_cast<std::size_t>(fin)];
  Vector& last_rhs = f.rhs[static_cast<std::size_t>(fin)];
  f.sup[static_cast<std::size_t>(fin)].resize(0, 0);
  const index rp = pending_.rows();
  last.resize(n_, n_);
  if (rp > 0) {
    la::Workspace::Scope scope(la::tls_workspace());
    la::MatrixView m = scope.mat(rp, n_);
    m.assign(pending_.view());
    std::span<double> rhs = scope.vec(rp);
    std::copy(pending_rhs_.span().begin(), pending_rhs_.span().end(), rhs.begin());
    qr.factor_apply(m, la::MatrixView(rhs.data(), rp, 1, rp));
    la::qr_extract_r_square(m, last.view());
    if (!full_rank(last))
      throw std::runtime_error(
          "IncrementalFilter::resmooth_from: the current state is not yet fully determined");
    last_rhs.resize(n_);
    const index avail = std::min(rp, n_);
    for (index q = 0; q < avail; ++q) last_rhs[q] = rhs[static_cast<std::size_t>(q)];
  } else {
    throw std::runtime_error(
        "IncrementalFilter::resmooth_from: the current state is not yet fully determined");
  }
}

void IncrementalFilter::snapshot_state(FilterSnapshot& out) const {
  out.step = step_;
  out.n = n_;
  out.epoch = epoch_;
  out.pending.assign_from(pending_.view());
  out.pending_rhs.assign_from(pending_rhs_.span());
  const std::size_t blocks = finished_.diag.size();
  out.finished.diag.resize(blocks);
  out.finished.sup.resize(blocks);
  out.finished.rhs.resize(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    out.finished.diag[i].assign_from(finished_.diag[i].view());
    out.finished.sup[i].assign_from(finished_.sup[i].view());
    out.finished.rhs[i].assign_from(finished_.rhs[i].span());
  }
}

void IncrementalFilter::restore_state(const FilterSnapshot& s) {
  if (s.n <= 0 || s.step < 0)
    throw std::invalid_argument("IncrementalFilter::restore_state: invalid step/dim");
  const std::size_t blocks = s.finished.diag.size();
  if (blocks != static_cast<std::size_t>(s.step) || s.finished.sup.size() != blocks ||
      s.finished.rhs.size() != blocks)
    throw std::invalid_argument(
        "IncrementalFilter::restore_state: finalized prefix must hold exactly one "
        "block per eliminated state");
  if (s.pending.cols() != s.n || s.pending_rhs.size() != s.pending.rows())
    throw std::invalid_argument(
        "IncrementalFilter::restore_state: pending rows inconsistent with the "
        "current dimension");

  // Retire whatever this filter held (capacity recycling, as in reset()).
  for (Matrix& m : finished_.diag) spare_matrices_.push_back(std::move(m));
  for (Matrix& m : finished_.sup) spare_matrices_.push_back(std::move(m));
  for (Vector& v : finished_.rhs) spare_vectors_.push_back(std::move(v));
  finished_.diag.clear();
  finished_.sup.clear();
  finished_.rhs.clear();
  decay_amp_.clear();

  step_ = s.step;
  n_ = s.n;
  epoch_ = s.epoch;
  pending_.assign_from(s.pending.view());
  pending_rhs_.assign_from(s.pending_rhs.span());
  finished_.diag.reserve(blocks);
  finished_.sup.reserve(blocks);
  finished_.rhs.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    Matrix d = take_spare_matrix();
    d.assign_from(s.finished.diag[i].view());
    finished_.diag.push_back(std::move(d));
    Matrix sup = take_spare_matrix();
    sup.assign_from(s.finished.sup[i].view());
    finished_.sup.push_back(std::move(sup));
    Vector r = take_spare_vector();
    r.assign_from(s.finished.rhs[i].span());
    finished_.rhs.push_back(std::move(r));
  }
  // The decay bounds are derived state, not snapshot payload: recompute them
  // so a restored filter truncates exactly like the one that was journaled.
  decay_amp_.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i)
    append_decay_amp(finished_.diag[i], finished_.sup[i]);
}

SmootherResult IncrementalFilter::smooth(bool with_covariances) const {
  auto c = compressed();
  if (!c)
    throw std::runtime_error(
        "IncrementalFilter::smooth: the current state is not yet fully determined");
  BidiagonalFactor f = finished_;
  f.diag.push_back(std::move(c->first));
  f.sup.emplace_back();
  f.rhs.push_back(std::move(c->second));
  SmootherResult res;
  res.means = paige_saunders_solve(f);
  if (with_covariances) res.covariances = selinv_bidiagonal(f);
  return res;
}

}  // namespace pitk::kalman
