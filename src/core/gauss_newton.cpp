#include "core/gauss_newton.hpp"

#include <cmath>
#include <stdexcept>

#include "la/blas.hpp"
#include "parallel/parallel_for.hpp"

namespace pitk::kalman {

namespace {

using la::index;

void check_model(const NonlinearModel& model) {
  if (model.k + 1 != static_cast<index>(model.dims.size()))
    throw std::invalid_argument("gauss_newton: dims must have k+1 entries");
  if (static_cast<index>(model.obs.size()) != model.k + 1)
    throw std::invalid_argument("gauss_newton: obs must have k+1 entries (empty = none)");
  if (!model.f || !model.f_jac || !model.process_noise)
    throw std::invalid_argument("gauss_newton: evolution callbacks are required");
  if (!model.g || !model.g_jac || !model.obs_noise)
    throw std::invalid_argument("gauss_newton: observation callbacks are required");
}

/// Linearize around `traj`, returning the linear correction problem with an
/// optional LM damping observation sqrt(lambda) delta_i = 0 on every state.
Problem linearize(const NonlinearModel& model, const std::vector<Vector>& traj, double lambda,
                  par::ThreadPool& pool, index grain) {
  const index k = model.k;
  std::vector<TimeStep> steps(static_cast<std::size_t>(k + 1));
  par::parallel_for(pool, 0, k + 1, grain, [&](index i) {
    TimeStep& s = steps[static_cast<std::size_t>(i)];
    const index n = model.dims[static_cast<std::size_t>(i)];
    s.n = n;
    if (i > 0) {
      const Vector& uprev = traj[static_cast<std::size_t>(i - 1)];
      Evolution e;
      e.F = model.f_jac(i, uprev);
      // c = f(u_{i-1}) - u_i: the evolution residual.
      Vector c = model.f(i, uprev);
      la::axpy(-1.0, traj[static_cast<std::size_t>(i)].span(), c.span());
      e.c = std::move(c);
      e.noise = model.process_noise(i);
      s.evolution = std::move(e);
    }
    const Vector& oi = model.obs[static_cast<std::size_t>(i)];
    const bool has_obs = !oi.empty();
    const bool damped = lambda > 0.0;
    if (has_obs || damped) {
      const Vector& ui = traj[static_cast<std::size_t>(i)];
      Matrix g;
      Vector r;
      index m = 0;
      if (has_obs) {
        g = model.g_jac(i, ui);
        // r = o_i - g(u_i): the measurement residual.
        r = oi;
        Vector gi = model.g(i, ui);
        la::axpy(-1.0, gi.span(), r.span());
        m = g.rows();
      }
      Observation ob;
      if (damped) {
        // Append sqrt(lambda)-weighted zero pseudo-observations of delta by
        // stacking an identity block with variance 1/lambda.
        Matrix gd(m + n, n);
        Vector rd(m + n);
        if (m > 0) {
          gd.block(0, 0, m, n).assign(g.view());
          for (index q = 0; q < m; ++q) rd[q] = r[q];
        }
        for (index q = 0; q < n; ++q) gd(m + q, q) = 1.0;
        Vector vars(m + n);
        if (m > 0) {
          const Matrix lc = model.obs_noise(i).covariance();
          // Keep the true observation weighting by folding it into the block
          // before stacking; damping rows get variance 1/lambda.
          // (Weight observation rows explicitly: W r, W G.)
          CovFactor lf = model.obs_noise(i);
          la::MatrixView gtop = gd.block(0, 0, m, n);
          lf.weight_in_place(gtop);
          lf.weight_in_place(std::span<double>(rd.data(), static_cast<std::size_t>(m)));
          (void)lc;
        }
        for (index q = 0; q < m; ++q) vars[q] = 1.0;
        for (index q = 0; q < n; ++q) vars[m + q] = 1.0 / lambda;
        ob.G = std::move(gd);
        ob.o = std::move(rd);
        ob.noise = CovFactor::diagonal(std::move(vars));
      } else {
        ob.G = std::move(g);
        ob.o = std::move(r);
        ob.noise = model.obs_noise(i);
      }
      s.observation = std::move(ob);
    }
  });
  return Problem::from_steps(std::move(steps));
}

double step_norm(const std::vector<Vector>& delta) {
  double acc = 0.0;
  for (const Vector& d : delta) acc += la::dot(d.span(), d.span());
  return std::sqrt(acc);
}

double traj_norm(const std::vector<Vector>& traj) {
  double acc = 0.0;
  for (const Vector& u : traj) acc += la::dot(u.span(), u.span());
  return std::sqrt(acc);
}

std::vector<Vector> apply_step(const std::vector<Vector>& traj, const std::vector<Vector>& delta) {
  std::vector<Vector> out = traj;
  for (std::size_t i = 0; i < out.size(); ++i) la::axpy(1.0, delta[i].span(), out[i].span());
  return out;
}

}  // namespace

double nonlinear_cost(const NonlinearModel& model, const std::vector<Vector>& traj) {
  double cost = 0.0;
  for (index i = 0; i <= model.k; ++i) {
    if (i > 0) {
      // eps = u_i - f(u_{i-1}); weighted by V_i.
      Vector eps = traj[static_cast<std::size_t>(i)];
      Vector fi = model.f(i, traj[static_cast<std::size_t>(i - 1)]);
      la::axpy(-1.0, fi.span(), eps.span());
      model.process_noise(i).weight_in_place(eps.span());
      cost += la::dot(eps.span(), eps.span());
    }
    const Vector& oi = model.obs[static_cast<std::size_t>(i)];
    if (!oi.empty()) {
      Vector r = oi;
      Vector gi = model.g(i, traj[static_cast<std::size_t>(i)]);
      la::axpy(-1.0, gi.span(), r.span());
      model.obs_noise(i).weight_in_place(r.span());
      cost += la::dot(r.span(), r.span());
    }
  }
  return cost;
}

GaussNewtonResult gauss_newton_smooth(const NonlinearModel& model, std::vector<Vector> init,
                                      par::ThreadPool& pool, const GaussNewtonOptions& opts) {
  check_model(model);
  if (static_cast<index>(init.size()) != model.k + 1)
    throw std::invalid_argument("gauss_newton: init must have k+1 states");

  GaussNewtonResult res;
  res.states = std::move(init);
  double cost = nonlinear_cost(model, res.states);
  res.cost_history.push_back(cost);
  double lambda = opts.levenberg_marquardt ? opts.lm_lambda0 : 0.0;

  OddEvenOptions linear = opts.linear;
  linear.compute_covariance = false;  // the NC fast path: Section 6

  for (index it = 0; it < opts.max_iterations; ++it) {
    res.iterations = it + 1;
    Problem lp = linearize(model, res.states, lambda, pool, linear.grain);
    SmootherResult delta = oddeven_smooth(lp, pool, linear);

    std::vector<Vector> candidate = apply_step(res.states, delta.means);
    const double new_cost = nonlinear_cost(model, candidate);
    const bool tiny_step =
        step_norm(delta.means) <= opts.tolerance * (1.0 + traj_norm(res.states));

    if (opts.levenberg_marquardt) {
      // Accept with a rounding allowance: at the optimum the recomputed cost
      // can exceed the old one by a few ulps, which must not read as ascent.
      if (new_cost <= cost + 1e-10 * (1.0 + cost)) {
        res.states = std::move(candidate);
        cost = std::min(cost, new_cost);
        lambda = std::max(1e-12, lambda * opts.lm_down);
        res.cost_history.push_back(cost);
      } else {
        if (tiny_step) {
          res.converged = true;  // proposal negligible: we are at the optimum
          break;
        }
        lambda *= opts.lm_up;
        if (lambda > 1e12) break;  // stuck: give up rather than loop forever
        continue;                  // re-linearize with stronger damping
      }
    } else {
      res.states = std::move(candidate);
      cost = new_cost;
      res.cost_history.push_back(cost);
    }

    if (tiny_step) {
      res.converged = true;
      break;
    }
  }
  res.final_cost = cost;

  if (opts.final_covariance) {
    Problem lp = linearize(model, res.states, 0.0, pool, linear.grain);
    OddEvenOptions with_cov = opts.linear;
    with_cov.compute_covariance = true;
    SmootherResult final_pass = oddeven_smooth(lp, pool, with_cov);
    res.covariances = std::move(final_pass.covariances);
  }
  return res;
}

}  // namespace pitk::kalman
