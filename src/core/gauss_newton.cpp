#include "core/gauss_newton.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "la/blas.hpp"
#include "la/workspace.hpp"
#include "parallel/parallel_for.hpp"

namespace pitk::kalman {

namespace {

using la::index;

void check_model(const NonlinearModel& model) {
  if (model.k + 1 != static_cast<index>(model.dims.size()))
    throw std::invalid_argument("gauss_newton: dims must have k+1 entries");
  if (static_cast<index>(model.obs.size()) != model.k + 1)
    throw std::invalid_argument("gauss_newton: obs must have k+1 entries (empty = none)");
  if (!model.f || !model.f_jac || !model.process_noise)
    throw std::invalid_argument("gauss_newton: evolution callbacks are required");
  if (!model.g || !model.g_jac || !model.obs_noise)
    throw std::invalid_argument("gauss_newton: observation callbacks are required");
}

/// f(i, u) into `out` via the allocation-free callback when present.
void eval_f(const NonlinearModel& m, index i, const Vector& u, Vector& out) {
  if (m.f_into)
    m.f_into(i, u, out);
  else
    out = m.f(i, u);
}

void eval_g(const NonlinearModel& m, index i, const Vector& u, Vector& out) {
  if (m.g_into)
    m.g_into(i, u, out);
  else
    out = m.g(i, u);
}

void eval_f_jac(const NonlinearModel& m, index i, const Vector& u, Matrix& out) {
  if (m.f_jac_into)
    m.f_jac_into(i, u, out);
  else
    out = m.f_jac(i, u);
}

void eval_g_jac(const NonlinearModel& m, index i, const Vector& u, Matrix& out) {
  if (m.g_jac_into)
    m.g_jac_into(i, u, out);
  else
    out = m.g_jac(i, u);
}

/// Weighted nonlinear cost at `traj` using the noise factors cached in `st`
/// (per-step residual temporaries live in st.cost_scratch: zero allocations
/// warm, given the model's *_into callbacks).
double cost_with_cache(const NonlinearModel& model, const std::vector<Vector>& traj,
                       GaussNewtonState& st) {
  double cost = 0.0;
  Vector& tmp = st.cost_scratch;
  for (index i = 0; i <= model.k; ++i) {
    if (i > 0) {
      // eps = u_i - f(u_{i-1}); weighted by V_i.
      eval_f(model, i, traj[static_cast<std::size_t>(i - 1)], tmp);
      const Vector& ui = traj[static_cast<std::size_t>(i)];
      for (index q = 0; q < tmp.size(); ++q) tmp[q] = ui[q] - tmp[q];
      st.proc_noise[static_cast<std::size_t>(i)].weight_in_place(tmp.span());
      cost += la::dot(tmp.span(), tmp.span());
    }
    const Vector& oi = model.obs[static_cast<std::size_t>(i)];
    if (!oi.empty()) {
      eval_g(model, i, traj[static_cast<std::size_t>(i)], tmp);
      for (index q = 0; q < tmp.size(); ++q) tmp[q] = oi[q] - tmp[q];
      st.obs_noise[static_cast<std::size_t>(i)].weight_in_place(tmp.span());
      cost += la::dot(tmp.span(), tmp.span());
    }
  }
  return cost;
}

/// Relinearize around `traj` into st.linearized, updating every block in
/// place (capacity-reusing).  With an optional LM damping observation
/// sqrt(lambda) delta_i = 0 stacked onto every state.
void linearize_into(const NonlinearModel& model, const std::vector<Vector>& traj, double lambda,
                    par::ThreadPool& pool, index grain, GaussNewtonState& st) {
  const index k = model.k;
  const bool damped = lambda > 0.0;
  std::vector<TimeStep>& steps = st.linearized.steps();
  if (static_cast<index>(steps.size()) != k + 1) steps.resize(static_cast<std::size_t>(k + 1));
  if (damped) {
    // Per-step Jacobian/value staging for the stacked damping block; sized
    // once, warm afterwards.
    if (static_cast<index>(st.jac_scratch.size()) != k + 1) {
      st.jac_scratch.resize(static_cast<std::size_t>(k + 1));
      st.val_scratch.resize(static_cast<std::size_t>(k + 1));
    }
  }
  // Noise blocks need a refresh on a fresh run AND whenever the damping
  // structure flips (e.g. the undamped final-covariance relinearization
  // after LM iterations): the undamped branch below must replace the
  // stacked damping noise with the true per-step factors.
  const bool refresh_noise = st.noise_stale || st.lin_damped != (damped ? 1 : 0);
  par::parallel_for(pool, 0, k + 1, grain, [&](index i) {
    TimeStep& s = steps[static_cast<std::size_t>(i)];
    const index n = model.dims[static_cast<std::size_t>(i)];
    s.n = n;
    if (i > 0) {
      if (!s.evolution) s.evolution.emplace();
      Evolution& e = *s.evolution;
      const Vector& uprev = traj[static_cast<std::size_t>(i - 1)];
      eval_f_jac(model, i, uprev, e.F);
      // c = f(u_{i-1}) - u_i: the evolution residual.
      eval_f(model, i, uprev, e.c);
      la::axpy(-1.0, traj[static_cast<std::size_t>(i)].span(), e.c.span());
      if (refresh_noise) e.noise = st.proc_noise[static_cast<std::size_t>(i)];
    } else if (s.evolution) {
      s.evolution.reset();
    }
    const Vector& oi = model.obs[static_cast<std::size_t>(i)];
    const bool has_obs = !oi.empty();
    if (has_obs || damped) {
      if (!s.observation) s.observation.emplace();
      Observation& ob = *s.observation;
      const Vector& ui = traj[static_cast<std::size_t>(i)];
      if (!damped) {
        eval_g_jac(model, i, ui, ob.G);
        // r = o_i - g(u_i): the measurement residual.
        eval_g(model, i, ui, ob.o);
        for (index q = 0; q < ob.o.size(); ++q) ob.o[q] = oi[q] - ob.o[q];
        if (refresh_noise) ob.noise = st.obs_noise[static_cast<std::size_t>(i)];
      } else {
        // Stack sqrt(lambda)-weighted zero pseudo-observations of delta under
        // the (pre-weighted) measurement rows; damping rows get variance
        // 1/lambda, measurement rows variance 1 since W is already applied.
        Matrix& jac = st.jac_scratch[static_cast<std::size_t>(i)];
        Vector& val = st.val_scratch[static_cast<std::size_t>(i)];
        index m = 0;
        if (has_obs) {
          eval_g_jac(model, i, ui, jac);
          eval_g(model, i, ui, val);
          m = jac.rows();
        }
        ob.G.resize(m + n, n);
        ob.o.resize(m + n);
        if (has_obs) {
          const CovFactor& lf = st.obs_noise[static_cast<std::size_t>(i)];
          ob.G.block(0, 0, m, n).assign(jac.view());
          for (index q = 0; q < m; ++q) ob.o[q] = oi[q] - val[q];
          la::MatrixView gtop = ob.G.block(0, 0, m, n);
          lf.weight_in_place(gtop);
          lf.weight_in_place(std::span<double>(ob.o.data(), static_cast<std::size_t>(m)));
        }
        for (index q = 0; q < n; ++q) ob.G(m + q, q) = 1.0;
        la::Workspace::Scope scope(la::tls_workspace());
        std::span<double> vars = scope.vec(m + n);
        for (index q = 0; q < m; ++q) vars[static_cast<std::size_t>(q)] = 1.0;
        for (index q = 0; q < n; ++q) vars[static_cast<std::size_t>(m + q)] = 1.0 / lambda;
        ob.noise.assign_diagonal(vars);
      }
    } else if (s.observation) {
      s.observation.reset();
    }
  });
  st.noise_stale = false;
  st.lin_damped = damped ? 1 : 0;
}

double step_norm(const std::vector<Vector>& delta) {
  double acc = 0.0;
  for (const Vector& d : delta) acc += la::dot(d.span(), d.span());
  return std::sqrt(acc);
}

double traj_norm(const std::vector<Vector>& traj) {
  double acc = 0.0;
  for (const Vector& u : traj) acc += la::dot(u.span(), u.span());
  return std::sqrt(acc);
}

}  // namespace

double nonlinear_cost(const NonlinearModel& model, const std::vector<Vector>& traj) {
  double cost = 0.0;
  for (index i = 0; i <= model.k; ++i) {
    if (i > 0) {
      // eps = u_i - f(u_{i-1}); weighted by V_i.
      Vector eps = traj[static_cast<std::size_t>(i)];
      Vector fi = model.f(i, traj[static_cast<std::size_t>(i - 1)]);
      la::axpy(-1.0, fi.span(), eps.span());
      model.process_noise(i).weight_in_place(eps.span());
      cost += la::dot(eps.span(), eps.span());
    }
    const Vector& oi = model.obs[static_cast<std::size_t>(i)];
    if (!oi.empty()) {
      Vector r = oi;
      Vector gi = model.g(i, traj[static_cast<std::size_t>(i)]);
      la::axpy(-1.0, gi.span(), r.span());
      model.obs_noise(i).weight_in_place(r.span());
      cost += la::dot(r.span(), r.span());
    }
  }
  return cost;
}

void gauss_newton_init(const NonlinearModel& model, const std::vector<Vector>& init,
                       const GaussNewtonOptions& opts, GaussNewtonState& st) {
  check_model(model);
  if (static_cast<index>(init.size()) != model.k + 1)
    throw std::invalid_argument("gauss_newton: init must have k+1 states");
  const std::size_t n_states = init.size();

  st.states.resize(n_states);
  st.candidate.resize(n_states);
  for (std::size_t i = 0; i < n_states; ++i) st.states[i].assign_from(init[i].span());

  // Noise factors are per-step constants of the model; evaluate once per run
  // so neither relinearization nor cost evaluation calls back per iteration.
  st.proc_noise.resize(n_states);
  st.obs_noise.resize(n_states);
  for (index i = 1; i <= model.k; ++i)
    st.proc_noise[static_cast<std::size_t>(i)] = model.process_noise(i);
  for (index i = 0; i <= model.k; ++i) {
    if (!model.obs[static_cast<std::size_t>(i)].empty())
      st.obs_noise[static_cast<std::size_t>(i)] = model.obs_noise(i);
    else
      st.obs_noise[static_cast<std::size_t>(i)] = CovFactor();
  }
  st.noise_stale = true;

  st.iterations = 0;
  st.converged = false;
  st.lambda = opts.levenberg_marquardt ? opts.lm_lambda0 : 0.0;
  st.cost_history.clear();
  st.cost_history.reserve(static_cast<std::size_t>(opts.max_iterations) + 2);
  st.cost = cost_with_cache(model, st.states, st);
  st.cost_history.push_back(st.cost);
}

void gauss_newton_relinearize(const NonlinearModel& model, const std::vector<Vector>& traj,
                              double lambda, par::ThreadPool& pool, la::index grain,
                              GaussNewtonState& st) {
  linearize_into(model, traj, lambda, pool, grain, st);
}

GaussNewtonStep gauss_newton_step_into(const NonlinearModel& model, GaussNewtonState& st,
                                       const GaussNewtonOptions& opts, par::ThreadPool& pool,
                                       const GaussNewtonLinearSolver& solve) {
  ++st.iterations;
  linearize_into(model, st.states, st.lambda, pool, opts.linear.grain, st);
  solve(st.linearized, st.delta);

  // candidate = states + delta.
  for (std::size_t i = 0; i < st.states.size(); ++i) {
    st.candidate[i].assign_from(st.states[i].span());
    la::axpy(1.0, st.delta.means[i].span(), st.candidate[i].span());
  }
  const double new_cost = cost_with_cache(model, st.candidate, st);
  const bool tiny_step =
      step_norm(st.delta.means) <= opts.tolerance * (1.0 + traj_norm(st.states));

  if (opts.levenberg_marquardt) {
    // Accept with a rounding allowance: at the optimum the recomputed cost
    // can exceed the old one by a few ulps, which must not read as ascent.
    if (new_cost <= st.cost + 1e-10 * (1.0 + st.cost)) {
      std::swap(st.states, st.candidate);
      st.cost = std::min(st.cost, new_cost);
      st.lambda = std::max(1e-12, st.lambda * opts.lm_down);
      st.cost_history.push_back(st.cost);
    } else {
      if (tiny_step) {
        st.converged = true;  // proposal negligible: we are at the optimum
        return GaussNewtonStep::Converged;
      }
      st.lambda *= opts.lm_up;
      if (st.lambda > 1e12) return GaussNewtonStep::Stalled;
      return GaussNewtonStep::Rejected;  // re-linearize with stronger damping
    }
  } else {
    std::swap(st.states, st.candidate);
    st.cost = new_cost;
    st.cost_history.push_back(st.cost);
  }

  if (tiny_step) {
    st.converged = true;
    return GaussNewtonStep::Converged;
  }
  return GaussNewtonStep::Accepted;
}

GaussNewtonResult gauss_newton_smooth(const NonlinearModel& model,
                                      const std::vector<Vector>& init, par::ThreadPool& pool,
                                      const GaussNewtonOptions& opts) {
  GaussNewtonState st;
  gauss_newton_init(model, init, opts, st);

  OddEvenOptions linear = opts.linear;
  linear.compute_covariance = false;  // the NC fast path: Section 6
  const GaussNewtonLinearSolver solver = [&](const Problem& lp, SmootherResult& delta) {
    delta = oddeven_smooth(lp, pool, linear);
  };

  while (st.iterations < opts.max_iterations) {
    const GaussNewtonStep s = gauss_newton_step_into(model, st, opts, pool, solver);
    if (s == GaussNewtonStep::Converged || s == GaussNewtonStep::Stalled) break;
  }

  GaussNewtonResult res;
  res.iterations = st.iterations;
  res.converged = st.converged;
  res.final_cost = st.cost;
  res.cost_history = std::move(st.cost_history);

  if (opts.final_covariance) {
    gauss_newton_relinearize(model, st.states, 0.0, pool, opts.linear.grain, st);
    OddEvenOptions with_cov = opts.linear;
    with_cov.compute_covariance = true;
    SmootherResult final_pass = oddeven_smooth(st.linearized, pool, with_cov);
    res.covariances = std::move(final_pass.covariances);
  }
  res.states = std::move(st.states);
  return res;
}

}  // namespace pitk::kalman
