#include "core/oddeven.hpp"

#include <stdexcept>

#include "core/selinv.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/triangular.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

namespace {

using la::ConstMatrixView;
using la::index;
using la::MatrixView;
using la::Trans;

/// Working state of one block column at the current reduction level.
struct ColState {
  index col = -1;  ///< original state index
  index n = 0;     ///< state dimension
  Matrix C;        ///< local rows (r x n, r may be 0)
  Vector crhs;     ///< r
  bool has_evo = false;
  Matrix E;        ///< evolution rows, previous column's block (l x n_prev)
  Matrix D;        ///< evolution rows, own block (l x n)
  Vector erhs;     ///< l
};

/// Per-even-position products of one reduction step.
struct EvenOut {
  OddEvenRow row;
  // Phase-A leftover rows for the right neighbor's local block.
  Matrix dtil;
  Vector dtil_rhs;
  // Phase-B leftover rows: [Z | Xtil] evolution row for the reduced level
  // (Xtil empty for the last even position; Z then joins the left
  // neighbor's local block instead).
  Matrix z;
  Matrix xtil;
  Vector z_rhs;
};

/// Copy the top min(avail, dst.rows()) rows of src into dst, zero-padding.
void copy_top_padded(ConstMatrixView src, MatrixView dst) {
  dst.set_zero();
  const index take = std::min(src.rows(), dst.rows());
  for (index j = 0; j < dst.cols(); ++j)
    for (index i = 0; i < take; ++i) dst(i, j) = src(i, j);
}

void copy_top_padded(std::span<const double> src, index avail, std::span<double> dst) {
  const index take = std::min<index>(avail, static_cast<index>(dst.size()));
  for (index i = 0; i < take; ++i) dst[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)];
  for (index i = take; i < static_cast<index>(dst.size()); ++i) dst[static_cast<std::size_t>(i)] = 0.0;
}

void copy_top_padded(std::span<const double> src, index avail, Vector& dst) {
  copy_top_padded(src, avail, dst.span());
}

/// Rows [from, src.rows()) of src as a fresh matrix (possibly 0 rows).
Matrix tail_rows(ConstMatrixView src, index from) {
  const index r = std::max<index>(0, src.rows() - from);
  Matrix out(r, src.cols());
  if (r > 0) out.view().assign(src.block(from, 0, r, src.cols()));
  return out;
}


/// Build the top level from the problem: one ColState per state, weighted.
std::vector<ColState> build_top_level(const Problem& p, par::ThreadPool& pool, index grain) {
  const index k = p.last_index();
  std::vector<ColState> level(static_cast<std::size_t>(k + 1));
  par::parallel_for(pool, 0, k + 1, grain, [&](index i) {
    ColState& cs = level[static_cast<std::size_t>(i)];
    cs.col = i;
    cs.n = p.state_dim(i);
    la::Workspace::Scope scope(la::tls_workspace());
    WeightedStepView w = weigh_step_into(p.step(i), scope);
    cs.C.assign_from(w.C);
    cs.crhs.assign_from(w.ow);
    if (i > 0) {
      cs.has_evo = true;
      la::scale(-1.0, w.B);  // the matrix block is -B_i
      cs.E.assign_from(w.B);
      cs.D.assign_from(w.D);
      cs.erhs.assign_from(w.cw);
    }
  });
  return level;
}

/// Phases A and B for the even position `pos` of the current level
/// (Section 3's two batches of 2-block-row QR factorizations).
EvenOut reduce_even(const std::vector<ColState>& level, index pos) {
  const index last = static_cast<index>(level.size()) - 1;
  const ColState& cs = level[static_cast<std::size_t>(pos)];
  const index n = cs.n;
  EvenOut out;
  out.row.col = cs.col;

  static thread_local la::QrScratch scratch;
  la::Workspace::Scope scope(la::tls_workspace());

  // ---- Phase A: QR of [C_pos; E_{pos+1}], Q^T applied to [0; D_{pos+1}]
  // and the stacked right-hand side.  All staging panels are arena borrows.
  MatrixView rtil = scope.mat(n, n);  // \tilde R_pos, zero-padded square
  MatrixView x;                       // fill block X_pos (n x n_right)
  std::span<double> rtil_rhs = scope.vec(n);
  index n_right = 0;
  if (pos < last) {
    const ColState& nx = level[static_cast<std::size_t>(pos + 1)];
    n_right = nx.n;
    const index r = cs.C.rows();
    const index l = nx.E.rows();
    MatrixView m = scope.mat(r + l, n);
    if (r > 0) m.block(0, 0, r, n).assign(cs.C.view());
    m.block(r, 0, l, n).assign(nx.E.view());
    // attached = [ 0 | rhs_top ; D_{pos+1} | rhs_bot ].
    MatrixView att = scope.mat(r + l, n_right + 1);
    att.block(r, 0, l, n_right).assign(nx.D.view());
    for (index q = 0; q < r; ++q) att(q, n_right) = cs.crhs[q];
    for (index q = 0; q < l; ++q) att(r + q, n_right) = nx.erhs[q];

    scratch.factor_apply(m, att);

    la::qr_extract_r_square(m, rtil);
    x = scope.mat(n, n_right);
    copy_top_padded(att.block(0, 0, att.rows(), n_right), x);
    copy_top_padded(att.col_span(n_right), std::min(att.rows(), n), rtil_rhs);
    out.dtil = tail_rows(att.block(0, 0, att.rows(), n_right), n);
    out.dtil_rhs.resize(out.dtil.rows());
    for (index q = 0; q < out.dtil.rows(); ++q) out.dtil_rhs[q] = att(n + q, n_right);
  } else {
    // Last even position: nothing to pair with; compress C alone.
    const index r = cs.C.rows();
    MatrixView m = scope.mat(r, n);
    m.assign(cs.C.view());
    std::span<double> rhs = scope.vec(r);
    copy_top_padded(cs.crhs.span(), r, rhs);
    scratch.factor_apply(m, la::MatrixView(rhs.data(), r, 1, r));
    la::qr_extract_r_square(m, rtil);
    copy_top_padded(rhs, std::min(r, n), rtil_rhs);
    // Rows beyond n are pure residual (zero matrix entries) and are dropped.
  }

  // ---- Phase B: QR of [D_pos; \tilde R_pos], Q^T applied to [E_pos 0; 0 X]
  // and the stacked right-hand side.
  if (cs.has_evo) {
    const index l = cs.D.rows();
    const index n_left = cs.E.cols();
    MatrixView m2 = scope.mat(l + n, n);
    m2.block(0, 0, l, n).assign(cs.D.view());
    m2.block(l, 0, n, n).assign(rtil);
    MatrixView att2 = scope.mat(l + n, n_left + n_right + 1);
    att2.block(0, 0, l, n_left).assign(cs.E.view());
    if (n_right > 0) att2.block(l, n_left, n, n_right).assign(x);
    for (index q = 0; q < l; ++q) att2(q, n_left + n_right) = cs.erhs[q];
    for (index q = 0; q < n; ++q) att2(l + q, n_left + n_right) = rtil_rhs[static_cast<std::size_t>(q)];

    scratch.factor_apply(m2, att2);

    out.row.R.resize(n, n);
    la::qr_extract_r_square(m2, out.row.R.view());
    out.row.left = level[static_cast<std::size_t>(pos - 1)].col;
    out.row.Eblk.resize(n, n_left);
    copy_top_padded(att2.block(0, 0, att2.rows(), n_left), out.row.Eblk.view());
    if (n_right > 0) {
      out.row.right = level[static_cast<std::size_t>(pos + 1)].col;
      out.row.Yblk.resize(n, n_right);
      copy_top_padded(att2.block(0, n_left, att2.rows(), n_right), out.row.Yblk.view());
    }
    out.row.rhs.resize(n);
    copy_top_padded(att2.col_span(n_left + n_right), att2.rows(), out.row.rhs);

    // Leftover evolution rows (exactly l of them).
    out.z = tail_rows(att2.block(0, 0, att2.rows(), n_left), n);
    if (n_right > 0) out.xtil = tail_rows(att2.block(0, n_left, att2.rows(), n_right), n);
    out.z_rhs.resize(l);
    for (index q = 0; q < l; ++q) out.z_rhs[q] = att2(n + q, n_left + n_right);
  } else {
    // Position 0: Phase A already produced the final row.
    out.row.R.assign_from(rtil);
    out.row.rhs.assign_from(rtil_rhs);
    if (n_right > 0) {
      out.row.right = level[static_cast<std::size_t>(pos + 1)].col;
      out.row.Yblk.assign_from(x);
    }
  }
  return out;
}

/// Phase C: build the reduced-level column for odd position `pos` by
/// stacking the Phase-A leftover rows, the local rows, and (for the last
/// odd position when the level ends even) the Phase-B leftover of the last
/// even position, then recompressing by QR when taller than n.  Each EvenOut
/// leftover is consumed by exactly one odd position, so blocks are moved,
/// not copied.
ColState reduce_odd(const std::vector<ColState>& level, std::vector<EvenOut>& evens, index pos) {
  const index last = static_cast<index>(level.size()) - 1;
  const ColState& cs = level[static_cast<std::size_t>(pos)];
  EvenOut& leftev = evens[static_cast<std::size_t>((pos - 1) / 2)];
  const index n = cs.n;

  const Matrix* extra = nullptr;
  const Vector* extra_rhs = nullptr;
  if (pos + 1 == last && last % 2 == 0) {
    // The level ends on an even position whose Z-leftover has no D part; it
    // is additional local information about this (its left) column.
    const EvenOut& rightev = evens[static_cast<std::size_t>((pos + 1) / 2)];
    extra = &rightev.z;
    extra_rhs = &rightev.z_rhs;
  }

  const index r_d = leftev.dtil.rows();
  const index r_c = cs.C.rows();
  const index r_x = extra ? extra->rows() : 0;
  const index rows = r_d + r_c + r_x;
  la::Workspace::Scope scope(la::tls_workspace());
  MatrixView m = scope.mat(rows, n);
  std::span<double> rhs = scope.vec(rows);
  if (r_d > 0) {
    m.block(0, 0, r_d, n).assign(leftev.dtil.view());
    for (index q = 0; q < r_d; ++q) rhs[static_cast<std::size_t>(q)] = leftev.dtil_rhs[q];
  }
  if (r_c > 0) {
    m.block(r_d, 0, r_c, n).assign(cs.C.view());
    for (index q = 0; q < r_c; ++q) rhs[static_cast<std::size_t>(r_d + q)] = cs.crhs[q];
  }
  if (r_x > 0) {
    m.block(r_d + r_c, 0, r_x, n).assign(extra->view());
    for (index q = 0; q < r_x; ++q) rhs[static_cast<std::size_t>(r_d + r_c + q)] = (*extra_rhs)[q];
  }

  ColState out;
  out.col = cs.col;
  out.n = n;
  if (rows > n) {
    // Restore the O(n)-row invariant (the paper's step 3).
    static thread_local la::QrScratch scratch;
    scratch.factor_apply(m, la::MatrixView(rhs.data(), rows, 1, rows));
    out.C.resize(n, n);
    la::qr_extract_r_square(m, out.C.view());
    out.crhs.resize(n);
    copy_top_padded(rhs, std::min(rows, n), out.crhs);
  } else {
    out.C.assign_from(m);
    out.crhs.assign_from(rhs);
  }

  // The reduced level's evolution row for this column (absent for the first
  // odd position) is the Phase-B leftover of the even position to our left.
  if (pos >= 2) {
    out.has_evo = true;
    out.E = std::move(leftev.z);
    out.D = std::move(leftev.xtil);
    out.erhs = std::move(leftev.z_rhs);
  }
  return out;
}

/// The reduction shared by every factorization entry point: consume a top
/// level of ColStates and produce the complete factor.
OddEvenFactor reduce_levels(std::vector<ColState> level, std::vector<index> dims,
                            par::ThreadPool& pool, index grain) {
  OddEvenFactor f;
  f.dims = std::move(dims);

  while (static_cast<index>(level.size()) > 1) {
    const index size = static_cast<index>(level.size());
    const index n_even = (size + 1) / 2;
    const index n_odd = size / 2;

    std::vector<EvenOut> evens(static_cast<std::size_t>(n_even));
    par::parallel_for(pool, 0, n_even, grain,
                      [&](index e) { evens[static_cast<std::size_t>(e)] = reduce_even(level, 2 * e); });

    std::vector<ColState> reduced(static_cast<std::size_t>(n_odd));
    par::parallel_for(pool, 0, n_odd, grain, [&](index j) {
      reduced[static_cast<std::size_t>(j)] = reduce_odd(level, evens, 2 * j + 1);
    });

    OddEvenLevel lev;
    lev.rows.reserve(static_cast<std::size_t>(n_even));
    for (auto& e : evens) lev.rows.push_back(std::move(e.row));
    f.levels.push_back(std::move(lev));
    level = std::move(reduced);
  }

  // Base case: a single remaining column.
  {
    ColState& cs = level.front();
    la::QrScratch scratch;
    scratch.factor_apply(cs.C.view(), cs.crhs.as_matrix());
    OddEvenRow row;
    row.col = cs.col;
    row.R.resize(cs.n, cs.n);
    la::qr_extract_r_square(cs.C.view(), row.R.view());
    row.rhs.resize(cs.n);
    copy_top_padded(cs.crhs.span(), std::min(cs.C.rows(), cs.n), row.rhs);
    OddEvenLevel lev;
    lev.rows.push_back(std::move(row));
    f.levels.push_back(std::move(lev));
  }
  return f;
}

}  // namespace

OddEvenFactor oddeven_factor(const Problem& p, par::ThreadPool& pool, index grain) {
  if (auto err = p.validate(true)) throw std::invalid_argument("oddeven_factor: " + *err);
  const index k = p.last_index();
  std::vector<index> dims(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) dims[static_cast<std::size_t>(i)] = p.state_dim(i);
  return reduce_levels(build_top_level(p, pool, grain), std::move(dims), pool, grain);
}

OddEvenFactor oddeven_factor_from_bidiagonal(const BidiagonalFactor& b, par::ThreadPool& pool,
                                             index grain) {
  const index k = static_cast<index>(b.diag.size()) - 1;
  if (k < 0 || b.sup.size() != b.diag.size() || b.rhs.size() != b.diag.size())
    throw std::invalid_argument("oddeven_factor_from_bidiagonal: malformed factor");
  std::vector<index> dims(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    const Matrix& d = b.diag[static_cast<std::size_t>(i)];
    if (d.rows() <= 0 || d.rows() != d.cols() ||
        b.rhs[static_cast<std::size_t>(i)].size() != d.rows())
      throw std::invalid_argument("oddeven_factor_from_bidiagonal: malformed diagonal block");
    dims[static_cast<std::size_t>(i)] = d.rows();
  }
  for (index i = 0; i < k; ++i) {
    const Matrix& sp = b.sup[static_cast<std::size_t>(i)];
    if (sp.rows() != dims[static_cast<std::size_t>(i)] ||
        sp.cols() != dims[static_cast<std::size_t>(i + 1)])
      throw std::invalid_argument("oddeven_factor_from_bidiagonal: malformed coupling block");
  }

  // Row block i of the bidiagonal factor is [R_ii | R_{i,i+1}] = rhs_i over
  // columns (i, i+1): it enters the top level as the evolution rows of
  // column i+1 (E = R_ii, D = R_{i,i+1}), and the final diagonal block — the
  // session's compressed live state — as the last column's local rows.  The
  // bidiagonal rows are an orthogonal transform of the original weighted
  // problem rows, so the reduction solves the same least-squares system: the
  // odd-even pass re-eliminates only the already-compressed O(k n) rows
  // instead of re-weighing the raw problem.
  std::vector<ColState> level(static_cast<std::size_t>(k + 1));
  par::parallel_for(pool, 0, k + 1, grain, [&](index i) {
    ColState& cs = level[static_cast<std::size_t>(i)];
    cs.col = i;
    cs.n = dims[static_cast<std::size_t>(i)];
    if (i == k) {
      cs.C.assign_from(b.diag[static_cast<std::size_t>(i)].view());
      cs.crhs.assign_from(b.rhs[static_cast<std::size_t>(i)].span());
    } else {
      cs.C.resize(0, cs.n);
      cs.crhs.resize(0);
    }
    if (i > 0) {
      cs.has_evo = true;
      cs.E.assign_from(b.diag[static_cast<std::size_t>(i - 1)].view());
      cs.D.assign_from(b.sup[static_cast<std::size_t>(i - 1)].view());
      cs.erhs.assign_from(b.rhs[static_cast<std::size_t>(i - 1)].span());
    }
  });
  return reduce_levels(std::move(level), std::move(dims), pool, grain);
}

std::vector<Vector> oddeven_solve(const OddEvenFactor& f, par::ThreadPool& pool, index grain) {
  std::vector<Vector> sol;
  oddeven_solve_into(f, pool, grain, sol);
  return sol;
}

void oddeven_solve_into(const OddEvenFactor& f, par::ThreadPool& pool, index grain,
                        std::vector<Vector>& sol) {
  sol.resize(static_cast<std::size_t>(f.num_states()));
  for (index lev = static_cast<index>(f.levels.size()) - 1; lev >= 0; --lev) {
    const auto& rows = f.levels[static_cast<std::size_t>(lev)].rows;
    par::parallel_for(pool, 0, static_cast<index>(rows.size()), grain, [&](index ri) {
      const OddEvenRow& row = rows[static_cast<std::size_t>(ri)];
      // Each state is the diagonal of exactly one row across all levels, so
      // writing in place is race-free; neighbors were solved by deeper levels.
      Vector& x = sol[static_cast<std::size_t>(row.col)];
      x.assign_from(row.rhs.span());
      if (row.left >= 0)
        la::gemv(-1.0, row.Eblk.view(), Trans::No, sol[static_cast<std::size_t>(row.left)].span(),
                 1.0, x.span());
      if (row.right >= 0)
        la::gemv(-1.0, row.Yblk.view(), Trans::No,
                 sol[static_cast<std::size_t>(row.right)].span(), 1.0, x.span());
      la::trsv(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, row.R.view(), x.span());
    });
  }
}

namespace {

/// S_{a,b} for a < b, both already processed, copied into a borrowed `dst`
/// (n_a x n_b): stored either as a's right cross block or as the transpose
/// of b's left cross block (one of the two rows necessarily lists the other
/// column as its neighbor).
void copy_cross_into(const std::vector<OddEvenCovScratch::Slot>& cov, index a, index b,
                     MatrixView dst) {
  const OddEvenCovScratch::Slot& ca = cov[static_cast<std::size_t>(a)];
  if (ca.row != nullptr && ca.row->right == b) {
    dst.assign(ca.s_right.view());
    return;
  }
  const OddEvenCovScratch::Slot& cb = cov[static_cast<std::size_t>(b)];
  assert(cb.row != nullptr && cb.row->left == a);
  for (index j = 0; j < dst.cols(); ++j)
    for (index i = 0; i < dst.rows(); ++i) dst(i, j) = cb.s_left(j, i);
}

/// Algorithm 2 proper: replay the levels bottom-up, leaving every state's
/// diagonal (and cross) S-blocks in `scratch`.  All transients are
/// per-thread workspace borrows; scratch blocks reuse their capacity.
void oddeven_cov_pass(const OddEvenFactor& f, par::ThreadPool& pool, index grain,
                      OddEvenCovScratch& scratch) {
  auto& cov = scratch.slots;
  cov.resize(static_cast<std::size_t>(f.num_states()));
  // Row pointers from a previous pass dangle into a dead factor; clear them
  // so copy_cross_into never consults stale adjacency.
  for (auto& slot : cov) slot.row = nullptr;
  for (index lev = static_cast<index>(f.levels.size()) - 1; lev >= 0; --lev) {
    const auto& rows = f.levels[static_cast<std::size_t>(lev)].rows;
    par::parallel_for(pool, 0, static_cast<index>(rows.size()), grain, [&](index ri) {
      const OddEvenRow& row = rows[static_cast<std::size_t>(ri)];
      OddEvenCovScratch::Slot& slot = cov[static_cast<std::size_t>(row.col)];
      slot.row = &row;
      const index n = row.R.rows();
      la::Workspace::Scope scope(la::tls_workspace());
      slot.diag.resize(n, n);
      tri_inv_gram_into(row.R.view(), slot.diag.view(), scope);  // R^{-1} R^{-T} source term
      const bool hl = row.left >= 0;
      const bool hr = row.right >= 0;
      MatrixView wl;
      MatrixView wr;
      if (hl) {
        wl = scope.mat(row.Eblk.rows(), row.Eblk.cols());
        wl.assign(row.Eblk.view());
        la::trsm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, row.R.view(), wl);
      }
      if (hr) {
        wr = scope.mat(row.Yblk.rows(), row.Yblk.cols());
        wr.assign(row.Yblk.view());
        la::trsm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, row.R.view(), wr);
      }
      // The neighbors' cross block S_{left,right}, staged once for both uses.
      MatrixView slr;
      if (hl && hr) {
        slr = scope.mat(row.Eblk.cols(), row.Yblk.cols());
        copy_cross_into(cov, row.left, row.right, slr);
      }
      // S_{j,I} = -W S_{I,I} with I = {left, right} (either may be absent).
      if (hl) {
        slot.s_left.resize(wl.rows(), wl.cols());
        la::gemm(-1.0, wl, Trans::No, cov[static_cast<std::size_t>(row.left)].diag.view(),
                 Trans::No, 0.0, slot.s_left.view());
        // minus W_r * S_{right,left} = minus W_r * S_{left,right}^T.
        if (hr) la::gemm(-1.0, wr, Trans::No, slr, Trans::Yes, 1.0, slot.s_left.view());
      }
      if (hr) {
        slot.s_right.resize(wr.rows(), wr.cols());
        la::gemm(-1.0, wr, Trans::No, cov[static_cast<std::size_t>(row.right)].diag.view(),
                 Trans::No, 0.0, slot.s_right.view());
        if (hl) la::gemm(-1.0, wl, Trans::No, slr, Trans::No, 1.0, slot.s_right.view());
      }
      // S_jj = R^{-1}R^{-T} - S_{j,I} W^T.
      if (hl)
        la::gemm(-1.0, slot.s_left.view(), Trans::No, wl, Trans::Yes, 1.0, slot.diag.view());
      if (hr)
        la::gemm(-1.0, slot.s_right.view(), Trans::No, wr, Trans::Yes, 1.0, slot.diag.view());
      la::symmetrize(slot.diag.view());
    });
  }
}

}  // namespace

std::vector<Matrix> oddeven_covariances(const OddEvenFactor& f, par::ThreadPool& pool,
                                        index grain) {
  OddEvenCovScratch scratch;
  oddeven_cov_pass(f, pool, grain, scratch);
  std::vector<Matrix> out(static_cast<std::size_t>(f.num_states()));
  for (index i = 0; i < f.num_states(); ++i)
    out[static_cast<std::size_t>(i)] = std::move(scratch.slots[static_cast<std::size_t>(i)].diag);
  return out;
}

void oddeven_covariances_into(const OddEvenFactor& f, par::ThreadPool& pool, index grain,
                              OddEvenCovScratch& scratch, std::vector<Matrix>& out) {
  oddeven_cov_pass(f, pool, grain, scratch);
  out.resize(static_cast<std::size_t>(f.num_states()));
  // Copy (not move) so the scratch keeps its warm capacity for the next job.
  for (index i = 0; i < f.num_states(); ++i)
    out[static_cast<std::size_t>(i)].assign_from(
        scratch.slots[static_cast<std::size_t>(i)].diag.view());
}

SmootherResult oddeven_smooth(const Problem& p, par::ThreadPool& pool,
                              const OddEvenOptions& opts) {
  OddEvenFactor f = oddeven_factor(p, pool, opts.grain);
  SmootherResult res;
  res.means = oddeven_solve(f, pool, opts.grain);
  if (opts.compute_covariance) res.covariances = oddeven_covariances(f, pool, opts.grain);
  return res;
}

}  // namespace pitk::kalman
