#include "core/selinv.hpp"

#include "la/blas.hpp"
#include "la/triangular.hpp"

namespace pitk::kalman {

Matrix tri_inv_gram(la::ConstMatrixView r) {
  Matrix rinv = la::to_matrix(r);
  la::tri_inverse_upper(rinv.view());
  Matrix s(r.rows(), r.rows());
  la::gemm(1.0, rinv.view(), la::Trans::No, rinv.view(), la::Trans::Yes, 0.0, s.view());
  la::symmetrize(s.view());
  return s;
}

std::vector<Matrix> selinv_bidiagonal(const BidiagonalFactor& f) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  std::vector<Matrix> s(static_cast<std::size_t>(k + 1));
  s[static_cast<std::size_t>(k)] = tri_inv_gram(f.diag[static_cast<std::size_t>(k)].view());
  for (index j = k - 1; j >= 0; --j) {
    const Matrix& rjj = f.diag[static_cast<std::size_t>(j)];
    const Matrix& rjn = f.sup[static_cast<std::size_t>(j)];
    // W = R_jj^{-1} R_{j,j+1}.
    Matrix w = rjn;
    la::trsm_left(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, rjj.view(), w.view());
    // S_{j,j+1} = -W S_{j+1,j+1}.
    Matrix soff(w.rows(), w.cols());
    la::gemm(-1.0, w.view(), la::Trans::No, s[static_cast<std::size_t>(j + 1)].view(),
             la::Trans::No, 0.0, soff.view());
    // S_jj = R_jj^{-1} R_jj^{-T} - S_{j,j+1} W^T.
    Matrix sjj = tri_inv_gram(rjj.view());
    la::gemm(-1.0, soff.view(), la::Trans::No, w.view(), la::Trans::Yes, 1.0, sjj.view());
    la::symmetrize(sjj.view());
    s[static_cast<std::size_t>(j)] = std::move(sjj);
  }
  return s;
}

}  // namespace pitk::kalman
