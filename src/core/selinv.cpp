#include "core/selinv.hpp"

#include "la/blas.hpp"
#include "la/triangular.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

using la::index;
using la::MatrixView;
using la::Trans;

void tri_inv_gram_into(la::ConstMatrixView r, MatrixView out, la::Workspace::Scope& scope) {
  const index n = r.rows();
  MatrixView rinv = scope.mat(n, n);
  rinv.assign(r);
  la::tri_inverse_upper(rinv);
  // out = R^{-1} R^{-T}: stage the transpose, then multiply by the upper
  // triangle in place through the blocked trmm (gemm panel updates), which
  // costs half the flops of the previous full gemm(rinv, rinv^T).
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) out(i, j) = rinv(j, i);
  la::trmm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, 1.0, rinv, out);
  la::symmetrize(out);
}

Matrix tri_inv_gram(la::ConstMatrixView r) {
  Matrix s(r.rows(), r.rows());
  la::Workspace::Scope scope(la::tls_workspace());
  tri_inv_gram_into(r, s.view(), scope);
  return s;
}

std::vector<Matrix> selinv_bidiagonal(const BidiagonalFactor& f) {
  std::vector<Matrix> s;
  selinv_bidiagonal_into(f, s);
  return s;
}

void selinv_bidiagonal_into(const BidiagonalFactor& f, std::vector<Matrix>& s) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  s.resize(static_cast<std::size_t>(k + 1));
  {
    const Matrix& rkk = f.diag[static_cast<std::size_t>(k)];
    Matrix& sk = s[static_cast<std::size_t>(k)];
    sk.resize(rkk.rows(), rkk.rows());
    la::Workspace::Scope scope(la::tls_workspace());
    tri_inv_gram_into(rkk.view(), sk.view(), scope);
  }
  for (index j = k - 1; j >= 0; --j) {
    const Matrix& rjj = f.diag[static_cast<std::size_t>(j)];
    const Matrix& rjn = f.sup[static_cast<std::size_t>(j)];
    la::Workspace::Scope scope(la::tls_workspace());
    // W = R_jj^{-1} R_{j,j+1}.
    MatrixView w = scope.mat(rjn.rows(), rjn.cols());
    w.assign(rjn.view());
    la::trsm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, rjj.view(), w);
    // S_{j,j+1} = -W S_{j+1,j+1}.
    MatrixView soff = scope.mat(w.rows(), w.cols());
    la::gemm(-1.0, w, Trans::No, s[static_cast<std::size_t>(j + 1)].view(), Trans::No, 0.0,
             soff);
    // S_jj = R_jj^{-1} R_jj^{-T} - S_{j,j+1} W^T.
    Matrix& sjj = s[static_cast<std::size_t>(j)];
    sjj.resize(rjj.rows(), rjj.rows());
    tri_inv_gram_into(rjj.view(), sjj.view(), scope);
    la::gemm(-1.0, soff, Trans::No, w, Trans::Yes, 1.0, sjj.view());
    la::symmetrize(sjj.view());
  }
}

}  // namespace pitk::kalman
