#include "core/selinv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/blas.hpp"
#include "la/triangular.hpp"
#include "la/workspace.hpp"

namespace pitk::kalman {

using la::index;
using la::MatrixView;
using la::Trans;

namespace {

/// Kalman state dimensions live in n <= 8; for those blocks the recurrence
/// runs on fused fixed-ld stack tiles instead of the blocked kernels, whose
/// per-call dispatch dominates at 4x4 (the same trade the small-dim gemm
/// dispatch in la/blas.cpp makes).
constexpr index kSmallDim = 8;

/// rinv = R^{-1} for upper-triangular R (upper triangle written, ld 8).
inline void small_tri_inv(const Matrix& r, index n, double* rinv) {
  for (index j = 0; j < n; ++j) {
    rinv[j + j * kSmallDim] = 1.0 / r(j, j);
    for (index i = j - 1; i >= 0; --i) {
      double t = 0.0;
      for (index p = i + 1; p <= j; ++p) t += r(i, p) * rinv[p + j * kSmallDim];
      rinv[i + j * kSmallDim] = -t / r(i, i);
    }
  }
}

/// out = R^{-1} R^{-T} from the triangular inverse (symmetric, full write).
inline void small_gram(const double* rinv, index n, Matrix& out) {
  for (index j = 0; j < n; ++j)
    for (index i = 0; i <= j; ++i) {
      double t = 0.0;
      for (index p = j; p < n; ++p) t += rinv[i + p * kSmallDim] * rinv[j + p * kSmallDim];
      out(i, j) = t;
      out(j, i) = t;
    }
}

/// One small-dimension SelInv step: S_jj = R_jj^{-1} R_jj^{-T} + W S_next W^T
/// with W = R_jj^{-1} R_{j,j+1} (the soff = -W S_next off-diagonal block is
/// folded in; S_next is symmetric, so S_jj is computed as a triangle and
/// mirrored).  All transients live in fixed stack tiles.
inline void small_selinv_step(const Matrix& rjj, const Matrix& rjn, const Matrix& snext,
                              Matrix& sjj) {
  const index n = rjj.rows();
  const index nn = rjn.cols();
  double rinv[kSmallDim * kSmallDim];
  double w[kSmallDim * kSmallDim];
  double t[kSmallDim * kSmallDim];
  small_tri_inv(rjj, n, rinv);
  // W = R_jj^{-1} R_{j,j+1}.
  for (index c = 0; c < nn; ++c)
    for (index i = 0; i < n; ++i) {
      double acc = 0.0;
      for (index p = i; p < n; ++p) acc += rinv[i + p * kSmallDim] * rjn(p, c);
      w[i + c * kSmallDim] = acc;
    }
  // T = W S_next.
  for (index c = 0; c < nn; ++c)
    for (index i = 0; i < n; ++i) {
      double acc = 0.0;
      for (index p = 0; p < nn; ++p) acc += w[i + p * kSmallDim] * snext(p, c);
      t[i + c * kSmallDim] = acc;
    }
  if (sjj.rows() != n || sjj.cols() != n) sjj.resize(n, n);
  small_gram(rinv, n, sjj);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i <= j; ++i) {
      double acc = 0.0;
      for (index c = 0; c < nn; ++c) acc += t[i + c * kSmallDim] * w[j + c * kSmallDim];
      sjj(i, j) += acc;
      sjj(j, i) = sjj(i, j);
    }
}

}  // namespace

void tri_inv_gram_into(la::ConstMatrixView r, MatrixView out, la::Workspace::Scope& scope) {
  const index n = r.rows();
  MatrixView rinv = scope.mat(n, n);
  rinv.assign(r);
  la::tri_inverse_upper(rinv);
  // out = R^{-1} R^{-T}: stage the transpose, then multiply by the upper
  // triangle in place through the blocked trmm (gemm panel updates), which
  // costs half the flops of the previous full gemm(rinv, rinv^T).
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) out(i, j) = rinv(j, i);
  la::trmm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, 1.0, rinv, out);
  la::symmetrize(out);
}

Matrix tri_inv_gram(la::ConstMatrixView r) {
  Matrix s(r.rows(), r.rows());
  la::Workspace::Scope scope(la::tls_workspace());
  tri_inv_gram_into(r, s.view(), scope);
  return s;
}

std::vector<Matrix> selinv_bidiagonal(const BidiagonalFactor& f) {
  std::vector<Matrix> s;
  selinv_bidiagonal_into(f, s);
  return s;
}

void selinv_bidiagonal_into(const BidiagonalFactor& f, std::vector<Matrix>& s) {
  selinv_bidiagonal_tail_into(f, 0, s);
}

void selinv_bidiagonal_tail_into(const BidiagonalFactor& f, la::index from,
                                 std::vector<Matrix>& s) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  if (from < 0 || from > k)
    throw std::invalid_argument("selinv_bidiagonal_tail_into: from out of range");
  s.resize(static_cast<std::size_t>(k + 1));
  {
    const Matrix& rkk = f.diag[static_cast<std::size_t>(k)];
    Matrix& sk = s[static_cast<std::size_t>(k)];
    if (rkk.rows() <= kSmallDim) {
      double rinv[kSmallDim * kSmallDim];
      small_tri_inv(rkk, rkk.rows(), rinv);
      if (sk.rows() != rkk.rows() || sk.cols() != rkk.rows()) sk.resize(rkk.rows(), rkk.rows());
      small_gram(rinv, rkk.rows(), sk);
    } else {
      sk.resize(rkk.rows(), rkk.rows());
      la::Workspace::Scope scope(la::tls_workspace());
      tri_inv_gram_into(rkk.view(), sk.view(), scope);
    }
  }
  for (index j = k - 1; j >= from; --j) {
    const Matrix& rjj = f.diag[static_cast<std::size_t>(j)];
    const Matrix& rjn = f.sup[static_cast<std::size_t>(j)];
    if (rjj.rows() <= kSmallDim && rjn.cols() <= kSmallDim) {
      small_selinv_step(rjj, rjn, s[static_cast<std::size_t>(j + 1)], s[static_cast<std::size_t>(j)]);
      continue;
    }
    la::Workspace::Scope scope(la::tls_workspace());
    // W = R_jj^{-1} R_{j,j+1}.
    MatrixView w = scope.mat(rjn.rows(), rjn.cols());
    w.assign(rjn.view());
    la::trsm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, rjj.view(), w);
    // S_{j,j+1} = -W S_{j+1,j+1}.
    MatrixView soff = scope.mat(w.rows(), w.cols());
    la::gemm(-1.0, w, Trans::No, s[static_cast<std::size_t>(j + 1)].view(), Trans::No, 0.0,
             soff);
    // S_jj = R_jj^{-1} R_jj^{-T} - S_{j,j+1} W^T.
    Matrix& sjj = s[static_cast<std::size_t>(j)];
    sjj.resize(rjj.rows(), rjj.rows());
    tri_inv_gram_into(rjj.view(), sjj.view(), scope);
    la::gemm(-1.0, soff, Trans::No, w, Trans::Yes, 1.0, sjj.view());
    la::symmetrize(sjj.view());
  }
}

TruncatedPass selinv_bidiagonal_delta_into(const BidiagonalFactor& f, la::index from,
                                           std::span<const double> decay_amp, double tol,
                                           std::vector<Matrix>& s) {
  const index k = static_cast<index>(f.diag.size()) - 1;
  if (from < 1 || from > k)
    throw std::invalid_argument("selinv_bidiagonal_delta_into: from must be in [1, k]");
  if (static_cast<index>(s.size()) <= from || static_cast<index>(decay_amp.size()) < from)
    throw std::invalid_argument(
        "selinv_bidiagonal_delta_into: previous covariances / decay bounds too short");

  la::Workspace::Scope scope(la::tls_workspace());
  index maxn = 0;
  for (index i = 0; i <= from; ++i) maxn = std::max(maxn, f.diag[static_cast<std::size_t>(i)].rows());
  MatrixView cur = scope.mat(maxn, maxn);   // Delta at the state just updated
  MatrixView wbuf = scope.mat(maxn, maxn);  // W_j staging
  MatrixView tbuf = scope.mat(maxn, maxn);  // W_j Delta staging

  // Seed: exact recompute of the tail, Delta = new S[from] - old S[from].
  const index nf = f.diag[static_cast<std::size_t>(from)].rows();
  const Matrix& sf = s[static_cast<std::size_t>(from)];
  if (sf.rows() != nf || sf.cols() != nf)
    throw std::invalid_argument("selinv_bidiagonal_delta_into: stale covariance shape");
  cur.block(0, 0, nf, nf).assign(sf.view());
  selinv_bidiagonal_tail_into(f, from, s);
  double dn = 0.0;
  for (index j = 0; j < nf; ++j)
    for (index q = 0; q < nf; ++q) {
      const double v = s[static_cast<std::size_t>(from)](q, j) - cur(q, j);
      cur(q, j) = v;
      dn += v * v;
    }
  dn = std::sqrt(dn);

  index j = from - 1;
  for (; j >= 0; --j) {
    if (dn == 0.0) break;
    const double a = decay_amp[static_cast<std::size_t>(j)];
    if (a * a * dn <= tol) break;
    const Matrix& rjj = f.diag[static_cast<std::size_t>(j)];
    const Matrix& rjn = f.sup[static_cast<std::size_t>(j)];
    const index n = rjj.rows();
    const index m = rjn.cols();
    // Delta_j = W Delta_{j+1} W^T with W = R_jj^{-1} R_{j,j+1}; writing the
    // result back into `cur` is safe because the first gemm already consumed
    // the old Delta.
    MatrixView w = wbuf.block(0, 0, n, m);
    w.assign(rjn.view());
    la::trsm_left(la::Uplo::Upper, Trans::No, la::Diag::NonUnit, rjj.view(), w);
    MatrixView t = tbuf.block(0, 0, n, m);
    la::gemm(1.0, w, Trans::No, cur.block(0, 0, m, m), Trans::No, 0.0, t);
    la::gemm(1.0, t, Trans::No, w, Trans::Yes, 0.0, cur.block(0, 0, n, n));
    Matrix& sj = s[static_cast<std::size_t>(j)];
    if (sj.rows() != n || sj.cols() != n)
      throw std::invalid_argument("selinv_bidiagonal_delta_into: stale covariance shape");
    double s2 = 0.0;
    for (index c = 0; c < n; ++c)
      for (index q = 0; q < n; ++q) {
        const double d = cur(q, c);
        sj(q, c) += d;
        s2 += d * d;
      }
    la::symmetrize(sj.view());
    dn = std::sqrt(s2);
  }
  return TruncatedPass{.updated_from = j + 1, .truncated = j >= 0};
}

}  // namespace pitk::kalman
