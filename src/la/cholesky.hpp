#pragma once

/// \file cholesky.hpp
/// Cholesky factorization and SPD solves/inversions.
///
/// Used to turn covariance matrices K_i, L_i into the weighting factors
/// V_i, W_i of Section 2.1 (V_i^T V_i = K_i^{-1}) and to invert innovation
/// covariances inside the RTS and associative smoothers.

#include <optional>
#include <span>

#include "la/matrix.hpp"

namespace pitk::la {

/// In-place lower Cholesky factorization A = L L^T of the SPD matrix in the
/// lower triangle of `a`; the strict upper triangle is zeroed on success.
/// Returns false (leaving `a` unspecified) if a non-positive pivot occurs.
[[nodiscard]] bool cholesky_lower(MatrixView a);

/// Solve (L L^T) x = b in place given the lower Cholesky factor `l`.
void chol_solve(ConstMatrixView l, std::span<double> x);

/// Solve (L L^T) X = B in place for a block of right-hand sides.
void chol_solve(ConstMatrixView l, MatrixView b);

/// Inverse of the SPD matrix with lower Cholesky factor `l` (fresh matrix,
/// exactly symmetric).
[[nodiscard]] Matrix chol_inverse(ConstMatrixView l);

/// Inverse of an SPD matrix; nullopt if not (numerically) positive definite.
[[nodiscard]] std::optional<Matrix> spd_inverse(ConstMatrixView a);

/// X = A^{-1} B for SPD A; nullopt if A is not positive definite.
[[nodiscard]] std::optional<Matrix> spd_solve(ConstMatrixView a, ConstMatrixView b);

}  // namespace pitk::la
