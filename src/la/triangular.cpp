#include "la/triangular.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pitk::la {

void tri_inverse_upper(MatrixView r) {
  const index n = r.rows();
  assert(r.cols() == n);
  // Unblocked LAPACK dtrti2 scheme: when column j is processed, the leading
  // (j x j) block already holds its own inverse, so
  //   X(0:j, j) = -X(0:j, 0:j) * R(0:j, j) / R(j, j).
  for (index j = 0; j < n; ++j) {
    const double ajj = 1.0 / r(j, j);
    r(j, j) = ajj;
    // In-place upper TRMV: ascending i reads r(l, j) only for l >= i, which
    // still hold original column values.
    for (index i = 0; i < j; ++i) {
      double acc = 0.0;
      for (index l = i; l < j; ++l) acc += r(i, l) * r(l, j);
      r(i, j) = acc;
    }
    for (index i = 0; i < j; ++i) r(i, j) *= -ajj;
  }
}

void tri_inverse_lower(MatrixView l) {
  const index n = l.rows();
  assert(l.cols() == n);
  // Mirror of the upper case: process columns right-to-left so the trailing
  // block already holds its inverse, then
  //   X(j+1:, j) = -X(j+1:, j+1:) * L(j+1:, j) / L(j, j).
  for (index j = n - 1; j >= 0; --j) {
    const double ajj = 1.0 / l(j, j);
    l(j, j) = ajj;
    // In-place lower TRMV: descending i reads l(k, j) only for k <= i, which
    // still hold original column values.
    for (index i = n - 1; i > j; --i) {
      double acc = 0.0;
      for (index k = j + 1; k <= i; ++k) acc += l(i, k) * l(k, j);
      l(i, j) = acc;
    }
    for (index i = j + 1; i < n; ++i) l(i, j) *= -ajj;
  }
}

double tri_diag_cond(ConstMatrixView t) {
  const index n = std::min(t.rows(), t.cols());
  if (n == 0) return 1.0;
  double mx = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  for (index i = 0; i < n; ++i) {
    const double v = std::abs(t(i, i));
    mx = std::max(mx, v);
    mn = std::min(mn, v);
  }
  return mn == 0.0 ? std::numeric_limits<double>::infinity() : mx / mn;
}

}  // namespace pitk::la
