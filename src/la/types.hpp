#pragma once

/// \file types.hpp
/// Fundamental scalar/index types and aligned storage used across pitk.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "fault/fault.hpp"

namespace pitk::la {

/// Signed index type used for all matrix dimensions and loops.
/// Signed (as recommended by the C++ Core Guidelines for arithmetic-heavy
/// index code) and 64-bit so that k = 5e6-step problems index safely.
using index = std::ptrdiff_t;

/// Cache line size used for alignment decisions (avoids false sharing between
/// blocks written by different workers; mirrors the paper's use of
/// posix_memalign-to-64-bytes).
inline constexpr std::size_t cache_line_bytes = 64;

namespace detail {
/// Process-wide count of AlignedAllocator::allocate calls.  Every Matrix,
/// Vector and Workspace chunk draws its storage through the allocator, so a
/// zero delta over a code region proves the region performed no matrix-data
/// heap allocation.  Relaxed increments cost nothing measurable because
/// allocations are rare by design on the hot paths.
inline std::atomic<std::uint64_t> aligned_alloc_counter{0};
/// The calling thread's share of the same count.  Lets an engine worker
/// attribute allocation activity to its own job (JobMetrics::allocations)
/// without seeing concurrent workers' traffic.
inline thread_local std::uint64_t aligned_alloc_counter_thread = 0;
}  // namespace detail

/// Snapshot of the allocation counter; the allocation-free hot-path tests
/// take the difference across a warm run and assert it is zero.
[[nodiscard]] inline std::uint64_t aligned_alloc_count() noexcept {
  return detail::aligned_alloc_counter.load(std::memory_order_relaxed);
}

/// Snapshot of the calling thread's own allocation count (exact for work
/// executed on this thread; allocations made by tasks fanned out to other
/// workers are charged to those workers).
[[nodiscard]] inline std::uint64_t aligned_alloc_count_this_thread() noexcept {
  return detail::aligned_alloc_counter_thread;
}

/// Minimal aligned allocator so that std::vector-backed matrix storage starts
/// on a cache-line boundary.
template <class T, std::size_t Alignment = cache_line_bytes>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: the default allocator_traits rebind cannot rewrite a
  /// class template with a non-type (alignment) parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    // Fault site "la.alloc": deterministic allocation failure for recovery
    // tests (one relaxed load when nothing is armed).
    if (fault::any_armed() && fault::should_fail("la.alloc")) throw std::bad_alloc();
    detail::aligned_alloc_counter.fetch_add(1, std::memory_order_relaxed);
    ++detail::aligned_alloc_counter_thread;
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = ::operator new(bytes, std::align_val_t(Alignment));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Cache-line aligned contiguous buffer of doubles.
using aligned_buffer = std::vector<double, AlignedAllocator<double>>;

}  // namespace pitk::la
