#pragma once

/// \file blas_ref.hpp
/// Naive reference kernels: straight textbook loops, no blocking, no packing.
///
/// These exist for two consumers only: the randomized equivalence tests
/// (blocked kernels must reproduce these bit-for-comparable results up to
/// reassociation rounding) and the kernel microbenchmark, where they are the
/// "naive baseline" the packed kernels are measured against.  Production code
/// must call la::gemm and friends, never these.

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace pitk::la::ref {

/// C = alpha * op(A) * op(B) + beta * C, textbook i-j-l triple loop through
/// operator() indexing (no layout awareness whatsoever).
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb, double beta,
          MatrixView c);

/// Dense materialization of a triangular operand: the uplo triangle of T with
/// the Diag convention applied and the opposite triangle zeroed.  Lets tests
/// verify trsm/trmm against ref::gemm instead of against another triangular
/// implementation.
[[nodiscard]] Matrix dense_triangle(ConstMatrixView t, Uplo uplo, Diag diag);

}  // namespace pitk::la::ref
