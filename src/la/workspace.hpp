#pragma once

/// \file workspace.hpp
/// Per-thread bump-allocated scratch arena for the solver hot paths.
///
/// Every per-time-step loop in the smoothers needs the same handful of
/// temporaries (weighted blocks, stacked QR panels, packed GEMM buffers) over
/// and over; constructing fresh Matrix objects for them makes the malloc lock
/// the hottest line of a multi-tenant engine under load.  A Workspace hands
/// out matrix/vector views from one cache-line-aligned buffer with a bump
/// pointer; a Scope guard rewinds the pointer when a loop iteration ends, so
/// after a warm-up pass the steady state performs zero heap allocations.
///
/// Growth never invalidates live views: when the current chunk is exhausted a
/// new chunk is appended and bumping continues there.  reset() (legal only
/// with no live scope) consolidates all chunks into one so later passes never
/// chain.  Workspaces are not thread-safe by design — use tls_workspace() to
/// get the calling thread's own arena; engine workers therefore reuse one
/// arena across all jobs scheduled onto them.

#include <cstddef>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace pitk::la {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII borrow window: allocations made through a Scope are released (the
  /// bump pointer rewound) when the Scope dies.  Scopes nest like stack
  /// frames; destroying out of order is undefined (asserted in debug).
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept
        : ws_(&ws), chunk_(ws.cur_), used_(ws.cur_used()), depth_(++ws.live_scopes_) {}

    ~Scope() {
      assert(ws_->live_scopes_ == depth_ && "Workspace scopes must unwind in LIFO order");
      --ws_->live_scopes_;
      ws_->rewind(chunk_, used_);
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Zero-filled rows x cols view with contiguous columns (ld == rows).
    [[nodiscard]] MatrixView mat(index rows, index cols) {
      assert(rows >= 0 && cols >= 0);
      double* p = ws_->bump(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
      std::fill(p, p + rows * cols, 0.0);
      return {p, rows, cols, rows};
    }

    /// Zero-filled vector span.
    [[nodiscard]] std::span<double> vec(index n) {
      assert(n >= 0);
      double* p = ws_->bump(static_cast<std::size_t>(n));
      std::fill(p, p + n, 0.0);
      return {p, static_cast<std::size_t>(n)};
    }

    /// Uninitialized raw doubles (packing buffers that are fully overwritten).
    [[nodiscard]] double* raw(std::size_t n) { return ws_->bump(n); }

   private:
    Workspace* ws_;
    std::size_t chunk_;
    std::size_t used_;
    int depth_;
  };

  /// Merge all chunks into one contiguous chunk of the combined capacity so
  /// that subsequent passes bump within a single allocation.  Only legal with
  /// no live Scope.  Idempotent; a single-chunk workspace is left untouched.
  void reset();

  /// Total doubles of arena capacity across chunks.
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Number of backing chunks (1 after reset; growth appends).
  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }

  /// Largest total number of doubles ever simultaneously borrowed.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  struct Chunk {
    aligned_buffer data;
    std::size_t used = 0;
  };

  [[nodiscard]] std::size_t cur_used() const noexcept {
    return chunks_.empty() ? 0 : chunks_[cur_].used;
  }

  double* bump(std::size_t n);
  void rewind(std::size_t chunk, std::size_t used) noexcept;

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;  ///< chunk currently being bumped
  std::size_t high_water_ = 0;
  int live_scopes_ = 0;
};

/// The calling thread's arena.  Worker threads of a pool each see their own;
/// batched engine jobs scheduled onto the same worker share (and therefore
/// warm up) one arena across jobs.
[[nodiscard]] Workspace& tls_workspace() noexcept;

}  // namespace pitk::la
