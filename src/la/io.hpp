#pragma once

/// \file io.hpp
/// Human-readable formatting of matrices and vectors (examples, diagnostics).

#include <iosfwd>
#include <string>

#include "la/matrix.hpp"

namespace pitk::la {

/// Format a matrix with aligned columns, `precision` significant digits.
[[nodiscard]] std::string to_string(ConstMatrixView a, int precision = 4);

/// Format a vector on a single line.
[[nodiscard]] std::string to_string(std::span<const double> v, int precision = 4);

std::ostream& operator<<(std::ostream& os, ConstMatrixView a);
std::ostream& operator<<(std::ostream& os, const Matrix& a);

}  // namespace pitk::la
