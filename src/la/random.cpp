#include "la/random.hpp"

#include <cmath>
#include <numbers>

#include "la/qr.hpp"

namespace pitk::la {

namespace {

inline std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's unbiased bounded generation (rejection on the low word).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

void fill_gaussian(Rng& rng, MatrixView a) {
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i) a(i, j) = rng.gaussian();
}

Matrix random_gaussian(Rng& rng, index rows, index cols) {
  Matrix m(rows, cols);
  fill_gaussian(rng, m.view());
  return m;
}

Vector random_gaussian_vector(Rng& rng, index n) {
  Vector v(n);
  for (index i = 0; i < n; ++i) v[i] = rng.gaussian();
  return v;
}

Matrix random_orthonormal(Rng& rng, index rows, index cols) {
  assert(cols <= rows);
  Matrix g = random_gaussian(rng, rows, cols);
  std::vector<double> tau(static_cast<std::size_t>(cols));
  qr_factor(g.view(), tau);
  // Sign fix: multiply column j of Q by sign(R_jj) so the distribution is the
  // Haar measure rather than biased by the QR sign convention.
  std::vector<double> signs(static_cast<std::size_t>(cols));
  for (index j = 0; j < cols; ++j)
    signs[static_cast<std::size_t>(j)] = g(j, j) >= 0.0 ? 1.0 : -1.0;
  Matrix q = qr_form_q(g.view(), tau);
  for (index j = 0; j < cols; ++j) {
    const double s = signs[static_cast<std::size_t>(j)];
    for (index i = 0; i < rows; ++i) q(i, j) *= s;
  }
  return q;
}

Matrix random_orthonormal(Rng& rng, index n) { return random_orthonormal(rng, n, n); }

Matrix random_spd(Rng& rng, index n, double cond) {
  assert(cond >= 1.0);
  Matrix q = random_orthonormal(rng, n);
  Matrix a(n, n);
  for (index j = 0; j < n; ++j) {
    const double t = n == 1 ? 0.0 : static_cast<double>(j) / static_cast<double>(n - 1);
    const double lambda = std::pow(cond, -t);  // log-spaced in [1/cond, 1]
    for (index i = 0; i < n; ++i) a(i, j) = q(i, j) * lambda;
  }
  Matrix out(n, n);
  // out = Q * diag(lambda) * Q^T  (a holds Q*diag already).
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) {
      double acc = 0.0;
      for (index l = 0; l < n; ++l) acc += a(i, l) * q(j, l);
      out(i, j) = acc;
    }
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < j; ++i) {
      const double v = 0.5 * (out(i, j) + out(j, i));
      out(i, j) = v;
      out(j, i) = v;
    }
  return out;
}

}  // namespace pitk::la
