#pragma once

/// \file lu.hpp
/// LU factorization with partial pivoting and square solves.
///
/// Used where a general (non-symmetric, non-triangular) square system must
/// be solved: the associative smoother's (I + C J)^{-1} products and the
/// normal-equations cyclic-reduction smoother's pivot blocks.  Partial
/// pivoting gives the usual practical backward stability.

#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace pitk::la {

/// In-place LU with partial pivoting: on exit `a` holds L (unit lower, below
/// the diagonal) and U (upper); `piv[j]` is the row swapped into position j
/// at step j (LAPACK dgetrf convention).  Returns false on exact singularity.
[[nodiscard]] bool lu_factor(MatrixView a, std::span<index> piv);

/// Solve A x = b in place given a factorization from lu_factor.
void lu_solve(ConstMatrixView lu, std::span<const index> piv, std::span<double> x);

/// Solve A X = B in place for a block of right-hand sides.
void lu_solve(ConstMatrixView lu, std::span<const index> piv, MatrixView b);

/// Convenience: X = A^{-1} B; consumes `a`, overwrites `b`.
/// Returns false if A is singular (b is then unspecified).
[[nodiscard]] bool solve_inplace(Matrix a, MatrixView b);

/// Reusable workspace wrapper for hot loops.
class LuScratch {
 public:
  /// Factor `a` in place and solve for all columns of `b`.
  /// Returns false on singularity.
  [[nodiscard]] bool factor_solve(MatrixView a, MatrixView b);

 private:
  std::vector<index> piv_;
};

}  // namespace pitk::la
