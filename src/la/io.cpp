#include "la/io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace pitk::la {

std::string to_string(ConstMatrixView a, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (index i = 0; i < a.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (index j = 0; j < a.cols(); ++j) {
      os << std::setw(precision + 8) << a(i, j);
    }
    os << (i + 1 == a.rows() ? " ]" : "\n");
  }
  if (a.rows() == 0) os << "[ ] (" << a.rows() << "x" << a.cols() << ")";
  return os.str();
}

std::string to_string(std::span<const double> v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << "[";
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : " ") << v[i];
  os << " ]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, ConstMatrixView a) { return os << to_string(a); }
std::ostream& operator<<(std::ostream& os, const Matrix& a) { return os << to_string(a.view()); }

}  // namespace pitk::la
