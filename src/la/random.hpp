#pragma once

/// \file random.hpp
/// Deterministic, seedable random number generation for workloads and tests.
///
/// The paper's benchmark problems (Section 5.2) use "random fixed orthonormal
/// F_i and G_i" and random observations; xoshiro256++ gives fast, reproducible
/// streams that can be split per-step for parallel problem construction.

#include <array>
#include <cstdint>

#include "la/matrix.hpp"

namespace pitk::la {

/// xoshiro256++ PRNG (public-domain algorithm by Blackman & Vigna), seeded
/// through splitmix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal deviate (Box-Muller; one spare cached).
  double gaussian() noexcept;

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// A statistically independent generator (jump-free split via re-seeding
  /// from this stream); handy for per-step parallel workload construction.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Fill a view with i.i.d. standard normal entries.
void fill_gaussian(Rng& rng, MatrixView a);

/// Fresh rows x cols matrix of i.i.d. standard normal entries.
[[nodiscard]] Matrix random_gaussian(Rng& rng, index rows, index cols);

/// Fresh vector of i.i.d. standard normal entries.
[[nodiscard]] Vector random_gaussian_vector(Rng& rng, index n);

/// Haar-distributed orthonormal matrix (rows x cols, cols <= rows): thin Q of
/// a Gaussian matrix with the sign fix that makes the distribution uniform.
[[nodiscard]] Matrix random_orthonormal(Rng& rng, index rows, index cols);
[[nodiscard]] Matrix random_orthonormal(Rng& rng, index n);

/// Random symmetric positive-definite matrix Q diag(lambda) Q^T with
/// eigenvalues log-spaced in [1/cond, 1].
[[nodiscard]] Matrix random_spd(Rng& rng, index n, double cond);

}  // namespace pitk::la
