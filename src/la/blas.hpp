#pragma once

/// \file blas.hpp
/// Hand-written BLAS-like dense kernels on column-major views.
///
/// These replace the vendor BLAS the paper links against (MKL / ARM PL).
/// All smoother variants in this repository share these kernels, so relative
/// performance comparisons between algorithms remain meaningful.  Kernels are
/// single-threaded by design: the paper also uses single-threaded BLAS and
/// exploits parallelism only at the in-time level above.

#include <span>

#include "la/matrix.hpp"

namespace pitk::la {

/// Transposition selector for kernels.
enum class Trans : std::uint8_t { No, Yes };

/// Triangle selector.
enum class Uplo : std::uint8_t { Upper, Lower };

/// Unit-diagonal selector for triangular kernels.
enum class Diag : std::uint8_t { NonUnit, Unit };

/// C = alpha * op(A) * op(B) + beta * C.
/// Shapes must satisfy: op(A) is m x p, op(B) is p x n, C is m x n.
///
/// Dispatches on size: when every dimension is <= 8 (the Kalman state-dim
/// sweet spot) a register-resident kernel with a compile-time trip count on
/// the reduction runs without any packing; larger problems go through a
/// cache-blocked (MC/KC/NC) packed path with an MR x NR register tile.
/// BLAS semantics: C is not read when beta == 0, and non-finite values in A
/// and B propagate (no zero-skip shortcuts).  Packing scratch comes from the
/// calling thread's la::Workspace, so steady-state calls do not allocate.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb, double beta,
          MatrixView c);

namespace detail {
/// Benchmark/test hooks: force one gemm code path regardless of the
/// size-based dispatch above.  Same contract as gemm(); gemm_small requires
/// every dimension <= 8.
void gemm_small(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                double beta, MatrixView c);
void gemm_packed(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                 double beta, MatrixView c);
}  // namespace detail

/// Convenience: C = op(A) * op(B) as a fresh matrix.
[[nodiscard]] Matrix multiply(ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb);
[[nodiscard]] Matrix multiply(ConstMatrixView a, ConstMatrixView b);

/// y = alpha * op(A) * x + beta * y.
void gemv(double alpha, ConstMatrixView a, Trans ta, std::span<const double> x, double beta,
          std::span<double> y);

/// Solve op(T) * x = b in place where T is triangular. x and b share storage.
void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, std::span<double> x);

/// Solve op(T) * X = B in place (left side), B overwritten with X.
/// T must be square (n x n) and B n x m.  Large triangles with multi-column B
/// run blocked: per-block-column substitution on the diagonal blocks with the
/// panel updates routed through the packed gemm.
void trsm_left(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b);

/// Solve X * op(T) = B in place (right side), B overwritten with X.
/// T must be square (n x n) and B m x n.  Blocked like trsm_left.
void trsm_right(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b);

/// B = alpha * op(T) * B where T triangular (left multiply, in place).
/// Blocked like trsm_left.
void trmm_left(Uplo uplo, Trans trans, Diag diag, double alpha, ConstMatrixView t, MatrixView b);

/// C = alpha * A * A^T + beta * C (full matrix written, C symmetric on exit
/// when beta*C is symmetric).  trans == Trans::Yes computes A^T * A instead.
/// With beta == 0 and a large C, only the upper block triangle is computed
/// (through the packed gemm) and mirrored, halving the flops; the result is
/// then exactly symmetric.
void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c);

/// Y += alpha * X (same shape).
void axpy(double alpha, ConstMatrixView x, MatrixView y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Scale every entry: X *= alpha.
void scale(double alpha, MatrixView x);
void scale(double alpha, std::span<double> x);

/// Dot product.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm of a vector (overflow-safe scaling not needed at our
/// magnitudes, but computed with extended accumulation).
[[nodiscard]] double norm2(std::span<const double> x);

/// Frobenius norm of a matrix view.
[[nodiscard]] double norm_fro(ConstMatrixView a);

/// Largest absolute entry.
[[nodiscard]] double norm_max(ConstMatrixView a);
[[nodiscard]] double norm_max(std::span<const double> x);

/// Largest absolute difference between two same-shaped views.
[[nodiscard]] double max_abs_diff(ConstMatrixView a, ConstMatrixView b);
[[nodiscard]] double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// B = (A + A^T) / 2 in place (A square). Keeps computed covariances exactly
/// symmetric in the presence of rounding.
void symmetrize(MatrixView a);

/// True iff every entry is finite.
[[nodiscard]] bool all_finite(ConstMatrixView a);

}  // namespace pitk::la
