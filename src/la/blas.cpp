#include "la/blas.hpp"

#include <algorithm>
#include <cmath>

namespace pitk::la {

namespace {

inline index op_rows(ConstMatrixView a, Trans t) { return t == Trans::No ? a.rows() : a.cols(); }
inline index op_cols(ConstMatrixView a, Trans t) { return t == Trans::No ? a.cols() : a.rows(); }

inline void scale_col(double beta, std::span<double> c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    std::fill(c.begin(), c.end(), 0.0);
    return;
  }
  for (double& v : c) v *= beta;
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb, double beta,
          MatrixView c) {
  const index m = op_rows(a, ta);
  const index p = op_cols(a, ta);
  const index n = op_cols(b, tb);
  assert(op_rows(b, tb) == p);
  assert(c.rows() == m && c.cols() == n);
  (void)m;

  if (ta == Trans::No && tb == Trans::No) {
    // C[:,j] = beta*C[:,j] + alpha * sum_l A[:,l] * B(l,j): pure column AXPYs.
    for (index j = 0; j < n; ++j) {
      scale_col(beta, c.col_span(j));
      for (index l = 0; l < p; ++l) {
        const double t = alpha * b(l, j);
        if (t == 0.0) continue;
        const double* acol = a.col_span(l).data();
        double* ccol = c.col_span(j).data();
        for (index i = 0; i < c.rows(); ++i) ccol[i] += t * acol[i];
      }
    }
  } else if (ta == Trans::Yes && tb == Trans::No) {
    // C(i,j) = beta*C(i,j) + alpha * dot(A[:,i], B[:,j]): contiguous dots.
    for (index j = 0; j < n; ++j) {
      const double* bcol = b.col_span(j).data();
      for (index i = 0; i < c.rows(); ++i) {
        const double* acol = a.col_span(i).data();
        double acc = 0.0;
        for (index l = 0; l < p; ++l) acc += acol[l] * bcol[l];
        c(i, j) = beta * c(i, j) + alpha * acc;
      }
    }
  } else if (ta == Trans::No && tb == Trans::Yes) {
    for (index j = 0; j < n; ++j) scale_col(beta, c.col_span(j));
    for (index l = 0; l < p; ++l) {
      const double* acol = a.col_span(l).data();
      for (index j = 0; j < n; ++j) {
        const double t = alpha * b(j, l);
        if (t == 0.0) continue;
        double* ccol = c.col_span(j).data();
        for (index i = 0; i < c.rows(); ++i) ccol[i] += t * acol[i];
      }
    }
  } else {
    // C(i,j) = beta*C(i,j) + alpha * sum_l A(l,i) * B(j,l).
    for (index j = 0; j < n; ++j) {
      for (index i = 0; i < c.rows(); ++i) {
        const double* acol = a.col_span(i).data();
        double acc = 0.0;
        for (index l = 0; l < p; ++l) acc += acol[l] * b(j, l);
        c(i, j) = beta * c(i, j) + alpha * acc;
      }
    }
  }
}

Matrix multiply(ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb) {
  Matrix c(op_rows(a, ta), op_cols(b, tb));
  gemm(1.0, a, ta, b, tb, 0.0, c.view());
  return c;
}

Matrix multiply(ConstMatrixView a, ConstMatrixView b) {
  return multiply(a, Trans::No, b, Trans::No);
}

void gemv(double alpha, ConstMatrixView a, Trans ta, std::span<const double> x, double beta,
          std::span<double> y) {
  const index m = op_rows(a, ta);
  const index p = op_cols(a, ta);
  assert(static_cast<index>(x.size()) == p);
  assert(static_cast<index>(y.size()) == m);
  (void)m;
  scale_col(beta, y);
  if (ta == Trans::No) {
    for (index l = 0; l < p; ++l) {
      const double t = alpha * x[static_cast<std::size_t>(l)];
      if (t == 0.0) continue;
      const double* acol = a.col_span(l).data();
      for (index i = 0; i < a.rows(); ++i) y[static_cast<std::size_t>(i)] += t * acol[i];
    }
  } else {
    for (index i = 0; i < a.cols(); ++i) {
      const double* acol = a.col_span(i).data();
      double acc = 0.0;
      for (index l = 0; l < a.rows(); ++l) acc += acol[l] * x[static_cast<std::size_t>(l)];
      y[static_cast<std::size_t>(i)] += alpha * acc;
    }
  }
}

void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, std::span<double> x) {
  const index n = t.rows();
  assert(t.cols() == n && static_cast<index>(x.size()) == n);
  const bool unit = diag == Diag::Unit;
  // A transposed triangle behaves as the opposite triangle solved in the
  // opposite direction; handle all four orientations explicitly so each loop
  // walks columns of t contiguously where possible.
  if ((uplo == Uplo::Upper && trans == Trans::No)) {
    for (index j = n - 1; j >= 0; --j) {
      if (!unit) x[static_cast<std::size_t>(j)] /= t(j, j);
      const double xj = x[static_cast<std::size_t>(j)];
      const double* tcol = t.col_span(j).data();
      for (index i = 0; i < j; ++i) x[static_cast<std::size_t>(i)] -= tcol[i] * xj;
    }
  } else if (uplo == Uplo::Lower && trans == Trans::No) {
    for (index j = 0; j < n; ++j) {
      if (!unit) x[static_cast<std::size_t>(j)] /= t(j, j);
      const double xj = x[static_cast<std::size_t>(j)];
      const double* tcol = t.col_span(j).data();
      for (index i = j + 1; i < n; ++i) x[static_cast<std::size_t>(i)] -= tcol[i] * xj;
    }
  } else if (uplo == Uplo::Upper && trans == Trans::Yes) {
    // Solve T^T x = b; T^T is lower: forward substitution using columns of T.
    for (index j = 0; j < n; ++j) {
      const double* tcol = t.col_span(j).data();
      double acc = x[static_cast<std::size_t>(j)];
      for (index i = 0; i < j; ++i) acc -= tcol[i] * x[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(j)] = unit ? acc : acc / t(j, j);
    }
  } else {
    // Lower transposed: back substitution using columns of T.
    for (index j = n - 1; j >= 0; --j) {
      const double* tcol = t.col_span(j).data();
      double acc = x[static_cast<std::size_t>(j)];
      for (index i = j + 1; i < n; ++i) acc -= tcol[i] * x[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(j)] = unit ? acc : acc / t(j, j);
    }
  }
}

void trsm_left(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b) {
  assert(t.rows() == t.cols() && t.rows() == b.rows());
  for (index j = 0; j < b.cols(); ++j) trsv(uplo, trans, diag, t, b.col_span(j));
}

void trsm_right(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b) {
  const index n = t.rows();
  assert(t.cols() == n && b.cols() == n);
  const bool unit = diag == Diag::Unit;
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  // X * U = B (U effectively upper): forward over columns.
  // X * L = B (L effectively lower): backward over columns.
  auto entry = [&](index r, index c) { return trans == Trans::No ? t(r, c) : t(c, r); };
  if (effective_upper) {
    for (index j = 0; j < n; ++j) {
      double* bj = b.col_span(j).data();
      for (index l = 0; l < j; ++l) {
        const double s = entry(l, j);
        if (s == 0.0) continue;
        const double* bl = b.col_span(l).data();
        for (index i = 0; i < b.rows(); ++i) bj[i] -= s * bl[i];
      }
      if (!unit) {
        const double d = entry(j, j);
        for (index i = 0; i < b.rows(); ++i) bj[i] /= d;
      }
    }
  } else {
    for (index j = n - 1; j >= 0; --j) {
      double* bj = b.col_span(j).data();
      for (index l = j + 1; l < n; ++l) {
        const double s = entry(l, j);
        if (s == 0.0) continue;
        const double* bl = b.col_span(l).data();
        for (index i = 0; i < b.rows(); ++i) bj[i] -= s * bl[i];
      }
      if (!unit) {
        const double d = entry(j, j);
        for (index i = 0; i < b.rows(); ++i) bj[i] /= d;
      }
    }
  }
}

void trmm_left(Uplo uplo, Trans trans, Diag diag, double alpha, ConstMatrixView t, MatrixView b) {
  const index n = t.rows();
  assert(t.cols() == n && b.rows() == n);
  const bool unit = diag == Diag::Unit;
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  auto entry = [&](index r, index c) { return trans == Trans::No ? t(r, c) : t(c, r); };
  for (index j = 0; j < b.cols(); ++j) {
    double* bj = b.col_span(j).data();
    if (effective_upper) {
      // Row i of the product uses bj[i..]; ascending order keeps unread data.
      for (index i = 0; i < n; ++i) {
        double acc = unit ? bj[i] : entry(i, i) * bj[i];
        for (index l = i + 1; l < n; ++l) acc += entry(i, l) * bj[l];
        bj[i] = alpha * acc;
      }
    } else {
      for (index i = n - 1; i >= 0; --i) {
        double acc = unit ? bj[i] : entry(i, i) * bj[i];
        for (index l = 0; l < i; ++l) acc += entry(i, l) * bj[l];
        bj[i] = alpha * acc;
      }
    }
  }
}

void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c) {
  gemm(alpha, a, trans, a, trans == Trans::No ? Trans::Yes : Trans::No, beta, c);
}

void axpy(double alpha, ConstMatrixView x, MatrixView y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  for (index j = 0; j < x.cols(); ++j) {
    const double* xc = x.col_span(j).data();
    double* yc = y.col_span(j).data();
    for (index i = 0; i < x.rows(); ++i) yc[i] += alpha * xc[i];
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, MatrixView x) {
  for (index j = 0; j < x.cols(); ++j) scale_col(alpha, x.col_span(j));
}

void scale(double alpha, std::span<double> x) { scale_col(alpha, x); }

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_fro(ConstMatrixView a) {
  double acc = 0.0;
  for (index j = 0; j < a.cols(); ++j) {
    const double* col = a.col_span(j).data();
    for (index i = 0; i < a.rows(); ++i) acc += col[i] * col[i];
  }
  return std::sqrt(acc);
}

double norm_max(ConstMatrixView a) {
  double m = 0.0;
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i) m = std::max(m, std::abs(a(i, j)));
  return m;
}

double norm_max(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i) m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

void symmetrize(MatrixView a) {
  assert(a.rows() == a.cols());
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < j; ++i) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
}

bool all_finite(ConstMatrixView a) {
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i)
      if (!std::isfinite(a(i, j))) return false;
  return true;
}

}  // namespace pitk::la
