#include "la/blas.hpp"

#include <algorithm>
#include <cmath>

#include "la/workspace.hpp"

// Explicit SIMD path for the packed micro-kernel.  The CMake option
// PITK_MARCH_NATIVE compiles the library with -march=native; on AVX2+FMA
// hardware that defines the feature macros below and the 8x4 register tile
// runs on intrinsics (16 doubles of accumulator in 8 ymm registers).  On any
// other target the scalar kernel compiles instead, and the randomized
// blocked-vs-naive equivalence tests pin both to identical results.
#if defined(__AVX2__) && defined(__FMA__)
#define PITK_GEMM_AVX2 1
#include <immintrin.h>
#else
#define PITK_GEMM_AVX2 0
#endif

namespace pitk::la {

namespace {

inline index op_rows(ConstMatrixView a, Trans t) { return t == Trans::No ? a.rows() : a.cols(); }
inline index op_cols(ConstMatrixView a, Trans t) { return t == Trans::No ? a.cols() : a.rows(); }

inline void scale_col(double beta, std::span<double> c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    std::fill(c.begin(), c.end(), 0.0);
    return;
  }
  for (double& v : c) v *= beta;
}

// ---------------------------------------------------------------------------
// Small-dimension dispatch: every dimension <= 8.  The operands are staged
// into fixed-leading-dimension stack tiles (a register/L1 copy, not the heap
// packing of the blocked path) and the reduction length is a template
// parameter, so the compiler fully unrolls and vectorizes the dot products.
// ---------------------------------------------------------------------------

constexpr index kSmallDim = 8;

/// Copy op(A) (m x k, both <= 8) into an 8-leading-dimension column-major
/// stack tile.
inline void load_small(ConstMatrixView a, Trans ta, index m, index k, double* buf) {
  if (ta == Trans::No) {
    for (index l = 0; l < k; ++l) {
      const double* col = a.data() + l * a.ld();
      for (index i = 0; i < m; ++i) buf[i + 8 * l] = col[i];
    }
  } else {
    for (index i = 0; i < m; ++i) {
      const double* col = a.data() + i * a.ld();  // column i of A = row i of op(A)
      for (index l = 0; l < k; ++l) buf[i + 8 * l] = col[l];
    }
  }
}

template <int K>
inline void small_kernel(index m, index n, const double* ab, const double* bb, double alpha,
                         double beta, MatrixView c) {
  for (index j = 0; j < n; ++j) {
    double* cc = c.data() + j * c.ld();
    const double* bj = bb + 8 * j;
    for (index i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int l = 0; l < K; ++l) acc += ab[i + 8 * l] * bj[l];
      cc[i] = beta == 0.0 ? alpha * acc : alpha * acc + beta * cc[i];
    }
  }
}

void gemm_small_impl(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                     double beta, MatrixView c) {
  const index m = c.rows();
  const index n = c.cols();
  const index p = op_cols(a, ta);
  double ab[64];
  double bb[64];
  load_small(a, ta, m, p, ab);
  // op(B) is p x n; load as the transposed-roles tile: bb[l + 8j] = op(B)(l, j).
  if (tb == Trans::No) {
    for (index j = 0; j < n; ++j) {
      const double* col = b.data() + j * b.ld();
      for (index l = 0; l < p; ++l) bb[l + 8 * j] = col[l];
    }
  } else {
    for (index l = 0; l < p; ++l) {
      const double* col = b.data() + l * b.ld();  // column l of B = row l of op(B)
      for (index j = 0; j < n; ++j) bb[l + 8 * j] = col[j];
    }
  }
  switch (p) {
    case 1: small_kernel<1>(m, n, ab, bb, alpha, beta, c); break;
    case 2: small_kernel<2>(m, n, ab, bb, alpha, beta, c); break;
    case 3: small_kernel<3>(m, n, ab, bb, alpha, beta, c); break;
    case 4: small_kernel<4>(m, n, ab, bb, alpha, beta, c); break;
    case 5: small_kernel<5>(m, n, ab, bb, alpha, beta, c); break;
    case 6: small_kernel<6>(m, n, ab, bb, alpha, beta, c); break;
    case 7: small_kernel<7>(m, n, ab, bb, alpha, beta, c); break;
    case 8: small_kernel<8>(m, n, ab, bb, alpha, beta, c); break;
    default: assert(false); break;
  }
}

// ---------------------------------------------------------------------------
// Packed blocked path (BLIS-style).  A is packed into MR-row micro-panels, B
// into NR-column micro-panels, both zero-padded to the register-tile size so
// the micro-kernel always runs full tiles; stores are bounded at the edges.
// Blocking: KC x NC panel of B in L2/L3, MC x KC panel of A in L2, one NR
// sliver of B in L1 while MR panels of A stream through it.
// ---------------------------------------------------------------------------

constexpr index MR = 8;   ///< register-tile rows
constexpr index NR = 4;   ///< register-tile columns
constexpr index MC = 128;
constexpr index KC = 256;
constexpr index NC = 512;

/// Pack op(A)(ic:ic+mc, pc:pc+kc) into MR-row micro-panels, zero padded.
void pack_a(ConstMatrixView a, Trans ta, index ic, index pc, index mc, index kc, double* out) {
  for (index i0 = 0; i0 < mc; i0 += MR) {
    const index mr = std::min(MR, mc - i0);
    double* dst = out + (i0 / MR) * kc * MR;
    if (ta == Trans::No) {
#if PITK_GEMM_AVX2
      if (mr == MR) {
        // Full-height panel: each op-column is one contiguous 8-double copy.
        for (index l = 0; l < kc; ++l) {
          const double* col = a.data() + (pc + l) * a.ld() + ic + i0;
          _mm256_storeu_pd(dst + l * MR, _mm256_loadu_pd(col));
          _mm256_storeu_pd(dst + l * MR + 4, _mm256_loadu_pd(col + 4));
        }
        continue;
      }
#endif
      for (index l = 0; l < kc; ++l) {
        const double* col = a.data() + (pc + l) * a.ld() + ic + i0;
        for (index ii = 0; ii < mr; ++ii) dst[l * MR + ii] = col[ii];
        for (index ii = mr; ii < MR; ++ii) dst[l * MR + ii] = 0.0;
      }
    } else {
      // op(A)(i, l) = A(pc + l, ic + i): each op-row is a contiguous A column.
      for (index ii = 0; ii < MR; ++ii) {
        if (ii < mr) {
          const double* col = a.data() + (ic + i0 + ii) * a.ld() + pc;
          for (index l = 0; l < kc; ++l) dst[l * MR + ii] = col[l];
        } else {
          for (index l = 0; l < kc; ++l) dst[l * MR + ii] = 0.0;
        }
      }
    }
  }
}

/// Pack op(B)(pc:pc+kc, jc:jc+nc) into NR-column micro-panels, zero padded.
void pack_b(ConstMatrixView b, Trans tb, index pc, index jc, index kc, index nc, double* out) {
  for (index j0 = 0; j0 < nc; j0 += NR) {
    const index nr = std::min(NR, nc - j0);
    double* dst = out + (j0 / NR) * kc * NR;
    if (tb == Trans::No) {
#if PITK_GEMM_AVX2
      if (nr == NR) {
        // Full sliver: a kc x 4 transpose, done four op-rows at a time with
        // the classic unpack + lane-permute 4x4 double transpose.
        const double* c0 = b.data() + (jc + j0 + 0) * b.ld() + pc;
        const double* c1 = b.data() + (jc + j0 + 1) * b.ld() + pc;
        const double* c2 = b.data() + (jc + j0 + 2) * b.ld() + pc;
        const double* c3 = b.data() + (jc + j0 + 3) * b.ld() + pc;
        index l = 0;
        for (; l + 4 <= kc; l += 4) {
          const __m256d r0 = _mm256_loadu_pd(c0 + l);
          const __m256d r1 = _mm256_loadu_pd(c1 + l);
          const __m256d r2 = _mm256_loadu_pd(c2 + l);
          const __m256d r3 = _mm256_loadu_pd(c3 + l);
          const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
          const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
          const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
          const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
          _mm256_storeu_pd(dst + (l + 0) * NR, _mm256_permute2f128_pd(t0, t2, 0x20));
          _mm256_storeu_pd(dst + (l + 1) * NR, _mm256_permute2f128_pd(t1, t3, 0x20));
          _mm256_storeu_pd(dst + (l + 2) * NR, _mm256_permute2f128_pd(t0, t2, 0x31));
          _mm256_storeu_pd(dst + (l + 3) * NR, _mm256_permute2f128_pd(t1, t3, 0x31));
        }
        for (; l < kc; ++l) {
          dst[l * NR + 0] = c0[l];
          dst[l * NR + 1] = c1[l];
          dst[l * NR + 2] = c2[l];
          dst[l * NR + 3] = c3[l];
        }
        continue;
      }
#endif
      for (index jj = 0; jj < NR; ++jj) {
        if (jj < nr) {
          const double* col = b.data() + (jc + j0 + jj) * b.ld() + pc;
          for (index l = 0; l < kc; ++l) dst[l * NR + jj] = col[l];
        } else {
          for (index l = 0; l < kc; ++l) dst[l * NR + jj] = 0.0;
        }
      }
    } else {
      // op(B)(l, j) = B(jc + j, pc + l): each op-column sliver walks a row of B.
      for (index l = 0; l < kc; ++l) {
        const double* col = b.data() + (pc + l) * b.ld() + jc + j0;
        for (index jj = 0; jj < nr; ++jj) dst[l * NR + jj] = col[jj];
        for (index jj = nr; jj < NR; ++jj) dst[l * NR + jj] = 0.0;
      }
    }
  }
}

/// Bounded store of a column of accumulated products into C, honoring the
/// BLAS beta contract (C never read when beta == 0).
inline void store_col(const double* accj, double alpha, double beta, double* cc, index mr) {
  if (beta == 0.0) {
    for (index ii = 0; ii < mr; ++ii) cc[ii] = alpha * accj[ii];
  } else if (beta == 1.0) {
    for (index ii = 0; ii < mr; ++ii) cc[ii] += alpha * accj[ii];
  } else {
    for (index ii = 0; ii < mr; ++ii) cc[ii] = beta * cc[ii] + alpha * accj[ii];
  }
}

/// MR x NR register tile: C(0:mr, 0:nr) = alpha * sum_l ap[l] bp[l]^T
/// (+ beta * C).  Accumulators live in registers across the whole kc loop;
/// the fixed trip counts of the inner two loops unroll and vectorize.
[[maybe_unused]] void micro_kernel_scalar(index kc, const double* ap, const double* bp,
                                          double alpha, double beta, double* cp, index ldc,
                                          index mr, index nr) {
  double acc[MR * NR] = {};
  for (index l = 0; l < kc; ++l) {
    const double* av = ap + l * MR;
    const double* bv = bp + l * NR;
    for (index jj = 0; jj < NR; ++jj) {
      const double bj = bv[jj];
      double* accj = acc + jj * MR;
      for (index ii = 0; ii < MR; ++ii) accj[ii] += av[ii] * bj;
    }
  }
  for (index jj = 0; jj < nr; ++jj) store_col(acc + jj * MR, alpha, beta, cp + jj * ldc, mr);
}

#if PITK_GEMM_AVX2

/// AVX2+FMA variant of the 8x4 tile: each of the four accumulator columns is
/// two ymm registers (8 accumulators + 2 streaming A registers + 1 broadcast
/// fits the 16-register file with room to spare, unlike the scalar kernel's
/// 32-double array, which spills).  The packed micro-panels are dense and
/// zero-padded, so loads are always full-width; only the C stores are
/// bounded, through the scalar tail on edge tiles.
void micro_kernel(index kc, const double* ap, const double* bp, double alpha, double beta,
                  double* cp, index ldc, index mr, index nr) {
  __m256d acc0l = _mm256_setzero_pd(), acc0h = _mm256_setzero_pd();
  __m256d acc1l = _mm256_setzero_pd(), acc1h = _mm256_setzero_pd();
  __m256d acc2l = _mm256_setzero_pd(), acc2h = _mm256_setzero_pd();
  __m256d acc3l = _mm256_setzero_pd(), acc3h = _mm256_setzero_pd();
  for (index l = 0; l < kc; ++l) {
    // Workspace granularity keeps the A panel 64-byte aligned, but the B
    // sliver strides by kc * NR doubles (32-byte aligned only for even kc);
    // unaligned loads on aligned addresses cost nothing on AVX2 hardware.
    const __m256d a_lo = _mm256_loadu_pd(ap + l * MR);
    const __m256d a_hi = _mm256_loadu_pd(ap + l * MR + 4);
    __m256d b = _mm256_broadcast_sd(bp + l * NR + 0);
    acc0l = _mm256_fmadd_pd(a_lo, b, acc0l);
    acc0h = _mm256_fmadd_pd(a_hi, b, acc0h);
    b = _mm256_broadcast_sd(bp + l * NR + 1);
    acc1l = _mm256_fmadd_pd(a_lo, b, acc1l);
    acc1h = _mm256_fmadd_pd(a_hi, b, acc1h);
    b = _mm256_broadcast_sd(bp + l * NR + 2);
    acc2l = _mm256_fmadd_pd(a_lo, b, acc2l);
    acc2h = _mm256_fmadd_pd(a_hi, b, acc2h);
    b = _mm256_broadcast_sd(bp + l * NR + 3);
    acc3l = _mm256_fmadd_pd(a_lo, b, acc3l);
    acc3h = _mm256_fmadd_pd(a_hi, b, acc3h);
  }
  if (mr == MR) {
    const __m256d va = _mm256_set1_pd(alpha);
    const __m256d vb = _mm256_set1_pd(beta);
    const __m256d* lo[NR] = {&acc0l, &acc1l, &acc2l, &acc3l};
    const __m256d* hi[NR] = {&acc0h, &acc1h, &acc2h, &acc3h};
    for (index jj = 0; jj < nr; ++jj) {
      double* cc = cp + jj * ldc;
      __m256d rl = _mm256_mul_pd(*lo[jj], va);
      __m256d rh = _mm256_mul_pd(*hi[jj], va);
      if (beta == 1.0) {
        rl = _mm256_add_pd(rl, _mm256_loadu_pd(cc));
        rh = _mm256_add_pd(rh, _mm256_loadu_pd(cc + 4));
      } else if (beta != 0.0) {
        rl = _mm256_fmadd_pd(_mm256_loadu_pd(cc), vb, rl);
        rh = _mm256_fmadd_pd(_mm256_loadu_pd(cc + 4), vb, rh);
      }
      _mm256_storeu_pd(cc, rl);
      _mm256_storeu_pd(cc + 4, rh);
    }
  } else {
    alignas(32) double acc[MR * NR];
    _mm256_store_pd(acc + 0, acc0l);
    _mm256_store_pd(acc + 4, acc0h);
    _mm256_store_pd(acc + 8, acc1l);
    _mm256_store_pd(acc + 12, acc1h);
    _mm256_store_pd(acc + 16, acc2l);
    _mm256_store_pd(acc + 20, acc2h);
    _mm256_store_pd(acc + 24, acc3l);
    _mm256_store_pd(acc + 28, acc3h);
    for (index jj = 0; jj < nr; ++jj) store_col(acc + jj * MR, alpha, beta, cp + jj * ldc, mr);
  }
}

#else

void micro_kernel(index kc, const double* ap, const double* bp, double alpha, double beta,
                  double* cp, index ldc, index mr, index nr) {
  micro_kernel_scalar(kc, ap, bp, alpha, beta, cp, ldc, mr, nr);
}

#endif  // PITK_GEMM_AVX2

void gemm_packed_impl(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                      double beta, MatrixView c) {
  const index m = c.rows();
  const index n = c.cols();
  const index p = op_cols(a, ta);

  Workspace::Scope scope(tls_workspace());
  double* apack = scope.raw(static_cast<std::size_t>(std::min(MC, (m + MR - 1) / MR * MR)) *
                            static_cast<std::size_t>(std::min(KC, p)));
  double* bpack = scope.raw(static_cast<std::size_t>(std::min(KC, p)) *
                            static_cast<std::size_t>(std::min(NC, (n + NR - 1) / NR * NR)));

  for (index jc = 0; jc < n; jc += NC) {
    const index nc = std::min(NC, n - jc);
    for (index pc = 0; pc < p; pc += KC) {
      const index kc = std::min(KC, p - pc);
      // The first KC slab applies the caller's beta; later slabs accumulate.
      const double beta_eff = pc == 0 ? beta : 1.0;
      pack_b(b, tb, pc, jc, kc, nc, bpack);
      for (index ic = 0; ic < m; ic += MC) {
        const index mc = std::min(MC, m - ic);
        pack_a(a, ta, ic, pc, mc, kc, apack);
        for (index jr = 0; jr < nc; jr += NR) {
          const index nr = std::min(NR, nc - jr);
          const double* bp = bpack + (jr / NR) * kc * NR;
          for (index ir = 0; ir < mc; ir += MR) {
            const index mr = std::min(MR, mc - ir);
            const double* ap = apack + (ir / MR) * kc * MR;
            micro_kernel(kc, ap, bp, alpha, beta_eff,
                         c.data() + (ic + ir) + (jc + jr) * c.ld(), c.ld(), mr, nr);
          }
        }
      }
    }
  }
}

void gemm_check_shapes(ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb, MatrixView c) {
  assert(op_rows(a, ta) == c.rows());
  assert(op_rows(b, tb) == op_cols(a, ta));
  assert(op_cols(b, tb) == c.cols());
  (void)a; (void)ta; (void)b; (void)tb; (void)c;
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb, double beta,
          MatrixView c) {
  gemm_check_shapes(a, ta, b, tb, c);
  const index m = c.rows();
  const index n = c.cols();
  const index p = op_cols(a, ta);
  if (m == 0 || n == 0) return;
  if (p == 0 || alpha == 0.0) {
    // No product term: C = beta * C (C is never read when beta == 0).
    for (index j = 0; j < n; ++j) scale_col(beta, c.col_span(j));
    return;
  }
  if (m <= kSmallDim && n <= kSmallDim && p <= kSmallDim)
    gemm_small_impl(alpha, a, ta, b, tb, beta, c);
  else
    gemm_packed_impl(alpha, a, ta, b, tb, beta, c);
}

namespace detail {

void gemm_small(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                double beta, MatrixView c) {
  gemm_check_shapes(a, ta, b, tb, c);
  assert(c.rows() <= kSmallDim && c.cols() <= kSmallDim && op_cols(a, ta) <= kSmallDim);
  if (c.rows() == 0 || c.cols() == 0) return;
  if (op_cols(a, ta) == 0 || alpha == 0.0) {
    for (index j = 0; j < c.cols(); ++j) scale_col(beta, c.col_span(j));
    return;
  }
  gemm_small_impl(alpha, a, ta, b, tb, beta, c);
}

void gemm_packed(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                 double beta, MatrixView c) {
  gemm_check_shapes(a, ta, b, tb, c);
  if (c.rows() == 0 || c.cols() == 0) return;
  if (op_cols(a, ta) == 0 || alpha == 0.0) {
    for (index j = 0; j < c.cols(); ++j) scale_col(beta, c.col_span(j));
    return;
  }
  gemm_packed_impl(alpha, a, ta, b, tb, beta, c);
}

}  // namespace detail

Matrix multiply(ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb) {
  Matrix c(op_rows(a, ta), op_cols(b, tb));
  gemm(1.0, a, ta, b, tb, 0.0, c.view());
  return c;
}

Matrix multiply(ConstMatrixView a, ConstMatrixView b) {
  return multiply(a, Trans::No, b, Trans::No);
}

void gemv(double alpha, ConstMatrixView a, Trans ta, std::span<const double> x, double beta,
          std::span<double> y) {
  const index m = op_rows(a, ta);
  const index p = op_cols(a, ta);
  assert(static_cast<index>(x.size()) == p);
  assert(static_cast<index>(y.size()) == m);
  (void)m;
  scale_col(beta, y);
  if (ta == Trans::No) {
    for (index l = 0; l < p; ++l) {
      const double t = alpha * x[static_cast<std::size_t>(l)];
      if (t == 0.0) continue;
      const double* acol = a.col_span(l).data();
      for (index i = 0; i < a.rows(); ++i) y[static_cast<std::size_t>(i)] += t * acol[i];
    }
  } else {
    for (index i = 0; i < a.cols(); ++i) {
      const double* acol = a.col_span(i).data();
      double acc = 0.0;
      for (index l = 0; l < a.rows(); ++l) acc += acol[l] * x[static_cast<std::size_t>(l)];
      y[static_cast<std::size_t>(i)] += alpha * acc;
    }
  }
}

void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, std::span<double> x) {
  const index n = t.rows();
  assert(t.cols() == n && static_cast<index>(x.size()) == n);
  const bool unit = diag == Diag::Unit;
  // A transposed triangle behaves as the opposite triangle solved in the
  // opposite direction; handle all four orientations explicitly so each loop
  // walks columns of t contiguously where possible.
  if ((uplo == Uplo::Upper && trans == Trans::No)) {
    for (index j = n - 1; j >= 0; --j) {
      if (!unit) x[static_cast<std::size_t>(j)] /= t(j, j);
      const double xj = x[static_cast<std::size_t>(j)];
      const double* tcol = t.col_span(j).data();
      for (index i = 0; i < j; ++i) x[static_cast<std::size_t>(i)] -= tcol[i] * xj;
    }
  } else if (uplo == Uplo::Lower && trans == Trans::No) {
    for (index j = 0; j < n; ++j) {
      if (!unit) x[static_cast<std::size_t>(j)] /= t(j, j);
      const double xj = x[static_cast<std::size_t>(j)];
      const double* tcol = t.col_span(j).data();
      for (index i = j + 1; i < n; ++i) x[static_cast<std::size_t>(i)] -= tcol[i] * xj;
    }
  } else if (uplo == Uplo::Upper && trans == Trans::Yes) {
    // Solve T^T x = b; T^T is lower: forward substitution using columns of T.
    for (index j = 0; j < n; ++j) {
      const double* tcol = t.col_span(j).data();
      double acc = x[static_cast<std::size_t>(j)];
      for (index i = 0; i < j; ++i) acc -= tcol[i] * x[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(j)] = unit ? acc : acc / t(j, j);
    }
  } else {
    // Lower transposed: back substitution using columns of T.
    for (index j = n - 1; j >= 0; --j) {
      const double* tcol = t.col_span(j).data();
      double acc = x[static_cast<std::size_t>(j)];
      for (index i = j + 1; i < n; ++i) acc -= tcol[i] * x[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(j)] = unit ? acc : acc / t(j, j);
    }
  }
}

namespace {

/// Diagonal-block size of the blocked triangular kernels.  Small enough that
/// shapes just past the Kalman sweet spot already exercise the blocked path
/// (and its panel updates route through the small-dimension gemm).
constexpr index kTriBlock = 8;

void trsm_left_unblocked(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b) {
  for (index j = 0; j < b.cols(); ++j) trsv(uplo, trans, diag, t, b.col_span(j));
}

/// Sub-block (r0:r0+nr, c0:c0+nc) of op(T) together with the Trans flag that
/// realizes it through gemm on the untransposed storage.
struct OpBlock {
  ConstMatrixView view;
  Trans trans;
};

OpBlock op_block(ConstMatrixView t, Trans trans, index r0, index c0, index nr, index nc) {
  if (trans == Trans::No) return {t.block(r0, c0, nr, nc), Trans::No};
  return {t.block(c0, r0, nc, nr), Trans::Yes};
}

void trsm_right_unblocked(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b) {
  const index n = t.rows();
  const bool unit = diag == Diag::Unit;
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  // X * U = B (U effectively upper): forward over columns.
  // X * L = B (L effectively lower): backward over columns.
  auto entry = [&](index r, index c) { return trans == Trans::No ? t(r, c) : t(c, r); };
  if (effective_upper) {
    for (index j = 0; j < n; ++j) {
      double* bj = b.col_span(j).data();
      for (index l = 0; l < j; ++l) {
        const double s = entry(l, j);
        if (s == 0.0) continue;
        const double* bl = b.col_span(l).data();
        for (index i = 0; i < b.rows(); ++i) bj[i] -= s * bl[i];
      }
      if (!unit) {
        const double d = entry(j, j);
        for (index i = 0; i < b.rows(); ++i) bj[i] /= d;
      }
    }
  } else {
    for (index j = n - 1; j >= 0; --j) {
      double* bj = b.col_span(j).data();
      for (index l = j + 1; l < n; ++l) {
        const double s = entry(l, j);
        if (s == 0.0) continue;
        const double* bl = b.col_span(l).data();
        for (index i = 0; i < b.rows(); ++i) bj[i] -= s * bl[i];
      }
      if (!unit) {
        const double d = entry(j, j);
        for (index i = 0; i < b.rows(); ++i) bj[i] /= d;
      }
    }
  }
}

void trmm_left_unblocked(Uplo uplo, Trans trans, Diag diag, double alpha, ConstMatrixView t,
                         MatrixView b) {
  const index n = t.rows();
  const bool unit = diag == Diag::Unit;
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  auto entry = [&](index r, index c) { return trans == Trans::No ? t(r, c) : t(c, r); };
  for (index j = 0; j < b.cols(); ++j) {
    double* bj = b.col_span(j).data();
    if (effective_upper) {
      // Row i of the product uses bj[i..]; ascending order keeps unread data.
      for (index i = 0; i < n; ++i) {
        double acc = unit ? bj[i] : entry(i, i) * bj[i];
        for (index l = i + 1; l < n; ++l) acc += entry(i, l) * bj[l];
        bj[i] = alpha * acc;
      }
    } else {
      for (index i = n - 1; i >= 0; --i) {
        double acc = unit ? bj[i] : entry(i, i) * bj[i];
        for (index l = 0; l < i; ++l) acc += entry(i, l) * bj[l];
        bj[i] = alpha * acc;
      }
    }
  }
}

}  // namespace

void trsm_left(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b) {
  const index n = t.rows();
  assert(t.cols() == n && n == b.rows());
  if (n <= kTriBlock || b.cols() < 2) {
    trsm_left_unblocked(uplo, trans, diag, t, b);
    return;
  }
  const index cols = b.cols();
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  if (effective_upper) {
    // Back substitution over block rows; each solved block updates the rows
    // above it through one gemm.
    for (index bd = (n - 1) / kTriBlock * kTriBlock; bd >= 0; bd -= kTriBlock) {
      const index nb = std::min(kTriBlock, n - bd);
      trsm_left_unblocked(uplo, trans, diag, t.block(bd, bd, nb, nb), b.block(bd, 0, nb, cols));
      if (bd > 0) {
        const OpBlock s = op_block(t, trans, 0, bd, bd, nb);
        gemm(-1.0, s.view, s.trans, b.block(bd, 0, nb, cols), Trans::No, 1.0,
             b.block(0, 0, bd, cols));
      }
    }
  } else {
    for (index bd = 0; bd < n; bd += kTriBlock) {
      const index nb = std::min(kTriBlock, n - bd);
      trsm_left_unblocked(uplo, trans, diag, t.block(bd, bd, nb, nb), b.block(bd, 0, nb, cols));
      const index rest = n - bd - nb;
      if (rest > 0) {
        const OpBlock s = op_block(t, trans, bd + nb, bd, rest, nb);
        gemm(-1.0, s.view, s.trans, b.block(bd, 0, nb, cols), Trans::No, 1.0,
             b.block(bd + nb, 0, rest, cols));
      }
    }
  }
}

void trsm_right(Uplo uplo, Trans trans, Diag diag, ConstMatrixView t, MatrixView b) {
  const index n = t.rows();
  assert(t.cols() == n && b.cols() == n);
  const index m = b.rows();
  if (n <= kTriBlock || m < 2) {
    trsm_right_unblocked(uplo, trans, diag, t, b);
    return;
  }
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  if (effective_upper) {
    // Forward over block columns: clear the contribution of already-solved
    // columns with one gemm, then solve against the diagonal block.
    for (index bd = 0; bd < n; bd += kTriBlock) {
      const index nb = std::min(kTriBlock, n - bd);
      if (bd > 0) {
        const OpBlock s = op_block(t, trans, 0, bd, bd, nb);
        gemm(-1.0, b.block(0, 0, m, bd), Trans::No, s.view, s.trans, 1.0,
             b.block(0, bd, m, nb));
      }
      trsm_right_unblocked(uplo, trans, diag, t.block(bd, bd, nb, nb), b.block(0, bd, m, nb));
    }
  } else {
    for (index bd = (n - 1) / kTriBlock * kTriBlock; bd >= 0; bd -= kTriBlock) {
      const index nb = std::min(kTriBlock, n - bd);
      const index rest = n - bd - nb;
      if (rest > 0) {
        const OpBlock s = op_block(t, trans, bd + nb, bd, rest, nb);
        gemm(-1.0, b.block(0, bd + nb, m, rest), Trans::No, s.view, s.trans, 1.0,
             b.block(0, bd, m, nb));
      }
      trsm_right_unblocked(uplo, trans, diag, t.block(bd, bd, nb, nb), b.block(0, bd, m, nb));
    }
  }
}

void trmm_left(Uplo uplo, Trans trans, Diag diag, double alpha, ConstMatrixView t, MatrixView b) {
  const index n = t.rows();
  assert(t.cols() == n && b.rows() == n);
  if (n <= kTriBlock || b.cols() < 2) {
    trmm_left_unblocked(uplo, trans, diag, alpha, t, b);
    return;
  }
  const index cols = b.cols();
  const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
  if (effective_upper) {
    // Ascending block rows: the strict part reads rows below, which are not
    // yet overwritten; the diagonal block multiplies in place first.
    for (index bd = 0; bd < n; bd += kTriBlock) {
      const index nb = std::min(kTriBlock, n - bd);
      trmm_left_unblocked(uplo, trans, diag, alpha, t.block(bd, bd, nb, nb),
                          b.block(bd, 0, nb, cols));
      const index rest = n - bd - nb;
      if (rest > 0) {
        const OpBlock s = op_block(t, trans, bd, bd + nb, nb, rest);
        gemm(alpha, s.view, s.trans, b.block(bd + nb, 0, rest, cols), Trans::No, 1.0,
             b.block(bd, 0, nb, cols));
      }
    }
  } else {
    for (index bd = (n - 1) / kTriBlock * kTriBlock; bd >= 0; bd -= kTriBlock) {
      const index nb = std::min(kTriBlock, n - bd);
      trmm_left_unblocked(uplo, trans, diag, alpha, t.block(bd, bd, nb, nb),
                          b.block(bd, 0, nb, cols));
      if (bd > 0) {
        const OpBlock s = op_block(t, trans, bd, 0, nb, bd);
        gemm(alpha, s.view, s.trans, b.block(0, 0, bd, cols), Trans::No, 1.0,
             b.block(bd, 0, nb, cols));
      }
    }
  }
}

void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c) {
  const Trans tb = trans == Trans::No ? Trans::Yes : Trans::No;
  const index n = c.rows();
  assert(c.cols() == n);
  // A general beta*C may be non-symmetric, in which case mirroring would be
  // wrong; only the pure-product case takes the half-flops triangle path.
  constexpr index kSyrkBlock = 16;
  if (beta != 0.0 || n <= 2 * kSyrkBlock) {
    gemm(alpha, a, trans, a, tb, beta, c);
    return;
  }
  for (index j = 0; j < n; j += kSyrkBlock) {
    const index nb = std::min(kSyrkBlock, n - j);
    const ConstMatrixView aj =
        trans == Trans::No ? a.block(j, 0, nb, a.cols()) : a.block(0, j, a.rows(), nb);
    for (index i = 0; i <= j; i += kSyrkBlock) {
      const index mb = std::min(kSyrkBlock, n - i);
      const ConstMatrixView ai =
          trans == Trans::No ? a.block(i, 0, mb, a.cols()) : a.block(0, i, a.rows(), mb);
      gemm(alpha, ai, trans, aj, tb, 0.0, c.block(i, j, mb, nb));
    }
  }
  for (index j = 0; j < n; ++j)
    for (index i = j + 1; i < n; ++i) c(i, j) = c(j, i);
}

void axpy(double alpha, ConstMatrixView x, MatrixView y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  for (index j = 0; j < x.cols(); ++j) {
    const double* xc = x.col_span(j).data();
    double* yc = y.col_span(j).data();
    for (index i = 0; i < x.rows(); ++i) yc[i] += alpha * xc[i];
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, MatrixView x) {
  for (index j = 0; j < x.cols(); ++j) scale_col(alpha, x.col_span(j));
}

void scale(double alpha, std::span<double> x) { scale_col(alpha, x); }

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_fro(ConstMatrixView a) {
  double acc = 0.0;
  for (index j = 0; j < a.cols(); ++j) {
    const double* col = a.col_span(j).data();
    for (index i = 0; i < a.rows(); ++i) acc += col[i] * col[i];
  }
  return std::sqrt(acc);
}

double norm_max(ConstMatrixView a) {
  double m = 0.0;
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i) m = std::max(m, std::abs(a(i, j)));
  return m;
}

double norm_max(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i) m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

void symmetrize(MatrixView a) {
  assert(a.rows() == a.cols());
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < j; ++i) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
}

bool all_finite(ConstMatrixView a) {
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i)
      if (!std::isfinite(a(i, j))) return false;
  return true;
}

}  // namespace pitk::la
