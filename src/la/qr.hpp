#pragma once

/// \file qr.hpp
/// Householder QR factorization and reflector application.
///
/// This is the orthogonal-transformation engine behind every QR-based
/// smoother in the library (Paige-Saunders and Odd-Even).  The factored form
/// mirrors LAPACK's dgeqrf storage: R in the upper triangle, the essential
/// parts of the Householder vectors below the diagonal, scalar factors in
/// `tau`.  Q is never formed unless explicitly requested; the smoothers only
/// ever apply Q^T to attached right-hand-side/coupled-block columns, which is
/// the 2-block-row primitive of Section 3 of the paper.

#include <span>

#include "la/matrix.hpp"

namespace pitk::la {

/// In-place Householder QR of `a` (any shape, including rows < cols).
/// `tau` must have size >= min(a.rows(), a.cols()).
void qr_factor(MatrixView a, std::span<double> tau);

/// Apply Q^T (from a previous qr_factor of `a`) to `b` in place.
/// `b` must have a.rows() rows.  No-op when b has zero columns.
void qr_apply_qt(ConstMatrixView a, std::span<const double> tau, MatrixView b);

/// Apply Q (not transposed) to `b` in place.
void qr_apply_q(ConstMatrixView a, std::span<const double> tau, MatrixView b);

/// Extract the R factor from a factored matrix, zero-padded to a square
/// cols x cols upper-triangular matrix.  Padding rows correspond to the
/// trivially-satisfied equations 0*u = 0 and keep downstream block shapes
/// uniform (see DESIGN.md section 3).
void qr_extract_r_square(ConstMatrixView a, MatrixView r);

/// Form the thin Q factor explicitly: a.rows() x min(a.rows(), a.cols()).
[[nodiscard]] Matrix qr_form_q(ConstMatrixView a, std::span<const double> tau);

/// Solve the full-column-rank least-squares problem min ||A x - b||_2.
/// Both arguments are consumed (factored / transformed in place).
[[nodiscard]] Vector qr_least_squares(Matrix a, Vector b);

/// Reusable workspace + convenience wrapper around qr_factor/qr_apply_qt for
/// the smoothers' hot loops: factors `m` and applies Q^T to `attached`
/// without allocating when capacity suffices.
class QrScratch {
 public:
  /// Factor `m` in place and apply Q^T to `attached` (may be empty view).
  void factor_apply(MatrixView m, MatrixView attached);

 private:
  std::vector<double> tau_;
};

}  // namespace pitk::la
