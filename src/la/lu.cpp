#include "la/lu.hpp"

#include <cmath>
#include <utility>

namespace pitk::la {

bool lu_factor(MatrixView a, std::span<index> piv) {
  const index n = a.rows();
  assert(a.cols() == n && static_cast<index>(piv.size()) >= n);
  for (index j = 0; j < n; ++j) {
    // Pivot search in column j.
    index p = j;
    double best = std::abs(a(j, j));
    for (index i = j + 1; i < n; ++i) {
      const double v = std::abs(a(i, j));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv[static_cast<std::size_t>(j)] = p;
    if (best == 0.0) return false;
    if (p != j)
      for (index c = 0; c < n; ++c) std::swap(a(j, c), a(p, c));
    // Eliminate below the pivot; update the trailing block column-wise.
    const double inv = 1.0 / a(j, j);
    for (index i = j + 1; i < n; ++i) a(i, j) *= inv;
    for (index c = j + 1; c < n; ++c) {
      const double ujc = a(j, c);
      if (ujc == 0.0) continue;
      double* col = a.col_span(c).data();
      const double* lcol = a.col_span(j).data();
      for (index i = j + 1; i < n; ++i) col[i] -= lcol[i] * ujc;
    }
  }
  return true;
}

void lu_solve(ConstMatrixView lu, std::span<const index> piv, std::span<double> x) {
  const index n = lu.rows();
  assert(static_cast<index>(x.size()) == n);
  // Apply the row interchanges, then L (unit lower), then U.
  for (index j = 0; j < n; ++j) {
    const index p = piv[static_cast<std::size_t>(j)];
    if (p != j) std::swap(x[static_cast<std::size_t>(j)], x[static_cast<std::size_t>(p)]);
  }
  for (index j = 0; j < n; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    const double* col = lu.col_span(j).data();
    for (index i = j + 1; i < n; ++i) x[static_cast<std::size_t>(i)] -= col[i] * xj;
  }
  for (index j = n - 1; j >= 0; --j) {
    x[static_cast<std::size_t>(j)] /= lu(j, j);
    const double xj = x[static_cast<std::size_t>(j)];
    const double* col = lu.col_span(j).data();
    for (index i = 0; i < j; ++i) x[static_cast<std::size_t>(i)] -= col[i] * xj;
  }
}

void lu_solve(ConstMatrixView lu, std::span<const index> piv, MatrixView b) {
  for (index j = 0; j < b.cols(); ++j) lu_solve(lu, piv, b.col_span(j));
}

bool solve_inplace(Matrix a, MatrixView b) {
  std::vector<index> piv(static_cast<std::size_t>(a.rows()));
  if (!lu_factor(a.view(), piv)) return false;
  lu_solve(a.view(), piv, b);
  return true;
}

bool LuScratch::factor_solve(MatrixView a, MatrixView b) {
  if (piv_.size() < static_cast<std::size_t>(a.rows()))
    piv_.resize(static_cast<std::size_t>(a.rows()));
  std::span<index> piv(piv_.data(), static_cast<std::size_t>(a.rows()));
  if (!lu_factor(a, piv)) return false;
  lu_solve(a, piv, b);
  return true;
}

}  // namespace pitk::la
