#include "la/cholesky.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/triangular.hpp"

namespace pitk::la {

bool cholesky_lower(MatrixView a) {
  const index n = a.rows();
  assert(a.cols() == n);
  for (index j = 0; j < n; ++j) {
    double d = a(j, j);
    for (index l = 0; l < j; ++l) d -= a(j, l) * a(j, l);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (index i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index l = 0; l < j; ++l) s -= a(i, l) * a(j, l);
      a(i, j) = s * inv;
    }
  }
  for (index j = 1; j < n; ++j)
    for (index i = 0; i < j; ++i) a(i, j) = 0.0;
  return true;
}

void chol_solve(ConstMatrixView l, std::span<double> x) {
  trsv(Uplo::Lower, Trans::No, Diag::NonUnit, l, x);
  trsv(Uplo::Lower, Trans::Yes, Diag::NonUnit, l, x);
}

void chol_solve(ConstMatrixView l, MatrixView b) {
  trsm_left(Uplo::Lower, Trans::No, Diag::NonUnit, l, b);
  trsm_left(Uplo::Lower, Trans::Yes, Diag::NonUnit, l, b);
}

Matrix chol_inverse(ConstMatrixView l) {
  // A^{-1} = L^{-T} L^{-1}: invert the triangle, then form the product.
  Matrix linv = to_matrix(l);
  tri_inverse_lower(linv.view());
  Matrix inv(l.rows(), l.rows());
  gemm(1.0, linv, Trans::Yes, linv, Trans::No, 0.0, inv.view());
  symmetrize(inv.view());
  return inv;
}

std::optional<Matrix> spd_inverse(ConstMatrixView a) {
  Matrix l = to_matrix(a);
  if (!cholesky_lower(l.view())) return std::nullopt;
  return chol_inverse(l.view());
}

std::optional<Matrix> spd_solve(ConstMatrixView a, ConstMatrixView b) {
  Matrix l = to_matrix(a);
  if (!cholesky_lower(l.view())) return std::nullopt;
  Matrix x = to_matrix(b);
  chol_solve(l.view(), x.view());
  return x;
}

}  // namespace pitk::la
