#pragma once

/// \file matrix.hpp
/// Owning dense column-major matrices plus non-owning strided views.
///
/// Storage is column-major (LAPACK convention): element (i, j) of a view with
/// leading dimension `ld` lives at `data[i + j * ld]`.  Views never own
/// memory; Matrix owns a cache-line aligned buffer with `ld == rows`.
/// Zero-row and zero-column shapes are fully supported (they occur naturally
/// in Kalman problems with missing observations).

#include <cassert>
#include <initializer_list>
#include <span>
#include <utility>

#include "la/types.hpp"

namespace pitk::la {

class MatrixView;

/// Read-only strided view of a column-major matrix block.
class ConstMatrixView {
 public:
  constexpr ConstMatrixView() noexcept = default;
  constexpr ConstMatrixView(const double* data, index rows, index cols, index ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(rows >= 0 && cols >= 0 && ld >= rows);
  }

  [[nodiscard]] constexpr index rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr index cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr index ld() const noexcept { return ld_; }
  [[nodiscard]] constexpr const double* data() const noexcept { return data_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] const double& operator()(index i, index j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Sub-block starting at (i0, j0) with shape r x c.
  [[nodiscard]] ConstMatrixView block(index i0, index j0, index r, index c) const noexcept {
    assert(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0 && i0 + r <= rows_ && j0 + c <= cols_);
    return {data_ + i0 + j0 * ld_, r, c, ld_};
  }

  /// Column j as a contiguous span (columns are contiguous in column-major).
  [[nodiscard]] std::span<const double> col_span(index j) const noexcept {
    assert(j >= 0 && j < cols_);
    return {data_ + j * ld_, static_cast<std::size_t>(rows_)};
  }

 private:
  const double* data_ = nullptr;
  index rows_ = 0;
  index cols_ = 0;
  index ld_ = 0;
};

/// Mutable strided view of a column-major matrix block.
class MatrixView {
 public:
  constexpr MatrixView() noexcept = default;
  constexpr MatrixView(double* data, index rows, index cols, index ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(rows >= 0 && cols >= 0 && ld >= rows);
  }

  [[nodiscard]] constexpr index rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr index cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr index ld() const noexcept { return ld_; }
  [[nodiscard]] constexpr double* data() const noexcept { return data_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(index i, index j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  [[nodiscard]] MatrixView block(index i0, index j0, index r, index c) const noexcept {
    assert(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0 && i0 + r <= rows_ && j0 + c <= cols_);
    return {data_ + i0 + j0 * ld_, r, c, ld_};
  }

  [[nodiscard]] std::span<double> col_span(index j) const noexcept {
    assert(j >= 0 && j < cols_);
    return {data_ + j * ld_, static_cast<std::size_t>(rows_)};
  }

  /// Implicit read-only conversion so mutable views can be passed anywhere a
  /// ConstMatrixView is expected.
  constexpr operator ConstMatrixView() const noexcept {  // NOLINT(google-explicit-constructor)
    return {data_, rows_, cols_, ld_};
  }

  void fill(double v) const noexcept {
    for (index j = 0; j < cols_; ++j)
      for (index i = 0; i < rows_; ++i) (*this)(i, j) = v;
  }

  void set_zero() const noexcept { fill(0.0); }

  /// Copy `src` (same shape) into this view.
  void assign(ConstMatrixView src) const noexcept {
    assert(src.rows() == rows_ && src.cols() == cols_);
    for (index j = 0; j < cols_; ++j)
      for (index i = 0; i < rows_; ++i) (*this)(i, j) = src(i, j);
  }

 private:
  double* data_ = nullptr;
  index rows_ = 0;
  index cols_ = 0;
  index ld_ = 0;
};

/// Owning dense column-major matrix with cache-line aligned storage.
class Matrix {
 public:
  Matrix() = default;

  /// Uninitialized-size construction is intentionally zero-initializing:
  /// Kalman blocks are assembled incrementally and zero is the correct
  /// background value for sparse-block assembly.
  Matrix(index rows, index cols) : data_(checked_size(rows, cols), 0.0), rows_(rows), cols_(cols) {}

  /// Row-major initializer list for small literal matrices in tests/examples:
  /// Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows_list) {
    rows_ = static_cast<index>(rows_list.size());
    cols_ = rows_ == 0 ? 0 : static_cast<index>(rows_list.begin()->size());
    data_.assign(checked_size(rows_, cols_), 0.0);
    index i = 0;
    for (const auto& r : rows_list) {
      assert(static_cast<index>(r.size()) == cols_);
      index j = 0;
      for (double v : r) (*this)(i, j++) = v;
      ++i;
    }
  }

  [[nodiscard]] static Matrix zero(index rows, index cols) { return Matrix(rows, cols); }

  [[nodiscard]] static Matrix identity(index n) {
    Matrix m(n, n);
    for (index i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// n x n matrix with `d` on the diagonal.
  [[nodiscard]] static Matrix diagonal(std::span<const double> d) {
    const index n = static_cast<index>(d.size());
    Matrix m(n, n);
    for (index i = 0; i < n; ++i) m(i, i) = d[static_cast<std::size_t>(i)];
    return m;
  }

  [[nodiscard]] index rows() const noexcept { return rows_; }
  [[nodiscard]] index cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  [[nodiscard]] double& operator()(index i, index j) noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  [[nodiscard]] const double& operator()(index i, index j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  [[nodiscard]] MatrixView view() noexcept { return {data_.data(), rows_, cols_, rows_}; }
  [[nodiscard]] ConstMatrixView view() const noexcept { return {data_.data(), rows_, cols_, rows_}; }
  [[nodiscard]] ConstMatrixView cview() const noexcept { return view(); }

  operator MatrixView() noexcept { return view(); }            // NOLINT(google-explicit-constructor)
  operator ConstMatrixView() const noexcept { return view(); } // NOLINT(google-explicit-constructor)

  [[nodiscard]] MatrixView block(index i0, index j0, index r, index c) noexcept {
    return view().block(i0, j0, r, c);
  }
  [[nodiscard]] ConstMatrixView block(index i0, index j0, index r, index c) const noexcept {
    return view().block(i0, j0, r, c);
  }

  /// Destructive resize; contents become zero.  Reuses the existing buffer
  /// when it already fits (std::vector::assign semantics), so warm hot-loop
  /// matrices resize without heap traffic.
  void resize(index rows, index cols) {
    data_.assign(checked_size(rows, cols), 0.0);
    rows_ = rows;
    cols_ = cols;
  }

  /// Capacity-reusing deep copy of an arbitrary (possibly strided) view,
  /// reshaping to the source's shape.  No allocation when the existing
  /// buffer already fits rows*cols doubles — the hot-path counterpart of
  /// `matrix = to_matrix(view)`.
  void assign_from(ConstMatrixView src) {
    data_.resize(checked_size(src.rows(), src.cols()));
    rows_ = src.rows();
    cols_ = src.cols();
    for (index j = 0; j < cols_; ++j) {
      const double* s = src.data() + j * src.ld();
      double* d = data_.data() + j * rows_;
      for (index i = 0; i < rows_; ++i) d[i] = s[i];
    }
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (index j = 0; j < cols_; ++j)
      for (index i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
    return t;
  }

  [[nodiscard]] bool operator==(const Matrix& other) const noexcept {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    for (index j = 0; j < cols_; ++j)
      for (index i = 0; i < rows_; ++i)
        if ((*this)(i, j) != other(i, j)) return false;
    return true;
  }

 private:
  static std::size_t checked_size(index rows, index cols) {
    assert(rows >= 0 && cols >= 0);
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  aligned_buffer data_;
  index rows_ = 0;
  index cols_ = 0;
};

/// Owning dense vector (thin wrapper over aligned storage).
class Vector {
 public:
  Vector() = default;
  explicit Vector(index n) : data_(static_cast<std::size_t>(n), 0.0) {}
  Vector(std::initializer_list<double> vals) : data_(vals.begin(), vals.end()) {}

  [[nodiscard]] static Vector zero(index n) { return Vector(n); }

  [[nodiscard]] index size() const noexcept { return static_cast<index>(data_.size()); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  [[nodiscard]] double& operator[](index i) noexcept {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const double& operator[](index i) const noexcept {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::span<double> span() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> span() const noexcept { return {data_.data(), data_.size()}; }

  operator std::span<double>() noexcept { return span(); }             // NOLINT(google-explicit-constructor)
  operator std::span<const double>() const noexcept { return span(); } // NOLINT(google-explicit-constructor)

  /// View this vector as an n x 1 matrix (no copy).
  [[nodiscard]] MatrixView as_matrix() noexcept { return {data_.data(), size(), 1, size()}; }
  [[nodiscard]] ConstMatrixView as_matrix() const noexcept { return {data_.data(), size(), 1, size()}; }

  void resize(index n) { data_.assign(static_cast<std::size_t>(n), 0.0); }

  /// Capacity-reusing deep copy (resizes to src's length without allocating
  /// when the buffer already fits).
  void assign_from(std::span<const double> src) { data_.assign(src.begin(), src.end()); }

 private:
  aligned_buffer data_;
};

/// Deep copy of an arbitrary (possibly strided) view into an owning Matrix.
[[nodiscard]] Matrix to_matrix(ConstMatrixView v);

/// C = [A; B] stacked vertically (cols must match; either side may be empty).
[[nodiscard]] Matrix vstack(ConstMatrixView a, ConstMatrixView b);

/// C = [A, B] stacked horizontally (rows must match; either side may be empty).
[[nodiscard]] Matrix hstack(ConstMatrixView a, ConstMatrixView b);

}  // namespace pitk::la
