#pragma once

/// \file triangular.hpp
/// Triangular matrix inversion helpers used by SelInv (Section 4: the
/// algorithm repeatedly needs R_jj^{-1} applied from both sides).

#include "la/matrix.hpp"

namespace pitk::la {

/// In-place inversion of an upper-triangular matrix (non-unit diagonal).
void tri_inverse_upper(MatrixView r);

/// In-place inversion of a lower-triangular matrix (non-unit diagonal).
void tri_inverse_lower(MatrixView l);

/// Condition-number estimate (max |diag| / min |diag|) of a triangular
/// factor; a cheap proxy used by diagnostics and tests.
[[nodiscard]] double tri_diag_cond(ConstMatrixView t);

}  // namespace pitk::la
