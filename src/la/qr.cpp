#include "la/qr.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/triangular.hpp"

namespace pitk::la {

namespace {

/// Generate a Householder reflector for the vector [alpha; x] such that
/// H [alpha; x] = [beta; 0].  Returns {beta, tau}; x is overwritten with the
/// essential part v (v0 == 1 implicit).  Mirrors LAPACK dlarfg.
struct Reflector {
  double beta;
  double tau;
};

inline Reflector make_reflector(double alpha, std::span<double> x) {
  double xnorm = norm2(x);
  if (xnorm == 0.0) return {alpha, 0.0};
  const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (double& v : x) v *= inv;
  return {beta, tau};
}

/// Apply H = I - tau [1; v] [1; v]^T to the rows [row0, row0+1+v.size()) of
/// every column of b.
inline void apply_reflector(std::span<const double> v, double tau, index row0, MatrixView b) {
  if (tau == 0.0) return;
  const index nv = static_cast<index>(v.size());
  for (index j = 0; j < b.cols(); ++j) {
    double* col = b.col_span(j).data();
    double w = col[row0];
    for (index i = 0; i < nv; ++i) w += v[static_cast<std::size_t>(i)] * col[row0 + 1 + i];
    w *= tau;
    col[row0] -= w;
    for (index i = 0; i < nv; ++i) col[row0 + 1 + i] -= w * v[static_cast<std::size_t>(i)];
  }
}

}  // namespace

void qr_factor(MatrixView a, std::span<double> tau) {
  const index r = a.rows();
  const index c = a.cols();
  const index k = std::min(r, c);
  assert(static_cast<index>(tau.size()) >= k);
  for (index j = 0; j < k; ++j) {
    double* col = a.col_span(j).data();
    std::span<double> below(col + j + 1, static_cast<std::size_t>(r - j - 1));
    const Reflector h = make_reflector(col[j], below);
    tau[static_cast<std::size_t>(j)] = h.tau;
    if (j + 1 < c) {
      apply_reflector(below, h.tau, j, a.block(0, j + 1, r, c - j - 1));
    }
    col[j] = h.beta;
  }
}

void qr_apply_qt(ConstMatrixView a, std::span<const double> tau, MatrixView b) {
  assert(b.rows() == a.rows());
  if (b.cols() == 0) return;
  const index k = std::min(a.rows(), a.cols());
  assert(static_cast<index>(tau.size()) >= k);
  // Q = H_0 H_1 ... H_{k-1}, so Q^T = H_{k-1} ... H_0 but each H_j is
  // symmetric; applying in ascending order yields Q^T b.
  for (index j = 0; j < k; ++j) {
    std::span<const double> v(a.col_span(j).data() + j + 1,
                              static_cast<std::size_t>(a.rows() - j - 1));
    apply_reflector(v, tau[static_cast<std::size_t>(j)], j, b);
  }
}

void qr_apply_q(ConstMatrixView a, std::span<const double> tau, MatrixView b) {
  assert(b.rows() == a.rows());
  if (b.cols() == 0) return;
  const index k = std::min(a.rows(), a.cols());
  assert(static_cast<index>(tau.size()) >= k);
  for (index j = k - 1; j >= 0; --j) {
    std::span<const double> v(a.col_span(j).data() + j + 1,
                              static_cast<std::size_t>(a.rows() - j - 1));
    apply_reflector(v, tau[static_cast<std::size_t>(j)], j, b);
  }
}

void qr_extract_r_square(ConstMatrixView a, MatrixView r) {
  const index c = a.cols();
  assert(r.rows() == c && r.cols() == c);
  r.set_zero();
  const index k = std::min(a.rows(), c);
  for (index j = 0; j < c; ++j)
    for (index i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = a(i, j);
}

Matrix qr_form_q(ConstMatrixView a, std::span<const double> tau) {
  const index k = std::min(a.rows(), a.cols());
  Matrix q(a.rows(), k);
  for (index j = 0; j < k; ++j) q(j, j) = 1.0;
  qr_apply_q(a, tau, q.view());
  return q;
}

Vector qr_least_squares(Matrix a, Vector b) {
  assert(a.rows() == b.size());
  assert(a.rows() >= a.cols());
  std::vector<double> tau(static_cast<std::size_t>(std::min(a.rows(), a.cols())));
  qr_factor(a.view(), tau);
  qr_apply_qt(a.view(), tau, b.as_matrix());
  Vector x(a.cols());
  for (index i = 0; i < a.cols(); ++i) x[i] = b[i];
  trsv(Uplo::Upper, Trans::No, Diag::NonUnit, a.block(0, 0, a.cols(), a.cols()), x.span());
  return x;
}

void QrScratch::factor_apply(MatrixView m, MatrixView attached) {
  const std::size_t need = static_cast<std::size_t>(std::min(m.rows(), m.cols()));
  if (tau_.size() < need) tau_.resize(need);
  std::span<double> tau(tau_.data(), need);
  qr_factor(m, tau);
  if (!attached.empty()) qr_apply_qt(m, tau, attached);
}

}  // namespace pitk::la
