#include "la/blas_ref.hpp"

#include <cassert>

namespace pitk::la::ref {

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb, double beta,
          MatrixView c) {
  const index m = c.rows();
  const index n = c.cols();
  const index p = ta == Trans::No ? a.cols() : a.rows();
  assert((ta == Trans::No ? a.rows() : a.cols()) == m);
  assert((tb == Trans::No ? b.rows() : b.cols()) == p);
  assert((tb == Trans::No ? b.cols() : b.rows()) == n);
  for (index i = 0; i < m; ++i)
    for (index j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index l = 0; l < p; ++l) {
        const double av = ta == Trans::No ? a(i, l) : a(l, i);
        const double bv = tb == Trans::No ? b(l, j) : b(j, l);
        acc += av * bv;
      }
      c(i, j) = beta == 0.0 ? alpha * acc : alpha * acc + beta * c(i, j);
    }
}

Matrix dense_triangle(ConstMatrixView t, Uplo uplo, Diag diag) {
  const index n = t.rows();
  assert(t.cols() == n);
  Matrix d(n, n);
  for (index j = 0; j < n; ++j)
    for (index i = 0; i < n; ++i) {
      const bool in_triangle = uplo == Uplo::Upper ? i <= j : i >= j;
      if (!in_triangle) continue;
      d(i, j) = (i == j && diag == Diag::Unit) ? 1.0 : t(i, j);
    }
  return d;
}

}  // namespace pitk::la::ref
