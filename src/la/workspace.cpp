#include "la/workspace.hpp"

#include <algorithm>
#include <cassert>

namespace pitk::la {

namespace {

/// Allocation granularity in doubles: one cache line, so consecutive borrows
/// never share a line (matters when different borrows are written by code the
/// compiler vectorizes with unaligned tails).
constexpr std::size_t kGranule = cache_line_bytes / sizeof(double);

/// First chunk size (doubles): 64 KiB, enough for all small-state smoother
/// steps without any growth.
constexpr std::size_t kMinChunk = 8192;

std::size_t round_up(std::size_t n) { return (n + kGranule - 1) / kGranule * kGranule; }

}  // namespace

double* Workspace::bump(std::size_t n) {
  n = std::max<std::size_t>(round_up(n), kGranule);
  // Advance through existing chunks (rewound chunks keep their capacity).
  while (cur_ < chunks_.size()) {
    Chunk& c = chunks_[cur_];
    if (c.data.size() - c.used >= n) {
      double* p = c.data.data() + c.used;
      c.used += n;
      std::size_t total = 0;
      for (const Chunk& ch : chunks_) total += ch.used;
      high_water_ = std::max(high_water_, total);
      return p;
    }
    if (cur_ + 1 == chunks_.size()) break;
    ++cur_;
  }
  // Grow: geometric in total capacity so long solves settle after O(log)
  // chunks; never smaller than the request.
  const std::size_t want = std::max({n, kMinChunk, capacity()});
  Chunk fresh;
  fresh.data.resize(want);
  fresh.used = n;
  chunks_.push_back(std::move(fresh));
  cur_ = chunks_.size() - 1;
  std::size_t total = 0;
  for (const Chunk& ch : chunks_) total += ch.used;
  high_water_ = std::max(high_water_, total);
  return chunks_.back().data.data();
}

void Workspace::rewind(std::size_t chunk, std::size_t used) noexcept {
  for (std::size_t c = chunk + 1; c < chunks_.size(); ++c) chunks_[c].used = 0;
  if (chunk < chunks_.size()) chunks_[chunk].used = used;
  cur_ = chunk;
}

void Workspace::reset() {
  assert(live_scopes_ == 0 && "Workspace::reset with live scopes");
  if (chunks_.size() <= 1) {
    if (!chunks_.empty()) chunks_.front().used = 0;
    cur_ = 0;
    return;
  }
  const std::size_t total = capacity();
  chunks_.clear();
  Chunk merged;
  merged.data.resize(total);
  chunks_.push_back(std::move(merged));
  cur_ = 0;
}

std::size_t Workspace::capacity() const noexcept {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.data.size();
  return total;
}

Workspace& tls_workspace() noexcept {
  thread_local Workspace ws;
  return ws;
}

}  // namespace pitk::la
