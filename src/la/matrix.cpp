#include "la/matrix.hpp"

namespace pitk::la {

Matrix to_matrix(ConstMatrixView v) {
  Matrix m(v.rows(), v.cols());
  m.view().assign(v);
  return m;
}

Matrix vstack(ConstMatrixView a, ConstMatrixView b) {
  if (a.rows() == 0) return to_matrix(b);
  if (b.rows() == 0) return to_matrix(a);
  assert(a.cols() == b.cols());
  Matrix m(a.rows() + b.rows(), a.cols());
  m.block(0, 0, a.rows(), a.cols()).assign(a);
  m.block(a.rows(), 0, b.rows(), b.cols()).assign(b);
  return m;
}

Matrix hstack(ConstMatrixView a, ConstMatrixView b) {
  if (a.cols() == 0) return to_matrix(b);
  if (b.cols() == 0) return to_matrix(a);
  assert(a.rows() == b.rows());
  Matrix m(a.rows(), a.cols() + b.cols());
  m.block(0, 0, a.rows(), a.cols()).assign(a);
  m.block(0, a.cols(), b.rows(), b.cols()).assign(b);
  return m;
}

}  // namespace pitk::la
