#include "kalman/dense_reference.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;
using la::Vector;

TEST(DenseSystem, AssemblyLayout) {
  // 1-D constant position: u_1 = u_0 + c, both states observed directly.
  Problem p;
  p.start(1);
  p.observe(Matrix({{2.0}}), Vector({4.0}), CovFactor::identity(1));
  p.evolve(Matrix({{1.0}}), Vector({0.5}), CovFactor::scaled_identity(1, 4.0));
  p.observe(Matrix({{1.0}}), Vector({3.0}), CovFactor::identity(1));

  DenseSystem sys = build_dense_system(p);
  ASSERT_EQ(sys.A.rows(), 3);
  ASSERT_EQ(sys.A.cols(), 2);
  // Row 0: observation of state 0 (unweighted: identity L).
  EXPECT_EQ(sys.A(0, 0), 2.0);
  EXPECT_EQ(sys.A(0, 1), 0.0);
  EXPECT_EQ(sys.b[0], 4.0);
  // Row 1: evolution [-B D] weighted by V = 1/2.
  EXPECT_NEAR(sys.A(1, 0), -0.5, 1e-15);
  EXPECT_NEAR(sys.A(1, 1), 0.5, 1e-15);
  EXPECT_NEAR(sys.b[1], 0.25, 1e-15);
  // Row 2: observation of state 1.
  EXPECT_EQ(sys.A(2, 1), 1.0);
  EXPECT_EQ(sys.b[2], 3.0);
  EXPECT_EQ(sys.col_off[0], 0);
  EXPECT_EQ(sys.col_off[1], 1);
}

TEST(DenseSmooth, MatchesNormalEquationsOnRandomProblem) {
  Rng rng(31);
  test::RandomProblemSpec spec;
  spec.k = 8;
  spec.n_min = spec.n_max = 3;
  spec.dense_covariances = true;
  Problem p = test::random_problem(rng, spec);

  SmootherResult res = dense_smooth(p, /*with_cov=*/true);

  // Solve the same system through the normal equations as an independent
  // oracle: (A^T A) x = A^T b with A the weighted dense matrix.
  DenseSystem sys = build_dense_system(p);
  Matrix ata = la::multiply(sys.A.view(), Trans::Yes, sys.A.view(), Trans::No);
  Vector atb(sys.A.cols());
  la::gemv(1.0, sys.A.view(), Trans::Yes, sys.b.span(), 0.0, atb.span());
  auto x = la::spd_solve(ata.view(), atb.as_matrix());
  ASSERT_TRUE(x.has_value());

  index off = 0;
  for (index i = 0; i <= p.last_index(); ++i) {
    const index n = p.state_dim(i);
    for (index q = 0; q < n; ++q)
      EXPECT_NEAR(res.means[static_cast<std::size_t>(i)][q], (*x)(off + q, 0), 1e-8);
    off += n;
  }

  // Covariances must equal the diagonal blocks of (A^T A)^{-1}.
  auto sinv = la::spd_inverse(ata.view());
  ASSERT_TRUE(sinv.has_value());
  off = 0;
  for (index i = 0; i <= p.last_index(); ++i) {
    const index n = p.state_dim(i);
    test::expect_near(res.covariances[static_cast<std::size_t>(i)].view(),
                      sinv->view().block(off, off, n, n), 1e-8,
                      "cov " + std::to_string(i));
    off += n;
  }
}

TEST(DenseSmooth, SingleStateProblem) {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::scaled_identity(2, 0.25));
  SmootherResult res = dense_smooth(p, true);
  ASSERT_EQ(res.means.size(), 1u);
  EXPECT_NEAR(res.means[0][0], 1.0, 1e-12);
  EXPECT_NEAR(res.means[0][1], 2.0, 1e-12);
  test::expect_near(res.covariances[0].view(), Matrix({{0.25, 0.0}, {0.0, 0.25}}).view(), 1e-12);
}

TEST(DenseSmooth, RejectsInvalidProblem) {
  Problem p;
  p.start(2);  // unobserved, under-determined
  EXPECT_THROW((void)dense_smooth(p, false), std::invalid_argument);
}

TEST(DenseSmooth, NoCovRequestSkipsCovariances) {
  Rng rng(37);
  test::RandomProblemSpec spec;
  spec.k = 3;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  SmootherResult res = dense_smooth(p, false);
  EXPECT_FALSE(res.has_covariances());
  EXPECT_EQ(res.means.size(), 4u);
}

}  // namespace
}  // namespace pitk::kalman
