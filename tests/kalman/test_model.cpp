#include "kalman/model.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

Problem tiny_valid_problem() {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  p.evolve(Matrix::identity(2), Vector({0.1, 0.0}), CovFactor::identity(2));
  p.observe(Matrix({{1.0, 0.0}}), Vector({1.5}), CovFactor::identity(1));
  return p;
}

TEST(Model, BuilderProducesConsistentShape) {
  Problem p = tiny_valid_problem();
  EXPECT_EQ(p.num_states(), 2);
  EXPECT_EQ(p.state_dim(0), 2);
  EXPECT_EQ(p.state_dim(1), 2);
  EXPECT_EQ(p.total_state_dim(), 4);
  EXPECT_EQ(p.total_row_dim(), 2 + 2 + 1);
  EXPECT_FALSE(p.validate().has_value());
}

TEST(Model, ValidateCatchesMissingEvolution) {
  std::vector<TimeStep> steps(2);
  steps[0].n = 2;
  steps[1].n = 2;
  Problem p = Problem::from_steps(std::move(steps));
  auto err = p.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("evolution"), std::string::npos);
}

TEST(Model, ValidateCatchesShapeMismatches) {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  p.evolve(Matrix::identity(2), Vector(), CovFactor::identity(2));
  // Wrong G columns.
  p.observe(Matrix({{1.0, 0.0, 0.0}}), Vector({1.0}), CovFactor::identity(1));
  EXPECT_TRUE(p.validate().has_value());
}

TEST(Model, ValidateCatchesUnderdeterminedOnlyWhenRequired) {
  Problem p;
  p.start(3);  // never observed, no prior
  p.evolve(Matrix::identity(3), Vector(), CovFactor::identity(3));
  EXPECT_TRUE(p.validate(/*require_overdetermined=*/true).has_value());
  // Prior-based smoothers are allowed to process it (the prior anchors u_0).
  EXPECT_FALSE(p.validate().has_value());
}

TEST(Model, ValidateCatchesEvolutionOnStepZero) {
  std::vector<TimeStep> steps(1);
  steps[0].n = 2;
  Evolution e;
  e.F = Matrix::identity(2);
  e.noise = CovFactor::identity(2);
  steps[0].evolution = std::move(e);
  Problem p = Problem::from_steps(std::move(steps));
  EXPECT_TRUE(p.validate().has_value());
}

TEST(Model, RectangularHValidation) {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({0.0, 0.0}), CovFactor::identity(2));
  // H: 3x3 but F rows 3 and n stays 3 -> mismatch with declared n_new=2.
  Matrix h(3, 2);
  h(0, 0) = 1.0;
  h(1, 1) = 1.0;
  Matrix f(3, 2);
  p.evolve_rect(2, h, f, Vector(), CovFactor::identity(3));
  EXPECT_FALSE(p.validate().has_value());
}

TEST(Model, WeighStepAppliesFactors) {
  Rng rng(23);
  TimeStep s;
  s.n = 2;
  Evolution e;
  e.F = la::random_gaussian(rng, 2, 2);
  e.c = Vector({1.0, -1.0});
  e.noise = CovFactor::scaled_identity(2, 4.0);  // weighting divides by 2
  s.evolution = std::move(e);
  Observation ob;
  ob.G = la::random_gaussian(rng, 1, 2);
  ob.o = Vector({3.0});
  ob.noise = CovFactor::scaled_identity(1, 0.25);  // weighting multiplies by 2
  s.observation = std::move(ob);

  WeightedStep w = weigh_step(s);
  EXPECT_EQ(w.B.rows(), 2);
  EXPECT_NEAR(w.B(0, 0), s.evolution->F(0, 0) / 2.0, 1e-15);
  EXPECT_NEAR(w.cw[0], 0.5, 1e-15);
  EXPECT_NEAR(w.C(0, 0), s.observation->G(0, 0) * 2.0, 1e-15);
  EXPECT_NEAR(w.ow[0], 6.0, 1e-15);
  // Identity H weighted: D = V.
  EXPECT_NEAR(w.D(0, 0), 0.5, 1e-15);
  EXPECT_NEAR(w.D(0, 1), 0.0, 1e-15);
}

TEST(Model, WeighStepWithoutObservationGivesZeroRowC) {
  TimeStep s;
  s.n = 3;
  WeightedStep w = weigh_step(s);
  EXPECT_EQ(w.C.rows(), 0);
  EXPECT_EQ(w.C.cols(), 3);
  EXPECT_EQ(w.ow.size(), 0);
}

TEST(Model, WithPriorObservationNoExistingObservation) {
  Problem p;
  p.start(2);
  p.evolve(Matrix::identity(2), Vector(), CovFactor::identity(2));
  p.observe(Matrix::identity(2), Vector({1.0, 1.0}), CovFactor::identity(2));

  GaussianPrior prior;
  prior.mean = Vector({5.0, 6.0});
  prior.cov = Matrix({{2.0, 0.0}, {0.0, 3.0}});
  Problem q = with_prior_observation(p, prior);
  ASSERT_TRUE(q.step(0).observation.has_value());
  const Observation& ob = *q.step(0).observation;
  EXPECT_EQ(ob.rows(), 2);
  test::expect_near(ob.o.span(), prior.mean.span(), 0.0);
  test::expect_near(ob.noise.covariance().view(), prior.cov.view(), 1e-14);
  EXPECT_FALSE(q.validate().has_value());
}

TEST(Model, WithPriorObservationStacksExisting) {
  Problem p = tiny_valid_problem();
  GaussianPrior prior;
  prior.mean = Vector({0.0, 0.0});
  prior.cov = Matrix::identity(2);
  Problem q = with_prior_observation(p, prior);
  const Observation& ob = *q.step(0).observation;
  EXPECT_EQ(ob.rows(), 4);  // 2 prior rows + 2 original rows
  EXPECT_EQ(ob.G(0, 0), 1.0);
  EXPECT_EQ(ob.o[2], 1.0);  // original observation follows the prior block
  EXPECT_FALSE(q.validate().has_value());
}

TEST(Model, WithPriorObservationShapeMismatchThrows) {
  Problem p = tiny_valid_problem();
  GaussianPrior prior;
  prior.mean = Vector({0.0});
  prior.cov = Matrix::identity(1);
  EXPECT_THROW((void)with_prior_observation(p, prior), std::invalid_argument);
}

TEST(Model, BuilderMisuseThrows) {
  Problem p;
  EXPECT_THROW(p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2)),
               std::logic_error);
  EXPECT_THROW(p.evolve(Matrix::identity(2), Vector(), CovFactor::identity(2)), std::logic_error);
  p.start(2);
  EXPECT_THROW(p.start(2), std::logic_error);
}

}  // namespace
}  // namespace pitk::kalman
