#include "kalman/rts.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kalman/dense_reference.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

TEST(Rts, MatchesDenseReferenceOnCommonProblems) {
  Rng rng(41);
  for (int rep = 0; rep < 5; ++rep) {
    test::CommonProblem cp = test::common_problem(rng, 3, 12, rep % 2 == 1);
    SmootherResult rts = rts_smooth(cp.for_conventional, cp.prior);
    SmootherResult ref = dense_smooth(cp.for_qr, true);
    test::expect_means_near(rts.means, ref.means, 1e-8, "rep " + std::to_string(rep));
    test::expect_covs_near(rts.covariances, ref.covariances, 1e-8, "rep " + std::to_string(rep));
  }
}

TEST(Rts, FilterMatchesDenseOnLastState) {
  // The filtered estimate of the final state equals the smoothed one.
  Rng rng(43);
  test::CommonProblem cp = test::common_problem(rng, 2, 9);
  FilterResult filt = kalman_filter(cp.for_conventional, cp.prior);
  SmootherResult ref = dense_smooth(cp.for_qr, true);
  const std::size_t k = filt.means.size() - 1;
  test::expect_near(filt.means[k].span(), ref.means[k].span(), 1e-8);
  test::expect_near(filt.covariances[k].view(), ref.covariances[k].view(), 1e-8);
}

TEST(Rts, SmootherNeverInflatesFilterCovariance) {
  Rng rng(47);
  test::CommonProblem cp = test::common_problem(rng, 3, 15);
  FilterResult filt = kalman_filter(cp.for_conventional, cp.prior);
  SmootherResult smth = rts_smooth(cp.for_conventional, cp.prior);
  for (std::size_t i = 0; i < filt.means.size(); ++i) {
    // P_filter - P_smooth must be PSD; check the trace and diagonal.
    for (index q = 0; q < filt.covariances[i].rows(); ++q)
      EXPECT_GE(filt.covariances[i](q, q) - smth.covariances[i](q, q), -1e-10)
          << "state " << i << " component " << q;
  }
}

TEST(Rts, HandlesUnobservedSteps) {
  Rng rng(53);
  SimSpec spec = constant_velocity_spec(1, 30, 0.1, 0.05, 0.2, Vector({0.0, 1.0}));
  auto base_g = spec.G;
  spec.G = [base_g](index i) { return i % 3 == 0 ? base_g(i) : Matrix(); };
  Simulation sim = simulate(rng, spec);
  GaussianPrior prior;
  prior.mean = Vector({0.0, 1.0});
  prior.cov = Matrix::identity(2);
  SmootherResult res = rts_smooth(sim.problem, prior);
  SmootherResult ref = dense_smooth(with_prior_observation(sim.problem, prior), true);
  test::expect_means_near(res.means, ref.means, 1e-8);
  test::expect_covs_near(res.covariances, ref.covariances, 1e-8);
}

TEST(Rts, TracksSimulatedTrajectory) {
  Rng rng(59);
  SimSpec spec = constant_velocity_spec(1, 200, 0.1, 0.02, 0.5, Vector({0.0, 1.0}));
  Simulation sim = simulate(rng, spec);
  GaussianPrior prior;
  prior.mean = Vector({0.0, 1.0});
  prior.cov = Matrix::identity(2);
  SmootherResult res = rts_smooth(sim.problem, prior);
  // Smoothed positions must beat raw observations in RMSE.
  double obs_err = 0.0;
  double smooth_err = 0.0;
  int count = 0;
  for (index i = 0; i <= spec.k; ++i) {
    if (!sim.problem.step(i).observation) continue;
    const double truth = sim.truth[static_cast<std::size_t>(i)][0];
    obs_err += std::pow(sim.problem.step(i).observation->o[0] - truth, 2);
    smooth_err += std::pow(res.means[static_cast<std::size_t>(i)][0] - truth, 2);
    ++count;
  }
  EXPECT_LT(smooth_err, obs_err) << "smoother should denoise the observations (count=" << count
                                 << ")";
}

TEST(Rts, RejectsRectangularH) {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({0.0, 0.0}), CovFactor::identity(2));
  Matrix h(3, 2);
  h(0, 0) = 1.0;
  h(1, 1) = 1.0;
  h(2, 0) = 1.0;
  p.evolve_rect(2, h, Matrix(3, 2), Vector(), CovFactor::identity(3));
  p.observe(Matrix::identity(2), Vector({0.0, 0.0}), CovFactor::identity(2));
  GaussianPrior prior;
  prior.mean = Vector({0.0, 0.0});
  prior.cov = Matrix::identity(2);
  EXPECT_THROW((void)rts_smooth(p, prior), std::invalid_argument);
}

TEST(Rts, PriorDimensionMismatchThrows) {
  Rng rng(61);
  test::CommonProblem cp = test::common_problem(rng, 2, 3);
  GaussianPrior bad;
  bad.mean = Vector({0.0, 0.0, 0.0});
  bad.cov = Matrix::identity(3);
  EXPECT_THROW((void)rts_smooth(cp.for_conventional, bad), std::invalid_argument);
}

TEST(Rts, SingleStepProblem) {
  Problem p;
  p.start(1);
  p.observe(Matrix({{1.0}}), Vector({2.0}), CovFactor::identity(1));
  GaussianPrior prior;
  prior.mean = Vector({0.0});
  prior.cov = Matrix({{1.0}});
  SmootherResult res = rts_smooth(p, prior);
  // Posterior of two unit-variance measurements 0 and 2: mean 1, var 1/2.
  EXPECT_NEAR(res.means[0][0], 1.0, 1e-12);
  EXPECT_NEAR(res.covariances[0](0, 0), 0.5, 1e-12);
}

}  // namespace
}  // namespace pitk::kalman
