#include "kalman/simulate.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

TEST(PaperBenchmark, ShapeMatchesSection52) {
  Rng rng(1);
  const index n = 6;
  const index k = 20;
  Problem p = make_paper_benchmark(rng, n, k);
  ASSERT_EQ(p.num_states(), k + 1);
  EXPECT_FALSE(p.validate().has_value());
  for (index i = 0; i <= k; ++i) {
    EXPECT_EQ(p.state_dim(i), n);
    ASSERT_TRUE(p.step(i).observation.has_value());
    EXPECT_EQ(p.step(i).observation->rows(), n);
    EXPECT_EQ(p.step(i).observation->noise.kind(), CovFactor::Kind::Identity);
    if (i > 0) {
      ASSERT_TRUE(p.step(i).evolution.has_value());
      EXPECT_TRUE(p.step(i).evolution->identity_h());
      EXPECT_EQ(p.step(i).evolution->noise.kind(), CovFactor::Kind::Identity);
    }
  }
}

TEST(PaperBenchmark, FAndGAreOrthonormalAndSharedAcrossSteps) {
  Rng rng(2);
  Problem p = make_paper_benchmark(rng, 5, 8);
  const Matrix& f = p.step(1).evolution->F;
  Matrix ftf = la::multiply(f.view(), la::Trans::Yes, f.view(), la::Trans::No);
  test::expect_near(ftf.view(), Matrix::identity(5).view(), 1e-12, "F^T F");
  // Fixed across steps (the paper uses one F and one G for all i).
  test::expect_near(p.step(3).evolution->F.view(), f.view(), 0.0);
  test::expect_near(p.step(4).observation->G.view(), p.step(0).observation->G.view(), 0.0);
}

TEST(PaperBenchmark, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  Problem pa = make_paper_benchmark(a, 4, 5);
  Problem pb = make_paper_benchmark(b, 4, 5);
  test::expect_near(pa.step(2).observation->o.span(), pb.step(2).observation->o.span(), 0.0);
}

TEST(DiffusePrior, ShapeAndScale) {
  GaussianPrior p = diffuse_prior(3, 1e4);
  EXPECT_EQ(p.mean.size(), 3);
  EXPECT_EQ(p.cov(1, 1), 1e4);
  EXPECT_EQ(p.cov(0, 1), 0.0);
}

TEST(Simulate, TrajectoryFollowsDynamicsUpToNoise) {
  Rng rng(3);
  SimSpec spec = constant_velocity_spec(1, 50, 0.1, 1e-6, 1e-6, Vector({0.0, 1.0}));
  Simulation sim = simulate(rng, spec);
  ASSERT_EQ(static_cast<index>(sim.truth.size()), 51);
  EXPECT_FALSE(sim.problem.validate().has_value());
  // With nearly-zero noise the truth is p(t) = t*dt, v = 1.
  EXPECT_NEAR(sim.truth[50][0], 5.0, 1e-3);
  EXPECT_NEAR(sim.truth[50][1], 1.0, 1e-3);
  // Observations track positions.
  EXPECT_NEAR(sim.problem.step(50).observation->o[0], 5.0, 1e-3);
}

TEST(Simulate, MissingObservationsWhenGEmpty) {
  Rng rng(4);
  SimSpec spec = constant_velocity_spec(1, 10, 0.1, 0.01, 0.1, Vector({0.0, 0.0}));
  auto base_g = spec.G;
  spec.G = [base_g](index i) { return i % 2 == 0 ? base_g(i) : Matrix(); };
  Simulation sim = simulate(rng, spec);
  EXPECT_TRUE(sim.problem.step(0).observation.has_value());
  EXPECT_FALSE(sim.problem.step(1).observation.has_value());
  EXPECT_TRUE(sim.problem.step(2).observation.has_value());
}

TEST(Simulate, MissingCallbacksThrow) {
  SimSpec spec;
  spec.x0 = Vector({0.0});
  spec.k = 1;
  Rng rng(1);
  EXPECT_THROW((void)simulate(rng, spec), std::invalid_argument);
}

TEST(ConstantVelocity, SpecShapes) {
  SimSpec spec = constant_velocity_spec(2, 5, 0.5, 0.1, 0.2, Vector({0, 1, 0, -1}));
  Matrix f = spec.F(1);
  EXPECT_EQ(f.rows(), 4);
  EXPECT_EQ(f(0, 1), 0.5);
  EXPECT_EQ(f(2, 3), 0.5);
  Matrix g = spec.G(0);
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g(1, 2), 1.0);
  EXPECT_THROW((void)constant_velocity_spec(2, 5, 0.5, 0.1, 0.2, Vector({0, 1})),
               std::invalid_argument);
}

}  // namespace
}  // namespace pitk::kalman
