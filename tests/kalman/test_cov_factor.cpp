#include "kalman/cov_factor.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;
using la::Vector;

/// For any factor: (V B)^T (V B) must equal B^T Cov^{-1} B.
void check_weighting_identity(const CovFactor& f, Rng& rng) {
  const index n = f.dim();
  Matrix b = la::random_gaussian(rng, n, 3);
  Matrix vb = f.weighted(b.view());
  Matrix lhs = la::multiply(vb.view(), Trans::Yes, vb.view(), Trans::No);

  auto cinv = la::spd_inverse(f.covariance().view());
  ASSERT_TRUE(cinv.has_value());
  Matrix cb = la::multiply(cinv->view(), b.view());
  Matrix rhs = la::multiply(b.view(), Trans::Yes, cb.view(), Trans::No);
  test::expect_near(lhs.view(), rhs.view(), 1e-10);
}

TEST(CovFactor, IdentityWeightingIsNoop) {
  Rng rng(3);
  CovFactor f = CovFactor::identity(4);
  EXPECT_EQ(f.kind(), CovFactor::Kind::Identity);
  EXPECT_EQ(f.dim(), 4);
  Matrix b = la::random_gaussian(rng, 4, 2);
  Matrix w = f.weighted(b.view());
  test::expect_near(w.view(), b.view(), 0.0);
  test::expect_near(f.covariance().view(), Matrix::identity(4).view(), 0.0);
}

TEST(CovFactor, DiagonalWeighting) {
  Rng rng(5);
  Vector v({4.0, 9.0, 16.0});
  CovFactor f = CovFactor::diagonal(std::move(v));
  EXPECT_EQ(f.kind(), CovFactor::Kind::Diagonal);
  Vector x({8.0, 9.0, 4.0});
  Vector w = f.weighted(x.span());
  EXPECT_NEAR(w[0], 4.0, 1e-15);   // 8/2
  EXPECT_NEAR(w[1], 3.0, 1e-15);   // 9/3
  EXPECT_NEAR(w[2], 1.0, 1e-15);   // 4/4
  check_weighting_identity(f, rng);
}

TEST(CovFactor, DiagonalRejectsNonPositive) {
  EXPECT_THROW((void)CovFactor::diagonal(Vector({1.0, 0.0})), std::invalid_argument);
  EXPECT_THROW((void)CovFactor::diagonal(Vector({-1.0})), std::invalid_argument);
}

TEST(CovFactor, DenseRoundTripsCovariance) {
  Rng rng(7);
  Matrix cov = la::random_spd(rng, 5, 40.0);
  CovFactor f = CovFactor::dense(cov);
  EXPECT_EQ(f.kind(), CovFactor::Kind::Dense);
  test::expect_near(f.covariance().view(), cov.view(), 1e-12);
  check_weighting_identity(f, rng);
}

TEST(CovFactor, DenseRejectsIndefinite) {
  Matrix bad({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_THROW((void)CovFactor::dense(bad), std::invalid_argument);
  Matrix rect(2, 3);
  EXPECT_THROW((void)CovFactor::dense(rect), std::invalid_argument);
}

TEST(CovFactor, ScaledIdentity) {
  Rng rng(11);
  CovFactor f = CovFactor::scaled_identity(3, 0.25);
  Vector x({2.0, 4.0, 6.0});
  Vector w = f.weighted(x.span());
  EXPECT_NEAR(w[0], 4.0, 1e-14);  // x / 0.5
  check_weighting_identity(f, rng);
}

TEST(CovFactor, SampleCovarianceMatchesRequested) {
  Rng rng(13);
  Matrix cov({{2.0, 0.6}, {0.6, 1.0}});
  CovFactor f = CovFactor::dense(cov);
  const int n = 40000;
  Matrix acc(2, 2);
  for (int s = 0; s < n; ++s) {
    Vector z = f.sample(rng);
    for (index i = 0; i < 2; ++i)
      for (index j = 0; j < 2; ++j) acc(i, j) += z[i] * z[j];
  }
  la::scale(1.0 / n, acc.view());
  test::expect_near(acc.view(), cov.view(), 0.08, "empirical covariance");
}

TEST(CovFactor, WeightInPlaceMatchesWeighted) {
  Rng rng(17);
  CovFactor f = CovFactor::dense(la::random_spd(rng, 4, 10.0));
  Matrix b = la::random_gaussian(rng, 4, 3);
  Matrix copy = b;
  f.weight_in_place(copy.view());
  Matrix w = f.weighted(b.view());
  test::expect_near(copy.view(), w.view(), 0.0);
}

}  // namespace
}  // namespace pitk::kalman
