#include "kalman/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "kalman/dense_reference.hpp"
#include "kalman/simulate.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

void expect_problems_equal(const Problem& a, const Problem& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  for (index i = 0; i < a.num_states(); ++i) {
    const TimeStep& sa = a.step(i);
    const TimeStep& sb = b.step(i);
    ASSERT_EQ(sa.n, sb.n) << i;
    ASSERT_EQ(sa.evolution.has_value(), sb.evolution.has_value()) << i;
    if (sa.evolution) {
      test::expect_near(sa.evolution->F.view(), sb.evolution->F.view(), 0.0);
      ASSERT_EQ(sa.evolution->identity_h(), sb.evolution->identity_h()) << i;
      if (!sa.evolution->identity_h())
        test::expect_near(sa.evolution->H.view(), sb.evolution->H.view(), 0.0);
      ASSERT_EQ(sa.evolution->c.empty(), sb.evolution->c.empty());
      if (!sa.evolution->c.empty())
        test::expect_near(sa.evolution->c.span(), sb.evolution->c.span(), 0.0);
      test::expect_near(sa.evolution->noise.covariance().view(),
                        sb.evolution->noise.covariance().view(), 1e-15);
    }
    ASSERT_EQ(sa.observation.has_value(), sb.observation.has_value()) << i;
    if (sa.observation) {
      test::expect_near(sa.observation->G.view(), sb.observation->G.view(), 0.0);
      test::expect_near(sa.observation->o.span(), sb.observation->o.span(), 0.0);
      test::expect_near(sa.observation->noise.covariance().view(),
                        sb.observation->noise.covariance().view(), 1e-15);
    }
  }
}

class IoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTrip, WriteReadPreservesEverything) {
  Rng rng(300 + GetParam());
  test::RandomProblemSpec spec;
  spec.k = 7;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = GetParam() % 2 == 0;
  spec.rectangular_h = GetParam() % 3 == 0;
  spec.obs_probability = 0.6;
  spec.dense_covariances = GetParam() % 2 == 1;
  spec.diagonal_covariances = GetParam() % 3 == 1;
  Problem p = test::random_problem(rng, spec);

  std::stringstream ss;
  write_problem(ss, p);
  Problem q = read_problem(ss);
  expect_problems_equal(p, q);

  // The round-tripped problem must solve to the same answer.  Dense
  // covariances re-factor (chol of chol*chol^T) on load, so agreement is to
  // a few ulps rather than bitwise.
  SmootherResult ra = dense_smooth(p, false);
  SmootherResult rb = dense_smooth(q, false);
  test::expect_means_near(ra.means, rb.means, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Variants, IoRoundTrip, ::testing::Range(0, 6));

TEST(Io, PaperBenchmarkRoundTrip) {
  Rng rng(42);
  Problem p = make_paper_benchmark(rng, 4, 9);
  std::stringstream ss;
  write_problem(ss, p);
  expect_problems_equal(p, read_problem(ss));
}

TEST(Io, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_problem(ss);
  };
  EXPECT_THROW((void)parse(""), std::runtime_error);
  EXPECT_THROW((void)parse("not-a-problem 1"), std::runtime_error);
  EXPECT_THROW((void)parse("pitk-problem 2\nstates 1\n"), std::runtime_error);
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 0\nend\n"), std::runtime_error);
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 2\nstate 0 1\nend\n"), std::runtime_error);
  // Observation before any state.
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 1\nobservation 1\n"), std::runtime_error);
  // Evolution on state 0.
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 1\nstate 0 1\nevolution 1 identity\nF 1\n"
                           "c zero\nK identity 1\nend\n"),
               std::runtime_error);
  // Covariance dimension mismatch.
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 1\nstate 0 1\nobservation 1\nG 1\no 2\n"
                           "L identity 2\nend\n"),
               std::runtime_error);
}

TEST(Io, ResultCsvLayout) {
  SmootherResult res;
  res.means.push_back(Vector({1.0, 2.0}));
  res.means.push_back(Vector({3.0, 4.0}));
  res.covariances.push_back(Matrix({{4.0, 0.0}, {0.0, 9.0}}));
  res.covariances.push_back(Matrix({{1.0, 0.0}, {0.0, 16.0}}));
  std::stringstream ss;
  write_result_csv(ss, res);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "state,component,mean,sigma");
  std::getline(ss, line);
  EXPECT_EQ(line, "0,0,1,2");
  std::getline(ss, line);
  EXPECT_EQ(line, "0,1,2,3");
  std::getline(ss, line);
  EXPECT_EQ(line, "1,0,3,1");
  std::getline(ss, line);
  EXPECT_EQ(line, "1,1,4,4");
}

TEST(Io, FileRoundTrip) {
  Rng rng(77);
  Problem p = make_paper_benchmark(rng, 3, 4);
  const std::string path = testing::TempDir() + "/pitk_io_test_problem.txt";
  save_problem(path, p);
  Problem q = load_problem(path);
  expect_problems_equal(p, q);
  EXPECT_THROW((void)load_problem("/nonexistent/path/x.txt"), std::runtime_error);
}

}  // namespace
}  // namespace pitk::kalman
