#include "kalman/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "kalman/dense_reference.hpp"
#include "kalman/simulate.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

void expect_problems_equal(const Problem& a, const Problem& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  for (index i = 0; i < a.num_states(); ++i) {
    const TimeStep& sa = a.step(i);
    const TimeStep& sb = b.step(i);
    ASSERT_EQ(sa.n, sb.n) << i;
    ASSERT_EQ(sa.evolution.has_value(), sb.evolution.has_value()) << i;
    if (sa.evolution) {
      test::expect_near(sa.evolution->F.view(), sb.evolution->F.view(), 0.0);
      ASSERT_EQ(sa.evolution->identity_h(), sb.evolution->identity_h()) << i;
      if (!sa.evolution->identity_h())
        test::expect_near(sa.evolution->H.view(), sb.evolution->H.view(), 0.0);
      ASSERT_EQ(sa.evolution->c.empty(), sb.evolution->c.empty());
      if (!sa.evolution->c.empty())
        test::expect_near(sa.evolution->c.span(), sb.evolution->c.span(), 0.0);
      test::expect_near(sa.evolution->noise.covariance().view(),
                        sb.evolution->noise.covariance().view(), 1e-15);
    }
    ASSERT_EQ(sa.observation.has_value(), sb.observation.has_value()) << i;
    if (sa.observation) {
      test::expect_near(sa.observation->G.view(), sb.observation->G.view(), 0.0);
      test::expect_near(sa.observation->o.span(), sb.observation->o.span(), 0.0);
      test::expect_near(sa.observation->noise.covariance().view(),
                        sb.observation->noise.covariance().view(), 1e-15);
    }
  }
}

class IoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTrip, WriteReadPreservesEverything) {
  Rng rng(300 + GetParam());
  test::RandomProblemSpec spec;
  spec.k = 7;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = GetParam() % 2 == 0;
  spec.rectangular_h = GetParam() % 3 == 0;
  spec.obs_probability = 0.6;
  spec.dense_covariances = GetParam() % 2 == 1;
  spec.diagonal_covariances = GetParam() % 3 == 1;
  Problem p = test::random_problem(rng, spec);

  std::stringstream ss;
  write_problem(ss, p);
  Problem q = read_problem(ss);
  expect_problems_equal(p, q);

  // The round-tripped problem must solve to the same answer.  Dense
  // covariances re-factor (chol of chol*chol^T) on load, so agreement is to
  // a few ulps rather than bitwise.
  SmootherResult ra = dense_smooth(p, false);
  SmootherResult rb = dense_smooth(q, false);
  test::expect_means_near(ra.means, rb.means, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Variants, IoRoundTrip, ::testing::Range(0, 6));

TEST(Io, RejectsEveryTruncation) {
  // A truncated problem file must always throw — never crash, hang, or
  // silently parse as a shorter valid problem (the text ends before the
  // mandatory "end" marker).
  Rng rng(1234);
  test::RandomProblemSpec spec;
  spec.k = 4;
  spec.n_min = 2;
  spec.n_max = 3;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  spec.dense_covariances = true;
  std::stringstream ss;
  write_problem(ss, test::random_problem(rng, spec));
  const std::string text = ss.str();
  const std::size_t end_marker = text.rfind("end");
  ASSERT_NE(end_marker, std::string::npos);
  // Most cuts fail in the reader (runtime_error); a cut inside a dense
  // covariance block can also surface as the CovFactor constructor rejecting
  // the half-read matrix (invalid_argument).  Either way: an exception, never
  // a silent short parse.
  for (std::size_t cut = 0; cut < end_marker; cut += 7) {
    std::stringstream trunc(text.substr(0, cut));
    EXPECT_THROW((void)read_problem(trunc), std::exception) << "cut=" << cut;
  }
}

TEST(Io, PaperBenchmarkRoundTrip) {
  Rng rng(42);
  Problem p = make_paper_benchmark(rng, 4, 9);
  std::stringstream ss;
  write_problem(ss, p);
  expect_problems_equal(p, read_problem(ss));
}

TEST(Io, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_problem(ss);
  };
  EXPECT_THROW((void)parse(""), std::runtime_error);
  EXPECT_THROW((void)parse("not-a-problem 1"), std::runtime_error);
  EXPECT_THROW((void)parse("pitk-problem 2\nstates 1\n"), std::runtime_error);
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 0\nend\n"), std::runtime_error);
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 2\nstate 0 1\nend\n"), std::runtime_error);
  // Observation before any state.
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 1\nobservation 1\n"), std::runtime_error);
  // Evolution on state 0.
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 1\nstate 0 1\nevolution 1 identity\nF 1\n"
                           "c zero\nK identity 1\nend\n"),
               std::runtime_error);
  // Covariance dimension mismatch.
  EXPECT_THROW((void)parse("pitk-problem 1\nstates 1\nstate 0 1\nobservation 1\nG 1\no 2\n"
                           "L identity 2\nend\n"),
               std::runtime_error);
}

TEST(Io, ResultCsvLayout) {
  SmootherResult res;
  res.means.push_back(Vector({1.0, 2.0}));
  res.means.push_back(Vector({3.0, 4.0}));
  res.covariances.push_back(Matrix({{4.0, 0.0}, {0.0, 9.0}}));
  res.covariances.push_back(Matrix({{1.0, 0.0}, {0.0, 16.0}}));
  std::stringstream ss;
  write_result_csv(ss, res);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "state,component,mean,sigma");
  std::getline(ss, line);
  EXPECT_EQ(line, "0,0,1,2");
  std::getline(ss, line);
  EXPECT_EQ(line, "0,1,2,3");
  std::getline(ss, line);
  EXPECT_EQ(line, "1,0,3,1");
  std::getline(ss, line);
  EXPECT_EQ(line, "1,1,4,4");
}

TEST(Io, ReadResultCsvRoundTrip) {
  SmootherResult res;
  res.means.push_back(Vector({1.5, -2.25}));
  res.means.push_back(Vector({3.0625, 4.75}));
  res.covariances.push_back(Matrix({{4.0, 0.0}, {0.0, 9.0}}));
  res.covariances.push_back(Matrix({{1.0, 0.0}, {0.0, 16.0}}));
  std::stringstream ss;
  write_result_csv(ss, res);
  ResultCsv back = read_result_csv(ss);
  ASSERT_EQ(back.means.size(), 2u);
  ASSERT_TRUE(back.has_sigmas());
  for (std::size_t i = 0; i < 2; ++i) {
    test::expect_near(back.means[i].span(), res.means[i].span(), 0.0);
    for (index q = 0; q < back.sigmas[i].size(); ++q)
      EXPECT_EQ(back.sigmas[i][q], std::sqrt(res.covariances[i](q, q)));
  }

  // Covariance-free results round-trip without the sigma column.
  res.covariances.clear();
  std::stringstream nc;
  write_result_csv(nc, res);
  ResultCsv back_nc = read_result_csv(nc);
  ASSERT_EQ(back_nc.means.size(), 2u);
  EXPECT_FALSE(back_nc.has_sigmas());
  test::expect_near(back_nc.means[1].span(), res.means[1].span(), 0.0);
}

TEST(Io, ReadResultCsvRejectsMalformed) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_result_csv(ss);
  };
  EXPECT_THROW((void)parse(""), std::runtime_error);
  EXPECT_THROW((void)parse("wrong,header\n"), std::runtime_error);
  // Missing column.
  EXPECT_THROW((void)parse("state,component,mean,sigma\n0,0,1.0\n"), std::runtime_error);
  // Extra column.
  EXPECT_THROW((void)parse("state,component,mean\n0,0,1.0,2.0\n"), std::runtime_error);
  // Non-numeric field.
  EXPECT_THROW((void)parse("state,component,mean\n0,x,1.0\n"), std::runtime_error);
  // State indices must be consecutive from 0.
  EXPECT_THROW((void)parse("state,component,mean\n1,0,1.0\n"), std::runtime_error);
  EXPECT_THROW((void)parse("state,component,mean\n0,0,1.0\n2,0,1.0\n"),
               std::runtime_error);
  // Component indices must be consecutive from 0.
  EXPECT_THROW((void)parse("state,component,mean\n0,1,1.0\n"), std::runtime_error);
  // Valid input still parses (sanity for the helper).
  ResultCsv ok = parse("state,component,mean\n0,0,1.0\n0,1,2.0\n1,0,3.0\n");
  ASSERT_EQ(ok.means.size(), 2u);
  EXPECT_EQ(ok.means[0].size(), 2);
  EXPECT_EQ(ok.means[1].size(), 1);
}

TEST(Io, FileRoundTrip) {
  Rng rng(77);
  Problem p = make_paper_benchmark(rng, 3, 4);
  const std::string path = testing::TempDir() + "/pitk_io_test_problem.txt";
  save_problem(path, p);
  Problem q = load_problem(path);
  expect_problems_equal(p, q);
  EXPECT_THROW((void)load_problem("/nonexistent/path/x.txt"), std::runtime_error);
}

}  // namespace
}  // namespace pitk::kalman
