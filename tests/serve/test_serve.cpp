/// \file test_serve.cpp
/// The serving-tier contract: stable tenant placement (hash, pin, hook),
/// deadline-flush correctness against direct submits across all five
/// backends, per-class admission under overload (besteffort sheds first,
/// interactive last), shard-aware durable journal placement + recovery, and
/// a TSan-able concurrent multi-tenant stress.
///
/// The ServeFault suite also runs in CI's fault-smoke leg with
/// PITK_FAULTS="engine.dequeue:delay:..." armed: per-request deadlines must
/// hold (every future resolves, slow jobs classify as DeadlineExceeded)
/// whether or not the dequeue path is artificially slowed.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pitk.hpp"
#include "test_util.hpp"

namespace pitk::serve {
namespace {

namespace fs = std::filesystem;
using engine::Backend;
using la::index;
using la::Rng;

kalman::Problem small_problem(Rng& rng, index n = 3, index k = 24) {
  return kalman::make_paper_benchmark(rng, n, k);
}

double max_deviation(const kalman::SmootherResult& got, const kalman::SmootherResult& ref) {
  double d = 0.0;
  for (std::size_t i = 0; i < ref.means.size(); ++i)
    d = std::max(d, la::max_abs_diff(got.means[i].span(), ref.means[i].span()));
  if (got.has_covariances() && ref.has_covariances())
    for (std::size_t i = 0; i < ref.covariances.size(); ++i)
      d = std::max(d, la::max_abs_diff(got.covariances[i].view(), ref.covariances[i].view()));
  return d;
}

ServeOptions two_shards() {
  ServeOptions so;
  so.shards = 2;
  so.threads_per_shard = 2;
  return so;
}

TEST(ServeTier, PlacementIsStableAcrossTierInstances) {
  std::vector<unsigned> first;
  {
    ServingTier tier(two_shards());
    for (int i = 0; i < 64; ++i)
      first.push_back(tier.shard_of("tenant-" + std::to_string(i)));
  }
  // A second tier (a "restarted process") places every tenant identically.
  ServingTier tier(two_shards());
  std::set<unsigned> used;
  for (int i = 0; i < 64; ++i) {
    const unsigned s = tier.shard_of("tenant-" + std::to_string(i));
    EXPECT_EQ(s, first[static_cast<std::size_t>(i)]) << "tenant-" << i;
    EXPECT_LT(s, tier.num_shards());
    used.insert(s);
  }
  // The hash actually spreads load (64 tenants never all land on one shard).
  EXPECT_EQ(used.size(), tier.num_shards());
  // And the handle carries the same placement as shard_of.
  TenantHandle h = tier.tenant("tenant-7", TenantClass::Interactive);
  EXPECT_EQ(h.shard(), tier.shard_of("tenant-7"));
  EXPECT_EQ(h.tenant_class(), TenantClass::Interactive);
  EXPECT_EQ(h.id(), "tenant-7");
}

TEST(ServeTier, PinBeatsHookBeatsHash) {
  ServingTier tier(two_shards());
  const unsigned hashed = tier.shard_of("vip");

  // Hook overrides the hash...
  tier.set_rebalance_hook([&](std::string_view id, unsigned) -> std::optional<unsigned> {
    if (id == "vip") return 1u - hashed;
    return std::nullopt;  // everyone else keeps the hash placement
  });
  EXPECT_EQ(tier.shard_of("vip"), 1u - hashed);
  EXPECT_EQ(tier.shard_of("other"), tier.shard_of("other"));

  // ...and a pin overrides the hook.
  tier.pin("vip", hashed);
  EXPECT_EQ(tier.shard_of("vip"), hashed);
  tier.unpin("vip");
  EXPECT_EQ(tier.shard_of("vip"), 1u - hashed);
  tier.set_rebalance_hook(nullptr);
  EXPECT_EQ(tier.shard_of("vip"), hashed);
}

TEST(ServeTier, DeadlineFlushedBatchesAgreeWithDirectSubmitAllBackends) {
  ServeOptions so = two_shards();
  // Size cut high + short deadline: these submits flush by deadline only.
  so.classes[tenant_class_index(TenantClass::Standard)].flush_max_jobs = 64;
  so.classes[tenant_class_index(TenantClass::Standard)].flush_deadline_seconds = 0.002;
  ServingTier tier(so);

  Rng rng(0x5E11);
  for (const engine::BackendInfo& info : engine::all_backends()) {
    Rng prng = rng.split();
    kalman::Problem p = small_problem(prng);
    const kalman::GaussianPrior prior = kalman::diffuse_prior(3);

    TenantHandle t = tier.tenant(std::string("t-") + info.name, TenantClass::Standard);
    engine::JobOptions direct;
    direct.backend = info.id;
    direct.prior = prior;
    const kalman::SmootherResult ref =
        tier.shard_engine(t.shard()).submit(p, direct).get().result;

    Request req;
    req.problem = p;
    req.prior = prior;
    engine::SubmitOptions opts;
    opts.backend = info.id;
    // No flush()/wait_idle(): only the pump's deadline flush can deliver.
    const kalman::SmootherResult got = tier.submit(t, std::move(req), opts).get().result;
    EXPECT_LE(max_deviation(got, ref), 1e-10) << info.name;
  }
  const TierStats st = tier.stats();
  EXPECT_GT(st.deadline_flushes, 0u);
  EXPECT_EQ(st.classes[tenant_class_index(TenantClass::Standard)].shed, 0u);
}

TEST(ServeTier, SizeTriggeredFlushDeliversWholeBatch) {
  ServeOptions so = two_shards();
  so.classes[tenant_class_index(TenantClass::Standard)].flush_max_jobs = 4;
  so.classes[tenant_class_index(TenantClass::Standard)].flush_deadline_seconds = 10.0;
  ServingTier tier(so);

  Rng rng(0x512E);
  TenantHandle t = tier.tenant("batcher", TenantClass::Standard);
  std::vector<std::future<engine::JobResult>> futs;
  for (int i = 0; i < 8; ++i) {  // two full batches; deadline far away
    Request req;
    req.problem = small_problem(rng);
    req.prior = kalman::diffuse_prior(3);
    futs.push_back(tier.submit(t, std::move(req)));
  }
  for (auto& f : futs) EXPECT_NO_THROW((void)f.get());
  const TierStats st = tier.stats();
  EXPECT_GE(st.size_flushes, 2u);
  EXPECT_EQ(st.classes[tenant_class_index(TenantClass::Standard)].batched, 8u);
}

TEST(ServeTier, LowPriorityShedsBeforeHighUnderOverload) {
  ServeOptions so;
  so.shards = 1;
  so.threads_per_shard = 2;
  // Tight budgets; interactive may block briefly, besteffort sheds at once.
  so.classes[0] = {1, 0.0, 2e-3, true, 2e-3};
  so.classes[1] = {1, 0.0, 1e-3, false, 0.0};
  so.classes[2] = {1, 0.0, 0.4e-3, false, 0.0};
  ServingTier tier(so);

  Rng rng(0x0E21);
  const kalman::GaussianPrior prior = kalman::diffuse_prior(3);
  kalman::Problem base = small_problem(rng, 3, 64);

  // Warm the seconds/job estimate so admission has a measured rate.
  {
    engine::JobOptions warm;
    warm.prior = prior;
    (void)tier.shard_engine(0).submit(base, warm).get();
  }

  TenantHandle hi = tier.tenant("hi", TenantClass::Interactive);
  TenantHandle lo = tier.tenant("lo", TenantClass::BestEffort);
  std::vector<std::future<engine::JobResult>> futs;
  for (int i = 0; i < 400; ++i) {
    Request rh;
    rh.problem = base;
    rh.prior = prior;
    futs.push_back(tier.submit(hi, std::move(rh)));
    Request rl;
    rl.problem = base;
    rl.prior = prior;
    futs.push_back(tier.submit(lo, std::move(rl)));
  }
  std::uint64_t resolved = 0;
  for (auto& f : futs) {
    try {
      (void)f.get();
      ++resolved;
    } catch (const engine::SolveError& e) {
      EXPECT_EQ(e.code(), engine::SolveErrorCode::QueueFull);
    }
  }
  tier.wait_idle();
  const TierStats st = tier.stats();
  const auto& ci = st.classes[tenant_class_index(TenantClass::Interactive)];
  const auto& cb = st.classes[tenant_class_index(TenantClass::BestEffort)];
  EXPECT_EQ(ci.submitted, 400u);
  EXPECT_EQ(cb.submitted, 400u);
  // The overload is real: someone shed...
  EXPECT_GT(cb.shed, 0u);
  // ...and the SLO ordering holds: besteffort sheds at least as hard.
  EXPECT_GE(cb.shed, ci.shed);
  EXPECT_EQ(resolved + ci.shed + cb.shed, 800u);
}

TEST(ServeTier, ConcurrentMultiTenantStress) {
  ServeOptions so = two_shards();
  ServingTier tier(so);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(0xC0DE + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kPerThread; ++i) {
        const TenantClass cls = static_cast<TenantClass>(i % num_tenant_classes);
        TenantHandle t =
            tier.tenant("w" + std::to_string(w) + "-t" + std::to_string(i % 5), cls);
        Request req;
        req.problem = small_problem(rng);
        req.prior = kalman::diffuse_prior(3);
        try {
          (void)tier.submit(t, std::move(req)).get();
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const engine::SolveError&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  tier.wait_idle();
  EXPECT_EQ(completed.load() + shed.load(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const TierStats st = tier.stats();
  std::uint64_t submitted = 0;
  for (const auto& c : st.classes) submitted += c.submitted;
  EXPECT_EQ(submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ServeTier, DurableSessionsPlaceJournalsPerShardAndRecover) {
  io::DurabilityOptions dopts;
  dopts.dir = testing::TempDir() + "/pitk_serve_store";
  fs::remove_all(dopts.dir);
  io::SessionStore base(dopts);

  Rng rng(0xD0D0);
  kalman::Problem track = small_problem(rng, 3, 40);
  std::vector<std::string> ids = {"alpha", "beta", "gamma", "delta"};
  std::vector<unsigned> shard_of_id;
  std::vector<kalman::SmootherResult> live_results;

  {
    ServingTier tier(two_shards());
    for (const std::string& id : ids) {
      TenantHandle t = tier.tenant(id);
      shard_of_id.push_back(t.shard());
      engine::SessionOptions sopts;
      sopts.store = &base;  // tier reroutes to base/shard-N
      engine::Session s = tier.open_session(t, 3, sopts);
      for (index i = 1; i < track.num_states(); ++i) {
        const kalman::TimeStep& step = track.step(i);
        if (step.evolution) s.evolve(step.evolution->F, step.evolution->c, step.evolution->noise);
        if (step.observation)
          s.observe(step.observation->G, step.observation->o, step.observation->noise);
      }
      live_results.push_back(s.smooth(true));
      // The journal landed in the tenant's shard subdirectory, named by id.
      EXPECT_TRUE(fs::exists(base.shard_store(t.shard()).path_for(id)))
          << id << " shard " << t.shard();
    }
    const TierStats st = tier.stats();
    EXPECT_EQ(st.durable_sessions_opened, ids.size());
  }  // tier torn down: "process death" (journals are crash-consistent anyway)

  ServingTier tier(two_shards());
  auto recovered = tier.recover(base);
  ASSERT_EQ(recovered.size(), tier.num_shards());
  std::size_t total = 0;
  for (auto& [shard, rec] : recovered) {
    EXPECT_TRUE(rec.failed.empty());
    for (auto& [id, session] : rec.linear) {
      const auto it = std::find(ids.begin(), ids.end(), id);
      ASSERT_NE(it, ids.end());
      const std::size_t idx = static_cast<std::size_t>(it - ids.begin());
      // Recovered on the same shard the tenant hashes to.
      EXPECT_EQ(shard, shard_of_id[idx]) << id;
      EXPECT_LE(max_deviation(session.smooth(true), live_results[idx]), 1e-10) << id;
      ++total;
    }
  }
  EXPECT_EQ(total, ids.size());
}

/// Runs unarmed in the normal suite and with PITK_FAULTS=
/// "engine.dequeue:delay:1.0:3:5" in CI's fault-smoke leg: every future must
/// resolve either with a result or with a *classified* deadline error, and
/// the tier must stay consistent — injected dequeue slowness can make jobs
/// late, never lost or misclassified.
TEST(ServeFault, PerClassDeadlinesHoldUnderInjectedDequeueDelay) {
  ServeOptions so;
  so.shards = 1;
  so.threads_per_shard = 2;
  so.classes[tenant_class_index(TenantClass::Standard)].flush_max_jobs = 4;
  so.classes[tenant_class_index(TenantClass::Standard)].flush_deadline_seconds = 1e-3;
  ServingTier tier(so);

  Rng rng(0xFA017);
  TenantHandle t = tier.tenant("deadline-tenant", TenantClass::Standard);
  std::vector<std::future<engine::JobResult>> futs;
  for (int i = 0; i < 16; ++i) {
    Request req;
    req.problem = small_problem(rng);
    req.prior = kalman::diffuse_prior(3);
    engine::SubmitOptions opts;
    opts.timeout = std::chrono::duration<double>(0.05);
    futs.push_back(tier.submit(t, std::move(req), opts));
  }
  std::uint64_t completed = 0, deadline = 0;
  for (auto& f : futs) {
    try {
      (void)f.get();
      ++completed;
    } catch (const engine::SolveError& e) {
      // Injected slowness may push a job past its deadline — that must be
      // the *classified* outcome, never a hang or a generic failure.
      EXPECT_TRUE(e.code() == engine::SolveErrorCode::DeadlineExceeded ||
                  e.code() == engine::SolveErrorCode::QueueFull)
          << static_cast<int>(e.code());
      ++deadline;
    }
  }
  EXPECT_EQ(completed + deadline, 16u);
  tier.wait_idle();
  const engine::EngineStats st = tier.shard_engine(0).stats();
  EXPECT_EQ(st.jobs_completed + st.jobs_deadline_exceeded + st.jobs_failed +
                st.jobs_cancelled + st.jobs_rejected,
            st.jobs_submitted);
}

}  // namespace
}  // namespace pitk::serve
