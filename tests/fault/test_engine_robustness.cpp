/// \file test_engine_robustness.cpp
/// Engine hardening under deterministic fault injection: the degradation
/// ladder rescues poisoned solves, deadlines and cancellation complete jobs
/// without solving, the bounded queue never exceeds its cap, and every
/// outcome is mirrored consistently across JobMetrics, EngineStats and the
/// obs registry.
///
/// Determinism discipline: fault sites are armed at rate 1 (always fire) or
/// rate 0 (count hits without firing — the probe that proves a solver was
/// never reached).  No test depends on a race resolving one way.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "fault/fault.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/simulate.hpp"
#include "la/workspace.hpp"
#include "obs/registry.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

using la::index;
using la::Rng;
using test::CommonProblem;

/// Fault state is process-global; every test starts and ends disarmed.
class EngineRobustness : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

/// Snapshot of the engine's obs-registry counters.  The registry is
/// process-global and cumulative, so the tests assert on deltas.
struct RegistrySnapshot {
  std::uint64_t failed = obs::counter("pitk.engine.jobs_failed").value();
  std::uint64_t rejected = obs::counter("pitk.engine.jobs_rejected").value();
  std::uint64_t deadline = obs::counter("pitk.engine.jobs_deadline_exceeded").value();
  std::uint64_t cancelled = obs::counter("pitk.engine.jobs_cancelled").value();
  std::uint64_t retried = obs::counter("pitk.engine.jobs_retried").value();
};

/// A nonlinear job whose outer loop cannot converge (tolerance 0) and spends
/// a deterministic `millis` per iteration via the gn.outer_step delay site.
NonlinearJob slow_nonlinear_job(Rng& rng, index k) {
  kalman::NonlinearModel m = kalman::make_pendulum_benchmark(rng, k, /*theta0=*/0.5, true);
  std::vector<la::Vector> init(static_cast<std::size_t>(k + 1));
  for (auto& v : init) v = la::Vector({0.1, 0.0});
  return {std::move(m), std::move(init)};
}

// ---------------------------------------------------------------------------
// Numerical-failure recovery: the degradation ladder.

TEST_F(EngineRobustness, InjectedNanIsRescuedByTheFallbackLadder) {
  Rng rng(0xF001);
  const CommonProblem cp = test::common_problem(rng, 3, 25);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, /*with_cov=*/true);

  const RegistrySnapshot before;
  SmootherEngine eng({.threads = 2});
  // A small job with prior + identity H + covariance resolves Auto to rts;
  // poisoning exactly that site forces the ladder (whose first rung,
  // paige-saunders, stays unarmed).
  fault::arm("solve.rts", fault::Kind::Nan, /*rate=*/1.0, /*seed=*/1);
  JobOptions jo;
  jo.prior = cp.prior;
  const JobResult jr = eng.submit(cp.for_conventional, jo).get();

  EXPECT_TRUE(jr.metrics.retried);
  EXPECT_EQ(jr.metrics.fallback_backend, Backend::PaigeSaunders);
  EXPECT_EQ(jr.metrics.backend, Backend::PaigeSaunders);
  EXPECT_GE(fault::fired_count("solve.rts", fault::Kind::Nan), 1u);
  // The acceptance bar: the rescued job agrees with the dense reference.
  test::expect_means_near(jr.result.means, ref.means, 1e-10, "rescued means vs dense");
  test::expect_covs_near(jr.result.covariances, ref.covariances, 1e-9,
                         "rescued covs vs dense");

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_completed, 1u);
  EXPECT_EQ(st.jobs_failed, 0u);
  EXPECT_EQ(st.jobs_retried, 1u);
  // The rescue records under the backend that actually served the job.
  EXPECT_EQ(st.per_backend[backend_index(Backend::PaigeSaunders)], 1u);
  EXPECT_EQ(st.per_backend[backend_index(Backend::Rts)], 0u);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_retried").value() - before.retried, 1u);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_failed").value() - before.failed, 0u);
}

TEST_F(EngineRobustness, LadderEndsAtTheDenseReference) {
  Rng rng(0xF002);
  const CommonProblem cp = test::common_problem(rng, 3, 20);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, /*with_cov=*/true);

  SmootherEngine eng({.threads = 2});
  // Without a prior, Auto resolves a small job to paige-saunders; poisoning
  // it skips the (identical) first rung and lands on dense-reference.
  fault::arm("solve.paige-saunders", fault::Kind::Nan, 1.0, 2);
  const JobResult jr = eng.submit(cp.for_qr, {}).get();

  EXPECT_TRUE(jr.metrics.retried);
  EXPECT_EQ(jr.metrics.fallback_backend, Backend::DenseReference);
  test::expect_means_near(jr.result.means, ref.means, 1e-10, "dense rescue means");
  EXPECT_EQ(eng.stats().per_backend[backend_index(Backend::DenseReference)], 1u);
}

TEST_F(EngineRobustness, PinnedBackendIsHonoredAndFailsInsteadOfRetrying) {
  Rng rng(0xF003);
  const CommonProblem cp = test::common_problem(rng, 3, 15);

  const RegistrySnapshot before;
  SmootherEngine eng({.threads = 2});
  fault::arm("solve.paige-saunders", fault::Kind::Nan, 1.0, 3);
  JobOptions jo;
  jo.backend = Backend::PaigeSaunders;  // pinned: the ladder is disabled
  auto fut = eng.submit(cp.for_qr, jo);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::NumericalFailure);
  }

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_failed, 1u);
  EXPECT_EQ(st.jobs_completed, 0u);
  EXPECT_EQ(st.jobs_retried, 0u);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_failed").value() - before.failed, 1u);
}

TEST_F(EngineRobustness, ExhaustedLadderFailsWithNumericalFailure) {
  Rng rng(0xF004);
  const CommonProblem cp = test::common_problem(rng, 3, 15);

  SmootherEngine eng({.threads = 2});
  // Both the selected backend (rts) and its rescue rung are poisoned: the
  // one-shot retry runs, produces another non-finite result, and the job
  // fails — the ladder never loops.
  fault::arm("solve.rts", fault::Kind::Nan, 1.0, 4);
  fault::arm("solve.paige-saunders", fault::Kind::Nan, 1.0, 4);
  JobOptions jo;
  jo.prior = cp.prior;
  auto fut = eng.submit(cp.for_conventional, jo);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::NumericalFailure);
  }
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_failed, 1u);
  EXPECT_EQ(st.jobs_retried, 0u);
  EXPECT_GE(fault::fired_count("solve.paige-saunders", fault::Kind::Nan), 1u);
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation.

TEST_F(EngineRobustness, PastDeadlineJobCompletesWithoutSolving) {
  Rng rng(0xF005);
  const CommonProblem cp = test::common_problem(rng, 3, 15);

  const RegistrySnapshot before;
  SmootherEngine eng({.threads = 2});
  // The dequeue delay holds the job between dequeue and its deadline check;
  // the rate-0 probe on the pinned backend's solve site counts hits without
  // firing, so hit_count == 0 *proves* no solver ever ran.
  fault::arm("engine.dequeue", fault::Kind::Delay, 1.0, 5, /*millis=*/30.0);
  fault::arm("solve.paige-saunders", fault::Kind::Nan, /*rate=*/0.0, 5);
  JobOptions jo;
  jo.backend = Backend::PaigeSaunders;
  jo.timeout = std::chrono::duration<double>(0.005);
  auto fut = eng.submit(cp.for_qr, jo);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::DeadlineExceeded);
  }

  EXPECT_EQ(fault::hit_count("solve.paige-saunders", fault::Kind::Nan), 0u)
      << "a past-deadline job must never reach a solver";
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_deadline_exceeded, 1u);
  EXPECT_EQ(st.jobs_failed, 0u);
  EXPECT_EQ(st.jobs_completed, 0u);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_deadline_exceeded").value() - before.deadline,
            1u);
}

TEST_F(EngineRobustness, DeadlineFiresMidSolveAtAGaussNewtonCheckpoint) {
  Rng rng(0xF006);
  SmootherEngine eng({.threads = 2});
  // Each outer iteration costs a deterministic 10 ms through the
  // gn.outer_step delay; with tolerance 0 the loop cannot converge, so only
  // the checkpoint can end the job.
  fault::arm("gn.outer_step", fault::Kind::Delay, 1.0, 6, /*millis=*/10.0);
  NonlinearJobOptions opts;
  opts.backend = Backend::PaigeSaunders;
  opts.gn.tolerance = 0.0;
  opts.gn.max_iterations = 200;  // 2 s of delays; the 30 ms deadline wins
  opts.timeout = std::chrono::duration<double>(0.030);
  auto fut = eng.submit_nonlinear(slow_nonlinear_job(rng, 30), opts);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::DeadlineExceeded);
  }
  EXPECT_EQ(eng.stats().jobs_deadline_exceeded, 1u);
  EXPECT_GE(fault::fired_count("gn.outer_step", fault::Kind::Delay), 1u)
      << "the outer loop must have started before the deadline fired";
}

TEST_F(EngineRobustness, CancelledTokenCompletesTheJobWithoutSolving) {
  Rng rng(0xF007);
  const CommonProblem cp = test::common_problem(rng, 3, 15);

  const RegistrySnapshot before;
  SmootherEngine eng({.threads = 2});
  fault::arm("solve.paige-saunders", fault::Kind::Nan, /*rate=*/0.0, 7);  // probe
  auto token = std::make_shared<CancelToken>();
  token->cancel();  // cancelled before submit: deterministically dead at dequeue
  JobOptions jo;
  jo.backend = Backend::PaigeSaunders;
  jo.cancel = token;
  auto fut = eng.submit(cp.for_qr, jo);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::Cancelled);
  }
  EXPECT_EQ(fault::hit_count("solve.paige-saunders", fault::Kind::Nan), 0u);
  EXPECT_EQ(eng.stats().jobs_cancelled, 1u);
  EXPECT_EQ(eng.stats().jobs_failed, 0u);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_cancelled").value() - before.cancelled, 1u);
}

TEST_F(EngineRobustness, CancellationInterruptsARunningGaussNewtonLoop) {
  Rng rng(0xF008);
  SmootherEngine eng({.threads = 2});
  fault::arm("gn.outer_step", fault::Kind::Delay, 1.0, 8, /*millis=*/10.0);
  auto token = std::make_shared<CancelToken>();
  NonlinearJobOptions opts;
  opts.backend = Backend::PaigeSaunders;
  opts.gn.tolerance = 0.0;
  opts.gn.max_iterations = 500;  // ~5 s of delays: cancellation always wins
  opts.cancel = token;
  auto fut = eng.submit_nonlinear(slow_nonlinear_job(rng, 30), opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  token->cancel();
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::Cancelled);
  }
  EXPECT_EQ(eng.stats().jobs_cancelled, 1u);
}

// ---------------------------------------------------------------------------
// Bounded admission.

TEST_F(EngineRobustness, BoundedQueueRejectsOverflowAndNeverExceedsTheCap) {
  Rng rng(0xF009);
  const CommonProblem cp = test::common_problem(rng, 2, 12);
  constexpr std::size_t kMax = 4;
  constexpr int kJobs = 64;

  const RegistrySnapshot before;
  SmootherEngine eng(
      {.threads = 2, .max_queued_jobs = kMax, .queue_policy = QueuePolicy::Reject});
  // Every pool task sleeps 5 ms, so open-loop submission outruns the drain
  // and the bounded queue must shed load.
  fault::arm("pool.task", fault::Kind::Delay, 1.0, 9, /*millis=*/5.0);
  std::vector<std::future<JobResult>> futs;
  futs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futs.push_back(eng.submit(cp.for_qr, {}));

  int completed = 0;
  int rejected = 0;
  for (auto& f : futs) {
    try {
      (void)f.get();
      ++completed;
    } catch (const SolveError& e) {
      EXPECT_EQ(e.code(), SolveErrorCode::QueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, kJobs);
  EXPECT_GT(rejected, 0) << "over-submission against a depth-4 queue must shed";
  EXPECT_GT(completed, 0);

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(st.jobs_rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(st.jobs_completed, static_cast<std::uint64_t>(completed));
  EXPECT_LE(st.queue_high_water, kMax) << "the queue invariant: depth never exceeds the cap";
  EXPECT_EQ(obs::counter("pitk.engine.jobs_rejected").value() - before.rejected,
            static_cast<std::uint64_t>(rejected));
}

TEST_F(EngineRobustness, BlockPolicyAppliesBackpressureWithoutDroppingWork) {
  Rng rng(0xF00A);
  const CommonProblem cp = test::common_problem(rng, 2, 12);
  constexpr std::size_t kMax = 2;
  constexpr int kJobs = 16;

  SmootherEngine eng({.threads = 2,
                      .max_queued_jobs = kMax,
                      .queue_policy = QueuePolicy::Block,
                      .max_queue_wait_seconds = 5.0});
  fault::arm("pool.task", fault::Kind::Delay, 1.0, 10, /*millis=*/2.0);
  std::vector<std::future<JobResult>> futs;
  futs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futs.push_back(eng.submit(cp.for_qr, {}));
  for (auto& f : futs) EXPECT_NO_THROW((void)f.get());

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(st.jobs_rejected, 0u) << "backpressure, not shedding";
  EXPECT_LE(st.queue_high_water, kMax);
}

// ---------------------------------------------------------------------------
// Counter agreement (satellite: stats vs registry vs ground truth under a
// concurrent failing batch).

TEST_F(EngineRobustness, CountersAgreeWithGroundTruthUnderAConcurrentMixedBatch) {
  Rng rng(0xF00B);
  const CommonProblem good = test::common_problem(rng, 3, 20);
  const CommonProblem prio = test::common_problem(rng, 3, 20);

  const RegistrySnapshot before;
  SmootherEngine eng({.threads = 4});
  // Poison rts only: the "retry" cohort (Auto + prior resolves small jobs to
  // rts) is rescued by paige-saunders; the "good" cohort (no prior) resolves
  // straight to paige-saunders and never sees an armed site.
  fault::arm("solve.rts", fault::Kind::Nan, 1.0, 11);
  auto cancelled_token = std::make_shared<CancelToken>();
  cancelled_token->cancel();

  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(eng.submit(good.for_qr, {}));
  for (int i = 0; i < 4; ++i) {
    JobOptions jo;
    jo.backend = Backend::Rts;  // no prior: BackendUnsupported -> jobs_failed
    futs.push_back(eng.submit(good.for_conventional, jo));
  }
  for (int i = 0; i < 4; ++i) {
    JobOptions jo;
    jo.cancel = cancelled_token;
    futs.push_back(eng.submit(good.for_qr, jo));
  }
  for (int i = 0; i < 4; ++i) {
    JobOptions jo;
    jo.timeout = std::chrono::duration<double>(-0.001);  // already past at submit
    futs.push_back(eng.submit(good.for_qr, jo));
  }
  for (int i = 0; i < 4; ++i) {
    JobOptions jo;
    jo.prior = prio.prior;
    futs.push_back(eng.submit(prio.for_conventional, jo));
  }

  // Ground truth tallied from the futures themselves.
  std::uint64_t ok = 0, failed = 0, cancelled = 0, deadline = 0, retried = 0;
  for (auto& f : futs) {
    try {
      const JobResult jr = f.get();
      ++ok;
      if (jr.metrics.retried) ++retried;
    } catch (const SolveError& e) {
      switch (e.code()) {
        case SolveErrorCode::Cancelled: ++cancelled; break;
        case SolveErrorCode::DeadlineExceeded: ++deadline; break;
        default: ++failed; break;
      }
    }
  }
  EXPECT_EQ(ok, 12u);
  EXPECT_EQ(failed, 4u);
  EXPECT_EQ(cancelled, 4u);
  EXPECT_EQ(deadline, 4u);
  EXPECT_EQ(retried, 4u);

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_submitted, 24u);
  EXPECT_EQ(st.jobs_completed, ok);
  EXPECT_EQ(st.jobs_failed, failed);
  EXPECT_EQ(st.jobs_cancelled, cancelled);
  EXPECT_EQ(st.jobs_deadline_exceeded, deadline);
  EXPECT_EQ(st.jobs_retried, retried);

  EXPECT_EQ(obs::counter("pitk.engine.jobs_failed").value() - before.failed, failed);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_cancelled").value() - before.cancelled,
            cancelled);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_deadline_exceeded").value() - before.deadline,
            deadline);
  EXPECT_EQ(obs::counter("pitk.engine.jobs_retried").value() - before.retried, retried);
}

// ---------------------------------------------------------------------------
// Warm-state hygiene (satellite: a poisoned worker serves the next job
// correctly, allocation-free).

TEST_F(EngineRobustness, PoisonedWarmWorkerServesTheNextJobCleanlyAtZeroAllocations) {
  Rng rng(0xF00C);
  const CommonProblem cp = test::common_problem(rng, 4, 40, /*dense_cov=*/true);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, /*with_cov=*/true);

  // Serial engine: jobs execute inline on this thread, so the poisoned
  // SolverCache and the allocation counter are both exactly observable.
  SmootherEngine eng({.threads = 1});
  JobOptions jo;
  jo.backend = Backend::PaigeSaunders;
  kalman::SmootherResult storage;
  jo.into = &storage;
  eng.submit(cp.for_qr, jo).get();  // warmup: cache + into storage at capacity

  // Poison the cached factorization mid-solve: the pinned job fails and the
  // worker's warm SolverCache is left holding NaN-contaminated state.
  fault::arm("solver.factor", fault::Kind::Nan, 1.0, 12);
  JobOptions poisoned = jo;
  poisoned.into = nullptr;
  auto fut = eng.submit(cp.for_qr, poisoned);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::NumericalFailure);
  }
  fault::disarm_all();

  // The very next same-shaped job must refill every warm buffer: correct to
  // the dense reference AND zero counted allocations — no poisoned value and
  // no capacity was lost to the failure.
  kalman::Problem second = cp.for_qr;  // built before counting
  JobOptions jo2 = jo;
  la::tls_workspace().reset();
  const std::uint64_t before = la::aligned_alloc_count();
  const JobResult jr = eng.submit(std::move(second), std::move(jo2)).get();
  EXPECT_EQ(la::aligned_alloc_count() - before, 0u)
      << "recovery must reuse the poisoned job's warm capacity";
  EXPECT_EQ(jr.metrics.allocations, 0u);
  test::expect_means_near(storage.means, ref.means, 1e-7, "post-poison means vs dense");
  test::expect_covs_near(storage.covariances, ref.covariances, 1e-6,
                         "post-poison covs vs dense");

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_failed, 1u);
  EXPECT_EQ(st.jobs_completed, 2u);
}

// ---------------------------------------------------------------------------
// Submit-time validation (satellite: fast-fail on the submitting thread).

TEST_F(EngineRobustness, MalformedSubmissionsFailFastOnTheSubmittingThread) {
  Rng rng(0xF00D);
  const CommonProblem cp = test::common_problem(rng, 3, 10);
  SmootherEngine eng({.threads = 2});

  // Prior whose shape disagrees with state 0.
  JobOptions bad_prior;
  bad_prior.prior = GaussianPrior{la::Vector(5), la::Matrix::identity(5)};
  EXPECT_THROW((void)eng.submit(cp.for_conventional, bad_prior), std::invalid_argument);

  // Nonlinear job with a dims/init length mismatch.
  NonlinearJob nj = slow_nonlinear_job(rng, 10);
  nj.init.pop_back();
  EXPECT_THROW((void)eng.submit_nonlinear(std::move(nj), {}), std::invalid_argument);

  // Model missing its obs entries.
  NonlinearJob nj2 = slow_nonlinear_job(rng, 10);
  nj2.model.obs.clear();
  EXPECT_THROW((void)eng.submit_nonlinear(std::move(nj2), {}), std::invalid_argument);

  // Nothing was enqueued: a subsequent good job is the engine's first.
  JobOptions jo;
  jo.prior = cp.prior;
  EXPECT_NO_THROW((void)eng.submit(cp.for_conventional, jo).get());
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_submitted, 1u);
  EXPECT_EQ(st.jobs_completed, 1u);
}

// ---------------------------------------------------------------------------
// Allocation-failure recovery through the la.alloc site.

TEST_F(EngineRobustness, InjectedAllocationFailureFailsTheJobNotTheEngine) {
  Rng rng(0xF00E);
  const CommonProblem cp = test::common_problem(rng, 3, 30);
  SmootherEngine eng({.threads = 1});

  // Every 10th counted allocation throws bad_alloc: the cold first job is
  // certain to trip it.  bad_alloc is outside the SolveError taxonomy, so
  // the pinned job fails as a numerical/solver failure without a retry...
  fault::arm("la.alloc", fault::Kind::Fail, /*rate=*/0.1, 13);
  JobOptions jo;
  jo.backend = Backend::PaigeSaunders;
  bool threw = false;
  try {
    (void)eng.submit(cp.for_qr, jo).get();
  } catch (const std::exception&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  fault::disarm_all();

  // ...and the engine keeps serving afterwards.
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  const JobResult jr = eng.submit(cp.for_qr, jo).get();
  test::expect_means_near(jr.result.means, ref.means, 1e-7, "post-bad_alloc means");
}

}  // namespace
}  // namespace pitk::engine
