#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace pitk::fault {
namespace {

/// Every test leaves the table clean: fault state is process-global and the
/// suite must not leak arms across tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultTest, DisarmedSitesNeverFire) {
  EXPECT_FALSE(any_armed());
  EXPECT_FALSE(should_fail("la.alloc"));
  double x = 1.0;
  inject_nan("solve.paige-saunders", &x, 1);
  EXPECT_EQ(x, 1.0);
  EXPECT_NO_THROW(inject_fail("engine.dequeue"));
  EXPECT_EQ(hit_count("la.alloc", Kind::Fail), 0u);
}

TEST_F(FaultTest, ArmFireDisarmRoundTrip) {
  arm("unit.fail", Kind::Fail, /*rate=*/1.0, /*seed=*/7);
  EXPECT_TRUE(any_armed());
  EXPECT_TRUE(should_fail("unit.fail"));
  EXPECT_FALSE(should_fail("unit.other"));       // unarmed site
  double x = 2.0;
  inject_nan("unit.fail", &x, 1);                // wrong kind: no fire
  EXPECT_EQ(x, 2.0);
  EXPECT_EQ(hit_count("unit.fail", Kind::Fail), 1u);
  EXPECT_EQ(fired_count("unit.fail", Kind::Fail), 1u);
  disarm("unit.fail");
  EXPECT_FALSE(any_armed());
  EXPECT_FALSE(should_fail("unit.fail"));
}

TEST_F(FaultTest, RateZeroCountsHitsWithoutFiring) {
  // The probe pattern the robustness tests use: rate 0 observes whether a
  // site was reached without perturbing anything.
  arm("unit.probe", Kind::Nan, /*rate=*/0.0, /*seed=*/1);
  double x = 3.0;
  for (int i = 0; i < 100; ++i) inject_nan("unit.probe", &x, 1);
  EXPECT_EQ(x, 3.0);
  EXPECT_EQ(hit_count("unit.probe", Kind::Nan), 100u);
  EXPECT_EQ(fired_count("unit.probe", Kind::Nan), 0u);
}

TEST_F(FaultTest, FiringPatternIsDeterministicInSeedAndHitIndex) {
  const auto pattern = [](std::uint64_t seed) {
    disarm_all();
    arm("unit.pat", Kind::Fail, /*rate=*/0.3, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(should_fail("unit.pat"));
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  const std::vector<bool> c = pattern(43);
  EXPECT_EQ(a, b);  // same seed: identical firing sequence
  EXPECT_NE(a, c);  // different seed: different sequence
  // Rate ~0.3 should fire a plausible fraction of 200 hits.
  const std::size_t fires = static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 30u);
  EXPECT_LT(fires, 100u);
}

TEST_F(FaultTest, InjectNanPoisonsFirstElement) {
  arm("unit.nan", Kind::Nan, 1.0, 0);
  double buf[3] = {1.0, 2.0, 3.0};
  inject_nan("unit.nan", buf, 3);
  EXPECT_TRUE(std::isnan(buf[0]));
  EXPECT_EQ(buf[1], 2.0);
}

TEST_F(FaultTest, InjectFailThrowsWithSiteName) {
  arm("unit.throw", Kind::Fail, 1.0, 0);
  try {
    inject_fail("unit.throw");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unit.throw"), std::string::npos);
  }
}

TEST_F(FaultTest, InjectDelaySleepsForTheArmedMillis) {
  arm("unit.delay", Kind::Delay, 1.0, 0, /*millis=*/20.0);
  const auto t0 = std::chrono::steady_clock::now();
  inject_delay("unit.delay");
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GE(ms, 15.0);  // sleep_for may overshoot, never (meaningfully) undershoot
}

TEST_F(FaultTest, SpecParsingArmsAndRejects) {
  EXPECT_TRUE(arm_from_spec("unit.spec:nan:1.0:9"));
  EXPECT_EQ(hit_count("unit.spec", Kind::Nan), 0u);
  double x = 1.0;
  inject_nan("unit.spec", &x, 1);
  EXPECT_TRUE(std::isnan(x));

  EXPECT_TRUE(arm_from_spec("unit.spec2:delay:0.5:3:2.5"));  // with millis
  EXPECT_FALSE(arm_from_spec("unit.bad"));                   // no kind/rate
  EXPECT_FALSE(arm_from_spec("unit.bad:frobnicate:1.0"));    // unknown kind
  EXPECT_FALSE(arm_from_spec("unit.bad:nan:7.0"));           // rate out of range
  EXPECT_FALSE(arm_from_spec(""));
}

TEST_F(FaultTest, RearmResetsCountersAndReplacesParameters) {
  arm("unit.rearm", Kind::Fail, 1.0, 0);
  (void)should_fail("unit.rearm");
  EXPECT_EQ(fired_count("unit.rearm", Kind::Fail), 1u);
  arm("unit.rearm", Kind::Fail, 0.0, 0);  // re-arm: rate 0, counters reset
  EXPECT_EQ(hit_count("unit.rearm", Kind::Fail), 0u);
  EXPECT_FALSE(should_fail("unit.rearm"));
  EXPECT_EQ(hit_count("unit.rearm", Kind::Fail), 1u);
  EXPECT_EQ(fired_count("unit.rearm", Kind::Fail), 0u);
}

TEST_F(FaultTest, ArmValidation) {
  EXPECT_THROW(arm("", Kind::Fail), std::invalid_argument);
  EXPECT_THROW(arm("x", Kind::Fail, 1.5), std::invalid_argument);
  EXPECT_THROW(arm(std::string(60, 'a'), Kind::Fail), std::invalid_argument);
}

}  // namespace
}  // namespace pitk::fault
