/// \file test_registry.cpp
/// MetricsRegistry semantics (stable references, kind collisions) and the
/// two export formats.  Export-content assertions use local registries so
/// the pool/engine metrics living in the global one cannot leak into the
/// expected output; tests against global() use names unique to this file.

#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"

namespace pitk::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Registry, GetOrCreateReturnsStableReference) {
  MetricsRegistry reg;
  Counter& a = reg.counter("pitk.test.stable");
  Counter& b = reg.counter("pitk.test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Histogram& h1 = reg.histogram("pitk.test.hist");
  Histogram& h2 = reg.histogram("pitk.test.hist");
  EXPECT_EQ(&h1, &h2);
  Gauge& g1 = reg.gauge("pitk.test.gauge");
  Gauge& g2 = reg.gauge("pitk.test.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, CrossKindNameReuseThrows) {
  MetricsRegistry reg;
  (void)reg.counter("pitk.test.kind");
  EXPECT_THROW((void)reg.gauge("pitk.test.kind"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("pitk.test.kind"), std::invalid_argument);
  (void)reg.gauge("pitk.test.other_kind");
  EXPECT_THROW((void)reg.counter("pitk.test.other_kind"), std::invalid_argument);
}

TEST(Registry, SnapshotReflectsRecordedValues) {
  MetricsRegistry reg;
  reg.counter("c.events").add(7);
  reg.gauge("g.level").set(2.5);
  Histogram& h = reg.histogram("h.latency");
  for (int i = 0; i < 100; ++i) h.record(1e-3);

  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].first, "c.events");
  EXPECT_EQ(s.counters[0].second, 7u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].first, "g.level");
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 2.5);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].first, "h.latency");
  EXPECT_EQ(s.histograms[0].second.count, 100u);
  EXPECT_NEAR(s.histograms[0].second.quantile(0.5), 1e-3, 0.05e-3);
}

TEST(Registry, JsonExportIsValidAndComplete) {
  MetricsRegistry reg;
  reg.counter("pitk.jobs_total").add(42);
  reg.gauge("pitk.utilization").set(0.75);
  reg.histogram("pitk.solve_seconds").record(2e-3);

  const std::string json = reg.to_json();
  EXPECT_TRUE(test::json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"pitk.jobs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"pitk.utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"pitk.solve_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
}

TEST(Registry, EmptyRegistryExportsValidJson) {
  MetricsRegistry reg;
  const std::string json = reg.to_json();
  EXPECT_TRUE(test::json_is_valid(json)) << json;
}

TEST(Registry, PrometheusExportFormat) {
  MetricsRegistry reg;
  reg.counter("pitk.engine.jobs_total").add(5);
  reg.gauge("pitk.pool.workers_busy").set(3.0);
  Histogram& h = reg.histogram("pitk.engine.solve_seconds");
  for (int i = 0; i < 10; ++i) h.record(1e-3);

  const std::string prom = reg.to_prometheus();
  // Names sanitized to [a-zA-Z0-9_:]: '.' must be gone from metric lines.
  EXPECT_NE(prom.find("# TYPE pitk_engine_jobs_total counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("pitk_engine_jobs_total 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pitk_pool_workers_busy gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pitk_engine_solve_seconds summary"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.9\""), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(prom.find("pitk_engine_solve_seconds_sum"), std::string::npos);
  EXPECT_NE(prom.find("pitk_engine_solve_seconds_count 10"), std::string::npos);
  EXPECT_EQ(prom.find("pitk.engine"), std::string::npos) << "unsanitized name leaked";
}

TEST(Registry, WriteDispatchesOnExtension) {
  MetricsRegistry reg;
  reg.counter("pitk.write_test").add(1);

  const std::string json_path = ::testing::TempDir() + "pitk_obs_registry_test.json";
  const std::string prom_path = ::testing::TempDir() + "pitk_obs_registry_test.prom";
  ASSERT_TRUE(reg.write(json_path));
  ASSERT_TRUE(reg.write(prom_path));

  const std::string json = slurp(json_path);
  EXPECT_TRUE(test::json_is_valid(json)) << json;
  const std::string prom = slurp(prom_path);
  EXPECT_NE(prom.find("# TYPE pitk_write_test counter"), std::string::npos) << prom;

  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(Registry, GlobalRegistryIsProcessWide) {
  // Unique-to-this-file names: the global registry already carries the
  // engine/pool metrics and anything other tests in this binary created.
  Counter& c = MetricsRegistry::global().counter("pitk.test_registry.global_probe");
  c.add(11);
  EXPECT_EQ(counter("pitk.test_registry.global_probe").value(), 11u);
  const std::string json = MetricsRegistry::global().to_json();
  EXPECT_TRUE(test::json_is_valid(json));
  EXPECT_NE(json.find("pitk.test_registry.global_probe"), std::string::npos);
}

TEST(Registry, ConcurrentGetOrCreateAndRecord) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Every thread races the same get-or-create, then records.
      for (int i = 0; i < 1000; ++i) {
        reg.counter("pitk.test.race_counter").add(1);
        reg.histogram("pitk.test.race_hist").record(1e-3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("pitk.test.race_counter").value(), 8000u);
  EXPECT_EQ(reg.histogram("pitk.test.race_hist").count(), 8000u);
}

}  // namespace
}  // namespace pitk::obs
