#pragma once

/// \file json_check.hpp
/// Minimal dependency-free JSON syntax validator for the obs export tests:
/// the exporters promise well-formed documents (python -m json.tool checks
/// the same in CI), and this checker pins it at unit-test granularity.

#include <cctype>
#include <string>

namespace pitk::test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  [[nodiscard]] bool valid() {
    pos_ = 0;
    skip();
    if (!value()) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  void skip() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters are not legal in JSON strings
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool digits() {
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) return false;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return true;
  }

  bool number() {
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (!digits()) return false;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    ++pos_;  // '{'
    skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip();
      if (!string()) return false;
      skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip();
      if (!value()) return false;
      skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip();
      if (!value()) return false;
      skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool json_is_valid(const std::string& s) { return JsonChecker(s).valid(); }

/// Number of non-overlapping occurrences of `needle` in `hay`.
inline std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos; p = hay.find(needle, p + needle.size()))
    ++n;
  return n;
}

}  // namespace pitk::test
