/// \file test_histogram.cpp
/// The lock-free latency histogram against ground truth: quantiles versus a
/// sorted-sample reference across distributions with very different tail
/// shapes, merge correctness, and lossless concurrent recording (this file
/// runs under the TSan CI leg like every other test).

#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "la/random.hpp"

namespace pitk::obs {
namespace {

using la::Rng;

/// Nearest-rank quantile of a sample set — the definition the log-bucketed
/// histogram approximates to within its bucket resolution.
double reference_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(std::max<std::size_t>(rank, 1), v.size()) - 1];
}

/// kSubBits = 5 gives 32 sub-buckets per octave: ~3.1% bucket width plus the
/// midpoint representative keeps any quantile within ~5% of the true value.
constexpr double kRelTol = 0.05;

void expect_quantiles_match(const Histogram& h, const std::vector<double>& samples) {
  for (const double q : {0.5, 0.9, 0.99}) {
    const double got = h.quantile(q);
    const double ref = reference_quantile(samples, q);
    EXPECT_NEAR(got, ref, kRelTol * ref) << "quantile " << q;
  }
}

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, UniformDistributionQuantiles) {
  Rng rng(0x0B51);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(0.5e-3, 1.5e-3);  // a 0.5–1.5 ms latency band
    samples.push_back(v);
    h.record(v);
  }
  EXPECT_EQ(h.count(), samples.size());
  expect_quantiles_match(h, samples);
}

TEST(Histogram, ExponentialDistributionQuantiles) {
  Rng rng(0x0B52);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Mean 200 us with the long right tail queueing delays actually have.
    const double v = -200e-6 * std::log(1.0 - rng.uniform());
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(h, samples);
}

TEST(Histogram, LognormalDistributionQuantiles) {
  Rng rng(0x0B53);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Box-Muller normal -> lognormal spanning several octaves.
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = std::exp(-7.0 + 1.5 * z);  // median ~0.9 ms, heavy tail
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(h, samples);
}

TEST(Histogram, MeanAndSumTrackRecordedValues) {
  Histogram h;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 1e-5 * i;
    h.record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), sum, 1e-6 * sum);  // tick quantization is 1e-9 relative
  EXPECT_NEAR(h.mean(), sum / 1000.0, 1e-6 * sum / 1000.0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Rng rng(0x0B54);
  Histogram a;
  Histogram b;
  Histogram combined;
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(1e-4, 1e-2);
    samples.push_back(v);
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  for (const double q : {0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "quantile " << q;
  expect_quantiles_match(a, samples);
}

TEST(Histogram, NegativeAndNanRecordsAreDropped) {
  Histogram h;
  h.record(-1.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.record(1e-3);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-3);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, ConcurrentRecordingIsLossless) {
  // 8 threads hammering one histogram: relaxed fetch_add recording must lose
  // nothing (TSan verifies there is no data race on the same CI leg).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(0x0B60 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) h.record(rng.uniform(1e-4, 1e-2));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 1e-4);
  EXPECT_LT(p50, 1e-2);
}

TEST(Histogram, SnapshotIsInternallyConsistent) {
  Rng rng(0x0B55);
  Histogram h;
  for (int i = 0; i < 5000; ++i) h.record(rng.uniform(1e-5, 1e-1));
  const HistogramSnapshot snap = h.snapshot();
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.count, h.count());
}

}  // namespace
}  // namespace pitk::obs
