/// \file test_trace.cpp
/// Chrome-trace export well-formedness and ring-buffer semantics.  Thread
/// rings persist for the life of the process, so every test quiesces
/// (set_enabled(false)) and clear()s before making count assertions — the
/// rings may already hold events from other tests in this binary.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json_check.hpp"

namespace pitk::obs::trace {
namespace {

void reset_tracing() {
  set_enabled(false);
  clear();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Trace, DisabledRecordingIsANoOp) {
  reset_tracing();
  const std::uint64_t before = event_count();
  instant("trace_test.ignored");
  { PITK_TRACE_SPAN("trace_test.ignored_span"); }
  EXPECT_EQ(event_count(), before);
}

TEST(Trace, SpansAndInstantsExportBalancedJson) {
  reset_tracing();
  set_enabled(true);
  {
    PITK_TRACE_SPAN("trace_test.outer");
    {
      PITK_TRACE_SPAN("trace_test.inner");
      instant("trace_test.mark");
    }
  }
  { PITK_TRACE_SPAN("trace_test.second"); }
  set_enabled(false);

  EXPECT_EQ(event_count(), 4u);  // 3 spans + 1 instant
  const std::string json = to_json();
  EXPECT_TRUE(test::json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Every span opens and closes: B and E counts match the span count.
  const std::size_t begins = test::count_occurrences(json, "\"ph\": \"B\"");
  const std::size_t ends = test::count_occurrences(json, "\"ph\": \"E\"");
  const std::size_t instants = test::count_occurrences(json, "\"ph\": \"i\"");
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, 3u);
  EXPECT_EQ(instants, 1u);
  EXPECT_NE(json.find("trace_test.outer"), std::string::npos);
  EXPECT_NE(json.find("trace_test.inner"), std::string::npos);
  EXPECT_NE(json.find("trace_test.mark"), std::string::npos);
  reset_tracing();
}

TEST(Trace, NestedSpansAreProperlyNestedInExport) {
  reset_tracing();
  set_enabled(true);
  {
    PITK_TRACE_SPAN("trace_test.parent");
    {
      PITK_TRACE_SPAN("trace_test.child");
      // Give both spans measurable, distinct durations: the exporter breaks
      // start-time ties by longer-duration-first, and a coarse clock could
      // otherwise report two zero-length spans it may order either way.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  set_enabled(false);

  const std::string json = to_json();
  EXPECT_TRUE(test::json_is_valid(json)) << json;
  // Chrome requires B events in start order and E events closing LIFO; the
  // parent must open before the child and close after it.
  const std::size_t parent_b = json.find("trace_test.parent");
  const std::size_t child_b = json.find("trace_test.child");
  ASSERT_NE(parent_b, std::string::npos);
  ASSERT_NE(child_b, std::string::npos);
  EXPECT_LT(parent_b, child_b);
  const std::size_t child_last = json.rfind("trace_test.child");
  const std::size_t parent_last = json.rfind("trace_test.parent");
  EXPECT_LT(child_last, parent_last);
  reset_tracing();
}

TEST(Trace, FullRingDropsAndCounts) {
  reset_tracing();
  set_enabled(true);
  // A fresh thread gets a fresh (empty) ring; overfill it deliberately.
  constexpr std::uint64_t kPushed = detail::ThreadRing::kCapacity + 7000;
  std::thread t([] {
    for (std::uint64_t i = 0; i < kPushed; ++i) instant("trace_test.flood");
  });
  t.join();
  set_enabled(false);

  EXPECT_EQ(dropped_count(), kPushed - detail::ThreadRing::kCapacity);
  // The export must stay well-formed even with a saturated ring.
  EXPECT_TRUE(test::json_is_valid(to_json()));
  reset_tracing();
  EXPECT_EQ(event_count(), 0u);
}

TEST(Trace, ConcurrentRecordAndExport) {
  reset_tracing();
  set_enabled(true);
  // Exporting while another thread records must be race-free (the TSan CI
  // leg runs this test): acquire on head covers every published record.
  std::thread recorder([] {
    for (int i = 0; i < 5000; ++i) {
      PITK_TRACE_SPAN("trace_test.concurrent");
      instant("trace_test.concurrent_mark");
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string json = to_json();
    EXPECT_TRUE(test::json_is_valid(json));
  }
  recorder.join();
  set_enabled(false);
  EXPECT_TRUE(test::json_is_valid(to_json()));
  reset_tracing();
}

TEST(Trace, WriteProducesParseableFile) {
  reset_tracing();
  set_enabled(true);
  { PITK_TRACE_SPAN("trace_test.file_span"); }
  instant("trace_test.file_mark");
  set_enabled(false);

  const std::string path = ::testing::TempDir() + "pitk_obs_trace_test.json";
  ASSERT_TRUE(write(path));
  const std::string json = slurp(path);
  EXPECT_TRUE(test::json_is_valid(json)) << json;
  EXPECT_NE(json.find("trace_test.file_span"), std::string::npos);
  std::remove(path.c_str());
  reset_tracing();
}

TEST(Trace, ClearRewindsAllRings) {
  reset_tracing();
  set_enabled(true);
  for (int i = 0; i < 10; ++i) instant("trace_test.pre_clear");
  set_enabled(false);
  EXPECT_GE(event_count(), 10u);
  clear();
  EXPECT_EQ(event_count(), 0u);
  EXPECT_EQ(dropped_count(), 0u);
}

}  // namespace
}  // namespace pitk::obs::trace
