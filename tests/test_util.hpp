#pragma once

/// \file test_util.hpp
/// Shared helpers for the test suite: tolerant comparisons and randomized
/// Kalman-problem generators that exercise every structural feature the
/// paper supports (varying dimensions, rectangular H, missing observations,
/// dense/diagonal/identity covariances, no prior).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kalman/cov_factor.hpp"
#include "kalman/model.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "la/random.hpp"

namespace pitk::test {

using kalman::CovFactor;
using kalman::Evolution;
using kalman::Observation;
using kalman::Problem;
using kalman::TimeStep;
using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

inline void expect_near(la::ConstMatrixView a, la::ConstMatrixView b, double tol,
                        const std::string& what = "matrix") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  const double d = la::max_abs_diff(a, b);
  EXPECT_LE(d, tol) << what << ": max abs diff " << d;
}

inline void expect_near(std::span<const double> a, std::span<const double> b, double tol,
                        const std::string& what = "vector") {
  ASSERT_EQ(a.size(), b.size()) << what;
  const double d = la::max_abs_diff(a, b);
  EXPECT_LE(d, tol) << what << ": max abs diff " << d;
}

inline void expect_means_near(const std::vector<Vector>& a, const std::vector<Vector>& b,
                              double tol, const std::string& what = "means") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_near(a[i].span(), b[i].span(), tol, what + "[" + std::to_string(i) + "]");
}

inline void expect_covs_near(const std::vector<Matrix>& a, const std::vector<Matrix>& b,
                             double tol, const std::string& what = "covs") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_near(a[i].view(), b[i].view(), tol, what + "[" + std::to_string(i) + "]");
}

/// Feature switches for the randomized generator.
struct RandomProblemSpec {
  index k = 10;             ///< number of evolutions
  index n_min = 2;          ///< state dims drawn from [n_min, n_max]
  index n_max = 4;
  bool varying_dims = false;
  bool rectangular_h = false;   ///< tall H blocks (dimension changes)
  double obs_probability = 1.0; ///< chance each step is observed
  bool dense_covariances = false;
  bool diagonal_covariances = false;
  bool with_control = true;
  double covariance_condition = 10.0;
  /// Guarantee well-posedness by always observing step 0 with a full-rank G.
  bool anchor_first_state = true;
};

inline CovFactor random_cov(Rng& rng, index n, const RandomProblemSpec& spec) {
  if (spec.dense_covariances) return CovFactor::dense(la::random_spd(rng, n, spec.covariance_condition));
  if (spec.diagonal_covariances) {
    Vector v(n);
    for (index i = 0; i < n; ++i) v[i] = rng.uniform(0.2, 2.0);
    return CovFactor::diagonal(std::move(v));
  }
  return CovFactor::identity(n);
}

/// A random well-posed smoothing problem exercising the requested features.
inline Problem random_problem(Rng& rng, const RandomProblemSpec& spec) {
  auto dim = [&](index) {
    return spec.varying_dims ? spec.n_min + static_cast<index>(rng.below(
                                   static_cast<std::uint64_t>(spec.n_max - spec.n_min + 1)))
                             : spec.n_max;
  };
  std::vector<TimeStep> steps(static_cast<std::size_t>(spec.k + 1));
  index n_prev = dim(0);
  for (index i = 0; i <= spec.k; ++i) {
    TimeStep& s = steps[static_cast<std::size_t>(i)];
    const index n = i == 0 ? n_prev : dim(i);
    s.n = n;
    if (i > 0) {
      Evolution e;
      if (spec.rectangular_h) {
        // A tall H (l = n + 1) keeps the evolution over-determined and
        // exercises the rectangular-H code path only QR smoothers support.
        const index l = n + 1;
        e.H = la::random_orthonormal(rng, l, n);
        e.F = la::random_gaussian(rng, l, n_prev);
        la::scale(0.5, e.F.view());
        e.noise = random_cov(rng, l, spec);
        if (spec.with_control) e.c = la::random_gaussian_vector(rng, l);
      } else {
        // Orthonormal F keeps trajectories bounded (the paper's benchmark
        // choice); fall back to damped Gaussian when dimensions change.
        e.F = (n == n_prev) ? la::random_orthonormal(rng, n)
                            : la::random_gaussian(rng, n, n_prev);
        if (n != n_prev) la::scale(0.5, e.F.view());
        e.noise = random_cov(rng, n, spec);
        if (spec.with_control) e.c = la::random_gaussian_vector(rng, n);
      }
      s.evolution = std::move(e);
    }
    const bool observe =
        (i == 0 && spec.anchor_first_state) || rng.uniform() < spec.obs_probability;
    if (observe) {
      Observation ob;
      const index m = (i == 0 && spec.anchor_first_state)
                          ? n
                          : 1 + static_cast<index>(rng.below(static_cast<std::uint64_t>(n)));
      ob.G = la::random_gaussian(rng, m, n);
      if (m == n && i == 0) ob.G = la::random_orthonormal(rng, n);  // full-rank anchor
      ob.o = la::random_gaussian_vector(rng, m);
      ob.noise = random_cov(rng, m, spec);
      s.observation = std::move(ob);
    }
    n_prev = n;
  }
  return Problem::from_steps(std::move(steps));
}

/// A random problem in the "common denominator" class every smoother family
/// supports: H = I, constant dimension, observation at every step, with a
/// prior folded in as a step-0 observation for the QR methods.
struct CommonProblem {
  Problem for_qr;               ///< prior included as an observation
  Problem for_conventional;     ///< plain problem (prior passed separately)
  kalman::GaussianPrior prior;
};

inline CommonProblem common_problem(Rng& rng, index n, index k, bool dense_cov = false) {
  RandomProblemSpec spec;
  spec.k = k;
  spec.n_min = spec.n_max = n;
  spec.obs_probability = 0.8;
  spec.dense_covariances = dense_cov;
  spec.anchor_first_state = false;
  Problem p = random_problem(rng, spec);
  // Drop any step-0 observation so the prior is the only anchor; this keeps
  // the RTS/associative and QR formulations exactly equivalent.
  p.step(0).observation.reset();

  CommonProblem cp;
  cp.prior.mean = la::random_gaussian_vector(rng, n);
  cp.prior.cov = la::random_spd(rng, n, 4.0);
  cp.for_conventional = p;
  cp.for_qr = kalman::with_prior_observation(p, cp.prior);
  return cp;
}

}  // namespace pitk::test
