#include "parallel/task_group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace pitk::par {
namespace {

TEST(TaskGroup, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup g(pool);
  for (int i = 0; i < 100; ++i) g.run([&] { count.fetch_add(1); });
  g.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskGroup, SerialPoolRunsInline) {
  ThreadPool pool(1);
  int count = 0;  // no atomics needed: everything is inline
  TaskGroup g(pool);
  for (int i = 0; i < 10; ++i) g.run([&] { ++count; });
  EXPECT_EQ(count, 10);
  g.wait();
}

TEST(TaskGroup, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup g(pool);
  g.run([&] { count.fetch_add(1); });
  g.wait();
  g.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskGroup, DestructorWaits) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  {
    TaskGroup g(pool);
    for (int i = 0; i < 32; ++i) g.run([&] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(4);
  TaskGroup g(pool);
  for (int i = 0; i < 8; ++i)
    g.run([i] {
      if (i == 5) throw std::runtime_error("task failed");
    });
  EXPECT_THROW(g.wait(), std::runtime_error);
}

TEST(TaskGroup, NestedGroupsJoinCorrectly) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.run([&] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) inner.run([&] { count.fetch_add(1); });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(count.load(), 32);
}

TEST(TaskGroup, RecursiveFibonacciShape) {
  // Classic fork-join recursion: stresses helping joins.
  ThreadPool pool(4);
  std::function<int(int)> fib = [&](int n) -> int {
    if (n < 2) return n;
    int a = 0;
    int b = 0;
    TaskGroup g(pool);
    g.run([&] { a = fib(n - 1); });
    b = fib(n - 2);
    g.wait();
    return a + b;
  };
  EXPECT_EQ(fib(12), 144);
}

}  // namespace
}  // namespace pitk::par
