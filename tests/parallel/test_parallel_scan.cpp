#include "parallel/parallel_scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

namespace pitk::par {
namespace {

/// 2x2 integer matrix: a small *non-commutative* associative monoid that
/// catches any ordering bug a plain + scan would miss.  Entries are
/// unsigned: products of {0,1} matrices grow exponentially with n, and the
/// wraparound of mod-2^64 arithmetic is still an associative monoid (signed
/// overflow would be UB, and the UBSan CI leg runs this test).
struct M2 {
  unsigned long long a = 1, b = 0, c = 0, d = 1;  // identity
  friend bool operator==(const M2&, const M2&) = default;
};

M2 mul(const M2& x, const M2& y) {
  return {x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d, x.c * y.a + x.d * y.c,
          x.c * y.b + x.d * y.d};
}

std::vector<M2> random_elements(std::size_t n, unsigned seed) {
  std::vector<M2> v(n);
  unsigned s = seed;
  auto next = [&s] { return s = s * 1664525u + 1013904223u; };
  for (auto& m : v) {
    // {0,1} entries; long products wrap mod 2^64, which is fine (see M2).
    m = {next() % 2, next() % 2, next() % 2, 1};
  }
  return v;
}

class ScanTest : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t, index>> {};

TEST_P(ScanTest, InclusiveScanMatchesSerialOnNonCommutativeOp) {
  auto [threads, n, grain] = GetParam();
  ThreadPool pool(threads);
  std::vector<M2> data = random_elements(n, 1234);
  std::vector<M2> expect = data;
  for (std::size_t i = 1; i < n; ++i) expect[i] = mul(expect[i - 1], expect[i]);

  parallel_inclusive_scan(pool, std::span<M2>(data), grain, mul);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(data[i], expect[i]) << "index " << i;
}

TEST_P(ScanTest, ReverseScanMatchesSerialOnNonCommutativeOp) {
  auto [threads, n, grain] = GetParam();
  ThreadPool pool(threads);
  std::vector<M2> data = random_elements(n, 777);
  std::vector<M2> expect = data;
  for (std::size_t i = n; i-- > 1;) {
    expect[i - 1] = mul(expect[i - 1], expect[i]);
  }
  parallel_reverse_inclusive_scan(pool, std::span<M2>(data), grain, mul);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(data[i], expect[i]) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(ThreadsBySizeByGrain, ScanTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u),
                                            ::testing::Values<std::size_t>(0, 1, 2, 17, 256, 1023),
                                            ::testing::Values<index>(1, 4, 10, 64)));

TEST(Scan, PrefixSumsOfIntegers) {
  ThreadPool pool(4);
  std::vector<long long> v(1000);
  std::iota(v.begin(), v.end(), 1);
  parallel_inclusive_scan(pool, std::span<long long>(v), 16,
                          [](long long a, long long b) { return a + b; });
  for (std::size_t i = 0; i < v.size(); ++i) {
    const long long n = static_cast<long long>(i) + 1;
    EXPECT_EQ(v[i], n * (n + 1) / 2);
  }
}

TEST(Scan, StringConcatenationKeepsOrder) {
  // The classic non-commutative smoke test.
  ThreadPool pool(4);
  std::vector<std::string> v;
  v.reserve(26);
  for (char ch = 'a'; ch <= 'z'; ++ch) v.emplace_back(1, ch);
  parallel_inclusive_scan(pool, std::span<std::string>(v), 3,
                          [](const std::string& a, const std::string& b) { return a + b; });
  EXPECT_EQ(v.back(), "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(v[2], "abc");
}

TEST(Scan, ReverseStringConcatenation) {
  ThreadPool pool(4);
  std::vector<std::string> v;
  for (char ch = 'a'; ch <= 'f'; ++ch) v.emplace_back(1, ch);
  parallel_reverse_inclusive_scan(pool, std::span<std::string>(v), 2,
                                  [](const std::string& a, const std::string& b) { return a + b; });
  EXPECT_EQ(v.front(), "abcdef");
  EXPECT_EQ(v[4], "ef");
}

TEST(Scan, SingleElementUntouched) {
  ThreadPool pool(2);
  std::vector<int> v{42};
  parallel_inclusive_scan(pool, std::span<int>(v), 10, [](int a, int b) { return a + b; });
  EXPECT_EQ(v[0], 42);
}

}  // namespace
}  // namespace pitk::par
