#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pitk::par {
namespace {

class ParallelForTest : public ::testing::TestWithParam<std::tuple<unsigned, index, index>> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  auto [threads, n, grain] = GetParam();
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for(pool, 0, n, grain, [&](index i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (index i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsBySizeByGrain, ParallelForTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u), ::testing::Values<index>(0, 1, 7, 1000),
                       ::testing::Values<index>(1, 10, 1000000)));

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_chunked(pool, 5, 5, 10, [&](index, index) { ++calls; });
  parallel_for_chunked(pool, 7, 3, 10, [&](index, index) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ChunkBoundsArePreserved) {
  ThreadPool pool(4);
  std::atomic<index> total{0};
  parallel_for_chunked(pool, 0, 103, 10, [&](index b, index e) {
    EXPECT_LT(b, e);
    EXPECT_LE(e - b, 10);
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 103);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<index> sum{0};
  parallel_for(pool, 100, 200, 7, [&](index i) { sum.fetch_add(i); });
  index expect = 0;
  for (index i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ParallelFor, GrainBelowOneIsClamped) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 10, 0, [&](index) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000, 10,
                   [&](index i) {
                     if (i == 517) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SerialPoolPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(pool, 0, 10, 1,
                            [&](index i) {
                              if (i == 3) throw std::logic_error("x");
                            }),
               std::logic_error);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 8, 1, [&](index) {
    parallel_for(pool, 0, 8, 1, [&](index) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, ManySmallLoopsBackToBack) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 200; ++rep) {
    std::atomic<int> c{0};
    parallel_for(pool, 0, 16, 1, [&](index) { c.fetch_add(1); });
    ASSERT_EQ(c.load(), 16);
  }
}

TEST(ParallelReduce, SumsMatchSerial) {
  ThreadPool pool(4);
  const index n = 10001;
  const auto sum = parallel_reduce<long long>(
      pool, 0, n, 64, 0LL, [](index i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, WorksOnSerialPool) {
  ThreadPool pool(1);
  const auto sum = parallel_reduce<int>(
      pool, 0, 100, 10, 0, [](index) { return 1; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 100);
}

}  // namespace
}  // namespace pitk::par
