#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace pitk::par {
namespace {

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  EXPECT_TRUE(pool.is_serial());
}

TEST(ThreadPool, SerialPoolRunsSubmittedTasksInline) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1);  // ran synchronously: no workers exist
  EXPECT_FALSE(pool.run_one());
}

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  constexpr int n = 1000;
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < n; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1, std::memory_order_acq_rel);
      done.notify_one();
    });
  }
  int cur = done.load();
  while (cur < n) {
    if (!const_cast<ThreadPool&>(pool).run_one()) done.wait(cur);
    cur = done.load();
  }
  EXPECT_EQ(counter.load(), n);
}

TEST(ThreadPool, RunOneHelpsDrainQueue) {
  // With 2-way concurrency there is exactly one worker; flood it and drain
  // from the caller via run_one.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  constexpr int n = 100;
  for (int i = 0; i < n; ++i) pool.submit([&] { counter.fetch_add(1); });
  while (counter.load() < n) {
    pool.run_one();  // either helps or spins while the worker drains
  }
  EXPECT_EQ(counter.load(), n);
}

TEST(ThreadPool, TasksSubmittedFromWorkersExecute) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<bool> inner_done{false};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] {
      counter.fetch_add(1);
      inner_done.store(true);
      inner_done.notify_one();
    });
  });
  while (!inner_done.load()) {
    if (!pool.run_one()) std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
    // Give workers a chance; destructor must not hang regardless.
    while (counter.load() < 50) {
      if (!pool.run_one()) std::this_thread::yield();
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, HardwareCoresIsPositive) { EXPECT_GE(ThreadPool::hardware_cores(), 1u); }

TEST(ThreadPool, DefaultConcurrencyHonorsAndValidatesEnv) {
  const char* saved = std::getenv("PITK_THREADS");
  const std::string restore = saved != nullptr ? saved : "";

  setenv("PITK_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_concurrency(), 3u);
  // Garbage, trailing junk, non-positive, and overflowing values fall back.
  for (const char* bad : {"banana", "4x", "0", "-2", "", "999999999999999999999"}) {
    setenv("PITK_THREADS", bad, 1);
    EXPECT_EQ(ThreadPool::default_concurrency(), ThreadPool::hardware_cores()) << bad;
  }
  // Absurd-but-parsable counts clamp instead of truncating through a cast.
  setenv("PITK_THREADS", "4294967297", 1);  // 2^32 + 1
  EXPECT_EQ(ThreadPool::default_concurrency(), 1024u);

  if (saved != nullptr)
    setenv("PITK_THREADS", restore.c_str(), 1);
  else
    unsetenv("PITK_THREADS");
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, ManyPoolsSequentially) {
  // Pools must be cheap enough to create per benchmark configuration.
  for (int rep = 0; rep < 8; ++rep) {
    ThreadPool pool(2);
    std::atomic<int> c{0};
    std::atomic<int> done{0};
    for (int i = 0; i < 10; ++i)
      pool.submit([&] {
        c.fetch_add(1);
        done.fetch_add(1, std::memory_order_acq_rel);
      });
    while (done.load() < 10) {
      if (!pool.run_one()) std::this_thread::yield();
    }
    EXPECT_EQ(c.load(), 10);
  }
}

}  // namespace
}  // namespace pitk::par
