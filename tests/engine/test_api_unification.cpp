/// \file test_api_unification.cpp
/// The PR-9 API redesign contract:
///
///  - JobOptions / NonlinearJobOptions are thin extensions of the shared
///    SubmitOptions base (the deadline/timeout/cancel/into/backend plumbing
///    exists exactly once);
///  - the one open_session(SessionOptions) entry point (nonlinear and
///    durable as orthogonal options) produces *bit-identical* results to
///    the four deprecated pre-unification entry points — including
///    byte-identical on-disk journals for the durable pair, since journals
///    carry no timestamps.
///
/// The deprecated names are exercised here on purpose (warnings suppressed
/// locally); everywhere else in the tree calls the unified API.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "io/session_store.hpp"
#include "kalman/simulate.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

namespace fs = std::filesystem;
using la::index;
using la::Rng;
using la::Vector;

static_assert(std::is_base_of_v<SubmitOptions, JobOptions>,
              "JobOptions must extend the shared SubmitOptions");
static_assert(std::is_base_of_v<SubmitOptions, NonlinearJobOptions>,
              "NonlinearJobOptions must extend the shared SubmitOptions");

io::SessionStore fresh_store(const std::string& name) {
  io::DurabilityOptions o;
  o.dir = testing::TempDir() + "/pitk_api_unification/" + name;
  fs::remove_all(o.dir);
  return io::SessionStore(o);
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
}

void expect_bit_identical(const kalman::SmootherResult& a, const kalman::SmootherResult& b) {
  ASSERT_EQ(a.means.size(), b.means.size());
  for (std::size_t i = 0; i < a.means.size(); ++i)
    for (index j = 0; j < a.means[i].size(); ++j)
      EXPECT_EQ(a.means[i][j], b.means[i][j]) << "state " << i << " component " << j;
}

void feed(Session& s, const kalman::Problem& track) {
  for (index i = 1; i < track.num_states(); ++i) {
    const kalman::TimeStep& step = track.step(i);
    if (step.evolution) s.evolve(step.evolution->F, step.evolution->c, step.evolution->noise);
    if (step.observation)
      s.observe(step.observation->G, step.observation->o, step.observation->noise);
  }
}

// The deprecated wrappers are the test subject here.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

TEST(ApiUnification, SubmitOptionsSliceCarriesTheSharedFields) {
  auto cancel = std::make_shared<CancelToken>();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  kalman::SmootherResult storage;

  JobOptions jo;
  jo.backend = Backend::Rts;
  jo.into = &storage;
  jo.deadline = deadline;
  jo.timeout = std::chrono::duration<double>(1.5);
  jo.cancel = cancel;

  // Slicing to the base keeps every shared field (one source of truth).
  const SubmitOptions& base = jo;
  EXPECT_EQ(base.backend, Backend::Rts);
  EXPECT_EQ(base.into, &storage);
  EXPECT_EQ(base.deadline, deadline);
  EXPECT_EQ(base.timeout, std::chrono::duration<double>(1.5));
  EXPECT_EQ(base.cancel, cancel);

  // And assigning a base into a derived adapter carries them over.
  NonlinearJobOptions njo;
  static_cast<SubmitOptions&>(njo) = base;
  EXPECT_EQ(njo.backend, Backend::Rts);
  EXPECT_EQ(njo.cancel, cancel);
  EXPECT_EQ(njo.delta_prior_variance, 1e4);  // derived defaults untouched
}

TEST(ApiUnification, LinearSessionOldVsNewBitIdentical) {
  SmootherEngine eng({.threads = 2});
  Rng rng(0xAB1);
  const kalman::Problem track = kalman::make_paper_benchmark(rng, 3, 32);

  Session s_new = eng.open_session(3);
  Session s_old = eng.open_session(3, SessionOptions{});
  feed(s_new, track);
  feed(s_old, track);
  expect_bit_identical(s_old.smooth(true), s_new.smooth(true));
}

TEST(ApiUnification, NonlinearSessionOldVsNewBitIdentical) {
  SmootherEngine eng({.threads = 2});
  Rng rng_a(0xAB2), rng_b(0xAB2);  // identical streams -> identical models
  kalman::NonlinearModel m_old = kalman::make_pendulum_benchmark(rng_a, 24, 0.5);
  kalman::NonlinearModel m_new = kalman::make_pendulum_benchmark(rng_b, 24, 0.5);

  NonlinearJobOptions opts;
  opts.gn.tolerance = 1e-12;
  NonlinearSession old_s =
      eng.open_nonlinear_session(std::move(m_old), Vector({0.5, 0.0}), opts);
  SessionOptions so;
  so.nonlinear = opts;
  NonlinearSession new_s = eng.open_session(std::move(m_new), Vector({0.5, 0.0}), so);

  expect_bit_identical(old_s.smooth(), new_s.smooth());
}

TEST(ApiUnification, DurableLinearOldVsNewByteIdenticalJournal) {
  SmootherEngine eng({.threads = 2});
  Rng rng(0xAB3);
  const kalman::Problem track = kalman::make_paper_benchmark(rng, 3, 24);
  io::SessionStore store_old = fresh_store("lin-old");
  io::SessionStore store_new = fresh_store("lin-new");

  {
    Session s_old = eng.open_durable_session(store_old, "tenant", 3);
    Session s_new = eng.open_session(3, SessionOptions{}.durable(store_new, "tenant"));
    feed(s_old, track);
    feed(s_new, track);
    expect_bit_identical(s_old.smooth(true), s_new.smooth(true));
  }
  const std::string old_bytes = file_bytes(store_old.path_for("tenant"));
  ASSERT_FALSE(old_bytes.empty());
  EXPECT_EQ(old_bytes, file_bytes(store_new.path_for("tenant")))
      << "old and new durable opens must journal identically";
}

TEST(ApiUnification, DurableNonlinearOldVsNewByteIdenticalJournal) {
  SmootherEngine eng({.threads = 2});
  Rng rng_a(0xAB4), rng_b(0xAB4);
  kalman::NonlinearModel m_old = kalman::make_pendulum_benchmark(rng_a, 16, 0.4);
  kalman::NonlinearModel m_new = kalman::make_pendulum_benchmark(rng_b, 16, 0.4);
  io::SessionStore store_old = fresh_store("nl-old");
  io::SessionStore store_new = fresh_store("nl-new");

  {
    NonlinearSession s_old =
        eng.open_durable_nonlinear_session(store_old, "tenant", std::move(m_old),
                                           Vector({0.4, 0.0}));
    NonlinearSession s_new = eng.open_session(
        std::move(m_new), Vector({0.4, 0.0}), SessionOptions{}.durable(store_new, "tenant"));
    expect_bit_identical(s_old.smooth(), s_new.smooth());
  }
  const std::string old_bytes = file_bytes(store_old.path_for("tenant"));
  ASSERT_FALSE(old_bytes.empty());
  EXPECT_EQ(old_bytes, file_bytes(store_new.path_for("tenant")))
      << "old and new durable nonlinear opens must journal identically";
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ApiUnification, SessionOptionsValidatesLikeTheOldEntryPoints) {
  SmootherEngine eng({.threads = 1});
  Rng rng(0xAB5);
  kalman::NonlinearModel m = kalman::make_pendulum_benchmark(rng, 8, 0.3);
  // Wrong-dimension u0 still throws through the unified path.
  EXPECT_THROW((void)eng.open_session(std::move(m), Vector({1.0, 2.0, 3.0})),
               std::invalid_argument);
  // Durable without a valid id throws from the store's id validation.
  io::SessionStore store = fresh_store("validate");
  EXPECT_THROW((void)eng.open_session(3, SessionOptions{}.durable(store, "bad id!")),
               std::invalid_argument);
}

TEST(ApiUnification, QueuedJobsAccessorTracksTheBoundedQueue) {
  SmootherEngine eng({.threads = 1});
  EXPECT_EQ(eng.queued_jobs(), 0u);
  Rng rng(0xAB6);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(eng.submit(kalman::make_paper_benchmark(rng, 3, 16),
                              [] {
                                JobOptions jo;
                                jo.prior = kalman::diffuse_prior(3);
                                return jo;
                              }()));
  eng.wait_idle();
  for (auto& f : futs) (void)f.get();
  EXPECT_EQ(eng.queued_jobs(), 0u);
}

}  // namespace
}  // namespace pitk::engine
