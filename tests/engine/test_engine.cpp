#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "kalman/dense_reference.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

using la::index;
using la::Rng;

TEST(SmootherEngine, BatchMatchesDenseReference) {
  Rng rng(8001);
  SmootherEngine eng({.threads = 4});

  std::vector<test::CommonProblem> cps;
  std::vector<Problem> jobs;
  for (int i = 0; i < 16; ++i) {
    cps.push_back(test::common_problem(rng, 3, 25 + i));
    jobs.push_back(cps.back().for_conventional);
  }
  std::vector<std::future<JobResult>> futs;
  futs.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobOptions jo;
    jo.prior = cps[i].prior;
    futs.push_back(eng.submit(std::move(jobs[i]), jo));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const JobResult jr = futs[i].get();
    const SmootherResult ref = kalman::dense_smooth(cps[i].for_qr, true);
    test::expect_means_near(jr.result.means, ref.means, 1e-7, "job " + std::to_string(i));
    test::expect_covs_near(jr.result.covariances, ref.covariances, 1e-6,
                           "job " + std::to_string(i));
    EXPECT_NE(jr.metrics.backend, Backend::Auto);
    EXPECT_EQ(jr.metrics.num_states, cps[i].for_conventional.num_states());
    EXPECT_GE(jr.metrics.queue_seconds, 0.0);
    EXPECT_GE(jr.metrics.solve_seconds, 0.0);
  }
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_submitted, 16u);
  EXPECT_EQ(st.jobs_completed, 16u);
  EXPECT_EQ(st.jobs_failed, 0u);
}

TEST(SmootherEngine, SubmitBatchSharesOneOptionSet) {
  Rng rng(8002);
  SmootherEngine eng({.threads = 2});
  std::vector<test::CommonProblem> cps;
  std::vector<Problem> jobs;
  for (int i = 0; i < 6; ++i) {
    cps.push_back(test::common_problem(rng, 2, 20));
    jobs.push_back(cps.back().for_qr);  // prior already folded in
  }
  JobOptions jo;
  jo.compute_covariance = false;
  auto futs = eng.submit_batch(std::move(jobs), jo);
  ASSERT_EQ(futs.size(), 6u);
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const JobResult jr = futs[i].get();
    EXPECT_FALSE(jr.result.has_covariances());
    const SmootherResult ref = kalman::dense_smooth(cps[i].for_qr, false);
    test::expect_means_near(jr.result.means, ref.means, 1e-7);
  }
}

TEST(SmootherEngine, ExplicitBackendIsHonored) {
  Rng rng(8003);
  SmootherEngine eng({.threads = 4});
  const test::CommonProblem cp = test::common_problem(rng, 3, 30);
  JobOptions jo;
  jo.backend = Backend::OddEven;
  jo.prior = cp.prior;
  const JobResult jr = eng.submit(cp.for_conventional, jo).get();
  EXPECT_EQ(jr.metrics.backend, Backend::OddEven);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  test::expect_means_near(jr.result.means, ref.means, 1e-7);
}

TEST(SmootherEngine, UnsupportedBackendFailsThroughTheFuture) {
  Rng rng(8004);
  SmootherEngine eng({.threads = 2});
  const test::CommonProblem cp = test::common_problem(rng, 3, 10);
  JobOptions jo;
  jo.backend = Backend::Rts;  // no prior provided: unsupported
  auto fut = eng.submit(cp.for_conventional, jo);
  try {
    (void)fut.get();
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), SolveErrorCode::BackendUnsupported);
  }
  // The future is fulfilled only after accounting, so the failure is
  // already visible in stats() without any extra synchronization.
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_failed, 1u);
  EXPECT_EQ(st.jobs_completed, 0u);
}

TEST(SmootherEngine, LargeJobsTakeTheIntraParallelPath) {
  Rng rng(8005);
  // Force the cut to zero so even a modest job is "large".
  SmootherEngine eng({.threads = 4, .small_job_flops = 0.0});
  const test::CommonProblem cp = test::common_problem(rng, 3, 300);
  JobOptions jo;
  jo.backend = Backend::OddEven;
  const JobResult jr = eng.submit(cp.for_qr, jo).get();
  EXPECT_TRUE(jr.metrics.intra_parallel);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  test::expect_means_near(jr.result.means, ref.means, 1e-7);
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_large, 1u);
  EXPECT_EQ(st.jobs_small, 0u);
}

TEST(SmootherEngine, SmallJobsStaySingleTask) {
  Rng rng(8006);
  // Infinite cut: everything runs whole-job, even a pinned parallel backend.
  SmootherEngine eng({.threads = 4, .small_job_flops = 1e30});
  const test::CommonProblem cp = test::common_problem(rng, 3, 200);
  JobOptions jo;
  jo.backend = Backend::OddEven;
  const JobResult jr = eng.submit(cp.for_qr, jo).get();
  EXPECT_FALSE(jr.metrics.intra_parallel);
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_small, 1u);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  test::expect_means_near(jr.result.means, ref.means, 1e-7);
}

TEST(SmootherEngine, SerialEngineStillServesJobs) {
  Rng rng(8007);
  SmootherEngine eng({.threads = 1});
  EXPECT_EQ(eng.concurrency(), 1u);
  const test::CommonProblem cp = test::common_problem(rng, 3, 20);
  JobOptions jo;
  jo.prior = cp.prior;
  const JobResult jr = eng.submit(cp.for_conventional, jo).get();
  EXPECT_FALSE(jr.metrics.intra_parallel);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  test::expect_means_near(jr.result.means, ref.means, 1e-7);
}

TEST(SmootherEngine, AutoSelectionRecordsTheResolvedBackend) {
  Rng rng(8008);
  // Zero cut so the job is classified large; auto must then resolve to the
  // parallel odd-even solver on a 4-way pool (the selection cutoff is well
  // below 4k states) and record it in both metrics and aggregate stats.
  SmootherEngine eng({.threads = 4, .small_job_flops = 0.0});
  const test::CommonProblem cp = test::common_problem(rng, 2, 4000);
  JobOptions jo;
  jo.prior = cp.prior;
  const JobResult jr = eng.submit(cp.for_conventional, jo).get();
  EXPECT_EQ(jr.metrics.backend, Backend::OddEven);
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.per_backend[backend_index(Backend::OddEven)], 1u);
}

TEST(SmootherEngine, AutoResolvesForTheLaneThatServesTheJob) {
  Rng rng(8010);
  SmootherEngine eng({.threads = 4});
  // Above the thread-count selection cutoff (320 states at 4 threads) but
  // far below the default flop cut: the job runs whole-job on one lane, so
  // auto must pick a sequential solver, not odd-even-run-serially.
  const test::CommonProblem cp = test::common_problem(rng, 2, 400);
  JobOptions jo;
  jo.prior = cp.prior;
  const JobResult jr = eng.submit(cp.for_conventional, jo).get();
  EXPECT_FALSE(jr.metrics.intra_parallel);
  EXPECT_FALSE(backend_info(jr.metrics.backend).intra_parallel);
}

TEST(SmootherEngine, WaitIdleDrainsEverything) {
  Rng rng(8009);
  SmootherEngine eng({.threads = 4});
  std::vector<Problem> jobs;
  std::vector<test::CommonProblem> cps;
  for (int i = 0; i < 24; ++i) {
    cps.push_back(test::common_problem(rng, 2, 15));
    jobs.push_back(cps.back().for_qr);
  }
  auto futs = eng.submit_batch(std::move(jobs), {});
  eng.wait_idle();
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_submitted, 24u);
  EXPECT_EQ(st.jobs_completed + st.jobs_failed, 24u);
  EXPECT_EQ(st.jobs_small + st.jobs_large, 24u);
  for (auto& f : futs)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
}

}  // namespace
}  // namespace pitk::engine
