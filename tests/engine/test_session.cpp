#include "engine/session.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "engine/engine.hpp"
#include "kalman/dense_reference.hpp"
#include "la/random.hpp"
#include "parallel/task_group.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

using la::index;
using la::Rng;

/// Replay a fully-built problem through a session's streaming interface.
void drive(Session& s, const kalman::Problem& p) {
  for (index i = 0; i < p.num_states(); ++i) {
    const kalman::TimeStep& step = p.step(i);
    if (step.evolution) {
      const kalman::Evolution& e = *step.evolution;
      if (e.identity_h())
        s.evolve(e.F, e.c, e.noise);
      else
        s.evolve_rect(step.n, e.H, e.F, e.c, e.noise);
    }
    if (step.observation) {
      const kalman::Observation& ob = *step.observation;
      s.observe(ob.G, ob.o, ob.noise);
    }
  }
}

TEST(Session, StreamedSmoothMatchesDenseReference) {
  Rng rng(9001);
  SmootherEngine eng({.threads = 2});
  const test::CommonProblem cp = test::common_problem(rng, 3, 30);

  Session s = eng.open_session(3);
  drive(s, cp.for_qr);
  EXPECT_EQ(s.current_step(), cp.for_qr.last_index());
  EXPECT_EQ(s.current_dim(), 3);

  const SmootherResult got = s.smooth(true);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  test::expect_means_near(got.means, ref.means, 1e-7);
  test::expect_covs_near(got.covariances, ref.covariances, 1e-6);
}

TEST(Session, SmoothAsyncMatchesSynchronousSmooth) {
  Rng rng(9002);
  SmootherEngine eng({.threads = 4});
  const test::CommonProblem cp = test::common_problem(rng, 3, 25);

  Session s = eng.open_session(3);
  drive(s, cp.for_qr);
  const SmootherResult sync = s.smooth(true);
  const JobResult async = s.smooth_async(true).get();
  EXPECT_EQ(async.metrics.backend, Backend::PaigeSaunders);
  EXPECT_EQ(async.metrics.num_states, cp.for_qr.num_states());
  test::expect_means_near(async.result.means, sync.means, 0.0, "async == sync");
  test::expect_covs_near(async.result.covariances, sync.covariances, 0.0, "async == sync");

  // Session jobs are accounted like batch jobs.
  eng.wait_idle();
  EXPECT_GE(eng.stats().per_backend[backend_index(Backend::PaigeSaunders)], 1u);
}

TEST(Session, FilteredEstimateAvailableMidStream) {
  Rng rng(9003);
  SmootherEngine eng({.threads = 1});
  const test::CommonProblem cp = test::common_problem(rng, 3, 12);

  Session s = eng.open_session(3);
  drive(s, cp.for_qr);  // step 0 carries the full-rank prior observation
  const auto est = s.estimate();
  ASSERT_TRUE(est.has_value());
  const auto cov = s.covariance();
  ASSERT_TRUE(cov.has_value());
  EXPECT_EQ(cov->rows(), 3);
  // The filtered estimate of the last state equals the smoothed one.
  const SmootherResult sm = s.smooth(false);
  test::expect_near(est->span(), sm.means.back().span(), 1e-8, "filtered == smoothed (last)");
}

TEST(Session, ResetStartsAFreshTrack) {
  Rng rng(9004);
  SmootherEngine eng({.threads = 2});
  const test::CommonProblem first = test::common_problem(rng, 3, 15);
  const test::CommonProblem second = test::common_problem(rng, 2, 20);

  Session s = eng.open_session(3);
  drive(s, first.for_qr);
  EXPECT_EQ(s.current_step(), first.for_qr.last_index());

  s.reset(2);
  EXPECT_EQ(s.current_step(), 0);
  EXPECT_EQ(s.current_dim(), 2);
  drive(s, second.for_qr);
  const SmootherResult got = s.smooth(true);
  const SmootherResult ref = kalman::dense_smooth(second.for_qr, true);
  test::expect_means_near(got.means, ref.means, 1e-7);
  test::expect_covs_near(got.covariances, ref.covariances, 1e-6);
}

// Many sessions streaming concurrently from pool threads, each smoothing
// mid-stream and at the end, interleaved with batch jobs on the same pool.
TEST(Session, ConcurrentSessionsStress) {
  constexpr int S = 12;
  Rng rng(9005);
  SmootherEngine eng({.threads = 4});

  std::vector<test::CommonProblem> cps;
  std::vector<Session> sessions;
  cps.reserve(S);
  sessions.reserve(S);
  for (int i = 0; i < S; ++i) {
    cps.push_back(test::common_problem(rng, 3, 24 + (i % 7)));
    sessions.push_back(eng.open_session(3));
  }

  std::vector<SmootherResult> streamed(S);
  std::vector<std::future<JobResult>> async(S);
  std::vector<int> estimates_seen(S, 0);
  {
    par::TaskGroup group(eng.pool());
    for (int i = 0; i < S; ++i) {
      group.run([i, &cps, &sessions, &streamed, &async, &estimates_seen] {
        Session& s = sessions[static_cast<std::size_t>(i)];
        const kalman::Problem& p = cps[static_cast<std::size_t>(i)].for_qr;
        for (index t = 0; t < p.num_states(); ++t) {
          const kalman::TimeStep& step = p.step(t);
          if (step.evolution) s.evolve(step.evolution->F, step.evolution->c, step.evolution->noise);
          if (step.observation)
            s.observe(step.observation->G, step.observation->o, step.observation->noise);
          // Interleave filtered reads with the stream.
          if (t % 8 == 4 && s.estimate().has_value())
            ++estimates_seen[static_cast<std::size_t>(i)];
        }
        // Synchronous smooth runs inline: always safe on a pool thread.
        streamed[static_cast<std::size_t>(i)] = s.smooth(true);
        // Async smooth is only *requested* here; the future is consumed on
        // the main thread so no pool lane ever blocks on another job.
        async[static_cast<std::size_t>(i)] = s.smooth_async(false);
      });
    }
    group.wait();
  }

  for (int i = 0; i < S; ++i) {
    const SmootherResult ref = kalman::dense_smooth(cps[static_cast<std::size_t>(i)].for_qr, true);
    test::expect_means_near(streamed[static_cast<std::size_t>(i)].means, ref.means, 1e-7,
                            "session " + std::to_string(i));
    test::expect_covs_near(streamed[static_cast<std::size_t>(i)].covariances, ref.covariances,
                           1e-6, "session " + std::to_string(i));
    const JobResult jr = async[static_cast<std::size_t>(i)].get();
    test::expect_means_near(jr.result.means, ref.means, 1e-7,
                            "async session " + std::to_string(i));
    EXPECT_GT(estimates_seen[static_cast<std::size_t>(i)], 0);
  }

  eng.wait_idle();
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_submitted, static_cast<std::uint64_t>(S));
  EXPECT_EQ(st.jobs_failed, 0u);
}

}  // namespace
}  // namespace pitk::engine
