/// \file test_nonlinear.cpp
/// Nonlinear (Gauss-Newton/LM) tenants through the SmootherEngine.
///
/// The acceptance bar: engine-routed Gauss-Newton agrees with the direct
/// gauss_newton_smooth to 1e-10 across all five inner backends, batched
/// nonlinear tenants share the pool (metrics/stats sane, everything
/// completes), and a warm worker runs a whole nonlinear job — outer
/// iterations included — with zero counted heap allocations.  The mixed
/// nonlinear+linear stress case is the TSan CI leg's main course: nested
/// inner solves of large nonlinear jobs interleave with linear batch jobs
/// and session smooths on one shared pool.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "core/gauss_newton.hpp"
#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "kalman/simulate.hpp"
#include "la/workspace.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

using kalman::CovFactor;
using kalman::GaussNewtonOptions;
using kalman::GaussNewtonResult;
using kalman::NonlinearModel;
using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

/// The shared noisy-pendulum benchmark (kalman/simulate.cpp): always carries
/// the *_into callbacks; `identity_noise` makes even a cold Gauss-Newton
/// init allocation-free on a warm state.
NonlinearModel pendulum_model(Rng& rng, index k, bool identity_noise = false) {
  return kalman::make_pendulum_benchmark(rng, k, /*theta0=*/0.5, identity_noise);
}

std::vector<Vector> flat_init(index k, double angle = 0.1) {
  std::vector<Vector> init(static_cast<std::size_t>(k + 1));
  for (auto& v : init) v = Vector({angle, 0.0});
  return init;
}

/// Tight-tolerance options so every backend's iteration lands within 1e-10
/// of the shared Gauss-Newton fixed point.
GaussNewtonOptions tight_options(bool lm = false) {
  GaussNewtonOptions gn;
  gn.tolerance = 1e-13;
  gn.max_iterations = 60;
  gn.levenberg_marquardt = lm;
  return gn;
}

TEST(EngineNonlinear, MatchesDirectAcrossAllBackends) {
  Rng rng(0x6E1);
  NonlinearModel m = pendulum_model(rng, 40);
  const GaussNewtonOptions gn = tight_options();

  par::ThreadPool pool(4);
  const GaussNewtonResult direct = gauss_newton_smooth(m, flat_init(m.k), pool, gn);
  ASSERT_TRUE(direct.converged);

  SmootherEngine eng({.threads = 4});
  for (const BackendInfo& info : all_backends()) {
    NonlinearJobOptions opts;
    opts.backend = info.id;
    opts.gn = gn;
    JobResult jr = eng.submit_nonlinear({m, flat_init(m.k)}, opts).get();
    EXPECT_TRUE(jr.metrics.nonlinear_converged) << info.name;
    EXPECT_GT(jr.metrics.outer_iterations, 0) << info.name;
    EXPECT_EQ(jr.metrics.backend, info.id);
    test::expect_means_near(jr.result.means, direct.states, 1e-10,
                            std::string("engine vs direct means via ") + info.name);
  }
}

TEST(EngineNonlinear, LevenbergMarquardtMatchesDirect) {
  Rng rng(0x6E2);
  NonlinearModel m = pendulum_model(rng, 32);
  const GaussNewtonOptions gn = tight_options(/*lm=*/true);

  par::ThreadPool pool(2);
  const GaussNewtonResult direct = gauss_newton_smooth(m, flat_init(m.k), pool, gn);
  ASSERT_TRUE(direct.converged);

  SmootherEngine eng({.threads = 2});
  for (const Backend b : {Backend::PaigeSaunders, Backend::OddEven, Backend::Rts}) {
    NonlinearJobOptions opts;
    opts.backend = b;
    opts.gn = gn;
    JobResult jr = eng.submit_nonlinear({m, flat_init(m.k)}, opts).get();
    EXPECT_TRUE(jr.metrics.nonlinear_converged);
    EXPECT_LE(jr.metrics.nonlinear_final_cost, direct.final_cost + 1e-8);
    test::expect_means_near(jr.result.means, direct.states, 1e-10, "LM engine vs direct");
  }
}

TEST(EngineNonlinear, FinalCovariancePass) {
  Rng rng(0x6E3);
  NonlinearModel m = pendulum_model(rng, 24);
  GaussNewtonOptions gn = tight_options();
  gn.final_covariance = true;

  par::ThreadPool pool(2);
  const GaussNewtonResult direct = gauss_newton_smooth(m, flat_init(m.k), pool, gn);
  ASSERT_EQ(direct.covariances.size(), static_cast<std::size_t>(m.k + 1));

  SmootherEngine eng({.threads = 2});
  NonlinearJobOptions opts;
  opts.backend = Backend::PaigeSaunders;
  opts.gn = gn;
  JobResult jr = eng.submit_nonlinear({m, flat_init(m.k)}, opts).get();
  ASSERT_EQ(jr.result.covariances.size(), direct.covariances.size());
  test::expect_covs_near(jr.result.covariances, direct.covariances, 1e-8,
                         "final covariance engine vs direct");

  // Regression: after LM's *damped* iterations the final-covariance pass
  // relinearizes undamped, which must swap the stacked damping noise back
  // for the true per-step factors (shape 3 -> 1 observation rows here).
  GaussNewtonOptions lm = gn;
  lm.levenberg_marquardt = true;
  NonlinearJobOptions lopts;
  lopts.backend = Backend::PaigeSaunders;
  lopts.gn = lm;
  JobResult lm_jr = eng.submit_nonlinear({m, flat_init(m.k)}, lopts).get();
  ASSERT_EQ(lm_jr.result.covariances.size(), direct.covariances.size());
  test::expect_covs_near(lm_jr.result.covariances, direct.covariances, 1e-8,
                         "LM final covariance engine vs direct");
}

TEST(EngineNonlinear, BatchedTenantsShareThePool) {
  Rng rng(0x6E4);
  const int jobs = 12;
  std::vector<NonlinearJob> batch;
  std::vector<NonlinearModel> models;
  for (int j = 0; j < jobs; ++j) {
    models.push_back(pendulum_model(rng, 36));
    batch.push_back({models.back(), flat_init(36)});
  }

  SmootherEngine eng({.threads = 4});
  NonlinearJobOptions opts;
  opts.gn = tight_options();
  auto futures = eng.submit_nonlinear_batch(std::move(batch), opts);
  eng.wait_idle();
  ASSERT_EQ(futures.size(), static_cast<std::size_t>(jobs));

  par::ThreadPool serial(1);
  for (int j = 0; j < jobs; ++j) {
    JobResult jr = futures[static_cast<std::size_t>(j)].get();
    EXPECT_TRUE(jr.metrics.nonlinear_converged) << "job " << j;
    EXPECT_GT(jr.metrics.outer_iterations, 0);
    EXPECT_GE(jr.metrics.queue_seconds, 0.0);
    // Spot-check one tenant end to end against the direct solver.
    if (j == 0) {
      const GaussNewtonResult direct = gauss_newton_smooth(
          models[static_cast<std::size_t>(j)], flat_init(36), serial, opts.gn);
      test::expect_means_near(jr.result.means, direct.states, 1e-10, "batch job 0");
    }
  }

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.nonlinear_jobs, static_cast<std::uint64_t>(jobs));
  EXPECT_GE(st.total_outer_iterations, static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(st.jobs_failed, 0u);
}

TEST(EngineNonlinear, WarmWorkerRunsWholeJobAllocationFree) {
  // The nonlinear warm-path acceptance criterion: a serial engine (jobs run
  // inline on this thread) serving the same-shaped job repeatedly must reach
  // zero counted allocations — GaussNewtonState, linearized problem, inner
  // Paige-Saunders factor and the into-storage all reuse capacity; the model
  // provides *_into callbacks and identity noise.
  Rng rng(0x6E5);
  NonlinearModel m = pendulum_model(rng, 30, /*identity_noise=*/true);
  NonlinearJobOptions opts;
  opts.backend = Backend::PaigeSaunders;
  opts.gn = tight_options();
  SmootherResult storage;
  opts.into = &storage;

  SmootherEngine eng({.threads = 1});
  JobResult cold = eng.submit_nonlinear({m, flat_init(30)}, opts).get();
  EXPECT_GT(cold.metrics.outer_iterations, 0);
  JobResult settle = eng.submit_nonlinear({m, flat_init(30)}, opts).get();
  NonlinearJob warm_job{m, flat_init(30)};  // built before counting
  la::tls_workspace().reset();

  const std::uint64_t before = la::aligned_alloc_count();
  JobResult warm = eng.submit_nonlinear(std::move(warm_job), opts).get();
  EXPECT_EQ(la::aligned_alloc_count() - before, 0u)
      << "a warm worker must run the whole nonlinear job without heap traffic";
  EXPECT_EQ(warm.metrics.allocations, 0u) << "per-job metric must agree";
  EXPECT_EQ(warm.metrics.outer_iterations, settle.metrics.outer_iterations)
      << "identical jobs must take identical outer iterations";
  EXPECT_TRUE(warm.metrics.nonlinear_converged);
  EXPECT_TRUE(warm.result.means.empty()) << "into-jobs leave JobResult::result empty";

  // The into-storage result matches a plain value-returning run.
  NonlinearJobOptions plain = opts;
  plain.into = nullptr;
  JobResult value = eng.submit_nonlinear({m, flat_init(30)}, plain).get();
  test::expect_means_near(storage.means, value.result.means, 0.0, "into vs value");
}

TEST(EngineNonlinear, MixedNonlinearLinearBatchStress) {
  // Satellite of the TSan CI leg: large nonlinear jobs (inner odd-even
  // solves fan out on the shared pool, whose joins can nest other job
  // bodies) racing linear batch jobs and streaming session smooths.  The
  // assertions are completion + metric sanity; the sanitizer leg asserts the
  // absence of races and deadlocks.
  Rng rng(0x6E6);
  SmootherEngine eng({.threads = 4, .small_job_flops = 0.0});  // force intra-parallel

  std::vector<NonlinearJob> nl;
  for (int j = 0; j < 6; ++j) nl.push_back({pendulum_model(rng, 120), flat_init(120)});
  NonlinearJobOptions nopts;
  nopts.backend = Backend::OddEven;
  nopts.gn = tight_options();

  std::vector<kalman::Problem> linear;
  for (int j = 0; j < 24; ++j) {
    la::Rng jr = rng.split();
    linear.push_back(kalman::make_paper_benchmark(jr, 4, 60));
  }

  Session s = eng.open_session(3);
  s.observe(Matrix::identity(3), Vector({0.1, 0.2, 0.3}), CovFactor::identity(3));

  auto nl_futs = eng.submit_nonlinear_batch(std::move(nl), nopts);
  auto lin_futs = eng.submit_batch(std::move(linear), {});
  std::vector<std::future<JobResult>> session_futs;
  for (int i = 0; i < 16; ++i) {
    s.evolve(la::random_orthonormal(rng, 3), Vector(3), CovFactor::identity(3));
    s.observe(Matrix::identity(3), la::random_gaussian_vector(rng, 3),
              CovFactor::identity(3));
    session_futs.push_back(s.smooth_async(true));
  }
  eng.wait_idle();

  for (auto& f : nl_futs) {
    JobResult jr = f.get();
    EXPECT_TRUE(jr.metrics.nonlinear_converged);
    EXPECT_GT(jr.metrics.outer_iterations, 0);
    EXPECT_TRUE(jr.metrics.intra_parallel);
  }
  for (auto& f : lin_futs) {
    JobResult jr = f.get();
    EXPECT_EQ(jr.metrics.outer_iterations, 0);
    EXPECT_FALSE(jr.result.means.empty());
  }
  for (auto& f : session_futs) EXPECT_FALSE(f.get().result.means.empty());

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.jobs_failed, 0u);
  EXPECT_EQ(st.nonlinear_jobs, 6u);
  EXPECT_EQ(st.jobs_completed, 6u + 24u + 16u);
}

TEST(EngineNonlinear, SessionWarmStartsFromCachedMeans) {
  Rng rng(0x6E7);
  const index k_total = 48;
  const index k_base = 40;
  NonlinearModel full = pendulum_model(rng, k_total);

  // Session seeded with the first k_base steps of the history.
  NonlinearModel base = full;
  base.k = k_base;
  base.dims.resize(static_cast<std::size_t>(k_base + 1));
  base.obs.resize(static_cast<std::size_t>(k_base + 1));

  SmootherEngine eng({.threads = 2});
  NonlinearJobOptions opts;
  opts.gn = tight_options();
  NonlinearSession s = eng.open_nonlinear_session(base, Vector({0.1, 0.0}), opts);
  EXPECT_EQ(s.current_step(), k_base);

  SmootherResult cold;
  s.smooth_into(cold);
  const NonlinearSolveInfo cold_info = s.last_info();
  EXPECT_TRUE(cold_info.converged);
  EXPECT_GT(cold_info.iterations, 1);

  // Stream the remaining measurements and re-smooth: warm-started from the
  // cached means, the re-solve takes fewer outer iterations than the cold
  // one and still matches the direct full-history solver.
  for (index i = k_base + 1; i <= k_total; ++i)
    s.advance(full.obs[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.current_step(), k_total);
  SmootherResult warm;
  s.smooth_into(warm);
  const NonlinearSolveInfo warm_info = s.last_info();
  EXPECT_TRUE(warm_info.converged);
  EXPECT_LT(warm_info.iterations, cold_info.iterations);

  par::ThreadPool pool(2);
  const GaussNewtonResult direct =
      gauss_newton_smooth(full, flat_init(k_total), pool, opts.gn);
  test::expect_means_near(warm.means, direct.states, 1e-9, "warm session vs direct");

  // An unmutated repeat is a cache hit: identical result, no new solve.
  SmootherResult repeat;
  s.smooth_into(repeat);
  test::expect_means_near(repeat.means, warm.means, 0.0, "cache hit");
}

TEST(EngineNonlinear, SessionAsyncSmooth) {
  Rng rng(0x6E8);
  NonlinearModel m = pendulum_model(rng, 36);
  SmootherEngine eng({.threads = 2});
  NonlinearJobOptions opts;
  opts.gn = tight_options();
  NonlinearSession s = eng.open_nonlinear_session(m, Vector({0.1, 0.0}), opts);

  SmootherResult storage;
  JobResult jr = s.smooth_async(/*with_covariances=*/true, &storage).get();
  EXPECT_TRUE(jr.metrics.nonlinear_converged);
  EXPECT_GT(jr.metrics.outer_iterations, 0);
  EXPECT_TRUE(jr.result.means.empty());
  ASSERT_EQ(storage.means.size(), static_cast<std::size_t>(m.k + 1));
  ASSERT_EQ(storage.covariances.size(), static_cast<std::size_t>(m.k + 1));

  par::ThreadPool pool(2);
  GaussNewtonOptions gn = opts.gn;
  gn.final_covariance = true;
  const GaussNewtonResult direct = gauss_newton_smooth(m, flat_init(m.k), pool, gn);
  test::expect_means_near(storage.means, direct.states, 1e-9, "async session vs direct");
  test::expect_covs_near(storage.covariances, direct.covariances, 1e-7,
                         "async session covariances");
}

TEST(EngineNonlinear, InvalidUsesThrow) {
  Rng rng(0x6E9);
  SmootherEngine eng({.threads = 1});
  NonlinearModel m = pendulum_model(rng, 4);

  SmootherResult storage;
  NonlinearJobOptions opts;
  opts.into = &storage;
  std::vector<NonlinearJob> batch;
  batch.push_back({m, flat_init(4)});
  EXPECT_THROW((void)eng.submit_nonlinear_batch(std::move(batch), opts),
               std::invalid_argument);

  EXPECT_THROW((void)eng.open_nonlinear_session(m, Vector({0.0}), {}),
               std::invalid_argument);

  // A malformed model fails the job's future, not the engine.
  NonlinearModel bad = m;
  bad.f = nullptr;
  auto fut = eng.submit_nonlinear({bad, flat_init(4)}, {});
  EXPECT_THROW((void)fut.get(), std::invalid_argument);
  EXPECT_GE(eng.stats().jobs_failed, 1u);
}

}  // namespace
}  // namespace pitk::engine
