/// \file test_resmooth.cpp
/// Incremental re-smoothing equivalence: a streaming session that re-smooths
/// after appending steps must agree with a cold full smooth of the same
/// track — across all five backends, after reset(), and from the async path
/// — while its ResmoothCache only ever does delta work.  The truncated delta
/// pass (PR 10) additionally must stay within its advertised tolerance, and
/// an exact_resmooth() session must remain bit-for-bit the full spliced
/// pass.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "kalman/dense_reference.hpp"
#include "la/random.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

using la::index;
using la::Rng;

/// Replay states (from, to] of a fully-built problem through the stream.
void drive_range(Session& s, const kalman::Problem& p, index from, index to) {
  for (index i = from; i <= to; ++i) {
    const kalman::TimeStep& step = p.step(i);
    if (i > 0 && step.evolution) {
      const kalman::Evolution& e = *step.evolution;
      if (e.identity_h())
        s.evolve(e.F, e.c, e.noise);
      else
        s.evolve_rect(step.n, e.H, e.F, e.c, e.noise);
    }
    if (step.observation) {
      const kalman::Observation& ob = *step.observation;
      s.observe(ob.G, ob.o, ob.noise);
    }
  }
}

TEST(Resmooth, IncrementalMatchesColdFullSmoothAcrossAllBackends) {
  // Prime the cache at 40 steps, append 8 more, re-smooth incrementally; the
  // result must agree to 1e-10 with a cold solve of the full track through
  // every registered backend.
  Rng rng(7101);
  const index k = 48;
  const index split = 40;
  SmootherEngine eng({.threads = 2});
  const test::CommonProblem cp = test::common_problem(rng, 3, k);

  Session s = eng.open_session(3);
  drive_range(s, cp.for_qr, 0, split);
  (void)s.smooth(true);  // primes the ResmoothCache with the 40-step prefix
  drive_range(s, cp.for_qr, split + 1, k);
  const SmootherResult inc = s.smooth(true);  // delta: splices 8 blocks

  // An exact session rides the identical stream; its incremental result must
  // also sit within the library bar against every backend.
  Session sx = eng.open_session(3, SessionOptions{}.exact_resmooth());
  drive_range(sx, cp.for_qr, 0, split);
  (void)sx.smooth(true);
  drive_range(sx, cp.for_qr, split + 1, k);
  const SmootherResult exact = sx.smooth(true);

  for (const BackendInfo& info : all_backends()) {
    const SmootherResult cold =
        solve_with(info.id, cp.for_conventional, cp.prior, eng.pool());
    test::expect_means_near(inc.means, cold.means, 1e-10,
                            std::string("incremental vs ") + info.name + " means");
    test::expect_covs_near(inc.covariances, cold.covariances, 1e-10,
                           std::string("incremental vs ") + info.name + " covs");
    test::expect_means_near(exact.means, cold.means, 1e-10,
                            std::string("exact incremental vs ") + info.name + " means");
    test::expect_covs_near(exact.covariances, cold.covariances, 1e-10,
                           std::string("exact incremental vs ") + info.name + " covs");
  }
}

TEST(Resmooth, EverySmoothAlongAStreamMatchesScratchSession) {
  // Smooth after every appended step.  An exact_resmooth() session must be
  // bit-for-bit what a from-scratch session smoothing once would produce
  // (identical factor assembly and identical full backward pass => identical
  // arithmetic — the pre-truncation contract, preserved verbatim).  A
  // default session may take the truncated delta pass, so it gets the
  // library-wide 1e-10 bar instead.
  Rng rng(7102);
  const index k = 24;
  SmootherEngine eng({.threads = 1});
  const test::CommonProblem cp = test::common_problem(rng, 3, k);

  Session sx = eng.open_session(3, SessionOptions{}.exact_resmooth());
  Session s = eng.open_session(3);
  drive_range(sx, cp.for_qr, 0, 0);
  drive_range(s, cp.for_qr, 0, 0);
  for (index i = 1; i <= k; ++i) {
    drive_range(sx, cp.for_qr, i, i);
    drive_range(s, cp.for_qr, i, i);
    const SmootherResult exact = sx.smooth(true);
    const SmootherResult inc = s.smooth(true);

    Session fresh = eng.open_session(3);
    drive_range(fresh, cp.for_qr, 0, i);
    const SmootherResult scratch = fresh.smooth(true);
    test::expect_means_near(exact.means, scratch.means, 0.0, "step " + std::to_string(i));
    test::expect_covs_near(exact.covariances, scratch.covariances, 0.0,
                           "step " + std::to_string(i));
    test::expect_means_near(inc.means, scratch.means, 1e-10,
                            "delta step " + std::to_string(i));
    test::expect_covs_near(inc.covariances, scratch.covariances, 1e-10,
                           "delta step " + std::to_string(i));
  }
  EXPECT_EQ(sx.stats().truncated_resmooths, 0u)
      << "an exact session must never truncate";
}

TEST(Resmooth, ResetInvalidatesThePrefixCache) {
  // After reset() the session must not reuse any stale prefix: re-smoothing
  // the second (shorter, different-dimension) track must match a fresh
  // session bit-for-bit.
  Rng rng(7103);
  SmootherEngine eng({.threads = 2});
  const test::CommonProblem first = test::common_problem(rng, 3, 30);
  const test::CommonProblem second = test::common_problem(rng, 2, 12);

  Session s = eng.open_session(3);
  drive_range(s, first.for_qr, 0, first.for_qr.last_index());
  const SmootherResult before = s.smooth(true);  // warm 30-step cache
  ASSERT_EQ(before.means.size(), 31u);

  s.reset(2);
  drive_range(s, second.for_qr, 0, second.for_qr.last_index());
  const SmootherResult after = s.smooth(true);

  Session fresh = eng.open_session(2);
  drive_range(fresh, second.for_qr, 0, second.for_qr.last_index());
  const SmootherResult ref = fresh.smooth(true);

  ASSERT_EQ(after.means.size(), 13u) << "stale prefix leaked through reset";
  test::expect_means_near(after.means, ref.means, 0.0, "post-reset == fresh session");
  test::expect_covs_near(after.covariances, ref.covariances, 0.0, "post-reset == fresh session");

  // And the async path (its own cache) must invalidate too.
  const JobResult async = s.smooth_async(true).get();
  test::expect_means_near(async.result.means, ref.means, 0.0, "post-reset async");
}

TEST(Resmooth, RepeatedSmoothIsServedFromTheCachedResult) {
  Rng rng(7104);
  SmootherEngine eng({.threads = 1});
  const test::CommonProblem cp = test::common_problem(rng, 4, 20);

  Session s = eng.open_session(4);
  drive_range(s, cp.for_qr, 0, cp.for_qr.last_index());
  const SmootherResult a = s.smooth(true);
  const SmootherResult b = s.smooth(true);  // no mutation: cached result
  test::expect_means_near(a.means, b.means, 0.0, "cache hit");
  test::expect_covs_near(a.covariances, b.covariances, 0.0, "cache hit");

  // A covariance-free smooth off a covariance-bearing cached result drops
  // the covariances without recomputing the means.
  const SmootherResult nc = s.smooth(false);
  EXPECT_FALSE(nc.has_covariances());
  test::expect_means_near(a.means, nc.means, 0.0, "nc hit");

  // The reverse direction — a covariance upgrade of an unmutated session —
  // reuses the spliced factor and cached means, adding only the SelInv
  // sweep; the result must equal a from-the-start covariance smooth.
  Session s2 = eng.open_session(4);
  drive_range(s2, cp.for_qr, 0, cp.for_qr.last_index());
  const SmootherResult means_only = s2.smooth(false);
  EXPECT_FALSE(means_only.has_covariances());
  const SmootherResult upgraded = s2.smooth(true);
  test::expect_means_near(upgraded.means, means_only.means, 0.0, "upgrade keeps means");
  test::expect_covs_near(upgraded.covariances, a.covariances, 0.0, "upgrade covs");

  // Any new measurement invalidates the cached result.
  s.observe(la::Matrix::identity(4), la::Vector({0.1, 0.2, 0.3, 0.4}),
            kalman::CovFactor::identity(4));
  const SmootherResult c = s.smooth(true);
  double delta = 0.0;
  for (std::size_t i = 0; i < c.means.size(); ++i)
    delta = std::max(delta, la::max_abs_diff(c.means[i].span(), a.means[i].span()));
  EXPECT_GT(delta, 0.0) << "new observation must change the smoothed means";
}

TEST(Resmooth, SmoothAsyncIntoWarmCallerStorage) {
  Rng rng(7105);
  SmootherEngine eng({.threads = 2});
  const test::CommonProblem cp = test::common_problem(rng, 3, 25);

  Session s = eng.open_session(3);
  drive_range(s, cp.for_qr, 0, 18);
  SmootherResult storage;
  {
    const JobResult jr = s.smooth_async(true, &storage).get();
    EXPECT_TRUE(jr.result.means.empty()) << "into-jobs leave JobResult::result empty";
    EXPECT_EQ(jr.metrics.backend, Backend::PaigeSaunders);
    const SmootherResult sync = s.smooth(true);
    test::expect_means_near(storage.means, sync.means, 0.0, "async into == sync");
    test::expect_covs_near(storage.covariances, sync.covariances, 0.0, "async into == sync");
  }
  // Append and reuse the same storage: the steady-state serving pattern.
  drive_range(s, cp.for_qr, 19, cp.for_qr.last_index());
  {
    const JobResult jr = s.smooth_async(true, &storage).get();
    EXPECT_TRUE(jr.result.means.empty());
    const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
    test::expect_means_near(storage.means, ref.means, 1e-7, "warm async into");
    test::expect_covs_near(storage.covariances, ref.covariances, 1e-6, "warm async into");
  }
}

/// Drive one damped fully-observed step into `s`: x' = 0.5 x + noise with an
/// identity observation.  Damped dynamics keep ||R_ii^{-1} R_{i,i+1}|| well
/// below 1, so the decay bound provably truncates the backward pass — the
/// regime the truncated delta re-smooth is built for.
void drive_damped_step(Session& s, Rng& rng, index n, bool first) {
  if (!first) {
    Matrix f = Matrix::identity(n);
    for (index q = 0; q < n; ++q) f(q, q) = 0.5;
    s.evolve(std::move(f), la::Vector(n), kalman::CovFactor::identity(n));
  }
  s.observe(Matrix::identity(n), la::random_gaussian_vector(rng, n),
            kalman::CovFactor::identity(n));
}

TEST(Resmooth, TruncatedResmoothStaysWithinTheRequestedTolerance) {
  // Property sweep over the decay tolerance: at every setting the truncated
  // result must stay within (passes x tol) of the exact session — each
  // truncated pass neglects at most `tol` per state — and on a strongly
  // damped track the bound must actually fire.
  const index n = 2;
  const index k = 150;
  for (const double tol : {1e-4, 1e-7, 1e-10}) {
    SmootherEngine eng({.threads = 1});
    Session s = eng.open_session(n, SessionOptions{}.resmooth_tolerance(tol));
    Session sx = eng.open_session(n, SessionOptions{}.exact_resmooth());
    Rng rng(7200 + static_cast<std::uint64_t>(-std::log10(tol)));
    Rng rng_twin = rng;  // identical observation stream for both sessions
    for (index i = 0; i <= k; ++i) {
      drive_damped_step(s, rng, n, i == 0);
      drive_damped_step(sx, rng_twin, n, i == 0);
      if (i >= 30) (void)s.smooth(true);  // re-smooth every append once warm
    }
    const SmootherResult got = s.smooth(true);
    const SmootherResult ref = sx.smooth(true);
    const SessionStats st = s.stats();
    EXPECT_GT(st.truncated_resmooths, 0u) << "tol " << tol;
    EXPECT_GT(st.steps_truncation_skipped, 0u) << "tol " << tol;
    const double bound = static_cast<double>(st.truncated_resmooths + 1) * tol;
    test::expect_means_near(got.means, ref.means, bound,
                            "truncated means within bound, tol " + std::to_string(tol));
    test::expect_covs_near(got.covariances, ref.covariances, bound,
                           "truncated covs within bound, tol " + std::to_string(tol));
  }
}

TEST(Resmooth, DefaultToleranceHoldsTheLibraryBarAcrossForcedRefreshes) {
  // 600 truncated re-smooths cross the forced-full-pass refresh interval;
  // the default tolerance must keep the served result within the
  // library-wide 1e-10 bar of the exact session throughout.
  const index n = 2;
  const index k = 600;
  SmootherEngine eng({.threads = 1});
  Session s = eng.open_session(n);
  Session sx = eng.open_session(n, SessionOptions{}.exact_resmooth());
  Rng rng(7201);
  Rng rng_twin = rng;
  SmootherResult out;
  for (index i = 0; i <= k; ++i) {
    drive_damped_step(s, rng, n, i == 0);
    drive_damped_step(sx, rng_twin, n, i == 0);
    if (i >= 20) s.smooth_into(out, true);
  }
  const SmootherResult ref = sx.smooth(true);
  test::expect_means_near(out.means, ref.means, 1e-10, "default-tol means");
  test::expect_covs_near(out.covariances, ref.covariances, 1e-10, "default-tol covs");
  const SessionStats st = s.stats();
  EXPECT_GT(st.truncated_resmooths, 520u)
      << "the damped track must truncate through a forced refresh";
  EXPECT_LT(st.truncated_resmooths, st.resmooth_misses)
      << "the refresh interval must force at least one full pass";
}

TEST(Resmooth, LargeColdAsyncSmoothTakesTheOddEvenPath) {
  // A cold async smooth of a >=4096-state track on a multi-thread engine
  // must route through the snapshot-isolated odd-even path (visible through
  // JobMetrics::backend), agree with the exact sequential pass, and leave
  // the async cache warm so the next append re-smooths via the truncated
  // delta path on the small-job lane.
  const index n = 2;
  const index k = 4100;
  SmootherEngine eng({.threads = 2});
  Session s = eng.open_session(n);
  Session sx = eng.open_session(n, SessionOptions{}.exact_resmooth());
  Rng rng(7202);
  Rng rng_twin = rng;
  for (index i = 0; i <= k; ++i) {
    drive_damped_step(s, rng, n, i == 0);
    drive_damped_step(sx, rng_twin, n, i == 0);
  }

  SmootherResult storage;
  const JobResult cold = s.smooth_async(true, &storage).get();
  EXPECT_EQ(cold.metrics.backend, Backend::OddEven)
      << "a cold large track must take the parallel path";
  const SmootherResult ref = sx.smooth(true);
  test::expect_means_near(storage.means, ref.means, 1e-8, "large cold async means");
  test::expect_covs_near(storage.covariances, ref.covariances, 1e-8,
                         "large cold async covs");

  drive_damped_step(s, rng, n, false);
  drive_damped_step(sx, rng_twin, n, false);
  const JobResult warm = s.smooth_async(true, &storage).get();
  EXPECT_EQ(warm.metrics.backend, Backend::PaigeSaunders)
      << "a warm cache keeps the track on the truncated delta path";
  const SmootherResult ref2 = sx.smooth(true);
  test::expect_means_near(storage.means, ref2.means, 1e-8, "large warm async means");
  test::expect_covs_near(storage.covariances, ref2.covariances, 1e-8,
                         "large warm async covs");
  EXPECT_GT(s.stats().truncated_resmooths, 0u)
      << "the warm append must have truncated its backward pass";

  // An exact session of the same length must stay on the sequential spliced
  // path even when cold: its bit-for-bit promise forbids the backend swap.
  const JobResult exact_job = sx.smooth_async(true).get();
  EXPECT_EQ(exact_job.metrics.backend, Backend::PaigeSaunders);
}

TEST(Resmooth, SmoothIntoReusesCallerStorageAcrossAppends) {
  Rng rng(7106);
  SmootherEngine eng({.threads = 1});
  const test::CommonProblem cp = test::common_problem(rng, 3, 32);

  Session s = eng.open_session(3);
  drive_range(s, cp.for_qr, 0, 16);
  SmootherResult out;
  s.smooth_into(out, true);
  ASSERT_EQ(out.means.size(), 17u);
  for (index i = 17; i <= cp.for_qr.last_index(); ++i) {
    drive_range(s, cp.for_qr, i, i);
    s.smooth_into(out, true);
    ASSERT_EQ(out.means.size(), static_cast<std::size_t>(i) + 1);
  }
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, true);
  test::expect_means_near(out.means, ref.means, 1e-7, "final smooth_into");
  test::expect_covs_near(out.covariances, ref.covariances, 1e-6, "final smooth_into");
}

}  // namespace
}  // namespace pitk::engine
