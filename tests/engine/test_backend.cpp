#include "engine/backend.hpp"

#include <gtest/gtest.h>

#include "engine/control.hpp"
#include "kalman/dense_reference.hpp"
#include "la/random.hpp"
#include "parallel/thread_pool.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

using la::index;
using la::Rng;

// Every backend solves the same regularized least-squares problem, so all
// of them must reproduce the dense reference oracle.
TEST(Backend, AllBackendsMatchDenseReferenceOnCommonProblem) {
  Rng rng(7001);
  par::ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    const test::CommonProblem cp = test::common_problem(rng, /*n=*/3, /*k=*/40, rep == 2);
    const SmootherResult ref = kalman::dense_smooth(cp.for_qr, /*with_cov=*/true);
    for (const BackendInfo& info : all_backends()) {
      SCOPED_TRACE(info.name);
      const SmootherResult got = solve_with(info.id, cp.for_conventional, cp.prior, pool);
      test::expect_means_near(got.means, ref.means, 1e-7, info.name);
      test::expect_covs_near(got.covariances, ref.covariances, 1e-6, info.name);
    }
  }
}

// The QR family also covers the structural features the conventional class
// cannot express: rectangular H, varying dimensions, missing observations.
TEST(Backend, QrBackendsMatchDenseReferenceOnGeneralProblems) {
  Rng rng(7002);
  par::ThreadPool pool(4);
  test::RandomProblemSpec spec;
  spec.k = 30;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  spec.obs_probability = 0.6;
  spec.dense_covariances = true;
  const kalman::Problem p = test::random_problem(rng, spec);
  const SmootherResult ref = kalman::dense_smooth(p, /*with_cov=*/true);
  for (Backend b : {Backend::PaigeSaunders, Backend::OddEven}) {
    SCOPED_TRACE(backend_info(b).name);
    const SmootherResult got = solve_with(b, p, std::nullopt, pool);
    test::expect_means_near(got.means, ref.means, 1e-7);
    test::expect_covs_near(got.covariances, ref.covariances, 1e-6);
  }
}

TEST(Backend, CovarianceOptOutYieldsTheSameShapeOnEveryBackend) {
  Rng rng(7003);
  par::ThreadPool pool(2);
  const test::CommonProblem cp = test::common_problem(rng, 3, 20);
  const SmootherResult ref = kalman::dense_smooth(cp.for_qr, false);
  // Backends that cannot skip the computation (rts, associative) still must
  // honor the requested result shape by dropping the covariances.
  for (const BackendInfo& info : all_backends()) {
    SCOPED_TRACE(info.name);
    const SmootherResult got = solve_with(info.id, cp.for_conventional, cp.prior, pool,
                                          {.compute_covariance = false});
    EXPECT_FALSE(got.has_covariances());
    test::expect_means_near(got.means, ref.means, 1e-7);
  }
}

TEST(Backend, ConventionalBackendsRejectMissingPriorOrExplicitH) {
  Rng rng(7004);
  par::ThreadPool pool(2);
  const test::CommonProblem cp = test::common_problem(rng, 3, 10);
  for (Backend b : {Backend::Rts, Backend::Associative}) {
    EXPECT_FALSE(backend_supports(b, cp.for_conventional, /*has_prior=*/false));
    try {
      (void)solve_with(b, cp.for_conventional, std::nullopt, pool);
      FAIL() << "expected SolveError";
    } catch (const SolveError& e) {
      EXPECT_EQ(e.code(), SolveErrorCode::BackendUnsupported);
    }
  }
  test::RandomProblemSpec spec;
  spec.k = 6;
  spec.rectangular_h = true;
  const kalman::Problem rect = test::random_problem(rng, spec);
  EXPECT_FALSE(has_identity_h(rect));
  EXPECT_FALSE(backend_supports(Backend::Rts, rect, /*has_prior=*/true));
  EXPECT_TRUE(backend_supports(Backend::OddEven, rect, /*has_prior=*/false));
}

TEST(Backend, RegistryNamesRoundTrip) {
  EXPECT_EQ(all_backends().size(), static_cast<std::size_t>(num_backends));
  for (const BackendInfo& info : all_backends()) {
    const auto found = backend_by_name(info.name);
    ASSERT_TRUE(found.has_value()) << info.name;
    EXPECT_EQ(*found, info.id);
    EXPECT_EQ(backend_info(info.id).name, info.name);
  }
  EXPECT_FALSE(backend_by_name("no-such-solver").has_value());
  EXPECT_THROW((void)backend_info(Backend::Auto), std::invalid_argument);
}

TEST(Backend, SelectionPrefersParallelSolverOnlyForLargeJobs) {
  Rng rng(7005);
  const test::CommonProblem small = test::common_problem(rng, 3, 20);
  const test::CommonProblem big = test::common_problem(rng, 3, 2000);

  // Small job, any thread count: a sequential solver.
  for (unsigned threads : {1u, 4u}) {
    const Backend b = select_backend(small.for_conventional, true, true, threads);
    EXPECT_FALSE(backend_info(b).intra_parallel);
  }
  // Large job on a parallel pool: the paper's odd-even smoother.
  EXPECT_EQ(select_backend(big.for_conventional, true, true, 4), Backend::OddEven);
  // Same job without concurrency: stays sequential.
  EXPECT_FALSE(backend_info(select_backend(big.for_conventional, true, true, 1)).intra_parallel);

  // The choice is always one the problem supports.
  for (unsigned threads : {1u, 2u, 8u}) {
    for (bool has_prior : {false, true}) {
      const Backend b = select_backend(big.for_conventional, has_prior, true, threads);
      EXPECT_TRUE(backend_supports(b, big.for_conventional, has_prior));
    }
  }
}

TEST(Backend, EstimatedFlopsScalesWithProblemSize) {
  Rng rng(7006);
  const test::CommonProblem small = test::common_problem(rng, 3, 10);
  const test::CommonProblem big = test::common_problem(rng, 3, 1000);
  const double fs = estimated_flops(small.for_qr, true);
  const double fb = estimated_flops(big.for_qr, true);
  EXPECT_GT(fs, 0.0);
  EXPECT_GT(fb, 50.0 * fs);
  EXPECT_GT(estimated_flops(small.for_qr, true), estimated_flops(small.for_qr, false));
}

}  // namespace
}  // namespace pitk::engine
