/// \file test_chunk.cpp
/// The on-disk chunk format's crash contract, byte by byte.
///
/// The load-bearing property: for EVERY possible truncation point of a valid
/// chunk file — emulating a kill -9 or power cut at any instant of a
/// buffered write — scan_chunk_file() recovers exactly the chunks whose last
/// byte made it to disk, reports the torn tail, and the file can be resumed
/// for appends at the reported offset.  Mid-file corruption (a flipped byte
/// with intact chunks after it, planted by the io.corrupt fault) must be
/// *detected*, never replayed.

#include "io/chunk.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace pitk::io {
namespace {

std::vector<std::byte> payload_of(std::initializer_list<int> vals) {
  std::vector<std::byte> p;
  for (int v : vals) p.push_back(static_cast<std::byte>(v));
  return p;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string temp_path(const char* name) { return testing::TempDir() + "/" + name; }

class ChunkFault : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST(Crc32c, KnownVectorsAndChaining) {
  // The CRC32C check value: crc of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(digits, 0), 0u);
  // Chaining a split computation equals one pass.
  const std::uint32_t head = crc32c(digits, 4);
  EXPECT_EQ(crc32c(digits + 4, 5, head), crc32c(digits, 9));
}

TEST(ChunkFile, RoundTripAndScan) {
  const std::string path = temp_path("chunk_roundtrip.pitkj");
  {
    ChunkFile f = ChunkFile::create(path, 7);
    f.append(1, payload_of({10, 20, 30}));
    f.append(2, payload_of({}));
    f.append(3, payload_of({40}));
    f.close();
  }
  const ScanResult r = scan_chunk_file(path);
  EXPECT_EQ(r.kind, 7u);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.torn_header);
  ASSERT_EQ(r.chunks.size(), 3u);
  EXPECT_EQ(r.chunks[0].type, 1);
  ASSERT_EQ(r.chunks[0].payload.size(), 3u);
  EXPECT_EQ(static_cast<int>(r.chunks[0].payload[1]), 20);
  EXPECT_EQ(r.chunks[1].type, 2);
  EXPECT_TRUE(r.chunks[1].payload.empty());
  EXPECT_EQ(r.chunks[2].type, 3);
  EXPECT_EQ(r.valid_end, static_cast<std::uint64_t>(slurp(path).size()));
}

TEST(ChunkFile, EveryTruncationRecoversTheDurablePrefix) {
  const std::string path = temp_path("chunk_sweep.pitkj");
  std::vector<std::uint64_t> boundaries;  // offset after header and each chunk
  {
    ChunkFile f = ChunkFile::create(path, 1);
    boundaries.push_back(kFileHeaderSize);
    for (int i = 0; i < 5; ++i) {
      std::vector<std::byte> p;
      for (int b = 0; b <= i * 3; ++b) p.push_back(static_cast<std::byte>(b + i));
      f.append(static_cast<std::uint8_t>(i + 1), p);
      boundaries.push_back(boundaries.back() + kChunkOverhead + p.size());
    }
    f.close();
  }
  const std::string full = slurp(path);
  ASSERT_EQ(full.size(), boundaries.back());

  const std::string cut_path = temp_path("chunk_sweep_cut.pitkj");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_bytes(cut_path, full.substr(0, cut));
    if (cut < kFileHeaderSize) {
      // Crash before the header finished: nothing recoverable, not corrupt.
      const ScanResult r = scan_chunk_file(cut_path);
      EXPECT_TRUE(r.torn_header) << cut;
      EXPECT_TRUE(r.chunks.empty()) << cut;
      continue;
    }
    // The recoverable prefix is every chunk wholly on disk.
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) ++whole;
    const ScanResult r = scan_chunk_file(cut_path);
    EXPECT_EQ(r.chunks.size(), whole) << cut;
    EXPECT_EQ(r.valid_end, boundaries[whole]) << cut;
    EXPECT_EQ(r.torn_tail, cut != boundaries[whole]) << cut;

    // The truncated file must accept further appends at valid_end and scan
    // clean afterwards.
    ChunkFile f = ChunkFile::append_at(cut_path, r.valid_end);
    f.append(9, payload_of({1, 2, 3}));
    f.close();
    const ScanResult r2 = scan_chunk_file(cut_path);
    EXPECT_FALSE(r2.torn_tail) << cut;
    ASSERT_EQ(r2.chunks.size(), whole + 1) << cut;
    EXPECT_EQ(r2.chunks.back().type, 9) << cut;
  }
}

TEST(ChunkFile, MidFileCorruptionThrowsTailCorruptionTruncates) {
  const std::string path = temp_path("chunk_corrupt.pitkj");
  std::uint64_t first_chunk_payload_at = 0;
  {
    ChunkFile f = ChunkFile::create(path, 1);
    f.append(1, payload_of({10, 20, 30, 40}));
    first_chunk_payload_at = kFileHeaderSize + kChunkOverhead;
    f.append(2, payload_of({50, 60}));
    f.close();
  }
  const std::string full = slurp(path);

  // Flip a payload byte of the FIRST chunk: complete chunks follow, so this
  // cannot be a torn tail — hard corruption.
  std::string bad = full;
  bad[static_cast<std::size_t>(first_chunk_payload_at) + 1] ^= 0x40;
  write_bytes(path, bad);
  EXPECT_THROW((void)scan_chunk_file(path), CorruptJournal);

  // Flip a byte of the LAST chunk: indistinguishable from a torn write of
  // that chunk — truncated, first chunk survives.
  bad = full;
  bad[bad.size() - 1] ^= 0x40;
  write_bytes(path, bad);
  const ScanResult r = scan_chunk_file(path);
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.chunks.size(), 1u);
  EXPECT_EQ(r.chunks[0].type, 1);

  // Bad magic / unsupported version are hard failures too.
  bad = full;
  bad[0] = 'X';
  write_bytes(path, bad);
  EXPECT_THROW((void)scan_chunk_file(path), CorruptJournal);
  bad = full;
  bad[8] = 99;  // version field
  write_bytes(path, bad);
  EXPECT_THROW((void)scan_chunk_file(path), CorruptJournal);
}

TEST_F(ChunkFault, TornWriteFaultPersistsAPrefixAndPoisons) {
  const std::string path = temp_path("chunk_fault_write.pitkj");
  ChunkFile f = ChunkFile::create(path, 1);  // header flushes before arming
  f.append(1, payload_of({1, 2, 3, 4, 5, 6, 7, 8}));
  f.append(2, payload_of({9, 10, 11, 12}));
  fault::arm("io.write", fault::Kind::Fail);
  EXPECT_THROW(f.flush(), std::runtime_error);
  EXPECT_TRUE(f.failed());
  fault::disarm_all();
  // Poisoned: later appends refuse to run rather than write past a torn tail.
  EXPECT_THROW(f.append(3, payload_of({13})), std::runtime_error);
  f.close();  // best-effort close must not throw for a poisoned file

  // The disk holds the header plus a strict prefix of the two chunks; the
  // scan turns that into "zero or more whole chunks + torn tail".
  const ScanResult r = scan_chunk_file(path);
  EXPECT_FALSE(r.torn_header);
  EXPECT_LE(r.chunks.size(), 1u);
  EXPECT_TRUE(r.torn_tail);
}

TEST_F(ChunkFault, CorruptFaultPlantsDetectableMismatch) {
  const std::string path = temp_path("chunk_fault_corrupt.pitkj");
  ChunkFile f = ChunkFile::create(path, 1);
  fault::arm("io.corrupt", fault::Kind::Fail);
  f.append(1, payload_of({1, 2, 3, 4}));
  fault::disarm_all();
  f.append(2, payload_of({5, 6}));  // intact chunk after the corrupt one
  f.close();
  EXPECT_THROW((void)scan_chunk_file(path), CorruptJournal);
}

TEST_F(ChunkFault, FsyncFaultThrowsFromSync) {
  const std::string path = temp_path("chunk_fault_fsync.pitkj");
  ChunkFile f = ChunkFile::create(path, 1);
  f.append(1, payload_of({1}));
  fault::arm("io.fsync", fault::Kind::Fail);
  EXPECT_THROW(f.sync(), std::runtime_error);
  fault::disarm_all();
}

TEST(ChunkFile, RejectsAbsurdLengthAsTornTail) {
  const std::string path = temp_path("chunk_absurd_len.pitkj");
  {
    ChunkFile f = ChunkFile::create(path, 1);
    f.append(1, payload_of({1, 2}));
    f.close();
  }
  std::string bytes = slurp(path);
  // Overwrite the chunk's length field with an unaddressable value; the
  // chunk becomes unparseable, so recovery truncates at the header.
  bytes[kFileHeaderSize + 0] = '\xff';
  bytes[kFileHeaderSize + 1] = '\xff';
  bytes[kFileHeaderSize + 2] = '\xff';
  bytes[kFileHeaderSize + 3] = '\x7f';
  write_bytes(path, bytes);
  const ScanResult r = scan_chunk_file(path);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_TRUE(r.chunks.empty());
  EXPECT_EQ(r.valid_end, kFileHeaderSize);
}

}  // namespace
}  // namespace pitk::io
