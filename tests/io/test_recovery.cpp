/// \file test_recovery.cpp
/// The crash-consistency matrix for durable sessions.
///
/// The contract under test: a process killed at ANY byte of its journal —
/// between appends, mid-append, mid-compaction — recovers via
/// SmootherEngine::recover_all() to a session whose next smooth() agrees
/// with an uninterrupted run, across snapshot/journal-tail/torn-tail file
/// states, for linear and nonlinear sessions, with the nonlinear matrix run
/// once per inner backend.  Crashes are emulated by copying the live
/// journal's on-disk bytes (what a kill -9 would leave) into a second store
/// and recovering there; truncation sweeps emulate torn writes at every
/// boundary.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "engine/durable.hpp"
#include "engine/engine.hpp"
#include "engine/nonlinear_session.hpp"
#include "engine/session.hpp"
#include "fault/fault.hpp"
#include "io/chunk.hpp"
#include "io/journal.hpp"
#include "io/session_store.hpp"
#include "kalman/simulate.hpp"
#include "test_util.hpp"

namespace pitk::engine {
namespace {

namespace fs = std::filesystem;
using kalman::CovFactor;
using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

/// A fresh store under TempDir (stale files from earlier runs removed).
io::SessionStore fresh_store(const std::string& name, la::index compact_every = 0,
                             io::FlushPolicy flush = io::FlushPolicy::EveryAppend) {
  io::DurabilityOptions o;
  o.dir = testing::TempDir() + "/pitk_recovery/" + name;
  o.flush = flush;
  o.compact_every = compact_every;
  fs::remove_all(o.dir);
  return io::SessionStore(o);
}

/// Simulated kill -9: duplicate the journal's current on-disk bytes (and
/// nothing else — buffered bytes died with the process) into `crash_store`.
void crash_copy(const io::SessionStore& live, const io::SessionStore& crash,
                const std::string& id) {
  fs::copy_file(live.path_for(id), crash.path_for(id), fs::copy_options::overwrite_existing);
}

/// The journal-record view of a problem: one closure per evolve/observe in
/// stream order, so tests can replay any prefix into any session.
std::vector<std::function<void(Session&)>> ops_of(const kalman::Problem& p) {
  std::vector<std::function<void(Session&)>> ops;
  for (index i = 0; i < p.num_states(); ++i) {
    const kalman::TimeStep& step = p.step(i);
    if (step.evolution) {
      const kalman::Evolution& e = *step.evolution;
      const index n = step.n;
      if (e.identity_h())
        ops.push_back([e](Session& s) { s.evolve(e.F, e.c, e.noise); });
      else
        ops.push_back([e, n](Session& s) { s.evolve_rect(n, e.H, e.F, e.c, e.noise); });
    }
    if (step.observation) {
      const kalman::Observation& ob = *step.observation;
      ops.push_back([ob](Session& s) { s.observe(ob.G, ob.o, ob.noise); });
    }
  }
  return ops;
}

/// Byte offsets after the header and after each whole chunk of `path`.
std::vector<std::uint64_t> chunk_boundaries(const std::string& path) {
  const io::ScanResult r = io::scan_chunk_file(path);
  std::vector<std::uint64_t> b{io::kFileHeaderSize};
  for (const io::ChunkView& c : r.chunks)
    b.push_back(b.back() + io::kChunkOverhead + c.payload.size());
  return b;
}

void truncate_to(const std::string& src, const std::string& dst, std::uint64_t cut) {
  std::ifstream is(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  ASSERT_LE(cut, bytes.size());
  std::ofstream os(dst, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(cut));
}

kalman::Problem general_problem(Rng& rng, index k) {
  test::RandomProblemSpec spec;
  spec.k = k;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  spec.obs_probability = 0.7;
  spec.dense_covariances = true;
  return test::random_problem(rng, spec);
}

TEST(Recovery, LinearKillAtEveryByte) {
  // The full matrix, exhaustively, on a small track: truncate the journal at
  // EVERY byte offset and recover.  At each cut the session must come back
  // with exactly the operations whose final byte reached disk, and its
  // smooth must match a plain session fed the same prefix to 1e-10.
  Rng rng(0xD0C1);
  const kalman::Problem p = general_problem(rng, 6);
  const auto ops = ops_of(p);

  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("every_byte_live");
  io::SessionStore crash = fresh_store("every_byte_crash");
  {
    Session s = eng.open_durable_session(live, "s1", p.step(0).n);
    for (const auto& op : ops) op(s);
  }  // destroying the handle closes the journal; the bytes are already flushed

  const std::vector<std::uint64_t> bounds = chunk_boundaries(live.path_for("s1"));
  ASSERT_EQ(bounds.size(), ops.size() + 2);  // header + open chunk + one per op
  const std::uint64_t file_size = bounds.back();

  for (std::uint64_t cut = 0; cut <= file_size; ++cut) {
    truncate_to(live.path_for("s1"), crash.path_for("s1"), cut);
    RecoveredSessions rec = eng.recover_all(crash);
    // Count whole chunks on disk at this cut.
    std::size_t whole = 0;
    while (whole + 1 < bounds.size() && bounds[whole + 1] <= cut) ++whole;
    if (whole == 0) {
      // Nothing replayable (not even the open record): reported, not silently
      // resurrected as an empty session.
      ASSERT_EQ(rec.failed.size(), 1u) << cut;
      EXPECT_TRUE(rec.linear.empty()) << cut;
      continue;
    }
    ASSERT_EQ(rec.linear.size(), 1u) << cut;
    ASSERT_TRUE(rec.failed.empty()) << cut;
    Session& r = rec.linear[0].second;
    const std::size_t got_ops = whole - 1;  // minus the open chunk

    // Compare against a plain session fed the same op prefix.
    Session ref = eng.open_session(p.step(0).n);
    for (std::size_t i = 0; i < got_ops; ++i) ops[i](ref);
    EXPECT_EQ(r.current_step(), ref.current_step()) << cut;
    EXPECT_EQ(r.current_dim(), ref.current_dim()) << cut;
    // Full smooth on a sample of cuts (got_ops >= 1 keeps the prefix
    // anchored: the first op is the full-rank step-0 observation).
    if (got_ops >= 1 && (cut == file_size || cut % 3 == 0)) {
      const SmootherResult a = r.smooth(true);
      const SmootherResult b = ref.smooth(true);
      test::expect_means_near(a.means, b.means, 1e-10, "cut " + std::to_string(cut));
      test::expect_covs_near(a.covariances, b.covariances, 1e-10,
                             "cut " + std::to_string(cut));
    }
  }
}

TEST(Recovery, LinearSnapshotCompactionRoundTrip) {
  // With compaction armed the journal periodically collapses to one snapshot
  // chunk + a short tail; recovery from every post-compaction file state
  // must still reproduce the uninterrupted session, and the recovered
  // session must keep journaling (a second crash/recover cycle works too).
  Rng rng(0xD0C2);
  const kalman::Problem p = general_problem(rng, 24);
  const auto ops = ops_of(p);

  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("compact_live", /*compact_every=*/5);
  io::SessionStore crash = fresh_store("compact_crash", /*compact_every=*/5);

  Session s = eng.open_durable_session(live, "s1", p.step(0).n);
  for (const auto& op : ops) op(s);

  // The file must be bounded by the snapshot + tail, not the full history.
  const io::ScanResult scan = io::scan_chunk_file(live.path_for("s1"));
  ASSERT_FALSE(scan.chunks.empty());
  EXPECT_EQ(scan.chunks[0].type, static_cast<std::uint8_t>(io::ChunkType::kSnapshot));
  EXPECT_LE(scan.chunks.size(), 6u);  // snapshot + at most compact_every tail records

  crash_copy(live, crash, "s1");
  RecoveredSessions rec = eng.recover_all(crash);
  ASSERT_EQ(rec.linear.size(), 1u);
  ASSERT_TRUE(rec.failed.empty());
  Session& r = rec.linear[0].second;

  const SmootherResult want = s.smooth(true);
  const SmootherResult got = r.smooth(true);
  test::expect_means_near(got.means, want.means, 1e-10);
  test::expect_covs_near(got.covariances, want.covariances, 1e-10);

  // The recovered session is durable again: stream more, crash again,
  // recover again.
  io::SessionStore crash2 = fresh_store("compact_crash2", /*compact_every=*/5);
  {
    Session cont = eng.open_session(p.step(0).n);
    // Rebuild a reference holding the full history: original ops + new obs.
    for (const auto& op : ops) op(cont);
    const index n = r.current_dim();
    for (int j = 0; j < 7; ++j) {
      Vector o(n);
      for (index q = 0; q < n; ++q) o[q] = 0.1 * (j + 1) + 0.01 * q;
      r.observe(Matrix::identity(n), o, CovFactor::identity(n));
      cont.observe(Matrix::identity(n), o, CovFactor::identity(n));
    }
    crash_copy(crash, crash2, "s1");
    RecoveredSessions rec2 = eng.recover_all(crash2);
    ASSERT_EQ(rec2.linear.size(), 1u) << (rec2.failed.empty() ? "" : rec2.failed[0].second);
    const SmootherResult a = rec2.linear[0].second.smooth(true);
    const SmootherResult b = cont.smooth(true);
    test::expect_means_near(a.means, b.means, 1e-10);
    test::expect_covs_near(a.covariances, b.covariances, 1e-10);
  }
}

TEST(Recovery, RecoveredSmoothAgreesWithAllFiveBackends) {
  // The recovered session's answer is not just self-consistent: it matches
  // every backend's solve of the same estimation problem (the prior enters
  // the session as a step-0 observation, the conventional backends take it
  // separately — the exact-equivalence construction from the backend tests).
  Rng rng(0xD0C4);
  const test::CommonProblem cp = test::common_problem(rng, 3, 30);
  const auto ops = ops_of(cp.for_qr);

  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("backends_live");
  io::SessionStore crash = fresh_store("backends_crash");
  Session s = eng.open_durable_session(live, "s1", 3);
  for (const auto& op : ops) op(s);

  crash_copy(live, crash, "s1");
  RecoveredSessions rec = eng.recover_all(crash);
  ASSERT_EQ(rec.linear.size(), 1u);
  const SmootherResult got = rec.linear[0].second.smooth(true);

  const SmootherResult uninterrupted = s.smooth(true);
  test::expect_means_near(got.means, uninterrupted.means, 1e-10, "vs uninterrupted");
  test::expect_covs_near(got.covariances, uninterrupted.covariances, 1e-10);

  par::ThreadPool pool(2);
  for (const BackendInfo& info : all_backends()) {
    SCOPED_TRACE(info.name);
    const SmootherResult ref = solve_with(info.id, cp.for_conventional, cp.prior, pool);
    test::expect_means_near(got.means, ref.means, 1e-7, info.name);
  }
}

TEST(Recovery, NonlinearKillAndRecoverPerBackend) {
  // The nonlinear matrix, once per inner backend: a durable pendulum tenant
  // smooths (caching warm means), streams more, dies, and the recovered
  // session's next smooth must match the uninterrupted one to 1e-10 with the
  // same backend serving the inner solves.
  const index k_base = 12;
  const index k_total = 36;
  Rng rng(0xD0C5);
  kalman::NonlinearModel full = kalman::make_pendulum_benchmark(rng, k_total, 0.5, false);
  kalman::GaussNewtonOptions gn;
  gn.tolerance = 1e-13;
  gn.max_iterations = 60;

  auto model_hook = [&full](const std::string&) {
    kalman::NonlinearModel m = full;  // same callbacks; history is overwritten
    return m;
  };

  SmootherEngine eng({.threads = 2});
  for (const BackendInfo& info : all_backends()) {
    SCOPED_TRACE(info.name);
    NonlinearJobOptions opts;
    opts.backend = info.id;
    opts.gn = gn;

    io::SessionStore live = fresh_store(std::string("nl_live_") + info.name,
                                        /*compact_every=*/8);
    io::SessionStore crash = fresh_store(std::string("nl_crash_") + info.name,
                                         /*compact_every=*/8);
    kalman::NonlinearModel base = full;
    base.k = k_base;
    base.dims.resize(static_cast<std::size_t>(k_base + 1));
    base.obs.resize(static_cast<std::size_t>(k_base + 1));

    NonlinearSession s = eng.open_durable_nonlinear_session(live, "pend", base,
                                                            Vector({0.1, 0.0}), opts);
    SmootherResult mid;
    s.smooth_into(mid);  // caches means -> the next compaction snapshots them
    for (index i = k_base + 1; i <= k_total; ++i)
      s.advance(full.obs[static_cast<std::size_t>(i)]);

    crash_copy(live, crash, "pend");
    RecoveryOptions ro;
    ro.nonlinear_model = model_hook;
    ro.nonlinear_opts = opts;
    RecoveredSessions rec = eng.recover_all(crash, ro);
    ASSERT_EQ(rec.nonlinear.size(), 1u)
        << (rec.failed.empty() ? "" : rec.failed[0].second);
    NonlinearSession& r = rec.nonlinear[0].second;
    EXPECT_EQ(r.current_step(), k_total);

    SmootherResult want;
    s.smooth_into(want);
    SmootherResult got;
    r.smooth_into(got);
    EXPECT_TRUE(r.last_info().converged);
    test::expect_means_near(got.means, want.means, 1e-10, info.name);

    // Compaction snapshotted the warm-start means cached by the pre-crash
    // smooth, so the recovered session's first solve warm-started — from the
    // very same trajectory the uninterrupted session warm-starts from.
    EXPECT_EQ(r.stats().warm_solves, 1u);
    EXPECT_EQ(r.stats().cold_solves, 0u);
  }
}

TEST(Recovery, ResetChunkInvalidatesEverythingBeforeIt) {
  // Crash windows around reset(): (a) immediately after the reset append —
  // before any new record — must come back as a fresh track of the new
  // dimension; (b) after post-reset appends must come back with exactly
  // those.  Compaction is disabled so the reset chunk itself is replayed.
  Rng rng(0xD0C6);
  const kalman::Problem before = general_problem(rng, 8);
  const auto pre_ops = ops_of(before);

  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("reset_live");
  io::SessionStore crash = fresh_store("reset_crash");
  Session s = eng.open_durable_session(live, "s1", before.step(0).n);
  for (const auto& op : pre_ops) op(s);
  const SmootherResult pre_smooth = s.smooth(true);  // populate the cache pre-reset

  const index n2 = 3;
  s.reset(n2);

  // (a) kill between the reset append and the first new record.
  crash_copy(live, crash, "s1");
  {
    RecoveredSessions rec = eng.recover_all(crash);
    ASSERT_EQ(rec.linear.size(), 1u);
    Session& r = rec.linear[0].second;
    EXPECT_EQ(r.current_step(), 0);
    EXPECT_EQ(r.current_dim(), n2);
    // The epoch bump must carry into the recovered session: a smooth after
    // fresh appends rebuilds from zero and matches a fresh track.
    Session ref = eng.open_session(n2);
    Vector o({1.0, 2.0, 3.0});
    r.observe(Matrix::identity(n2), o, CovFactor::identity(n2));
    ref.observe(Matrix::identity(n2), o, CovFactor::identity(n2));
    const SmootherResult a = r.smooth(true);
    const SmootherResult b = ref.smooth(true);
    ASSERT_EQ(a.means.size(), 1u);
    test::expect_means_near(a.means, b.means, 1e-10);
    test::expect_covs_near(a.covariances, b.covariances, 1e-10);
  }

  // (b) kill after the reset plus a few appends.
  Session ref = eng.open_session(n2);
  for (int j = 0; j < 3; ++j) {
    Vector o({0.5 * j, 1.0, -0.25 * j});
    s.observe(Matrix::identity(n2), o, CovFactor::identity(n2));
    ref.observe(Matrix::identity(n2), o, CovFactor::identity(n2));
    Matrix f = Matrix::identity(n2);
    Vector c(n2);
    s.evolve(f, c, CovFactor::identity(n2));
    ref.evolve(Matrix::identity(n2), Vector(n2), CovFactor::identity(n2));
  }
  crash_copy(live, crash, "s1");
  RecoveredSessions rec = eng.recover_all(crash);
  ASSERT_EQ(rec.linear.size(), 1u);
  const SmootherResult a = rec.linear[0].second.smooth(true);
  const SmootherResult b = ref.smooth(true);
  test::expect_means_near(a.means, b.means, 1e-10);
  test::expect_covs_near(a.covariances, b.covariances, 1e-10);
  (void)pre_smooth;
}

TEST(Recovery, ResmoothCacheRebuildsThenHits) {
  // Post-restore cache lifecycle: the first smooth is a miss that rebuilds
  // the spliced factor from the recovered filter; an unmutated repeat is a
  // hit served from the rebuilt result; both answers are identical.
  Rng rng(0xD0C7);
  const test::CommonProblem cp = test::common_problem(rng, 3, 20);
  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("cache_live");
  io::SessionStore crash = fresh_store("cache_crash");
  Session s = eng.open_durable_session(live, "s1", 3);
  for (const auto& op : ops_of(cp.for_qr)) op(s);
  crash_copy(live, crash, "s1");

  RecoveredSessions rec = eng.recover_all(crash);
  ASSERT_EQ(rec.linear.size(), 1u);
  Session& r = rec.linear[0].second;
  EXPECT_EQ(r.stats().resmooth_misses, 0u);

  SmootherResult first;
  r.smooth_into(first, true);
  EXPECT_EQ(r.stats().resmooth_misses, 1u) << "first post-recovery smooth rebuilds";
  EXPECT_EQ(r.stats().resmooth_hits, 0u);

  SmootherResult second;
  r.smooth_into(second, true);
  EXPECT_EQ(r.stats().resmooth_misses, 1u);
  EXPECT_EQ(r.stats().resmooth_hits, 1u) << "unmutated repeat is served from the cache";
  test::expect_means_near(second.means, first.means, 0.0);
  test::expect_covs_near(second.covariances, first.covariances, 0.0);
}

TEST(Recovery, FailuresAreIsolatedPerSession) {
  Rng rng(0xD0C8);
  const test::CommonProblem cp = test::common_problem(rng, 3, 10);
  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("isolation_live");
  io::SessionStore crash = fresh_store("isolation_crash");
  {
    Session good = eng.open_durable_session(live, "good", 3);
    for (const auto& op : ops_of(cp.for_qr)) op(good);
    Session other = eng.open_durable_session(live, "corrupt", 3);
    for (const auto& op : ops_of(cp.for_qr)) op(other);
  }
  crash_copy(live, crash, "good");
  crash_copy(live, crash, "corrupt");

  // Corrupt the second journal mid-file (flip a payload byte of the first
  // chunk; complete chunks follow, so the scan must hard-fail).
  {
    const std::string path = crash.path_for("corrupt");
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();
    bytes[io::kFileHeaderSize + io::kChunkOverhead] ^= 0x40;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  // A torn-header journal (crash during create) and a nonlinear journal with
  // no model hook join the failure set.
  {
    std::ofstream f(crash.path_for("tornheader"), std::ios::binary);
    f.write("PITKJNL1\x01", 9);
  }
  {
    auto j = io::SessionJournal::create(crash, "nohook", io::SessionKind::Nonlinear);
    io::NonlinearSnapshot snap;
    snap.k = 0;
    snap.dims = {2};
    snap.obs.resize(1);
    snap.u0 = Vector({0.1, 0.0});
    j->stage_open_nonlinear(snap);
    j->commit();
    j->close();
  }

  RecoveredSessions rec = eng.recover_all(crash);
  ASSERT_EQ(rec.linear.size(), 1u);
  EXPECT_EQ(rec.linear[0].first, "good");
  EXPECT_EQ(rec.failed.size(), 3u);
  const SmootherResult got = rec.linear[0].second.smooth(false);
  EXPECT_EQ(got.means.size(), static_cast<std::size_t>(cp.for_qr.num_states()));
}

TEST(Recovery, PoisonedJournalLosesDurabilityLoudlyButKeepsServing) {
  // An injected torn write (io.write fault, the disk-full/yanked-volume
  // case) fails the mutation that hit it with an exception — durability loss
  // is loud — but the in-memory session stays consistent and serves; later
  // mutations skip the poisoned journal instead of corrupting it.
  fault::disarm_all();
  Rng rng(0xD0C9);
  const test::CommonProblem cp = test::common_problem(rng, 3, 12);
  const auto ops = ops_of(cp.for_qr);
  SmootherEngine eng({.threads = 2});
  io::SessionStore live = fresh_store("poison_live");

  Session s = eng.open_durable_session(live, "s1", 3);
  Session ref = eng.open_session(3);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i == 4) {
      fault::arm("io.write", fault::Kind::Fail);
      EXPECT_THROW(ops[i](s), std::runtime_error);
      fault::disarm_all();
    } else {
      ops[i](s);
    }
    ops[i](ref);  // the in-memory mutation applied even when the append died
  }
  const SmootherResult a = s.smooth(true);
  const SmootherResult b = ref.smooth(true);
  test::expect_means_near(a.means, b.means, 1e-12, "poisoned session still serves");
  test::expect_covs_near(a.covariances, b.covariances, 1e-12);
}

TEST(Recovery, StoreValidatesIdsAndListsSessions) {
  io::SessionStore store = fresh_store("store_api");
  EXPECT_THROW((void)store.path_for(""), std::invalid_argument);
  EXPECT_THROW((void)store.path_for(".hidden"), std::invalid_argument);
  EXPECT_THROW((void)store.path_for("a/b"), std::invalid_argument);
  EXPECT_THROW((void)store.path_for("a b"), std::invalid_argument);
  EXPECT_NO_THROW((void)store.path_for("track-7.main_2"));

  SmootherEngine eng({.threads = 1});
  { Session a = eng.open_durable_session(store, "alpha", 2); }
  { Session b = eng.open_durable_session(store, "beta", 2); }
  const std::vector<std::string> ids = store.list();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "alpha");
  EXPECT_EQ(ids[1], "beta");
  store.remove("alpha");
  EXPECT_EQ(store.list().size(), 1u);
}

}  // namespace
}  // namespace pitk::engine
