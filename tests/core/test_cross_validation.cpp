#include <gtest/gtest.h>

#include <cmath>

#include "core/associative.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/rts.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

/// The headline integration test: on problems in the common domain of all
/// four smoother families (H = I, prior available), every implementation in
/// the library must produce the same smoothed means and covariances.
class AllSmoothersTest : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(AllSmoothersTest, AgreeOnCommonProblems) {
  auto [n, k, dense_cov] = GetParam();
  Rng rng(700 + n * 100 + k);
  par::ThreadPool pool(4);
  test::CommonProblem cp = test::common_problem(rng, n, k, dense_cov);

  SmootherResult rts = rts_smooth(cp.for_conventional, cp.prior);
  SmootherResult assoc = associative_smooth(cp.for_conventional, cp.prior, pool, {});
  SmootherResult ps = paige_saunders_smooth(cp.for_qr, {});
  SmootherResult oe = oddeven_smooth(cp.for_qr, pool, {});
  SmootherResult ref = dense_smooth(cp.for_qr, true);

  const std::string tag =
      "n=" + std::to_string(n) + " k=" + std::to_string(k) + (dense_cov ? " dense" : "");
  test::expect_means_near(rts.means, ref.means, 1e-7, "rts " + tag);
  test::expect_means_near(assoc.means, ref.means, 1e-7, "assoc " + tag);
  test::expect_means_near(ps.means, ref.means, 1e-7, "ps " + tag);
  test::expect_means_near(oe.means, ref.means, 1e-7, "oe " + tag);

  test::expect_covs_near(rts.covariances, ref.covariances, 1e-7, "rts cov " + tag);
  test::expect_covs_near(assoc.covariances, ref.covariances, 1e-7, "assoc cov " + tag);
  test::expect_covs_near(ps.covariances, ref.covariances, 1e-7, "ps cov " + tag);
  test::expect_covs_near(oe.covariances, ref.covariances, 1e-7, "oe cov " + tag);
}

INSTANTIATE_TEST_SUITE_P(Grid, AllSmoothersTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 6, 23),
                                            ::testing::Values(false, true)));

TEST(CrossValidation, PaperBenchmarkProblemAllSmoothers) {
  // The exact workload of Section 5.2, scaled down.
  Rng rng(800);
  const index n = 6;
  const index k = 64;
  Problem p = make_paper_benchmark(rng, n, k);
  par::ThreadPool pool(4);

  // QR methods need no prior; conventional ones get the step-0 observation
  // converted into an exact Gaussian prior (G orthonormal, L = I):
  //   u_0 ~ N(G^T o_0, I).
  const Observation& ob0 = *p.step(0).observation;
  GaussianPrior prior;
  prior.mean = Vector(n);
  la::gemv(1.0, ob0.G.view(), la::Trans::Yes, ob0.o.span(), 0.0, prior.mean.span());
  prior.cov = Matrix::identity(n);
  Problem p_conv = p;
  p_conv.step(0).observation.reset();

  SmootherResult oe = oddeven_smooth(p, pool, {});
  SmootherResult ps = paige_saunders_smooth(p, {});
  SmootherResult rts = rts_smooth(p_conv, prior);
  SmootherResult assoc = associative_smooth(p_conv, prior, pool, {});

  test::expect_means_near(oe.means, ps.means, 1e-8, "oe vs ps");
  test::expect_means_near(rts.means, ps.means, 1e-7, "rts vs ps");
  test::expect_means_near(assoc.means, ps.means, 1e-7, "assoc vs ps");
  test::expect_covs_near(oe.covariances, ps.covariances, 1e-8, "oe vs ps cov");
  test::expect_covs_near(rts.covariances, ps.covariances, 1e-7, "rts vs ps cov");
  test::expect_covs_near(assoc.covariances, ps.covariances, 1e-7, "assoc vs ps cov");
}

TEST(CrossValidation, QrMethodsAgreeBeyondConventionalDomain) {
  // Rectangular H + varying dims + missing observations: only the QR pair
  // can solve these; they must agree with each other and the dense oracle.
  Rng rng(810);
  par::ThreadPool pool(4);
  test::RandomProblemSpec spec;
  spec.k = 27;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  spec.obs_probability = 0.5;
  Problem p = test::random_problem(rng, spec);

  SmootherResult oe = oddeven_smooth(p, pool, {});
  SmootherResult ps = paige_saunders_smooth(p, {});
  SmootherResult ref = dense_smooth(p, true);
  test::expect_means_near(oe.means, ref.means, 1e-7);
  test::expect_means_near(ps.means, ref.means, 1e-7);
  test::expect_covs_near(oe.covariances, ref.covariances, 1e-6);
  test::expect_covs_near(ps.covariances, ref.covariances, 1e-6);
}

TEST(CrossValidation, SimulatedTrackingScenarioEndToEnd) {
  // Simulate, smooth with all four, verify everyone beats the raw
  // observations on RMSE and agrees with each other.
  Rng rng(820);
  par::ThreadPool pool(4);
  SimSpec spec = constant_velocity_spec(2, 120, 0.1, 0.05, 0.4,
                                        Vector({0.0, 1.0, 0.0, -0.5}));
  Simulation sim = simulate(rng, spec);
  GaussianPrior prior;
  prior.mean = Vector({0.0, 1.0, 0.0, -0.5});
  prior.cov = Matrix::identity(4);

  Problem qr_problem = with_prior_observation(sim.problem, prior);
  SmootherResult oe = oddeven_smooth(qr_problem, pool, {});
  SmootherResult rts = rts_smooth(sim.problem, prior);
  test::expect_means_near(oe.means, rts.means, 1e-7);

  double obs_rmse = 0.0;
  double oe_rmse = 0.0;
  index cnt = 0;
  for (index i = 0; i <= spec.k; ++i) {
    const auto& truth = sim.truth[static_cast<std::size_t>(i)];
    const auto& est = oe.means[static_cast<std::size_t>(i)];
    if (sim.problem.step(i).observation) {
      const auto& o = sim.problem.step(i).observation->o;
      obs_rmse += std::pow(o[0] - truth[0], 2) + std::pow(o[1] - truth[2], 2);
      oe_rmse += std::pow(est[0] - truth[0], 2) + std::pow(est[2] - truth[2], 2);
      ++cnt;
    }
  }
  EXPECT_LT(oe_rmse, obs_rmse) << "smoothing must denoise (" << cnt << " observed steps)";
}

}  // namespace
}  // namespace pitk::kalman
