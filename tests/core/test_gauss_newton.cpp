#include "core/gauss_newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kalman/dense_reference.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

/// Noisy pendulum: state (angle, angular velocity), nonlinear dynamics
/// theta'' = -(g/l) sin(theta), observed through sin(theta) (nonlinear).
NonlinearModel pendulum_model(Rng& rng, index k, double dt, std::vector<Vector>* truth_out) {
  const double gl = 9.81;
  NonlinearModel m;
  m.k = k;
  m.dims.assign(static_cast<std::size_t>(k + 1), 2);
  m.f = [dt, gl](index, const Vector& u) {
    Vector v(2);
    v[0] = u[0] + dt * u[1];
    v[1] = u[1] - dt * gl * std::sin(u[0]);
    return v;
  };
  m.f_jac = [dt, gl](index, const Vector& u) {
    Matrix j({{1.0, dt}, {-dt * gl * std::cos(u[0]), 1.0}});
    return j;
  };
  m.process_noise = [](index) { return CovFactor::scaled_identity(2, 1e-4); };
  m.g = [](index, const Vector& u) {
    Vector v(1);
    v[0] = std::sin(u[0]);
    return v;
  };
  m.g_jac = [](index, const Vector& u) {
    Matrix j(1, 2);
    j(0, 0) = std::cos(u[0]);
    return j;
  };
  m.obs_noise = [](index) { return CovFactor::scaled_identity(1, 0.01); };

  // Simulate the truth and observations.
  std::vector<Vector> truth;
  Vector u({0.5, 0.0});
  truth.push_back(u);
  m.obs.resize(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    if (i > 0) {
      u = m.f(i, u);
      u[0] += 0.01 * rng.gaussian();
      u[1] += 0.01 * rng.gaussian();
      truth.push_back(u);
    }
    Vector o(1);
    o[0] = std::sin(u[0]) + 0.1 * rng.gaussian();
    m.obs[static_cast<std::size_t>(i)] = o;
  }
  if (truth_out) *truth_out = truth;
  return m;
}

std::vector<Vector> zero_init(index k) {
  // Deliberately poor initial trajectory: all states at (0.1, 0).
  std::vector<Vector> init(static_cast<std::size_t>(k + 1));
  for (auto& v : init) v = Vector({0.1, 0.0});
  return init;
}

TEST(GaussNewton, ConvergesOnPendulum) {
  Rng rng(600);
  std::vector<Vector> truth;
  NonlinearModel m = pendulum_model(rng, 60, 0.02, &truth);
  par::ThreadPool pool(4);
  GaussNewtonResult res = gauss_newton_smooth(m, zero_init(m.k), pool, {});
  EXPECT_TRUE(res.converged);
  // Cost must decrease monotonically for plain GN on this mild problem.
  for (std::size_t i = 1; i < res.cost_history.size(); ++i)
    EXPECT_LE(res.cost_history[i], res.cost_history[i - 1] + 1e-9);
  // The smoothed angle must track the truth far better than the init.
  double err = 0.0;
  for (index i = 0; i <= m.k; ++i)
    err += std::abs(res.states[static_cast<std::size_t>(i)][0] -
                    truth[static_cast<std::size_t>(i)][0]);
  err /= static_cast<double>(m.k + 1);
  EXPECT_LT(err, 0.08) << "mean absolute angle error";
}

TEST(GaussNewton, LevenbergMarquardtAlsoConverges) {
  Rng rng(610);
  NonlinearModel m = pendulum_model(rng, 40, 0.02, nullptr);
  par::ThreadPool pool(2);
  GaussNewtonOptions opts;
  opts.levenberg_marquardt = true;
  GaussNewtonResult res = gauss_newton_smooth(m, zero_init(m.k), pool, opts);
  EXPECT_TRUE(res.converged);
  // LM never accepts an uphill step.
  for (std::size_t i = 1; i < res.cost_history.size(); ++i)
    EXPECT_LE(res.cost_history[i], res.cost_history[i - 1] + 1e-12);
}

TEST(GaussNewton, LinearModelConvergesInOneIteration) {
  // With linear f and g, the first GN step solves the problem exactly.
  Rng rng(620);
  NonlinearModel m;
  m.k = 10;
  m.dims.assign(11, 2);
  Matrix f = la::random_orthonormal(rng, 2);
  m.f = [f](index, const Vector& u) {
    Vector v(2);
    la::gemv(1.0, f.view(), la::Trans::No, u.span(), 0.0, v.span());
    return v;
  };
  m.f_jac = [f](index, const Vector&) { return f; };
  m.process_noise = [](index) { return CovFactor::identity(2); };
  m.g = [](index, const Vector& u) {
    Vector v(2);
    v[0] = u[0];
    v[1] = u[1];
    return v;
  };
  m.g_jac = [](index, const Vector&) { return Matrix::identity(2); };
  m.obs_noise = [](index) { return CovFactor::identity(2); };
  m.obs.resize(11);
  for (auto& o : m.obs) o = la::random_gaussian_vector(rng, 2);

  par::ThreadPool pool(2);
  GaussNewtonOptions opts;
  opts.max_iterations = 3;
  std::vector<Vector> init(11, Vector({0.0, 0.0}));
  GaussNewtonResult res = gauss_newton_smooth(m, init, pool, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);

  // Cross-check against the linear smoother on the equivalent Problem.
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), m.obs[0], CovFactor::identity(2));
  for (index i = 1; i <= 10; ++i) {
    p.evolve(f, Vector(), CovFactor::identity(2));
    p.observe(Matrix::identity(2), m.obs[static_cast<std::size_t>(i)], CovFactor::identity(2));
  }
  SmootherResult ref = dense_smooth(p, false);
  test::expect_means_near(res.states, ref.means, 1e-8);
}

TEST(GaussNewton, FinalCovarianceOption) {
  Rng rng(630);
  NonlinearModel m = pendulum_model(rng, 20, 0.02, nullptr);
  par::ThreadPool pool(2);
  GaussNewtonOptions opts;
  opts.final_covariance = true;
  GaussNewtonResult res = gauss_newton_smooth(m, zero_init(m.k), pool, opts);
  ASSERT_EQ(res.covariances.size(), static_cast<std::size_t>(m.k + 1));
  for (const Matrix& c : res.covariances) {
    EXPECT_EQ(c.rows(), 2);
    EXPECT_GT(c(0, 0), 0.0);
    EXPECT_GT(c(1, 1), 0.0);
  }
}

TEST(GaussNewton, CostFunctionIsExactAtTruth) {
  // For a noise-free trajectory the cost is exactly zero.
  NonlinearModel m;
  m.k = 5;
  m.dims.assign(6, 1);
  m.f = [](index, const Vector& u) { return Vector({u[0] * 0.9}); };
  m.f_jac = [](index, const Vector&) { return Matrix({{0.9}}); };
  m.process_noise = [](index) { return CovFactor::identity(1); };
  m.g = [](index, const Vector& u) { return Vector({u[0]}); };
  m.g_jac = [](index, const Vector&) { return Matrix::identity(1); };
  m.obs_noise = [](index) { return CovFactor::identity(1); };
  std::vector<Vector> traj;
  double x = 2.0;
  m.obs.resize(6);
  for (index i = 0; i <= 5; ++i) {
    if (i > 0) x *= 0.9;
    traj.push_back(Vector({x}));
    m.obs[static_cast<std::size_t>(i)] = Vector({x});
  }
  EXPECT_EQ(nonlinear_cost(m, traj), 0.0);
}

TEST(GaussNewton, InvalidInputsThrow) {
  NonlinearModel m;
  m.k = 2;
  m.dims.assign(3, 1);
  par::ThreadPool pool(1);
  EXPECT_THROW((void)gauss_newton_smooth(m, {}, pool, {}), std::invalid_argument);
}

}  // namespace
}  // namespace pitk::kalman
