#include "core/oddeven.hpp"

#include <gtest/gtest.h>

#include "core/paige_saunders.hpp"
#include "core/selinv.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;
using la::Vector;

/// Sweep every chain length 0..25 on 1 and 4 threads: the odd-even recursion
/// has distinct even/odd parity paths at every level, and short chains hit
/// all of its edge cases.
class OddEvenChainTest : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(OddEvenChainTest, MeansMatchDenseForEveryChainLength) {
  auto [k, threads] = GetParam();
  par::ThreadPool pool(threads);
  Rng rng(200 + k);
  test::RandomProblemSpec spec;
  spec.k = k;
  spec.n_min = spec.n_max = 2;
  spec.obs_probability = 0.8;
  Problem p = test::random_problem(rng, spec);
  SmootherResult got = oddeven_smooth(p, pool, {.compute_covariance = false, .grain = 2});
  SmootherResult ref = dense_smooth(p, false);
  test::expect_means_near(got.means, ref.means, 1e-8, "k=" + std::to_string(k));
}

INSTANTIATE_TEST_SUITE_P(AllShortChains, OddEvenChainTest,
                         ::testing::Combine(::testing::Range(0, 26),
                                            ::testing::Values(1u, 4u)));

struct OeCase {
  const char* name;
  test::RandomProblemSpec spec;
};

class OddEvenFeatureTest : public ::testing::TestWithParam<OeCase> {};

TEST_P(OddEvenFeatureTest, MeansMatchPaigeSaunders) {
  Rng rng(300);
  par::ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    Problem p = test::random_problem(rng, GetParam().spec);
    SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false, .grain = 1});
    SmootherResult ps = paige_saunders_smooth(p, {.compute_covariance = false});
    test::expect_means_near(oe.means, ps.means, 1e-7,
                            std::string(GetParam().name) + " rep " + std::to_string(rep));
  }
}

OeCase oe_cases[] = {
    {"plain", {.k = 24, .n_min = 3, .n_max = 3}},
    {"missing_obs", {.k = 31, .n_min = 2, .n_max = 2, .obs_probability = 0.35}},
    {"varying_dims", {.k = 17, .n_min = 2, .n_max = 5, .varying_dims = true}},
    {"rect_h", {.k = 13, .n_min = 3, .n_max = 3, .rectangular_h = true}},
    {"dense_cov", {.k = 21, .n_min = 3, .n_max = 3, .dense_covariances = true}},
    {"diag_cov", {.k = 20, .n_min = 4, .n_max = 4, .diagonal_covariances = true}},
    {"no_control", {.k = 19, .n_min = 3, .n_max = 3, .with_control = false}},
    {"everything",
     {.k = 33,
      .n_min = 2,
      .n_max = 4,
      .varying_dims = true,
      .rectangular_h = true,
      .obs_probability = 0.45,
      .dense_covariances = true}},
};

INSTANTIATE_TEST_SUITE_P(Features, OddEvenFeatureTest, ::testing::ValuesIn(oe_cases),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(OddEven, RFactorGramMatchesNormalEquations) {
  // Assemble R from the level rows and verify R^T R == P^T (A^T A) P for the
  // odd-even permutation P — i.e. the factorization really is a QR of UAP.
  Rng rng(310);
  test::RandomProblemSpec spec;
  spec.k = 11;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(2);
  OddEvenFactor f = oddeven_factor(p, pool, 1);

  const index n = 2;
  const index total = p.total_state_dim();
  // Column offsets in *original* ordering.
  auto off = [&](index col) { return col * n; };
  Matrix rfull(total, total);  // rows in elimination order, columns original
  index row = 0;
  // Rows must be emitted deepest level first to make R upper triangular
  // under the permuted ordering; sanity only needs the Gram product, which
  // is row-order independent.
  for (const auto& lev : f.levels) {
    for (const auto& r : lev.rows) {
      rfull.block(row, off(r.col), n, n).assign(r.R.view());
      if (r.left >= 0) rfull.block(row, off(r.left), n, n).assign(r.Eblk.view());
      if (r.right >= 0) rfull.block(row, off(r.right), n, n).assign(r.Yblk.view());
      row += n;
    }
  }
  ASSERT_EQ(row, total);

  DenseSystem sys = build_dense_system(p);
  Matrix ata = la::multiply(sys.A.view(), Trans::Yes, sys.A.view(), Trans::No);
  Matrix rtr = la::multiply(rfull.view(), Trans::Yes, rfull.view(), Trans::No);
  test::expect_near(rtr.view(), ata.view(), 1e-9, "R^T R vs A^T A");
}

TEST(OddEven, RowsAreUpperTriangularInPermutedOrder) {
  // Every row's couplings must reference columns that are eliminated later
  // (odd columns of the same level), i.e. strictly deeper levels.
  Rng rng(311);
  test::RandomProblemSpec spec;
  spec.k = 19;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(2);
  OddEvenFactor f = oddeven_factor(p, pool, 1);

  std::vector<int> elim_level(static_cast<std::size_t>(f.num_states()), -1);
  for (std::size_t lev = 0; lev < f.levels.size(); ++lev)
    for (const auto& r : f.levels[lev].rows)
      elim_level[static_cast<std::size_t>(r.col)] = static_cast<int>(lev);
  for (index c = 0; c < f.num_states(); ++c) EXPECT_GE(elim_level[static_cast<std::size_t>(c)], 0);

  for (std::size_t lev = 0; lev < f.levels.size(); ++lev) {
    for (const auto& r : f.levels[lev].rows) {
      if (r.left >= 0)
        EXPECT_GT(elim_level[static_cast<std::size_t>(r.left)], static_cast<int>(lev));
      if (r.right >= 0)
        EXPECT_GT(elim_level[static_cast<std::size_t>(r.right)], static_cast<int>(lev));
      // Diagonal blocks are upper triangular.
      for (index jc = 0; jc < r.R.cols(); ++jc)
        for (index ir = jc + 1; ir < r.R.rows(); ++ir) EXPECT_EQ(r.R(ir, jc), 0.0);
    }
  }
}

TEST(OddEven, LevelCountIsLogarithmic) {
  Rng rng(313);
  test::RandomProblemSpec spec;
  spec.k = 63;  // 64 states -> exactly 7 levels (32,16,8,4,2,1 evens + base)
  spec.n_min = spec.n_max = 1;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(2);
  OddEvenFactor f = oddeven_factor(p, pool, 4);
  EXPECT_EQ(f.levels.size(), 7u);
  EXPECT_EQ(f.levels.front().rows.size(), 32u);
  EXPECT_EQ(f.levels.back().rows.size(), 1u);
}

TEST(OddEven, GrainInsensitivity) {
  // Results must be bit-for-bit independent of the grain parameter (it only
  // affects scheduling, never arithmetic).
  Rng rng(317);
  test::RandomProblemSpec spec;
  spec.k = 40;
  spec.n_min = spec.n_max = 3;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);
  SmootherResult a = oddeven_smooth(p, pool, {.compute_covariance = true, .grain = 1});
  SmootherResult b = oddeven_smooth(p, pool, {.compute_covariance = true, .grain = 1000});
  test::expect_means_near(a.means, b.means, 0.0, "grain determinism");
  test::expect_covs_near(a.covariances, b.covariances, 0.0, "grain determinism");
}

TEST(OddEven, DeterministicAcrossThreadCounts) {
  Rng rng(319);
  test::RandomProblemSpec spec;
  spec.k = 33;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool p1(1);
  par::ThreadPool p4(4);
  SmootherResult a = oddeven_smooth(p, p1, {});
  SmootherResult b = oddeven_smooth(p, p4, {});
  test::expect_means_near(a.means, b.means, 0.0, "thread determinism");
  test::expect_covs_near(a.covariances, b.covariances, 0.0, "thread determinism");
}

TEST(OddEven, UnknownInitialStateMatchesPaigeSaunders) {
  Problem p;
  p.start(2);
  Matrix f({{1.0, 0.1}, {0.0, 1.0}});
  p.evolve(f, Vector(), CovFactor::scaled_identity(2, 1e-6));
  p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  p.evolve(f, Vector(), CovFactor::scaled_identity(2, 1e-6));
  p.observe(Matrix::identity(2), Vector({1.2, 2.0}), CovFactor::identity(2));
  par::ThreadPool pool(2);
  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false});
  SmootherResult ps = paige_saunders_smooth(p, {.compute_covariance = false});
  test::expect_means_near(oe.means, ps.means, 1e-9);
}

TEST(OddEven, LongChainStressAgainstPaigeSaunders) {
  Rng rng(331);
  test::RandomProblemSpec spec;
  spec.k = 999;
  spec.n_min = spec.n_max = 2;
  spec.obs_probability = 0.7;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);
  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false, .grain = 10});
  SmootherResult ps = paige_saunders_smooth(p, {.compute_covariance = false});
  test::expect_means_near(oe.means, ps.means, 1e-6, "k=999");
}

TEST(OddEven, RejectsInvalidProblem) {
  Problem p;
  p.start(2);
  par::ThreadPool pool(1);
  EXPECT_THROW((void)oddeven_smooth(p, pool, {}), std::invalid_argument);
}

TEST(OddEven, FactorFromBidiagonalMatchesSequentialSolve) {
  // A factorization seeded from an already-assembled bidiagonal R (the large
  // session re-smooth path) must reproduce the sequential Paige-Saunders
  // solution and SelInv covariances: the bidiagonal rows are one orthogonal
  // transform of the original problem, so both factorizations solve the same
  // least-squares problem.
  Rng rng(337);
  par::ThreadPool pool(4);
  for (const index k : {0, 1, 2, 7, 64, 150}) {
    test::RandomProblemSpec spec;
    spec.k = k;
    spec.n_min = spec.n_max = 3;
    spec.obs_probability = k == 0 ? 1.0 : 0.8;
    Problem p = test::random_problem(rng, spec);

    BidiagonalFactor b = paige_saunders_factor(p);
    std::vector<Vector> ps_means;
    paige_saunders_solve_into(b, ps_means);
    std::vector<Matrix> ps_covs = selinv_bidiagonal(b);

    OddEvenFactor f = oddeven_factor_from_bidiagonal(b, pool, 2);
    std::vector<Vector> oe_means = oddeven_solve(f, pool, 2);
    std::vector<Matrix> oe_covs = oddeven_covariances(f, pool, 2);

    test::expect_means_near(oe_means, ps_means, 1e-10, "k=" + std::to_string(k));
    test::expect_covs_near(oe_covs, ps_covs, 1e-10, "k=" + std::to_string(k));
  }
}

TEST(OddEven, FactorFromBidiagonalValidatesShapes) {
  par::ThreadPool pool(1);
  BidiagonalFactor b;  // no states at all
  EXPECT_THROW((void)oddeven_factor_from_bidiagonal(b, pool), std::invalid_argument);
  b.diag.push_back(Matrix::identity(2));
  b.diag.push_back(Matrix::identity(2));
  b.sup.push_back(Matrix::identity(3));  // wrong shape: must be 2x2
  b.sup.emplace_back();                  // entry k stays empty
  b.rhs.push_back(Vector(2));
  b.rhs.push_back(Vector(2));
  EXPECT_THROW((void)oddeven_factor_from_bidiagonal(b, pool), std::invalid_argument);
}

}  // namespace
}  // namespace pitk::kalman
