#include "core/filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>

#include "core/paige_saunders.hpp"
#include "core/selinv.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/rts.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

/// Feed a Problem through the incremental interface.
IncrementalFilter replay(const Problem& p, index upto) {
  IncrementalFilter f(p.state_dim(0));
  for (index i = 0; i <= upto; ++i) {
    if (i > 0) {
      const Evolution& e = *p.step(i).evolution;
      if (e.identity_h())
        f.evolve(e.F, e.c, e.noise);
      else
        f.evolve_rect(p.state_dim(i), e.H, e.F, e.c, e.noise);
    }
    if (p.step(i).observation) {
      const Observation& ob = *p.step(i).observation;
      f.observe(ob.G, ob.o, ob.noise);
    }
  }
  return f;
}

TEST(IncrementalFilter, MatchesConventionalKalmanFilter) {
  Rng rng(900);
  test::CommonProblem cp = test::common_problem(rng, 3, 15);
  FilterResult ref = kalman_filter(cp.for_conventional, cp.prior);
  IncrementalFilter f(3);
  // Prior as first observation.
  f.observe(Matrix::identity(3), cp.prior.mean, CovFactor::dense(cp.prior.cov));
  for (index i = 0; i <= cp.for_conventional.last_index(); ++i) {
    if (i > 0) {
      const Evolution& e = *cp.for_conventional.step(i).evolution;
      f.evolve(e.F, e.c, e.noise);
    }
    if (cp.for_conventional.step(i).observation) {
      const Observation& ob = *cp.for_conventional.step(i).observation;
      f.observe(ob.G, ob.o, ob.noise);
    }
    auto est = f.estimate();
    auto cov = f.covariance();
    ASSERT_TRUE(est.has_value()) << i;
    ASSERT_TRUE(cov.has_value()) << i;
    test::expect_near(est->span(), ref.means[static_cast<std::size_t>(i)].span(), 1e-7,
                      "mean @" + std::to_string(i));
    test::expect_near(cov->view(), ref.covariances[static_cast<std::size_t>(i)].view(), 1e-7,
                      "cov @" + std::to_string(i));
  }
}

TEST(IncrementalFilter, SmoothMatchesBatchSmoother) {
  Rng rng(910);
  test::RandomProblemSpec spec;
  spec.k = 20;
  spec.n_min = spec.n_max = 3;
  spec.obs_probability = 0.7;
  Problem p = test::random_problem(rng, spec);
  IncrementalFilter f = replay(p, p.last_index());
  SmootherResult inc = f.smooth(true);
  SmootherResult batch = paige_saunders_smooth(p, {});
  test::expect_means_near(inc.means, batch.means, 1e-8);
  test::expect_covs_near(inc.covariances, batch.covariances, 1e-8);
}

TEST(IncrementalFilter, RankDeficiencyReportedThenResolved) {
  // Two-dimensional state observed one component at a time: after the first
  // scalar observation the state is still undetermined.
  IncrementalFilter f(2);
  EXPECT_FALSE(f.estimate().has_value());
  f.observe(Matrix({{1.0, 0.0}}), Vector({5.0}), CovFactor::identity(1));
  EXPECT_FALSE(f.estimate().has_value());
  EXPECT_FALSE(f.covariance().has_value());
  EXPECT_THROW((void)f.smooth(false), std::runtime_error);
  f.observe(Matrix({{0.0, 1.0}}), Vector({7.0}), CovFactor::identity(1));
  auto est = f.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR((*est)[0], 5.0, 1e-12);
  EXPECT_NEAR((*est)[1], 7.0, 1e-12);
}

TEST(IncrementalFilter, InformationFlowsThroughEvolutionOnly) {
  // Observe only the SECOND state; the first state's estimate becomes
  // available only through smoothing, not filtering.
  IncrementalFilter f(1);
  f.evolve(Matrix({{2.0}}), Vector(), CovFactor::scaled_identity(1, 1e-12));
  f.observe(Matrix({{1.0}}), Vector({6.0}), CovFactor::identity(1));
  auto est = f.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR((*est)[0], 6.0, 1e-6);
  SmootherResult sm = f.smooth(false);
  EXPECT_NEAR(sm.means[0][0], 3.0, 1e-5);  // 6 / F with F = 2
}

TEST(IncrementalFilter, DimensionChangeViaRectangularH) {
  Rng rng(920);
  IncrementalFilter f(2);
  f.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  // Grow 2 -> 3 with H selecting the first two components.
  Matrix h(2, 3);
  h(0, 0) = 1.0;
  h(1, 1) = 1.0;
  Matrix fmat = Matrix::identity(2);
  f.evolve_rect(3, h, fmat, Vector(), CovFactor::scaled_identity(2, 0.01));
  EXPECT_EQ(f.current_dim(), 3);
  EXPECT_FALSE(f.estimate().has_value());  // third component unobserved
  f.observe(Matrix({{0.0, 0.0, 1.0}}), Vector({9.0}), CovFactor::identity(1));
  auto est = f.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR((*est)[2], 9.0, 1e-9);
}

TEST(IncrementalFilter, MisuseThrows) {
  EXPECT_THROW(IncrementalFilter bad(0), std::invalid_argument);
  IncrementalFilter f(2);
  EXPECT_THROW(f.observe(Matrix({{1.0}}), Vector({1.0}), CovFactor::identity(1)),
               std::invalid_argument);
  EXPECT_THROW(f.evolve(Matrix({{1.0}}), Vector(), CovFactor::identity(1)),
               std::invalid_argument);
  EXPECT_THROW(f.evolve(Matrix::identity(2), Vector(), CovFactor::identity(3)),
               std::invalid_argument);
}

TEST(IncrementalFilter, ResmoothFromSpliceEqualsColdSmooth) {
  // The incremental splice must assemble bit-for-bit the factor a cold
  // smooth() builds, at every stream position and with any valid `step`.
  Rng rng(940);
  test::RandomProblemSpec spec;
  spec.k = 18;
  spec.n_min = spec.n_max = 3;
  spec.varying_dims = false;
  Problem p = test::random_problem(rng, spec);

  IncrementalFilter f(3);
  BidiagonalFactor cache;
  la::QrScratch qr;
  la::index have = 0;  // prefix blocks already spliced into `cache`
  for (index i = 0; i <= p.last_index(); ++i) {
    if (i > 0) f.evolve(p.step(i).evolution->F, p.step(i).evolution->c, p.step(i).evolution->noise);
    if (p.step(i).observation) {
      const Observation& ob = *p.step(i).observation;
      f.observe(ob.G, ob.o, ob.noise);
    }
    // Delta splice from the previous position...
    f.resmooth_from(have, cache, qr);
    have = f.finished_steps();
    // ...equals a from-scratch splice equals the factor smooth() solves.
    BidiagonalFactor fresh;
    la::QrScratch qr2;
    f.resmooth_from(0, fresh, qr2);
    ASSERT_EQ(cache.diag.size(), fresh.diag.size()) << "step " << i;
    for (std::size_t b = 0; b < fresh.diag.size(); ++b) {
      EXPECT_TRUE(cache.diag[b] == fresh.diag[b]) << "diag block " << b << " @ step " << i;
      EXPECT_TRUE(cache.sup[b] == fresh.sup[b]) << "sup block " << b << " @ step " << i;
      test::expect_near(cache.rhs[b].span(), fresh.rhs[b].span(), 0.0, "rhs block");
    }
    const SmootherResult cold = f.smooth(true);
    SmootherResult inc;
    paige_saunders_solve_into(cache, inc.means);
    selinv_bidiagonal_into(cache, inc.covariances);
    test::expect_means_near(inc.means, cold.means, 1e-12, "incremental vs cold means");
    test::expect_covs_near(inc.covariances, cold.covariances, 1e-12, "incremental vs cold covs");
  }
}

TEST(IncrementalFilter, DecayAmplificationTracksFinalizedBlocks) {
  // One bound per finalized block, equal to g_i * max(1, amp_{i-1}) with
  // g_i = ||R_ii^{-1} R_{i,i+1}||_F recomputed from the exposed factor; a
  // snapshot/restore round trip rebuilds the identical values; reset clears.
  Rng rng(945);
  test::RandomProblemSpec spec;
  spec.k = 16;
  spec.n_min = spec.n_max = 3;
  spec.obs_probability = 1.0;
  Problem p = test::random_problem(rng, spec);
  IncrementalFilter f = replay(p, p.last_index());

  const std::span<const double> amp = f.decay_amplification();
  ASSERT_EQ(static_cast<index>(amp.size()), f.finished_steps());

  BidiagonalFactor fac;
  la::QrScratch qr;
  f.resmooth_from(0, fac, qr);
  double prev = 1.0;
  for (index i = 0; i < f.finished_steps(); ++i) {
    Matrix w = fac.sup[static_cast<std::size_t>(i)];
    la::trsm_left(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit,
                  fac.diag[static_cast<std::size_t>(i)].view(), w.view());
    double ss = 0.0;
    for (index c = 0; c < w.cols(); ++c)
      for (index r = 0; r < w.rows(); ++r) ss += w(r, c) * w(r, c);
    const double expected = std::sqrt(ss) * std::max(1.0, prev);
    EXPECT_NEAR(amp[static_cast<std::size_t>(i)], expected,
                1e-12 * std::max(1.0, expected))
        << "block " << i;
    prev = expected;
  }

  FilterSnapshot snap;
  f.snapshot_state(snap);
  IncrementalFilter restored(3);
  restored.restore_state(snap);
  const std::span<const double> amp2 = restored.decay_amplification();
  ASSERT_EQ(amp2.size(), amp.size());
  for (std::size_t i = 0; i < amp.size(); ++i)
    EXPECT_EQ(amp2[i], amp[i]) << "restore must recompute identical bounds @" << i;

  f.reset(3);
  EXPECT_TRUE(f.decay_amplification().empty());
}

TEST(IncrementalFilter, ResmoothFromPrefixOnlyAppends) {
  // The documented contract behind prefix caching: finalized blocks never
  // mutate once written (observe() touches only the pending rows).
  Rng rng(941);
  test::CommonProblem cp = test::common_problem(rng, 3, 12);
  IncrementalFilter f(3);
  std::vector<Matrix> seen_diag;
  for (index i = 0; i <= cp.for_qr.last_index(); ++i) {
    if (i > 0) {
      const Evolution& e = *cp.for_qr.step(i).evolution;
      f.evolve(e.F, e.c, e.noise);
    }
    if (cp.for_qr.step(i).observation) {
      const Observation& ob = *cp.for_qr.step(i).observation;
      f.observe(ob.G, ob.o, ob.noise);
    }
    const BidiagonalFactor& pre = f.finished_prefix();
    ASSERT_EQ(f.finished_steps(), i);
    for (std::size_t b = 0; b < seen_diag.size(); ++b)
      EXPECT_TRUE(pre.diag[b] == seen_diag[b]) << "finalized block " << b << " mutated at " << i;
    if (f.finished_steps() > static_cast<index>(seen_diag.size()))
      seen_diag.push_back(pre.diag.back());
  }
}

TEST(IncrementalFilter, ResmoothFromResetEpochAndErrors) {
  IncrementalFilter f(2);
  EXPECT_EQ(f.reset_epoch(), 0u);
  f.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  f.evolve(Matrix::identity(2), Vector(), CovFactor::identity(2));
  f.observe(Matrix::identity(2), Vector({1.5, 2.5}), CovFactor::identity(2));

  BidiagonalFactor cache;
  la::QrScratch qr;
  // `step` beyond the finalized prefix, and a cache that claims a prefix it
  // does not hold, are both programming errors.
  EXPECT_THROW(f.resmooth_from(5, cache, qr), std::invalid_argument);
  EXPECT_THROW(f.resmooth_from(1, cache, qr), std::invalid_argument);
  f.resmooth_from(0, cache, qr);
  EXPECT_EQ(cache.diag.size(), 2u);

  f.reset(2);
  EXPECT_EQ(f.reset_epoch(), 1u);
  // Rank deficient after reset (no observations yet): same error as smooth().
  EXPECT_THROW(f.resmooth_from(0, cache, qr), std::runtime_error);
}

TEST(IncrementalFilter, FilteredCovarianceShrinksWithObservations) {
  Rng rng(930);
  IncrementalFilter f(2);
  f.observe(Matrix::identity(2), Vector({0.0, 0.0}), CovFactor::identity(2));
  const double var_before = (*f.covariance())(0, 0);
  f.observe(Matrix::identity(2), Vector({0.1, -0.1}), CovFactor::identity(2));
  const double var_after = (*f.covariance())(0, 0);
  EXPECT_LT(var_after, var_before);
  EXPECT_NEAR(var_after, 0.5, 1e-12);  // two unit-variance measurements
}

}  // namespace
}  // namespace pitk::kalman
