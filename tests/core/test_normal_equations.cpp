#include "core/normal_equations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/oddeven.hpp"
#include "kalman/dense_reference.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;
using la::Vector;

TEST(NormalEquations, AssemblyMatchesDenseGram) {
  Rng rng(950);
  test::RandomProblemSpec spec;
  spec.k = 9;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  spec.obs_probability = 0.7;
  Problem p = test::random_problem(rng, spec);

  par::ThreadPool pool(2);
  BlockTridiagonal sys = assemble_normal_equations(p, pool, 2);

  DenseSystem dense = build_dense_system(p);
  Matrix ata = la::multiply(dense.A.view(), Trans::Yes, dense.A.view(), Trans::No);
  Vector atb(dense.A.cols());
  la::gemv(1.0, dense.A.view(), Trans::Yes, dense.b.span(), 0.0, atb.span());

  for (index i = 0; i <= p.last_index(); ++i) {
    const index off = dense.col_off[static_cast<std::size_t>(i)];
    const index n = p.state_dim(i);
    test::expect_near(sys.T[static_cast<std::size_t>(i)].view(), ata.view().block(off, off, n, n),
                      1e-10, "T_" + std::to_string(i));
    if (i < p.last_index()) {
      const index off2 = dense.col_off[static_cast<std::size_t>(i + 1)];
      test::expect_near(sys.U[static_cast<std::size_t>(i)].view(),
                        ata.view().block(off, off2, n, p.state_dim(i + 1)), 1e-10,
                        "U_" + std::to_string(i));
    }
    for (index q = 0; q < n; ++q)
      EXPECT_NEAR(sys.g[static_cast<std::size_t>(i)][q], atb[off + q], 1e-10);
  }
}

class NormalCyclicChainTest : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(NormalCyclicChainTest, MatchesDenseForEveryChainLength) {
  auto [k, threads] = GetParam();
  par::ThreadPool pool(threads);
  Rng rng(960 + k);
  test::RandomProblemSpec spec;
  spec.k = k;
  spec.n_min = spec.n_max = 2;
  spec.obs_probability = 0.8;
  Problem p = test::random_problem(rng, spec);
  std::vector<Vector> got = normal_cyclic_smooth(p, pool, {.grain = 2});
  SmootherResult ref = dense_smooth(p, false);
  test::expect_means_near(got, ref.means, 1e-6, "k=" + std::to_string(k));
}

INSTANTIATE_TEST_SUITE_P(AllShortChains, NormalCyclicChainTest,
                         ::testing::Combine(::testing::Range(0, 18), ::testing::Values(1u, 4u)));

TEST(NormalEquations, ThomasMatchesCyclic) {
  Rng rng(970);
  test::RandomProblemSpec spec;
  spec.k = 40;
  spec.n_min = spec.n_max = 3;
  spec.obs_probability = 0.6;
  spec.dense_covariances = true;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);
  std::vector<Vector> cyclic = normal_cyclic_smooth(p, pool, {});
  std::vector<Vector> thomas = normal_thomas_smooth(p);
  for (std::size_t i = 0; i < cyclic.size(); ++i)
    test::expect_near(cyclic[i].span(), thomas[i].span(), 1e-7, "state " + std::to_string(i));
}

TEST(NormalEquations, VaryingDimsAndRectangularH) {
  Rng rng(980);
  test::RandomProblemSpec spec;
  spec.k = 13;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(2);
  std::vector<Vector> got = normal_cyclic_smooth(p, pool, {});
  SmootherResult ref = dense_smooth(p, false);
  test::expect_means_near(got, ref.means, 1e-6);
}

/// The paper's Section-6 stability claim, measured.  Note the metric:
/// cyclic reduction is backward stable *for the normal equations*, so its
/// A^T A-residual looks healthy — the damage appears in the FORWARD error,
/// which grows like eps * cond(A)^2 versus eps * cond(A) for the QR route.
/// Disparate observation accuracies (variances spanning many decades) make
/// cond(A) genuinely large.
TEST(NormalEquations, InstabilityRelativeToQr) {
  Rng rng(990);
  par::ThreadPool pool(2);

  // Läuchli-style observations: a very precise measurement of u_1 + u_2
  // stacked with an ordinary measurement of u_1.  The weighted rows are
  // nearly collinear at scale w = 1/delta, so cond(A) ~ w while forming
  // A^T A cancels the O(1) information against w^2 terms: the classic
  // situation where the normal equations lose twice the digits.
  const double delta2 = 1e-14;  // variance of the precise row; weight 1e7
  const index n = 2;
  const index k = 24;
  const Matrix f = la::random_orthonormal(rng, n);
  std::vector<TimeStep> steps(static_cast<std::size_t>(k + 1));
  for (index i = 0; i <= k; ++i) {
    TimeStep& s = steps[static_cast<std::size_t>(i)];
    s.n = n;
    if (i > 0) {
      Evolution e;
      e.F = f;
      e.noise = CovFactor::identity(n);
      s.evolution = std::move(e);
    }
    Observation ob;
    ob.G = Matrix({{1.0, 1.0}, {1.0, 0.0}});
    ob.o = la::random_gaussian_vector(rng, n);
    ob.noise = CovFactor::diagonal(Vector({delta2, 1.0}));
    s.observation = std::move(ob);
  }
  Problem p = Problem::from_steps(std::move(steps));

  SmootherResult ref = dense_smooth(p, false);  // dense Householder QR oracle
  SmootherResult qr = oddeven_smooth(p, pool, {.compute_covariance = false});
  std::vector<Vector> ne = normal_cyclic_smooth(p, pool, {});

  auto forward_error = [&](const std::vector<Vector>& means) {
    double err = 0.0;
    double scale = 0.0;
    for (std::size_t i = 0; i < means.size(); ++i) {
      err = std::max(err, la::max_abs_diff(means[i].span(), ref.means[i].span()));
      scale = std::max(scale, la::norm_max(ref.means[i].span()));
    }
    return err / (1.0 + scale);
  };

  const double err_qr = forward_error(qr.means);
  const double err_ne = forward_error(ne);
  EXPECT_LE(err_qr, 1e-7) << "QR route must stay near eps * cond(A)";
  EXPECT_GT(err_ne, 100.0 * err_qr)
      << "normal equations should lose ~cond(A) extra digits (err_qr=" << err_qr
      << ", err_ne=" << err_ne << ")";
}

TEST(NormalEquations, RejectsInvalidProblem) {
  Problem p;
  p.start(2);
  par::ThreadPool pool(1);
  EXPECT_THROW((void)normal_cyclic_smooth(p, pool, {}), std::invalid_argument);
}

}  // namespace
}  // namespace pitk::kalman
