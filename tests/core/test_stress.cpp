#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/associative.hpp"
#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "kalman/dense_reference.hpp"
#include "kalman/rts.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

TEST(Stress, LongChainWithCovariancesMultiThread) {
  // k = 4999 with covariances: exercises deep recursion (13 levels), the
  // covariance cross-block lookups at every level, and the parallel runtime
  // under sustained load.  Spot-check against sequential SelInv.
  Rng rng(2000);
  Problem p = make_paper_benchmark(rng, 4, 4999);
  par::ThreadPool pool(4);
  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = true, .grain = 10});
  SmootherResult ps = paige_saunders_smooth(p, {});
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2499}, std::size_t{4998},
                        std::size_t{4999}}) {
    test::expect_near(oe.means[i].span(), ps.means[i].span(), 1e-8,
                      "mean " + std::to_string(i));
    test::expect_near(oe.covariances[i].view(), ps.covariances[i].view(), 1e-8,
                      "cov " + std::to_string(i));
  }
}

TEST(Stress, ConcurrentSmoothersShareOnePool) {
  // Several externally-launched threads driving independent smoothers
  // through the same pool: exercises helping joins and external submitters.
  Rng rng(2010);
  std::vector<Problem> problems;
  for (int t = 0; t < 4; ++t) problems.push_back(make_paper_benchmark(rng, 3, 400));
  par::ThreadPool pool(4);
  std::vector<SmootherResult> results(4);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          oddeven_smooth(problems[static_cast<std::size_t>(t)], pool, {.grain = 5});
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    SmootherResult ref = paige_saunders_smooth(problems[static_cast<std::size_t>(t)], {});
    test::expect_means_near(results[static_cast<std::size_t>(t)].means, ref.means, 1e-8,
                            "thread " + std::to_string(t));
  }
}

TEST(Stress, RepeatedSmoothingIsDeterministic) {
  Rng rng(2020);
  Problem p = make_paper_benchmark(rng, 5, 333);
  par::ThreadPool pool(4);
  SmootherResult first = oddeven_smooth(p, pool, {});
  for (int rep = 0; rep < 5; ++rep) {
    SmootherResult again = oddeven_smooth(p, pool, {});
    test::expect_means_near(again.means, first.means, 0.0, "rep " + std::to_string(rep));
    test::expect_covs_near(again.covariances, first.covariances, 0.0,
                           "rep " + std::to_string(rep));
  }
}

TEST(FailureInjection, NanObservationPropagatesWithoutCrashing) {
  // Garbage in, garbage out — but never a hang, crash, or silent wrong
  // answer masquerading as clean data.
  Rng rng(2030);
  Problem p = make_paper_benchmark(rng, 3, 50);
  p.step(25).observation->o[1] = std::numeric_limits<double>::quiet_NaN();
  par::ThreadPool pool(2);
  SmootherResult res = oddeven_smooth(p, pool, {.compute_covariance = false});
  bool any_nan = false;
  for (const Vector& m : res.means)
    for (index q = 0; q < m.size(); ++q) any_nan = any_nan || std::isnan(m[q]);
  EXPECT_TRUE(any_nan) << "a NaN observation must not silently disappear";
}

TEST(FailureInjection, SingularEvolutionStillSolvesWhenObserved) {
  // F = 0 destroys all dynamic information; direct observations must still
  // determine every state.
  par::ThreadPool pool(2);
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  for (int i = 0; i < 6; ++i) {
    p.evolve(Matrix(2, 2), Vector(), CovFactor::identity(2));  // F = 0
    p.observe(Matrix::identity(2), Vector({1.0 + i, 2.0}), CovFactor::identity(2));
  }
  SmootherResult oe = oddeven_smooth(p, pool, {});
  SmootherResult ref = dense_smooth(p, true);
  test::expect_means_near(oe.means, ref.means, 1e-9);
  test::expect_covs_near(oe.covariances, ref.covariances, 1e-9);
}

TEST(FailureInjection, HugeDynamicRangeObservations) {
  // Observation magnitudes spanning 12 decades: QR handles the scaling.
  par::ThreadPool pool(2);
  Rng rng(2040);
  Problem p;
  p.start(1);
  p.observe(Matrix({{1.0}}), Vector({1e-6}), CovFactor::scaled_identity(1, 1e-12));
  for (int i = 0; i < 10; ++i) {
    p.evolve(Matrix({{1.0}}), Vector(), CovFactor::scaled_identity(1, 1e6));
    p.observe(Matrix({{1.0}}), Vector({1e6}), CovFactor::scaled_identity(1, 1e12));
  }
  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false});
  SmootherResult ref = dense_smooth(p, false);
  for (std::size_t i = 0; i < oe.means.size(); ++i) {
    const double scale = std::max(1.0, std::abs(ref.means[i][0]));
    EXPECT_LE(std::abs(oe.means[i][0] - ref.means[i][0]) / scale, 1e-9) << i;
  }
}

TEST(Stress, ManySmallProblemsBackToBack) {
  // Churn: 200 independent small problems through one pool (allocator and
  // scheduler lifecycle coverage).
  Rng rng(2050);
  par::ThreadPool pool(4);
  for (int rep = 0; rep < 200; ++rep) {
    test::RandomProblemSpec spec;
    spec.k = 3 + (rep % 7);
    spec.n_min = spec.n_max = 1 + (rep % 3);
    Problem p = test::random_problem(rng, spec);
    SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = rep % 2 == 0});
    ASSERT_EQ(oe.means.size(), static_cast<std::size_t>(spec.k + 1));
    for (const Vector& m : oe.means) ASSERT_TRUE(std::isfinite(m[0]));
  }
}

TEST(Stress, AssociativeLongChain) {
  Rng rng(2060);
  test::CommonProblem cp = test::common_problem(rng, 3, 2000);
  par::ThreadPool pool(4);
  SmootherResult assoc = associative_smooth(cp.for_conventional, cp.prior, pool, {.grain = 16});
  SmootherResult rts = rts_smooth(cp.for_conventional, cp.prior);
  for (std::size_t i : {std::size_t{0}, std::size_t{999}, std::size_t{2000}}) {
    test::expect_near(assoc.means[i].span(), rts.means[i].span(), 1e-6,
                      "state " + std::to_string(i));
  }
}

}  // namespace
}  // namespace pitk::kalman
