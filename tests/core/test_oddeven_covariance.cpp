#include <gtest/gtest.h>

#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "core/selinv.hpp"
#include "kalman/dense_reference.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;

/// Algorithm 2 must match the dense (R^T R)^{-1} diagonal blocks for every
/// chain length (parity edge cases live in short chains).
class OddEvenCovChainTest : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(OddEvenCovChainTest, MatchesDenseInverse) {
  auto [k, threads] = GetParam();
  par::ThreadPool pool(threads);
  Rng rng(400 + k);
  test::RandomProblemSpec spec;
  spec.k = k;
  spec.n_min = spec.n_max = 2;
  spec.obs_probability = 0.75;
  Problem p = test::random_problem(rng, spec);
  SmootherResult got = oddeven_smooth(p, pool, {.compute_covariance = true, .grain = 2});
  SmootherResult ref = dense_smooth(p, true);
  test::expect_covs_near(got.covariances, ref.covariances, 1e-7, "k=" + std::to_string(k));
}

INSTANTIATE_TEST_SUITE_P(AllShortChains, OddEvenCovChainTest,
                         ::testing::Combine(::testing::Range(0, 20), ::testing::Values(1u, 4u)));

TEST(OddEvenCovariance, AgreesWithSequentialSelInv) {
  // Algorithm 2 (parallel, odd-even R) and Algorithm 1 (sequential,
  // bidiagonal R) factor different matrices but must produce identical
  // covariances: both equal diag blocks of (A^T U^T U A)^{-1}.
  Rng rng(405);
  test::RandomProblemSpec spec;
  spec.k = 29;
  spec.n_min = spec.n_max = 3;
  spec.obs_probability = 0.6;
  spec.dense_covariances = true;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);

  std::vector<Matrix> alg2 = oddeven_covariances(oddeven_factor(p, pool, 4), pool, 4);
  std::vector<Matrix> alg1 = selinv_bidiagonal(paige_saunders_factor(p));
  test::expect_covs_near(alg2, alg1, 1e-8, "Alg2 vs Alg1");
}

TEST(OddEvenCovariance, VaryingDimsAndRectangularH) {
  Rng rng(407);
  test::RandomProblemSpec spec;
  spec.k = 15;
  spec.n_min = 2;
  spec.n_max = 4;
  spec.varying_dims = true;
  spec.rectangular_h = true;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);
  SmootherResult got = oddeven_smooth(p, pool, {});
  SmootherResult ref = dense_smooth(p, true);
  test::expect_covs_near(got.covariances, ref.covariances, 1e-7);
}

TEST(OddEvenCovariance, SymmetricPositiveDefinite) {
  Rng rng(409);
  test::RandomProblemSpec spec;
  spec.k = 40;
  spec.n_min = spec.n_max = 3;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);
  std::vector<Matrix> covs = oddeven_covariances(oddeven_factor(p, pool, 4), pool, 4);
  for (const Matrix& c : covs) {
    for (index j = 0; j < c.cols(); ++j)
      for (index i = 0; i < c.rows(); ++i) EXPECT_EQ(c(i, j), c(j, i));
    Matrix l = c;
    EXPECT_TRUE(la::cholesky_lower(l.view()));
  }
}

TEST(OddEvenCovariance, NcVariantSkipsCovariancePhase) {
  Rng rng(411);
  test::RandomProblemSpec spec;
  spec.k = 12;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(2);
  SmootherResult nc = oddeven_smooth(p, pool, {.compute_covariance = false});
  EXPECT_FALSE(nc.has_covariances());
  EXPECT_EQ(nc.means.size(), 13u);
}

TEST(OddEvenCovariance, LargeProblemSpotCheck) {
  // k = 500: verify a handful of states against the sequential SelInv
  // (dense reference would be 1000x1000 — still fine, but unnecessary).
  Rng rng(413);
  test::RandomProblemSpec spec;
  spec.k = 500;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  par::ThreadPool pool(4);
  std::vector<Matrix> alg2 = oddeven_covariances(oddeven_factor(p, pool, 10), pool, 10);
  std::vector<Matrix> alg1 = selinv_bidiagonal(paige_saunders_factor(p));
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{249}, std::size_t{499},
                        std::size_t{500}}) {
    test::expect_near(alg2[i].view(), alg1[i].view(), 1e-8, "state " + std::to_string(i));
  }
}

}  // namespace
}  // namespace pitk::kalman
