#include <gtest/gtest.h>

#include "core/oddeven.hpp"
#include "core/paige_saunders.hpp"
#include "kalman/dense_reference.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;
using la::Vector;

/// Flatten a per-state solution into one long vector.
Vector flatten(const Problem& p, const std::vector<Vector>& means) {
  Vector x(p.total_state_dim());
  index off = 0;
  for (const Vector& m : means) {
    for (index q = 0; q < m.size(); ++q) x[off + q] = m[q];
    off += m.size();
  }
  return x;
}

/// Normal-equations residual: || A^T (A x - b) || / (||A||_F^2 ||x||).
double stationarity_residual(const Problem& p, const std::vector<Vector>& means) {
  DenseSystem sys = build_dense_system(p);
  Vector x = flatten(p, means);
  Vector r(sys.A.rows());
  la::gemv(1.0, sys.A.view(), Trans::No, x.span(), 0.0, r.span());
  la::axpy(-1.0, sys.b.span(), r.span());
  Vector atr(sys.A.cols());
  la::gemv(1.0, sys.A.view(), Trans::Yes, r.span(), 0.0, atr.span());
  const double scale = la::norm_fro(sys.A.view());
  return la::norm2(atr.span()) / (scale * scale * (1.0 + la::norm2(x.span())));
}

/// Property: the smoothed trajectory is the exact least-squares minimizer
/// (residual orthogonal to the column space), for many random seeds.
class StationarityProperty : public ::testing::TestWithParam<int> {};

TEST_P(StationarityProperty, OddEvenSolutionIsStationary) {
  Rng rng(1000 + GetParam());
  par::ThreadPool pool(4);
  test::RandomProblemSpec spec;
  spec.k = 5 + static_cast<index>(rng.below(40));
  spec.n_min = 1 + static_cast<index>(rng.below(3));
  spec.n_max = spec.n_min + static_cast<index>(rng.below(3));
  spec.varying_dims = rng.uniform() < 0.5;
  spec.rectangular_h = rng.uniform() < 0.3;
  spec.obs_probability = 0.4 + 0.6 * rng.uniform();
  spec.dense_covariances = rng.uniform() < 0.5;
  Problem p = test::random_problem(rng, spec);

  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false, .grain = 3});
  EXPECT_LE(stationarity_residual(p, oe.means), 1e-10)
      << "seed " << GetParam() << " k=" << spec.k;

  SmootherResult ps = paige_saunders_smooth(p, {.compute_covariance = false});
  EXPECT_LE(stationarity_residual(p, ps.means), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StationarityProperty, ::testing::Range(0, 12));

/// Property: covariance shrinks (in the PSD order) when an observation is
/// added — checked on the diagonal.
TEST(Properties, AddingObservationsShrinksCovariance) {
  Rng rng(1100);
  par::ThreadPool pool(2);
  test::RandomProblemSpec spec;
  spec.k = 10;
  spec.n_min = spec.n_max = 3;
  spec.obs_probability = 0.5;
  Problem p = test::random_problem(rng, spec);

  SmootherResult before = oddeven_smooth(p, pool, {});

  // Add one more observation to an unobserved middle step.
  for (index i = 1; i <= p.last_index(); ++i) {
    if (p.step(i).observation) continue;
    Observation ob;
    ob.G = la::random_gaussian(rng, 1, p.state_dim(i));
    ob.o = Vector({0.0});
    ob.noise = CovFactor::identity(1);
    p.step(i).observation = std::move(ob);
    break;
  }
  SmootherResult after = oddeven_smooth(p, pool, {});
  for (std::size_t i = 0; i < before.covariances.size(); ++i)
    for (index q = 0; q < before.covariances[i].rows(); ++q)
      EXPECT_LE(after.covariances[i](q, q), before.covariances[i](q, q) + 1e-10);
}

/// Property: scaling all noise covariances by s scales the solution not at
/// all and the covariances by exactly s.
TEST(Properties, CovarianceScalingEquivariance) {
  Rng rng(1200);
  par::ThreadPool pool(2);
  const double s = 4.0;

  test::RandomProblemSpec spec;
  spec.k = 8;
  spec.n_min = spec.n_max = 2;
  Problem p1 = test::random_problem(rng, spec);
  Problem p2 = p1;
  for (index i = 0; i <= p2.last_index(); ++i) {
    if (p2.step(i).evolution)
      p2.step(i).evolution->noise = CovFactor::scaled_identity(p2.step(i).evo_rows(), s);
    if (p2.step(i).observation)
      p2.step(i).observation->noise = CovFactor::scaled_identity(p2.step(i).obs_rows(), s);
  }
  // p1 uses identity everywhere already (default spec), so p2 = s * cov(p1).
  SmootherResult r1 = oddeven_smooth(p1, pool, {});
  SmootherResult r2 = oddeven_smooth(p2, pool, {});
  test::expect_means_near(r1.means, r2.means, 1e-9, "means invariant under rescaling");
  for (std::size_t i = 0; i < r1.covariances.size(); ++i) {
    Matrix scaled = r1.covariances[i];
    la::scale(s, scaled.view());
    test::expect_near(scaled.view(), r2.covariances[i].view(), 1e-9, "cov scales by s");
  }
}

/// Property: conditional backward stability — with well-conditioned input
/// covariances, the stationarity residual stays tiny even for long chains
/// and moderately ill-conditioned dense covariance inputs.
TEST(Properties, StationarityUnderIllConditionedCovariances) {
  Rng rng(1300);
  par::ThreadPool pool(4);
  test::RandomProblemSpec spec;
  spec.k = 64;
  spec.n_min = spec.n_max = 3;
  spec.dense_covariances = true;
  spec.covariance_condition = 1e6;
  Problem p = test::random_problem(rng, spec);
  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false});
  EXPECT_LE(stationarity_residual(p, oe.means), 1e-7);
}

/// Property: the objective value at the smoothed solution never exceeds the
/// objective at any perturbed trajectory (local minimality spot check).
TEST(Properties, PerturbationsNeverImproveObjective) {
  Rng rng(1400);
  par::ThreadPool pool(2);
  test::RandomProblemSpec spec;
  spec.k = 6;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  SmootherResult oe = oddeven_smooth(p, pool, {.compute_covariance = false});

  DenseSystem sys = build_dense_system(p);
  auto objective = [&](const Vector& x) {
    Vector r(sys.A.rows());
    la::gemv(1.0, sys.A.view(), Trans::No, x.span(), 0.0, r.span());
    la::axpy(-1.0, sys.b.span(), r.span());
    return la::dot(r.span(), r.span());
  };
  Vector xstar = flatten(p, oe.means);
  const double fstar = objective(xstar);
  for (int trial = 0; trial < 20; ++trial) {
    Vector x = xstar;
    for (index q = 0; q < x.size(); ++q) x[q] += 0.01 * rng.gaussian();
    EXPECT_GE(objective(x), fstar - 1e-12);
  }
}

/// Property: duplicating an observation halves its effective variance —
/// equivalent to a single observation with variance 1/2.
TEST(Properties, StackedObservationsEquivalence) {
  par::ThreadPool pool(2);
  auto build = [&](bool duplicated) {
    Problem p;
    p.start(1);
    if (duplicated) {
      p.observe(Matrix({{1.0}, {1.0}}), Vector({2.0, 2.0}), CovFactor::identity(2));
    } else {
      p.observe(Matrix({{1.0}}), Vector({2.0}), CovFactor::scaled_identity(1, 0.5));
    }
    p.evolve(Matrix({{1.0}}), Vector(), CovFactor::identity(1));
    p.observe(Matrix({{1.0}}), Vector({3.0}), CovFactor::identity(1));
    return oddeven_smooth(p, pool, {});
  };
  SmootherResult a = build(true);
  SmootherResult b = build(false);
  test::expect_means_near(a.means, b.means, 1e-12);
  test::expect_covs_near(a.covariances, b.covariances, 1e-12);
}

}  // namespace
}  // namespace pitk::kalman
