#include "core/paige_saunders.hpp"

#include <gtest/gtest.h>

#include "kalman/dense_reference.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;
using la::Vector;

struct PsCase {
  const char* name;
  test::RandomProblemSpec spec;
};

class PaigeSaundersTest : public ::testing::TestWithParam<PsCase> {};

TEST_P(PaigeSaundersTest, MeansMatchDenseReference) {
  Rng rng(71);
  for (int rep = 0; rep < 3; ++rep) {
    Problem p = test::random_problem(rng, GetParam().spec);
    SmootherResult got = paige_saunders_smooth(p, {.compute_covariance = false});
    SmootherResult ref = dense_smooth(p, false);
    test::expect_means_near(got.means, ref.means, 1e-8,
                            std::string(GetParam().name) + " rep " + std::to_string(rep));
  }
}

TEST_P(PaigeSaundersTest, CovariancesMatchDenseReference) {
  Rng rng(73);
  Problem p = test::random_problem(rng, GetParam().spec);
  SmootherResult got = paige_saunders_smooth(p, {.compute_covariance = true});
  SmootherResult ref = dense_smooth(p, true);
  test::expect_covs_near(got.covariances, ref.covariances, 1e-7, GetParam().name);
}

PsCase ps_cases[] = {
    {"plain", {.k = 12, .n_min = 3, .n_max = 3}},
    {"tiny_k1", {.k = 1, .n_min = 2, .n_max = 2}},
    {"k2", {.k = 2, .n_min = 3, .n_max = 3}},
    {"missing_obs", {.k = 15, .n_min = 2, .n_max = 2, .obs_probability = 0.4}},
    {"varying_dims", {.k = 10, .n_min = 2, .n_max = 4, .varying_dims = true}},
    {"rect_h", {.k = 8, .n_min = 3, .n_max = 3, .rectangular_h = true}},
    {"dense_cov", {.k = 9, .n_min = 3, .n_max = 3, .dense_covariances = true}},
    {"diag_cov", {.k = 9, .n_min = 3, .n_max = 3, .diagonal_covariances = true}},
    {"everything",
     {.k = 14,
      .n_min = 2,
      .n_max = 4,
      .varying_dims = true,
      .rectangular_h = true,
      .obs_probability = 0.5,
      .dense_covariances = true}},
};

INSTANTIATE_TEST_SUITE_P(Shapes, PaigeSaundersTest, ::testing::ValuesIn(ps_cases),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(PaigeSaunders, FactorIsBlockBidiagonalAndTriangular) {
  Rng rng(79);
  test::RandomProblemSpec spec;
  spec.k = 6;
  spec.n_min = spec.n_max = 3;
  Problem p = test::random_problem(rng, spec);
  BidiagonalFactor f = paige_saunders_factor(p);
  ASSERT_EQ(f.diag.size(), 7u);
  for (index i = 0; i <= 6; ++i) {
    const Matrix& r = f.diag[static_cast<std::size_t>(i)];
    ASSERT_EQ(r.rows(), 3);
    ASSERT_EQ(r.cols(), 3);
    for (index jc = 0; jc < 3; ++jc)
      for (index ir = jc + 1; ir < 3; ++ir) EXPECT_EQ(r(ir, jc), 0.0);
    if (i < 6) EXPECT_EQ(f.sup[static_cast<std::size_t>(i)].cols(), 3);
  }
  EXPECT_TRUE(f.sup[6].empty());
}

TEST(PaigeSaunders, RFactorGramMatchesNormalEquations) {
  // The block-bidiagonal R satisfies R^T R == A^T A (same Cholesky factor up
  // to signs), restricted to the block tri-diagonal structure.
  Rng rng(83);
  test::RandomProblemSpec spec;
  spec.k = 5;
  spec.n_min = spec.n_max = 2;
  Problem p = test::random_problem(rng, spec);
  BidiagonalFactor f = paige_saunders_factor(p);
  DenseSystem sys = build_dense_system(p);
  Matrix ata = la::multiply(sys.A.view(), Trans::Yes, sys.A.view(), Trans::No);

  // Assemble R^T R densely from the blocks.
  const index total = p.total_state_dim();
  Matrix rfull(total, total);
  index off = 0;
  for (index i = 0; i <= 5; ++i) {
    const index n = p.state_dim(i);
    rfull.block(off, off, n, n).assign(f.diag[static_cast<std::size_t>(i)].view());
    if (i < 5)
      rfull.block(off, off + n, n, p.state_dim(i + 1))
          .assign(f.sup[static_cast<std::size_t>(i)].view());
    off += n;
  }
  Matrix rtr = la::multiply(rfull.view(), Trans::Yes, rfull.view(), Trans::No);
  test::expect_near(rtr.view(), ata.view(), 1e-9, "R^T R vs A^T A");
}

TEST(PaigeSaunders, SingleStateProblem) {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({3.0, -1.0}), CovFactor::identity(2));
  SmootherResult res = paige_saunders_smooth(p);
  EXPECT_NEAR(res.means[0][0], 3.0, 1e-12);
  EXPECT_NEAR(res.means[0][1], -1.0, 1e-12);
  test::expect_near(res.covariances[0].view(), Matrix::identity(2).view(), 1e-12);
}

TEST(PaigeSaunders, NoPriorUnknownInitialState) {
  // Initial state entirely unobserved: only reachable through the evolution
  // and a later observation — conventional smoothers cannot pose this.
  Problem p;
  p.start(2);
  Matrix f({{1.0, 0.1}, {0.0, 1.0}});
  p.evolve(f, Vector(), CovFactor::scaled_identity(2, 1e-8));
  p.observe(Matrix::identity(2), Vector({1.0, 2.0}), CovFactor::identity(2));
  SmootherResult res = paige_saunders_smooth(p, {.compute_covariance = false});
  // u_1 == observation; u_0 == F^{-1} u_1 (noise-free evolution).
  EXPECT_NEAR(res.means[1][0], 1.0, 1e-6);
  EXPECT_NEAR(res.means[1][1], 2.0, 1e-6);
  EXPECT_NEAR(res.means[0][1], 2.0, 1e-6);
  EXPECT_NEAR(res.means[0][0], 1.0 - 0.1 * 2.0, 1e-6);
}

TEST(PaigeSaunders, RejectsInvalidProblem) {
  Problem p;
  p.start(3);
  EXPECT_THROW((void)paige_saunders_smooth(p), std::invalid_argument);
}

}  // namespace
}  // namespace pitk::kalman
