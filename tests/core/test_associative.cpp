#include "core/associative.hpp"

#include <gtest/gtest.h>

#include "kalman/dense_reference.hpp"
#include "kalman/rts.hpp"
#include "kalman/simulate.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Vector;

class AssociativeChainTest : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(AssociativeChainTest, MatchesRtsForEveryChainLength) {
  auto [k, threads] = GetParam();
  Rng rng(500 + k);
  par::ThreadPool pool(threads);
  test::CommonProblem cp = test::common_problem(rng, 2, k);
  SmootherResult assoc = associative_smooth(cp.for_conventional, cp.prior, pool, {.grain = 2});
  SmootherResult rts = rts_smooth(cp.for_conventional, cp.prior);
  test::expect_means_near(assoc.means, rts.means, 1e-7, "k=" + std::to_string(k));
  test::expect_covs_near(assoc.covariances, rts.covariances, 1e-7, "k=" + std::to_string(k));
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, AssociativeChainTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 9, 16, 33),
                                            ::testing::Values(1u, 4u)));

TEST(Associative, FilterMatchesSequentialKalmanFilter) {
  Rng rng(520);
  par::ThreadPool pool(4);
  test::CommonProblem cp = test::common_problem(rng, 3, 25);
  FilterResult par_filt = associative_filter(cp.for_conventional, cp.prior, pool, {.grain = 3});
  FilterResult seq_filt = kalman_filter(cp.for_conventional, cp.prior);
  test::expect_means_near(par_filt.means, seq_filt.means, 1e-8);
  test::expect_covs_near(par_filt.covariances, seq_filt.covariances, 1e-8);
}

TEST(Associative, MatchesDenseReferenceWithDenseCovariances) {
  Rng rng(530);
  par::ThreadPool pool(2);
  test::CommonProblem cp = test::common_problem(rng, 3, 14, /*dense_cov=*/true);
  SmootherResult assoc = associative_smooth(cp.for_conventional, cp.prior, pool, {});
  SmootherResult ref = dense_smooth(cp.for_qr, true);
  test::expect_means_near(assoc.means, ref.means, 1e-7);
  test::expect_covs_near(assoc.covariances, ref.covariances, 1e-7);
}

TEST(Associative, HandlesUnobservedSteps) {
  Rng rng(540);
  par::ThreadPool pool(4);
  SimSpec spec = constant_velocity_spec(1, 40, 0.1, 0.05, 0.3, Vector({0.0, 1.0}));
  auto base_g = spec.G;
  spec.G = [base_g](index i) { return i % 4 == 0 ? base_g(i) : Matrix(); };
  Simulation sim = simulate(rng, spec);
  GaussianPrior prior;
  prior.mean = Vector({0.0, 1.0});
  prior.cov = Matrix::identity(2);
  SmootherResult assoc = associative_smooth(sim.problem, prior, pool, {});
  SmootherResult rts = rts_smooth(sim.problem, prior);
  test::expect_means_near(assoc.means, rts.means, 1e-7);
  test::expect_covs_near(assoc.covariances, rts.covariances, 1e-7);
}

TEST(Associative, UnobservedFirstStep) {
  Rng rng(550);
  test::CommonProblem cp = test::common_problem(rng, 2, 10);
  // common_problem already strips the step-0 observation; double-check.
  ASSERT_FALSE(cp.for_conventional.step(0).observation.has_value());
  par::ThreadPool pool(2);
  SmootherResult assoc = associative_smooth(cp.for_conventional, cp.prior, pool, {});
  SmootherResult rts = rts_smooth(cp.for_conventional, cp.prior);
  test::expect_means_near(assoc.means, rts.means, 1e-7);
}

TEST(Associative, DeterministicAcrossThreadsAndGrain) {
  Rng rng(560);
  test::CommonProblem cp = test::common_problem(rng, 2, 30);
  par::ThreadPool p1(1);
  par::ThreadPool p4(4);
  SmootherResult a = associative_smooth(cp.for_conventional, cp.prior, p1, {.grain = 7});
  SmootherResult b = associative_smooth(cp.for_conventional, cp.prior, p4, {.grain = 3});
  // Different grains change the association tree, so results agree only to
  // rounding  - but must be deterministic for equal configuration.
  test::expect_means_near(a.means, b.means, 1e-9);
  SmootherResult c = associative_smooth(cp.for_conventional, cp.prior, p4, {.grain = 3});
  test::expect_means_near(b.means, c.means, 0.0, "exact determinism");
}

TEST(Associative, RejectsRectangularH) {
  Problem p;
  p.start(2);
  p.observe(Matrix::identity(2), Vector({0.0, 0.0}), CovFactor::identity(2));
  Matrix h(3, 2);
  h(0, 0) = 1.0;
  h(1, 1) = 1.0;
  h(2, 0) = 1.0;
  p.evolve_rect(2, h, Matrix(3, 2), Vector(), CovFactor::identity(3));
  p.observe(Matrix::identity(2), Vector({0.0, 0.0}), CovFactor::identity(2));
  GaussianPrior prior;
  prior.mean = Vector({0.0, 0.0});
  prior.cov = Matrix::identity(2);
  par::ThreadPool pool(2);
  EXPECT_THROW((void)associative_smooth(p, prior, pool, {}), std::invalid_argument);
}

TEST(Associative, AlwaysProducesCovariances) {
  Rng rng(570);
  test::CommonProblem cp = test::common_problem(rng, 2, 8);
  par::ThreadPool pool(2);
  SmootherResult res = associative_smooth(cp.for_conventional, cp.prior, pool, {});
  EXPECT_TRUE(res.has_covariances());
  EXPECT_EQ(res.covariances.size(), res.means.size());
}

}  // namespace
}  // namespace pitk::kalman
