#include "core/selinv.hpp"

#include <gtest/gtest.h>

#include "la/cholesky.hpp"

#include "kalman/dense_reference.hpp"
#include "la/blas.hpp"
#include "la/triangular.hpp"
#include "test_util.hpp"

namespace pitk::kalman {
namespace {

using la::index;
using la::Matrix;
using la::Rng;
using la::Trans;

TEST(TriInvGram, MatchesExplicitInverse) {
  Rng rng(89);
  for (index n : {1, 2, 5}) {
    Matrix r(n, n);
    for (index j = 0; j < n; ++j) {
      for (index i = 0; i < j; ++i) r(i, j) = rng.gaussian() * 0.3;
      r(j, j) = 1.5 + rng.uniform();
    }
    Matrix s = tri_inv_gram(r.view());
    // s must satisfy (R^T R) s == I.
    Matrix rtr = la::multiply(r.view(), Trans::Yes, r.view(), Trans::No);
    Matrix prod = la::multiply(rtr.view(), s.view());
    test::expect_near(prod.view(), Matrix::identity(n).view(), 1e-11);
  }
}

class SelInvBidiagonalTest : public ::testing::TestWithParam<int> {};

TEST_P(SelInvBidiagonalTest, DiagonalBlocksMatchDenseInverse) {
  Rng rng(97 + GetParam());
  test::RandomProblemSpec spec;
  spec.k = GetParam();
  spec.n_min = 2;
  spec.n_max = 3;
  spec.varying_dims = true;
  spec.obs_probability = 0.7;
  Problem p = test::random_problem(rng, spec);

  BidiagonalFactor f = paige_saunders_factor(p);
  std::vector<Matrix> covs = selinv_bidiagonal(f);

  SmootherResult ref = dense_smooth(p, true);
  test::expect_covs_near(covs, ref.covariances, 1e-7, "selinv k=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, SelInvBidiagonalTest, ::testing::Values(0, 1, 2, 3, 7, 16));

TEST(SelInvBidiagonal, ScalarChainAgainstHandComputation) {
  // Scalar states, R = [[2, 1], [0, 3]]: S = (R^T R)^{-1} computed by hand.
  BidiagonalFactor f;
  f.diag.resize(2);
  f.sup.resize(2);
  f.rhs.resize(2);
  f.diag[0] = Matrix({{2.0}});
  f.diag[1] = Matrix({{3.0}});
  f.sup[0] = Matrix({{1.0}});
  std::vector<Matrix> s = selinv_bidiagonal(f);
  // R^{-1} = [[1/2, -1/6], [0, 1/3]]; S = R^{-1} R^{-T}.
  EXPECT_NEAR(s[1](0, 0), 1.0 / 9.0, 1e-14);
  EXPECT_NEAR(s[0](0, 0), 0.25 + 1.0 / 36.0, 1e-14);
}

TEST(SelInvBidiagonal, CovariancesAreSymmetricPsd) {
  Rng rng(101);
  test::RandomProblemSpec spec;
  spec.k = 10;
  spec.n_min = spec.n_max = 3;
  spec.dense_covariances = true;
  Problem p = test::random_problem(rng, spec);
  BidiagonalFactor f = paige_saunders_factor(p);
  std::vector<Matrix> covs = selinv_bidiagonal(f);
  for (const Matrix& c : covs) {
    for (index j = 0; j < c.cols(); ++j)
      for (index i = 0; i < c.rows(); ++i) EXPECT_EQ(c(i, j), c(j, i));
    Matrix l = c;
    EXPECT_TRUE(la::cholesky_lower(l.view())) << "covariance must be PSD";
  }
}

}  // namespace
}  // namespace pitk::kalman
